//===- ir/Problem.cpp - Tensor-program IR ---------------------------------===//

#include "ir/Problem.h"

using namespace thistle;

std::int64_t
DimRef::extentFor(const std::vector<std::int64_t> &TileExtents) const {
  std::int64_t Extent = 1;
  for (const Term &T : Terms) {
    assert(T.Iter < TileExtents.size() && "iterator index out of range");
    assert(TileExtents[T.Iter] >= 1 && "tile extents must be positive");
    Extent += T.Stride * (TileExtents[T.Iter] - 1);
  }
  return Extent;
}

bool DimRef::uses(unsigned Iter) const {
  for (const Term &T : Terms)
    if (T.Iter == Iter)
      return true;
  return false;
}

bool Tensor::usesIter(unsigned Iter) const {
  for (const DimRef &D : Dims)
    if (D.uses(Iter))
      return true;
  return false;
}

std::int64_t
Tensor::footprintWords(const std::vector<std::int64_t> &TileExtents) const {
  std::int64_t Words = 1;
  for (const DimRef &D : Dims)
    Words *= D.extentFor(TileExtents);
  return Words;
}

Problem::Problem(std::string Name, std::vector<Iterator> Iters,
                 std::vector<Tensor> Tensors)
    : ProblemName(std::move(Name)), Iters(std::move(Iters)),
      Tensors(std::move(Tensors)) {
  for ([[maybe_unused]] const Iterator &It : this->Iters)
    assert(It.Extent >= 1 && "iterator extents must be positive");
  for ([[maybe_unused]] const Tensor &T : this->Tensors)
    for ([[maybe_unused]] const DimRef &D : T.Dims)
      for ([[maybe_unused]] const DimRef::Term &Term : D.Terms)
        assert(Term.Iter < this->Iters.size() &&
               "tensor reference uses an unknown iterator");
}

unsigned Problem::iteratorIndex(const std::string &Name) const {
  for (unsigned I = 0; I < Iters.size(); ++I)
    if (Iters[I].Name == Name)
      return I;
  assert(false && "unknown iterator name");
  return ~0u;
}

std::int64_t Problem::numOps() const {
  std::int64_t Ops = 1;
  for (const Iterator &It : Iters)
    Ops *= It.Extent;
  return Ops;
}

std::vector<std::int64_t> Problem::fullExtents() const {
  std::vector<std::int64_t> Extents;
  Extents.reserve(Iters.size());
  for (const Iterator &It : Iters)
    Extents.push_back(It.Extent);
  return Extents;
}
