# End-to-end checks of the general-conv workload tables
# (docs/WORKLOADS.md). Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECK=smoke|demo|cache
#         [-DCHECKER=<check_run_report.py> -DPYTHON=<python3>]
#         -P CheckWorkloads.cmake
#
#  smoke: the MobileNetV2 driver run resolves all 52 conv instances
#         (depthwise and pointwise stages included), dedupes them to the
#         30 unique shapes, and writes a schema-valid run report.
#  demo:  a dilated and a transposed custom layer plus the DCGAN table
#         run under --evaluator both with zero nest/maestro divergence.
#  cache: THISTLE_CACHE=off reproduces the cached MobileNetV2 run byte
#         for byte (modulo the cache-stats line) — the dense-box
#         counting convention keeps the new layer classes deterministic
#         through the cache exactly like the Table II networks.

if(CHECK STREQUAL "smoke")
  set(REPORT ${WORK_DIR}/mobilenetv2-report.json)
  execute_process(
    COMMAND ${TOOL} --network mobilenetv2 --threads 2 --trace-json ${REPORT}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "mobilenetv2 run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  # MobileNetV2 (width 1.0, 224x224) has 52 conv instances collapsing
  # to 30 unique shapes; the dedup counts are user-facing contract.
  if(NOT OUT MATCHES "network: 52 layers, 30 unique shapes")
    message(FATAL_ERROR "mobilenetv2 run: wrong dedup summary\n${OUT}")
  endif()
  if(NOT OUT MATCHES "network totals:")
    message(FATAL_ERROR "mobilenetv2 run: missing totals line\n${OUT}")
  endif()
  if(NOT EXISTS ${REPORT})
    message(FATAL_ERROR "mobilenetv2 run: ${REPORT} was not written")
  endif()
  if(PYTHON)
    execute_process(
      COMMAND ${PYTHON} ${CHECKER} ${REPORT}
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR "schema check failed:\n${OUT}\n${ERR}")
    endif()
  else()
    file(READ ${REPORT} JSON)
    foreach(FIELD
        "\"schema\": \"thistle-run-report/1\"" "\"exit_code\": 0"
        "\"network\"" "\"layers_total\": 52" "\"unique_shapes\": 30")
      if(NOT JSON MATCHES "${FIELD}")
        message(FATAL_ERROR "report missing ${FIELD}\n${JSON}")
      endif()
    endforeach()
  endif()

elseif(CHECK STREQUAL "demo")
  # One dilated and one transposed custom layer, then the DCGAN table
  # (4 transposed generator stages + 2 dilated discriminator stages),
  # all scored by nest while maestro cross-checks every evaluation.
  set(RUNS
    "--layer=8,4,28,28,3,3,1,2=--evaluator=both"
    "--layer=4,8,14,14,3,3,2=--transposed=--evaluator=both"
    "--network=dcgan=--threads=2=--evaluator=both")
  foreach(RUN ${RUNS})
    string(REPLACE "=" ";" ARGS "${RUN}")
    execute_process(
      COMMAND ${TOOL} ${ARGS}
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "demo '${RUN}': expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
    endif()
    if(NOT OUT MATCHES "evaluator cross-check \\(nest vs maestro\\)")
      message(FATAL_ERROR "demo '${RUN}': missing cross-check line\n${OUT}")
    endif()
    if(NOT OUT MATCHES ", 0 divergent;")
      message(FATAL_ERROR
        "demo '${RUN}': nest and maestro diverged on a general-conv "
        "layer\n${OUT}")
    endif()
    if(NOT OUT MATCHES ", 0 mismatches")
      message(FATAL_ERROR
        "demo '${RUN}': per-counter mismatch between backends\n${OUT}")
    endif()
  endforeach()

elseif(CHECK STREQUAL "cache")
  set(NETWORK --network mobilenetv2 --threads 2)
  execute_process(
    COMMAND ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE CACHED_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "cached run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env THISTLE_CACHE=off ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE PLAIN_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "cache-off run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  string(REGEX REPLACE "cache:[^\n]*\n" "" CACHED_OUT "${CACHED_OUT}")
  string(REGEX REPLACE "cache:[^\n]*\n" "" PLAIN_OUT "${PLAIN_OUT}")
  if(NOT CACHED_OUT STREQUAL PLAIN_OUT)
    message(FATAL_ERROR
      "cache changed the mobilenetv2 results\n"
      "---- cached ----\n${CACHED_OUT}\n---- off ----\n${PLAIN_OUT}")
  endif()

else()
  message(FATAL_ERROR "unknown CHECK '${CHECK}'")
endif()
