//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using namespace thistle;

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv(5, 1), 5);
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(-4));
  EXPECT_FALSE(isPowerOfTwo(168));
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(1), 1);
  EXPECT_EQ(nextPowerOfTwo(2), 2);
  EXPECT_EQ(nextPowerOfTwo(3), 4);
  EXPECT_EQ(nextPowerOfTwo(513), 1024);
}

TEST(MathUtil, DivisorsOfSmall) {
  EXPECT_EQ(divisorsOf(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisorsOf(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisorsOf(17), (std::vector<std::int64_t>{1, 17}));
  EXPECT_EQ(divisorsOf(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12,
                                                       18, 36}));
}

TEST(MathUtil, DivisorsAreSortedAndDivide) {
  for (std::int64_t N : {30, 64, 97, 224, 28269}) {
    std::vector<std::int64_t> Divs = divisorsOf(N);
    EXPECT_TRUE(std::is_sorted(Divs.begin(), Divs.end()));
    for (std::int64_t D : Divs)
      EXPECT_EQ(N % D, 0) << "divisor " << D << " of " << N;
    EXPECT_EQ(Divs.front(), 1);
    EXPECT_EQ(Divs.back(), N);
  }
}

TEST(MathUtil, ClosestDivisorsPicksNearest) {
  // Divisors of 24: 1 2 3 4 6 8 12 24. Nearest to 7 are 6 and 8.
  EXPECT_EQ(closestDivisors(24, 7.0, 2), (std::vector<std::int64_t>{6, 8}));
  // Ties break toward the smaller divisor: target 5 -> 4 then 6.
  EXPECT_EQ(closestDivisors(24, 5.0, 1), (std::vector<std::int64_t>{4}));
  // Count larger than divisor count returns everything.
  EXPECT_EQ(closestDivisors(4, 2.0, 10),
            (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(MathUtil, ClosestPowersOfTwoWindow) {
  // Example from the paper: real solution 12, N = 2 -> {8, 16}.
  EXPECT_EQ(closestPowersOfTwo(12.0, 2),
            (std::vector<std::int64_t>{8, 16}));
  EXPECT_EQ(closestPowersOfTwo(1.0, 1), (std::vector<std::int64_t>{1}));
  // MinValue clamps the window from below.
  std::vector<std::int64_t> R = closestPowersOfTwo(2.0, 3, 16);
  for (std::int64_t V : R)
    EXPECT_GE(V, 16);
  EXPECT_EQ(R.size(), 3u);
}

TEST(MathUtil, ProductOf) {
  EXPECT_EQ(productOf({}), 1);
  EXPECT_EQ(productOf({2, 3, 7}), 42);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Rng, NextIndexInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextIndex(13), 13u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(3);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, PickCoversAllElements) {
  Rng R(11);
  std::vector<int> V{10, 20, 30};
  std::set<int> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.pick(V));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"layer", "pJ/MAC"});
  T.addRow({"resnet-1", "23.4"});
  T.addRow({"r2", "5"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| layer    | pJ/MAC |"), std::string::npos);
  EXPECT_NE(Out.find("| resnet-1 | 23.4   |"), std::string::npos);
  EXPECT_NE(Out.find("| r2       | 5      |"), std::string::npos);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::formatDouble(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::formatInt(168), "168");
}
