file(REMOVE_RECURSE
  "CMakeFiles/thistle_nestmodel.dir/Evaluator.cpp.o"
  "CMakeFiles/thistle_nestmodel.dir/Evaluator.cpp.o.d"
  "CMakeFiles/thistle_nestmodel.dir/Mapper.cpp.o"
  "CMakeFiles/thistle_nestmodel.dir/Mapper.cpp.o.d"
  "CMakeFiles/thistle_nestmodel.dir/NestAnalysis.cpp.o"
  "CMakeFiles/thistle_nestmodel.dir/NestAnalysis.cpp.o.d"
  "libthistle_nestmodel.a"
  "libthistle_nestmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_nestmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
