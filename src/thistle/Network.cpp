//===- thistle/Network.cpp - Network-level co-design driver ---------------===//

#include "thistle/Network.h"

#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/PairSweep.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

using namespace thistle;

namespace {

/// Canonical shape signature for the dedup map: every field a pair-sweep
/// result can depend on. The layer name is deliberately excluded.
std::string shapeKey(const ConvLayer &L) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64
                ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64
                ",%" PRId64 ",%" PRId64 ",%d,%s",
                L.N, L.K, L.C, L.Hin, L.Win, L.R, L.S, L.StrideX, L.StrideY,
                L.DilationX, L.DilationY, L.Groups, L.Transposed ? 1 : 0,
                paddingName(L.Padding));
  return Buf;
}

/// Identity of an architecture candidate: the co-design parameters plus
/// the bandwidths (everything the dataflow re-sweep reads).
using ArchKey =
    std::tuple<std::int64_t, std::int64_t, std::int64_t, double, double>;

ArchKey archKey(const ArchConfig &A) {
  return {A.NumPEs, A.RegWordsPerPE, A.SramWords, A.DramBandwidth,
          A.SramBandwidth};
}

/// One unique layer shape of the network.
struct UniqueShape {
  ConvLayer Layer; ///< First occurrence (canonical copy).
  Problem Prob;
  std::size_t Multiplicity = 0;
};

/// The per-shape accumulators of one sweep phase. Cells are indexed by
/// (cell, shape) and only merged cell-wise in shard order, so the phase
/// result is bit-identical at every worker count.
using PhaseAccumulator = std::vector<SweepAccumulator>;

void joinPhaseAccumulators(PhaseAccumulator &A, PhaseAccumulator &&B) {
  for (std::size_t I = 0; I < A.size(); ++I)
    mergePairAccumulators(A[I], std::move(B[I]));
}

/// Maps a phase-global task index onto its shape via the prefix-sum
/// offsets (Offsets.back() is the phase task total).
std::size_t shapeOfTask(const std::vector<std::size_t> &Offsets,
                        std::size_t TaskIdx) {
  std::size_t S = 0;
  while (S + 1 < Offsets.size() - 1 && TaskIdx >= Offsets[S + 1])
    ++S;
  return S;
}

/// Sums a found layer result into the running totals.
void addToTotals(const ThistleResult &R, const ConvLayer &L,
                 SearchObjective Objective, NetworkTotals &T) {
  T.EnergyPj += R.Eval.EnergyPj;
  T.Cycles += R.Eval.Cycles;
  T.Macs += L.numMacs();
  T.SummedObjective += objectiveValue(R.Eval, Objective);
}

} // namespace

NetworkResult thistle::optimizeNetwork(const std::vector<ConvLayer> &Layers,
                                       const ArchConfig &Arch,
                                       const TechParams &Tech,
                                       const NetworkOptions &Options,
                                       double AreaBudgetUm2) {
  NetworkResult Result;
  Result.Arch = Arch;
  Result.Stats.LayersTotal = Layers.size();

  if (Layers.empty()) {
    // The explicit zero-work path: the report stays empty (its summary
    // reads "0 pairs: nothing attempted") and the status names the cause
    // instead of a silent Found=false.
    Result.InputStatus = Status::invalidArgument(
        "network has no layers; 0 tasks: nothing attempted");
    return Result;
  }
  if (Options.ShardCount == 0 ||
      Options.ShardIndex >= Options.ShardCount) {
    Result.InputStatus = Status::invalidArgument(
        "shard " + std::to_string(Options.ShardIndex + 1) + "/" +
        std::to_string(Options.ShardCount) +
        " is not a valid 1-of-N partition");
    return Result;
  }
  for (const ConvLayer &L : Layers)
    if (Status S = L.validate(); !S.isOk()) {
      Result.InputStatus = std::move(S.withContext("validating network"));
      return Result;
    }

  // Deduplicate identical shapes: repeated blocks (ResNet basic blocks,
  // Yolo's stacked 3x3 stages) are solved once and their winner shared.
  std::vector<UniqueShape> Shapes;
  std::unordered_map<std::string, std::size_t> ShapeIndexByKey;
  Result.Layers.reserve(Layers.size());
  for (const ConvLayer &L : Layers) {
    std::string Key = shapeKey(L);
    auto [It, Inserted] =
        ShapeIndexByKey.emplace(std::move(Key), Shapes.size());
    if (Inserted)
      Shapes.push_back(UniqueShape{L, makeConvProblem(L), 0});
    ++Shapes[It->second].Multiplicity;
    NetworkLayerResult LR;
    LR.Name = L.Name;
    LR.ShapeIndex = It->second;
    LR.Deduplicated = !Inserted;
    Result.Layers.push_back(std::move(LR));
  }
  for (NetworkLayerResult &LR : Result.Layers)
    LR.Multiplicity = Shapes[LR.ShapeIndex].Multiplicity;
  Result.Stats.UniqueShapes = Shapes.size();

  // Validate every unique shape up front, before any GP is built, so a
  // bad layer fails the whole run with its name instead of surfacing as
  // mid-sweep incidents.
  for (std::size_t S = 0; S < Shapes.size(); ++S) {
    GpBuildSpec Probe;
    Probe.Mode = Options.Layer.Mode;
    Probe.Objective = Options.Layer.Objective;
    Probe.TiledIters = tiledIterators(Shapes[S].Prob, Options.Layer);
    Probe.Arch = Arch;
    Probe.Tech = Tech;
    Probe.AreaBudgetUm2 = AreaBudgetUm2;
    Status St = validateGpBuildSpec(Shapes[S].Prob, Probe)
                    .withContext("validating network layer '" +
                                 Shapes[S].Layer.Name + "'");
    if (!St.isOk()) {
      Result.InputStatus = std::move(St);
      return Result;
    }
  }

  // Phase plans and the global task grid: Offsets[S] is the first global
  // task index of shape S, Offsets.back() the phase task total.
  std::vector<LayerSweepPlan> Plans;
  Plans.reserve(Shapes.size());
  std::vector<std::size_t> Offsets(1, 0);
  for (const UniqueShape &U : Shapes) {
    Plans.push_back(planLayerSweep(U.Prob, Options.Layer));
    Offsets.push_back(Offsets.back() + Plans.back().Pairs.size());
  }
  const std::size_t PhaseTasks = Offsets.back();

  // One deadline for the whole network run, resolved once so phase 2
  // shares the instant instead of restarting the clock.
  std::chrono::steady_clock::time_point DeadlineAt;
  const bool HasDeadline = resolveSweepDeadline(
      Options.Layer.Deadline, Options.Layer.DeadlineAt, DeadlineAt);

  telemetry::beginEpoch();
  telemetry::TraceScope NetSpan("thistle.optimize_network");
  telemetry::count("thistle.networks");
  std::optional<ThreadPool> OwnPool;
  if (!Options.Pool)
    OwnPool.emplace(Options.Layer.Threads);
  ThreadPool &Pool = Options.Pool ? *Options.Pool : *OwnPool;

  // Runs one phase: \p Opts/\p PhaseArch/\p PhaseBudget applied to every
  // unique shape, cells of \p Cells many repetitions of the shape grid
  // (phase 1 has one cell, phase 2 one per candidate). Returns the
  // per-(cell, shape) accumulators, merged deterministically.
  auto runPhase = [&](const ThistleOptions &Opts,
                      const std::vector<ArchConfig> &CellArchs,
                      double PhaseBudget, std::size_t SpanBase) {
    const std::size_t Cells = CellArchs.size();
    std::vector<PairSweepContext> Ctxs;
    Ctxs.reserve(Cells * Shapes.size());
    for (std::size_t Cell = 0; Cell < Cells; ++Cell)
      for (std::size_t S = 0; S < Shapes.size(); ++S) {
        PairSweepContext Ctx{Shapes[S].Prob, Plans[S], Opts,
                             CellArchs[Cell], Tech,     PhaseBudget};
        Ctx.Cache = Options.Cache;
        Ctx.HasDeadline = HasDeadline;
        Ctx.DeadlineAt = DeadlineAt;
        Ctx.SpanIndexBase = SpanBase + Cell * PhaseTasks + Offsets[S];
        Ctxs.push_back(Ctx);
      }
    if (Options.Cache)
      Options.Cache->beginGeneration();
    return parallelReduce(
        Pool, Cells * PhaseTasks,
        PhaseAccumulator(Cells * Shapes.size()),
        [&](PhaseAccumulator &Acc, std::size_t TaskIdx) {
          const std::size_t Cell = TaskIdx / PhaseTasks;
          const std::size_t Rem = TaskIdx % PhaseTasks;
          // The shard partition is a pure function of the global task
          // index (phase span base + cell + offset), so every shard of
          // every phase agrees on ownership without coordination.
          if (Options.ShardCount > 1 &&
              (SpanBase + Cell * PhaseTasks + Rem) % Options.ShardCount !=
                  Options.ShardIndex)
            return;
          const std::size_t S = shapeOfTask(Offsets, Rem);
          runPairTask(Ctxs[Cell * Shapes.size() + S], Rem - Offsets[S],
                      Acc[Cell * Shapes.size() + S]);
        },
        joinPhaseAccumulators);
  };

  // Harvests one phase cell into per-shape ThistleResults, folding the
  // cache traffic and the shape reports into the network-level stats.
  auto finishCell = [&](PhaseAccumulator &Acc, std::size_t Cell) {
    std::vector<ThistleResult> ShapeResults(Shapes.size());
    for (std::size_t S = 0; S < Shapes.size(); ++S) {
      SweepAccumulator &Cur = Acc[Cell * Shapes.size() + S];
      Result.Stats.CacheHits += Cur.CacheHits;
      Result.Stats.CacheMisses += Cur.CacheMisses;
      Result.Stats.CacheWarmStarts += Cur.CacheWarmStarts;
      finishLayerResult(Plans[S], std::move(Cur), ShapeResults[S]);
      Result.Report.merge(SweepReport(ShapeResults[S].Report));
    }
    return ShapeResults;
  };

  // Phase 1: sweep every unique shape under the input architecture (and,
  // in CoDesign mode, the area budget).
  PhaseAccumulator Phase1 =
      runPhase(Options.Layer, {Arch}, AreaBudgetUm2, 0);
  Result.Stats.PairsPlanned += static_cast<unsigned>(PhaseTasks);
  std::vector<ThistleResult> Selected = finishCell(Phase1, 0);

  // Phase 2 (CoDesign): the distinct per-shape winning architectures
  // become candidates; every candidate is scored by re-optimizing each
  // shape's dataflow under it, and the smallest summed objective over
  // all input layers wins. Ties break on candidate order (first
  // appearance over shapes), which is itself deterministic.
  if (Options.Layer.Mode == DesignMode::CoDesign &&
      Options.SelectNetworkArch) {
    std::vector<ArchConfig> CandidateArchs;
    for (const ThistleResult &R : Selected) {
      if (!R.Found)
        continue;
      bool Known = false;
      for (const ArchConfig &A : CandidateArchs)
        Known = Known || archKey(A) == archKey(R.Arch);
      if (!Known)
        CandidateArchs.push_back(R.Arch);
    }
    Result.Stats.ArchCandidates =
        static_cast<unsigned>(CandidateArchs.size());

    if (!CandidateArchs.empty()) {
      ThistleOptions Phase2Opts = Options.Layer;
      Phase2Opts.Mode = DesignMode::DataflowOnly;
      PhaseAccumulator Phase2 =
          runPhase(Phase2Opts, CandidateArchs, 0.0, PhaseTasks);
      Result.Stats.PairsPlanned +=
          static_cast<unsigned>(CandidateArchs.size() * PhaseTasks);

      Result.Candidates.reserve(CandidateArchs.size());
      std::size_t BestCand = 0;
      std::vector<ThistleResult> BestResults;
      for (std::size_t Cand = 0; Cand < CandidateArchs.size(); ++Cand) {
        std::vector<ThistleResult> CandResults = finishCell(Phase2, Cand);
        NetworkArchCandidate Score;
        Score.Arch = CandidateArchs[Cand];
        Score.AllLayersFound = true;
        for (std::size_t S = 0; S < Shapes.size(); ++S) {
          if (!CandResults[S].Found) {
            Score.AllLayersFound = false;
            continue;
          }
          Score.LayersFound += Shapes[S].Multiplicity;
          Score.SummedObjective +=
              static_cast<double>(Shapes[S].Multiplicity) *
              objectiveValue(CandResults[S].Eval, Options.Layer.Objective);
        }
        // Selection order: complete candidates by (objective, index);
        // if none is complete, the one covering the most layers.
        bool Wins;
        if (Result.Candidates.empty())
          Wins = true;
        else if (Score.AllLayersFound !=
                 Result.Candidates[BestCand].AllLayersFound)
          Wins = Score.AllLayersFound;
        else if (Score.AllLayersFound)
          Wins = Score.SummedObjective <
                 Result.Candidates[BestCand].SummedObjective;
        else
          Wins = Score.LayersFound >
                 Result.Candidates[BestCand].LayersFound;
        Result.Candidates.push_back(std::move(Score));
        if (Wins) {
          BestCand = Cand;
          BestResults = std::move(CandResults);
        }
      }
      Result.Arch = CandidateArchs[BestCand];
      Selected = std::move(BestResults);
    }
  }

  // Distribute the selected per-shape results onto the input layers and
  // accumulate the network totals. Dedup copies share the winner but
  // carry an empty report and zero stats, so summing per-layer numbers
  // counts each shape's sweep exactly once.
  for (NetworkLayerResult &LR : Result.Layers) {
    LR.Result = Selected[LR.ShapeIndex];
    if (LR.Deduplicated) {
      LR.Result.Report = SweepReport();
      LR.Result.Stats = ThistleStats();
    }
    if (LR.Result.Found) {
      ++Result.LayersFound;
      addToTotals(LR.Result, Shapes[LR.ShapeIndex].Layer,
                  Options.Layer.Objective, Result.Totals);
    }
  }
  Result.Found = Result.LayersFound == Layers.size();
  Result.Totals.EdpPjCycles = Result.Totals.EnergyPj * Result.Totals.Cycles;
  if (Result.Totals.Macs > 0)
    Result.Totals.EnergyPerMacPj =
        Result.Totals.EnergyPj / static_cast<double>(Result.Totals.Macs);
  Result.Stats.PairsSolved = Result.Report.Solved + Result.Report.Degraded;

  if (telemetry::traceEnabled())
    NetSpan.setDetail(
        "layers=" + std::to_string(Layers.size()) +
        " shapes=" + std::to_string(Shapes.size()) +
        " found=" + std::to_string(Result.LayersFound) +
        " candidates=" + std::to_string(Result.Stats.ArchCandidates));
  return Result;
}
