file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multilevel.dir/bench_ext_multilevel.cpp.o"
  "CMakeFiles/bench_ext_multilevel.dir/bench_ext_multilevel.cpp.o.d"
  "bench_ext_multilevel"
  "bench_ext_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
