//===- tests/CrossEvaluatorTest.cpp - Evaluator backend cross-check -------===//
//
// The pluggable-evaluator layer claims that the MAESTRO-style
// data-centric backend computes *exactly* the counts of the Algorithm-1
// nest walk — both are closed forms of the same tiled nest, one summing
// over loop levels, the other over per-tensor reuse classes. This suite
// holds that claim: full-size Table II layers on the classic-3 and
// scratchpad-4 hierarchies are diffed counter for counter, and both
// backends are pinned to the brute-force tiled-loop simulator on
// downscaled shapes. The CrossCheckEvaluator plumbing itself is
// exercised with a deliberately wrong backend.
//
//===----------------------------------------------------------------------===//

#include "multilevel/MultiSim.h"
#include "nestmodel/CostEvaluator.h"
#include "nestmodel/MaestroModel.h"
#include "nestmodel/Mapper.h"
#include "sim/TiledLoopSim.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace thistle;

namespace {

/// Random valid MultiMapping by hierarchical divisor sampling.
MultiMapping randomMultiMapping(const Problem &P, unsigned NumLevels,
                                Rng &R) {
  const unsigned NumIters = P.numIterators();
  MultiMapping M;
  M.TempFactors.assign(NumLevels, std::vector<std::int64_t>(NumIters, 1));
  M.SpatialFactors.assign(NumIters, 1);
  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Rest = P.iterators()[I].Extent;
    for (unsigned L = 0; L + 1 < NumLevels; ++L) {
      std::int64_t F = R.pick(divisorsOf(Rest));
      M.TempFactors[L][I] = F;
      Rest /= F;
    }
    std::int64_t Sp = R.pick(divisorsOf(Rest));
    M.SpatialFactors[I] = Sp;
    M.TempFactors[NumLevels - 1][I] = Rest / Sp;
  }
  std::vector<unsigned> Identity(NumIters);
  for (unsigned I = 0; I < NumIters; ++I)
    Identity[I] = I;
  M.Perms.assign(NumLevels, Identity);
  for (unsigned L = 1; L < NumLevels; ++L)
    R.shuffle(M.Perms[L]);
  return M;
}

/// The two hierarchies the tool exposes, at the Eyeriss baseline.
std::vector<Hierarchy> toolHierarchies() {
  ArchConfig Arch = eyerissArch();
  TechParams Tech = TechParams::cgo45nm();
  return {Hierarchy::classic3Level(Arch, Tech),
          Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/512,
                                    Arch.SramWords)};
}

void expectSameMultiProfile(const Problem &Prob, const Hierarchy &H,
                            const MultiProfile &A, const MultiProfile &B) {
  ProfileDivergence Div = compareProfiles(Prob, H, A, B);
  EXPECT_FALSE(Div.diverged())
      << (Div.Samples.empty()
              ? std::string("no sample")
              : (Div.Samples[0].Counter + ": " +
                 std::to_string(Div.Samples[0].Primary) + " vs " +
                 std::to_string(Div.Samples[0].Reference)));
}

/// Bit-for-bit equality of the priced metrics.
void expectSameMultiEval(const MultiEvalResult &A, const MultiEvalResult &B) {
  EXPECT_EQ(A.Legal, B.Legal);
  EXPECT_EQ(A.IllegalReason, B.IllegalReason);
  EXPECT_EQ(A.EnergyPj, B.EnergyPj);
  EXPECT_EQ(A.EnergyPerMacPj, B.EnergyPerMacPj);
  EXPECT_EQ(A.MacEnergyPj, B.MacEnergyPj);
  EXPECT_EQ(A.EnergyPerLevelPj, B.EnergyPerLevelPj);
  EXPECT_EQ(A.EdpPjCycles, B.EdpPjCycles);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.ComputeCycles, B.ComputeCycles);
  EXPECT_EQ(A.CyclesPerLevel, B.CyclesPerLevel);
  EXPECT_EQ(A.MacIpc, B.MacIpc);
}

/// Downscaled Table II shapes: small enough for the brute-force
/// simulator (which walks every tile step), still covering stride 2 and
/// the 1x1/3x3 kernel mix.
std::vector<Problem> simWorkloads() {
  std::vector<Problem> Probs;
  {
    ConvLayer L;
    L.K = 8;
    L.C = 4;
    L.Hin = 10;
    L.Win = 10;
    L.R = 3;
    L.S = 3;
    Probs.push_back(makeConvProblem(L));
  }
  {
    ConvLayer L;
    L.K = 4;
    L.C = 8;
    L.Hin = 8;
    L.Win = 8;
    L.R = 3;
    L.S = 3;
    L.StrideX = L.StrideY = 2;
    Probs.push_back(makeConvProblem(L));
  }
  {
    ConvLayer L;
    L.K = 8;
    L.C = 8;
    L.Hin = 6;
    L.Win = 6;
    L.R = 1;
    L.S = 1;
    Probs.push_back(makeConvProblem(L));
  }
  return Probs;
}

/// One downscaled layer per call, covering the general-conv fields.
ConvLayer generalLayer(std::int64_t K, std::int64_t C, std::int64_t HW,
                       std::int64_t RS, std::int64_t Stride,
                       std::int64_t Dilation, std::int64_t Groups,
                       bool Transposed,
                       ConvPadding Padding = ConvPadding::Same) {
  ConvLayer L;
  L.Name = "general";
  L.K = K;
  L.C = C;
  L.Hin = HW;
  L.Win = HW;
  L.R = RS;
  L.S = RS;
  L.StrideX = L.StrideY = Stride;
  L.DilationX = L.DilationY = Dilation;
  L.Groups = Groups;
  L.Transposed = Transposed;
  L.Padding = Padding;
  EXPECT_TRUE(L.validate().isOk()) << L.validate().toString();
  return L;
}

/// Downscaled layers of every new workload class — at least three each
/// of dilated, transposed and grouped/depthwise, mixing strides,
/// dilations and the valid-padding rule — small enough for the
/// brute-force simulator.
std::vector<ConvLayer> generalSimLayers() {
  return {
      // Dilated.
      generalLayer(8, 4, 10, 3, 1, 2, 1, false),
      generalLayer(4, 8, 8, 3, 2, 2, 1, false),
      generalLayer(8, 4, 12, 3, 1, 3, 1, false, ConvPadding::Valid),
      // Transposed (the last one also dilated).
      generalLayer(8, 4, 5, 3, 2, 1, 1, true),
      generalLayer(4, 8, 4, 4, 2, 1, 1, true),
      generalLayer(8, 8, 6, 2, 3, 2, 1, true),
      // Grouped and depthwise (the last one dilated and strided).
      generalLayer(8, 8, 8, 3, 1, 1, 2, false),
      generalLayer(16, 8, 6, 3, 2, 1, 4, false),
      generalLayer(8, 8, 8, 3, 1, 1, 8, false),
      generalLayer(6, 6, 10, 3, 2, 2, 6, false),
  };
}

/// A deliberately wrong backend: the nest counts with one word added to
/// the first boundary of the first tensor. Used to prove the cross-check
/// actually detects model bugs.
class PerturbedEvaluator : public CostEvaluator {
public:
  const char *name() const override { return "perturbed"; }
  MultiProfile profile(const Problem &Prob, const Hierarchy &H,
                       const MultiMapping &Map) const override {
    MultiProfile P = nestCostEvaluator().profile(Prob, H, Map);
    P.Words[0][0] += 1;
    return P;
  }
};

} // namespace

TEST(CrossEvaluator, MaestroMatchesNestOnPaperLayers) {
  const CostEvaluator &Nest = nestCostEvaluator();
  const CostEvaluator &Maestro = maestroCostEvaluator();
  for (const Hierarchy &H : toolHierarchies()) {
    for (const ConvLayer &L : allPaperLayers()) {
      Problem P = makeConvProblem(L);
      Rng R(13);
      for (int Trial = 0; Trial < 8; ++Trial) {
        MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
        ASSERT_TRUE(M.validate(P, H).empty());
        expectSameMultiProfile(P, H, Maestro.profile(P, H, M),
                               Nest.profile(P, H, M));
        expectSameMultiEval(Maestro.evaluate(P, H, M), Nest.evaluate(P, H, M));
      }
    }
  }
}

TEST(CrossEvaluator, BothBackendsMatchTiledLoopSimExactly) {
  const CostEvaluator &Nest = nestCostEvaluator();
  const CostEvaluator &Maestro = maestroCostEvaluator();
  for (const Hierarchy &H : toolHierarchies()) {
    for (const Problem &P : simWorkloads()) {
      Rng R(17);
      for (int Trial = 0; Trial < 4; ++Trial) {
        MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
        ASSERT_TRUE(M.validate(P, H).empty());
        MultiProfile Sim = simulateMultiNestProfile(P, H, M);
        expectSameMultiProfile(P, H, Nest.profile(P, H, M), Sim);
        expectSameMultiProfile(P, H, Maestro.profile(P, H, M), Sim);
      }
    }
  }
}

TEST(CrossEvaluator, SimulatedProfileMatchesClassic3Mapping) {
  // The fixed-depth ground-truth entry point: a 4-level Mapping lifted
  // onto classic3Shape must count exactly what both backends count.
  Hierarchy H = Hierarchy::classic3Shape();
  for (const Problem &P : simWorkloads()) {
    Mapping Map = Mapping::untiled(P);
    MultiMapping M = MultiMapping::fromMapping(P, Map);
    MultiProfile Sim = simulatedProfile(P, Map);
    expectSameMultiProfile(P, H, nestCostEvaluator().profile(P, H, M), Sim);
    expectSameMultiProfile(P, H, maestroCostEvaluator().profile(P, H, M), Sim);
  }
}

TEST(CrossEvaluator, RegistryResolvesBackends) {
  ASSERT_NE(costEvaluator("nest"), nullptr);
  EXPECT_STREQ(costEvaluator("nest")->name(), "nest");
  ASSERT_NE(costEvaluator("maestro"), nullptr);
  EXPECT_STREQ(costEvaluator("maestro")->name(), "maestro");
  EXPECT_EQ(costEvaluator("timeloop"), nullptr);

  std::vector<std::string> Names = costEvaluatorNames();
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
  EXPECT_NE(std::find(Names.begin(), Names.end(), "nest"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "maestro"), Names.end());

  // Third-party registration, as docs/EVALUATOR.md describes.
  static const PerturbedEvaluator Custom;
  registerCostEvaluator("custom", &Custom);
  EXPECT_EQ(costEvaluator("custom"), &Custom);

  // Null resolves to the nest singleton.
  EXPECT_EQ(&resolveCostEvaluator(nullptr), &nestCostEvaluator());
  EXPECT_EQ(&resolveCostEvaluator(&Custom), &Custom);
}

TEST(CrossEvaluator, CrossCheckIsCleanOnAgreeingBackends) {
  CrossCheckEvaluator XC(nestCostEvaluator(), maestroCostEvaluator());
  Hierarchy H = toolHierarchies()[0];
  Problem P = makeConvProblem(allPaperLayers()[0]);
  Rng R(23);
  for (int Trial = 0; Trial < 6; ++Trial) {
    MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
    // The cross-check result must be bit-identical to the primary alone.
    expectSameMultiEval(XC.evaluate(P, H, M),
                        nestCostEvaluator().evaluate(P, H, M));
  }
  CrossCheckStats S = XC.stats();
  EXPECT_EQ(S.Evals, 6u);
  EXPECT_EQ(S.DivergentEvals, 0u);
  EXPECT_EQ(S.CounterMismatches, 0u);
  EXPECT_GT(S.CountersCompared, 0u);
  EXPECT_EQ(S.MaxAbsDelta, 0.0);
  EXPECT_TRUE(S.Samples.empty());
}

TEST(CrossEvaluator, CrossCheckDetectsABrokenBackend) {
  PerturbedEvaluator Broken;
  CrossCheckEvaluator XC(Broken, nestCostEvaluator());
  Hierarchy H = toolHierarchies()[0];
  Problem P = makeConvProblem(allPaperLayers()[0]);
  Rng R(29);
  const int Trials = 12;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
    // Still returns the (broken) primary's counts.
    MultiProfile Out = XC.profile(P, H, M);
    EXPECT_EQ(Out.Words[0][0], nestCostEvaluator().profile(P, H, M).Words[0][0] + 1);
  }
  CrossCheckStats S = XC.stats();
  EXPECT_EQ(S.Evals, static_cast<std::uint64_t>(Trials));
  EXPECT_EQ(S.DivergentEvals, static_cast<std::uint64_t>(Trials));
  EXPECT_EQ(S.CounterMismatches, static_cast<std::uint64_t>(Trials));
  EXPECT_EQ(S.MaxAbsDelta, 1.0);
  EXPECT_GT(S.MaxRelDelta, 0.0);
  // The sample list is bounded, labeled, and carries both values.
  ASSERT_FALSE(S.Samples.empty());
  EXPECT_LE(S.Samples.size(), ProfileDivergence::MaxSamples);
  EXPECT_EQ(S.Samples[0].Counter.rfind("words[b0]", 0), 0u);
  EXPECT_EQ(S.Samples[0].Primary, S.Samples[0].Reference + 1);
}

TEST(CrossEvaluator, TelemetryCountsEvalsAndDivergences) {
  if (!telemetry::compiledIn())
    GTEST_SKIP() << "telemetry compiled out";
  Hierarchy H = toolHierarchies()[0];
  Problem P = makeConvProblem(allPaperLayers()[0]);
  Rng R(31);
  MultiMapping M = randomMultiMapping(P, H.numLevels(), R);

  telemetry::setLevel(telemetry::Level::Metrics);
  auto counter = [](const char *Name) {
    for (const telemetry::CounterValue &C : telemetry::snapshot().Counters)
      if (C.Name == Name)
        return C.Value;
    return std::uint64_t{0};
  };
  std::uint64_t Evals0 = counter("thistle.evaluator.evals");
  std::uint64_t Div0 = counter("thistle.evaluator.divergences");

  nestCostEvaluator().evaluate(P, H, M);
  PerturbedEvaluator Broken;
  CrossCheckEvaluator XC(Broken, nestCostEvaluator());
  XC.evaluate(P, H, M);
  telemetry::setLevel(telemetry::Level::Off);

  EXPECT_EQ(counter("thistle.evaluator.evals"), Evals0 + 2);
  EXPECT_EQ(counter("thistle.evaluator.divergences"), Div0 + 1);
}

TEST(CrossEvaluator, MapperTrajectoryIsBackendInvariantWhenBackendsAgree) {
  // Scoring through maestro (or the cross-check) must reproduce the
  // default search bit for bit: equal counts => equal doubles => equal
  // accept/reject decisions at every trial.
  Hierarchy H = toolHierarchies()[0];
  ConvLayer L;
  L.K = 16;
  L.C = 8;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);

  MapperOptions Opts;
  Opts.Seed = 3;
  Opts.MaxTrials = 512;
  Opts.VictoryCondition = 150;
  Opts.Threads = 2;
  MultiMapperResult Ref = searchMultiMappings(P, H, Opts);
  ASSERT_TRUE(Ref.Found);

  CrossCheckEvaluator XC(nestCostEvaluator(), maestroCostEvaluator());
  for (const CostEvaluator *E : {&maestroCostEvaluator(),
                                 static_cast<const CostEvaluator *>(&XC)}) {
    Opts.Evaluator = E;
    MultiMapperResult Alt = searchMultiMappings(P, H, Opts);
    EXPECT_EQ(Alt.Trials, Ref.Trials);
    EXPECT_EQ(Alt.LegalTrials, Ref.LegalTrials);
    ASSERT_TRUE(Alt.Found);
    expectSameMultiEval(Alt.BestEval, Ref.BestEval);
  }
  EXPECT_EQ(XC.stats().DivergentEvals, 0u);
  EXPECT_GT(XC.stats().Evals, 0u);
}

TEST(CrossEvaluator, GeneralConvClassesMatchTiledLoopSimExactly) {
  // The tentpole claim of the open-workload work: dilated, transposed
  // and grouped/depthwise layers count exactly like the dense path —
  // nest == maestro == brute-force simulator, to the integer, on both
  // tool hierarchies.
  const CostEvaluator &Nest = nestCostEvaluator();
  const CostEvaluator &Maestro = maestroCostEvaluator();
  for (const Hierarchy &H : toolHierarchies()) {
    for (const ConvLayer &L : generalSimLayers()) {
      SCOPED_TRACE(std::string(L.layerClass()) + " K" +
                   std::to_string(L.K) + " C" + std::to_string(L.C) + " H" +
                   std::to_string(L.Hin));
      Problem P = makeConvProblem(L);
      Rng R(41);
      for (int Trial = 0; Trial < 4; ++Trial) {
        MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
        ASSERT_TRUE(M.validate(P, H).empty());
        MultiProfile Sim = simulateMultiNestProfile(P, H, M);
        expectSameMultiProfile(P, H, Nest.profile(P, H, M), Sim);
        expectSameMultiProfile(P, H, Maestro.profile(P, H, M), Sim);
      }
    }
  }
}

TEST(CrossEvaluator, MaestroMatchesNestOnGeneralLayerTables) {
  // Full-size MobileNetV2 and DCGAN stages: the analytical backends stay
  // count-equal at production shapes, not just on the downscaled sims.
  const CostEvaluator &Nest = nestCostEvaluator();
  const CostEvaluator &Maestro = maestroCostEvaluator();
  std::vector<ConvLayer> Layers = mobilenetV2Layers();
  std::vector<ConvLayer> Dcgan = dcganLayers();
  Layers.insert(Layers.end(), Dcgan.begin(), Dcgan.end());
  for (const Hierarchy &H : toolHierarchies()) {
    for (const ConvLayer &L : Layers) {
      SCOPED_TRACE(L.Name);
      Problem P = makeConvProblem(L);
      Rng R(43);
      for (int Trial = 0; Trial < 3; ++Trial) {
        MultiMapping M = randomMultiMapping(P, H.numLevels(), R);
        ASSERT_TRUE(M.validate(P, H).empty());
        expectSameMultiProfile(P, H, Maestro.profile(P, H, M),
                               Nest.profile(P, H, M));
        expectSameMultiEval(Maestro.evaluate(P, H, M),
                            Nest.evaluate(P, H, M));
      }
    }
  }
}

TEST(CrossEvaluator, OptimizeLayerOnNewClassesIsThreadAndBackendInvariant) {
  // One layer per class through the full optimizeLayer sweep: results
  // bit-identical at 1 and 8 worker threads, and with the nest-vs-maestro
  // cross-check scoring every candidate (which must stay divergence-free).
  const ConvLayer Layers[] = {
      generalLayer(8, 4, 10, 3, 1, 2, 1, false),  // dilated
      generalLayer(8, 4, 5, 3, 2, 1, 1, true),    // transposed
      generalLayer(16, 8, 6, 3, 2, 1, 4, false),  // grouped
      generalLayer(8, 8, 8, 3, 1, 1, 8, false),   // depthwise
  };
  for (const ConvLayer &L : Layers) {
    SCOPED_TRACE(L.layerClass());
    Problem P = makeConvProblem(L);
    ThistleOptions One;
    One.MaxPermClassPairs = 8;
    One.Threads = 1;
    ThistleResult R1 = optimizeLayer(P, eyerissArch(),
                                     TechParams::cgo45nm(), One);
    ASSERT_TRUE(R1.InputStatus.isOk());
    ASSERT_TRUE(R1.Found);

    ThistleOptions Eight = One;
    Eight.Threads = 8;
    ThistleResult R8 = optimizeLayer(P, eyerissArch(),
                                     TechParams::cgo45nm(), Eight);
    ASSERT_TRUE(R8.Found);
    EXPECT_EQ(R1.Eval.EnergyPj, R8.Eval.EnergyPj);
    EXPECT_EQ(R1.Eval.Cycles, R8.Eval.Cycles);
    EXPECT_EQ(R1.Eval.EdpPjCycles, R8.Eval.EdpPjCycles);
    EXPECT_EQ(R1.Map.Factors, R8.Map.Factors);
    EXPECT_EQ(R1.BestPePerm, R8.BestPePerm);
    EXPECT_EQ(R1.BestDramPerm, R8.BestDramPerm);

    CrossCheckEvaluator XC(nestCostEvaluator(), maestroCostEvaluator());
    ThistleOptions Checked = Eight;
    Checked.Rounding.Evaluator = &XC;
    ThistleResult RX = optimizeLayer(P, eyerissArch(),
                                     TechParams::cgo45nm(), Checked);
    ASSERT_TRUE(RX.Found);
    EXPECT_EQ(R1.Eval.EnergyPj, RX.Eval.EnergyPj);
    EXPECT_EQ(R1.Eval.Cycles, RX.Eval.Cycles);
    EXPECT_EQ(R1.Map.Factors, RX.Map.Factors);
    EXPECT_EQ(XC.stats().DivergentEvals, 0u);
    EXPECT_GT(XC.stats().Evals, 0u);
  }
}
