//===- linalg/Kernels.cpp - SIMD kernels for the GP/Newton hot path -------===//
//
// The only translation unit compiled with native vector flags (and with
// -ffp-contract=off, so the scalar backend cannot be silently fused into
// FMA). Every kernel follows the fixed blocking/association order
// documented in Kernels.h; see the bit-identity tests in
// tests/SimdKernelsTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "linalg/Kernels.h"

#include "support/Simd.h"

#include <cmath>

using namespace thistle;
using simd::Pack4;

const char *kernels::backendName() { return simd::backendName(); }

std::size_t kernels::packWidth() { return simd::PackWidth; }

double kernels::dot(const double *A, const double *B, std::size_t N) {
  Pack4 Acc = simd::zero();
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = simd::add(Acc, simd::mul(simd::load(A + I), simd::load(B + I)));
  double S = simd::hsum(Acc);
  for (; I < N; ++I)
    S += A[I] * B[I];
  return S;
}

double kernels::sum(const double *A, std::size_t N) {
  Pack4 Acc = simd::zero();
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = simd::add(Acc, simd::load(A + I));
  double S = simd::hsum(Acc);
  for (; I < N; ++I)
    S += A[I];
  return S;
}

void kernels::axpy(double *Y, double Alpha, const double *X, std::size_t N) {
  const Pack4 VA = simd::set1(Alpha);
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    simd::store(Y + I,
                simd::add(simd::load(Y + I),
                          simd::mul(VA, simd::load(X + I))));
  for (; I < N; ++I)
    Y[I] += Alpha * X[I];
}

void kernels::axpby(double *Out, const double *A, double Alpha,
                    const double *B, std::size_t N) {
  const Pack4 VA = simd::set1(Alpha);
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    simd::store(Out + I,
                simd::add(simd::load(A + I),
                          simd::mul(VA, simd::load(B + I))));
  for (; I < N; ++I)
    Out[I] = A[I] + Alpha * B[I];
}

double kernels::expAccum(double *E, std::size_t N, double Max) {
  Pack4 Acc = simd::zero();
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    // The exponential stays the scalar libm call in every backend, so
    // per-element values never depend on THISTLE_SIMD.
    E[I] = std::exp(E[I] - Max);
    E[I + 1] = std::exp(E[I + 1] - Max);
    E[I + 2] = std::exp(E[I + 2] - Max);
    E[I + 3] = std::exp(E[I + 3] - Max);
    Acc = simd::add(Acc, simd::load(E + I));
  }
  double S = simd::hsum(Acc);
  for (; I < N; ++I) {
    E[I] = std::exp(E[I] - Max);
    S += E[I];
  }
  return S;
}

void kernels::gramAccum(double *H, const double *Row, double W,
                        std::size_t N) {
  for (std::size_t I = 0; I < N; ++I)
    axpy(H + I * N, W * Row[I], Row, N);
}

void kernels::rank1Sub(double *H, const double *G, std::size_t N) {
  for (std::size_t I = 0; I < N; ++I) {
    double *Hr = H + I * N;
    const Pack4 Gi = simd::set1(G[I]);
    std::size_t J = 0;
    for (; J + 4 <= N; J += 4)
      simd::store(Hr + J, simd::sub(simd::load(Hr + J),
                                    simd::mul(Gi, simd::load(G + J))));
    for (; J < N; ++J)
      Hr[J] -= G[I] * G[J];
  }
}

bool kernels::choleskyFactor(double *A, std::size_t N) {
  for (std::size_t J = 0; J < N; ++J) {
    double *RowJ = A + J * N;
    double Diag = RowJ[J] - dot(RowJ, RowJ, J);
    if (!(Diag > 0.0) || !std::isfinite(Diag))
      return false;
    double L = std::sqrt(Diag);
    RowJ[J] = L;
    for (std::size_t I = J + 1; I < N; ++I) {
      double *RowI = A + I * N;
      RowI[J] = (RowI[J] - dot(RowI, RowJ, J)) / L;
    }
  }
  return true;
}

void kernels::choleskySubstitute(const double *L, std::size_t N,
                                 const double *B, double *X,
                                 double *Scratch) {
  // Forward substitution L * Y = B; Y lives in X.
  for (std::size_t I = 0; I < N; ++I)
    X[I] = (B[I] - dot(L + I * N, X, I)) / L[I * N + I];
  // Transpose the factor so back substitution reads contiguous rows.
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I; J < N; ++J)
      Scratch[I * N + J] = L[J * N + I];
  // Back substitution L^T * X = Y.
  for (std::size_t II = N; II > 0; --II) {
    std::size_t I = II - 1;
    X[I] = (X[I] - dot(Scratch + I * N + I + 1, X + I + 1, N - I - 1)) /
           Scratch[I * N + I];
  }
}

bool kernels::choleskySolveInPlace(double *A, std::size_t N,
                                   const double *B, double *X,
                                   double *Scratch) {
  if (!choleskyFactor(A, N))
    return false;
  choleskySubstitute(A, N, B, X, Scratch);
  return true;
}

namespace {

/// Lane-batched dot over lane-interleaved rows: per lane, exactly the
/// blocked association order of kernels::dot (four partials over blocks
/// of four, combined (l0+l1)+(l2+l3), sequential tail).
Pack4 batchDot(const double *A4, const double *B4, std::size_t N) {
  Pack4 Acc0 = simd::zero(), Acc1 = simd::zero();
  Pack4 Acc2 = simd::zero(), Acc3 = simd::zero();
  std::size_t K = 0;
  for (; K + 4 <= N; K += 4) {
    Acc0 = simd::add(Acc0, simd::mul(simd::load(A4 + (K + 0) * 4),
                                     simd::load(B4 + (K + 0) * 4)));
    Acc1 = simd::add(Acc1, simd::mul(simd::load(A4 + (K + 1) * 4),
                                     simd::load(B4 + (K + 1) * 4)));
    Acc2 = simd::add(Acc2, simd::mul(simd::load(A4 + (K + 2) * 4),
                                     simd::load(B4 + (K + 2) * 4)));
    Acc3 = simd::add(Acc3, simd::mul(simd::load(A4 + (K + 3) * 4),
                                     simd::load(B4 + (K + 3) * 4)));
  }
  Pack4 S = simd::add(simd::add(Acc0, Acc1), simd::add(Acc2, Acc3));
  for (; K < N; ++K)
    S = simd::add(S, simd::mul(simd::load(A4 + K * 4),
                               simd::load(B4 + K * 4)));
  return S;
}

} // namespace

kernels::CholeskyBatch4Ok
kernels::choleskySolveBatch4(double *A4, const double *B4, double *X4,
                             std::size_t N, double *Scratch4) {
  CholeskyBatch4Ok R{{true, true, true, true}};

  // Factorization: per lane the same sequence as choleskyFactor. Lanes
  // that hit a bad pivot are flagged and keep running on garbage (NaN
  // stays confined to its lane); their X4 lanes are ignored by callers.
  for (std::size_t J = 0; J < N; ++J) {
    double *RowJ = A4 + J * N * 4;
    Pack4 Diag = simd::sub(simd::load(RowJ + J * 4), batchDot(RowJ, RowJ, J));
    double DiagLanes[4];
    simd::store(DiagLanes, Diag);
    for (int S = 0; S < 4; ++S)
      if (!(DiagLanes[S] > 0.0) || !std::isfinite(DiagLanes[S]))
        R.Ok[S] = false;
    Pack4 L = simd::sqrt(Diag);
    simd::store(RowJ + J * 4, L);
    for (std::size_t I = J + 1; I < N; ++I) {
      double *RowI = A4 + I * N * 4;
      Pack4 V = simd::sub(simd::load(RowI + J * 4), batchDot(RowI, RowJ, J));
      simd::store(RowI + J * 4, simd::div(V, L));
    }
  }

  // Forward substitution L * Y = B; Y lives in X4.
  for (std::size_t I = 0; I < N; ++I) {
    Pack4 V = simd::sub(simd::load(B4 + I * 4),
                        batchDot(A4 + I * N * 4, X4, I));
    simd::store(X4 + I * 4, simd::div(V, simd::load(A4 + (I * N + I) * 4)));
  }
  // Transposed factor, then back substitution L^T * X = Y.
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I; J < N; ++J)
      simd::store(Scratch4 + (I * N + J) * 4,
                  simd::load(A4 + (J * N + I) * 4));
  for (std::size_t II = N; II > 0; --II) {
    std::size_t I = II - 1;
    Pack4 V = simd::sub(simd::load(X4 + I * 4),
                        batchDot(Scratch4 + (I * N + I + 1) * 4,
                                 X4 + (I + 1) * 4, N - I - 1));
    simd::store(X4 + I * 4,
                simd::div(V, simd::load(Scratch4 + (I * N + I) * 4)));
  }
  return R;
}
