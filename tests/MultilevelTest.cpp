//===- tests/MultilevelTest.cpp - Arbitrary-depth hierarchy tests ---------===//
//
// Validates the multilevel generalization three ways: against its own
// brute-force oracle on random mappings and hierarchies, against the
// fixed 4-level pipeline on the classic machine (they must agree
// exactly), and end-to-end through the multilevel GP optimizer.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "multilevel/MultiGp.h"
#include "multilevel/MultiSim.h"
#include "nestmodel/Evaluator.h"
#include "nestmodel/Mapper.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

Problem smallConvProblem() {
  ConvLayer L;
  L.K = 4;
  L.C = 4;
  L.Hin = 6;
  L.Win = 6;
  L.R = 3;
  L.S = 3;
  return makeConvProblem(L);
}

/// A small L-level hierarchy with generous capacities (tests that need
/// legality filtering set their own).
Hierarchy testHierarchy(unsigned NumLevels, unsigned FanoutLevel) {
  Hierarchy H;
  H.NumPEs = 64;
  H.MacEnergyPj = 2.2;
  for (unsigned L = 0; L < NumLevels; ++L)
    H.Levels.push_back({"L" + std::to_string(L), 1 << 20,
                        0.5 * (L + 1), 16.0});
  H.FanoutLevel = FanoutLevel;
  return H;
}

/// Random valid MultiMapping by hierarchical divisor sampling.
MultiMapping randomMultiMapping(const Problem &P, unsigned NumLevels,
                                Rng &R) {
  const unsigned NumIters = P.numIterators();
  MultiMapping M;
  M.TempFactors.assign(NumLevels,
                       std::vector<std::int64_t>(NumIters, 1));
  M.SpatialFactors.assign(NumIters, 1);
  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Rest = P.iterators()[I].Extent;
    for (unsigned L = 0; L + 1 < NumLevels; ++L) {
      std::int64_t F = R.pick(divisorsOf(Rest));
      M.TempFactors[L][I] = F;
      Rest /= F;
    }
    std::int64_t Sp = R.pick(divisorsOf(Rest));
    M.SpatialFactors[I] = Sp;
    M.TempFactors[NumLevels - 1][I] = Rest / Sp;
  }
  std::vector<unsigned> Identity(NumIters);
  for (unsigned I = 0; I < NumIters; ++I)
    Identity[I] = I;
  M.Perms.assign(NumLevels, Identity);
  for (unsigned L = 1; L < NumLevels; ++L)
    R.shuffle(M.Perms[L]);
  return M;
}

} // namespace

TEST(Hierarchy, ValidationCatchesMistakes) {
  Hierarchy H = testHierarchy(3, 1);
  EXPECT_TRUE(H.validate().empty());
  H.FanoutLevel = 3;
  EXPECT_FALSE(H.validate().empty());
  H.FanoutLevel = 0;
  EXPECT_FALSE(H.validate().empty());
  H = testHierarchy(1, 1);
  EXPECT_FALSE(H.validate().empty());
  H = testHierarchy(3, 1);
  H.NumPEs = 0;
  EXPECT_FALSE(H.validate().empty());
  // A non-outermost level with no storage is a modeling error; the
  // outermost (backing store) level is the only one allowed capacity 0
  // (= unbounded).
  H = testHierarchy(3, 1);
  H.Levels[1].CapacityWords = 0;
  EXPECT_FALSE(H.validate().empty());
  EXPECT_NE(H.validate().find("no capacity"), std::string::npos);
  H = testHierarchy(3, 1);
  H.Levels[2].CapacityWords = 0;
  EXPECT_TRUE(H.validate().empty());
  H = testHierarchy(3, 1);
  H.Levels[0].AccessEnergyPj = -1.0;
  EXPECT_FALSE(H.validate().empty());
  H = testHierarchy(3, 1);
  H.Levels[1].Bandwidth = 0.0;
  EXPECT_FALSE(H.validate().empty());
}

TEST(Hierarchy, AreaPricesPrivateLevelsPerPE) {
  // On a 4-level machine with fan-out at level 2, the register file and
  // the scratchpad are replicated per PE while the SRAM is shared; the
  // DRAM level contributes no on-chip area.
  TechParams Tech = TechParams::cgo45nm();
  Hierarchy H;
  H.NumPEs = 64;
  H.MacEnergyPj = 2.2;
  H.FanoutLevel = 2;
  H.Levels = {{"RegisterFile", 512, 0.2, 1e9},
              {"Scratchpad", 2048, 0.8, 4.0},
              {"SRAM", 65536, 6.0, 16.0},
              {"DRAM", 0, 128.0, 4.0}};
  ASSERT_TRUE(H.validate().empty());
  const double PerPE = Tech.AreaMacUm2 + Tech.AreaRegWordUm2 * 512.0 +
                       Tech.AreaSramWordUm2 * 2048.0;
  const double Shared = Tech.AreaSramWordUm2 * 65536.0;
  EXPECT_DOUBLE_EQ(H.areaUm2(Tech), 64.0 * PerPE + Shared);

  // Moving the fan-out boundary up one level turns the scratchpad into a
  // shared structure: the area drops by (NumPEs - 1) copies of it.
  Hierarchy Shared2 = H;
  Shared2.FanoutLevel = 1;
  EXPECT_DOUBLE_EQ(Shared2.areaUm2(Tech),
                   H.areaUm2(Tech) -
                       63.0 * Tech.AreaSramWordUm2 * 2048.0);
}

TEST(Hierarchy, ParseRoundTripsAndRejectsGarbage) {
  const std::string Text = "# four-level scratchpad machine\n"
                           "pes 128\n"
                           "mac-pj 2.2\n"
                           "fanout 2\n"
                           "level RegisterFile 512 0.2 1e9\n"
                           "level Scratchpad 2048 0.8 4\n"
                           "level SRAM 65536 6.0 16\n"
                           "level DRAM - 128.0 4\n";
  Hierarchy H;
  std::string Error;
  ASSERT_TRUE(parseHierarchy(Text, H, Error)) << Error;
  EXPECT_TRUE(H.validate().empty());
  EXPECT_EQ(H.NumPEs, 128);
  EXPECT_EQ(H.FanoutLevel, 2u);
  EXPECT_EQ(H.numLevels(), 4u);
  EXPECT_EQ(H.Levels[1].Name, "Scratchpad");
  EXPECT_EQ(H.Levels[1].CapacityWords, 2048);
  EXPECT_EQ(H.Levels[3].CapacityWords, 0); // "-" = unbounded.
  EXPECT_DOUBLE_EQ(H.MacEnergyPj, 2.2);
  EXPECT_DOUBLE_EQ(H.Levels[0].Bandwidth, 1e9);

  Hierarchy Bad;
  EXPECT_FALSE(parseHierarchy("pes 16\nwibble 3\n", Bad, Error));
  EXPECT_FALSE(parseHierarchy("pes 16\nlevel OnlyName\n", Bad, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(MultiMapper, FindsLegalMappingOnFourLevelMachine) {
  // The generic mapper must search a 4-level machine directly, and its
  // trajectory must not depend on the thread count (same round/slot RNG
  // scheme as the classic path).
  ConvLayer L;
  L.K = 16;
  L.C = 8;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  Hierarchy H = Hierarchy::withScratchpad(eyerissArch(),
                                          TechParams::cgo45nm(),
                                          /*SpadWords=*/2048,
                                          /*SramWords=*/65536);
  MapperOptions Opts;
  Opts.Seed = 3;
  Opts.MaxTrials = 1024;
  Opts.VictoryCondition = 300;
  Opts.Threads = 1;
  MultiMapperResult Ref = searchMultiMappings(P, H, Opts);
  ASSERT_TRUE(Ref.Found);
  EXPECT_TRUE(Ref.BestEval.Legal);
  EXPECT_TRUE(Ref.Best.validate(P, H).empty());
  ASSERT_EQ(Ref.Best.TempFactors.size(), 4u);
  EXPECT_LE(Ref.BestEval.Profile.Occupancy[1], 2048);

  Opts.Threads = 4;
  MultiMapperResult Par = searchMultiMappings(P, H, Opts);
  EXPECT_EQ(Par.Trials, Ref.Trials);
  EXPECT_EQ(Par.LegalTrials, Ref.LegalTrials);
  ASSERT_TRUE(Par.Found);
  EXPECT_EQ(Par.Best.TempFactors, Ref.Best.TempFactors);
  EXPECT_EQ(Par.Best.SpatialFactors, Ref.Best.SpatialFactors);
  EXPECT_EQ(Par.Best.Perms, Ref.Best.Perms);
  EXPECT_DOUBLE_EQ(Par.BestEval.EnergyPj, Ref.BestEval.EnergyPj);
}

TEST(Hierarchy, ClassicMatchesArchConfig) {
  ArchConfig Arch = eyerissArch();
  Hierarchy H = Hierarchy::classic3Level(Arch, TechParams::cgo45nm());
  ASSERT_TRUE(H.validate().empty());
  EXPECT_EQ(H.numLevels(), 3u);
  EXPECT_EQ(H.FanoutLevel, 1u);
  EXPECT_EQ(H.NumPEs, 168);
  EXPECT_EQ(H.Levels[0].CapacityWords, 512);
  EXPECT_EQ(H.Levels[1].CapacityWords, 65536);
  EnergyModel E(TechParams::cgo45nm());
  EXPECT_NEAR(H.Levels[0].AccessEnergyPj, E.regAccessPj(512), 1e-12);
  EXPECT_NEAR(H.Levels[1].AccessEnergyPj, E.sramAccessPj(65536), 1e-12);
  EXPECT_NEAR(H.Levels[2].AccessEnergyPj, 128.0, 1e-12);
}

TEST(MultiMapping, UntiledAndValidation) {
  Problem P = smallConvProblem();
  Hierarchy H = testHierarchy(4, 2);
  MultiMapping M = MultiMapping::untiled(P, 4);
  EXPECT_TRUE(M.validate(P, H).empty());
  EXPECT_EQ(M.numPEsUsed(), 1);
  M.TempFactors[0][1] = 999; // Break the product invariant.
  EXPECT_FALSE(M.validate(P, H).empty());
}

TEST(MultiMapping, TileExtentsIncludeSpatialAtSharedLevels) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Hierarchy H = testHierarchy(3, 1);
  MultiMapping M = MultiMapping::untiled(P, 3);
  M.TempFactors[0][0] = 2;
  M.SpatialFactors[0] = 2;
  M.TempFactors[1][0] = 2;
  M.TempFactors[2][0] = 1;
  ASSERT_TRUE(M.validate(P, H).empty());
  EXPECT_EQ(M.tileExtents(H, 0)[0], 2);     // Private: t0.
  EXPECT_EQ(M.tileExtents(H, 1)[0], 8);     // Shared: t0*t1*p.
  EXPECT_EQ(M.sliceExtents(H)[0], 4);       // Per-PE slice: t0*t1.
}

TEST(MultiNestAnalysis, MatchesOracleOnRandomHierarchies) {
  Problem P = smallConvProblem();
  Rng R(2026);
  for (unsigned NumLevels : {2u, 3u, 4u}) {
    for (unsigned F = 1; F < NumLevels; ++F) {
      Hierarchy H = testHierarchy(NumLevels, F);
      for (int Trial = 0; Trial < 12; ++Trial) {
        MultiMapping M = randomMultiMapping(P, NumLevels, R);
        ASSERT_TRUE(M.validate(P, H).empty());
        SCOPED_TRACE("L=" + std::to_string(NumLevels) + " F=" +
                     std::to_string(F) + " trial " + std::to_string(Trial));
        MultiProfile Model = analyzeMultiNest(P, H, M);
        MultiSimResult Oracle = simulateMultiNest(P, H, M);
        for (unsigned B = 0; B < H.numBoundaries(); ++B)
          for (std::size_t T = 0; T < P.tensors().size(); ++T)
            EXPECT_EQ(Model.Words[B][T], Oracle.Words[B][T])
                << "boundary " << B << " tensor "
                << P.tensors()[T].Name;
      }
    }
  }
}

TEST(MultiNestAnalysis, MatchesOracleOnMatmul) {
  Problem P = makeMatmulProblem(8, 12, 6);
  Rng R(11);
  Hierarchy H = testHierarchy(4, 2);
  for (int Trial = 0; Trial < 25; ++Trial) {
    MultiMapping M = randomMultiMapping(P, 4, R);
    SCOPED_TRACE("trial " + std::to_string(Trial));
    MultiProfile Model = analyzeMultiNest(P, H, M);
    MultiSimResult Oracle = simulateMultiNest(P, H, M);
    for (unsigned B = 0; B < H.numBoundaries(); ++B)
      for (std::size_t T = 0; T < P.tensors().size(); ++T)
        EXPECT_EQ(Model.Words[B][T], Oracle.Words[B][T]);
  }
}

TEST(MultiNestAnalysis, ClassicHierarchyAgreesWithFixedPipeline) {
  // The 3-level classic machine must reproduce the fixed 4-level
  // nestmodel exactly: boundary 0 = SRAM<->registers, boundary 1 =
  // DRAM<->SRAM, same occupancies, same energy and cycles.
  Problem P = smallConvProblem();
  ArchConfig Arch;
  Arch.NumPEs = 64;
  Arch.RegWordsPerPE = 4096;
  Arch.SramWords = 65536;
  TechParams Tech = TechParams::cgo45nm();
  Hierarchy H = Hierarchy::classic3Level(Arch, Tech);
  EnergyModel Energy(Tech);

  Rng R(5);
  for (int Trial = 0; Trial < 25; ++Trial) {
    MultiMapping MM = randomMultiMapping(P, 3, R);
    // Lift to the fixed 4-level Mapping.
    Mapping Map = Mapping::untiled(P);
    for (unsigned I = 0; I < P.numIterators(); ++I) {
      Map.factor(I, TileLevel::Register) = MM.TempFactors[0][I];
      Map.factor(I, TileLevel::PeTemporal) = MM.TempFactors[1][I];
      Map.factor(I, TileLevel::DramTemporal) = MM.TempFactors[2][I];
      Map.factor(I, TileLevel::Spatial) = MM.SpatialFactors[I];
    }
    Map.PePerm = MM.Perms[1];
    Map.DramPerm = MM.Perms[2];
    ASSERT_TRUE(Map.validate(P).empty());

    SCOPED_TRACE("trial " + std::to_string(Trial));
    MultiProfile Multi = analyzeMultiNest(P, H, MM);
    NestProfile Fixed = analyzeNest(P, Map);
    for (std::size_t T = 0; T < P.tensors().size(); ++T) {
      EXPECT_EQ(Multi.Words[0][T], Fixed.PerTensor[T].SramToReg +
                                       Fixed.PerTensor[T].RegToSram);
      EXPECT_EQ(Multi.Words[1][T], Fixed.PerTensor[T].DramToSram +
                                       Fixed.PerTensor[T].SramToDram);
    }
    EXPECT_EQ(Multi.Occupancy[0], Fixed.RegTileWords);
    EXPECT_EQ(Multi.Occupancy[1], Fixed.SramTileWords);
    EXPECT_EQ(Multi.PEsUsed, Fixed.PEsUsed);

    MultiEvalResult MEval = evaluateMultiMapping(P, H, MM);
    EvalResult FEval = evaluateMapping(P, Map, Arch, Energy);
    EXPECT_EQ(MEval.Legal, FEval.Legal);
    EXPECT_NEAR(MEval.EnergyPj, FEval.EnergyPj, 1e-6 * FEval.EnergyPj);
    EXPECT_NEAR(MEval.Cycles, FEval.Cycles, 1e-9 * FEval.Cycles);
  }
}

TEST(MultiGp, ClassicHierarchyTracksFixedOptimizer) {
  // optimizeHierarchy on the classic machine should land near the fixed
  // 4-level optimizer's dataflow result (same model, different search
  // plumbing; spatial stencil unrolling is fixed-pipeline-only, so allow
  // slack).
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();

  MultiOptions MOpts;
  MOpts.MaxPermCombos = 16;
  MultiResult Multi =
      optimizeHierarchy(P, Hierarchy::classic3Level(Arch, Tech), MOpts);
  ASSERT_TRUE(Multi.Found);
  EXPECT_TRUE(Multi.Eval.Legal);

  ThistleOptions TOpts;
  TOpts.MaxPermClassPairs = 16;
  ThistleResult Fixed = optimizeLayer(P, Arch, Tech, TOpts);
  ASSERT_TRUE(Fixed.Found);
  EXPECT_LT(Multi.Eval.EnergyPj, Fixed.Eval.EnergyPj * 1.3);
  EXPECT_GT(Multi.Eval.EnergyPj, Fixed.Eval.EnergyPj * 0.7);
}

TEST(MultiGp, ScratchpadHierarchyProducesLegalDesign) {
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  TechParams Tech = TechParams::cgo45nm();
  Hierarchy H = Hierarchy::withScratchpad(eyerissArch(), Tech,
                                          /*SpadWords=*/2048,
                                          /*SramWords=*/65536);
  ASSERT_TRUE(H.validate().empty());
  ASSERT_EQ(H.numLevels(), 4u);

  MultiOptions MOpts;
  MOpts.MaxPermCombos = 12;
  MultiResult R = optimizeHierarchy(P, H, MOpts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  EXPECT_TRUE(R.Map.validate(P, H).empty());
  // The scratchpad must actually hold tiles within its capacity.
  EXPECT_LE(R.Eval.Profile.Occupancy[1], 2048);
}

TEST(MultiGp, DelayObjectiveUsesParallelism) {
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  MultiOptions MOpts;
  MOpts.Objective = SearchObjective::Delay;
  MOpts.MaxPermCombos = 8;
  MultiResult R = optimizeHierarchy(
      P, Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm()), MOpts);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.Eval.MacIpc, 4.0);
}

TEST(MultiGp, DeterministicAcrossRuns) {
  Problem P = smallConvProblem();
  MultiOptions MOpts;
  MOpts.MaxPermCombos = 6;
  Hierarchy H = Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());
  MultiResult A = optimizeHierarchy(P, H, MOpts);
  MultiResult B = optimizeHierarchy(P, H, MOpts);
  ASSERT_TRUE(A.Found);
  ASSERT_TRUE(B.Found);
  EXPECT_DOUBLE_EQ(A.Eval.EnergyPj, B.Eval.EnergyPj);
}

TEST(MultiCoDesign, RespectsAreaBudgetAndBeatsEyeriss) {
  // Capacity co-design of the 3-level machine at the Eyeriss area must
  // find a design at least as good as the fixed Eyeriss hierarchy (it
  // can rediscover it), and every reported capacity must be a power of
  // two within the budget.
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  Hierarchy H = Hierarchy::classic3Level(Arch, Tech);

  MultiOptions Fixed;
  Fixed.MaxPermCombos = 8;
  MultiResult FixedRes = optimizeHierarchy(P, H, Fixed);
  ASSERT_TRUE(FixedRes.Found);

  MultiOptions Co = Fixed;
  Co.CoDesignCapacities = true;
  Co.AreaBudgetUm2 = eyerissAreaUm2(Tech);
  MultiResult CoRes = optimizeHierarchy(P, H, Co);
  ASSERT_TRUE(CoRes.Found);
  EXPECT_TRUE(CoRes.Eval.Legal);
  EXPECT_LE(CoRes.Arch.areaUm2(Tech), Co.AreaBudgetUm2 * 1.0000001);
  for (unsigned Lv = 0; Lv + 1 < CoRes.Arch.numLevels(); ++Lv)
    EXPECT_TRUE(isPowerOfTwo(CoRes.Arch.Levels[Lv].CapacityWords));
  // Co-design at equal area should clearly beat the Eyeriss capacities
  // (Fig. 5's trend, reproduced through the multilevel path).
  EXPECT_LT(CoRes.Eval.EnergyPj, FixedRes.Eval.EnergyPj * 0.7);
}

TEST(MultiCoDesign, FourLevelCoDesignIsLegalAtEqualArea) {
  ConvLayer L;
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  TechParams Tech = TechParams::cgo45nm();
  Hierarchy H = Hierarchy::withScratchpad(eyerissArch(), Tech, 1024,
                                          eyerissArch().SramWords);
  MultiOptions Co;
  Co.MaxPermCombos = 8;
  Co.CoDesignCapacities = true;
  Co.AreaBudgetUm2 = eyerissAreaUm2(Tech);
  MultiResult R = optimizeHierarchy(P, H, Co);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  EXPECT_LE(R.Arch.areaUm2(Tech), Co.AreaBudgetUm2 * 1.0000001);
  EXPECT_EQ(R.Arch.numLevels(), 4u);
  // The scratchpad occupancy must respect the co-designed capacity.
  EXPECT_LE(R.Eval.Profile.Occupancy[1], R.Arch.Levels[1].CapacityWords);
}

TEST(MultiGp, TwoLevelHierarchyWorks) {
  // The degenerate L=2 machine (registers + DRAM, fan-out below the
  // backing store) still optimizes: a single boundary, one permuted
  // level.
  Problem P = smallConvProblem();
  Hierarchy H;
  H.NumPEs = 16;
  H.MacEnergyPj = 2.2;
  H.FanoutLevel = 1;
  H.Levels = {{"RegisterFile", 4096, 0.25, 1e9},
              {"DRAM", 0, 128.0, 16.0}};
  ASSERT_TRUE(H.validate().empty());
  MultiOptions O;
  O.MaxPermCombos = 6;
  MultiResult R = optimizeHierarchy(P, H, O);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  EXPECT_EQ(R.Eval.Profile.Words.size(), 1u);
}

TEST(MultiGp, FanoutAtTopLevelWorks) {
  // F = L-1: every on-chip level is private to a PE; only DRAM is
  // shared.
  Problem P = smallConvProblem();
  Hierarchy H = testHierarchy(3, 2);
  MultiOptions O;
  O.MaxPermCombos = 6;
  MultiResult R = optimizeHierarchy(P, H, O);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
}

// ---- Robustness: structured parse errors, validation, degradation ---------

#include "support/FaultInjection.h"

#include <chrono>

namespace {

/// Shorthand: parse and return the error message (empty on success).
std::string parseErrorOf(const std::string &Text) {
  Expected<Hierarchy> Parsed = parseHierarchy(Text);
  return Parsed.hasValue() ? std::string() : Parsed.status().message();
}

} // namespace

TEST(Hierarchy, ParseReportsLineNumbers) {
  // Each malformed input names the offending line.
  EXPECT_NE(parseErrorOf("pes zero\n").find("line 1"), std::string::npos);
  EXPECT_NE(parseErrorOf("pes 16\npes -2\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parseErrorOf("pes 16\nmac-pj nan\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parseErrorOf("pes 16\nfanout 0\n").find("line 2"),
            std::string::npos);
  // Truncated level line (name only, missing fields).
  EXPECT_NE(parseErrorOf("pes 16\nlevel OnlyName\n").find("line 2"),
            std::string::npos);
  // Malformed capacity token.
  EXPECT_NE(
      parseErrorOf("pes 16\nlevel RF 12cats 0.5 16\n").find("line 2"),
      std::string::npos);
  // Non-positive capacity.
  EXPECT_NE(parseErrorOf("pes 16\nlevel RF 0 0.5 16\n").find("line 2"),
            std::string::npos);
  // Negative access energy / non-positive bandwidth.
  EXPECT_NE(parseErrorOf("pes 16\nlevel RF 64 -0.5 16\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parseErrorOf("pes 16\nlevel RF 64 0.5 0\n").find("line 2"),
            std::string::npos);
  // Trailing junk after the fields.
  EXPECT_NE(
      parseErrorOf("pes 16\nlevel RF 64 0.5 16 extra\n").find("line 2"),
      std::string::npos);
  // Unknown directive.
  EXPECT_NE(parseErrorOf("pes 16\nwibble 3\n").find("line 2"),
            std::string::npos);
}

TEST(Hierarchy, ParseRejectsDuplicateLevelNames) {
  std::string Error = parseErrorOf("pes 16\n"
                                   "level RF 64 0.5 1e9\n"
                                   "level RF 1024 2.0 80\n"
                                   "level DRAM - 128 16\n");
  EXPECT_NE(Error.find("line 3"), std::string::npos);
  EXPECT_NE(Error.find("RF"), std::string::npos);
}

TEST(Hierarchy, ParseRejectsUnboundedInnerLevel) {
  // "-" (unbounded capacity) is only meaningful at the outermost level.
  std::string Error = parseErrorOf("pes 16\n"
                                   "level RF - 0.5 1e9\n"
                                   "level DRAM 1024 128 16\n");
  EXPECT_FALSE(Error.empty());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(Hierarchy, ParseExpectedOverloadRoundTrips) {
  Expected<Hierarchy> Parsed = parseHierarchy("pes 128\n"
                                              "mac-pj 2.2\n"
                                              "fanout 1\n"
                                              "level RF 512 0.2 1e9\n"
                                              "level SRAM 65536 6.0 16\n"
                                              "level DRAM - 128.0 4\n");
  ASSERT_TRUE(Parsed.hasValue()) << Parsed.status().toString();
  const Hierarchy &H = Parsed.value();
  EXPECT_EQ(H.NumPEs, 128);
  EXPECT_EQ(H.numLevels(), 3u);
  EXPECT_EQ(H.Levels[2].CapacityWords, 0); // Unbounded DRAM.
}

TEST(MultiGp, RejectsInvalidHierarchy) {
  Problem P = smallConvProblem();
  Hierarchy Bad; // Zero levels: validate() cannot pass.
  MultiResult R = optimizeHierarchy(P, Bad);
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(R.Report.total(), 0u);
}

TEST(MultiGp, RejectsCoDesignWithoutBudget) {
  Problem P = smallConvProblem();
  Hierarchy H = Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());
  MultiOptions O;
  O.CoDesignCapacities = true;
  O.AreaBudgetUm2 = 0.0;
  MultiResult R = optimizeHierarchy(P, H, O);
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
}

TEST(MultiGp, ExpiredDeadlineSkipsAllCombos) {
  Problem P = smallConvProblem();
  Hierarchy H = Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());
  MultiOptions O;
  O.MaxPermCombos = 6;
  O.DeadlineAt = std::chrono::steady_clock::now() - std::chrono::hours(1);
  MultiResult R = optimizeHierarchy(P, H, O);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.InputStatus.isOk());
  EXPECT_TRUE(R.Report.DeadlineExpired);
  EXPECT_GT(R.Report.Skipped, 0u);
  EXPECT_EQ(R.Report.Skipped, R.Report.total());
}

TEST(MultiGp, FarFutureDeadlineMatchesUnboundedRun) {
  Problem P = smallConvProblem();
  Hierarchy H = Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());
  MultiOptions O;
  O.MaxPermCombos = 6;
  MultiResult Ref = optimizeHierarchy(P, H, O);
  ASSERT_TRUE(Ref.Found);
  O.DeadlineAt = std::chrono::steady_clock::now() + std::chrono::hours(24);
  MultiResult R = optimizeHierarchy(P, H, O);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Eval.EnergyPj, Ref.Eval.EnergyPj);
  EXPECT_EQ(R.ModelObjective, Ref.ModelObjective);
  EXPECT_FALSE(R.Report.DeadlineExpired);
}

#if THISTLE_FAULT_INJECTION_ENABLED

namespace {

struct MultiFaultGuard {
  ~MultiFaultGuard() { fault::disarmAll(); }
};

} // namespace

TEST(MultiGp, PoisonedComboDegradesGracefully) {
  MultiFaultGuard G;
  Problem P = smallConvProblem();
  Hierarchy H = Hierarchy::classic3Level(eyerissArch(), TechParams::cgo45nm());
  MultiOptions O;
  O.MaxPermCombos = 6;
  O.Threads = 1;

  fault::arm("multigp.combo", /*Key=*/0, /*MaxHits=*/1);
  MultiResult Ref = optimizeHierarchy(P, H, O);
  ASSERT_TRUE(Ref.Found); // Best of the surviving combos.
  EXPECT_EQ(Ref.Report.Failed, 1u);
  const SweepIncident *Poisoned = nullptr;
  for (const SweepIncident &I : Ref.Report.Incidents)
    if (I.Outcome == TaskOutcome::Failed)
      Poisoned = &I;
  ASSERT_NE(Poisoned, nullptr);
  EXPECT_EQ(Poisoned->Index, 0u);
  EXPECT_NE(Poisoned->Detail.find("injected"), std::string::npos);

  for (unsigned Threads : {2u, 8u}) {
    SCOPED_TRACE(std::to_string(Threads) + " threads");
    fault::arm("multigp.combo", /*Key=*/0, /*MaxHits=*/1);
    O.Threads = Threads;
    MultiResult R = optimizeHierarchy(P, H, O);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.Eval.EnergyPj, Ref.Eval.EnergyPj);
    EXPECT_EQ(R.ModelObjective, Ref.ModelObjective);
    EXPECT_EQ(R.Report.Failed, Ref.Report.Failed);
    EXPECT_EQ(R.Report.Solved, Ref.Report.Solved);
    ASSERT_EQ(R.Report.Incidents.size(), Ref.Report.Incidents.size());
    for (std::size_t I = 0; I < R.Report.Incidents.size(); ++I)
      EXPECT_EQ(R.Report.Incidents[I].Index, Ref.Report.Incidents[I].Index);
  }
}

TEST(Hierarchy, ParseFaultSiteInjects) {
  MultiFaultGuard G;
  fault::arm("parse.hierarchy", fault::AnyKey, /*MaxHits=*/1);
  Expected<Hierarchy> Parsed =
      parseHierarchy("pes 16\nlevel DRAM - 1 1\n");
  ASSERT_FALSE(Parsed.hasValue());
  EXPECT_EQ(Parsed.status().code(), StatusCode::ParseError);
  EXPECT_NE(Parsed.status().message().find("injected"), std::string::npos);
}

#endif // THISTLE_FAULT_INJECTION_ENABLED
