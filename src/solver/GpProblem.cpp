//===- solver/GpProblem.cpp - Geometric program description ---------------===//

#include "solver/GpProblem.h"

#include <cassert>
#include <sstream>

using namespace thistle;

void GpProblem::setObjective(Posynomial Obj) {
  assert(Obj.isPosynomial() && "GP objective must be a posynomial");
  Objective = std::move(Obj);
}

void GpProblem::addUpperBound(const Posynomial &Lhs, double Bound,
                              std::string Label) {
  assert(Lhs.isPosynomial() && "GP constraint LHS must be a posynomial");
  assert(Bound > 0.0 && "GP constraint bound must be positive");
  Constraints.push_back({Lhs.scaled(1.0 / Bound), std::move(Label)});
}

void GpProblem::addUpperBound(const Posynomial &Lhs, const Monomial &Rhs,
                              std::string Label) {
  assert(Lhs.isPosynomial() && "GP constraint LHS must be a posynomial");
  assert(Rhs.coefficient() > 0.0 && "GP constraint RHS must be a monomial");
  Constraints.push_back({Lhs * Rhs.pow(-1.0), std::move(Label)});
}

void GpProblem::addEquality(const Monomial &Lhs, double Value,
                            std::string Label) {
  assert(Lhs.coefficient() > 0.0 && "equality LHS must have positive coeff");
  assert(Value > 0.0 && "equality RHS must be positive");
  Equalities.push_back({Lhs.scaled(1.0 / Value), std::move(Label)});
}

void GpProblem::addVariableBounds(VarId Var, double UpperBound) {
  // 1 <= x  <=>  x^-1 <= 1.
  Constraints.push_back({Posynomial(Monomial::variable(Var, -1.0)),
                         Vars.nameOf(Var) + " >= 1"});
  if (UpperBound > 0.0)
    Constraints.push_back(
        {Posynomial(Monomial::variable(Var, 1.0, 1.0 / UpperBound)),
         Vars.nameOf(Var) + " <= ub"});
}

std::string GpProblem::toString() const {
  std::ostringstream OS;
  OS << "minimize " << Objective.toString(Vars) << "\n";
  for (const Constraint &C : Constraints) {
    OS << "  s.t. " << C.Lhs.toString(Vars) << " <= 1";
    if (!C.Label.empty())
      OS << "    [" << C.Label << "]";
    OS << "\n";
  }
  for (const Equality &E : Equalities) {
    OS << "  s.t. " << E.Lhs.toString(Vars) << " == 1";
    if (!E.Label.empty())
      OS << "    [" << E.Label << "]";
    OS << "\n";
  }
  return OS.str();
}
