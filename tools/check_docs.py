#!/usr/bin/env python3
"""Audits the repository documentation for drift.

Two checks, both cheap enough to run on every ctest invocation:

1. Cross-references: every relative markdown link in README.md,
   DESIGN.md, ROADMAP.md and docs/*.md must point at a file that exists,
   and a `#fragment`, if present, must match a GitHub-style anchor of a
   heading in the target document. External (http/https/mailto) links
   are skipped.

2. Flag coverage: every command-line flag the thistle-opt,
   thistle-serve and thistle-query parsers accept — scraped from the
   `Arg == "--x"` chains in their sources, the same convention
   CheckUsage.cmake audits for the --help texts — must be mentioned in
   docs/THISTLE_OPT.md respectively docs/SERVING.md, so a new flag
   cannot land undocumented.

Usage: check_docs.py [--root REPO_ROOT]
Exits 0 when clean, 1 with one `error:` line per problem otherwise.
"""

import argparse
import os
import re
import sys

DOC_FILES = ("README.md", "DESIGN.md", "ROADMAP.md")
DOC_DIRS = ("docs",)

# (source file scraped for `Arg == "--x"`, document that must mention
# every scraped flag)
FLAG_AUDITS = (
    (os.path.join("tools", "thistle-opt.cpp"),
     os.path.join("docs", "THISTLE_OPT.md")),
    (os.path.join("tools", "thistle-serve.cpp"),
     os.path.join("docs", "SERVING.md")),
    (os.path.join("tools", "thistle-query.cpp"),
     os.path.join("docs", "SERVING.md")),
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
ARG_RE = re.compile(r"Arg == \"(--[a-z-]+)\"")


def strip_code(text):
    """Drops fenced code blocks and inline code spans: a `# comment` in
    a shell snippet is not a heading, and `foo[i](x)` is not a link."""
    lines, fenced = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        lines.append("" if fenced else re.sub(r"`[^`]*`", "", line))
    return "\n".join(lines)


def anchor_of(heading):
    """GitHub's heading-to-anchor slug: lowercase, punctuation dropped,
    spaces hyphenated."""
    slug = heading.strip().lower().replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        text = strip_code(f.read())
    anchors, seen = set(), {}
    for line in text.splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = anchor_of(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def doc_paths(root):
    paths = [os.path.join(root, f) for f in DOC_FILES]
    for d in DOC_DIRS:
        full = os.path.join(root, d)
        if os.path.isdir(full):
            paths.extend(os.path.join(full, f)
                         for f in sorted(os.listdir(full))
                         if f.endswith(".md"))
    return [p for p in paths if os.path.isfile(p)]


def check_links(root):
    errors = []
    anchor_cache = {}
    for path in doc_paths(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = strip_code(f.read())
        for target in LINK_RE.findall(text):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            target, _, fragment = target.partition("#")
            if target:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                dest = path  # Same-document #fragment.
            if not os.path.isfile(dest):
                errors.append(f"{rel}: broken link '{target}'")
                continue
            if fragment:
                if not dest.endswith(".md"):
                    continue
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment not in anchor_cache[dest]:
                    errors.append(
                        f"{rel}: link '{target or rel}#{fragment}' has "
                        f"no matching heading")
    return errors


def check_flags(root):
    errors = []
    for source, doc in FLAG_AUDITS:
        src_path = os.path.join(root, source)
        doc_path = os.path.join(root, doc)
        if not os.path.isfile(src_path):
            errors.append(f"{source}: missing (flag audit)")
            continue
        if not os.path.isfile(doc_path):
            errors.append(f"{doc}: missing (flag audit for {source})")
            continue
        with open(src_path, encoding="utf-8") as f:
            flags = sorted(set(ARG_RE.findall(f.read())))
        with open(doc_path, encoding="utf-8") as f:
            doc_text = f.read()
        for flag in flags:
            if not re.search(re.escape(flag) + r"(?![a-z-])", doc_text):
                errors.append(
                    f"{doc}: flag {flag} (from {source}) undocumented")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the script's parent directory)")
    args = parser.parse_args()

    errors = check_links(args.root) + check_flags(args.root)
    for err in errors:
        print(f"error: {err}")
    if errors:
        print(f"{len(errors)} problem(s)")
        return 1
    print(f"docs clean: {len(doc_paths(args.root))} file(s) audited")
    return 0


if __name__ == "__main__":
    sys.exit(main())
