//===- tests/ExprTest.cpp - expr/ unit tests ------------------------------===//

#include "expr/FactoredExpr.h"
#include "expr/Monomial.h"
#include "expr/Signomial.h"
#include "expr/VarTable.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace thistle;

namespace {

struct ExprFixture : public ::testing::Test {
  VarTable Vars;
  VarId X = Vars.intern("x");
  VarId Y = Vars.intern("y");
  VarId Z = Vars.intern("z");

  Assignment values(double Xv, double Yv, double Zv) const {
    return {Xv, Yv, Zv};
  }
};

} // namespace

TEST_F(ExprFixture, VarTableInternsStably) {
  EXPECT_EQ(Vars.intern("x"), X);
  EXPECT_EQ(Vars.lookup("y"), Y);
  EXPECT_TRUE(Vars.contains("z"));
  EXPECT_FALSE(Vars.contains("w"));
  EXPECT_EQ(Vars.nameOf(Z), "z");
  EXPECT_EQ(Vars.size(), 3u);
}

TEST_F(ExprFixture, MonomialProductMergesExponents) {
  Monomial A = Monomial::variable(X, 2.0, 3.0); // 3 x^2
  Monomial B = Monomial::variable(X, 1.0) * Monomial::variable(Y); // x y
  Monomial P = A * B; // 3 x^3 y
  EXPECT_DOUBLE_EQ(P.coefficient(), 3.0);
  EXPECT_DOUBLE_EQ(P.exponentOf(X), 3.0);
  EXPECT_DOUBLE_EQ(P.exponentOf(Y), 1.0);
  EXPECT_DOUBLE_EQ(P.exponentOf(Z), 0.0);
  EXPECT_DOUBLE_EQ(P.evaluate(values(2, 5, 1)), 3 * 8 * 5);
}

TEST_F(ExprFixture, MonomialCancellationRemovesVariable) {
  Monomial A = Monomial::variable(X, 2.0);
  Monomial B = Monomial::variable(X, -2.0);
  Monomial P = A * B;
  EXPECT_TRUE(P.isConstant());
  EXPECT_DOUBLE_EQ(P.coefficient(), 1.0);
}

TEST_F(ExprFixture, MonomialPow) {
  Monomial A = Monomial::variable(X, 2.0, 4.0); // 4 x^2
  Monomial Sqrt = A.pow(0.5);                   // 2 x
  EXPECT_DOUBLE_EQ(Sqrt.coefficient(), 2.0);
  EXPECT_DOUBLE_EQ(Sqrt.exponentOf(X), 1.0);
  Monomial Inv = A.pow(-1.0);
  EXPECT_DOUBLE_EQ(Inv.evaluate(values(2, 1, 1)), 1.0 / 16.0);
  EXPECT_TRUE(A.pow(0.0).isConstant());
}

TEST_F(ExprFixture, MonomialSubstitution) {
  // x -> 5 y z in x^2: expect 25 y^2 z^2.
  Monomial M = Monomial::variable(X, 2.0);
  Monomial Repl =
      Monomial::variable(Y).scaled(5.0) * Monomial::variable(Z);
  Monomial Out = M.substituted(X, Repl);
  EXPECT_DOUBLE_EQ(Out.coefficient(), 25.0);
  EXPECT_DOUBLE_EQ(Out.exponentOf(X), 0.0);
  EXPECT_DOUBLE_EQ(Out.exponentOf(Y), 2.0);
  EXPECT_DOUBLE_EQ(Out.exponentOf(Z), 2.0);
  // Substituting an absent variable is the identity.
  Monomial Same = M.substituted(Y, Repl);
  EXPECT_TRUE(Same.sameVariablesAs(M));
}

TEST_F(ExprFixture, MonomialToString) {
  EXPECT_EQ(Monomial(2.0).toString(Vars), "2");
  EXPECT_EQ(Monomial::variable(X).toString(Vars), "x");
  EXPECT_EQ((Monomial::variable(X, 2.0, 3.0) * Monomial::variable(Y))
                .toString(Vars),
            "3*x^2*y");
}

TEST_F(ExprFixture, SignomialAdditionMergesLikeTerms) {
  Signomial S = Signomial::variable(X) + Signomial::variable(X);
  ASSERT_EQ(S.monomials().size(), 1u);
  EXPECT_DOUBLE_EQ(S.monomials()[0].coefficient(), 2.0);

  Signomial ZeroSum = Signomial::variable(Y) -
                      Signomial(Monomial::variable(Y));
  EXPECT_TRUE(ZeroSum.isZero());
}

TEST_F(ExprFixture, SignomialDistributesProducts) {
  // (x + 1)(x - 1) = x^2 - 1.
  Signomial A = Signomial::variable(X) + Signomial::constant(1.0);
  Signomial B = Signomial::variable(X) - Signomial::constant(1.0);
  Signomial P = A * B;
  EXPECT_EQ(P.monomials().size(), 2u);
  EXPECT_DOUBLE_EQ(P.evaluate(values(3, 1, 1)), 8.0);
  EXPECT_FALSE(P.isPosynomial());
}

TEST_F(ExprFixture, SignomialPosynomialUpperBound) {
  // x y + 2 x - 3 -> x y + 2 x, an upper bound for positive x, y.
  Signomial S = Signomial(Monomial::variable(X) * Monomial::variable(Y)) +
                Signomial(Monomial::variable(X).scaled(2.0)) -
                Signomial::constant(3.0);
  Signomial B = S.posynomialUpperBound();
  EXPECT_TRUE(B.isPosynomial());
  for (double Xv : {1.0, 2.5, 10.0})
    for (double Yv : {1.0, 7.0})
      EXPECT_GE(B.evaluate(values(Xv, Yv, 1)), S.evaluate(values(Xv, Yv, 1)));
}

TEST_F(ExprFixture, SignomialSubstitution) {
  // (x + y - 1) with x -> z x: (z x + y - 1).
  Signomial S = Signomial::variable(X) + Signomial::variable(Y) -
                Signomial::constant(1.0);
  Signomial Out =
      S.substituted(X, Monomial::variable(Z) * Monomial::variable(X));
  EXPECT_DOUBLE_EQ(Out.evaluate(values(2, 3, 4)), 4 * 2 + 3 - 1);
  EXPECT_TRUE(S.mentions(X));
  EXPECT_FALSE(S.mentions(Z));
  EXPECT_TRUE(Out.mentions(Z));
}

TEST_F(ExprFixture, SignomialToString) {
  Signomial S = Signomial::variable(X) + Signomial::variable(Y) -
                Signomial::constant(1.0);
  EXPECT_EQ(S.toString(Vars), "x + y - 1");
  EXPECT_EQ(Signomial().toString(Vars), "0");
}

TEST_F(ExprFixture, SignomialEquality) {
  Signomial A = Signomial::variable(X) + Signomial::constant(2.0);
  Signomial B = Signomial::constant(2.0) + Signomial::variable(X);
  EXPECT_TRUE(A == B);
  Signomial C = A + Signomial::constant(1.0);
  EXPECT_FALSE(A == C);
}

TEST_F(ExprFixture, FactoredExprFoldsMonomialFactors) {
  FactoredExpr E;
  E.pushFactor(Signomial::variable(X)); // Single monomial: folds to prefix.
  EXPECT_TRUE(E.factors().empty());
  EXPECT_DOUBLE_EQ(E.prefix().exponentOf(X), 1.0);

  E.pushFactor(Signomial::variable(Y) + Signomial::constant(1.0));
  EXPECT_EQ(E.factors().size(), 1u);
  EXPECT_DOUBLE_EQ(E.evaluate(values(3, 4, 1)), 3 * (4 + 1));
}

TEST_F(ExprFixture, FactoredExprExpansionMatchesEvaluation) {
  FactoredExpr E(Monomial(2.0));
  E.pushFactor(Signomial::variable(X) + Signomial::constant(1.0));
  E.pushFactor(Signomial::variable(Y) - Signomial::constant(1.0));
  Signomial Flat = E.expanded();
  for (double Xv : {1.0, 3.0})
    for (double Yv : {2.0, 5.0})
      EXPECT_DOUBLE_EQ(Flat.evaluate(values(Xv, Yv, 1)),
                       E.evaluate(values(Xv, Yv, 1)));
}

TEST_F(ExprFixture, FactoredExprSubstitutionHitsAllFactors) {
  FactoredExpr E(Monomial::variable(X));
  E.pushFactor(Signomial::variable(X) + Signomial::variable(Y));
  FactoredExpr Out =
      E.substituted(X, Monomial::variable(Z) * Monomial::variable(X));
  // x (x + y) with x -> z x: z x (z x + y).
  EXPECT_DOUBLE_EQ(Out.evaluate(values(2, 3, 4)), 4 * 2 * (4 * 2 + 3));
}

TEST_F(ExprFixture, FactoredExprUpperBound) {
  FactoredExpr E;
  E.pushFactor(Signomial::variable(X) + Signomial::variable(Y) -
               Signomial::constant(1.0));
  E.pushFactor(Signomial::variable(Z).scaled(2.0) - Signomial::constant(1.0));
  FactoredExpr B = E.posynomialUpperBound();
  Assignment V = values(2, 3, 4);
  EXPECT_GE(B.evaluate(V), E.evaluate(V));
  EXPECT_TRUE(B.expanded().isPosynomial());
}

TEST_F(ExprFixture, FactoredExprToString) {
  FactoredExpr E(Monomial::variable(X).scaled(2.0));
  E.pushFactor(Signomial::variable(Y) + Signomial::constant(1.0));
  EXPECT_EQ(E.toString(Vars), "2*x * (y + 1)");
}
