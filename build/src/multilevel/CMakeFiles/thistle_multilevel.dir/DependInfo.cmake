
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multilevel/Hierarchy.cpp" "src/multilevel/CMakeFiles/thistle_multilevel.dir/Hierarchy.cpp.o" "gcc" "src/multilevel/CMakeFiles/thistle_multilevel.dir/Hierarchy.cpp.o.d"
  "/root/repo/src/multilevel/MultiGp.cpp" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiGp.cpp.o" "gcc" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiGp.cpp.o.d"
  "/root/repo/src/multilevel/MultiMapping.cpp" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiMapping.cpp.o" "gcc" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiMapping.cpp.o.d"
  "/root/repo/src/multilevel/MultiNestAnalysis.cpp" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiNestAnalysis.cpp.o" "gcc" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiNestAnalysis.cpp.o.d"
  "/root/repo/src/multilevel/MultiSim.cpp" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiSim.cpp.o" "gcc" "src/multilevel/CMakeFiles/thistle_multilevel.dir/MultiSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/thistle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/thistle_model.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/thistle_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/nestmodel/CMakeFiles/thistle_nestmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/thistle_support.dir/DependInfo.cmake"
  "/root/repo/build/src/thistle/CMakeFiles/thistle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/thistle_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/thistle_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
