//===- export/TimeloopExport.cpp - Timeloop YAML emission -----------------===//

#include "export/TimeloopExport.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <sstream>

using namespace thistle;

namespace {

/// Timeloop dimension names are conventionally upper case.
std::string dimName(const Problem &Prob, unsigned Iter) {
  std::string Name = Prob.iterators()[Iter].Name;
  std::transform(Name.begin(), Name.end(), Name.begin(),
                 [](unsigned char C) { return std::toupper(C); });
  return Name;
}

/// Renders "K=4 C=2 ..." for the nonunit factors of one level, covering
/// every dimension (Timeloop requires all products to multiply to the
/// instance extents, so unit factors are listed explicitly).
std::string factorString(const Problem &Prob, const Mapping &Map,
                         TileLevel Level) {
  std::ostringstream OS;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    if (I)
      OS << " ";
    OS << dimName(Prob, I) << "=" << Map.factor(I, Level);
  }
  return OS.str();
}

/// Timeloop permutations are written innermost-to-outermost.
std::string permString(const Problem &Prob,
                       const std::vector<unsigned> &OuterToInner) {
  std::string Out;
  for (auto It = OuterToInner.rbegin(); It != OuterToInner.rend(); ++It) {
    if (!Out.empty())
      Out += " ";
    Out += dimName(Prob, *It);
  }
  return Out;
}

} // namespace

std::string thistle::exportTimeloopArch(const ArchConfig &Arch,
                                        const TechParams &Tech) {
  std::ostringstream OS;
  OS << "architecture:\n";
  OS << "  version: 0.3\n";
  OS << "  subtree:\n";
  OS << "  - name: system\n";
  OS << "    attributes:\n";
  OS << "      technology: 45nm\n";
  OS << "    local:\n";
  OS << "    - name: DRAM\n";
  OS << "      class: DRAM\n";
  OS << "      attributes:\n";
  OS << "        type: LPDDR4\n";
  OS << "        word-bits: 16\n";
  OS << "        read_bandwidth: " << Arch.DramBandwidth / 2 << "\n";
  OS << "        write_bandwidth: " << Arch.DramBandwidth / 2 << "\n";
  OS << "    subtree:\n";
  OS << "    - name: chip\n";
  OS << "      local:\n";
  OS << "      - name: SRAM\n";
  OS << "        class: SRAM\n";
  OS << "        attributes:\n";
  OS << "          depth: " << Arch.SramWords << "\n";
  OS << "          word-bits: 16\n";
  OS << "          read_bandwidth: " << Arch.SramBandwidth / 2 << "\n";
  OS << "          write_bandwidth: " << Arch.SramBandwidth / 2 << "\n";
  OS << "          # access energy (Eq. 4): "
     << Tech.SigmaSramPj * std::sqrt(static_cast<double>(Arch.SramWords))
     << " pJ\n";
  OS << "      subtree:\n";
  OS << "      - name: PE[0.." << (Arch.NumPEs - 1) << "]\n";
  OS << "        local:\n";
  OS << "        - name: RegisterFile\n";
  OS << "          class: regfile\n";
  OS << "          attributes:\n";
  OS << "            depth: " << Arch.RegWordsPerPE << "\n";
  OS << "            word-bits: 16\n";
  OS << "            # access energy (Eq. 4): "
     << Tech.SigmaRegPj * static_cast<double>(Arch.RegWordsPerPE)
     << " pJ\n";
  OS << "        - name: MACC\n";
  OS << "          class: intmac\n";
  OS << "          attributes:\n";
  OS << "            datawidth: 16\n";
  return OS.str();
}

std::string thistle::exportTimeloopProblem(const Problem &Prob) {
  std::ostringstream OS;
  OS << "problem:\n";
  OS << "  shape:\n";
  OS << "    name: " << Prob.name() << "\n";
  OS << "    dimensions: [";
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    OS << (I ? ", " : " ") << dimName(Prob, I);
  OS << " ]\n";
  OS << "    data-spaces:\n";
  for (const Tensor &T : Prob.tensors()) {
    OS << "    - name: " << T.Name << "\n";
    OS << "      projection:\n";
    for (const DimRef &D : T.Dims) {
      OS << "      - [";
      for (std::size_t K = 0; K < D.Terms.size(); ++K) {
        const DimRef::Term &Term = D.Terms[K];
        OS << (K ? ", " : " ") << "[ " << dimName(Prob, Term.Iter);
        if (Term.Stride != 1)
          OS << ", " << Term.Stride;
        OS << " ]";
      }
      OS << " ]\n";
    }
    if (T.ReadWrite)
      OS << "      read-write: true\n";
  }
  OS << "  instance:\n";
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    OS << "    " << dimName(Prob, I) << ": "
       << Prob.iterators()[I].Extent << "\n";
  return OS.str();
}

std::string thistle::exportTimeloopMapping(const Problem &Prob,
                                           const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  std::ostringstream OS;
  OS << "mapping:\n";
  // DRAM-level temporal loops.
  OS << "- target: DRAM\n";
  OS << "  type: temporal\n";
  OS << "  factors: " << factorString(Prob, Map, TileLevel::DramTemporal)
     << "\n";
  OS << "  permutation: " << permString(Prob, Map.DramPerm) << "\n";
  // The spatial PE grid hangs below the SRAM (paper Fig. 3d: "the
  // spatial block of mapping targeting SRAM specifies that the PE array
  // is located below the SRAM").
  OS << "- target: SRAM\n";
  OS << "  type: spatial\n";
  OS << "  factors: " << factorString(Prob, Map, TileLevel::Spatial) << "\n";
  // Per-PE temporal loops over register tiles.
  OS << "- target: SRAM\n";
  OS << "  type: temporal\n";
  OS << "  factors: " << factorString(Prob, Map, TileLevel::PeTemporal)
     << "\n";
  OS << "  permutation: " << permString(Prob, Map.PePerm) << "\n";
  // Register tiles (the innermost compute loops).
  OS << "- target: RegisterFile\n";
  OS << "  type: temporal\n";
  OS << "  factors: " << factorString(Prob, Map, TileLevel::Register) << "\n";
  return OS.str();
}
