//===- tests/LinalgTest.cpp - linalg/ unit tests --------------------------===//

#include "linalg/Matrix.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace thistle;

TEST(Matrix, ApplyAndTranspose) {
  Matrix M(2, 3);
  M.at(0, 0) = 1;
  M.at(0, 1) = 2;
  M.at(0, 2) = 3;
  M.at(1, 0) = 4;
  M.at(1, 1) = 5;
  M.at(1, 2) = 6;
  Vector V{1, 1, 1};
  Vector Out = M.apply(V);
  EXPECT_DOUBLE_EQ(Out[0], 6.0);
  EXPECT_DOUBLE_EQ(Out[1], 15.0);

  Vector W{1, 2};
  Vector TOut = M.applyTransposed(W);
  EXPECT_DOUBLE_EQ(TOut[0], 9.0);
  EXPECT_DOUBLE_EQ(TOut[1], 12.0);
  EXPECT_DOUBLE_EQ(TOut[2], 15.0);

  Matrix T = M.transposed();
  EXPECT_EQ(T.rows(), 3u);
  EXPECT_EQ(T.cols(), 2u);
  EXPECT_DOUBLE_EQ(T.at(2, 1), 6.0);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix M(2, 2);
  M.at(0, 0) = 2;
  M.at(0, 1) = -1;
  M.at(1, 0) = 0.5;
  M.at(1, 1) = 3;
  Matrix P = M.multiply(Matrix::identity(2));
  for (std::size_t R = 0; R < 2; ++R)
    for (std::size_t C = 0; C < 2; ++C)
      EXPECT_DOUBLE_EQ(P.at(R, C), M.at(R, C));
}

TEST(Cholesky, SolvesSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  Matrix A(2, 2);
  A.at(0, 0) = 4;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 3;
  Vector X;
  ASSERT_TRUE(choleskySolve(A, {1, 2}, X));
  EXPECT_NEAR(X[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(X[1], 7.0 / 11.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 1; // Eigenvalues 3 and -1.
  Vector X;
  EXPECT_FALSE(choleskySolve(A, {1, 1}, X));
}

TEST(Cholesky, LargerRandomSpd) {
  // Build A = B^T B + I, solve against a known x.
  const std::size_t N = 8;
  Matrix B(N, N);
  unsigned Seed = 12345;
  auto NextVal = [&Seed]() {
    Seed = Seed * 1103515245 + 12345;
    return static_cast<double>((Seed >> 16) % 1000) / 500.0 - 1.0;
  };
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C)
      B.at(R, C) = NextVal();
  Matrix A = B.transposed().multiply(B);
  for (std::size_t I = 0; I < N; ++I)
    A.at(I, I) += 1.0;

  Vector XTrue(N);
  for (std::size_t I = 0; I < N; ++I)
    XTrue[I] = static_cast<double>(I) - 3.5;
  Vector Rhs = A.apply(XTrue);
  Vector X;
  ASSERT_TRUE(choleskySolve(A, Rhs, X));
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_NEAR(X[I], XTrue[I], 1e-9);
}

TEST(NullSpace, SimplePlane) {
  // x + y + z = 0 has a 2D null space.
  Matrix A(1, 3);
  A.at(0, 0) = A.at(0, 1) = A.at(0, 2) = 1;
  Matrix Z = nullSpaceOf(A);
  EXPECT_EQ(Z.rows(), 3u);
  EXPECT_EQ(Z.cols(), 2u);
  // Every column must satisfy A z = 0.
  for (std::size_t C = 0; C < Z.cols(); ++C) {
    double Sum = 0;
    for (std::size_t R = 0; R < 3; ++R)
      Sum += Z.at(R, C);
    EXPECT_NEAR(Sum, 0.0, 1e-12);
  }
}

TEST(NullSpace, FullRankSquareHasEmptyNullSpace) {
  Matrix A = Matrix::identity(3);
  Matrix Z = nullSpaceOf(A);
  EXPECT_EQ(Z.cols(), 0u);
}

TEST(NullSpace, RedundantRowsIgnored) {
  // Two identical constraints: rank 1, null space dim 2.
  Matrix A(2, 3);
  for (std::size_t C = 0; C < 3; ++C) {
    A.at(0, C) = 1.0;
    A.at(1, C) = 1.0;
  }
  EXPECT_EQ(nullSpaceOf(A).cols(), 2u);
}

TEST(SolveParticular, UnderdeterminedConsistent) {
  // x + y = 3 has solutions; particular solution must satisfy it.
  Matrix A(1, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 1;
  Vector X;
  ASSERT_TRUE(solveParticular(A, {3}, X));
  EXPECT_NEAR(X[0] + X[1], 3.0, 1e-12);
}

TEST(SolveParticular, DetectsInconsistency) {
  // x + y = 1 and x + y = 2 cannot both hold.
  Matrix A(2, 2);
  A.at(0, 0) = A.at(0, 1) = 1;
  A.at(1, 0) = A.at(1, 1) = 1;
  Vector X;
  EXPECT_FALSE(solveParticular(A, {1, 2}, X));
}

TEST(VectorOps, DotNormAxpy) {
  Vector A{1, 2, 3}, B{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(A, B), 12.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  Vector C = axpy(A, 2.0, B);
  EXPECT_DOUBLE_EQ(C[0], 9.0);
  EXPECT_DOUBLE_EQ(C[1], -8.0);
  EXPECT_DOUBLE_EQ(C[2], 15.0);
}
