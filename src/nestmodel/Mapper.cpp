//===- nestmodel/Mapper.cpp - Search-based mapping baseline ---------------===//
//
// The search is hierarchy-generic: candidates are MultiMappings on an
// arbitrary-depth machine, and the classic searchMappings entry point is
// a thin wrapper running the same engine at Hierarchy::classic3Level.
// The generic sampler and mutator are written so that at 3 levels they
// consume the RNG stream in exactly the order the fixed-depth code did
// (register / spatial / per-PE / DRAM factor draws, DRAM-then-PE
// permutation shuffles, the outer-to-inner mutation-slot order of the
// old TileLevel enum), keeping trial trajectories bit-identical.
//
// Concurrency (unchanged from the fixed-depth engine): the search runs
// in rounds of Options.TrialsPerRound trials. Every trial slot owns an
// RNG stream seeded from (search seed, round, slot) — never from the
// worker thread that happens to execute it — and candidate generation
// plus evaluation (the hot path) fan out across a ThreadPool. All search
// bookkeeping (incumbent best, victory-condition counter, annealing walk
// state) is applied on one thread, in slot order, at the round boundary,
// so the outcome is bit-identical at every thread count.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/Mapper.h"

#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

using namespace thistle;

namespace {

/// SplitMix64 finalizer, used to decorrelate the per-slot seeds.
std::uint64_t mix64(std::uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Seed of the RNG stream for trial slot \p Slot of round \p Round.
std::uint64_t slotSeed(std::uint64_t Seed, unsigned Round, unsigned Slot) {
  return Seed ^ mix64((static_cast<std::uint64_t>(Round) << 32) |
                      (static_cast<std::uint64_t>(Slot) + 1));
}

/// Samples a random but budget-aware mapping: per iterator, hierarchically
/// draws the per-iterator divisor chain v_0 | .. | v_{F-1} | v_sp | v_F |
/// .. (innermost first, spatial at the fan-out), capping the spatial
/// product at the PE count so that most samples are placeable. The
/// outermost temporal level takes what remains.
MultiMapping sampleMultiMapping(const Problem &Prob, const Hierarchy &H,
                                const DivisorTable &Divs, Rng &R) {
  const unsigned NumIters = Prob.numIterators();
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;
  MultiMapping Map;
  Map.TempFactors.assign(L, std::vector<std::int64_t>(NumIters, 1));
  Map.SpatialFactors.assign(NumIters, 1);

  std::int64_t SpatialBudget = H.NumPEs;
  // Visit iterators in random order so no dimension hogs the PE budget.
  std::vector<unsigned> Order(NumIters);
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  for (unsigned I : Order) {
    std::int64_t Rest = Prob.iterators()[I].Extent;
    // Per-PE temporal levels below the fan-out, innermost first.
    for (unsigned Lv = 0; Lv < F; ++Lv) {
      std::int64_t T = R.pick(Divs.of(Rest));
      Map.TempFactors[Lv][I] = T;
      Rest /= T;
    }
    // Spatial p | rest, capped by the remaining PE budget.
    std::vector<std::int64_t> SpatialChoices;
    for (std::int64_t D : Divs.of(Rest))
      if (D <= SpatialBudget)
        SpatialChoices.push_back(D);
    std::int64_t SpatF = R.pick(SpatialChoices);
    Map.SpatialFactors[I] = SpatF;
    SpatialBudget /= SpatF;
    Rest /= SpatF;
    // Shared temporal levels; the outermost takes what remains.
    for (unsigned Lv = F; Lv + 1 < L; ++Lv) {
      std::int64_t T = R.pick(Divs.of(Rest));
      Map.TempFactors[Lv][I] = T;
      Rest /= T;
    }
    Map.TempFactors[L - 1][I] = Rest;
  }

  // Permutations: the outermost level is drawn fresh; each inner level
  // starts from its outer neighbor and is reshuffled (the fixed-depth
  // DramPerm-then-PePerm chain, generalized). Level 0 moves no data.
  Map.Perms.assign(L, std::vector<unsigned>());
  Map.Perms[L - 1].resize(NumIters);
  std::iota(Map.Perms[L - 1].begin(), Map.Perms[L - 1].end(), 0u);
  R.shuffle(Map.Perms[L - 1]);
  for (unsigned Lv = L - 1; Lv > 1; --Lv) {
    Map.Perms[Lv - 1] = Map.Perms[Lv];
    R.shuffle(Map.Perms[Lv - 1]);
  }
  Map.Perms[0].resize(NumIters);
  std::iota(Map.Perms[0].begin(), Map.Perms[0].end(), 0u);
  return Map;
}

/// Smallest prime factor of \p N (N >= 2).
std::int64_t smallestPrimeFactor(std::int64_t N) {
  assert(N >= 2 && "no prime factor of 1");
  for (std::int64_t P = 2; P * P <= N; ++P)
    if (N % P == 0)
      return P;
  return N;
}

/// The factor of iterator \p Iter at mutation slot \p Slot. Slots order
/// the L+1 factor positions outer to inner as they appear in the machine
/// nest: t_{L-1}, .., t_{F+1}, spatial, t_F, .., t_0. At 3 levels this is
/// exactly the old TileLevel enum order (Dram, Spatial, Pe, Register).
std::int64_t &slotFactor(MultiMapping &Map, unsigned L, unsigned F,
                         unsigned Slot, unsigned Iter) {
  const unsigned SpatialSlot = L - 1 - F;
  if (Slot == SpatialSlot)
    return Map.SpatialFactors[Iter];
  unsigned Level = Slot < SpatialSlot ? L - 1 - Slot : L - Slot;
  return Map.TempFactors[Level][Iter];
}

/// One mutation draw: either moves one prime factor of one iterator
/// between two factor slots, or swaps two entries of one permutation
/// (permuted levels L-1 .. 1, outermost first — at 3 levels the same
/// DramPerm-vs-PePerm coin the fixed-depth code flipped). Returns false
/// when the draw was a no-op (same slot twice, factor already 1, or a
/// self-swap) and left \p Map unchanged.
bool tryMutateOnce(MultiMapping &Map, unsigned L, unsigned F, Rng &R) {
  const unsigned NumIters =
      static_cast<unsigned>(Map.SpatialFactors.size());
  const unsigned NumSlots = L + 1;
  if (R.nextDouble() < 0.5) {
    unsigned I = R.nextIndex(NumIters);
    unsigned From = R.nextIndex(NumSlots);
    unsigned To = R.nextIndex(NumSlots);
    if (From == To || slotFactor(Map, L, F, From, I) <= 1)
      return false;
    std::int64_t P = smallestPrimeFactor(slotFactor(Map, L, F, From, I));
    slotFactor(Map, L, F, From, I) /= P;
    slotFactor(Map, L, F, To, I) *= P;
    return true;
  }
  unsigned Level =
      (L - 1) - static_cast<unsigned>(R.nextDouble() *
                                      static_cast<double>(L - 1));
  std::vector<unsigned> &Perm = Map.Perms[Level];
  if (Perm.size() < 2)
    return false;
  std::size_t A = R.nextIndex(Perm.size());
  std::size_t B = R.nextIndex(Perm.size());
  if (A == B)
    return false;
  std::swap(Perm[A], Perm[B]);
  return true;
}

/// Mutates \p Map, retrying no-op draws a bounded number of times.
/// Returns false if every draw was a no-op; the caller then skips the
/// trial — re-evaluating an unchanged candidate would waste the
/// evaluation and spuriously advance the victory-condition counter.
bool mutateMapping(MultiMapping &Map, unsigned L, unsigned F, Rng &R) {
  for (int Attempt = 0; Attempt < 8; ++Attempt)
    if (tryMutateOnce(Map, L, F, R))
      return true;
  return false;
}

/// What one trial slot produced. Filled in parallel, consumed in slot
/// order by the round-boundary reduction.
struct SlotOutcome {
  /// False when the slot was skipped (mutation no-op or invalid mutant).
  bool HasEval = false;
  MultiMapping Candidate;
  MultiEvalResult Eval;
  double Obj = 0.0;
  /// Pre-drawn uniform used by the annealing acceptance test so the
  /// stream stays attached to the slot, not to the reduction.
  double AcceptDraw = 0.0;
};

} // namespace

const char *thistle::mapperStopCauseName(MapperStopCause Cause) {
  switch (Cause) {
  case MapperStopCause::None:
    return "none";
  case MapperStopCause::Victory:
    return "victory";
  case MapperStopCause::MaxTrials:
    return "max-trials";
  case MapperStopCause::Deadline:
    return "deadline";
  }
  return "unknown";
}

MultiMapperResult thistle::searchMultiMappings(const Problem &Prob,
                                               const Hierarchy &H,
                                               const MapperOptions &Options) {
  {
    std::string HierErr = H.validate();
    if (!HierErr.empty()) {
      MultiMapperResult Invalid;
      Invalid.InputStatus = Status::invalidArgument(std::move(HierErr))
                                .withContext("validating hierarchy");
      return Invalid;
    }
  }
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;
  const CostEvaluator &Eval = resolveCostEvaluator(Options.Evaluator);

  MultiMapperResult Result;
  double BestObj = 0.0;
  unsigned SinceImprovement = 0;

  // Annealing walks from a current point that may be worse than the
  // incumbent best.
  MultiMapping Current;
  double CurrentObj = 0.0;
  bool HaveCurrent = false;
  double Temperature = 0.0;

  // sampleMultiMapping draws divisors of (divisors of) every extent up to
  // L+1 times per iterator per trial; enumerate them once up front.
  DivisorTable Divs;
  for (const Iterator &It : Prob.iterators())
    Divs.populate(It.Extent);

  // Generates and evaluates one trial slot against the round-start search
  // state. Runs concurrently with other slots; reads of Result/Current are
  // safe because bookkeeping only mutates them between rounds.
  auto runSlot = [&](SlotOutcome &Out, unsigned Round, unsigned Slot) {
    Rng R(slotSeed(Options.Seed, Round, Slot));
    MultiMapping Candidate;
    bool Mutated = false;
    switch (Options.Strategy) {
    case MapperStrategy::RandomSampling:
      Candidate = sampleMultiMapping(Prob, H, Divs, R);
      break;
    case MapperStrategy::HillClimb:
      // Exploit the incumbent half of the time once one exists.
      if (Result.Found && R.nextDouble() < 0.5) {
        Candidate = Result.Best;
        Mutated = true;
      } else {
        Candidate = sampleMultiMapping(Prob, H, Divs, R);
      }
      break;
    case MapperStrategy::Anneal:
      if (HaveCurrent) {
        Candidate = Current;
        Mutated = true;
      } else {
        Candidate = sampleMultiMapping(Prob, H, Divs, R);
      }
      break;
    }
    if (Mutated && !mutateMapping(Candidate, L, F, R))
      return;
    if (Mutated && !Candidate.validate(Prob, H).empty())
      return;

    Out.Eval = Eval.evaluate(Prob, H, Candidate);
    Out.Obj = Out.Eval.Legal ? objectiveValue(Out.Eval, Options.Objective)
                             : 0.0;
    Out.AcceptDraw = R.nextDouble();
    Out.Candidate = std::move(Candidate);
    Out.HasEval = true;
  };

  // The deadline is only consulted between rounds, so a search that
  // finishes in time is bit-identical to an unbounded one.
  std::chrono::steady_clock::time_point DeadlineAt{};
  bool HasDeadline = false;
  if (Options.DeadlineAt != std::chrono::steady_clock::time_point{}) {
    DeadlineAt = Options.DeadlineAt;
    HasDeadline = true;
  } else if (Options.Deadline.count() > 0) {
    DeadlineAt = std::chrono::steady_clock::now() + Options.Deadline;
    HasDeadline = true;
  }

  ThreadPool Pool(Options.Threads);
  const unsigned RoundSize = std::max(1u, Options.TrialsPerRound);
  std::vector<SlotOutcome> Slots;

  // Adaptive grain: trials are microseconds each, so per-worker sharding
  // of a 64-trial round can spend more time on dispatch barriers than on
  // work (negative scaling under oversubscription). Each round is timed
  // and the next round's grain chosen so every shard carries at least
  // TargetShardSeconds of trials; rounds below one shard's worth run
  // inline on the calling thread. Grain only changes how slots are
  // packed into pool tasks — slot seeds, evaluation, and the slot-order
  // reduction are untouched, so the search result is bit-identical for
  // every grain and thread count.
  constexpr double TargetShardSeconds = 200e-6;
  std::size_t Grain = 1;

  telemetry::beginEpoch();
  telemetry::TraceScope SearchSpan("mapper.search");
  unsigned Rounds = 0;
  unsigned Improvements = 0;

  unsigned SlotsIssued = 0;
  bool Stop = false;
  for (unsigned Round = 0; !Stop && SlotsIssued < Options.MaxTrials;
       ++Round) {
    if (HasDeadline && std::chrono::steady_clock::now() >= DeadlineAt) {
      Result.DeadlineExpired = true;
      break;
    }
    const unsigned Batch =
        std::min(RoundSize, Options.MaxTrials - SlotsIssued);
    Slots.assign(Batch, SlotOutcome());
    // One span per round, keyed by the round number and opened on this
    // thread: the slots inside a round are an unordered parallel batch,
    // so the round is the mapper's deterministic trace granularity.
    telemetry::TraceScope RoundSpan("mapper.round", Round);
    ++Rounds;
    const auto RoundStart = std::chrono::steady_clock::now();
    parallelFor(
        Pool, Batch,
        [&](std::size_t Slot, unsigned) {
          runSlot(Slots[Slot], Round, static_cast<unsigned>(Slot));
        },
        Grain);
    const double RoundSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      RoundStart)
            .count();
    if (RoundSeconds > 0.0) {
      const double PerTrial = RoundSeconds / Batch;
      const double Want = TargetShardSeconds / PerTrial;
      Grain = Want >= 1.0
                  ? std::min<std::size_t>(static_cast<std::size_t>(Want),
                                          std::size_t(1) << 20)
                  : 1;
    }
    SlotsIssued += Batch;

    // Round-boundary reduction: all victory-condition and annealing
    // bookkeeping happens here, in slot order, on this thread. Slots past
    // a victory stop are discarded unseen, so Trials stays deterministic.
    for (unsigned Slot = 0; Slot < Batch && !Stop; ++Slot) {
      SlotOutcome &Out = Slots[Slot];
      if (!Out.HasEval)
        continue;
      ++Result.Trials;
      if (Options.Strategy == MapperStrategy::Anneal)
        Temperature *= Options.AnnealCooling;
      if (!Out.Eval.Legal) {
        ++SinceImprovement;
        if (SinceImprovement >= Options.VictoryCondition && Result.Found)
          Stop = true;
        continue;
      }
      ++Result.LegalTrials;

      // Annealing acceptance for the walk state.
      if (Options.Strategy == MapperStrategy::Anneal) {
        if (!HaveCurrent) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
          HaveCurrent = true;
          Temperature = Options.AnnealInitialTemp * Out.Obj;
        } else if (Out.Obj <= CurrentObj ||
                   (Temperature > 0.0 &&
                    Out.AcceptDraw <
                        std::exp((CurrentObj - Out.Obj) / Temperature))) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
        }
      }

      if (!Result.Found || Out.Obj < BestObj) {
        Result.Found = true;
        Result.Best = std::move(Out.Candidate);
        Result.BestEval = std::move(Out.Eval);
        BestObj = Out.Obj;
        SinceImprovement = 0;
        ++Improvements;
      } else if (++SinceImprovement >= Options.VictoryCondition) {
        Stop = true;
      }
    }
  }

  Result.StopCause = Result.DeadlineExpired ? MapperStopCause::Deadline
                     : Stop                 ? MapperStopCause::Victory
                                            : MapperStopCause::MaxTrials;
  if (telemetry::metricsEnabled()) {
    telemetry::count("mapper.searches");
    telemetry::count("mapper.rounds", Rounds);
    telemetry::count("mapper.trials", Result.Trials);
    telemetry::count("mapper.legal_trials", Result.LegalTrials);
    telemetry::count("mapper.improvements", Improvements);
    if (Result.Trials)
      telemetry::observe("mapper.acceptance_rate",
                         static_cast<double>(Result.LegalTrials) /
                             static_cast<double>(Result.Trials));
  }
  if (telemetry::traceEnabled())
    SearchSpan.setDetail(
        std::string("cause=") + mapperStopCauseName(Result.StopCause) +
        " rounds=" + std::to_string(Rounds) +
        " trials=" + std::to_string(Result.Trials) +
        " legal=" + std::to_string(Result.LegalTrials));
  return Result;
}

MapperResult thistle::searchMappings(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const EnergyModel &Energy,
                                     const MapperOptions &Options) {
  Hierarchy H = Hierarchy::classic3Level(Arch, Energy.tech());
  MultiMapperResult MR = searchMultiMappings(Prob, H, Options);

  MapperResult Result;
  Result.Found = MR.Found;
  Result.InputStatus = std::move(MR.InputStatus);
  Result.DeadlineExpired = MR.DeadlineExpired;
  Result.Trials = MR.Trials;
  Result.LegalTrials = MR.LegalTrials;
  Result.StopCause = MR.StopCause;
  if (MR.Found) {
    Result.Best = MR.Best.toMapping();
    Result.BestEval = evalResultFromMulti(Prob, Arch, MR.BestEval);
  }
  return Result;
}
