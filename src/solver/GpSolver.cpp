//===- solver/GpSolver.cpp - Interior-point GP solver ---------------------===//

#include "solver/GpSolver.h"

#include "linalg/Matrix.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

using namespace thistle;

namespace {

/// True when every entry is finite (guards Newton against NaN/inf
/// leaking out of an ill-conditioned derivative evaluation).
bool allFinite(const Vector &V) {
  for (double X : V)
    if (!std::isfinite(X))
      return false;
  return true;
}

/// A log-sum-exp function over the reduced variables z:
///   F(z) = log sum_k exp(A_k . z + B_k).
/// Precompiled from a posynomial after the y = y0 + Z z substitution.
struct LseFunction {
  std::vector<Vector> Rows; ///< A_k, each of reduced dimension.
  Vector Offsets;           ///< B_k.

  std::size_t numTerms() const { return Rows.size(); }

  /// Value only.
  double value(const Vector &Z) const {
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t K = 0; K < Rows.size(); ++K)
      Max = std::max(Max, dot(Rows[K], Z) + Offsets[K]);
    double Sum = 0.0;
    for (std::size_t K = 0; K < Rows.size(); ++K)
      Sum += std::exp(dot(Rows[K], Z) + Offsets[K] - Max);
    return Max + std::log(Sum);
  }

  /// Value, gradient, and (optionally) Hessian. The Hessian of a
  /// log-sum-exp is sum_k w_k a_k a_k^T - g g^T with softmax weights w.
  double valueGradHess(const Vector &Z, Vector &Grad, Matrix *Hess) const {
    const std::size_t N = Z.size();
    std::vector<double> Exponents(Rows.size());
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t K = 0; K < Rows.size(); ++K) {
      Exponents[K] = dot(Rows[K], Z) + Offsets[K];
      Max = std::max(Max, Exponents[K]);
    }
    double Sum = 0.0;
    for (double &E : Exponents) {
      E = std::exp(E - Max);
      Sum += E;
    }
    Grad.assign(N, 0.0);
    for (std::size_t K = 0; K < Rows.size(); ++K) {
      double W = Exponents[K] / Sum;
      for (std::size_t I = 0; I < N; ++I)
        Grad[I] += W * Rows[K][I];
    }
    if (Hess) {
      *Hess = Matrix(N, N);
      for (std::size_t K = 0; K < Rows.size(); ++K) {
        double W = Exponents[K] / Sum;
        for (std::size_t I = 0; I < N; ++I)
          for (std::size_t J = 0; J < N; ++J)
            Hess->at(I, J) += W * Rows[K][I] * Rows[K][J];
      }
      for (std::size_t I = 0; I < N; ++I)
        for (std::size_t J = 0; J < N; ++J)
          Hess->at(I, J) -= Grad[I] * Grad[J];
    }
    return Max + std::log(Sum);
  }
};

/// Compiles \p Posy over the affine substitution y = Y0 + Z z.
LseFunction compileLse(const Posynomial &Posy, const VarTable &Vars,
                       const Vector &Y0, const Matrix &Z) {
  assert(Posy.isPosynomial() && "log transform requires a posynomial");
  const std::size_t Reduced = Z.cols();
  LseFunction Lse;
  for (const Monomial &M : Posy.monomials()) {
    // Full-space exponent vector a over y.
    Vector A(Vars.size(), 0.0);
    for (const Monomial::Term &T : M.terms())
      A[T.Var] = T.Exp;
    // Reduced row a' = Z^T a and offset b' = ln c + a . y0.
    Vector Row(Reduced, 0.0);
    for (std::size_t I = 0; I < Vars.size(); ++I)
      if (A[I] != 0.0)
        for (std::size_t J = 0; J < Reduced; ++J)
          Row[J] += A[I] * Z.at(I, J);
    Lse.Rows.push_back(std::move(Row));
    Lse.Offsets.push_back(std::log(M.coefficient()) + dot(A, Y0));
  }
  return Lse;
}

/// Barrier-method state shared by the two phases.
struct BarrierContext {
  LseFunction Objective;
  std::vector<LseFunction> Constraints;
  unsigned NewtonIterations = 0;
};

/// One centering step: minimizes T * f(W) + Phi(W) where f is the phase
/// objective and Phi the log barrier of the phase constraints, starting
/// from the strictly feasible \p W. \p PhaseOne switches the objective to
/// the slack variable (last coordinate of W) and offsets every constraint
/// by -s. Returns false on numerical failure.
///
/// In phase one, W = (z, s) and constraints are G_i(z) - s <= 0.
/// In phase two, W = z and constraints are G_i(z) <= 0.
class CenteringProblem {
public:
  CenteringProblem(const BarrierContext &Ctx, bool PhaseOne)
      : Ctx(Ctx), PhaseOne(PhaseOne) {}

  std::size_t dim(std::size_t ReducedDim) const {
    return PhaseOne ? ReducedDim + 1 : ReducedDim;
  }

  /// Constraint value G_i(W) (including the -s offset in phase one).
  double constraintValue(std::size_t I, const Vector &W) const {
    if (!PhaseOne)
      return Ctx.Constraints[I].value(W);
    Vector Z(W.begin(), W.end() - 1);
    return Ctx.Constraints[I].value(Z) - W.back();
  }

  /// True if every constraint is strictly negative at W.
  bool strictlyFeasible(const Vector &W) const {
    for (std::size_t I = 0; I < Ctx.Constraints.size(); ++I)
      if (constraintValue(I, W) >= 0.0)
        return false;
    return true;
  }

  /// Phase objective value (no barrier).
  double objectiveValue(const Vector &W) const {
    if (PhaseOne)
      return W.back();
    return Ctx.Objective.value(W);
  }

  /// Full barrier objective T*f + Phi; +inf outside the domain.
  double barrierValue(double T, const Vector &W) const {
    double Phi = 0.0;
    for (std::size_t I = 0; I < Ctx.Constraints.size(); ++I) {
      double G = constraintValue(I, W);
      if (G >= 0.0)
        return std::numeric_limits<double>::infinity();
      Phi -= std::log(-G);
    }
    return T * objectiveValue(W) + Phi;
  }

  /// Gradient and Hessian of the barrier objective at strictly feasible W.
  void barrierDerivatives(double T, const Vector &W, Vector &Grad,
                          Matrix &Hess) const {
    const std::size_t N = W.size();
    Grad.assign(N, 0.0);
    Hess = Matrix(N, N);

    // Objective part.
    if (PhaseOne) {
      Grad[N - 1] += T;
    } else {
      Vector G0;
      Matrix H0;
      Ctx.Objective.valueGradHess(W, G0, &H0);
      for (std::size_t I = 0; I < N; ++I) {
        Grad[I] += T * G0[I];
        for (std::size_t J = 0; J < N; ++J)
          Hess.at(I, J) += T * H0.at(I, J);
      }
    }

    // Barrier part: -sum log(-G_i).
    Vector Z = PhaseOne ? Vector(W.begin(), W.end() - 1) : W;
    for (const LseFunction &C : Ctx.Constraints) {
      Vector Gz;
      Matrix Hz;
      double Gv = C.valueGradHess(Z, Gz, &Hz);
      // Extend gradient/Hessian with the slack coordinate in phase one.
      Vector Gw(N, 0.0);
      for (std::size_t I = 0; I < Gz.size(); ++I)
        Gw[I] = Gz[I];
      if (PhaseOne) {
        Gv -= W.back();
        Gw[N - 1] = -1.0;
      }
      assert(Gv < 0.0 && "barrier derivative requested outside the domain");
      double Inv = -1.0 / Gv;        // 1 / (-G) > 0.
      double InvSq = Inv * Inv;
      for (std::size_t I = 0; I < N; ++I) {
        Grad[I] += Inv * Gw[I];
        for (std::size_t J = 0; J < N; ++J)
          Hess.at(I, J) += InvSq * Gw[I] * Gw[J];
      }
      // Constraint curvature: (1/-G) * Hess(G); slack has no curvature.
      for (std::size_t I = 0; I < Hz.rows(); ++I)
        for (std::size_t J = 0; J < Hz.cols(); ++J)
          Hess.at(I, J) += Inv * Hz.at(I, J);
    }
  }

private:
  const BarrierContext &Ctx;
  bool PhaseOne;
};

/// Damped-Newton minimization of the barrier objective at fixed T.
/// Returns false on numerical breakdown. \p EarlyExit, when non-null,
/// stops as soon as it returns true (used by phase one once s < 0).
bool centerNewton(const CenteringProblem &Prob, double T, Vector &W,
                  unsigned MaxIters, unsigned &IterCounter,
                  bool (*EarlyExit)(const Vector &)) {
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (EarlyExit && EarlyExit(W))
      return true;
    Vector Grad;
    Matrix Hess;
    Prob.barrierDerivatives(T, W, Grad, Hess);
    ++IterCounter;
    if (fault::shouldFail("solver.nan-grad"))
      Grad[0] = std::numeric_limits<double>::quiet_NaN();
    if (!allFinite(Grad))
      return false;

    // Regularized Newton direction.
    Vector Step;
    double Lambda = 1e-10;
    bool Solved = false;
    for (int Attempt = 0; Attempt < 12 && !Solved; ++Attempt) {
      Matrix Reg = Hess;
      for (std::size_t I = 0; I < Reg.rows(); ++I)
        Reg.at(I, I) += Lambda;
      Vector NegGrad(Grad.size());
      for (std::size_t I = 0; I < Grad.size(); ++I)
        NegGrad[I] = -Grad[I];
      Solved = choleskySolve(Reg, NegGrad, Step);
      Lambda *= 100.0;
    }
    if (!Solved)
      return false;

    // Newton decrement as a stopping test.
    double Decrement = -dot(Grad, Step);
    if (!std::isfinite(Decrement))
      return false;
    if (Decrement < 0.0)
      Decrement = 0.0;
    if (Decrement * 0.5 < 1e-10)
      return true;

    // Backtracking line search with domain (feasibility) check.
    double Base = Prob.barrierValue(T, W);
    double Alpha = 1.0;
    bool Accepted = false;
    for (int LsIter = 0; LsIter < 60; ++LsIter) {
      Vector Trial = axpy(W, Alpha, Step);
      double Val = Prob.barrierValue(T, Trial);
      if (Val <= Base - 1e-4 * Alpha * Decrement) {
        W = std::move(Trial);
        Accepted = true;
        break;
      }
      Alpha *= 0.5;
    }
    if (!Accepted)
      return true; // No further progress at this T.
  }
  return true;
}

/// The uninstrumented solve (the body of the public solveGp); the
/// wrapper below records the per-solve outcome metrics in one place.
GpSolution solveGpImpl(const GpProblem &Problem,
                       const GpSolverOptions &Options) {
  GpSolution Solution;
  const VarTable &Vars = Problem.variables();
  const std::size_t N = Vars.size();
  assert(!Problem.objective().isZero() && "GP objective must be set");

  if (fault::shouldFail("solver.infeasible")) {
    Solution.Failure = "injected: no strictly feasible point (phase I)";
    Solution.Outcome = SolveOutcome::Infeasible;
    return Solution;
  }
  // Consumed once per solve: every phase-II convergence test of this
  // call is suppressed, so one armed hit fails exactly one solve.
  const bool ForceNonConverge = fault::shouldFail("solver.nonconverge");

  // ---- Eliminate monomial equalities: rows a . y = -ln c.
  const auto &Equalities = Problem.equalities();
  Matrix A(Equalities.size(), N);
  Vector B(Equalities.size(), 0.0);
  for (std::size_t E = 0; E < Equalities.size(); ++E) {
    const Monomial &G = Equalities[E].Lhs;
    for (const Monomial::Term &T : G.terms())
      A.at(E, T.Var) = T.Exp;
    B[E] = -std::log(G.coefficient());
  }
  Vector Y0;
  if (!solveParticular(A, B, Y0)) {
    Solution.Failure = "inconsistent monomial equality constraints";
    Solution.Outcome = SolveOutcome::Infeasible;
    return Solution;
  }
  Matrix Z = Equalities.empty() ? Matrix::identity(N) : nullSpaceOf(A);

  // ---- Compile objective and constraints into reduced log-sum-exp form.
  BarrierContext Ctx;
  Ctx.Objective = compileLse(Problem.objective(), Vars, Y0, Z);
  if (Options.ObjectiveScale > 0.0 && Options.ObjectiveScale != 1.0) {
    // Minimize f/scale instead of f: same argmin, offsets recentred
    // near zero so exp() stays in range for huge coefficient spreads.
    const double LogScale = std::log(Options.ObjectiveScale);
    for (std::size_t K = 0; K < Ctx.Objective.Offsets.size(); ++K)
      Ctx.Objective.Offsets[K] -= LogScale;
  }
  for (const GpProblem::Constraint &C : Problem.constraints())
    Ctx.Constraints.push_back(compileLse(C.Lhs, Vars, Y0, Z));

  const std::size_t Reduced = Z.cols();
  Vector ZVec(Reduced, 0.0);
  if (Options.InitialPoint.size() == N && Reduced > 0) {
    // Warm start: project log(InitialPoint) onto the equality subspace,
    //   z* = argmin_z || Y0 + Z z - log(x) ||_2
    // via the normal equations (Z^T Z) z = Z^T (log(x) - Y0). Z has full
    // column rank by construction, so Z^T Z is SPD. A degenerate point
    // (non-positive, non-finite) or a Cholesky failure keeps the classic
    // zero start; the warm start is an accelerator, never a requirement.
    bool Usable = true;
    for (double X : Options.InitialPoint)
      if (!(X > 0.0) || !std::isfinite(X))
        Usable = false;
    if (Usable) {
      Vector Residual(N, 0.0);
      for (std::size_t I = 0; I < N; ++I)
        Residual[I] = std::log(Options.InitialPoint[I]) - Y0[I];
      Vector Rhs = Z.applyTransposed(Residual);
      Matrix ZtZ(Reduced, Reduced);
      for (std::size_t J = 0; J < Reduced; ++J)
        for (std::size_t K = 0; K < Reduced; ++K) {
          double Sum = 0.0;
          for (std::size_t I = 0; I < N; ++I)
            Sum += Z.at(I, J) * Z.at(I, K);
          ZtZ.at(J, K) = Sum;
        }
      Vector ZStart;
      if (choleskySolve(std::move(ZtZ), Rhs, ZStart))
        ZVec = std::move(ZStart);
    }
  }
  if (Options.StartPerturbation != 0.0)
    // Deterministic start offset (stays on the equality subspace): the
    // retry ladder's way out of a pathological phase-I trajectory.
    for (std::size_t I = 0; I < Reduced; ++I)
      ZVec[I] += Options.StartPerturbation *
                 std::sin(static_cast<double>(I + 1));

  auto recoverX = [&](const Vector &ZV) {
    Assignment X(N);
    Vector Y = axpy(Y0, 1.0, Z.apply(ZV));
    for (std::size_t I = 0; I < N; ++I)
      X[I] = std::exp(Y[I]);
    return X;
  };

  // ---- Phase I: find a strictly feasible point if needed.
  CenteringProblem PhaseTwo(Ctx, /*PhaseOne=*/false);
  if (!Ctx.Constraints.empty() && !PhaseTwo.strictlyFeasible(ZVec)) {
    telemetry::count("solver.phase1.runs");
    CenteringProblem PhaseOne(Ctx, /*PhaseOne=*/true);
    double MaxG = -std::numeric_limits<double>::infinity();
    for (const LseFunction &C : Ctx.Constraints)
      MaxG = std::max(MaxG, C.value(ZVec));
    Vector W = ZVec;
    W.push_back(MaxG + 1.0); // Strictly feasible for G_i - s < 0.

    auto FoundInterior = [](const Vector &W) { return W.back() < -1e-7; };
    double T = Options.TInitial;
    for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
      if (!centerNewton(PhaseOne, T, W, Options.MaxNewtonIters,
                        Solution.NewtonIterations, +FoundInterior)) {
        Solution.Failure = "numerical breakdown in phase I";
        Solution.Outcome = SolveOutcome::NumericalBreakdown;
        return Solution;
      }
      if (FoundInterior(W))
        break;
      T *= Options.TMultiplier;
    }
    if (!FoundInterior(W)) {
      Solution.Failure = "no strictly feasible point found (phase I)";
      Solution.Outcome = SolveOutcome::Infeasible;
      return Solution;
    }
    ZVec.assign(W.begin(), W.end() - 1);
    // The phase-I point satisfies G_i < s < 0, hence strictly feasible.
    assert(PhaseTwo.strictlyFeasible(ZVec) && "phase I postcondition");
  }
  Solution.Feasible = true;

  // ---- Phase II: follow the central path.
  double T = Options.TInitial;
  unsigned OuterIters = 0;
  const double NumConstraints =
      std::max<std::size_t>(Ctx.Constraints.size(), 1);
  for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
    ++OuterIters;
    if (!centerNewton(PhaseTwo, T, ZVec, Options.MaxNewtonIters,
                      Solution.NewtonIterations, nullptr)) {
      Solution.Failure = "numerical breakdown in phase II";
      Solution.Outcome = SolveOutcome::NumericalBreakdown;
      Solution.Values = recoverX(ZVec);
      Solution.Objective = Problem.objective().evaluate(Solution.Values);
      return Solution;
    }
    if (NumConstraints / T < Options.Tolerance && !ForceNonConverge) {
      Solution.Converged = true;
      break;
    }
    T *= Options.TMultiplier;
  }
  if (telemetry::metricsEnabled()) {
    // Barrier-stage telemetry: how many centering steps phase II took
    // and the duality-gap bound m/t it stopped at (the residual).
    telemetry::observe("solver.phase2.outer_iters",
                       static_cast<double>(OuterIters));
    telemetry::observe("solver.phase2.barrier_gap", NumConstraints / T);
  }

  Solution.Values = recoverX(ZVec);
  Solution.Objective = Problem.objective().evaluate(Solution.Values);
  if (!allFinite(Solution.Values) || !std::isfinite(Solution.Objective)) {
    // A non-finite iterate must never reach extraction/rounding; strip
    // the convergence claim so callers discard rather than consume it.
    Solution.Converged = false;
    Solution.Outcome = SolveOutcome::NonFinite;
    Solution.Failure = "non-finite iterate or objective";
  } else if (Solution.Converged) {
    Solution.Outcome = SolveOutcome::Converged;
  } else {
    Solution.Outcome = SolveOutcome::NotConverged;
    Solution.Failure = ForceNonConverge
                           ? "injected: barrier loop never converged"
                           : "barrier loop hit MaxOuterIters before "
                             "reaching tolerance";
  }
  return Solution;
}

} // namespace

GpSolution thistle::solveGp(const GpProblem &Problem,
                            const GpSolverOptions &Options) {
  GpSolution Solution = solveGpImpl(Problem, Options);
  if (telemetry::metricsEnabled()) {
    telemetry::count("solver.solves");
    telemetry::count("solver.newton_iters", Solution.NewtonIterations);
    telemetry::observe("solver.newton_per_solve",
                       static_cast<double>(Solution.NewtonIterations));
    telemetry::count((std::string("solver.outcome.") +
                      solveOutcomeName(Solution.Outcome))
                         .c_str());
  }
  return Solution;
}

const char *thistle::solveOutcomeName(SolveOutcome Outcome) {
  switch (Outcome) {
  case SolveOutcome::Converged:
    return "converged";
  case SolveOutcome::NotConverged:
    return "not-converged";
  case SolveOutcome::Infeasible:
    return "infeasible";
  case SolveOutcome::NumericalBreakdown:
    return "numerical-breakdown";
  case SolveOutcome::NonFinite:
    return "non-finite";
  }
  return "unknown";
}

namespace {

/// Usability rank of an attempt's outcome for the ladder's final pick.
/// Breakdown-with-a-feasible-iterate still carries a usable point (the
/// pre-breakdown central-path iterate), so it outranks infeasibility.
int outcomeRank(const GpSolution &S) {
  switch (S.Outcome) {
  case SolveOutcome::Converged:
    return 4;
  case SolveOutcome::NotConverged:
    return 3;
  case SolveOutcome::NumericalBreakdown:
    return S.Feasible ? 2 : 1;
  case SolveOutcome::Infeasible:
    return 1;
  case SolveOutcome::NonFinite:
    return 0;
  }
  return 0;
}

/// Largest objective coefficient, for the rescaling rung.
double objectiveScaleFor(const GpProblem &Problem) {
  double Max = 0.0;
  for (const Monomial &M : Problem.objective().monomials())
    Max = std::max(Max, M.coefficient());
  return std::isfinite(Max) && Max > 0.0 ? Max : 1.0;
}

} // namespace

GpSolution thistle::solveGpWithRetry(const GpProblem &Problem,
                                     const GpSolverOptions &Options,
                                     GpSolveReport *Report) {
  const unsigned MaxAttempts = std::max(1u, Options.MaxSolveAttempts);
  GpSolution Best;
  unsigned BestAttempt = 0;
  unsigned TotalNewton = 0;

  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    GpSolverOptions Rung = Options;
    if (Attempt == 1) {
      // Perturbed start, gentler initial barrier weight.
      Rung.StartPerturbation = 1e-3;
      Rung.TInitial = Options.TInitial * 0.1;
    } else if (Attempt >= 2) {
      // Stronger perturbation, slow barrier growth, rescaled objective.
      Rung.StartPerturbation = 1e-2 * static_cast<double>(Attempt - 1);
      Rung.TInitial = Options.TInitial * 0.01;
      Rung.TMultiplier = std::max(4.0, Options.TMultiplier * 0.5);
      Rung.ObjectiveScale = objectiveScaleFor(Problem);
    }

    telemetry::TraceScope AttemptSpan("solver.attempt");
    GpSolution S = solveGp(Problem, Rung);
    if (telemetry::traceEnabled())
      AttemptSpan.setDetail(std::string(solveOutcomeName(S.Outcome)) +
                            " newton=" +
                            std::to_string(S.NewtonIterations));
    if (Attempt > 0)
      telemetry::count("solver.retry.attempts");
    TotalNewton += S.NewtonIterations;
    if (Report)
      Report->Attempts.push_back({S.Outcome, Rung.StartPerturbation,
                                  Rung.TInitial, Rung.TMultiplier,
                                  Rung.ObjectiveScale, S.NewtonIterations,
                                  S.Failure});

    // Strictly-better outcomes displace the incumbent; ties keep the
    // earliest attempt so a clean first solve is bit-identical to
    // solveGp with the caller's options.
    if (Attempt == 0 || outcomeRank(S) > outcomeRank(Best)) {
      Best = std::move(S);
      BestAttempt = Attempt;
    }
    if (Best.Outcome == SolveOutcome::Converged)
      break;
    // Infeasibility is a property of the problem, not of the numerics:
    // retrying cannot cure it, so stop the ladder early.
    if (Best.Outcome == SolveOutcome::Infeasible &&
        Best.Failure.find("injected") == std::string::npos)
      break;
  }

  Best.NewtonIterations = TotalNewton;
  if (BestAttempt > 0 && Best.Outcome == SolveOutcome::Converged)
    telemetry::count("solver.retry.recovered");
  if (Report)
    Report->Recovered =
        BestAttempt > 0 && Best.Outcome == SolveOutcome::Converged;
  return Best;
}
