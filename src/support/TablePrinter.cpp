//===- support/TablePrinter.cpp - ASCII table output ----------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>
#include <iomanip>
#include <sstream>

using namespace thistle;

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<std::size_t> Widths(Header.size());
  for (std::size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C < Row.size(); ++C) {
      OS << (C == 0 ? "| " : " | ");
      OS << Row[C] << std::string(Widths[C] - Row[C].size(), ' ');
    }
    OS << " |\n";
  };

  auto printRule = [&]() {
    for (std::size_t C = 0; C < Widths.size(); ++C) {
      OS << (C == 0 ? "|-" : "-|-");
      OS << std::string(Widths[C], '-');
    }
    OS << "-|\n";
  };

  printRow(Header);
  printRule();
  for (const auto &Row : Rows)
    printRow(Row);
}

std::string TablePrinter::formatDouble(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

std::string TablePrinter::formatInt(std::int64_t Value) {
  return std::to_string(Value);
}
