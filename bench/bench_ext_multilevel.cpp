//===- bench/bench_ext_multilevel.cpp - Arbitrary-depth hierarchies -------===//
//
// Extension experiment exercising the paper's "arbitrary number of tiling
// levels" generality (section III-A): optimize each ResNet-18 layer on
// the classic 3-level Eyeriss machine (512-word register files) and on a
// 4-level variant that shrinks the register file to 64 words and backs it
// with a 1024-word per-PE scratchpad. Shrinking R is the paper's own
// energy lever (eps_R = sigma_R * R); the extra level keeps the reuse the
// big RF used to provide. Expected shape: the 4-level machine wins
// clearly on energy (the 4*eps_R*Nops term drops ~8x and the cheap
// scratchpad absorbs the refills). Area is not normalized; this explores
// the hierarchy-depth axis, not equal-cost co-design.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "multilevel/MultiGp.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printMultilevelTable() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  Hierarchy Classic = Hierarchy::classic3Level(Arch, Tech);
  ArchConfig SmallRf = Arch;
  SmallRf.RegWordsPerPE = 64;
  Hierarchy Spad = Hierarchy::withScratchpad(SmallRf, Tech,
                                             /*SpadWords=*/1024,
                                             /*SramWords=*/Arch.SramWords);

  TablePrinter Table({"layer", "3-level pJ/MAC", "4-level pJ/MAC",
                      "SRAM-boundary words 3L", "SRAM-boundary words 4L"});
  MultiOptions Opts;
  Opts.MaxPermCombos = 24;
  for (const ConvLayer &L : resnet18Layers()) {
    Problem P = makeConvProblem(L);
    MultiResult R3 = optimizeHierarchy(P, Classic, Opts);
    MultiResult R4 = optimizeHierarchy(P, Spad, Opts);
    auto Cell = [](const MultiResult &R) {
      return R.Found ? TablePrinter::formatDouble(R.Eval.EnergyPerMacPj, 2)
                     : std::string("-");
    };
    // The traffic crossing into the *shared* SRAM: boundary 0 for the
    // 3-level machine, boundary 1 for the 4-level one.
    auto SramWords = [](const MultiResult &R, unsigned B) {
      return R.Found ? TablePrinter::formatInt(R.Eval.Profile
                                                   .boundaryWords(B))
                     : std::string("-");
    };
    Table.addRow({L.Name, Cell(R3), Cell(R4), SramWords(R3, 0),
                  SramWords(R4, 1)});
  }
  Table.print(std::cout);
  std::printf("\n(shrinking the register file 8x drops the dominant "
              "4*eps_R*Nops term; the scratchpad supplies the reuse the "
              "big RF used to hold)\n\n");
}

void printDepthCoDesign() {
  // The depth question at equal silicon: co-design capacities and PE
  // count for the 3-level and the 4-level structure under the same
  // Eyeriss area budget.
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  Hierarchy H3 = Hierarchy::classic3Level(Arch, Tech);
  Hierarchy H4 = Hierarchy::withScratchpad(Arch, Tech, 1024,
                                           Arch.SramWords);

  std::printf("capacity co-design at equal area (%.2f mm^2):\n",
              Budget * 1e-6);
  TablePrinter Table({"layer", "depth", "pJ/MAC", "P", "capacities"});
  MultiOptions Co;
  Co.MaxPermCombos = 16;
  Co.CoDesignCapacities = true;
  Co.AreaBudgetUm2 = Budget;
  for (const ConvLayer &L :
       {resnet18Layers()[1], resnet18Layers()[8], yolo9000Layers()[6]}) {
    Problem P = makeConvProblem(L);
    for (const Hierarchy *H : {&H3, &H4}) {
      MultiResult R = optimizeHierarchy(P, *H, Co);
      if (!R.Found) {
        Table.addRow({L.Name, std::to_string(H->numLevels()), "-", "-",
                      "-"});
        continue;
      }
      std::string Caps;
      for (unsigned Lv = 0; Lv + 1 < R.Arch.numLevels(); ++Lv)
        Caps += (Lv ? " / " : "") +
                TablePrinter::formatInt(R.Arch.Levels[Lv].CapacityWords);
      Table.addRow({L.Name, std::to_string(H->numLevels()),
                    TablePrinter::formatDouble(R.Eval.EnergyPerMacPj, 2),
                    TablePrinter::formatInt(R.Arch.NumPEs), Caps});
    }
  }
  Table.print(std::cout);
  std::printf("\n");
}

void timeMultilevelOptimize(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  TechParams Tech = TechParams::cgo45nm();
  Hierarchy H = Hierarchy::withScratchpad(eyerissArch(), Tech, 1024,
                                          eyerissArch().SramWords);
  MultiOptions Opts;
  Opts.MaxPermCombos = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(optimizeHierarchy(P, H, Opts));
}
BENCHMARK(timeMultilevelOptimize)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Extension: arbitrary-depth hierarchies",
              "3-level Eyeriss machine vs 4-level with a per-PE "
              "scratchpad (the section III-A generality)");
  printMultilevelTable();
  printDepthCoDesign();
  return runTimings(Argc, Argv);
}
