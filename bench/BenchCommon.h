//===- bench/BenchCommon.h - Shared benchmark harness helpers --*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared configuration for the figure/table reproduction binaries. Every
/// binary prints the corresponding paper artifact first (that is the
/// reproduction), then runs a few google-benchmark timings of the
/// machinery involved.
///
/// Scale note: the paper ran the Timeloop Mapper with timeout and victory
/// condition of 100000 and a 3-hour cap per layer. The harness uses a
/// proportionally reduced budget so the full suite completes in minutes;
/// the baseline search is seeded and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_BENCH_BENCHCOMMON_H
#define THISTLE_BENCH_BENCHCOMMON_H

#include "ir/Builders.h"
#include "nestmodel/Mapper.h"
#include "support/ThreadPool.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

namespace thistle::bench {

/// Baseline search budget (scaled-down stand-in for the paper's
/// 100000/100000/3h Timeloop Mapper setting).
inline MapperOptions mapperOptions(SearchObjective Objective,
                                   std::uint64_t Seed = 1) {
  MapperOptions O;
  O.Objective = Objective;
  O.MaxTrials = 20000;
  O.VictoryCondition = 4000;
  O.Seed = Seed;
  return O;
}

/// Thistle configuration used by all figure reproductions.
inline ThistleOptions thistleOptions(DesignMode Mode,
                                     SearchObjective Objective) {
  ThistleOptions O;
  O.Mode = Mode;
  O.Objective = Objective;
  // Delay rounding is more sensitive to integer PE-grid choices: widen
  // the divisor candidate window (the paper's n = 2 or 3) and let the
  // cross product explore more PE-grid combinations.
  if (Objective == SearchObjective::Delay) {
    O.Rounding.NumCandidates = 3;
    O.Rounding.MaxMappingCandidates = 16000;
  }
  return O;
}

/// Wall-clock stopwatch for throughput measurements (pairs/s, trials/s)
/// where google-benchmark's repeated-iteration protocol would be too slow
/// to wrap around a full design-space sweep.
class WallTimer {
public:
  WallTimer() : Start(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  void reset() { Start = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point Start;
};

/// True when \p Requested worker threads exceed the host's hardware
/// concurrency: the timing would measure scheduler contention, not
/// engine scaling. Speedup benches record this in their JSON
/// ("oversubscribed": true) so a bogus slowdown on a small host is never
/// mistaken for a regression.
inline bool oversubscribed(unsigned Requested) {
  return Requested > ThreadPool::defaultWorkerCount();
}

/// Clamps a requested worker count to the host's hardware concurrency
/// (floor 1). Scaling measurements use the clamped count and report the
/// request separately.
inline unsigned clampThreads(unsigned Requested) {
  return std::max(1u,
                  std::min(Requested, ThreadPool::defaultWorkerCount()));
}

/// Min-of-N repetition timing: runs \p Body \p Reps times (at least
/// once) and returns the fastest wall-clock seconds. The minimum is the
/// robust estimator for "how fast can this go" — a one-shot timing folds
/// scheduler noise and cold caches into the number.
template <typename BodyFn>
inline double minSecondsOfN(unsigned Reps, BodyFn &&Body) {
  double Best = std::numeric_limits<double>::infinity();
  for (unsigned R = 0; R < std::max(1u, Reps); ++R) {
    WallTimer T;
    Body();
    Best = std::min(Best, T.seconds());
  }
  return Best;
}

/// Prints the standard bench header.
inline void printHeader(const char *Artifact, const char *Description) {
  std::printf("==== %s ====\n%s\n\n", Artifact, Description);
}

/// Runs the registered google-benchmark timings (call at the end of
/// main). Passes through argv so --benchmark_* flags work.
inline int runTimings(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace thistle::bench

#endif // THISTLE_BENCH_BENCHCOMMON_H
