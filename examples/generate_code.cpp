//===- examples/generate_code.cpp - Fig. 1(d)-style code emission ---------===//
//
// Lowers an optimized mapping to the explicit multi-level tiled loop
// nest of the paper's Fig. 1(d): buffers at each memory level, copy
// statements hoisted out of the loops whose iterators are absent from
// each tensor, forall loops for the PE grid. The same nest is then
// executed by the built-in interpreter to confirm it computes the exact
// convolution.
//
//===----------------------------------------------------------------------===//

#include "codegen/TiledNest.h"
#include "ir/Builders.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

int main() {
  // A small layer so the verification pass is instant.
  ConvLayer Layer;
  Layer.Name = "demo";
  Layer.K = 8;
  Layer.C = 8;
  Layer.Hin = 12;
  Layer.Win = 12;
  Layer.R = 3;
  Layer.S = 3;
  Problem Prob = makeConvProblem(Layer);

  ThistleOptions Options;
  ThistleResult R =
      optimizeLayer(Prob, eyerissArch(), TechParams::cgo45nm(), Options);
  if (!R.Found) {
    std::printf("no legal design found\n");
    return 1;
  }

  std::printf("optimized mapping (%.2f pJ/MAC):\n%s\n",
              R.Eval.EnergyPerMacPj, R.Map.toString(Prob).c_str());

  TiledNest Nest = buildTiledNest(Prob, R.Map);
  std::printf("generated tiled nest:\n%s\n",
              printTiledNest(Prob, R.Map, Nest).c_str());

  InterpResult Run = interpretTiledNest(Prob, R.Map, Nest);
  if (!Run.Ok) {
    std::printf("interpretation failed: %s\n", Run.Error.c_str());
    return 1;
  }
  std::vector<double> Ref = referenceContraction(Prob);
  for (std::size_t I = 0; I < Ref.size(); ++I)
    if (Run.Output[I] != Ref[I]) {
      std::printf("MISMATCH at output word %zu\n", I);
      return 1;
    }
  std::printf("verified: the generated nest computes the exact reference "
              "convolution (%zu output words).\n",
              Ref.size());
  std::printf("copy traffic observed while executing (full-tile copy "
              "semantics):\n");
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI)
    std::printf("  %-4s DRAM->SRAM %8lld, SRAM->DRAM %8lld, SRAM->reg "
                "%8lld, reg->SRAM %8lld\n",
                Prob.tensors()[TI].Name.c_str(),
                static_cast<long long>(Run.PerTensor[TI].DramToSram),
                static_cast<long long>(Run.PerTensor[TI].SramToDram),
                static_cast<long long>(Run.PerTensor[TI].SramToReg),
                static_cast<long long>(Run.PerTensor[TI].RegToSram));
  return 0;
}
