//===- bench/bench_ext_edp.cpp - EDP objective extension ------------------===//
//
// Extension experiment: the paper's formulation supports the energy-delay
// product objective ("or energy-delay product, although we do not").
// This harness co-designs each ResNet-18 layer for energy, delay, and
// EDP, and reports all three metrics of each design: the EDP-optimized
// design should hold the lowest EDP, sitting between the energy-optimal
// (low power, fewer PEs) and delay-optimal (max PEs) corners.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printEdpTable() {
  TechParams Tech = TechParams::cgo45nm();
  double Budget = eyerissAreaUm2(Tech);
  TablePrinter Table({"layer", "design", "pJ/MAC", "IPC", "EDP (pJ*Gcyc)",
                      "P"});
  unsigned EdpWins = 0, Rows = 0;
  for (const ConvLayer &L : resnet18Layers()) {
    Problem P = makeConvProblem(L);
    struct Entry {
      const char *Name;
      SearchObjective Obj;
      ThistleResult Res;
    };
    std::vector<Entry> Entries = {
        {"energy-opt", SearchObjective::Energy, {}},
        {"delay-opt", SearchObjective::Delay, {}},
        {"edp-opt", SearchObjective::EnergyDelayProduct, {}}};
    for (Entry &E : Entries) {
      ThistleOptions O = thistleOptions(DesignMode::CoDesign, E.Obj);
      E.Res = optimizeLayer(P, eyerissArch(), Tech, O, Budget);
    }
    double BestEdp = -1.0;
    const char *BestName = "-";
    for (Entry &E : Entries) {
      if (!E.Res.Found) {
        Table.addRow({L.Name, E.Name, "-", "-", "-", "-"});
        continue;
      }
      double Edp = E.Res.Eval.EdpPjCycles;
      if (BestEdp < 0.0 || Edp < BestEdp) {
        BestEdp = Edp;
        BestName = E.Name;
      }
      Table.addRow({L.Name, E.Name,
                    TablePrinter::formatDouble(E.Res.Eval.EnergyPerMacPj, 2),
                    TablePrinter::formatDouble(E.Res.Eval.MacIpc, 0),
                    TablePrinter::formatDouble(Edp * 1e-9, 1),
                    TablePrinter::formatInt(E.Res.Arch.NumPEs)});
    }
    ++Rows;
    if (std::string(BestName) == "edp-opt")
      ++EdpWins;
  }
  Table.print(std::cout);
  std::printf("\nEDP-optimized design holds the lowest EDP on %u of %u "
              "layers\n\n",
              EdpWins, Rows);
}

void timeEdpCoDesign(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O = thistleOptions(DesignMode::CoDesign,
                                    SearchObjective::EnergyDelayProduct);
  for (auto _ : State)
    benchmark::DoNotOptimize(optimizeLayer(P, eyerissArch(), Tech, O,
                                           eyerissAreaUm2(Tech)));
}
BENCHMARK(timeEdpCoDesign)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Extension: EDP objective",
              "Energy-delay-product co-design (the objective the paper "
              "formulates but does not evaluate)");
  printEdpTable();
  return runTimings(Argc, Argv);
}
