//===- tests/RoundingTest.cpp - Integerization stage tests ----------------===//

#include "ir/Builders.h"
#include "thistle/GpBuilder.h"
#include "thistle/PermutationSpace.h"
#include "thistle/Rounding.h"
#include "support/MathUtil.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

struct RoundingFixture : public ::testing::Test {
  Problem Prob = [] {
    ConvLayer L;
    L.K = 32;
    L.C = 16;
    L.Hin = 28;
    L.Win = 28;
    L.R = 3;
    L.S = 3;
    return makeConvProblem(L);
  }();

  GpBuildSpec Spec = [this] {
    GpBuildSpec S;
    S.TiledIters = {Prob.iteratorIndex("k"), Prob.iteratorIndex("c"),
                    Prob.iteratorIndex("h"), Prob.iteratorIndex("w")};
    S.PePerm = S.TiledIters;
    S.DramPerm = S.TiledIters;
    S.Arch = eyerissArch();
    S.AreaBudgetUm2 = eyerissAreaUm2(S.Tech);
    return S;
  }();

  RealSolution solveReal(DesignMode Mode, SearchObjective Obj) {
    Spec.Mode = Mode;
    Spec.Objective = Obj;
    GpBuild B = buildGp(Prob, Spec);
    GpSolution S = solveGp(B.Gp);
    EXPECT_TRUE(S.Feasible);
    return extractSolution(Prob, B, Spec, S);
  }
};

} // namespace

TEST_F(RoundingFixture, ProducesLegalValidatedDesign) {
  RealSolution Real =
      solveReal(DesignMode::DataflowOnly, SearchObjective::Energy);
  RoundingOptions Opts;
  RoundedDesign D = roundSolution(Prob, Spec, Real, Opts);
  ASSERT_TRUE(D.Found);
  EXPECT_TRUE(D.Eval.Legal);
  EXPECT_TRUE(D.Map.validate(Prob).empty());
  EXPECT_GT(D.CandidatesTried, 0u);
}

TEST_F(RoundingFixture, RespectsCandidateCap) {
  RealSolution Real =
      solveReal(DesignMode::DataflowOnly, SearchObjective::Energy);
  RoundingOptions Opts;
  Opts.MaxMappingCandidates = 50;
  RoundedDesign D = roundSolution(Prob, Spec, Real, Opts);
  EXPECT_LE(D.CandidatesTried, 50u);
  // The closeness-first ordering should still find something legal.
  EXPECT_TRUE(D.Found);
}

TEST_F(RoundingFixture, CoDesignArchIsPowerOfTwoAndWithinArea) {
  RealSolution Real = solveReal(DesignMode::CoDesign,
                                SearchObjective::Energy);
  RoundingOptions Opts;
  RoundedDesign D = roundSolution(Prob, Spec, Real, Opts);
  ASSERT_TRUE(D.Found);
  EXPECT_TRUE(isPowerOfTwo(D.Arch.RegWordsPerPE));
  EXPECT_TRUE(isPowerOfTwo(D.Arch.SramWords));
  EXPECT_LE(D.Arch.areaUm2(Spec.Tech), Spec.AreaBudgetUm2 * 1.0000001);
  // The rounded PE count brackets the real solution.
  EXPECT_GE(D.Arch.NumPEs + 1, static_cast<std::int64_t>(Real.NumPEs));
}

TEST_F(RoundingFixture, TileSizesDivideHierarchically) {
  RealSolution Real =
      solveReal(DesignMode::DataflowOnly, SearchObjective::Energy);
  RoundedDesign D = roundSolution(Prob, Spec, Real, RoundingOptions());
  ASSERT_TRUE(D.Found);
  std::vector<std::int64_t> Sram = D.Map.sramTileExtents();
  std::vector<std::int64_t> Pe = D.Map.peTileExtents();
  std::vector<std::int64_t> Reg = D.Map.registerTileExtents();
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    EXPECT_EQ(Prob.iterators()[I].Extent % Sram[I], 0);
    EXPECT_EQ(Sram[I] % Pe[I], 0);
    EXPECT_EQ(Pe[I] % Reg[I], 0);
  }
}

TEST_F(RoundingFixture, UtilizationThresholdFilters) {
  RealSolution Real = solveReal(DesignMode::DataflowOnly,
                                SearchObjective::Delay);
  RoundingOptions Strict;
  Strict.UtilizationThreshold = 0.5; // At least half the 168 PEs.
  RoundedDesign D = roundSolution(Prob, Spec, Real, Strict);
  if (D.Found) {
    EXPECT_GE(static_cast<double>(D.Eval.Profile.PEsUsed),
              0.5 * static_cast<double>(Spec.Arch.NumPEs));
  }
}

TEST_F(RoundingFixture, DeterministicAcrossRuns) {
  RealSolution Real =
      solveReal(DesignMode::DataflowOnly, SearchObjective::Energy);
  RoundedDesign A = roundSolution(Prob, Spec, Real, RoundingOptions());
  RoundedDesign B = roundSolution(Prob, Spec, Real, RoundingOptions());
  ASSERT_TRUE(A.Found);
  ASSERT_TRUE(B.Found);
  EXPECT_DOUBLE_EQ(A.Eval.EnergyPj, B.Eval.EnergyPj);
  EXPECT_EQ(A.CandidatesTried, B.CandidatesTried);
}

TEST_F(RoundingFixture, WiderWindowNeverLosesUnderSameCap) {
  RealSolution Real =
      solveReal(DesignMode::DataflowOnly, SearchObjective::Energy);
  RoundingOptions N1;
  N1.NumCandidates = 1;
  N1.MaxMappingCandidates = 1000000; // Uncapped for this comparison.
  RoundingOptions N2 = N1;
  N2.NumCandidates = 2;
  RoundedDesign D1 = roundSolution(Prob, Spec, Real, N1);
  RoundedDesign D2 = roundSolution(Prob, Spec, Real, N2);
  // n=1 may fail outright (its single rounded point can violate a
  // capacity); n=2 explores a strict superset and must succeed here and
  // never lose when both succeed.
  ASSERT_TRUE(D2.Found);
  if (D1.Found) {
    EXPECT_LE(D2.Eval.EnergyPj, D1.Eval.EnergyPj);
  }
}
