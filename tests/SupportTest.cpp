//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using namespace thistle;

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv(5, 1), 5);
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(-4));
  EXPECT_FALSE(isPowerOfTwo(168));
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(1), 1);
  EXPECT_EQ(nextPowerOfTwo(2), 2);
  EXPECT_EQ(nextPowerOfTwo(3), 4);
  EXPECT_EQ(nextPowerOfTwo(513), 1024);
}

TEST(MathUtil, DivisorsOfSmall) {
  EXPECT_EQ(divisorsOf(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisorsOf(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisorsOf(17), (std::vector<std::int64_t>{1, 17}));
  EXPECT_EQ(divisorsOf(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12,
                                                       18, 36}));
}

TEST(MathUtil, DivisorsAreSortedAndDivide) {
  for (std::int64_t N : {30, 64, 97, 224, 28269}) {
    std::vector<std::int64_t> Divs = divisorsOf(N);
    EXPECT_TRUE(std::is_sorted(Divs.begin(), Divs.end()));
    for (std::int64_t D : Divs)
      EXPECT_EQ(N % D, 0) << "divisor " << D << " of " << N;
    EXPECT_EQ(Divs.front(), 1);
    EXPECT_EQ(Divs.back(), N);
  }
}

TEST(MathUtil, ClosestDivisorsPicksNearest) {
  // Divisors of 24: 1 2 3 4 6 8 12 24. Nearest to 7 are 6 and 8.
  EXPECT_EQ(closestDivisors(24, 7.0, 2), (std::vector<std::int64_t>{6, 8}));
  // Ties break toward the smaller divisor: target 5 -> 4 then 6.
  EXPECT_EQ(closestDivisors(24, 5.0, 1), (std::vector<std::int64_t>{4}));
  // Count larger than divisor count returns everything.
  EXPECT_EQ(closestDivisors(4, 2.0, 10),
            (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(MathUtil, ClosestPowersOfTwoWindow) {
  // Example from the paper: real solution 12, N = 2 -> {8, 16}.
  EXPECT_EQ(closestPowersOfTwo(12.0, 2),
            (std::vector<std::int64_t>{8, 16}));
  EXPECT_EQ(closestPowersOfTwo(1.0, 1), (std::vector<std::int64_t>{1}));
  // MinValue clamps the window from below.
  std::vector<std::int64_t> R = closestPowersOfTwo(2.0, 3, 16);
  for (std::int64_t V : R)
    EXPECT_GE(V, 16);
  EXPECT_EQ(R.size(), 3u);
}

TEST(MathUtil, ProductOf) {
  EXPECT_EQ(productOf({}), 1);
  EXPECT_EQ(productOf({2, 3, 7}), 42);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Rng, NextIndexInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextIndex(13), 13u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng R(3);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, PickCoversAllElements) {
  Rng R(11);
  std::vector<int> V{10, 20, 30};
  std::set<int> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.pick(V));
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"layer", "pJ/MAC"});
  T.addRow({"resnet-1", "23.4"});
  T.addRow({"r2", "5"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| layer    | pJ/MAC |"), std::string::npos);
  EXPECT_NE(Out.find("| resnet-1 | 23.4   |"), std::string::npos);
  EXPECT_NE(Out.find("| r2       | 5      |"), std::string::npos);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::formatDouble(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::formatInt(168), "168");
}

// ---- Status / Expected ----------------------------------------------------

#include "support/FaultInjection.h"
#include "support/Status.h"
#include "support/SweepReport.h"

TEST(Status, OkByDefault) {
  Status S;
  EXPECT_TRUE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status S = Status::invalidArgument("negative budget");
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(S.toString(), "invalid-argument: negative budget");
}

TEST(Status, ContextChainsOuterFirst) {
  Status S = Status::parseError("'pes' wants an integer");
  S.withContext("line 3").withContext("loading machine.txt");
  EXPECT_EQ(S.toString(),
            "parse-error: loading machine.txt: line 3: "
            "'pes' wants an integer");
}

TEST(Status, ContextIsNoOpOnOk) {
  Status S = Status::ok();
  S.withContext("should vanish");
  EXPECT_EQ(S.toString(), "ok");
}

TEST(Expected, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(E.value(), 42);
  EXPECT_TRUE(E.status().isOk());
}

TEST(Expected, HoldsError) {
  Expected<int> E(Status::parseError("bad token"));
  EXPECT_FALSE(E.hasValue());
  EXPECT_EQ(E.status().code(), StatusCode::ParseError);
  E.withContext("parsing input");
  EXPECT_EQ(E.status().toString(), "parse-error: parsing input: bad token");
}

// ---- SweepReport ----------------------------------------------------------

TEST(SweepReport, CountsAndCleanliness) {
  SweepReport R;
  EXPECT_TRUE(R.clean());
  R.record(TaskOutcome::Solved, 0, 0, 0, 1, "");
  R.record(TaskOutcome::Solved, 1, 0, 1, 3, ""); // Needed retries.
  R.record(TaskOutcome::Infeasible, 2, 1, 0, 1, "no interior");
  EXPECT_TRUE(R.clean()); // Infeasible pairs are a model property.
  R.record(TaskOutcome::Failed, 3, 1, 1, 3, "breakdown");
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(R.Solved, 2u);
  // Retried counts every task that burned more than one attempt,
  // whether or not it ultimately succeeded.
  EXPECT_EQ(R.Retried, 2u);
  EXPECT_EQ(R.Infeasible, 1u);
  EXPECT_EQ(R.Failed, 1u);
  EXPECT_EQ(R.total(), 4u);
  // Incidents list every non-Solved task, in order.
  ASSERT_EQ(R.Incidents.size(), 2u);
  EXPECT_EQ(R.Incidents[0].Index, 2u);
  EXPECT_EQ(R.Incidents[1].Index, 3u);
}

TEST(SweepReport, MergePreservesShardOrder) {
  SweepReport A, B;
  A.record(TaskOutcome::Failed, 1, 0, 1, 1, "x");
  B.record(TaskOutcome::Skipped, 5, 2, 1, 0, "deadline");
  B.DeadlineExpired = true;
  A.merge(std::move(B));
  EXPECT_EQ(A.Failed, 1u);
  EXPECT_EQ(A.Skipped, 1u);
  EXPECT_TRUE(A.DeadlineExpired);
  ASSERT_EQ(A.Incidents.size(), 2u);
  EXPECT_EQ(A.Incidents[0].Index, 1u);
  EXPECT_EQ(A.Incidents[1].Index, 5u);
}

TEST(SweepReport, PolicySkipsStayClean) {
  SweepReport R;
  R.record(TaskOutcome::Solved, 0, 0, 0, 1, "");
  R.recordPolicySkip(1, 0, 1, "dropped by the pair cap");
  // A policy skip is a caller-requested truncation: counted, listed as
  // an incident, but not a loss.
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Skipped, 1u);
  EXPECT_EQ(R.SkippedByPolicy, 1u);
  EXPECT_EQ(R.total(), 2u);
  ASSERT_EQ(R.Incidents.size(), 1u);
  EXPECT_EQ(R.Incidents[0].Outcome, TaskOutcome::Skipped);
  std::string S = R.toString("pair");
  EXPECT_NE(S.find("1 skipped (1 by policy)"), std::string::npos);

  // A deadline skip on top is a real loss and flips cleanliness.
  R.record(TaskOutcome::Skipped, 2, 1, 0, 0, "deadline expired");
  EXPECT_FALSE(R.clean());
}

TEST(SweepReport, ZeroTasksSayNothingAttempted) {
  SweepReport R;
  EXPECT_EQ(R.toString("pair"), "0 pairs: nothing attempted");
}

TEST(SweepReport, ToStringNamesIncidents) {
  SweepReport R;
  R.record(TaskOutcome::Solved, 0, 0, 0, 1, "");
  R.record(TaskOutcome::Failed, 7, 2, 1, 3, "numerical breakdown");
  std::string S = R.toString("pair");
  EXPECT_NE(S.find("failed"), std::string::npos);
  EXPECT_NE(S.find("numerical breakdown"), std::string::npos);
  EXPECT_NE(S.find("7"), std::string::npos);
}

// ---- Fault injection ------------------------------------------------------

#if THISTLE_FAULT_INJECTION_ENABLED

namespace {

/// Disarms every site on scope exit so tests cannot leak armed faults.
struct FaultGuard {
  ~FaultGuard() { fault::disarmAll(); }
};

} // namespace

TEST(FaultInjection, DisarmedByDefault) {
  FaultGuard G;
  EXPECT_FALSE(fault::shouldFail("unit.some-site"));
}

TEST(FaultInjection, ArmedSiteFires) {
  FaultGuard G;
  fault::arm("unit.site-a");
  EXPECT_TRUE(fault::shouldFail("unit.site-a"));
  EXPECT_FALSE(fault::shouldFail("unit.site-b"));
  fault::disarm("unit.site-a");
  EXPECT_FALSE(fault::shouldFail("unit.site-a"));
}

TEST(FaultInjection, KeyedInjectionMatchesOnlyItsKey) {
  FaultGuard G;
  fault::arm("unit.keyed", /*Key=*/3);
  EXPECT_FALSE(fault::shouldFail("unit.keyed", 2));
  EXPECT_TRUE(fault::shouldFail("unit.keyed", 3));
  EXPECT_FALSE(fault::shouldFail("unit.keyed", 4));
}

TEST(FaultInjection, HitBudgetExpires) {
  FaultGuard G;
  fault::arm("unit.budget", fault::AnyKey, /*MaxHits=*/2);
  EXPECT_TRUE(fault::shouldFail("unit.budget"));
  EXPECT_TRUE(fault::shouldFail("unit.budget"));
  EXPECT_FALSE(fault::shouldFail("unit.budget"));
  EXPECT_EQ(fault::hitCount("unit.budget"), 2u);
}

TEST(FaultInjection, SpecParsing) {
  FaultGuard G;
  EXPECT_EQ(fault::armFromSpec("unit.spec-a,unit.spec-b:5:1"),
            std::string());
  EXPECT_TRUE(fault::shouldFail("unit.spec-a"));
  EXPECT_FALSE(fault::shouldFail("unit.spec-b", 4));
  EXPECT_TRUE(fault::shouldFail("unit.spec-b", 5));
  EXPECT_FALSE(fault::shouldFail("unit.spec-b", 5)); // Budget spent.
  EXPECT_EQ(fault::armFromSpec(""), std::string()); // Empty = no-op.
  EXPECT_NE(fault::armFromSpec("site:notanumber"), std::string());
}

#endif // THISTLE_FAULT_INJECTION_ENABLED

//===----------------------------------------------------------------------===//
// Persist: the crash-safe durable-state layer (docs/PERSISTENCE.md).
//===----------------------------------------------------------------------===//

#include "support/Persist.h"

#include <cmath>
#include <fstream>
#include <limits>

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(Persist, Crc32KnownVectorAndChaining) {
  // The IEEE 802.3 check value.
  EXPECT_EQ(persist::crc32("123456789", 9), 0xCBF43926u);
  // Seed chaining composes: crc(ab) == crc(b, crc(a)).
  std::uint32_t Part = persist::crc32("12345", 5);
  EXPECT_EQ(persist::crc32("6789", 4, Part), 0xCBF43926u);
  EXPECT_EQ(persist::crc32("", 0), 0u);
}

TEST(Persist, EncoderDecoderRoundTripIsBitExact) {
  persist::Encoder E;
  E.putU32(0xDEADBEEFu);
  E.putU64(~0ull);
  E.putI64(-42);
  E.putBool(true);
  E.putDouble(0.1);
  E.putDouble(-0.0);
  E.putDouble(std::numeric_limits<double>::infinity());
  E.putDouble(std::numeric_limits<double>::quiet_NaN());
  E.putString(std::string("nul\0newline\n", 12));

  persist::Decoder D(E.bytes());
  std::uint32_t U32 = 0;
  std::uint64_t U64 = 0;
  std::int64_t I64 = 0;
  bool B = false;
  double Tenth = 0, NegZero = 0, Inf = 0, Nan = 0;
  std::string S;
  EXPECT_TRUE(D.getU32(U32));
  EXPECT_TRUE(D.getU64(U64));
  EXPECT_TRUE(D.getI64(I64));
  EXPECT_TRUE(D.getBool(B));
  EXPECT_TRUE(D.getDouble(Tenth));
  EXPECT_TRUE(D.getDouble(NegZero));
  EXPECT_TRUE(D.getDouble(Inf));
  EXPECT_TRUE(D.getDouble(Nan));
  EXPECT_TRUE(D.getString(S));
  EXPECT_EQ(U32, 0xDEADBEEFu);
  EXPECT_EQ(U64, ~0ull);
  EXPECT_EQ(I64, -42);
  EXPECT_TRUE(B);
  EXPECT_EQ(Tenth, 0.1);
  EXPECT_EQ(NegZero, 0.0);
  EXPECT_TRUE(std::signbit(NegZero)); // -0.0 survives, not just ==.
  EXPECT_TRUE(std::isinf(Inf));
  EXPECT_TRUE(std::isnan(Nan));
  EXPECT_EQ(S, std::string("nul\0newline\n", 12));
  EXPECT_TRUE(D.atEnd());
  EXPECT_FALSE(D.failed());
}

TEST(Persist, DecoderUnderrunLatchesFailure) {
  persist::Encoder E;
  E.putU32(7);
  persist::Decoder D(E.bytes());
  std::uint64_t U64 = 99;
  EXPECT_FALSE(D.getU64(U64)); // Only 4 bytes available.
  EXPECT_EQ(U64, 99u);         // Output untouched on failure.
  EXPECT_TRUE(D.failed());
  std::uint32_t U32 = 0;
  EXPECT_FALSE(D.getU32(U32)); // Latched: even a fitting read fails.

  // A string whose length prefix exceeds the remaining bytes fails too.
  persist::Encoder E2;
  E2.putU64(1000);
  persist::Decoder D2(E2.bytes());
  std::string S;
  EXPECT_FALSE(D2.getString(S));
  EXPECT_TRUE(D2.failed());
}

TEST(Persist, SnapshotRoundTripAndAtomicReplace) {
  std::string Path = tmpPath("persist-roundtrip.snap");
  std::string Payload("binary\0payload\n\xff", 16);
  ASSERT_TRUE(persist::writeSnapshotFile(Path, "unit", Payload).isOk());
  Expected<std::string> Back = persist::readSnapshotFile(Path, "unit");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back.value(), Payload);

  // Rewriting replaces the snapshot in place (rename atomicity).
  ASSERT_TRUE(persist::writeSnapshotFile(Path, "unit", "v2").isOk());
  Back = persist::readSnapshotFile(Path, "unit");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back.value(), "v2");
  persist::removeFile(Path);
}

TEST(Persist, SnapshotErrorTaxonomy) {
  // Missing file: NotFound (callers stay silent and start cold).
  Expected<std::string> Missing =
      persist::readSnapshotFile(tmpPath("persist-nonexistent.snap"), "unit");
  ASSERT_FALSE(Missing.hasValue());
  EXPECT_EQ(Missing.status().code(), StatusCode::NotFound);

  // Unknown version magic: ParseError, never a guess.
  std::string Path = tmpPath("persist-badmagic.snap");
  spit(Path, "bogus-format/9 snap unit 2 00000000\nhi");
  Expected<std::string> BadMagic = persist::readSnapshotFile(Path, "unit");
  ASSERT_FALSE(BadMagic.hasValue());
  EXPECT_EQ(BadMagic.status().code(), StatusCode::ParseError);

  // Wrong kind: a gpcache snapshot is not a sweep snapshot.
  ASSERT_TRUE(persist::writeSnapshotFile(Path, "unit", "hi").isOk());
  Expected<std::string> WrongKind = persist::readSnapshotFile(Path, "other");
  ASSERT_FALSE(WrongKind.hasValue());
  EXPECT_EQ(WrongKind.status().code(), StatusCode::ParseError);

  // Truncated payload: DataLoss naming the byte counts.
  std::string Good = slurp(Path);
  spit(Path, Good.substr(0, Good.size() - 1));
  Expected<std::string> Torn = persist::readSnapshotFile(Path, "unit");
  ASSERT_FALSE(Torn.hasValue());
  EXPECT_EQ(Torn.status().code(), StatusCode::DataLoss);

  // Flipped payload byte: CRC mismatch, DataLoss.
  std::string Flipped = Good;
  Flipped.back() ^= 0x40;
  spit(Path, Flipped);
  Expected<std::string> Corrupt = persist::readSnapshotFile(Path, "unit");
  ASSERT_FALSE(Corrupt.hasValue());
  EXPECT_EQ(Corrupt.status().code(), StatusCode::DataLoss);
  EXPECT_NE(Corrupt.status().toString().find("CRC"), std::string::npos);
  persist::removeFile(Path);
}

TEST(Persist, JournalAppendsSurviveReopen) {
  std::string Path = tmpPath("persist-journal.log");
  persist::removeFile(Path);
  {
    persist::JournalWriter W;
    ASSERT_TRUE(W.open(Path, "unit").isOk());
    EXPECT_TRUE(W.isOpen());
    ASSERT_TRUE(W.append("first").isOk());
    ASSERT_TRUE(W.append(std::string("bin\0rec", 7)).isOk());
  } // Destructor closes.
  {
    // Reopening appends without duplicating the header.
    persist::JournalWriter W;
    ASSERT_TRUE(W.open(Path, "unit").isOk());
    ASSERT_TRUE(W.append("third").isOk());
  }
  Expected<persist::JournalContents> Back =
      persist::readJournalFile(Path, "unit");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_FALSE(Back.value().Truncated);
  ASSERT_EQ(Back.value().Records.size(), 3u);
  EXPECT_EQ(Back.value().Records[0], "first");
  EXPECT_EQ(Back.value().Records[1], std::string("bin\0rec", 7));
  EXPECT_EQ(Back.value().Records[2], "third");
  persist::removeFile(Path);
}

TEST(Persist, JournalTornTailKeepsIntactPrefix) {
  std::string Path = tmpPath("persist-torn.log");
  persist::removeFile(Path);
  {
    persist::JournalWriter W;
    ASSERT_TRUE(W.open(Path, "unit").isOk());
    ASSERT_TRUE(W.append("alpha").isOk());
    ASSERT_TRUE(W.append("beta").isOk());
  }
  // A SIGKILL mid-append leaves a half-written frame at the tail.
  std::string Bytes = slurp(Path);
  spit(Path, Bytes + "rec 50 0123abcd\nhalf");
  Expected<persist::JournalContents> Back =
      persist::readJournalFile(Path, "unit");
  ASSERT_TRUE(Back.hasValue());
  ASSERT_EQ(Back.value().Records.size(), 2u);
  EXPECT_EQ(Back.value().Records[0], "alpha");
  EXPECT_EQ(Back.value().Records[1], "beta");
  EXPECT_TRUE(Back.value().Truncated);
  EXPECT_NE(Back.value().Problem.find("2 intact"), std::string::npos);

  // A corrupt (bit-flipped) tail record is dropped the same way.
  std::string Corrupt = Bytes;
  Corrupt.back() ^= 0x40; // "beta"'s record separator.
  spit(Path, Corrupt);
  Back = persist::readJournalFile(Path, "unit");
  ASSERT_TRUE(Back.hasValue());
  ASSERT_EQ(Back.value().Records.size(), 1u);
  EXPECT_EQ(Back.value().Records[0], "alpha");
  EXPECT_TRUE(Back.value().Truncated);
  persist::removeFile(Path);
}

#if THISTLE_FAULT_INJECTION_ENABLED

TEST(Persist, FaultSitesCoverBothArtifacts) {
  FaultGuard G;
  std::string Path = tmpPath("persist-fault.snap");
  persist::removeFile(Path);

  // Key 0 is the snapshot path: the write fails outright and leaves no
  // file behind.
  fault::arm("persist.write-fail", /*Key=*/0);
  Status St = persist::writeSnapshotFile(Path, "unit", "payload");
  EXPECT_EQ(St.code(), StatusCode::DataLoss);
  EXPECT_FALSE(persist::fileExists(Path));
  fault::disarmAll();

  // A torn snapshot write "succeeds" but the reader detects the loss.
  fault::arm("persist.torn-write", /*Key=*/0);
  ASSERT_TRUE(persist::writeSnapshotFile(Path, "unit", "payload").isOk());
  fault::disarmAll();
  Expected<std::string> Torn = persist::readSnapshotFile(Path, "unit");
  ASSERT_FALSE(Torn.hasValue());
  EXPECT_EQ(Torn.status().code(), StatusCode::DataLoss);

  // Same for a bit flip after the CRC was computed.
  fault::arm("persist.corrupt-crc", /*Key=*/0);
  ASSERT_TRUE(persist::writeSnapshotFile(Path, "unit", "payload").isOk());
  fault::disarmAll();
  Expected<std::string> Corrupt = persist::readSnapshotFile(Path, "unit");
  ASSERT_FALSE(Corrupt.hasValue());
  EXPECT_EQ(Corrupt.status().code(), StatusCode::DataLoss);
  persist::removeFile(Path);

  // Key 1 is the journal path: appends fail, the writer stays open, and
  // records appended around the failure still land.
  std::string JPath = tmpPath("persist-fault.log");
  persist::removeFile(JPath);
  persist::JournalWriter W;
  ASSERT_TRUE(W.open(JPath, "unit").isOk());
  ASSERT_TRUE(W.append("before").isOk());
  fault::arm("persist.write-fail", /*Key=*/1);
  EXPECT_EQ(W.append("dropped").code(), StatusCode::DataLoss);
  fault::disarmAll();
  ASSERT_TRUE(W.append("after").isOk());
  W.close();
  Expected<persist::JournalContents> Back =
      persist::readJournalFile(JPath, "unit");
  ASSERT_TRUE(Back.hasValue());
  ASSERT_EQ(Back.value().Records.size(), 2u);
  EXPECT_EQ(Back.value().Records[0], "before");
  EXPECT_EQ(Back.value().Records[1], "after");
  persist::removeFile(JPath);
}

#endif // THISTLE_FAULT_INJECTION_ENABLED
