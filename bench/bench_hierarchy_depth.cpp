//===- bench/bench_hierarchy_depth.cpp - L-level engine throughput --------===//
//
// Measures how the hierarchy-generic engine scales with memory depth: the
// analytical evaluation rate (evals/s of evaluateMultiMapping on random
// valid mappings) and the mapper search rate (trials/s) on the same conv
// layer mapped onto 3-, 4- and 5-level machines. Writes the numbers to
// BENCH_hierarchy.json so the depth-scaling trajectory is tracked across
// PRs. The classic 3-level row doubles as the regression reference: it is
// the exact engine behind the fixed nestmodel pipeline.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "multilevel/MultiNestAnalysis.h"
#include "support/MathUtil.h"
#include "support/Rng.h"

#include <cstdio>
#include <vector>

using namespace thistle;
using namespace thistle::bench;

namespace {

/// The measured machines: same PE array and backing store, one extra
/// on-chip level per row.
Hierarchy machineOfDepth(unsigned Depth) {
  ArchConfig Arch = eyerissArch();
  TechParams Tech = TechParams::cgo45nm();
  switch (Depth) {
  case 3:
    return Hierarchy::classic3Level(Arch, Tech);
  case 4:
    return Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/2048,
                                     Arch.SramWords);
  default: {
    Hierarchy H = Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/2048,
                                            Arch.SramWords);
    // Insert a second shared SRAM level below DRAM.
    H.Levels.insert(H.Levels.end() - 1,
                    {"SRAM-L2", 4 * Arch.SramWords,
                     H.Levels[H.numLevels() - 2].AccessEnergyPj * 2.0,
                     H.Levels[H.numLevels() - 2].Bandwidth});
    return H;
  }
  }
}

/// Random valid MultiMapping by hierarchical divisor sampling (the same
/// scheme the mapper's sampler uses, without the PE-budget filtering).
MultiMapping randomMapping(const Problem &P, const Hierarchy &H, Rng &R) {
  const unsigned NumIters = P.numIterators();
  const unsigned L = H.numLevels();
  MultiMapping M;
  M.TempFactors.assign(L, std::vector<std::int64_t>(NumIters, 1));
  M.SpatialFactors.assign(NumIters, 1);
  std::int64_t SpatialBudget = H.NumPEs;
  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Rest = P.iterators()[I].Extent;
    for (unsigned Lv = 0; Lv + 1 < L; ++Lv) {
      std::int64_t F = R.pick(divisorsOf(Rest));
      M.TempFactors[Lv][I] = F;
      Rest /= F;
    }
    std::vector<std::int64_t> Choices;
    for (std::int64_t D : divisorsOf(Rest))
      if (D <= SpatialBudget)
        Choices.push_back(D);
    std::int64_t Sp = R.pick(Choices);
    SpatialBudget /= Sp;
    M.SpatialFactors[I] = Sp;
    M.TempFactors[L - 1][I] = Rest / Sp;
  }
  std::vector<unsigned> Identity(NumIters);
  for (unsigned I = 0; I < NumIters; ++I)
    Identity[I] = I;
  M.Perms.assign(L, Identity);
  for (unsigned Lv = 1; Lv < L; ++Lv)
    R.shuffle(M.Perms[Lv]);
  return M;
}

struct DepthRow {
  unsigned Depth = 0;
  double AnalysisPerS = 0.0;
  double MapperTrialsPerS = 0.0;
  double BestEnergyPj = 0.0;
};

DepthRow measureDepth(const Problem &P, unsigned Depth) {
  DepthRow Row;
  Row.Depth = Depth;
  Hierarchy H = machineOfDepth(Depth);

  // Analysis throughput: evaluate a fixed batch of pre-sampled mappings
  // so only the analytical model is on the clock.
  const int NumEvals = 20000;
  Rng R(17);
  std::vector<MultiMapping> Batch;
  Batch.reserve(NumEvals);
  for (int I = 0; I < NumEvals; ++I)
    Batch.push_back(randomMapping(P, H, R));
  WallTimer TA;
  double Checksum = 0.0;
  for (const MultiMapping &M : Batch)
    Checksum += evaluateMultiMapping(P, H, M).EnergyPj;
  Row.AnalysisPerS = NumEvals / TA.seconds();
  if (Checksum <= 0.0)
    std::printf("WARNING: degenerate checksum at depth %u\n", Depth);

  // Mapper throughput: fixed trial budget, no early victory.
  MapperOptions Opts = mapperOptions(SearchObjective::Energy);
  Opts.MaxTrials = 6000;
  Opts.VictoryCondition = 6000;
  WallTimer TM;
  MultiMapperResult MR = searchMultiMappings(P, H, Opts);
  Row.MapperTrialsPerS = MR.Trials / TM.seconds();
  Row.BestEnergyPj = MR.Found ? MR.BestEval.EnergyPj : 0.0;
  return Row;
}

void writeJson(const char *Path, const std::string &Workload,
               const std::vector<DepthRow> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"hierarchy_depth\",\n"
               "  \"workload\": \"%s\",\n"
               "  \"depths\": [\n",
               Workload.c_str());
  for (std::size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(F,
                 "    {\n"
                 "      \"levels\": %u,\n"
                 "      \"analysis_per_s\": %.2f,\n"
                 "      \"mapper_trials_per_s\": %.2f,\n"
                 "      \"best_energy_pj\": %.2f\n"
                 "    }%s\n",
                 Rows[I].Depth, Rows[I].AnalysisPerS,
                 Rows[I].MapperTrialsPerS, Rows[I].BestEnergyPj,
                 I + 1 < Rows.size() ? "," : "");
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

} // namespace

int main() {
  printHeader("hierarchy depth scaling",
              "Analytical-evaluation and mapper-search throughput of the\n"
              "L-level engine on the same conv layer at 3, 4 and 5 memory\n"
              "levels. Cost should grow roughly linearly in L.");

  ConvLayer L = resnet18Layers()[4];
  Problem P = makeConvProblem(L);

  std::vector<DepthRow> Rows;
  for (unsigned Depth : {3u, 4u, 5u}) {
    Rows.push_back(measureDepth(P, Depth));
    const DepthRow &R = Rows.back();
    std::printf("L=%u  %10.0f evals/s  %10.0f trials/s  best %.3e pJ\n",
                R.Depth, R.AnalysisPerS, R.MapperTrialsPerS,
                R.BestEnergyPj);
  }

  writeJson("BENCH_hierarchy.json", L.Name, Rows);
  std::printf("\nwrote BENCH_hierarchy.json\n");
  return 0;
}
