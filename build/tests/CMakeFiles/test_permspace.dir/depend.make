# Empty dependencies file for test_permspace.
# This may be replaced when dependencies are built.
