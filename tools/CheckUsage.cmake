# Asserts the thistle-opt --help text documents every user-facing
# contract: every flag the parser accepts (scraped from the tool source,
# so a new flag cannot land undocumented), the four exit codes, and the
# doc pointers (docs/THISTLE_OPT.md mirrors this text). Invoked by ctest
# as:
#   cmake -DTOOL=<thistle-opt> -DSOURCE=<thistle-opt.cpp> -P CheckUsage.cmake

execute_process(
  COMMAND ${TOOL} --help
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "--help: expected exit code 0, got '${CODE}'\n${ERR}")
endif()

# Known-important flags, pinned explicitly so a parser-scrape regression
# cannot silently weaken the audit.
foreach(FLAG
    --layer --resnet --yolo --pipeline --network
    --mode --objective --candidates --threads --deadline-ms --hierarchy
    --evaluator
    --pes --regs --sram-words --area-budget
    --export-timeloop --metrics --profile --trace-json)
  if(NOT OUT MATCHES "${FLAG}")
    message(FATAL_ERROR "--help: flag ${FLAG} undocumented\n${OUT}")
  endif()
endforeach()

# Every flag the parser compares against (the `Arg == "--x"` chain in
# the tool source) must appear in the usage table.
if(SOURCE)
  file(READ ${SOURCE} SRC)
  string(REGEX MATCHALL "Arg == \"(--[a-z-]+)\"" PARSED "${SRC}")
  foreach(MATCH ${PARSED})
    string(REGEX REPLACE "Arg == \"(--[a-z-]+)\"" "\\1" FLAG "${MATCH}")
    if(NOT OUT MATCHES "${FLAG}")
      message(FATAL_ERROR
        "--help: parsed flag ${FLAG} missing from usage\n${OUT}")
    endif()
  endforeach()
endif()

if(NOT OUT MATCHES "exit codes:")
  message(FATAL_ERROR "--help: missing exit-code section\n${OUT}")
endif()
foreach(PAIR
    "0  success" "1  partial/degraded" "2  invalid input"
    "3  no feasible design")
  if(NOT OUT MATCHES "${PAIR}")
    message(FATAL_ERROR "--help: missing exit code entry '${PAIR}'\n${OUT}")
  endif()
endforeach()

if(NOT OUT MATCHES "docs/OBSERVABILITY.md")
  message(FATAL_ERROR "--help: missing observability doc pointer\n${OUT}")
endif()

# An unknown option must print the same usage text and exit 2.
execute_process(
  COMMAND ${TOOL} --no-such-flag
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 2)
  message(FATAL_ERROR
    "unknown option: expected exit code 2, got '${CODE}'")
endif()
if(NOT ERR MATCHES "unknown option")
  message(FATAL_ERROR "unknown option: missing diagnostic\n${ERR}")
endif()
