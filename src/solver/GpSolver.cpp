//===- solver/GpSolver.cpp - Interior-point GP solver ---------------------===//
//
// The barrier-Newton inner loops (log-sum-exp value/gradient/Hessian
// assembly, the regularized Newton solve, the backtracking line search)
// run on the SIMD kernel layer (linalg/Kernels.h): LSE exponent rows are
// stored as one contiguous matrix, per-iteration buffers live in a
// SolverScratch that is reused across the whole solve, and the Newton
// regularization ladder factors four lambda rungs per lane-batched
// Cholesky call. Results are bit-identical across every THISTLE_SIMD
// setting (see docs/PERF.md).
//
//===----------------------------------------------------------------------===//

#include "solver/GpSolver.h"

#include "linalg/Kernels.h"
#include "linalg/Matrix.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

using namespace thistle;

namespace {

/// True when every entry is finite (guards Newton against NaN/inf
/// leaking out of an ill-conditioned derivative evaluation).
bool allFinite(const Vector &V) {
  for (double X : V)
    if (!std::isfinite(X))
      return false;
  return true;
}

/// A log-sum-exp function over the reduced variables z:
///   F(z) = log sum_k exp(A_k . z + B_k).
/// Precompiled from a posynomial after the y = y0 + Z z substitution.
/// The exponent rows A_k are one contiguous K x Reduced matrix so the
/// kernels stream them without pointer chasing.
struct LseFunction {
  Matrix Rows;    ///< K x Reduced exponent rows A_k.
  Vector Offsets; ///< B_k.

  std::size_t numTerms() const { return Rows.rows(); }

  /// Value only. \p E is exponent scratch, resized to the term count.
  double value(const Vector &Z, Vector &E) const {
    const std::size_t K = Rows.rows(), N = Rows.cols();
    assert(Z.size() == N && "LSE evaluated at the wrong dimension");
    E.resize(K);
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t T = 0; T < K; ++T) {
      E[T] = kernels::dot(Rows.row(T), Z.data(), N) + Offsets[T];
      Max = std::max(Max, E[T]);
    }
    double Sum = kernels::expAccum(E.data(), K, Max);
    return Max + std::log(Sum);
  }

  /// Value, gradient, and (optionally) Hessian. The Hessian of a
  /// log-sum-exp is sum_k w_k a_k a_k^T - g g^T with softmax weights w.
  /// \p E is exponent scratch; \p Grad / \p Hess are overwritten.
  double valueGradHess(const Vector &Z, Vector &Grad, Matrix *Hess,
                       Vector &E) const {
    const std::size_t K = Rows.rows(), N = Rows.cols();
    assert(Z.size() == N && "LSE evaluated at the wrong dimension");
    E.resize(K);
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t T = 0; T < K; ++T) {
      E[T] = kernels::dot(Rows.row(T), Z.data(), N) + Offsets[T];
      Max = std::max(Max, E[T]);
    }
    double Sum = kernels::expAccum(E.data(), K, Max);
    Grad.assign(N, 0.0);
    for (std::size_t T = 0; T < K; ++T)
      kernels::axpy(Grad.data(), E[T] / Sum, Rows.row(T), N);
    if (Hess) {
      Hess->reset(N, N);
      for (std::size_t T = 0; T < K; ++T)
        kernels::gramAccum(Hess->data(), Rows.row(T), E[T] / Sum, N);
      kernels::rank1Sub(Hess->data(), Grad.data(), N);
    }
    return Max + std::log(Sum);
  }
};

/// Compiles \p Posy over the affine substitution y = Y0 + Z z.
LseFunction compileLse(const Posynomial &Posy, const VarTable &Vars,
                       const Vector &Y0, const Matrix &Z) {
  assert(Posy.isPosynomial() && "log transform requires a posynomial");
  const std::size_t Reduced = Z.cols();
  const auto &Monomials = Posy.monomials();
  LseFunction Lse;
  Lse.Rows = Matrix(Monomials.size(), Reduced);
  Lse.Offsets.assign(Monomials.size(), 0.0);
  Vector A(Vars.size(), 0.0);
  for (std::size_t K = 0; K < Monomials.size(); ++K) {
    const Monomial &M = Monomials[K];
    // Full-space exponent vector a over y.
    std::fill(A.begin(), A.end(), 0.0);
    for (const Monomial::Term &T : M.terms())
      A[T.Var] = T.Exp;
    // Reduced row a' = Z^T a and offset b' = ln c + a . y0.
    double *Row = Lse.Rows.row(K);
    for (std::size_t I = 0; I < Vars.size(); ++I)
      if (A[I] != 0.0)
        kernels::axpy(Row, A[I], Z.row(I), Reduced);
    Lse.Offsets[K] = std::log(M.coefficient()) + dot(A, Y0);
  }
  return Lse;
}

/// Per-solve scratch: every buffer the barrier-Newton loops need, sized
/// once and reused so the hot path performs no per-iteration heap
/// allocation. A4/B4/X4/S4 are the lane-interleaved SoA buffers of the
/// batched Cholesky (kernels::choleskySolveBatch4).
struct SolverScratch {
  Vector E;              ///< LSE exponent buffer.
  Vector Gz;             ///< Objective/constraint gradient.
  Matrix Hz;             ///< Objective/constraint Hessian.
  Vector Gw;             ///< Phase-one gradient with the slack lane.
  Vector Zs;             ///< Phase-one slice of W (drops the slack).
  Vector Grad;           ///< Barrier gradient.
  Matrix Hess;           ///< Barrier Hessian.
  Vector NegGrad;        ///< Newton right-hand side.
  Vector Step;           ///< Newton direction.
  Vector Trial;          ///< Line-search trial point.
  Vector A4, B4, X4, S4; ///< Batched-Cholesky lane-interleaved buffers.
};

/// Barrier-method state shared by the two phases.
struct BarrierContext {
  LseFunction Objective;
  std::vector<LseFunction> Constraints;
  unsigned NewtonIterations = 0;
};

/// One centering step: minimizes T * f(W) + Phi(W) where f is the phase
/// objective and Phi the log barrier of the phase constraints, starting
/// from the strictly feasible \p W. \p PhaseOne switches the objective to
/// the slack variable (last coordinate of W) and offsets every constraint
/// by -s. Returns false on numerical failure.
///
/// In phase one, W = (z, s) and constraints are G_i(z) - s <= 0.
/// In phase two, W = z and constraints are G_i(z) <= 0.
class CenteringProblem {
public:
  CenteringProblem(const BarrierContext &Ctx, bool PhaseOne)
      : Ctx(Ctx), PhaseOne(PhaseOne) {}

  std::size_t dim(std::size_t ReducedDim) const {
    return PhaseOne ? ReducedDim + 1 : ReducedDim;
  }

  /// Constraint value G_i(W) (including the -s offset in phase one).
  double constraintValue(std::size_t I, const Vector &W,
                         SolverScratch &S) const {
    double G = Ctx.Constraints[I].value(sliceW(W, S), S.E);
    return PhaseOne ? G - W.back() : G;
  }

  /// True if every constraint is strictly negative at W.
  bool strictlyFeasible(const Vector &W, SolverScratch &S) const {
    const Vector &Z = sliceW(W, S);
    for (const LseFunction &C : Ctx.Constraints) {
      double G = C.value(Z, S.E);
      if (PhaseOne)
        G -= W.back();
      if (G >= 0.0)
        return false;
    }
    return true;
  }

  /// Phase objective value (no barrier).
  double objectiveValue(const Vector &W, SolverScratch &S) const {
    if (PhaseOne)
      return W.back();
    return Ctx.Objective.value(W, S.E);
  }

  /// Full barrier objective T*f + Phi; +inf outside the domain.
  double barrierValue(double T, const Vector &W, SolverScratch &S) const {
    double Phi = 0.0;
    const Vector &Z = sliceW(W, S);
    for (const LseFunction &C : Ctx.Constraints) {
      double G = C.value(Z, S.E);
      if (PhaseOne)
        G -= W.back();
      if (G >= 0.0)
        return std::numeric_limits<double>::infinity();
      Phi -= std::log(-G);
    }
    return T * objectiveValue(W, S) + Phi;
  }

  /// Gradient and Hessian of the barrier objective at strictly feasible W.
  /// \p Grad / \p Hess are overwritten; the remaining scratch buffers of
  /// \p S (E, Gz, Hz, Gw, Zs) are clobbered.
  void barrierDerivatives(double T, const Vector &W, Vector &Grad,
                          Matrix &Hess, SolverScratch &S) const {
    const std::size_t N = W.size();
    Grad.assign(N, 0.0);
    Hess.reset(N, N);

    // Objective part.
    if (PhaseOne) {
      Grad[N - 1] += T;
    } else {
      Ctx.Objective.valueGradHess(W, S.Gz, &S.Hz, S.E);
      kernels::axpy(Grad.data(), T, S.Gz.data(), N);
      kernels::axpy(Hess.data(), T, S.Hz.data(), N * N);
    }

    // Barrier part: -sum log(-G_i).
    const Vector &Z = sliceW(W, S);
    const std::size_t Nz = Z.size();
    for (const LseFunction &C : Ctx.Constraints) {
      double Gv = C.valueGradHess(Z, S.Gz, &S.Hz, S.E);
      // Extend the gradient with the slack coordinate in phase one.
      const double *Gw = S.Gz.data();
      if (PhaseOne) {
        Gv -= W.back();
        S.Gw.resize(N);
        std::copy(S.Gz.begin(), S.Gz.end(), S.Gw.begin());
        S.Gw[N - 1] = -1.0;
        Gw = S.Gw.data();
      }
      assert(Gv < 0.0 && "barrier derivative requested outside the domain");
      double Inv = -1.0 / Gv; // 1 / (-G) > 0.
      double InvSq = Inv * Inv;
      kernels::axpy(Grad.data(), Inv, Gw, N);
      kernels::gramAccum(Hess.data(), Gw, InvSq, N);
      // Constraint curvature: (1/-G) * Hess(G); slack has no curvature.
      if (Nz == N)
        kernels::axpy(Hess.data(), Inv, S.Hz.data(), N * N);
      else
        for (std::size_t I = 0; I < Nz; ++I)
          kernels::axpy(Hess.row(I), Inv, S.Hz.row(I), Nz);
    }
  }

private:
  /// The constraint-space point: W itself in phase two, W minus the
  /// trailing slack in phase one (copied into the S.Zs scratch).
  const Vector &sliceW(const Vector &W, SolverScratch &S) const {
    if (!PhaseOne)
      return W;
    S.Zs.assign(W.begin(), W.end() - 1);
    return S.Zs;
  }

  const BarrierContext &Ctx;
  bool PhaseOne;
};

/// Damped-Newton minimization of the barrier objective at fixed T.
/// Returns false on numerical breakdown. \p EarlyExit, when non-null,
/// stops as soon as it returns true (used by phase one once s < 0).
///
/// The regularization ladder (12 rungs lambda = 1e-10 * 100^r) runs four
/// rungs per lane-batched Cholesky call: the Hessian is broadcast into
/// the four SIMD lanes with a different diagonal shift each, and the
/// lowest-lambda lane that factors wins — exactly the rung the
/// sequential ladder would have picked, at a quarter of the kernel
/// invocations (and with the typical all-rungs-fail-until-late Hessian
/// resolved in one or two calls instead of up to twelve).
bool centerNewton(const CenteringProblem &Prob, double T, Vector &W,
                  unsigned MaxIters, unsigned &IterCounter,
                  bool (*EarlyExit)(const Vector &), SolverScratch &S) {
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (EarlyExit && EarlyExit(W))
      return true;
    Prob.barrierDerivatives(T, W, S.Grad, S.Hess, S);
    ++IterCounter;
    if (fault::shouldFail("solver.nan-grad"))
      S.Grad[0] = std::numeric_limits<double>::quiet_NaN();
    if (!allFinite(S.Grad))
      return false;

    const std::size_t N = W.size();
    S.NegGrad.resize(N);
    for (std::size_t I = 0; I < N; ++I)
      S.NegGrad[I] = -S.Grad[I];

    // Regularized Newton direction via the batched ladder.
    S.A4.resize(N * N * 4);
    S.B4.resize(N * 4);
    S.X4.resize(N * 4);
    S.S4.resize(N * N * 4);
    S.Step.resize(N);
    bool Solved = false;
    double BatchLambda = 1e-10;
    for (int Batch = 0; Batch < 3 && !Solved; ++Batch) {
      const double *H = S.Hess.data();
      for (std::size_t I = 0; I < N * N; ++I) {
        double V = H[I];
        double *Slot = &S.A4[I * 4];
        Slot[0] = Slot[1] = Slot[2] = Slot[3] = V;
      }
      for (std::size_t I = 0; I < N; ++I) {
        double *Diag = &S.A4[(I * N + I) * 4];
        double Lambda = BatchLambda;
        for (int R = 0; R < 4; ++R) {
          Diag[R] += Lambda;
          Lambda *= 100.0;
        }
        double *Rhs = &S.B4[I * 4];
        Rhs[0] = Rhs[1] = Rhs[2] = Rhs[3] = S.NegGrad[I];
      }
      kernels::CholeskyBatch4Ok Ok = kernels::choleskySolveBatch4(
          S.A4.data(), S.B4.data(), S.X4.data(), N, S.S4.data());
      for (int R = 0; R < 4 && !Solved; ++R) {
        if (!Ok.Ok[R])
          continue;
        for (std::size_t I = 0; I < N; ++I)
          S.Step[I] = S.X4[I * 4 + R];
        Solved = true;
      }
      BatchLambda *= 1e8; // 100^4: the next four rungs.
    }
    if (!Solved)
      return false;

    // Newton decrement as a stopping test.
    double Decrement = -kernels::dot(S.Grad.data(), S.Step.data(), N);
    if (!std::isfinite(Decrement))
      return false;
    if (Decrement < 0.0)
      Decrement = 0.0;
    if (Decrement * 0.5 < 1e-10)
      return true;

    // Backtracking line search with domain (feasibility) check.
    double Base = Prob.barrierValue(T, W, S);
    double Alpha = 1.0;
    bool Accepted = false;
    S.Trial.resize(N);
    for (int LsIter = 0; LsIter < 60; ++LsIter) {
      kernels::axpby(S.Trial.data(), W.data(), Alpha, S.Step.data(), N);
      double Val = Prob.barrierValue(T, S.Trial, S);
      if (Val <= Base - 1e-4 * Alpha * Decrement) {
        W.swap(S.Trial);
        Accepted = true;
        break;
      }
      Alpha *= 0.5;
    }
    if (!Accepted)
      return true; // No further progress at this T.
  }
  return true;
}

/// The uninstrumented solve (the body of the public solveGp); the
/// wrapper below records the per-solve outcome metrics in one place.
GpSolution solveGpImpl(const GpProblem &Problem,
                       const GpSolverOptions &Options) {
  GpSolution Solution;
  const VarTable &Vars = Problem.variables();
  const std::size_t N = Vars.size();
  assert(!Problem.objective().isZero() && "GP objective must be set");

  if (fault::shouldFail("solver.infeasible")) {
    Solution.Failure = "injected: no strictly feasible point (phase I)";
    Solution.Outcome = SolveOutcome::Infeasible;
    return Solution;
  }
  // Consumed once per solve: every phase-II convergence test of this
  // call is suppressed, so one armed hit fails exactly one solve.
  const bool ForceNonConverge = fault::shouldFail("solver.nonconverge");

  // ---- Eliminate monomial equalities: rows a . y = -ln c.
  const auto &Equalities = Problem.equalities();
  Matrix A(Equalities.size(), N);
  Vector B(Equalities.size(), 0.0);
  for (std::size_t E = 0; E < Equalities.size(); ++E) {
    const Monomial &G = Equalities[E].Lhs;
    for (const Monomial::Term &T : G.terms())
      A.at(E, T.Var) = T.Exp;
    B[E] = -std::log(G.coefficient());
  }
  Vector Y0;
  if (!solveParticular(A, B, Y0)) {
    Solution.Failure = "inconsistent monomial equality constraints";
    Solution.Outcome = SolveOutcome::Infeasible;
    return Solution;
  }
  Matrix Z = Equalities.empty() ? Matrix::identity(N) : nullSpaceOf(A);

  // ---- Compile objective and constraints into reduced log-sum-exp form.
  BarrierContext Ctx;
  Ctx.Objective = compileLse(Problem.objective(), Vars, Y0, Z);
  if (Options.ObjectiveScale > 0.0 && Options.ObjectiveScale != 1.0) {
    // Minimize f/scale instead of f: same argmin, offsets recentred
    // near zero so exp() stays in range for huge coefficient spreads.
    const double LogScale = std::log(Options.ObjectiveScale);
    for (std::size_t K = 0; K < Ctx.Objective.Offsets.size(); ++K)
      Ctx.Objective.Offsets[K] -= LogScale;
  }
  for (const GpProblem::Constraint &C : Problem.constraints())
    Ctx.Constraints.push_back(compileLse(C.Lhs, Vars, Y0, Z));

  const std::size_t Reduced = Z.cols();
  Vector ZVec(Reduced, 0.0);
  if (Options.InitialPoint.size() == N && Reduced > 0) {
    // Warm start: project log(InitialPoint) onto the equality subspace,
    //   z* = argmin_z || Y0 + Z z - log(x) ||_2
    // via the normal equations (Z^T Z) z = Z^T (log(x) - Y0). Z has full
    // column rank by construction, so Z^T Z is SPD. A degenerate point
    // (non-positive, non-finite) or a Cholesky failure keeps the classic
    // zero start; the warm start is an accelerator, never a requirement.
    bool Usable = true;
    for (double X : Options.InitialPoint)
      if (!(X > 0.0) || !std::isfinite(X))
        Usable = false;
    if (Usable) {
      Vector Residual(N, 0.0);
      for (std::size_t I = 0; I < N; ++I)
        Residual[I] = std::log(Options.InitialPoint[I]) - Y0[I];
      Vector Rhs = Z.applyTransposed(Residual);
      Matrix ZtZ(Reduced, Reduced);
      for (std::size_t J = 0; J < Reduced; ++J)
        for (std::size_t K = 0; K < Reduced; ++K) {
          double Sum = 0.0;
          for (std::size_t I = 0; I < N; ++I)
            Sum += Z.at(I, J) * Z.at(I, K);
          ZtZ.at(J, K) = Sum;
        }
      Vector ZStart;
      if (choleskySolve(std::move(ZtZ), Rhs, ZStart))
        ZVec = std::move(ZStart);
    }
  }
  if (Options.StartPerturbation != 0.0)
    // Deterministic start offset (stays on the equality subspace): the
    // retry ladder's way out of a pathological phase-I trajectory.
    for (std::size_t I = 0; I < Reduced; ++I)
      ZVec[I] += Options.StartPerturbation *
                 std::sin(static_cast<double>(I + 1));

  auto recoverX = [&](const Vector &ZV) {
    Assignment X(N);
    Vector Y = axpy(Y0, 1.0, Z.apply(ZV));
    for (std::size_t I = 0; I < N; ++I)
      X[I] = std::exp(Y[I]);
    return X;
  };

  // ---- Phase I: find a strictly feasible point if needed.
  SolverScratch Scratch;
  CenteringProblem PhaseTwo(Ctx, /*PhaseOne=*/false);
  if (!Ctx.Constraints.empty() && !PhaseTwo.strictlyFeasible(ZVec, Scratch)) {
    telemetry::count("solver.phase1.runs");
    CenteringProblem PhaseOne(Ctx, /*PhaseOne=*/true);
    double MaxG = -std::numeric_limits<double>::infinity();
    for (const LseFunction &C : Ctx.Constraints)
      MaxG = std::max(MaxG, C.value(ZVec, Scratch.E));
    Vector W = ZVec;
    W.push_back(MaxG + 1.0); // Strictly feasible for G_i - s < 0.

    auto FoundInterior = [](const Vector &W) { return W.back() < -1e-7; };
    double T = Options.TInitial;
    for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
      if (!centerNewton(PhaseOne, T, W, Options.MaxNewtonIters,
                        Solution.NewtonIterations, +FoundInterior,
                        Scratch)) {
        Solution.Failure = "numerical breakdown in phase I";
        Solution.Outcome = SolveOutcome::NumericalBreakdown;
        return Solution;
      }
      if (FoundInterior(W))
        break;
      T *= Options.TMultiplier;
    }
    if (!FoundInterior(W)) {
      Solution.Failure = "no strictly feasible point found (phase I)";
      Solution.Outcome = SolveOutcome::Infeasible;
      return Solution;
    }
    ZVec.assign(W.begin(), W.end() - 1);
    // The phase-I point satisfies G_i < s < 0, hence strictly feasible.
    assert(PhaseTwo.strictlyFeasible(ZVec, Scratch) &&
           "phase I postcondition");
  }
  Solution.Feasible = true;

  // ---- Phase II: follow the central path.
  double T = Options.TInitial;
  unsigned OuterIters = 0;
  const double NumConstraints =
      std::max<std::size_t>(Ctx.Constraints.size(), 1);
  for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
    ++OuterIters;
    if (!centerNewton(PhaseTwo, T, ZVec, Options.MaxNewtonIters,
                      Solution.NewtonIterations, nullptr, Scratch)) {
      Solution.Failure = "numerical breakdown in phase II";
      Solution.Outcome = SolveOutcome::NumericalBreakdown;
      Solution.Values = recoverX(ZVec);
      Solution.Objective = Problem.objective().evaluate(Solution.Values);
      return Solution;
    }
    if (NumConstraints / T < Options.Tolerance && !ForceNonConverge) {
      Solution.Converged = true;
      break;
    }
    T *= Options.TMultiplier;
  }
  if (telemetry::metricsEnabled()) {
    // Barrier-stage telemetry: how many centering steps phase II took
    // and the duality-gap bound m/t it stopped at (the residual).
    telemetry::observe("solver.phase2.outer_iters",
                       static_cast<double>(OuterIters));
    telemetry::observe("solver.phase2.barrier_gap", NumConstraints / T);
  }

  Solution.Values = recoverX(ZVec);
  Solution.Objective = Problem.objective().evaluate(Solution.Values);
  if (!allFinite(Solution.Values) || !std::isfinite(Solution.Objective)) {
    // A non-finite iterate must never reach extraction/rounding; strip
    // the convergence claim so callers discard rather than consume it.
    Solution.Converged = false;
    Solution.Outcome = SolveOutcome::NonFinite;
    Solution.Failure = "non-finite iterate or objective";
  } else if (Solution.Converged) {
    Solution.Outcome = SolveOutcome::Converged;
  } else {
    Solution.Outcome = SolveOutcome::NotConverged;
    Solution.Failure = ForceNonConverge
                           ? "injected: barrier loop never converged"
                           : "barrier loop hit MaxOuterIters before "
                             "reaching tolerance";
  }
  return Solution;
}

} // namespace

GpSolution thistle::solveGp(const GpProblem &Problem,
                            const GpSolverOptions &Options) {
  GpSolution Solution = solveGpImpl(Problem, Options);
  if (telemetry::metricsEnabled()) {
    telemetry::count("solver.solves");
    telemetry::count("solver.newton_iters", Solution.NewtonIterations);
    telemetry::observe("solver.newton_per_solve",
                       static_cast<double>(Solution.NewtonIterations));
    telemetry::count((std::string("solver.outcome.") +
                      solveOutcomeName(Solution.Outcome))
                         .c_str());
  }
  return Solution;
}

const char *thistle::solveOutcomeName(SolveOutcome Outcome) {
  switch (Outcome) {
  case SolveOutcome::Converged:
    return "converged";
  case SolveOutcome::NotConverged:
    return "not-converged";
  case SolveOutcome::Infeasible:
    return "infeasible";
  case SolveOutcome::NumericalBreakdown:
    return "numerical-breakdown";
  case SolveOutcome::NonFinite:
    return "non-finite";
  }
  return "unknown";
}

namespace {

/// Usability rank of an attempt's outcome for the ladder's final pick.
/// Breakdown-with-a-feasible-iterate still carries a usable point (the
/// pre-breakdown central-path iterate), so it outranks infeasibility.
int outcomeRank(const GpSolution &S) {
  switch (S.Outcome) {
  case SolveOutcome::Converged:
    return 4;
  case SolveOutcome::NotConverged:
    return 3;
  case SolveOutcome::NumericalBreakdown:
    return S.Feasible ? 2 : 1;
  case SolveOutcome::Infeasible:
    return 1;
  case SolveOutcome::NonFinite:
    return 0;
  }
  return 0;
}

/// Largest objective coefficient, for the rescaling rung.
double objectiveScaleFor(const GpProblem &Problem) {
  double Max = 0.0;
  for (const Monomial &M : Problem.objective().monomials())
    Max = std::max(Max, M.coefficient());
  return std::isfinite(Max) && Max > 0.0 ? Max : 1.0;
}

} // namespace

GpSolution thistle::solveGpWithRetry(const GpProblem &Problem,
                                     const GpSolverOptions &Options,
                                     GpSolveReport *Report) {
  const unsigned MaxAttempts = std::max(1u, Options.MaxSolveAttempts);
  GpSolution Best;
  unsigned BestAttempt = 0;
  unsigned TotalNewton = 0;

  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    GpSolverOptions Rung = Options;
    if (Attempt == 1) {
      // Perturbed start, gentler initial barrier weight.
      Rung.StartPerturbation = 1e-3;
      Rung.TInitial = Options.TInitial * 0.1;
    } else if (Attempt >= 2) {
      // Stronger perturbation, slow barrier growth, rescaled objective.
      Rung.StartPerturbation = 1e-2 * static_cast<double>(Attempt - 1);
      Rung.TInitial = Options.TInitial * 0.01;
      Rung.TMultiplier = std::max(4.0, Options.TMultiplier * 0.5);
      Rung.ObjectiveScale = objectiveScaleFor(Problem);
    }

    telemetry::TraceScope AttemptSpan("solver.attempt");
    GpSolution S = solveGp(Problem, Rung);
    if (telemetry::traceEnabled())
      AttemptSpan.setDetail(std::string(solveOutcomeName(S.Outcome)) +
                            " newton=" +
                            std::to_string(S.NewtonIterations));
    if (Attempt > 0)
      telemetry::count("solver.retry.attempts");
    TotalNewton += S.NewtonIterations;
    if (Report)
      Report->Attempts.push_back({S.Outcome, Rung.StartPerturbation,
                                  Rung.TInitial, Rung.TMultiplier,
                                  Rung.ObjectiveScale, S.NewtonIterations,
                                  S.Failure});

    // Strictly-better outcomes displace the incumbent; ties keep the
    // earliest attempt so a clean first solve is bit-identical to
    // solveGp with the caller's options.
    if (Attempt == 0 || outcomeRank(S) > outcomeRank(Best)) {
      Best = std::move(S);
      BestAttempt = Attempt;
    }
    if (Best.Outcome == SolveOutcome::Converged)
      break;
    // Infeasibility is a property of the problem, not of the numerics:
    // retrying cannot cure it, so stop the ladder early.
    if (Best.Outcome == SolveOutcome::Infeasible &&
        Best.Failure.find("injected") == std::string::npos)
      break;
  }

  Best.NewtonIterations = TotalNewton;
  if (BestAttempt > 0 && Best.Outcome == SolveOutcome::Converged)
    telemetry::count("solver.retry.recovered");
  if (Report)
    Report->Recovered =
        BestAttempt > 0 && Best.Outcome == SolveOutcome::Converged;
  return Best;
}
