//===- multilevel/Hierarchy.cpp - Arbitrary-depth memory hierarchies ------===//

#include "multilevel/Hierarchy.h"

#include <sstream>

using namespace thistle;

std::string Hierarchy::validate() const {
  std::ostringstream Err;
  if (Levels.size() < 2)
    return "hierarchy needs at least two levels";
  if (FanoutLevel < 1 || FanoutLevel >= Levels.size()) {
    Err << "fan-out level " << FanoutLevel << " out of range [1, "
        << Levels.size() - 1 << "]";
    return Err.str();
  }
  if (NumPEs < 1)
    return "hierarchy needs at least one PE";
  for (std::size_t L = 0; L + 1 < Levels.size(); ++L)
    if (Levels[L].CapacityWords < 1) {
      Err << "level " << Levels[L].Name << " has no capacity";
      return Err.str();
    }
  for (const HierarchyLevel &L : Levels) {
    if (L.AccessEnergyPj < 0.0)
      return "negative access energy at level " + L.Name;
    if (L.Bandwidth <= 0.0)
      return "non-positive bandwidth at level " + L.Name;
  }
  return std::string();
}

double Hierarchy::areaUm2(const TechParams &Tech) const {
  double PerPE = Tech.AreaMacUm2 +
                 Tech.AreaRegWordUm2 * static_cast<double>(
                                           Levels[0].CapacityWords);
  for (unsigned L = 1; L < FanoutLevel; ++L)
    PerPE += Tech.AreaSramWordUm2 *
             static_cast<double>(Levels[L].CapacityWords);
  double Shared = 0.0;
  for (unsigned L = FanoutLevel; L + 1 < Levels.size(); ++L)
    Shared += Tech.AreaSramWordUm2 *
              static_cast<double>(Levels[L].CapacityWords);
  return PerPE * static_cast<double>(NumPEs) + Shared;
}

Hierarchy Hierarchy::classic(const ArchConfig &Arch, const TechParams &Tech) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 1;
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9}, // Register accesses are part of the MAC pipe.
      {"SRAM", Arch.SramWords,
       Energy.sramAccessPj(static_cast<double>(Arch.SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}

Hierarchy Hierarchy::withScratchpad(const ArchConfig &Arch,
                                    const TechParams &Tech,
                                    std::int64_t SpadWords,
                                    std::int64_t SramWords) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 2; // Registers and scratchpad are per PE.
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9},
      // The per-PE scratchpad is priced like a small SRAM (Eq. 4).
      {"Scratchpad", SpadWords,
       Energy.sramAccessPj(static_cast<double>(SpadWords)),
       /*Bandwidth=*/4.0},
      {"SRAM", SramWords,
       Energy.sramAccessPj(static_cast<double>(SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}
