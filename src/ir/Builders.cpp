//===- ir/Builders.cpp - CNN and matmul problem builders ------------------===//

#include "ir/Builders.h"

#include "support/MathUtil.h"

using namespace thistle;

const char *thistle::paddingName(ConvPadding Padding) {
  switch (Padding) {
  case ConvPadding::Same:
    return "same";
  case ConvPadding::Valid:
    return "valid";
  }
  return "unknown";
}

Expected<ConvPadding> thistle::parsePadding(const std::string &Token) {
  if (Token == "same")
    return ConvPadding::Same;
  if (Token == "valid")
    return ConvPadding::Valid;
  return Status::invalidArgument("unknown padding '" + Token +
                                 "' (want same or valid)");
}

Status ConvLayer::validate() const {
  const struct {
    const char *Field;
    std::int64_t Value;
  } Positives[] = {
      {"N", N},           {"K", K},
      {"C", C},           {"Hin", Hin},
      {"Win", Win},       {"R", R},
      {"S", S},           {"StrideX", StrideX},
      {"StrideY", StrideY}, {"DilationX", DilationX},
      {"DilationY", DilationY}, {"Groups", Groups},
  };
  for (const auto &P : Positives)
    if (P.Value <= 0)
      return Status::invalidArgument(
          "layer '" + Name + "': " + P.Field + " = " +
          std::to_string(P.Value) + " must be positive");
  if (K % Groups != 0)
    return Status::invalidArgument("layer '" + Name + "': K = " +
                                   std::to_string(K) +
                                   " not divisible by Groups = " +
                                   std::to_string(Groups));
  if (C % Groups != 0)
    return Status::invalidArgument("layer '" + Name + "': C = " +
                                   std::to_string(C) +
                                   " not divisible by Groups = " +
                                   std::to_string(Groups));
  if (!Transposed && Padding == ConvPadding::Valid) {
    if (Hin < DilationX * (R - 1) + 1)
      return Status::invalidArgument(
          "layer '" + Name + "': valid padding needs Hin >= " +
          std::to_string(DilationX * (R - 1) + 1) +
          " (dilated kernel height), got " + std::to_string(Hin));
    if (Win < DilationY * (S - 1) + 1)
      return Status::invalidArgument(
          "layer '" + Name + "': valid padding needs Win >= " +
          std::to_string(DilationY * (S - 1) + 1) +
          " (dilated kernel width), got " + std::to_string(Win));
  }
  return Status::ok();
}

std::int64_t ConvLayer::outH() const {
  if (Transposed)
    return StrideX * (Hin - 1) + DilationX * (R - 1) + 1;
  if (Padding == ConvPadding::Valid)
    return (Hin - DilationX * (R - 1) - 1) / StrideX + 1;
  return ceilDiv(Hin, StrideX);
}

std::int64_t ConvLayer::outW() const {
  if (Transposed)
    return StrideY * (Win - 1) + DilationY * (S - 1) + 1;
  if (Padding == ConvPadding::Valid)
    return (Win - DilationY * (S - 1) - 1) / StrideY + 1;
  return ceilDiv(Win, StrideY);
}

std::int64_t ConvLayer::numMacs() const {
  const std::int64_t Spatial =
      Transposed ? Hin * Win : outH() * outW();
  return N * K * (C / Groups) * R * S * Spatial;
}

const char *ConvLayer::layerClass() const {
  if (Transposed)
    return "transposed";
  if (Groups > 1)
    return Groups == C ? "depthwise" : "grouped";
  if (DilationX > 1 || DilationY > 1)
    return "dilated";
  return "dense";
}

Problem thistle::makeConvProblem(const ConvLayer &Layer) {
  assert(Layer.validate().isOk() && "makeConvProblem wants a valid layer");
  const bool Grouped = Layer.Groups > 1;
  const std::int64_t Kg = Layer.K / Layer.Groups;
  const std::int64_t Cg = Layer.C / Layer.Groups;
  // Direct convs iterate h/w over the output image (In carries the
  // strided projection); transposed convs iterate over the input image
  // (Out carries it).
  const std::int64_t ExtH = Layer.Transposed ? Layer.Hin : Layer.outH();
  const std::int64_t ExtW = Layer.Transposed ? Layer.Win : Layer.outW();

  std::vector<Iterator> Iters;
  Iters.push_back({"n", Layer.N});
  const unsigned ItN = 0;
  unsigned ItG = 0;
  if (Grouped) {
    ItG = Iters.size();
    Iters.push_back({"g", Layer.Groups});
  }
  const unsigned ItK = Iters.size();
  Iters.push_back({"k", Kg});
  const unsigned ItC = Iters.size();
  Iters.push_back({"c", Cg});
  const unsigned ItR = Iters.size();
  Iters.push_back({"r", Layer.R});
  const unsigned ItS = Iters.size();
  Iters.push_back({"s", Layer.S});
  const unsigned ItH = Iters.size();
  Iters.push_back({"h", ExtH});
  const unsigned ItW = Iters.size();
  Iters.push_back({"w", ExtW});

  // Channel projections: grouped layers address Out/Ker filters as
  // (K/G)*g + k and In channels as (C/G)*g + c.
  DimRef OutChannels, InChannels;
  if (Grouped) {
    OutChannels.Terms = {{ItG, Kg}, {ItK, 1}};
    InChannels.Terms = {{ItG, Cg}, {ItC, 1}};
  } else {
    OutChannels.Terms = {{ItK, 1}};
    InChannels.Terms = {{ItC, 1}};
  }

  // The strided spatial projections x*h + dil_x*r and y*w + dil_y*s.
  DimRef StridedH, StridedW;
  StridedH.Terms = {{ItH, Layer.StrideX}, {ItR, Layer.DilationX}};
  StridedW.Terms = {{ItW, Layer.StrideY}, {ItS, Layer.DilationY}};
  DimRef PointH, PointW;
  PointH.Terms = {{ItH, 1}};
  PointW.Terms = {{ItW, 1}};

  Tensor Out;
  Out.Name = "Out";
  Out.ReadWrite = true;

  Tensor In;
  In.Name = "In";

  if (Layer.Transposed) {
    Out.Dims = {{{{ItN, 1}}}, OutChannels, StridedH, StridedW};
    In.Dims = {{{{ItN, 1}}}, InChannels, PointH, PointW};
  } else {
    Out.Dims = {{{{ItN, 1}}}, OutChannels, PointH, PointW};
    In.Dims = {{{{ItN, 1}}}, InChannels, StridedH, StridedW};
  }

  Tensor Ker;
  Ker.Name = "Ker";
  Ker.Dims = {OutChannels, {{{ItC, 1}}}, {{{ItR, 1}}}, {{{ItS, 1}}}};

  return Problem(Layer.Name, std::move(Iters),
                 {std::move(Out), std::move(In), std::move(Ker)});
}

Problem thistle::makeMatmulProblem(std::int64_t Ni, std::int64_t Nj,
                                   std::int64_t Nk) {
  std::vector<Iterator> Iters = {{"i", Ni}, {"j", Nj}, {"k", Nk}};
  enum : unsigned { ItI, ItJ, ItK };

  Tensor CMat;
  CMat.Name = "C";
  CMat.ReadWrite = true;
  CMat.Dims = {{{{ItI, 1}}}, {{{ItJ, 1}}}};

  Tensor AMat;
  AMat.Name = "A";
  AMat.Dims = {{{{ItI, 1}}}, {{{ItK, 1}}}};

  Tensor BMat;
  BMat.Name = "B";
  BMat.Dims = {{{{ItK, 1}}}, {{{ItJ, 1}}}};

  return Problem("matmul", std::move(Iters),
                 {std::move(CMat), std::move(AMat), std::move(BMat)});
}
