file(REMOVE_RECURSE
  "libthistle_multilevel.a"
)
