file(REMOVE_RECURSE
  "CMakeFiles/thistle_expr.dir/FactoredExpr.cpp.o"
  "CMakeFiles/thistle_expr.dir/FactoredExpr.cpp.o.d"
  "CMakeFiles/thistle_expr.dir/Monomial.cpp.o"
  "CMakeFiles/thistle_expr.dir/Monomial.cpp.o.d"
  "CMakeFiles/thistle_expr.dir/Signomial.cpp.o"
  "CMakeFiles/thistle_expr.dir/Signomial.cpp.o.d"
  "libthistle_expr.a"
  "libthistle_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
