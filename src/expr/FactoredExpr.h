//===- expr/FactoredExpr.h - Product-of-sums expressions --------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data footprints and data volumes produced by Algorithm 1 have the
/// natural shape
///   Prefix * prod_d Extent_d
/// where Prefix is a monomial (trip-count products hoisted outside) and
/// each Extent_d is the signomial extent of one data dimension (e.g.
/// q_h*r_h + q_r*r_r - 1). FactoredExpr keeps this shape so that
/// substitution is cheap, printing matches the paper (Table I), and the
/// posynomial upper bound can be taken factor-wise (a product of
/// posynomials with positive variables is a posynomial after expansion).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_EXPR_FACTOREDEXPR_H
#define THISTLE_EXPR_FACTOREDEXPR_H

#include "expr/Signomial.h"

#include <string>
#include <vector>

namespace thistle {

/// Prefix monomial times a product of signomial factors.
class FactoredExpr {
public:
  /// The expression "1".
  FactoredExpr() : Prefix(1.0) {}

  /// A bare monomial expression.
  explicit FactoredExpr(Monomial Prefix) : Prefix(std::move(Prefix)) {}

  const Monomial &prefix() const { return Prefix; }
  const std::vector<Signomial> &factors() const { return Factors; }

  /// Appends a factor. Single-monomial factors are folded into the prefix.
  void pushFactor(const Signomial &Factor);

  /// Multiplies the prefix by \p M (the "multiply(DV, c^l)" step of
  /// Algorithm 1, line 18/20).
  void multiplyPrefix(const Monomial &M);

  /// Substitutes \p Var := \p Repl in the prefix and in every factor (the
  /// "replace(DF, c^{l-1}, c^l c^{l-1})" step of Algorithm 1).
  FactoredExpr substituted(VarId Var, const Monomial &Repl) const;

  /// Expands to a flat signomial (used when building GP constraints).
  Signomial expanded() const;

  /// Factor-wise posynomial upper bound (drops negative terms per factor).
  FactoredExpr posynomialUpperBound() const;

  /// Alternative factor-wise upper bound: each factor is replaced by the
  /// *product* of its positive monomials. For a halo factor
  /// sum_t m_t - (sum_t coeff_t - 1) with every m_t >= 1 this is a valid
  /// upper bound (derivative dominance from the all-ones corner) that is
  /// tighter than dropping the negative constant when the tile extents
  /// are near 1 — exactly the small-register-file regime where the
  /// drop-negative bound can make a feasible design look infeasible.
  FactoredExpr monomialProductUpperBound() const;

  /// Exact numeric evaluation.
  double evaluate(const Assignment &Values) const;

  /// True if the prefix or any factor mentions \p Var.
  bool mentions(VarId Var) const;

  /// Renders e.g. "2*q_w*q_n*q_k * (r_n*r_k*q_h*r_h*r_w)" in factored form.
  std::string toString(const VarTable &Table) const;

private:
  Monomial Prefix;
  std::vector<Signomial> Factors;
};

} // namespace thistle

#endif // THISTLE_EXPR_FACTOREDEXPR_H
