//===- support/TablePrinter.h - ASCII table output --------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII table printing used by the benchmark harness to
/// regenerate the paper's tables and figure data series in a readable form.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_TABLEPRINTER_H
#define THISTLE_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace thistle {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

  /// Formats a double with \p Precision significant decimal digits.
  static std::string formatDouble(double Value, int Precision = 3);

  /// Formats an integer.
  static std::string formatInt(std::int64_t Value);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace thistle

#endif // THISTLE_SUPPORT_TABLEPRINTER_H
