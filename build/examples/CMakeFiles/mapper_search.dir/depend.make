# Empty dependencies file for mapper_search.
# This may be replaced when dependencies are built.
