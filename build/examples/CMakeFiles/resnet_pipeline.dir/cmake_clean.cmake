file(REMOVE_RECURSE
  "CMakeFiles/resnet_pipeline.dir/resnet_pipeline.cpp.o"
  "CMakeFiles/resnet_pipeline.dir/resnet_pipeline.cpp.o.d"
  "resnet_pipeline"
  "resnet_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
