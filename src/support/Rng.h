//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (SplitMix64) used by the Mapper's random
/// search and by property-based tests. We avoid <random> engines so that the
/// search baseline is bit-reproducible across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_RNG_H
#define THISTLE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace thistle {

/// Deterministic SplitMix64 pseudo-random generator.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  std::uint64_t nextU64() {
    State += 0x9E3779B97F4A7C15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform index in [0, Bound).
  std::size_t nextIndex(std::size_t Bound) {
    assert(Bound > 0 && "nextIndex bound must be positive");
    return static_cast<std::size_t>(nextU64() % Bound);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (std::size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextIndex(I)]);
  }

  /// Picks a uniformly random element of non-empty \p Values.
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "cannot pick from an empty vector");
    return Values[nextIndex(Values.size())];
  }

private:
  std::uint64_t State;
};

} // namespace thistle

#endif // THISTLE_SUPPORT_RNG_H
