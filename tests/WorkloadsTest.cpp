//===- tests/WorkloadsTest.cpp - workloads/ tests (Table II) --------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

TEST(Workloads, LayerCountsMatchTableII) {
  EXPECT_EQ(resnet18Layers().size(), 12u);
  EXPECT_EQ(yolo9000Layers().size(), 11u);
  EXPECT_EQ(allPaperLayers().size(), 23u);
}

TEST(Workloads, ResnetSpotChecks) {
  std::vector<ConvLayer> L = resnet18Layers();
  // Layer 1: K=64, C=3, H=W=224, R=S=7, stride 2.
  EXPECT_EQ(L[0].K, 64);
  EXPECT_EQ(L[0].C, 3);
  EXPECT_EQ(L[0].Hin, 224);
  EXPECT_EQ(L[0].R, 7);
  EXPECT_EQ(L[0].StrideX, 2);
  // Layer 4: 128, 64, 56, 3, stride 2 (marked * in Table II).
  EXPECT_EQ(L[3].K, 128);
  EXPECT_EQ(L[3].R, 3);
  EXPECT_EQ(L[3].StrideX, 2);
  // Layer 12: 512, 512, 7, 3, stride 1.
  EXPECT_EQ(L[11].K, 512);
  EXPECT_EQ(L[11].C, 512);
  EXPECT_EQ(L[11].Hin, 7);
  EXPECT_EQ(L[11].StrideX, 1);
  // All batch size 1 and square.
  for (const ConvLayer &Layer : L) {
    EXPECT_EQ(Layer.N, 1);
    EXPECT_EQ(Layer.Hin, Layer.Win);
    EXPECT_EQ(Layer.R, Layer.S);
    EXPECT_EQ(Layer.StrideX, Layer.StrideY);
  }
}

TEST(Workloads, YoloSpotChecks) {
  std::vector<ConvLayer> L = yolo9000Layers();
  // Layer 1: K=32, C=3, H=W=544, R=S=3.
  EXPECT_EQ(L[0].K, 32);
  EXPECT_EQ(L[0].C, 3);
  EXPECT_EQ(L[0].Hin, 544);
  EXPECT_EQ(L[0].R, 3);
  // Layer 11: the 28269-channel classifier conv.
  EXPECT_EQ(L[10].K, 28269);
  EXPECT_EQ(L[10].C, 1024);
  EXPECT_EQ(L[10].Hin, 17);
  EXPECT_EQ(L[10].R, 1);
  // Yolo uses stride 1 everywhere (no * in Table II).
  for (const ConvLayer &Layer : L)
    EXPECT_EQ(Layer.StrideX, 1);
}

TEST(Workloads, LayerNamesAreUnique) {
  std::vector<ConvLayer> All = allPaperLayers();
  for (std::size_t I = 0; I < All.size(); ++I)
    for (std::size_t J = I + 1; J < All.size(); ++J)
      EXPECT_NE(All[I].Name, All[J].Name);
}

TEST(Workloads, ProblemsBuildAndHavePlausibleMacCounts) {
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    EXPECT_EQ(P.numOps(), L.numMacs()) << L.Name;
    EXPECT_GT(P.numOps(), 1000000) << L.Name; // All layers are nontrivial.
  }
}

TEST(Workloads, EyerissBaseline) {
  ArchConfig A = eyerissArch();
  EXPECT_EQ(A.NumPEs, 168);
  EXPECT_EQ(A.RegWordsPerPE, 512);
  EXPECT_EQ(A.SramWords, 65536);
  EXPECT_GT(eyerissAreaUm2(TechParams::cgo45nm()), 0.0);
}

TEST(Workloads, MobileNetV2TableShape) {
  std::vector<ConvLayer> Shapes = mobilenetV2Layers();
  std::vector<ConvLayer> Net = mobilenetV2NetworkLayers();
  EXPECT_EQ(Shapes.size(), 30u);
  EXPECT_EQ(Net.size(), 52u);
  // Every layer in both tables is well-formed.
  for (const ConvLayer &L : Net)
    EXPECT_TRUE(L.validate().isOk()) << L.Name;
  // Unique names within the shape table.
  for (std::size_t I = 0; I < Shapes.size(); ++I)
    for (std::size_t J = I + 1; J < Shapes.size(); ++J)
      EXPECT_NE(Shapes[I].Name, Shapes[J].Name);
}

TEST(Workloads, MobileNetV2SpotChecks) {
  std::vector<ConvLayer> L = mobilenetV2Layers();
  // Stem: 32 output channels over RGB at 224x224, stride 2.
  EXPECT_EQ(L[0].K, 32);
  EXPECT_EQ(L[0].C, 3);
  EXPECT_EQ(L[0].Hin, 224);
  EXPECT_EQ(L[0].StrideX, 2);
  EXPECT_STREQ(L[0].layerClass(), "dense");
  // The table mixes depthwise 3x3s with pointwise expand/project 1x1s.
  std::size_t Depthwise = 0, Pointwise = 0;
  for (const ConvLayer &Layer : L) {
    if (std::string(Layer.layerClass()) == "depthwise") {
      ++Depthwise;
      EXPECT_EQ(Layer.Groups, Layer.C);
      EXPECT_EQ(Layer.K, Layer.C);
      EXPECT_EQ(Layer.R, 3);
      // Depthwise MACs drop the cross-channel reduction: one input
      // channel per output channel.
      EXPECT_EQ(Layer.numMacs(),
                Layer.N * Layer.K * 9 * Layer.outH() * Layer.outW())
          << Layer.Name;
    } else if (Layer.R == 1 && Layer.Groups == 1) {
      ++Pointwise;
    }
  }
  EXPECT_EQ(Depthwise, 10u);
  EXPECT_GT(Pointwise, 15u);
  // Head: 1280-channel 1x1 at 7x7.
  EXPECT_EQ(L.back().K, 1280);
  EXPECT_EQ(L.back().C, 320);
  EXPECT_EQ(L.back().Hin, 7);
}

TEST(Workloads, DcganTableShape) {
  std::vector<ConvLayer> L = dcganLayers();
  EXPECT_EQ(L.size(), 6u);
  EXPECT_EQ(dcganNetworkLayers().size(), 6u);
  std::size_t Transposed = 0, Dilated = 0;
  for (const ConvLayer &Layer : L) {
    EXPECT_TRUE(Layer.validate().isOk()) << Layer.Name;
    if (Layer.Transposed)
      ++Transposed;
    else if (Layer.DilationX > 1)
      ++Dilated;
  }
  EXPECT_EQ(Transposed, 4u);
  EXPECT_EQ(Dilated, 2u);
  // Generator stage 1: 1024 -> 512 channels, 4x4 kernel, stride 2;
  // full transposed output is Stride*(Hin-1) + (R-1) + 1 = 10.
  EXPECT_EQ(L[0].K, 512);
  EXPECT_EQ(L[0].C, 1024);
  EXPECT_EQ(L[0].Hin, 4);
  EXPECT_TRUE(L[0].Transposed);
  EXPECT_EQ(L[0].outH(), 2 * (4 - 1) + (4 - 1) + 1);
  // Transposed MACs iterate the *input* spatial extent.
  EXPECT_EQ(L[0].numMacs(), 512ll * 1024 * 4 * 4 * 4 * 4);
}

TEST(Workloads, GeneralTablesBuildProblemsWithExactMacs) {
  std::vector<ConvLayer> All = mobilenetV2NetworkLayers();
  std::vector<ConvLayer> D = dcganLayers();
  All.insert(All.end(), D.begin(), D.end());
  for (const ConvLayer &L : All) {
    Problem P = makeConvProblem(L);
    EXPECT_EQ(P.numOps(), L.numMacs()) << L.Name;
  }
}
