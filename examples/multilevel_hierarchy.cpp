//===- examples/multilevel_hierarchy.cpp - Deeper memory hierarchies ------===//
//
// Demonstrates the arbitrary-depth generalization: optimize one conv
// layer on the classic 3-level machine and on a 4-level machine with a
// per-PE scratchpad, and show where the traffic goes at each boundary.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "multilevel/MultiGp.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

namespace {

void report(const char *Title, const Problem &Prob, const Hierarchy &H,
            const MultiResult &R) {
  std::printf("--- %s ---\n", Title);
  if (!R.Found) {
    std::printf("no legal design found\n\n");
    return;
  }
  std::printf("energy %.2f pJ/MAC, IPC %.1f, PEs used %lld\n",
              R.Eval.EnergyPerMacPj, R.Eval.MacIpc,
              static_cast<long long>(R.Eval.Profile.PEsUsed));
  for (unsigned B = 0; B < H.numBoundaries(); ++B)
    std::printf("  %-12s <-> %-12s : %lld words\n",
                H.Levels[B].Name.c_str(), H.Levels[B + 1].Name.c_str(),
                static_cast<long long>(R.Eval.Profile.boundaryWords(B)));
  for (unsigned L = 0; L + 1 < H.numLevels(); ++L)
    std::printf("  %-12s occupancy: %lld / %lld words\n",
                H.Levels[L].Name.c_str(),
                static_cast<long long>(R.Eval.Profile.Occupancy[L]),
                static_cast<long long>(H.Levels[L].CapacityWords));
  std::printf("\n");
  (void)Prob;
}

} // namespace

int main() {
  ConvLayer Layer = resnet18Layers()[8]; // 256x256x14x14, 3x3.
  Problem Prob = makeConvProblem(Layer);
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();

  std::printf("layer %s on %lld PEs\n\n", Layer.Name.c_str(),
              static_cast<long long>(Arch.NumPEs));

  MultiOptions Opts;
  Opts.MaxPermCombos = 24;

  Hierarchy Classic = Hierarchy::classic(Arch, Tech);
  report("3-level: registers / shared SRAM / DRAM", Prob, Classic,
         optimizeHierarchy(Prob, Classic, Opts));

  Hierarchy Spad =
      Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/1024,
                                /*SramWords=*/Arch.SramWords);
  report("4-level: registers / per-PE scratchpad / shared SRAM / DRAM",
         Prob, Spad, optimizeHierarchy(Prob, Spad, Opts));
  return 0;
}
