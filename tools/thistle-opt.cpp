//===- tools/thistle-opt.cpp - Command-line design optimizer --------------===//
//
// The command-line front end of the library: optimize a conv layer's
// dataflow for a fixed accelerator, or co-design the accelerator and the
// dataflow together, for energy, delay or EDP, and optionally emit the
// resulting Timeloop-style YAML specifications.
//
// Examples:
//   thistle-opt --resnet 2
//   thistle-opt --layer 64,64,56,56,3,3 --objective delay
//   thistle-opt --yolo 7 --mode codesign --export-timeloop
//   thistle-opt --layer 128,128,28,28,3,3,2 --pes 256 --regs 64
//       --sram-words 16384   (one line)
//
//===----------------------------------------------------------------------===//

#include "export/TimeloopExport.h"
#include "ir/Builders.h"
#include "multilevel/MultiGp.h"
#include "nestmodel/CostEvaluator.h"
#include "nestmodel/Mapper.h"
#include "support/FaultInjection.h"
#include "support/Persist.h"
#include "support/RunReport.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/Network.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace thistle;

namespace {

/// One row of the generated usage table. Every flag the parser accepts
/// has exactly one row here; tool.usage (tools/CheckUsage.cmake) scrapes
/// the flag comparisons out of this source file and fails if any of them
/// is missing from the --help output, so a new flag cannot land without
/// a row.
struct FlagSpec {
  const char *Flag; ///< "--layer".
  const char *Arg;  ///< Value metavar, "" for boolean flags.
  const char *Help; ///< Description; '\n' separates continuation lines.
};

struct FlagGroup {
  const char *Title;
  const FlagSpec *Flags;
  std::size_t Count;
};

const FlagSpec WorkloadFlags[] = {
    {"--layer", "K,C,H,W,R,S[,stride[,dilation]]",
     "custom conv2d layer; every field is\n"
     "validated (positive strides/dilations,\n"
     "divisible groups) before the sweep"},
    {"--groups", "N",
     "channel groups for --layer (K and C\n"
     "must divide by N; N == C is a\n"
     "depthwise layer; docs/WORKLOADS.md)"},
    {"--transposed", "",
     "make --layer a transposed\n"
     "(fractionally-strided) conv: h/w walk\n"
     "the input image and Out carries the\n"
     "strided projection; output is the full\n"
     "stride*(H-1)+dilation*(R-1)+1 extent"},
    {"--padding", "same|valid",
     "output-shape rule for --layer\n"
     "(default: same, Table II's\n"
     "ceil(H/stride); valid needs the\n"
     "dilated kernel to fit)"},
    {"--resnet", "N", "ResNet-18 conv stage N (1-12, Table II)"},
    {"--yolo", "N", "Yolo-9000 conv stage N (1-11, Table II)"},
    {"--pipeline", "resnet|yolo|all",
     "optimize every stage, print a summary"},
    {"--network", "resnet18|yolo9000|mobilenetv2|dcgan|all",
     "optimize the full conv pipeline with the\n"
     "network driver: repeated shapes are solved\n"
     "once, GP solutions are cached across runs\n"
     "(disable with THISTLE_CACHE=off), and in\n"
     "codesign mode one architecture is selected\n"
     "for the whole network (docs/THISTLE_OPT.md).\n"
     "mobilenetv2 exercises depthwise/grouped\n"
     "stages, dcgan transposed and dilated ones\n"
     "(docs/WORKLOADS.md); all = resnet18+yolo9000"},
};

const FlagSpec OptimizationFlags[] = {
    {"--mode", "dataflow|codesign", "(default: dataflow)"},
    {"--objective", "energy|delay|edp", "(default: energy)"},
    {"--candidates", "N", "rounding width n (default: 2)"},
    {"--threads", "N",
     "worker threads for the pair sweep\n"
     "(default: all hardware threads;\n"
     "results are identical at any N)"},
    {"--deadline-ms", "N",
     "wall-clock budget for the sweep;\n"
     "pairs starting after it are skipped\n"
     "and the best completed design is\n"
     "returned (exit code 1)"},
    {"--hierarchy", "classic3|spad4|<file>",
     "memory hierarchy to optimize for\n"
     "(default: classic3, the fixed\n"
     "reg/SRAM/DRAM machine). spad4 adds\n"
     "a per-PE scratchpad; a file holds\n"
     "'pes/mac-pj/fanout/level' lines\n"
     "(see docs/HIERARCHY.md). Non-classic\n"
     "hierarchies run the L-level GP\n"
     "optimizer and validate the winner\n"
     "with the stochastic mapper."},
    {"--evaluator", "nest|maestro|both",
     "cost-model backend scoring the\n"
     "candidates (default: nest, the\n"
     "Algorithm-1 nest walk). maestro is\n"
     "the data-centric reuse model; both\n"
     "scores with nest while cross-checking\n"
     "maestro on every evaluation and\n"
     "reports any divergence — the counts\n"
     "must agree exactly (docs/EVALUATOR.md)"},
};

const FlagSpec ArchitectureFlags[] = {
    {"--pes", "N", "PE count (default: Eyeriss, 168)"},
    {"--regs", "N", "register words per PE (default: 512)"},
    {"--sram-words", "N", "shared SRAM words (default: 65536)"},
    {"--area-budget", "UM2", "co-design area (default: Eyeriss)"},
};

const FlagSpec PersistenceFlags[] = {
    {"--cache-dir", "DIR",
     "durable GP solution cache: load any\n"
     "snapshot/journal found in DIR, append\n"
     "every new solution at task granularity\n"
     "(survives SIGKILL), compact to a\n"
     "snapshot on exit. Damaged files are\n"
     "detected (CRC), reported and skipped —\n"
     "the run degrades to a cold start.\n"
     "THISTLE_CACHE_DIR is the env form;\n"
     "the flag wins (docs/PERSISTENCE.md)"},
    {"--resume", "DIR",
     "alias of --cache-dir: rerun the same\n"
     "command after a crash and completed\n"
     "tasks replay from the checkpoint,\n"
     "bit-identically to an uninterrupted run"},
    {"--cache-capacity", "N",
     "bound the in-memory cache to N entries\n"
     "(LRU eviction; default 0 = unbounded)"},
    {"--shard", "I/N",
     "solve only slice I of N (1-based) of\n"
     "the deterministic task-grid partition;\n"
     "each shard checkpoints to its own\n"
     "cache segment and report in DIR"},
    {"--merge-shards", "",
     "recombine the shard segments in DIR\n"
     "into the full-network result, bit-\n"
     "identical to a single-process run"},
};

const FlagSpec OutputFlags[] = {
    {"--export-timeloop", "", "emit Timeloop-style YAML specs"},
    {"--help", "", "print this usage table (also -h)"},
};

const FlagSpec ObservabilityFlags[] = {
    {"--metrics", "",
     "collect named counters/statistics\n"
     "and print them after the run"},
    {"--profile", "",
     "additionally record trace spans and\n"
     "print a per-span timing summary"},
    {"--trace-json", "FILE",
     "write the schema-versioned JSON run\n"
     "report (thistle-run-report/1) with\n"
     "the full span trace to FILE"},
};

const FlagGroup UsageGroups[] = {
    {"workload (choose one):", WorkloadFlags, std::size(WorkloadFlags)},
    {"optimization:", OptimizationFlags, std::size(OptimizationFlags)},
    {"architecture (dataflow mode; defaults to Eyeriss):",
     ArchitectureFlags, std::size(ArchitectureFlags)},
    {"persistence (--network runs; see docs/PERSISTENCE.md):",
     PersistenceFlags, std::size(PersistenceFlags)},
    {"output:", OutputFlags, std::size(OutputFlags)},
    {"observability (see docs/OBSERVABILITY.md; all off by default, and\n"
     "the optimization result is bit-identical either way):",
     ObservabilityFlags, std::size(ObservabilityFlags)},
};

void printUsage(const char *Prog) {
  std::printf("usage: %s [options]\n", Prog);
  constexpr std::size_t HelpColumn = 32;
  for (const FlagGroup &Group : UsageGroups) {
    std::printf("\n%s\n", Group.Title);
    for (std::size_t F = 0; F < Group.Count; ++F) {
      const FlagSpec &Spec = Group.Flags[F];
      std::string Head = std::string("  ") + Spec.Flag;
      if (Spec.Arg[0])
        Head += std::string(" ") + Spec.Arg;
      // Long heads get their own line; the help always starts at the
      // same column so the table reads as a table.
      bool HeadAlone = Head.size() + 2 > HelpColumn;
      if (HeadAlone)
        std::printf("%s\n", Head.c_str());
      const char *Line = Spec.Help;
      bool First = !HeadAlone;
      while (*Line) {
        const char *End = std::strchr(Line, '\n');
        std::size_t Len = End ? static_cast<std::size_t>(End - Line)
                              : std::strlen(Line);
        if (First)
          std::printf("%-*s%.*s\n", static_cast<int>(HelpColumn),
                      Head.c_str(), static_cast<int>(Len), Line);
        else
          std::printf("%-*s%.*s\n", static_cast<int>(HelpColumn), "",
                      static_cast<int>(Len), Line);
        First = false;
        Line += Len + (End ? 1 : 0);
      }
    }
  }
  std::printf(
      "\nexit codes:\n"
      "  0  success (clean sweep)\n"
      "  1  partial/degraded: a design was found but some GP pairs were\n"
      "     lost (solver failure, deadline), or a --network run found\n"
      "     designs for only some layers\n"
      "  2  invalid input (bad flags, malformed hierarchy file, bad spec)\n"
      "  3  no feasible design found (--network: for any layer)\n");
}

/// Parses "a,b,c,..." into integers; returns false on malformed input.
bool parseInts(const char *Text, std::vector<std::int64_t> &Out) {
  Out.clear();
  std::string Token;
  for (const char *P = Text;; ++P) {
    if (*P == ',' || *P == '\0') {
      if (Token.empty())
        return false;
      Out.push_back(std::atoll(Token.c_str()));
      Token.clear();
      if (*P == '\0')
        return true;
    } else if (std::isdigit(static_cast<unsigned char>(*P))) {
      Token += *P;
    } else {
      return false;
    }
  }
}

/// Prints the failure-summary table of a degraded sweep and returns the
/// tool's exit code contribution: 0 for a clean sweep, 1 otherwise.
int sweepExitCode(const SweepReport &Report, const char *TaskNoun) {
  if (Report.total() == 0) {
    // An empty sweep must say so; a silent summary reads as success.
    std::printf("\nsweep empty: %s\n", Report.toString(TaskNoun).c_str());
    return Report.clean() ? 0 : 1;
  }
  if (Report.clean())
    return 0;
  std::printf("\nsweep degraded: %u %s(s) solved (%u retried), %u degraded, "
              "%u infeasible, %u failed, %u skipped%s\n",
              Report.Solved, TaskNoun, Report.Retried, Report.Degraded,
              Report.Infeasible, Report.Failed, Report.Skipped,
              Report.DeadlineExpired ? " [deadline expired]" : "");
  TablePrinter Table({TaskNoun, "coords", "outcome", "attempts", "detail"});
  for (const SweepIncident &I : Report.Incidents) {
    if (I.Outcome == TaskOutcome::Infeasible)
      continue; // Infeasible pairs are an expected model property.
    Table.addRow({TablePrinter::formatInt(static_cast<std::int64_t>(I.Index)),
                  "(" + std::to_string(I.A) + "," + std::to_string(I.B) + ")",
                  taskOutcomeName(I.Outcome),
                  TablePrinter::formatInt(I.Attempts), I.Detail});
  }
  Table.print(std::cout);
  return 1;
}

} // namespace

namespace {

/// --hierarchy mode: optimize onto an arbitrary-depth machine with the
/// L-level GP engine, then cross-check the winner with the stochastic
/// mapper on the same hierarchy.
int runHierarchy(const Problem &Prob, const Hierarchy &H,
                 const ThistleOptions &Options, const TechParams &Tech,
                 RunReport &RR) {
  std::printf("hierarchy: %lld PEs, fan-out below level %u\n",
              static_cast<long long>(H.NumPEs), H.FanoutLevel);
  for (unsigned Lv = 0; Lv < H.numLevels(); ++Lv) {
    const HierarchyLevel &L = H.Levels[Lv];
    if (L.CapacityWords > 0)
      std::printf("  level %u %-14s %8lld words  %7.3f pJ/word  BW %g\n",
                  Lv, L.Name.c_str(),
                  static_cast<long long>(L.CapacityWords), L.AccessEnergyPj,
                  L.Bandwidth);
    else
      std::printf("  level %u %-14s %8s        %7.3f pJ/word  BW %g\n", Lv,
                  L.Name.c_str(), "-", L.AccessEnergyPj, L.Bandwidth);
  }
  std::printf("  area %.3f mm^2\n", H.areaUm2(Tech) * 1e-6);

  MultiOptions MO;
  MO.Objective = Options.Objective;
  MO.NumCandidates = Options.Rounding.NumCandidates;
  MO.Threads = Options.Threads;
  MO.Tech = Tech;
  MO.Deadline = Options.Deadline;
  MO.Evaluator = Options.Rounding.Evaluator;
  MultiResult R = optimizeHierarchy(Prob, H, MO);
  if (!R.InputStatus.isOk()) {
    std::fprintf(stderr, "error: %s\n", R.InputStatus.toString().c_str());
    return 2;
  }
  RR.HasSweep = true;
  RR.SweepTaskNoun = "combo";
  std::printf("search: %u GP solves (%u infeasible)\n", R.CombosSolved,
              R.GpInfeasible);
  if (!R.Found) {
    sweepExitCode(R.Report, "combo");
    RR.Sweep = std::move(R.Report);
    std::fprintf(stderr, "no feasible design found\n");
    return 3;
  }
  RR.Found = true;
  RR.EnergyPj = R.Eval.EnergyPj;
  RR.EnergyPerMacPj = R.Eval.EnergyPerMacPj;
  RR.Cycles = R.Eval.Cycles;
  RR.MacIpc = R.Eval.MacIpc;
  RR.EdpPjCycles = R.Eval.EdpPjCycles;

  std::printf("\nenergy: %.1f uJ (%.3f pJ/MAC)\n", R.Eval.EnergyPj * 1e-6,
              R.Eval.EnergyPerMacPj);
  std::printf("delay:  %.0f cycles (IPC %.1f), EDP %.4g pJ*cycles\n",
              R.Eval.Cycles, R.Eval.MacIpc, R.Eval.EdpPjCycles);
  std::printf("energy breakdown [pJ]: mac+reg %.4g", R.Eval.MacEnergyPj);
  for (unsigned Lv = 0; Lv < H.numLevels(); ++Lv)
    std::printf(", %s %.4g", H.Levels[Lv].Name.c_str(),
                R.Eval.EnergyPerLevelPj[Lv]);
  std::printf("\ncycle components:");
  std::printf(" compute %.0f", R.Eval.ComputeCycles);
  for (unsigned Lv = 1; Lv < H.numLevels(); ++Lv)
    std::printf(", %s %.0f", H.Levels[Lv].Name.c_str(),
                R.Eval.CyclesPerLevel[Lv]);
  std::printf("\nmapping (factors per iterator, innermost level first):\n");
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    std::printf("  %-5s", Prob.iterators()[I].Name.c_str());
    for (unsigned Lv = 0; Lv < H.numLevels(); ++Lv) {
      std::printf(" t%u=%-4lld", Lv,
                  static_cast<long long>(R.Map.TempFactors[Lv][I]));
      if (Lv + 1 == H.FanoutLevel)
        std::printf(" sp=%-4lld",
                    static_cast<long long>(R.Map.SpatialFactors[I]));
    }
    std::printf("\n");
  }

  // Cross-check with the stochastic mapper on the same machine: the GP
  // winner should land within, or ahead of, the sampled population.
  MapperOptions MapOpt;
  MapOpt.Objective = Options.Objective;
  MapOpt.Threads = Options.Threads;
  MapOpt.MaxTrials = 4000;
  MapOpt.VictoryCondition = 1000;
  MapOpt.Deadline = Options.Deadline;
  MapOpt.Evaluator = Options.Rounding.Evaluator;
  MultiMapperResult MR = searchMultiMappings(Prob, H, MapOpt);
  if (MR.Found) {
    double GpObj = objectiveValue(R.Eval, Options.Objective);
    double MapObj = objectiveValue(MR.BestEval, Options.Objective);
    std::printf("mapper validation: best of %u trials (%u legal) reaches "
                "%.4g vs GP %.4g (ratio %.3f)%s\n",
                MR.Trials, MR.LegalTrials, MapObj, GpObj,
                GpObj > 0.0 ? MapObj / GpObj : 0.0,
                MR.DeadlineExpired ? " [deadline expired]" : "");
  } else {
    std::printf("mapper validation: no legal mapping in %u trials\n",
                MR.Trials);
  }
  int Exit = sweepExitCode(R.Report, "combo");
  RR.Sweep = std::move(R.Report);
  return Exit;
}

/// --pipeline mode: optimize every stage and print one summary row each.
int runPipeline(const std::vector<ConvLayer> &Layers,
                const ThistleOptions &Options, const ArchConfig &Arch,
                const TechParams &Tech, double AreaBudget, RunReport &RR) {
  std::printf("%-11s %10s %9s %9s %6s %5s %9s\n", "layer", "pJ/MAC",
              "IPC", "cycles(K)", "P", "R", "S words");
  RR.HasSweep = true;
  RR.SweepTaskNoun = "pair";
  double TotalUj = 0.0;
  int Exit = 0;
  for (const ConvLayer &L : Layers) {
    Problem P = makeConvProblem(L);
    ThistleResult R = optimizeLayer(P, Arch, Tech, Options, AreaBudget);
    if (!R.InputStatus.isOk()) {
      std::fprintf(stderr, "error: %s: %s\n", L.Name.c_str(),
                   R.InputStatus.toString().c_str());
      return 2;
    }
    if (!R.Report.clean())
      Exit = 1;
    RR.Sweep.merge(std::move(R.Report));
    if (!R.Found) {
      std::printf("%-11s %10s\n", L.Name.c_str(), "-");
      continue;
    }
    RR.Found = true;
    TotalUj += R.Eval.EnergyPj * 1e-6;
    std::printf("%-11s %10.2f %9.1f %9.0f %6lld %5lld %9lld\n",
                L.Name.c_str(), R.Eval.EnergyPerMacPj, R.Eval.MacIpc,
                R.Eval.Cycles * 1e-3,
                static_cast<long long>(R.Arch.NumPEs),
                static_cast<long long>(R.Arch.RegWordsPerPE),
                static_cast<long long>(R.Arch.SramWords));
  }
  std::printf("pipeline total energy: %.1f uJ\n", TotalUj);
  // The pipeline result block aggregates: total energy, no per-design
  // metrics (they differ per layer).
  RR.EnergyPj = TotalUj * 1e6;
  if (Exit)
    std::printf("warning: some layers lost GP pairs to failures or the "
                "deadline; rerun a degraded layer alone for the details\n");
  return Exit;
}

/// The persistence/sharding configuration of a --network run.
struct PersistConfig {
  std::string Dir;               ///< Empty = no durable state.
  std::uint64_t Capacity = 0;    ///< In-memory LRU bound; 0 = unbounded.
  std::size_t ShardIndex = 0;    ///< 0-based.
  std::size_t ShardCount = 1;    ///< 1 = no sharding.
  bool Merge = false;            ///< --merge-shards recombination run.
};

/// --network mode: run the network driver (shape dedup, shared GP
/// solution cache, optional network-level arch selection) and print a
/// per-layer table plus the network totals.
int runNetwork(const std::vector<ConvLayer> &Layers,
               const ThistleOptions &Options, const ArchConfig &Arch,
               const TechParams &Tech, double AreaBudget, bool UseCache,
               const PersistConfig &PC, RunReport &RR) {
  GpSolutionCache Cache;
  NetworkOptions NO;
  NO.Layer = Options;
  NO.Cache = UseCache ? &Cache : nullptr;
  NO.ShardIndex = PC.ShardIndex;
  NO.ShardCount = PC.ShardCount;
  const bool Sharded = PC.ShardCount > 1;

  // Durable state: load whatever the cache directory holds, then attach
  // the journal so every new solution is checkpointed at task
  // granularity. Damaged artifacts are reported and skipped (the run
  // degrades to a cold start for that portion); only an unusable
  // directory is a hard error, caught before any solving starts.
  // The LRU bound applies with or without durable state.
  Cache.setCapacity(static_cast<std::size_t>(PC.Capacity));

  const bool Persist = UseCache && !PC.Dir.empty();
  GpCachePersistStats PS;
  std::string SnapPath, JournalPath;
  if (Persist) {
    if (Status St = persist::createDirectories(PC.Dir); !St.isOk()) {
      std::fprintf(stderr, "error: --cache-dir: %s\n",
                   St.toString().c_str());
      return 2;
    }
    RR.Persistence.Present = true;
    RR.Persistence.Directory = PC.Dir;
    RR.Persistence.Capacity = PC.Capacity;
    // The shared artifacts first: the compacted snapshot, then the
    // journal of any run that died before compacting.
    const std::string Base = PC.Dir + "/gpcache";
    Cache.loadFile(Base + ".snap", PS);
    Cache.loadFile(Base + ".journal", PS);
    if (Sharded) {
      // A shard checkpoints to its own segment pair and self-resumes
      // from it; the shared artifacts above seed it with any earlier
      // compaction.
      const std::string Seg =
          PC.Dir + "/shard-" + std::to_string(PC.ShardIndex + 1) +
          "-of-" + std::to_string(PC.ShardCount);
      SnapPath = Seg + ".snap";
      JournalPath = Seg + ".journal";
      Cache.loadFile(SnapPath, PS);
      Cache.loadFile(JournalPath, PS);
    } else {
      SnapPath = Base + ".snap";
      JournalPath = Base + ".journal";
      if (PC.Merge) {
        // Recombine every shard segment. Load order is lexicographic
        // for determinism, though it cannot matter: entries agree
        // wherever keys collide, and first-wins keeps one copy.
        for (const std::string &F :
             persist::listFiles(PC.Dir, "shard-", ".snap"))
          Cache.loadFile(F, PS);
        for (const std::string &F :
             persist::listFiles(PC.Dir, "shard-", ".journal"))
          Cache.loadFile(F, PS);
      }
    }
    for (const std::string &P : PS.Problems)
      std::printf("persist: warning: %s\n", P.c_str());
    std::printf("persist: %s: %llu entries from %u file(s)%s\n",
                PC.Dir.c_str(),
                static_cast<unsigned long long>(PS.EntriesLoaded),
                PS.FilesLoaded, PS.DataLoss ? " [data loss detected]" : "");
    if (Status St = Cache.attachJournal(JournalPath); !St.isOk())
      std::printf("persist: warning: no checkpoint journal: %s\n",
                  St.toString().c_str());
  }
  if (Sharded) {
    RR.Shards.Present = true;
    RR.Shards.Index = PC.ShardIndex + 1;
    RR.Shards.Count = PC.ShardCount;
    std::printf("persist: shard %zu/%zu of the task grid\n",
                PC.ShardIndex + 1, PC.ShardCount);
  } else if (PC.Merge) {
    RR.Shards.Present = true;
    RR.Shards.Merge = true;
  }

  NetworkResult R = optimizeNetwork(Layers, Arch, Tech, NO, AreaBudget);
  if (!R.InputStatus.isOk()) {
    std::fprintf(stderr, "error: %s\n", R.InputStatus.toString().c_str());
    return 2;
  }
  RR.HasSweep = true;
  RR.SweepTaskNoun = "pair";
  RR.Sweep = SweepReport(R.Report);
  RR.Found = R.Found;
  RR.Network.Present = true;
  RR.Network.LayersTotal = R.Stats.LayersTotal;
  RR.Network.LayersFound = R.LayersFound;
  RR.Network.UniqueShapes = R.Stats.UniqueShapes;
  RR.Network.CacheEnabled = UseCache;
  RR.Network.CacheHits = R.Stats.CacheHits;
  RR.Network.CacheMisses = R.Stats.CacheMisses;
  RR.Network.CacheWarmStarts = R.Stats.CacheWarmStarts;
  RR.Network.ArchCandidates = R.Stats.ArchCandidates;
  RR.Network.SummedObjective = R.Totals.SummedObjective;
  RR.Network.TotalEnergyPj = R.Totals.EnergyPj;
  RR.Network.TotalCycles = R.Totals.Cycles;
  RR.Network.TotalEdpPjCycles = R.Totals.EdpPjCycles;
  RR.Network.EnergyPerMacPj = R.Totals.EnergyPerMacPj;
  RR.Network.Macs = static_cast<std::uint64_t>(R.Totals.Macs);
  // The network totals double as the run's result block: the pipeline
  // energy/delay on the selected architecture.
  RR.EnergyPj = R.Totals.EnergyPj;
  RR.EnergyPerMacPj = R.Totals.EnergyPerMacPj;
  RR.Cycles = R.Totals.Cycles;
  RR.EdpPjCycles = R.Totals.EdpPjCycles;

  std::printf("%-13s %10s %9s %9s %6s\n", "layer", "pJ/MAC", "IPC",
              "cycles(K)", "dedup");
  for (const NetworkLayerResult &L : R.Layers) {
    RunReportNetworkLayer Row;
    Row.Name = L.Name;
    Row.ShapeIndex = L.ShapeIndex;
    Row.Multiplicity = L.Multiplicity;
    Row.Deduplicated = L.Deduplicated;
    Row.Found = L.Result.Found;
    if (L.Result.Found) {
      Row.EnergyPj = L.Result.Eval.EnergyPj;
      Row.Cycles = L.Result.Eval.Cycles;
      std::printf("%-13s %10.2f %9.1f %9.0f %6s\n", L.Name.c_str(),
                  L.Result.Eval.EnergyPerMacPj, L.Result.Eval.MacIpc,
                  L.Result.Eval.Cycles * 1e-3,
                  L.Deduplicated ? "=" : "");
    } else {
      std::printf("%-13s %10s %9s %9s %6s\n", L.Name.c_str(), "-", "-",
                  "-", L.Deduplicated ? "=" : "");
    }
    RR.Network.Layers.push_back(std::move(Row));
  }
  std::printf("network: %zu layers, %zu unique shapes",
              R.Stats.LayersTotal, R.Stats.UniqueShapes);
  if (R.Stats.ArchCandidates)
    std::printf(", %u arch candidate(s)", R.Stats.ArchCandidates);
  std::printf("\n");
  std::printf("architecture: P=%lld PEs, R=%lld regs/PE, S=%lld SRAM "
              "words (area %.3f mm^2)\n",
              static_cast<long long>(R.Arch.NumPEs),
              static_cast<long long>(R.Arch.RegWordsPerPE),
              static_cast<long long>(R.Arch.SramWords),
              R.Arch.areaUm2(Tech) * 1e-6);
  std::string Partial;
  if (!R.Found)
    Partial = " (partial: " + std::to_string(R.LayersFound) + "/" +
              std::to_string(R.Stats.LayersTotal) + " layers)";
  std::printf("network totals: %.1f uJ (%.3f pJ/MAC), %.0f Kcycles, "
              "EDP %.4g pJ*cycles%s\n",
              R.Totals.EnergyPj * 1e-6, R.Totals.EnergyPerMacPj,
              R.Totals.Cycles * 1e-3, R.Totals.EdpPjCycles,
              Partial.c_str());
  if (UseCache)
    std::printf("cache: %llu hits, %llu misses, %llu warm starts "
                "(THISTLE_CACHE=off disables)\n",
                static_cast<unsigned long long>(R.Stats.CacheHits),
                static_cast<unsigned long long>(R.Stats.CacheMisses),
                static_cast<unsigned long long>(R.Stats.CacheWarmStarts));

  // Clean-exit compaction: the sweep finished, so fold the journal into
  // one atomic snapshot and drop the superseded artifacts. A failed
  // snapshot write keeps the journal (nothing is lost, the next run
  // replays it) and never changes the exit code.
  if (Persist) {
    RR.Persistence.LoadedFiles = PS.FilesLoaded;
    RR.Persistence.LoadedEntries = PS.EntriesLoaded;
    RR.Persistence.AppendFailures = Cache.journalAppendFailures();
    RR.Persistence.Evictions = Cache.evictions();
    RR.Persistence.DataLossDetected = PS.DataLoss;
    RR.Persistence.Problems = PS.Problems;
    if (Cache.journalAppendFailures())
      std::printf("persist: warning: %llu checkpoint append(s) failed; "
                  "those tasks will re-solve after a crash\n",
                  static_cast<unsigned long long>(
                      Cache.journalAppendFailures()));
    Cache.detachJournal();
    if (Status St = Cache.saveSnapshotFile(SnapPath); St.isOk()) {
      RR.Persistence.SnapshotWritten = true;
      if (JournalPath != SnapPath)
        persist::removeFile(JournalPath);
      if (PC.Merge) {
        for (const std::string &F :
             persist::listFiles(PC.Dir, "shard-", ".snap"))
          persist::removeFile(F);
        for (const std::string &F :
             persist::listFiles(PC.Dir, "shard-", ".journal"))
          persist::removeFile(F);
      }
      std::printf("persist: compacted %zu entries to %s\n", Cache.size(),
                  SnapPath.c_str());
    } else {
      std::printf("persist: warning: %s (journal kept)\n",
                  St.toString().c_str());
    }
  }

  // A shard owns only its slice of the task grid, so missing layers and
  // empty sweeps are by design; its exit reflects its own slice's sweep
  // health, and the merge run applies the whole-network criteria.
  if (Sharded)
    return sweepExitCode(R.Report, "pair");

  if (R.LayersFound == 0) {
    std::fprintf(stderr, "no feasible design found for any layer\n");
    return 3;
  }
  int Exit = sweepExitCode(R.Report, "pair");
  if (!R.Found) {
    std::printf("warning: %zu of %zu layers found no design\n",
                R.Stats.LayersTotal - R.LayersFound, R.Stats.LayersTotal);
    Exit = 1;
  }
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  // THISTLE_FAULT=site[:key[:maxhits]] arms the deterministic fault
  // hooks (testing only; a no-op unless compiled in and set).
  if (std::string FaultErr = fault::armFromEnv(); !FaultErr.empty()) {
    std::fprintf(stderr, "error: THISTLE_FAULT: %s\n", FaultErr.c_str());
    return 2;
  }
  ConvLayer Layer;
  bool HaveLayer = false;
  std::optional<std::int64_t> LayerGroups;
  bool LayerTransposed = false;
  std::optional<ConvPadding> LayerPadding;
  std::vector<ConvLayer> Pipeline;
  std::vector<ConvLayer> Network;
  std::string NetworkName;
  ThistleOptions Options;
  ArchConfig Arch = eyerissArch();
  TechParams Tech = TechParams::cgo45nm();
  double AreaBudget = 0.0;
  bool ExportTimeloop = false;
  std::string HierarchySpec = "classic3";
  std::string EvaluatorName = "nest";
  std::string PipelineName;
  std::string TraceJsonPath;
  bool WantMetrics = false;
  bool WantProfile = false;
  PersistConfig PC;
  bool HaveCapacity = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    } else if (Arg == "--layer") {
      std::vector<std::int64_t> V;
      if (!parseInts(needValue(), V) || V.size() < 6 || V.size() > 8) {
        std::fprintf(stderr, "error: --layer wants K,C,H,W,R,S[,stride"
                             "[,dilation]]\n");
        return 2;
      }
      Layer.Name = "custom";
      Layer.K = V[0];
      Layer.C = V[1];
      Layer.Hin = V[2];
      Layer.Win = V[3];
      Layer.R = V[4];
      Layer.S = V[5];
      Layer.StrideX = Layer.StrideY = V.size() > 6 ? V[6] : 1;
      Layer.DilationX = Layer.DilationY = V.size() > 7 ? V[7] : 1;
      HaveLayer = true;
    } else if (Arg == "--groups") {
      std::vector<std::int64_t> V;
      if (!parseInts(needValue(), V) || V.size() != 1) {
        std::fprintf(stderr, "error: --groups wants one integer\n");
        return 2;
      }
      LayerGroups = V[0];
    } else if (Arg == "--transposed") {
      LayerTransposed = true;
    } else if (Arg == "--padding") {
      Expected<ConvPadding> P = parsePadding(needValue());
      if (!P) {
        std::fprintf(stderr, "error: %s\n", P.status().toString().c_str());
        return 2;
      }
      LayerPadding = P.value();
    } else if (Arg == "--resnet" || Arg == "--yolo") {
      std::vector<ConvLayer> Layers =
          Arg == "--resnet" ? resnet18Layers() : yolo9000Layers();
      long N = std::atol(needValue());
      if (N < 1 || static_cast<std::size_t>(N) > Layers.size()) {
        std::fprintf(stderr, "error: %s index out of range (1-%zu)\n",
                     Arg.c_str(), Layers.size());
        return 2;
      }
      Layer = Layers[static_cast<std::size_t>(N - 1)];
      HaveLayer = true;
    } else if (Arg == "--pipeline") {
      std::string V = needValue();
      if (V == "resnet")
        Pipeline = resnet18Layers();
      else if (V == "yolo")
        Pipeline = yolo9000Layers();
      else if (V == "all")
        Pipeline = allPaperLayers();
      else {
        std::fprintf(stderr, "error: unknown pipeline '%s'\n", V.c_str());
        return 2;
      }
      PipelineName = V;
    } else if (Arg == "--network") {
      std::string V = needValue();
      if (V == "resnet18")
        Network = resnet18NetworkLayers();
      else if (V == "yolo9000")
        Network = yolo9000NetworkLayers();
      else if (V == "mobilenetv2")
        Network = mobilenetV2NetworkLayers();
      else if (V == "dcgan")
        Network = dcganNetworkLayers();
      else if (V == "all")
        Network = allNetworkLayers();
      else {
        std::fprintf(stderr, "error: unknown network '%s'\n", V.c_str());
        return 2;
      }
      NetworkName = V;
    } else if (Arg == "--mode") {
      std::string V = needValue();
      if (V == "dataflow")
        Options.Mode = DesignMode::DataflowOnly;
      else if (V == "codesign")
        Options.Mode = DesignMode::CoDesign;
      else {
        std::fprintf(stderr, "error: unknown mode '%s'\n", V.c_str());
        return 2;
      }
    } else if (Arg == "--objective") {
      std::string V = needValue();
      if (V == "energy")
        Options.Objective = SearchObjective::Energy;
      else if (V == "delay")
        Options.Objective = SearchObjective::Delay;
      else if (V == "edp")
        Options.Objective = SearchObjective::EnergyDelayProduct;
      else {
        std::fprintf(stderr, "error: unknown objective '%s'\n", V.c_str());
        return 2;
      }
    } else if (Arg == "--candidates") {
      Options.Rounding.NumCandidates =
          static_cast<unsigned>(std::atoi(needValue()));
    } else if (Arg == "--threads") {
      Options.Threads = static_cast<unsigned>(std::atoi(needValue()));
    } else if (Arg == "--deadline-ms") {
      long Ms = std::atol(needValue());
      if (Ms <= 0) {
        std::fprintf(stderr, "error: --deadline-ms wants a positive "
                             "millisecond count\n");
        return 2;
      }
      Options.Deadline = std::chrono::milliseconds(Ms);
    } else if (Arg == "--hierarchy") {
      HierarchySpec = needValue();
    } else if (Arg == "--evaluator") {
      EvaluatorName = needValue();
    } else if (Arg == "--pes") {
      Arch.NumPEs = std::atoll(needValue());
    } else if (Arg == "--regs") {
      Arch.RegWordsPerPE = std::atoll(needValue());
    } else if (Arg == "--sram-words") {
      Arch.SramWords = std::atoll(needValue());
    } else if (Arg == "--area-budget") {
      AreaBudget = std::atof(needValue());
    } else if (Arg == "--cache-dir" || Arg == "--resume") {
      PC.Dir = needValue();
      if (PC.Dir.empty()) {
        std::fprintf(stderr, "error: %s wants a directory\n", Arg.c_str());
        return 2;
      }
    } else if (Arg == "--cache-capacity") {
      long long N = std::atoll(needValue());
      if (N < 0) {
        std::fprintf(stderr, "error: --cache-capacity wants a "
                             "non-negative entry count (0 = unbounded)\n");
        return 2;
      }
      PC.Capacity = static_cast<std::uint64_t>(N);
      HaveCapacity = true;
    } else if (Arg == "--shard") {
      std::string V = needValue();
      std::size_t Slash = V.find('/');
      long I = Slash == std::string::npos
                   ? 0
                   : std::atol(V.substr(0, Slash).c_str());
      long N =
          Slash == std::string::npos ? 0 : std::atol(V.c_str() + Slash + 1);
      if (I < 1 || N < 1 || I > N) {
        std::fprintf(stderr,
                     "error: --shard wants I/N with 1 <= I <= N\n");
        return 2;
      }
      PC.ShardIndex = static_cast<std::size_t>(I - 1);
      PC.ShardCount = static_cast<std::size_t>(N);
    } else if (Arg == "--merge-shards") {
      PC.Merge = true;
    } else if (Arg == "--export-timeloop") {
      ExportTimeloop = true;
    } else if (Arg == "--trace-json") {
      TraceJsonPath = needValue();
    } else if (Arg == "--metrics") {
      WantMetrics = true;
    } else if (Arg == "--profile") {
      WantProfile = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(Argv[0]);
      return 2;
    }
  }

  if (!HaveLayer && Pipeline.empty() && Network.empty()) {
    std::fprintf(stderr, "error: no workload given (--layer / --resnet / "
                         "--yolo / --pipeline / --network)\n");
    printUsage(Argv[0]);
    return 2;
  }
  if (!Network.empty() && (HaveLayer || !Pipeline.empty())) {
    std::fprintf(stderr,
                 "error: --network excludes --layer/--resnet/--yolo/"
                 "--pipeline\n");
    return 2;
  }
  if ((LayerGroups || LayerTransposed || LayerPadding) && !HaveLayer) {
    std::fprintf(stderr, "error: --groups/--transposed/--padding modify a "
                         "--layer workload\n");
    return 2;
  }
  if (HaveLayer) {
    if (LayerGroups)
      Layer.Groups = *LayerGroups;
    Layer.Transposed = LayerTransposed;
    if (LayerPadding)
      Layer.Padding = *LayerPadding;
    if (Status S = Layer.validate(); !S.isOk()) {
      std::fprintf(stderr, "error: %s\n", S.toString().c_str());
      return 2;
    }
  }
  if ((!PC.Dir.empty() || PC.ShardCount > 1 || PC.Merge || HaveCapacity) &&
      Network.empty()) {
    std::fprintf(stderr, "error: --cache-dir/--resume/--cache-capacity/"
                         "--shard/--merge-shards require --network\n");
    return 2;
  }
  if (PC.ShardCount > 1 && PC.Merge) {
    std::fprintf(stderr,
                 "error: --shard and --merge-shards are exclusive\n");
    return 2;
  }
  if (Options.Mode == DesignMode::CoDesign && AreaBudget == 0.0)
    AreaBudget = eyerissAreaUm2(Tech);

  // Resolve the cost-model backend. "both" scores with nest while
  // cross-checking maestro on every evaluation; anything else must be a
  // registered backend name. The search trajectory — and hence the
  // printed design — is bit-identical for nest, both, and the default.
  std::optional<CrossCheckEvaluator> CrossCheck;
  if (EvaluatorName == "both") {
    CrossCheck.emplace(nestCostEvaluator(), *costEvaluator("maestro"));
    Options.Rounding.Evaluator = &*CrossCheck;
  } else if (const CostEvaluator *E = costEvaluator(EvaluatorName)) {
    Options.Rounding.Evaluator = E;
  } else {
    std::string Known;
    for (const std::string &Name : costEvaluatorNames())
      Known += (Known.empty() ? "" : "|") + Name;
    std::fprintf(stderr, "error: unknown evaluator '%s' (known: %s|both)\n",
                 EvaluatorName.c_str(), Known.c_str());
    return 2;
  }

  // Telemetry: --trace-json and --profile need the span trace, --metrics
  // alone only the counters. All three leave the optimization result
  // bit-identical (docs/OBSERVABILITY.md); with none given, collection
  // stays off and every hook is a single relaxed load.
  if (!TraceJsonPath.empty() || WantProfile)
    telemetry::setLevel(telemetry::Level::Trace);
  else if (WantMetrics)
    telemetry::setLevel(telemetry::Level::Metrics);

  const auto StartTime = std::chrono::steady_clock::now();
  RunReport RR;
  RR.Workload = !Network.empty()    ? "network:" + NetworkName
                : !Pipeline.empty() ? "pipeline:" + PipelineName
                                    : Layer.Name;
  RR.Mode =
      Options.Mode == DesignMode::CoDesign ? "codesign" : "dataflow";
  RR.Objective = Options.Objective == SearchObjective::Energy  ? "energy"
                 : Options.Objective == SearchObjective::Delay ? "delay"
                                                               : "edp";
  RR.Hierarchy = HierarchySpec;
  RR.Evaluator.Backend = EvaluatorName;
  RR.Evaluator.CrossCheck = CrossCheck.has_value();
  RR.Threads =
      Options.Threads ? Options.Threads : ThreadPool::defaultWorkerCount();

  // Stamps the run report and emits the requested telemetry output on
  // every exit path past argument parsing.
  auto finish = [&](int Exit) {
    if (CrossCheck) {
      // Fold the accumulated cross-check statistics into the report and
      // summarize them on stdout; any mismatch is a model bug in one of
      // the two backends.
      CrossCheckStats S = CrossCheck->stats();
      RR.Evaluator.Evals = S.Evals;
      RR.Evaluator.DivergentEvals = S.DivergentEvals;
      RR.Evaluator.CountersCompared = S.CountersCompared;
      RR.Evaluator.CounterMismatches = S.CounterMismatches;
      RR.Evaluator.MaxAbsDelta = S.MaxAbsDelta;
      RR.Evaluator.MaxRelDelta = S.MaxRelDelta;
      for (const DivergenceSample &Sample : S.Samples)
        RR.Evaluator.Samples.push_back(
            {Sample.Counter, Sample.Primary, Sample.Reference});
      std::printf("evaluator cross-check (nest vs maestro): %llu evals, "
                  "%llu divergent; %llu counters compared, %llu mismatches\n",
                  static_cast<unsigned long long>(S.Evals),
                  static_cast<unsigned long long>(S.DivergentEvals),
                  static_cast<unsigned long long>(S.CountersCompared),
                  static_cast<unsigned long long>(S.CounterMismatches));
      if (S.CounterMismatches) {
        std::printf("  max |delta| %g words (rel %g)\n", S.MaxAbsDelta,
                    S.MaxRelDelta);
        for (const DivergenceSample &Sample : S.Samples)
          std::printf("  %s: nest %lld vs maestro %lld\n",
                      Sample.Counter.c_str(),
                      static_cast<long long>(Sample.Primary),
                      static_cast<long long>(Sample.Reference));
      }
    }
    RR.ExitCode = Exit;
    RR.WallSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - StartTime)
                         .count();
    RR.Telemetry = telemetry::snapshot();
    if (WantProfile || WantMetrics)
      printProfile(std::cout, RR.Telemetry);
    if (!TraceJsonPath.empty()) {
      std::ofstream Out(TraceJsonPath);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write run report '%s'\n",
                     TraceJsonPath.c_str());
        return Exit ? Exit : 2;
      }
      Out << RR.toJson();
      std::printf("run report written to %s\n", TraceJsonPath.c_str());
    }
    return Exit;
  };

  if (!Network.empty()) {
    if (HierarchySpec != "classic3") {
      std::fprintf(stderr, "error: --hierarchy works on a single layer\n");
      return finish(2);
    }
    // The GP solution cache is on by default; THISTLE_CACHE=off (or 0)
    // disables it. The optimization result is bit-identical either way
    // (the cache replays recorded outcomes; warm starts only run where
    // a cold solve already failed).
    bool UseCache = true;
    if (const char *Env = std::getenv("THISTLE_CACHE"))
      UseCache = std::string(Env) != "off" && std::string(Env) != "0";
    // THISTLE_CACHE_DIR is the ambient form of --cache-dir; the flag
    // wins, and either one implies the cache (over THISTLE_CACHE=off).
    if (PC.Dir.empty())
      if (const char *Env = std::getenv("THISTLE_CACHE_DIR"))
        PC.Dir = Env;
    if (!PC.Dir.empty())
      UseCache = true;
    if ((PC.ShardCount > 1 || PC.Merge) && PC.Dir.empty()) {
      std::fprintf(stderr, "error: --shard/--merge-shards need "
                           "--cache-dir (or THISTLE_CACHE_DIR) for the "
                           "shard segments\n");
      return finish(2);
    }
    // A shard's run report is part of its checkpoint; default it into
    // the cache directory when no explicit --trace-json was given.
    if (PC.ShardCount > 1 && TraceJsonPath.empty())
      TraceJsonPath = PC.Dir + "/shard-" +
                      std::to_string(PC.ShardIndex + 1) + "-of-" +
                      std::to_string(PC.ShardCount) + "-report.json";
    return finish(runNetwork(Network, Options, Arch, Tech, AreaBudget,
                             UseCache, PC, RR));
  }

  if (!Pipeline.empty()) {
    if (HierarchySpec != "classic3") {
      std::fprintf(stderr, "error: --hierarchy works on a single layer\n");
      return finish(2);
    }
    return finish(
        runPipeline(Pipeline, Options, Arch, Tech, AreaBudget, RR));
  }

  Problem Prob = makeConvProblem(Layer);
  std::printf("layer %s (%s): %lld MACs, iteration space",
              Layer.Name.c_str(), Layer.layerClass(),
              static_cast<long long>(Prob.numOps()));
  for (const Iterator &It : Prob.iterators())
    std::printf(" %s=%lld", It.Name.c_str(),
                static_cast<long long>(It.Extent));
  std::printf("\n");

  if (HierarchySpec != "classic3") {
    if (Options.Mode == DesignMode::CoDesign) {
      std::fprintf(stderr, "error: --hierarchy fixes the machine; use "
                           "--mode dataflow\n");
      return finish(2);
    }
    Hierarchy H;
    if (HierarchySpec == "spad4") {
      H = Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/512,
                                    Arch.SramWords);
    } else {
      std::ifstream In(HierarchySpec);
      if (!In) {
        std::fprintf(stderr, "error: cannot open hierarchy file '%s'\n",
                     HierarchySpec.c_str());
        return finish(2);
      }
      std::ostringstream Text;
      Text << In.rdbuf();
      std::string Error;
      if (!parseHierarchy(Text.str(), H, Error)) {
        std::fprintf(stderr, "error: %s: %s\n", HierarchySpec.c_str(),
                     Error.c_str());
        return finish(2);
      }
    }
    return finish(runHierarchy(Prob, H, Options, Tech, RR));
  }

  ThistleResult R = optimizeLayer(Prob, Arch, Tech, Options, AreaBudget);
  if (!R.InputStatus.isOk()) {
    std::fprintf(stderr, "error: %s\n", R.InputStatus.toString().c_str());
    return finish(2);
  }
  RR.HasSweep = true;
  RR.SweepTaskNoun = "pair";
  if (!R.Found) {
    sweepExitCode(R.Report, "pair");
    RR.Sweep = std::move(R.Report);
    std::fprintf(stderr, "no feasible design found\n");
    return finish(3);
  }
  RR.Found = true;
  RR.EnergyPj = R.Eval.EnergyPj;
  RR.EnergyPerMacPj = R.Eval.EnergyPerMacPj;
  RR.Cycles = R.Eval.Cycles;
  RR.MacIpc = R.Eval.MacIpc;
  RR.EdpPjCycles = R.Eval.EdpPjCycles;

  std::printf("\narchitecture: P=%lld PEs, R=%lld regs/PE, S=%lld SRAM "
              "words (area %.3f mm^2)\n",
              static_cast<long long>(R.Arch.NumPEs),
              static_cast<long long>(R.Arch.RegWordsPerPE),
              static_cast<long long>(R.Arch.SramWords),
              R.Arch.areaUm2(Tech) * 1e-6);
  std::printf("energy: %.1f uJ (%.3f pJ/MAC)\n", R.Eval.EnergyPj * 1e-6,
              R.Eval.EnergyPerMacPj);
  std::printf("delay:  %.0f cycles (IPC %.1f), EDP %.4g pJ*cycles\n",
              R.Eval.Cycles, R.Eval.MacIpc, R.Eval.EdpPjCycles);
  std::printf("energy breakdown [pJ]: mac+reg %.4g, RF fills %.4g, SRAM "
              "%.4g, DRAM %.4g\n",
              R.Eval.MacEnergyPj, R.Eval.RegEnergyPj, R.Eval.SramEnergyPj,
              R.Eval.DramEnergyPj);
  std::printf("mapping:\n%s", R.Map.toString(Prob).c_str());
  std::printf("search: %u GP solves, %u Newton iterations, %zu integer "
              "candidates (%u worker threads)\n",
              R.Stats.PairsSolved, R.Stats.NewtonIterations,
              R.Stats.CandidatesEvaluated,
              Options.Threads ? Options.Threads
                              : ThreadPool::defaultWorkerCount());

  if (ExportTimeloop) {
    std::printf("\n# ---- Timeloop architecture spec ----\n%s",
                exportTimeloopArch(R.Arch, Tech).c_str());
    std::printf("\n# ---- Timeloop problem spec ----\n%s",
                exportTimeloopProblem(Prob).c_str());
    std::printf("\n# ---- Timeloop mapping spec ----\n%s",
                exportTimeloopMapping(Prob, R.Map).c_str());
  }
  int Exit = sweepExitCode(R.Report, "pair");
  RR.Sweep = std::move(R.Report);
  return finish(Exit);
}
