file(REMOVE_RECURSE
  "CMakeFiles/thistle_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/thistle_linalg.dir/Matrix.cpp.o.d"
  "libthistle_linalg.a"
  "libthistle_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
