//===- linalg/Kernels.h - SIMD kernels for the GP/Newton hot path -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The portable SIMD kernel layer for the barrier-Newton inner loops:
/// blocked dot/sum/axpy, the fused exp-and-accumulate used by log-sum-exp
/// value/gradient/Hessian assembly, weighted-Gram Hessian accumulation,
/// and a blocked dense Cholesky factor/solve plus a lane-batched variant
/// that factors four same-size SPD systems at once (one SIMD lane per
/// system — the regularization-ladder rungs of a Newton step share one
/// kernel invocation).
///
/// Determinism rule (docs/PERF.md): every kernel uses a *fixed* blocking
/// and association order — reductions accumulate four partial sums over
/// blocks of four elements, combine them as `(l0 + l1) + (l2 + l3)`, and
/// fold the tail sequentially — independent of the instruction set
/// selected by `THISTLE_SIMD`. Element-wise kernels (axpy, Gram updates)
/// perform exactly one mul and one add per element, never an FMA. The
/// result of every kernel is therefore bit-identical across
/// `THISTLE_SIMD=off/scalar/native`, which keeps full solver trajectories
/// (Newton counts, incidents, winners) invariant under the backend. The
/// lane-batched Cholesky performs, per lane, the same operation sequence
/// as the single-system kernel, so batching is bit-invisible too.
///
/// These functions are the only code compiled with native vector flags;
/// callers (solver/GpSolver.cpp, linalg/Matrix.cpp) stay instruction-set
/// agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_LINALG_KERNELS_H
#define THISTLE_LINALG_KERNELS_H

#include <cstddef>

namespace thistle {
namespace kernels {

/// Name of the instruction set the kernels were compiled for
/// ("avx2", "sse2", "neon", or "scalar").
const char *backendName();

/// Logical register width in doubles (always 4; see support/Simd.h).
std::size_t packWidth();

/// Blocked dot product sum_i A[i]*B[i] in the fixed association order.
double dot(const double *A, const double *B, std::size_t N);

/// Blocked sum of A[0..N) in the fixed association order.
double sum(const double *A, std::size_t N);

/// Y[i] += Alpha * X[i] (element-wise; bit-identical to the scalar loop).
void axpy(double *Y, double Alpha, const double *X, std::size_t N);

/// Out[i] = A[i] + Alpha * B[i] (element-wise).
void axpby(double *Out, const double *A, double Alpha, const double *B,
           std::size_t N);

/// Fused exp-and-accumulate for log-sum-exp assembly: replaces
/// E[k] with exp(E[k] - Max) and returns the blocked sum of the results.
/// The exponential itself is always the scalar libm call, lane by lane,
/// so the per-element values match the naive loop bit for bit; only the
/// final accumulation uses the fixed blocked order.
double expAccum(double *E, std::size_t N, double Max);

/// Weighted Gram accumulation H += W * Row * Row^T for one row:
/// H[i*N + j] += (W * Row[i]) * Row[j]. Element-wise across j, so the
/// result is bit-identical to the naive triple loop.
void gramAccum(double *H, const double *Row, double W, std::size_t N);

/// Rank-one subtraction H[i*N + j] -= G[i] * G[j] (element-wise).
void rank1Sub(double *H, const double *G, std::size_t N);

/// In-place lower-triangular Cholesky factorization of the row-major
/// N x N matrix \p A, with blocked inner dot products. Returns false if
/// a pivot is non-positive or non-finite (A not numerically SPD); \p A
/// is left partially overwritten in that case.
bool choleskyFactor(double *A, std::size_t N);

/// Solves L * L^T * X = B given the factor produced by choleskyFactor.
/// \p Scratch must hold at least N*N doubles (used to transpose L so the
/// back substitution runs on contiguous rows).
void choleskySubstitute(const double *L, std::size_t N, const double *B,
                        double *X, double *Scratch);

/// Factor-and-solve of one SPD system: A is overwritten with its factor.
/// \p Scratch must hold at least N*N doubles.
bool choleskySolveInPlace(double *A, std::size_t N, const double *B,
                          double *X, double *Scratch);

/// Lane-batched Cholesky: factors and solves four same-size SPD systems
/// at once, one SIMD lane per system. All arrays are lane-interleaved
/// SoA: entry (i, j) of system s lives at [(i*N + j)*4 + s]. \p A4 is
/// overwritten; \p Scratch4 must hold at least N*N*4 doubles. Ok[s] is
/// true iff system s factored (every pivot positive and finite); the
/// X4 lanes of failed systems are garbage and must be ignored.
///
/// Each lane performs exactly the operation sequence of choleskyFactor /
/// choleskySubstitute, so a lane's solution is bit-identical to solving
/// that system alone.
struct CholeskyBatch4Ok {
  bool Ok[4];
};
CholeskyBatch4Ok choleskySolveBatch4(double *A4, const double *B4,
                                     double *X4, std::size_t N,
                                     double *Scratch4);

} // namespace kernels
} // namespace thistle

#endif // THISTLE_LINALG_KERNELS_H
