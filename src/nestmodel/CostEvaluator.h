//===- nestmodel/CostEvaluator.h - Pluggable evaluator backends -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-neutral cost-model interface: a CostEvaluator turns
/// (problem, hierarchy, mapping) into per-level access counts
/// (MultiProfile) and, through the shared priceMultiProfile pricing, into
/// the Eq. 3 energy and Eq. 5 delay metrics (MultiEvalResult). Every
/// consumer of the analytical model — the stochastic mapper, the L-level
/// GP rounding sweep, and the classic 3-level rounding path — scores
/// candidates through this interface; passing no evaluator selects the
/// Timeloop-style nest model, bit-identically to the pre-interface code.
///
/// Two backends ship in-tree:
///  - "nest" (this header): the Algorithm-1 loop-nest walk of
///    multilevel/MultiNestAnalysis, the default.
///  - "maestro" (nestmodel/MaestroModel.h): a MAESTRO-style data-centric
///    reuse analysis that derives the same counts from per-tensor
///    stationary/multicast/streaming reuse instead of walking the nest.
///
/// Because both backends feed the same pricing, any disagreement is a
/// counting bug in one of them. CrossCheckEvaluator runs a primary and a
/// reference backend side by side on every evaluation, returns the
/// primary's result (so search trajectories stay bit-identical to the
/// primary alone), and accumulates a divergence report that thistle-opt
/// --evaluator both emits into the run report. Third-party backends
/// register with registerCostEvaluator; docs/EVALUATOR.md walks through
/// adding one.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_COSTEVALUATOR_H
#define THISTLE_NESTMODEL_COSTEVALUATOR_H

#include "multilevel/MultiNestAnalysis.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace thistle {

/// Abstract cost-model backend. Implementations must be stateless with
/// respect to evaluations (const, thread-safe): the mapper and the combo
/// sweep call evaluate() concurrently from pool workers.
class CostEvaluator {
public:
  virtual ~CostEvaluator();

  /// Stable backend name ("nest", "maestro", ...): the registry key, the
  /// --evaluator spelling and the run-report backend string.
  virtual const char *name() const = 0;

  /// Computes the per-boundary/per-tensor access counts, the per-level
  /// occupancy and the PE usage of \p Map on \p H. Both must validate.
  virtual MultiProfile profile(const Problem &Prob, const Hierarchy &H,
                               const MultiMapping &Map) const = 0;

  /// Full evaluation: profile() plus the shared capacity/energy/delay
  /// pricing. Backends that agree on counts agree on metrics bit for
  /// bit. Counts one thistle.evaluator.evals telemetry tick.
  virtual MultiEvalResult evaluate(const Problem &Prob, const Hierarchy &H,
                                   const MultiMapping &Map) const;
};

/// The default Timeloop-style backend: Algorithm 1's inner-to-outer
/// loop-nest walk (analyzeMultiNest). evaluate() is bit-identical to
/// calling evaluateMultiMapping directly.
class NestCostEvaluator : public CostEvaluator {
public:
  const char *name() const override { return "nest"; }
  MultiProfile profile(const Problem &Prob, const Hierarchy &H,
                       const MultiMapping &Map) const override;
};

/// The process-wide nest backend instance.
const CostEvaluator &nestCostEvaluator();

/// Consumer-side default resolution: options carry a nullable evaluator
/// pointer, null meaning "the nest model" (the pre-interface behavior).
inline const CostEvaluator &resolveCostEvaluator(const CostEvaluator *E) {
  return E ? *E : nestCostEvaluator();
}

/// Looks up a registered backend by name; null when unknown. "nest" and
/// "maestro" are pre-registered.
const CostEvaluator *costEvaluator(const std::string &Name);

/// Registers \p Backend (which must outlive the process use of it) under
/// \p Name, replacing any previous registration of that name.
void registerCostEvaluator(const std::string &Name,
                           const CostEvaluator *Backend);

/// All registered backend names, sorted.
std::vector<std::string> costEvaluatorNames();

/// One counter on which two profiles disagree.
struct DivergenceSample {
  std::string Counter; ///< E.g. "words[b1][Out]", "occupancy[l0]".
  std::int64_t Primary = 0;
  std::int64_t Reference = 0;
};

/// Field-by-field diff of two profiles of the same (problem, hierarchy).
/// Every field of MultiProfile is an exact integer count, so any delta is
/// a model divergence; Max*Delta summarize the magnitudes.
struct ProfileDivergence {
  std::uint64_t CountersCompared = 0;
  std::uint64_t CounterMismatches = 0;
  double MaxAbsDelta = 0.0;
  /// Relative to max(1, |reference|).
  double MaxRelDelta = 0.0;
  std::vector<DivergenceSample> Samples; ///< Capped at MaxSamples.
  static constexpr std::size_t MaxSamples = 8;

  bool diverged() const { return CounterMismatches != 0; }
};

/// Compares \p Primary against \p Reference counter by counter. \p Prob
/// and \p H supply the tensor/level names for the sample labels.
ProfileDivergence compareProfiles(const Problem &Prob, const Hierarchy &H,
                                  const MultiProfile &Primary,
                                  const MultiProfile &Reference);

/// Aggregate divergence statistics of one cross-checked run. All fields
/// are commutative aggregates (sums, maxima) plus a bounded first-come
/// sample list, so the totals are thread-count invariant.
struct CrossCheckStats {
  std::uint64_t Evals = 0;          ///< Evaluations cross-checked.
  std::uint64_t DivergentEvals = 0; ///< Evaluations with any mismatch.
  std::uint64_t CountersCompared = 0;
  std::uint64_t CounterMismatches = 0;
  double MaxAbsDelta = 0.0;
  double MaxRelDelta = 0.0;
  std::vector<DivergenceSample> Samples; ///< First few mismatches seen.
};

/// The --evaluator both backend: scores with \p Primary (so the search
/// trajectory and the winner are bit-identical to running the primary
/// alone) while also running \p Reference on every evaluation and
/// folding the diff into stats(). Divergent evaluations tick the
/// thistle.evaluator.divergences telemetry counter.
class CrossCheckEvaluator : public CostEvaluator {
public:
  CrossCheckEvaluator(const CostEvaluator &Primary,
                      const CostEvaluator &Reference)
      : Primary(Primary), Reference(Reference) {}

  const char *name() const override { return "both"; }
  MultiProfile profile(const Problem &Prob, const Hierarchy &H,
                       const MultiMapping &Map) const override;

  /// Snapshot of the accumulated statistics.
  CrossCheckStats stats() const;

private:
  const CostEvaluator &Primary;
  const CostEvaluator &Reference;
  mutable std::mutex Mutex;
  mutable CrossCheckStats Stats;
};

} // namespace thistle

#endif // THISTLE_NESTMODEL_COSTEVALUATOR_H
