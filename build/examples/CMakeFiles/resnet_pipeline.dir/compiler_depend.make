# Empty compiler generated dependencies file for resnet_pipeline.
# This may be replaced when dependencies are built.
