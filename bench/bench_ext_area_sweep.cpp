//===- bench/bench_ext_area_sweep.cpp - Area-budget sweep -----------------===//
//
// Extension experiment: the paper fixes the co-design area budget to the
// Eyeriss area; this sweep varies the budget from 1/4x to 4x and records
// how the optimal architecture and the achievable energy/throughput
// scale. Expected shape: energy/MAC falls slowly with area (the register
// + MAC floor dominates once R is small), while delay-optimal IPC scales
// roughly linearly with area (more area -> more PEs).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printAreaSweep() {
  TechParams Tech = TechParams::cgo45nm();
  double Eyeriss = eyerissAreaUm2(Tech);
  std::vector<ConvLayer> Layers = {resnet18Layers()[1],
                                   yolo9000Layers()[6]};

  for (SearchObjective Obj :
       {SearchObjective::Energy, SearchObjective::Delay}) {
    std::printf("objective: %s\n",
                Obj == SearchObjective::Energy ? "energy" : "delay");
    TablePrinter Table({"layer", "area / eyeriss", "pJ/MAC", "IPC", "P",
                        "R", "S words"});
    for (const ConvLayer &L : Layers) {
      Problem P = makeConvProblem(L);
      for (double Scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        ThistleOptions O = thistleOptions(DesignMode::CoDesign, Obj);
        ThistleResult R = optimizeLayer(P, eyerissArch(), Tech, O,
                                        Eyeriss * Scale);
        if (!R.Found) {
          Table.addRow({L.Name, TablePrinter::formatDouble(Scale, 2), "-",
                        "-", "-", "-", "-"});
          continue;
        }
        Table.addRow({L.Name, TablePrinter::formatDouble(Scale, 2),
                      TablePrinter::formatDouble(R.Eval.EnergyPerMacPj, 2),
                      TablePrinter::formatDouble(R.Eval.MacIpc, 0),
                      TablePrinter::formatInt(R.Arch.NumPEs),
                      TablePrinter::formatInt(R.Arch.RegWordsPerPE),
                      TablePrinter::formatInt(R.Arch.SramWords)});
      }
    }
    Table.print(std::cout);
    std::printf("\n");
  }
}

void timeAreaSweepPoint(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Energy);
  double Budget = eyerissAreaUm2(Tech) * 2.0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        optimizeLayer(P, eyerissArch(), Tech, O, Budget));
}
BENCHMARK(timeAreaSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Extension: area-budget sweep",
              "Co-design across 1/4x-4x the Eyeriss silicon area");
  printAreaSweep();
  return runTimings(Argc, Argv);
}
