//===- multilevel/MultiNestAnalysis.cpp - L-level analytical model --------===//

#include "multilevel/MultiNestAnalysis.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <sstream>
#include <utility>

using namespace thistle;

namespace {

/// Result of the Algorithm-1 walk of one level for one tensor (shared
/// with nestmodel's fixed-depth version in spirit; reimplemented here
/// over the generic level structure).
struct LevelWalk {
  std::int64_t Multiplier = 1;
  std::optional<unsigned> StreamIter;
  std::int64_t StreamTrip = 1;
};

LevelWalk walkLevel(const Tensor &T, const std::vector<unsigned> &Perm,
                    const std::vector<std::int64_t> &Trips) {
  LevelWalk Walk;
  bool CanHoist = true;
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    std::int64_t Trip = Trips[It];
    if (Trip == 1)
      continue;
    if (CanHoist) {
      if (T.usesIter(It)) {
        CanHoist = false;
        Walk.StreamIter = It;
        Walk.StreamTrip = Trip;
      }
    } else {
      Walk.Multiplier *= Trip;
    }
  }
  return Walk;
}

/// Exact union of StreamTrip consecutive tiles (min(E, shift) per dim).
std::int64_t unionWords(const Tensor &T,
                        const std::vector<std::int64_t> &Extents,
                        const LevelWalk &Walk) {
  std::int64_t Words = 1;
  for (const DimRef &D : T.Dims) {
    std::int64_t DimExtent = D.extentFor(Extents);
    if (Walk.StreamIter && D.uses(*Walk.StreamIter)) {
      std::int64_t Stride = 0;
      for (const DimRef::Term &Term : D.Terms)
        if (Term.Iter == *Walk.StreamIter)
          Stride = Term.Stride;
      std::int64_t Shift = Stride * Extents[*Walk.StreamIter];
      DimExtent += (Walk.StreamTrip - 1) * std::min(DimExtent, Shift);
    }
    Words *= DimExtent;
  }
  return Words;
}

} // namespace

std::int64_t MultiProfile::boundaryWords(unsigned B) const {
  std::int64_t Sum = 0;
  for (std::int64_t W : Words[B])
    Sum += W;
  return Sum;
}

MultiProfile thistle::analyzeMultiNest(const Problem &Prob,
                                       const Hierarchy &H,
                                       const MultiMapping &Map) {
  assert(H.validate().empty() && "hierarchy must validate");
  assert(Map.validate(Prob, H).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;

  MultiProfile Profile;
  Profile.Words.assign(H.numBoundaries(),
                       std::vector<std::int64_t>(Prob.tensors().size(), 0));
  Profile.Occupancy.assign(L, 0);
  Profile.PEsUsed = Map.numPEsUsed();

  // Per-level tile extents and outer-trip products, hoisted out of the
  // per-tensor loop: this is the hot path of the mapper wrappers.
  std::vector<std::vector<std::int64_t>> Extents(L);
  for (unsigned Lv = 0; Lv < L; ++Lv)
    Extents[Lv] = Map.tileExtents(H, Lv);
  // OuterTrips[Lv] = product of every trip count of levels > Lv.
  std::vector<std::int64_t> OuterTrips(L, 1);
  for (unsigned Lv = L - 1; Lv > 0; --Lv) {
    std::int64_t LevelTrips = 1;
    for (unsigned I = 0; I < NumIters; ++I)
      LevelTrips *= Map.TempFactors[Lv][I];
    OuterTrips[Lv - 1] = OuterTrips[Lv] * LevelTrips;
  }

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    for (unsigned B = 0; B < H.numBoundaries(); ++B) {
      const unsigned WalkLevel = B + 1;
      LevelWalk Walk =
          walkLevel(T, Map.Perms[WalkLevel], Map.TempFactors[WalkLevel]);

      // Every trip count of the levels above the walked one.
      std::int64_t M = Walk.Multiplier * OuterTrips[WalkLevel];
      // Spatial contribution (see file header).
      if (WalkLevel < F) {
        for (unsigned I = 0; I < NumIters; ++I)
          M *= Map.SpatialFactors[I];
      } else if (WalkLevel == F) {
        for (unsigned I = 0; I < NumIters; ++I)
          if (T.usesIter(I))
            M *= Map.SpatialFactors[I];
      }

      std::int64_t Volume = M * unionWords(T, Extents[B], Walk);
      if (T.ReadWrite)
        Volume *= 2;
      Profile.Words[B][TI] = Volume;
    }
    for (unsigned Lv = 0; Lv < L; ++Lv)
      Profile.Occupancy[Lv] += T.footprintWords(Extents[Lv]);
  }
  return Profile;
}

MultiEvalResult thistle::evaluateMultiMapping(const Problem &Prob,
                                              const Hierarchy &H,
                                              const MultiMapping &Map) {
  return priceMultiProfile(Prob, H, analyzeMultiNest(Prob, H, Map));
}

MultiEvalResult thistle::priceMultiProfile(const Problem &Prob,
                                           const Hierarchy &H,
                                           MultiProfile Profile) {
  MultiEvalResult Result;
  Result.Profile = std::move(Profile);
  const MultiProfile &P = Result.Profile;

  Result.Legal = true;
  std::ostringstream Why;
  for (unsigned Lv = 0; Lv + 1 < H.numLevels(); ++Lv)
    if (P.Occupancy[Lv] > H.Levels[Lv].CapacityWords) {
      Result.Legal = false;
      Why << H.Levels[Lv].Name << " tile " << P.Occupancy[Lv]
          << " words > capacity " << H.Levels[Lv].CapacityWords << "; ";
    }
  if (P.PEsUsed > H.NumPEs) {
    Result.Legal = false;
    Why << "uses " << P.PEsUsed << " PEs > available " << H.NumPEs << "; ";
  }
  Result.IllegalReason = Why.str();

  const unsigned L = H.numLevels();
  const double Nops = static_cast<double>(Prob.numOps());

  // Boundary traffic, as doubles, with one-past-the-end zeros so every
  // level sees its two adjacent boundaries (W_{-1} = W_{L-1} = 0).
  std::vector<double> W(H.numBoundaries());
  for (unsigned B = 0; B < H.numBoundaries(); ++B)
    W[B] = static_cast<double>(P.boundaryWords(B));
  auto boundary = [&](int B) {
    return B < 0 || B >= static_cast<int>(H.numBoundaries()) ? 0.0 : W[B];
  };

  // Energy, Eq. 3 generalized: the MAC term (register accesses ride every
  // operation), then each level priced over the words crossing its two
  // adjacent boundaries. Grouping by level (not by boundary) keeps the
  // floating-point sum identical to the fixed-depth Eq. 3 components.
  Result.MacEnergyPj =
      (4.0 * H.Levels[0].AccessEnergyPj + H.MacEnergyPj) * Nops;
  Result.EnergyPerLevelPj.assign(L, 0.0);
  for (unsigned Lv = 0; Lv < L; ++Lv)
    Result.EnergyPerLevelPj[Lv] =
        H.Levels[Lv].AccessEnergyPj *
        (boundary(static_cast<int>(Lv) - 1) + boundary(static_cast<int>(Lv)));
  double Energy = Result.MacEnergyPj;
  for (unsigned Lv = 0; Lv < L; ++Lv)
    Energy += Result.EnergyPerLevelPj[Lv];
  Result.EnergyPj = Energy;
  Result.EnergyPerMacPj = Energy / Nops;

  // Delay (section V-B): compute bound plus each level's bandwidth over
  // its adjacent boundaries; private levels have one instance per used PE.
  Result.ComputeCycles = Nops / static_cast<double>(P.PEsUsed);
  Result.CyclesPerLevel.assign(L, 0.0);
  double Cycles = Result.ComputeCycles;
  for (unsigned Lv = 1; Lv < L; ++Lv) {
    double Words =
        boundary(static_cast<int>(Lv) - 1) + boundary(static_cast<int>(Lv));
    double Instances =
        Lv < H.FanoutLevel ? static_cast<double>(P.PEsUsed) : 1.0;
    Result.CyclesPerLevel[Lv] = Words / (H.Levels[Lv].Bandwidth * Instances);
    Cycles = std::max(Cycles, Result.CyclesPerLevel[Lv]);
  }
  Result.Cycles = std::max(Cycles, 1.0);
  Result.MacIpc = Nops / Result.Cycles;
  Result.EdpPjCycles = Result.EnergyPj * Result.Cycles;
  return Result;
}
