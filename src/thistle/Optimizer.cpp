//===- thistle/Optimizer.cpp - Thistle design-space optimizer -------------===//

#include "thistle/Optimizer.h"

#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/PairSweep.h"

#include <optional>
#include <string>
#include <utility>

using namespace thistle;

ThistleResult thistle::optimizeLayer(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const TechParams &Tech,
                                     const ThistleOptions &Options,
                                     double AreaBudgetUm2) {
  return optimizeLayer(Prob, Arch, Tech, Options, LayerRunContext{},
                       AreaBudgetUm2);
}

ThistleResult thistle::optimizeLayer(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const TechParams &Tech,
                                     const ThistleOptions &Options,
                                     const LayerRunContext &Run,
                                     double AreaBudgetUm2) {
  ThistleResult Result;

  // Validate the user-reachable inputs once, before any GP is built.
  // The per-pair permutations come from our own enumeration, so an
  // empty-permutation spec covers everything the caller controls.
  {
    GpBuildSpec Probe;
    Probe.Mode = Options.Mode;
    Probe.Objective = Options.Objective;
    Probe.TiledIters = tiledIterators(Prob, Options);
    Probe.Arch = Arch;
    Probe.Tech = Tech;
    Probe.AreaBudgetUm2 = AreaBudgetUm2;
    Result.InputStatus = validateGpBuildSpec(Prob, Probe)
                             .withContext("validating optimizer inputs");
    if (!Result.InputStatus.isOk())
      return Result;
  }

  LayerSweepPlan Plan = planLayerSweep(Prob, Options);

  PairSweepContext Ctx{Prob,  Plan, Options, Arch,
                       Tech,  AreaBudgetUm2};
  Ctx.Cache = Run.Cache;
  Ctx.HasDeadline = resolveSweepDeadline(Options.Deadline,
                                         Options.DeadlineAt, Ctx.DeadlineAt);

  telemetry::beginEpoch();
  telemetry::TraceScope SweepSpan("thistle.optimize_layer");
  telemetry::count("thistle.sweeps");
  // Freeze the warm tier at the sweep boundary, as the network driver
  // does per phase: warm lookups during the sweep then only see entries
  // from earlier sweeps, independent of task completion order.
  if (Ctx.Cache)
    Ctx.Cache->beginGeneration();
  std::optional<ThreadPool> OwnPool;
  if (!Run.Pool)
    OwnPool.emplace(Options.Threads);
  ThreadPool &Pool = Run.Pool ? *Run.Pool : *OwnPool;
  SweepAccumulator Total = parallelReduce(
      Pool, Plan.Pairs.size(), SweepAccumulator{},
      [&Ctx](SweepAccumulator &Acc, std::size_t TaskIdx) {
        runPairTask(Ctx, TaskIdx, Acc);
      },
      [](SweepAccumulator &A, SweepAccumulator &&B) {
        mergePairAccumulators(A, std::move(B));
      });
  if (telemetry::traceEnabled())
    SweepSpan.setDetail("pairs=" + std::to_string(Plan.Pairs.size()) +
                        " solved=" + std::to_string(Total.Report.Solved) +
                        " degraded=" +
                        std::to_string(Total.Report.Degraded));

  finishLayerResult(Plan, std::move(Total), Result);
  return Result;
}
