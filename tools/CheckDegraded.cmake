# Exercises thistle-opt's graceful-degradation and error exit codes.
# Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -P CheckDegraded.cmake

# 1. Inject a fault that kills exactly GP pair 0: the sweep must still
#    find the best remaining design, print the failure summary and exit
#    with code 1 (partial/degraded).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env THISTLE_FAULT=thistle.pair:0:1
          ${TOOL} --layer 16,8,14,14,3,3 --threads 2
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 1)
  message(FATAL_ERROR
    "degraded sweep: expected exit code 1, got '${CODE}'\n${OUT}\n${ERR}")
endif()
if(NOT OUT MATCHES "sweep degraded")
  message(FATAL_ERROR
    "degraded sweep: missing failure summary in output\n${OUT}")
endif()
if(NOT OUT MATCHES "architecture:")
  message(FATAL_ERROR
    "degraded sweep: no design printed despite surviving pairs\n${OUT}")
endif()

# 2. The same run without the fault must be clean (exit 0).
execute_process(
  COMMAND ${TOOL} --layer 16,8,14,14,3,3 --threads 2
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR
    "clean sweep: expected exit code 0, got '${CODE}'\n${OUT}\n${ERR}")
endif()
if(OUT MATCHES "sweep degraded")
  message(FATAL_ERROR "clean sweep: spurious failure summary\n${OUT}")
endif()

# 3. A malformed hierarchy file must exit with code 2 and a
#    line-numbered parse error.
file(WRITE ${WORK_DIR}/bad-hierarchy.txt
  "pes 16\nlevel RF 64 0.5 1e9\nlevel RF 1024 2.0 80\nlevel DRAM - 128 16\n")
execute_process(
  COMMAND ${TOOL} --layer 16,8,14,14,3,3
          --hierarchy ${WORK_DIR}/bad-hierarchy.txt
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 2)
  message(FATAL_ERROR
    "bad hierarchy: expected exit code 2, got '${CODE}'\n${OUT}\n${ERR}")
endif()
if(NOT ERR MATCHES "line 3")
  message(FATAL_ERROR
    "bad hierarchy: missing line-numbered diagnostic\n${ERR}")
endif()
