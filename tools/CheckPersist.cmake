# The corruption-injection matrix for durable state: every damaged
# snapshot or journal must be detected (version/CRC/length checks),
# reported as a persist warning plus a run-report problem, and degrade
# the run to a cold start — exit 0, results byte-identical to a run
# with no durable cache at all. Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECK=handmade|faults
#         -P CheckPersist.cmake
#
#  handmade: hand-written bad-magic / truncated / CRC-mismatch /
#            torn-journal artifacts, plus the unusable-directory
#            usage error. Needs no fault-injection build.
#  faults:   the persist.* fault sites — failed and corrupted writes at
#            compaction time, detected on the next load; journal append
#            failures that degrade checkpointing but never the run.

set(NETWORK --network resnet18 --threads 2)

# Line-start anchored via a sentinel newline, so a cache directory
# named ".../foo-cache" cannot trip the "cache:" match mid-line.
function(strip_accounting VAR TEXT)
  string(REGEX REPLACE "\n(cache: |persist: |run report written to )[^\n]*"
    "" TEXT "\n${TEXT}")
  string(REGEX REPLACE "^\n" "" TEXT "${TEXT}")
  set(${VAR} "${TEXT}" PARENT_SCOPE)
endfunction()

# Runs the sweep over a cache dir seeded with one damaged artifact and
# requires: exit 0, a persist warning, the damage recorded in the run
# report, and results identical to the no-cache baseline.
function(check_damaged LABEL DIR)
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --cache-dir ${DIR}
            --trace-json ${DIR}/report.json
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "${LABEL}: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  if(NOT OUT MATCHES "persist: warning: ")
    message(FATAL_ERROR "${LABEL}: damage not reported\n${OUT}")
  endif()
  file(READ ${DIR}/report.json JSON)
  if(NOT JSON MATCHES "\"data_loss_detected\": 1")
    message(FATAL_ERROR "${LABEL}: damage missing from run report\n${JSON}")
  endif()
  strip_accounting(OUT "${OUT}")
  if(NOT OUT STREQUAL "${BASE_OUT}")
    message(FATAL_ERROR
      "${LABEL}: damaged cache changed the results\n"
      "---- baseline ----\n${BASE_OUT}\n---- damaged ----\n${OUT}")
  endif()
endfunction()

if(CHECK STREQUAL "handmade")
  # The no-cache baseline every degraded run must reproduce.
  execute_process(
    COMMAND ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE BASE_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "baseline run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  strip_accounting(BASE_OUT "${BASE_OUT}")

  # 1. A snapshot from some other (or future) format entirely.
  set(DIR ${WORK_DIR}/persist-badmagic)
  file(REMOVE_RECURSE ${DIR})
  file(WRITE ${DIR}/gpcache.snap "bogus-format/9 snap gpcache 4 deadbeef\nXXXX")
  check_damaged("bad magic" ${DIR})

  # 2. A snapshot whose header promises more payload than the file holds
  #    (a torn write that lost the tail).
  set(DIR ${WORK_DIR}/persist-truncated)
  file(REMOVE_RECURSE ${DIR})
  file(WRITE ${DIR}/gpcache.snap
    "thistle-snapshot/1 snap gpcache 100 0b45a69c\nshort")
  check_damaged("truncated snapshot" ${DIR})

  # 3. A size-consistent snapshot whose payload fails the CRC (silent
  #    bit rot).
  set(DIR ${WORK_DIR}/persist-badcrc)
  file(REMOVE_RECURSE ${DIR})
  file(WRITE ${DIR}/gpcache.snap
    "thistle-snapshot/1 snap gpcache 4 00000000\nABCD")
  check_damaged("CRC mismatch" ${DIR})

  # 4. A journal with a valid header and a torn record: the (empty)
  #    intact prefix is kept, the tail reported lost.
  set(DIR ${WORK_DIR}/persist-tornjournal)
  file(REMOVE_RECURSE ${DIR})
  file(WRITE ${DIR}/gpcache.journal
    "thistle-snapshot/1 journal gpcache\nrec 50 0123abcd\nshort")
  check_damaged("torn journal" ${DIR})

  # 5. An unusable cache directory is a usage error (exit 2), caught
  #    before any solving starts.
  file(WRITE ${WORK_DIR}/persist-not-a-dir "plain file\n")
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --cache-dir ${WORK_DIR}/persist-not-a-dir
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 2)
    message(FATAL_ERROR
      "unusable dir: expected exit 2, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  if(NOT ERR MATCHES "--cache-dir")
    message(FATAL_ERROR "unusable dir: no diagnostic on stderr\n${ERR}")
  endif()

elseif(CHECK STREQUAL "faults")
  execute_process(
    COMMAND ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE BASE_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "baseline run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  strip_accounting(BASE_OUT "${BASE_OUT}")

  # 1. persist.write-fail:0 — the clean-exit compaction fails. The run
  #    still exits 0 and keeps the journal so no checkpoint is lost.
  set(DIR ${WORK_DIR}/persist-writefail)
  file(REMOVE_RECURSE ${DIR})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env THISTLE_FAULT=persist.write-fail:0
            ${TOOL} ${NETWORK} --cache-dir ${DIR}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "write-fail run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  if(NOT OUT MATCHES "persist: warning: .*journal kept")
    message(FATAL_ERROR "write-fail run: failure not reported\n${OUT}")
  endif()
  if(EXISTS ${DIR}/gpcache.snap)
    message(FATAL_ERROR "write-fail run: a snapshot appeared anyway")
  endif()
  if(NOT EXISTS ${DIR}/gpcache.journal)
    message(FATAL_ERROR "write-fail run: the journal was not kept")
  endif()
  # The kept journal is a complete checkpoint: the next (fault-free) run
  # replays every task from it and compacts successfully.
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --resume ${DIR}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "post-write-fail resume: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  if(NOT OUT MATCHES ", 0 misses")
    message(FATAL_ERROR
      "post-write-fail resume: journal did not replay fully\n${OUT}")
  endif()
  if(NOT EXISTS ${DIR}/gpcache.snap)
    message(FATAL_ERROR "post-write-fail resume: compaction failed")
  endif()
  strip_accounting(OUT "${OUT}")
  if(NOT OUT STREQUAL "${BASE_OUT}")
    message(FATAL_ERROR
      "post-write-fail resume changed the results\n"
      "---- baseline ----\n${BASE_OUT}\n---- resumed ----\n${OUT}")
  endif()

  # 2/3. persist.corrupt-crc:0 and persist.torn-write:0 — the compacted
  #      snapshot is silently damaged on disk. The next run must detect
  #      it, report it, degrade to a cold start, and still match the
  #      baseline.
  foreach(SITE persist.corrupt-crc persist.torn-write)
    set(DIR ${WORK_DIR}/persist-${SITE})
    file(REMOVE_RECURSE ${DIR})
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env THISTLE_FAULT=${SITE}:0
              ${TOOL} ${NETWORK} --cache-dir ${DIR}
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "${SITE} writer run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
    endif()
    if(NOT EXISTS ${DIR}/gpcache.snap)
      message(FATAL_ERROR "${SITE} writer run: no snapshot written")
    endif()
    execute_process(
      COMMAND ${TOOL} ${NETWORK} --cache-dir ${DIR}
              --trace-json ${DIR}/report.json
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "${SITE} reader run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
    endif()
    if(NOT OUT MATCHES "persist: warning: ")
      message(FATAL_ERROR "${SITE} reader run: damage not reported\n${OUT}")
    endif()
    if(NOT OUT MATCHES "data loss detected")
      message(FATAL_ERROR "${SITE} reader run: no data-loss marker\n${OUT}")
    endif()
    file(READ ${DIR}/report.json JSON)
    if(NOT JSON MATCHES "\"data_loss_detected\": 1")
      message(FATAL_ERROR
        "${SITE} reader run: damage missing from run report\n${JSON}")
    endif()
    strip_accounting(OUT "${OUT}")
    if(NOT OUT STREQUAL "${BASE_OUT}")
      message(FATAL_ERROR
        "${SITE}: damaged snapshot changed the results\n"
        "---- baseline ----\n${BASE_OUT}\n---- damaged ----\n${OUT}")
    endif()
  endforeach()

  # 4. persist.write-fail:1 — every journal append fails. Checkpointing
  #    degrades (reported), the sweep itself is untouched, and the
  #    clean-exit snapshot still captures the full cache.
  set(DIR ${WORK_DIR}/persist-appendfail)
  file(REMOVE_RECURSE ${DIR})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env THISTLE_FAULT=persist.write-fail:1
            ${TOOL} ${NETWORK} --cache-dir ${DIR}
            --trace-json ${DIR}/report.json
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "append-fail run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  if(NOT OUT MATCHES "persist: warning: .*append")
    message(FATAL_ERROR "append-fail run: failures not reported\n${OUT}")
  endif()
  if(NOT EXISTS ${DIR}/gpcache.snap)
    message(FATAL_ERROR "append-fail run: compaction failed")
  endif()
  file(READ ${DIR}/report.json JSON)
  if(JSON MATCHES "\"append_failures\": 0,")
    message(FATAL_ERROR
      "append-fail run: report claims clean checkpointing\n${JSON}")
  endif()
  strip_accounting(OUT "${OUT}")
  if(NOT OUT STREQUAL "${BASE_OUT}")
    message(FATAL_ERROR
      "append failures changed the results\n"
      "---- baseline ----\n${BASE_OUT}\n---- degraded ----\n${OUT}")
  endif()

else()
  message(FATAL_ERROR "unknown CHECK '${CHECK}'")
endif()
