//===- thistle/ExprGen.h - Algorithm 1: symbolic DF/DV ----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Algorithm 1: the compile-time generation of
/// symbolic data-footprint (DF) and data-volume (DV) expressions for each
/// tensor at each tiling level, as functions of per-level trip-count
/// variables. Trip counts are named after the paper's convention
/// (section III): r_<it> at the register level, q_<it> at the per-PE
/// temporal level, p_<it> at the spatial level and s_<it> at the
/// DRAM-temporal level, with N_<it> = s*p*q*r.
///
/// The register-level footprint DF^0 handles strided multi-iterator
/// references: a dimension indexed by sum_t stride_t * it_t has symbolic
/// extent sum_t stride_t * r_t - (sum_t stride_t - 1), e.g. In's last
/// dimension (2*w + s) yields 2*r_w + r_s - 2 (section III-A).
///
/// Read-write tensors carry the paper's factor 2 in their DV (both read
/// and write traffic, Table I).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_EXPRGEN_H
#define THISTLE_THISTLE_EXPRGEN_H

#include "expr/FactoredExpr.h"
#include "ir/Mapping.h"
#include "ir/Problem.h"

#include <array>
#include <functional>
#include <vector>

namespace thistle {

/// The DF/DV pair produced by one run of Algorithm 1.
struct LevelExprs {
  FactoredExpr DF; ///< Data footprint at this tiling level.
  FactoredExpr DV; ///< Data access volume for copies into this level.
};

/// All symbolic expressions the GP builder needs for one tensor, for one
/// (per-PE permutation, DRAM permutation) choice.
struct TensorSymbolicModel {
  FactoredExpr RegFootprint;  ///< DF^0 over r_* variables.
  FactoredExpr SramFootprint; ///< SRAM-tile footprint (r, q, p variables).
  /// SRAM<->register volume: Algorithm 1 at the per-PE level, multiplied
  /// by present spatial trip counts (multicast collapse, Eq. 2) and by
  /// every DRAM-level trip count. Includes the factor 2 for read-write.
  FactoredExpr DvSramReg;
  /// DRAM<->SRAM volume: Algorithm 1 at the DRAM level starting from the
  /// SRAM footprint. Includes the factor 2 for read-write.
  FactoredExpr DvDram;
};

/// Generates trip-count variables and runs Algorithm 1.
class ExprGen {
public:
  /// Interns all trip-count variables for \p Prob into \p Vars.
  ExprGen(const Problem &Prob, VarTable &Vars);

  /// The trip-count variable of \p Iter at \p Level.
  VarId tripVar(TileLevel Level, unsigned Iter) const {
    return TripVars[static_cast<unsigned>(Level)][Iter];
  }

  /// Variable name, e.g. "q_h" (the paper's notation).
  static std::string tripVarName(TileLevel Level, const std::string &Iter);

  /// DF^0: the register-level footprint of tensor \p TensorIdx.
  FactoredExpr registerFootprint(unsigned TensorIdx) const;

  /// Observer invoked after processing each loop of Algorithm 1's walk
  /// (used to reproduce Table I step by step).
  using StepObserver =
      std::function<void(unsigned Iter, const LevelExprs &State)>;

  /// Algorithm 1 for tensor \p TensorIdx at temporal level \p Level:
  /// \p Perm is the outer-to-inner order of this level's tile loops
  /// (tiled iterators only) and \p DfPrev the footprint at the next lower
  /// level. The replace() step substitutes the lower level's trip-count
  /// variable v_prev with v_level * v_prev.
  LevelExprs constructExpr(unsigned TensorIdx,
                           const std::vector<unsigned> &Perm, TileLevel Level,
                           const FactoredExpr &DfPrev,
                           const StepObserver &Observer = nullptr) const;

  /// Lifts a footprint across the spatial level: present iterators get
  /// their q variable replaced by p*q (the SRAM tile spans the PE grid).
  FactoredExpr spatialFootprint(unsigned TensorIdx,
                                const FactoredExpr &DfPe) const;

  /// Builds the full symbolic model of one tensor for the given per-PE
  /// and DRAM-level permutations (outer-to-inner, tiled iterators only;
  /// iterators not listed are untiled at that level).
  TensorSymbolicModel buildTensorModel(unsigned TensorIdx,
                                       const std::vector<unsigned> &PePerm,
                                       const std::vector<unsigned> &DramPerm)
      const;

  const Problem &problem() const { return Prob; }

private:
  const Problem &Prob;
  VarTable &Vars;
  std::array<std::vector<VarId>, NumTileLevels> TripVars;

  /// The variable of the tiling level immediately below \p Level for
  /// substitution chains (q level substitutes r, spatial substitutes q,
  /// DRAM level substitutes p).
  VarId innerVar(TileLevel Level, unsigned Iter) const;
};

} // namespace thistle

#endif // THISTLE_THISTLE_EXPRGEN_H
