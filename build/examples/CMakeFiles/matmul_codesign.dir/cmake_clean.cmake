file(REMOVE_RECURSE
  "CMakeFiles/matmul_codesign.dir/matmul_codesign.cpp.o"
  "CMakeFiles/matmul_codesign.dir/matmul_codesign.cpp.o.d"
  "matmul_codesign"
  "matmul_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
