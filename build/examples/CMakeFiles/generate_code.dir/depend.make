# Empty dependencies file for generate_code.
# This may be replaced when dependencies are built.
