//===- tests/PropertyTest.cpp - Randomized property tests -----------------===//
//
// Cross-cutting randomized invariants: algebraic laws of the expression
// module, global optimality of the GP solver against grid search,
// model/oracle agreement on irregular problems (batch > 1, rectangular
// images, mixed strides), and evaluator consistency.
//
//===----------------------------------------------------------------------===//

#include "expr/FactoredExpr.h"
#include "ir/Builders.h"
#include "nestmodel/Evaluator.h"
#include "nestmodel/NestAnalysis.h"
#include "sim/TiledLoopSim.h"
#include "solver/GpSolver.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace thistle;

namespace {

/// Random signomial over \p Vars with \p Terms monomials.
Signomial randomSignomial(Rng &R, unsigned NumVars, unsigned Terms,
                          bool AllowNegative) {
  Signomial S;
  for (unsigned T = 0; T < Terms; ++T) {
    double Coeff = 0.25 + 2.0 * R.nextDouble();
    if (AllowNegative && R.nextDouble() < 0.3)
      Coeff = -Coeff;
    Monomial M(Coeff);
    for (unsigned V = 0; V < NumVars; ++V)
      if (R.nextDouble() < 0.5)
        M = M * Monomial::variable(V, static_cast<double>(R.nextIndex(3)) -
                                          1.0);
    S += Signomial(M);
  }
  return S;
}

Assignment randomAssignment(Rng &R, unsigned NumVars) {
  Assignment A(NumVars);
  for (double &V : A)
    V = 0.5 + 3.0 * R.nextDouble();
  return A;
}

} // namespace

TEST(ExprProperties, RingLawsHoldNumerically) {
  Rng R(101);
  const unsigned NumVars = 4;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Signomial A = randomSignomial(R, NumVars, 3, true);
    Signomial B = randomSignomial(R, NumVars, 3, true);
    Signomial C = randomSignomial(R, NumVars, 2, true);
    Assignment X = randomAssignment(R, NumVars);
    double Av = A.evaluate(X), Bv = B.evaluate(X), Cv = C.evaluate(X);
    // Commutativity and distributivity.
    EXPECT_NEAR((A + B).evaluate(X), Av + Bv, 1e-9 * (1 + std::abs(Av + Bv)));
    EXPECT_NEAR((A * B).evaluate(X), Av * Bv, 1e-9 * (1 + std::abs(Av * Bv)));
    double Lhs = (A * (B + C)).evaluate(X);
    double Rhs = Av * (Bv + Cv);
    EXPECT_NEAR(Lhs, Rhs, 1e-8 * (1 + std::abs(Rhs)));
  }
}

TEST(ExprProperties, SubstitutionIsEvaluationHomomorphism) {
  // Substituting v := m and then evaluating equals evaluating with the
  // variable bound to m's value.
  Rng R(103);
  const unsigned NumVars = 4;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Signomial S = randomSignomial(R, NumVars, 4, true);
    VarId V = static_cast<VarId>(R.nextIndex(NumVars));
    Monomial Repl =
        Monomial::variable((V + 1) % NumVars, 1.0, 0.5 + R.nextDouble());
    Assignment X = randomAssignment(R, NumVars);
    Assignment XPrime = X;
    XPrime[V] = Repl.evaluate(X);
    EXPECT_NEAR(S.substituted(V, Repl).evaluate(X), S.evaluate(XPrime),
                1e-8 * (1 + std::abs(S.evaluate(XPrime))));
  }
}

TEST(ExprProperties, UpperBoundsDominateOnPositiveOrthant) {
  // Both halo bounds dominate the exact signomial wherever all
  // variables are >= 1 (the GP domain).
  Rng R(105);
  for (int Trial = 0; Trial < 60; ++Trial) {
    // Halo-shaped factor: positive variable terms minus a constant that
    // keeps the factor positive at the all-ones corner.
    FactoredExpr E;
    unsigned NumVars = 3;
    Signomial F;
    double CoeffSum = 0.0;
    for (unsigned V = 0; V < NumVars; ++V) {
      double C = 1.0 + R.nextIndex(3);
      F += Signomial(Monomial::variable(V, 1.0, C));
      CoeffSum += C;
    }
    F += Signomial::constant(-(CoeffSum - 1.0));
    E.pushFactor(F);

    Assignment X(NumVars);
    for (double &V : X)
      V = 1.0 + 4.0 * R.nextDouble();
    double Exact = E.evaluate(X);
    EXPECT_GE(E.posynomialUpperBound().evaluate(X), Exact - 1e-9);
    EXPECT_GE(E.monomialProductUpperBound().evaluate(X), Exact - 1e-9);
  }
}

TEST(SolverProperties, MatchesGridSearchOnRandom2DPrograms) {
  // Random 2-variable GPs: the interior-point optimum must not be beaten
  // by a fine log-space grid over the box [1, 32]^2.
  Rng R(107);
  for (int Trial = 0; Trial < 15; ++Trial) {
    GpProblem Gp;
    VarId X = Gp.addVariable("x");
    VarId Y = Gp.addVariable("y");
    Gp.addVariableBounds(X, 32.0);
    Gp.addVariableBounds(Y, 32.0);
    // Random posynomial objective with mixed-sign exponents.
    Posynomial Obj;
    for (int T = 0; T < 3; ++T) {
      double Ex = static_cast<double>(R.nextIndex(5)) - 2.0;
      double Ey = static_cast<double>(R.nextIndex(5)) - 2.0;
      Obj += Posynomial(Monomial::variable(X, Ex, 0.5 + R.nextDouble()) *
                        Monomial::variable(Y, Ey));
    }
    // A random coupling constraint x^a y^b <= c with c keeping (1,1)
    // feasible.
    double Ax = 1.0 + R.nextIndex(2), Ay = 1.0 + R.nextIndex(2);
    double Cap = 4.0 + 60.0 * R.nextDouble();
    Gp.addUpperBound(
        Posynomial(Monomial::variable(X, Ax) * Monomial::variable(Y, Ay)),
        Cap, "cap");
    Gp.setObjective(Obj);

    GpSolution S = solveGp(Gp);
    ASSERT_TRUE(S.Feasible) << "trial " << Trial;

    double GridBest = std::numeric_limits<double>::infinity();
    for (int I = 0; I <= 60; ++I)
      for (int J = 0; J <= 60; ++J) {
        Assignment A = {std::pow(32.0, I / 60.0),
                        std::pow(32.0, J / 60.0)};
        if (std::pow(A[0], Ax) * std::pow(A[1], Ay) > Cap)
          continue;
        GridBest = std::min(GridBest, Obj.evaluate(A));
      }
    EXPECT_LE(S.Objective, GridBest * (1.0 + 1e-3)) << "trial " << Trial;
  }
}

TEST(SolverProperties, TighterToleranceNeverWorsens) {
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addVariableBounds(X, 100.0);
  Gp.addVariableBounds(Y, 100.0);
  Gp.addUpperBound(
      Posynomial(Monomial::variable(X) * Monomial::variable(Y)), 50.0);
  Gp.setObjective(Posynomial(Monomial::variable(X, -1.0, 40.0)) +
                  Posynomial(Monomial::variable(Y, -1.0, 90.0)) +
                  Posynomial(Monomial::variable(X) * Monomial::variable(Y)));
  GpSolverOptions Loose, Tight;
  Loose.Tolerance = 1e-3;
  Tight.Tolerance = 1e-9;
  GpSolution A = solveGp(Gp, Loose);
  GpSolution B = solveGp(Gp, Tight);
  ASSERT_TRUE(A.Feasible);
  ASSERT_TRUE(B.Feasible);
  EXPECT_LE(B.Objective, A.Objective * (1.0 + 1e-6));
}

TEST(ModelProperties, BatchedConvMatchesOracle) {
  ConvLayer L;
  L.N = 3; // Batch > 1 exercises the n iterator everywhere.
  L.K = 2;
  L.C = 2;
  L.Hin = 5;
  L.Win = 4;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  Rng R(109);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Mapping M;
    M.Factors.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I) {
      std::int64_t Extent = P.iterators()[I].Extent;
      std::int64_t RegF = R.pick(divisorsOf(Extent));
      std::int64_t Rest = Extent / RegF;
      std::int64_t SpatF = R.pick(divisorsOf(Rest));
      Rest /= SpatF;
      std::int64_t PeF = R.pick(divisorsOf(Rest));
      M.factor(I, TileLevel::Register) = RegF;
      M.factor(I, TileLevel::Spatial) = SpatF;
      M.factor(I, TileLevel::PeTemporal) = PeF;
      M.factor(I, TileLevel::DramTemporal) = Rest / PeF;
    }
    M.DramPerm.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I)
      M.DramPerm[I] = I;
    M.PePerm = M.DramPerm;
    R.shuffle(M.DramPerm);
    R.shuffle(M.PePerm);
    ASSERT_TRUE(M.validate(P).empty());

    NestProfile Model = analyzeNest(P, M);
    SimResult Oracle = simulateTiledNest(P, M);
    for (std::size_t T = 0; T < P.tensors().size(); ++T) {
      SCOPED_TRACE("batched trial " + std::to_string(Trial));
      EXPECT_EQ(Model.PerTensor[T].DramToSram,
                Oracle.PerTensor[T].DramToSram);
      EXPECT_EQ(Model.PerTensor[T].SramToReg,
                Oracle.PerTensor[T].SramToReg);
    }
  }
}

TEST(ModelProperties, MixedStrideRectangularConvMatchesOracle) {
  ConvLayer L;
  L.K = 2;
  L.C = 3;
  L.Hin = 9;
  L.Win = 16;
  L.R = 3;
  L.S = 1;
  L.StrideX = 1;
  L.StrideY = 2; // Asymmetric strides and kernel.
  Problem P = makeConvProblem(L);
  Rng R(111);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Mapping M;
    M.Factors.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I) {
      std::int64_t Extent = P.iterators()[I].Extent;
      std::int64_t RegF = R.pick(divisorsOf(Extent));
      std::int64_t Rest = Extent / RegF;
      std::int64_t PeF = R.pick(divisorsOf(Rest));
      M.factor(I, TileLevel::Register) = RegF;
      M.factor(I, TileLevel::Spatial) = 1;
      M.factor(I, TileLevel::PeTemporal) = PeF;
      M.factor(I, TileLevel::DramTemporal) = Rest / PeF;
    }
    M.DramPerm.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I)
      M.DramPerm[I] = I;
    M.PePerm = M.DramPerm;
    R.shuffle(M.DramPerm);
    R.shuffle(M.PePerm);
    NestProfile Model = analyzeNest(P, M);
    SimResult Oracle = simulateTiledNest(P, M);
    for (std::size_t T = 0; T < P.tensors().size(); ++T) {
      SCOPED_TRACE("mixed trial " + std::to_string(Trial));
      EXPECT_EQ(Model.PerTensor[T].DramToSram,
                Oracle.PerTensor[T].DramToSram);
      EXPECT_EQ(Model.PerTensor[T].SramToReg,
                Oracle.PerTensor[T].SramToReg);
    }
  }
}

TEST(ModelProperties, EvaluatorMonotoneInArchitectureGenerosity) {
  // Growing every capacity can only keep a legal mapping legal, and the
  // energy changes only through the per-access laws.
  Problem P = makeMatmulProblem(16, 16, 16);
  Mapping M = Mapping::untiled(P);
  EnergyModel E(TechParams::cgo45nm());
  ArchConfig Small;
  Small.NumPEs = 4;
  Small.RegWordsPerPE = 1024;
  Small.SramWords = 2048;
  ArchConfig Big = Small;
  Big.NumPEs = 64;
  Big.RegWordsPerPE = 4096;
  Big.SramWords = 65536;
  EvalResult RS = evaluateMapping(P, M, Small, E);
  EvalResult RB = evaluateMapping(P, M, Big, E);
  EXPECT_TRUE(!RS.Legal || RB.Legal);
  // Bigger register files make each access more expensive (Eq. 4).
  EXPECT_GT(RB.EnergyPj, RS.EnergyPj);
}
