//===- thistle/ExprGen.cpp - Algorithm 1: symbolic DF/DV ------------------===//

#include "thistle/ExprGen.h"

#include <cassert>

using namespace thistle;

std::string ExprGen::tripVarName(TileLevel Level, const std::string &Iter) {
  switch (Level) {
  case TileLevel::DramTemporal:
    return "s_" + Iter;
  case TileLevel::Spatial:
    return "p_" + Iter;
  case TileLevel::PeTemporal:
    return "q_" + Iter;
  case TileLevel::Register:
    return "r_" + Iter;
  }
  assert(false && "unknown tile level");
  return "";
}

ExprGen::ExprGen(const Problem &Prob, VarTable &Vars)
    : Prob(Prob), Vars(Vars) {
  for (unsigned L = 0; L < NumTileLevels; ++L) {
    TripVars[L].reserve(Prob.numIterators());
    for (const Iterator &It : Prob.iterators())
      TripVars[L].push_back(
          Vars.intern(tripVarName(static_cast<TileLevel>(L), It.Name)));
  }
}

VarId ExprGen::innerVar(TileLevel Level, unsigned Iter) const {
  switch (Level) {
  case TileLevel::DramTemporal:
    return tripVar(TileLevel::Spatial, Iter);
  case TileLevel::Spatial:
    return tripVar(TileLevel::PeTemporal, Iter);
  case TileLevel::PeTemporal:
    return tripVar(TileLevel::Register, Iter);
  case TileLevel::Register:
    break;
  }
  assert(false && "the register level has no inner level");
  return 0;
}

FactoredExpr ExprGen::registerFootprint(unsigned TensorIdx) const {
  const Tensor &T = Prob.tensors()[TensorIdx];
  FactoredExpr DF;
  for (const DimRef &D : T.Dims) {
    // Extent of sum_t stride_t * it_t over a tile of r_t points per
    // iterator: sum_t stride_t * r_t - (sum_t stride_t - 1).
    Signomial Extent;
    std::int64_t StrideSum = 0;
    for (const DimRef::Term &Term : D.Terms) {
      Extent += Signomial(Monomial::variable(
          tripVar(TileLevel::Register, Term.Iter), 1.0,
          static_cast<double>(Term.Stride)));
      StrideSum += Term.Stride;
    }
    if (StrideSum != 1)
      Extent += Signomial::constant(-static_cast<double>(StrideSum - 1));
    DF.pushFactor(Extent);
  }
  return DF;
}

LevelExprs ExprGen::constructExpr(unsigned TensorIdx,
                                  const std::vector<unsigned> &Perm,
                                  TileLevel Level, const FactoredExpr &DfPrev,
                                  const StepObserver &Observer) const {
  const Tensor &T = Prob.tensors()[TensorIdx];
  LevelExprs State;
  State.DF = DfPrev;
  State.DV = DfPrev;
  // Read-write tensors move data both ways; the paper folds the factor 2
  // into DV (Table I).
  if (T.ReadWrite)
    State.DV.multiplyPrefix(Monomial(2.0));

  bool CanHoist = true;
  // Inner-to-outer traversal of the level's tile loops (Algorithm 1).
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    VarId LevelVar = tripVar(Level, It);
    VarId PrevVar = innerVar(Level, It);
    Monomial Repl =
        Monomial::variable(LevelVar) * Monomial::variable(PrevVar);
    if (CanHoist) {
      if (T.usesIter(It)) {
        // Innermost present iterator: replace in both DF and DV.
        CanHoist = false;
        State.DF = State.DF.substituted(PrevVar, Repl);
        State.DV = State.DV.substituted(PrevVar, Repl);
      }
      // Absent below the hoist point: no change to DF or DV.
    } else {
      if (T.usesIter(It))
        State.DF = State.DF.substituted(PrevVar, Repl);
      // Above the hoist point every loop multiplies the volume.
      State.DV.multiplyPrefix(Monomial::variable(LevelVar));
    }
    if (Observer)
      Observer(It, State);
  }
  return State;
}

FactoredExpr ExprGen::spatialFootprint(unsigned TensorIdx,
                                       const FactoredExpr &DfPe) const {
  const Tensor &T = Prob.tensors()[TensorIdx];
  FactoredExpr DF = DfPe;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    if (!T.usesIter(I))
      continue;
    VarId QVar = tripVar(TileLevel::PeTemporal, I);
    VarId RVar = tripVar(TileLevel::Register, I);
    Monomial PTimes = Monomial::variable(tripVar(TileLevel::Spatial, I));
    // The per-PE footprint contains q_i only if the iterator was tiled at
    // the per-PE level; otherwise extend its register variable.
    if (DF.mentions(QVar))
      DF = DF.substituted(QVar, PTimes * Monomial::variable(QVar));
    else
      DF = DF.substituted(RVar, PTimes * Monomial::variable(RVar));
  }
  return DF;
}

TensorSymbolicModel
ExprGen::buildTensorModel(unsigned TensorIdx,
                          const std::vector<unsigned> &PePerm,
                          const std::vector<unsigned> &DramPerm) const {
  const Tensor &T = Prob.tensors()[TensorIdx];
  TensorSymbolicModel Model;
  Model.RegFootprint = registerFootprint(TensorIdx);

  // Per-PE temporal level: DF^1 and the within-PE part of DV(S<->R).
  LevelExprs Pe = constructExpr(TensorIdx, PePerm, TileLevel::PeTemporal,
                                Model.RegFootprint);

  // SRAM<->register volume: multicast collapses absent spatial iterators
  // (Eq. 2); every DRAM-level trip count multiplies (per-level model).
  Model.DvSramReg = Pe.DV;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    if (T.usesIter(I))
      Model.DvSramReg.multiplyPrefix(
          Monomial::variable(tripVar(TileLevel::Spatial, I)));
    Model.DvSramReg.multiplyPrefix(
        Monomial::variable(tripVar(TileLevel::DramTemporal, I)));
  }

  // SRAM footprint: the tile spans the PE grid along present iterators.
  Model.SramFootprint = spatialFootprint(TensorIdx, Pe.DF);

  // DRAM level: Algorithm 1 once more, starting from the SRAM footprint.
  LevelExprs Dram = constructExpr(TensorIdx, DramPerm,
                                  TileLevel::DramTemporal,
                                  Model.SramFootprint);
  Model.DvDram = Dram.DV;
  return Model;
}
