//===- tests/SimTest.cpp - sim/ oracle unit tests -------------------------===//
//
// Hand-derived data-movement counts for small mappings, including the
// paper's Eq. 1 / Eq. 2 matrix-multiplication closed forms.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/CostEvaluator.h"
#include "sim/TiledLoopSim.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

/// Matmul mapping with uniform per-level factors and the Fig. 1 loop
/// orders: DRAM level <i, k, j> outer-to-inner, PE level <i, j, k>.
Mapping matmulMapping(const Problem &P, std::int64_t R, std::int64_t Q,
                      std::int64_t Sp, std::int64_t S) {
  Mapping M = Mapping::untiled(P);
  for (unsigned I = 0; I < 3; ++I) {
    M.factor(I, TileLevel::Register) = R;
    M.factor(I, TileLevel::PeTemporal) = Q;
    M.factor(I, TileLevel::Spatial) = Sp;
    M.factor(I, TileLevel::DramTemporal) = S;
  }
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  M.DramPerm = {Ii, Ik, Ij};
  M.PePerm = {Ii, Ij, Ik};
  return M;
}

} // namespace

TEST(TiledLoopSim, UntiledMovesEachTensorOnce) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  SimResult R = simulateTiledNest(P, M);
  // Everything fits in one tile: each tensor loaded once, C stored once.
  EXPECT_EQ(R.PerTensor[0].DramToSram, 16); // C
  EXPECT_EQ(R.PerTensor[0].SramToDram, 16);
  EXPECT_EQ(R.PerTensor[1].DramToSram, 16); // A
  EXPECT_EQ(R.PerTensor[1].SramToDram, 0);
  EXPECT_EQ(R.PerTensor[2].DramToSram, 16); // B
  EXPECT_EQ(R.PerTensor[2].SramToDram, 0);
}

TEST(TiledLoopSim, MatmulEq1DramVolumes) {
  // N = 4, SRAM tiles 2x2x2 (r=2, s=2), DRAM order <i, k, j>.
  // Eq. 1: DVol_A = Ni*Nk, DVol_B = Ni*Nj*Nk/Si, DVol_C = Ni*Nj*Nk/Sk.
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = matmulMapping(P, /*R=*/2, /*Q=*/1, /*Sp=*/1, /*S=*/2);
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[1].DramToSram, 4 * 4);         // A: Ni*Nk.
  EXPECT_EQ(R.PerTensor[2].DramToSram, 4 * 4 * 4 / 2); // B: NiNjNk/Si.
  EXPECT_EQ(R.PerTensor[0].DramToSram, 4 * 4 * 4 / 2); // C: NiNjNk/Sk.
  EXPECT_EQ(R.PerTensor[0].SramToDram, 4 * 4 * 4 / 2);
}

TEST(TiledLoopSim, MatmulEq2RegisterVolumes) {
  // Same tiling; q = p = 1, so SRAM->RF volume per Eq. 2 with P = 1:
  // DVol_A = NiNjNk / (Rj * Pj) = 64 / 2 = 32, same for B and C.
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = matmulMapping(P, 2, 1, 1, 2);
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[1].SramToReg, 32); // A.
  EXPECT_EQ(R.PerTensor[2].SramToReg, 32); // B.
  EXPECT_EQ(R.PerTensor[0].SramToReg, 32); // C reads...
  EXPECT_EQ(R.PerTensor[0].RegToSram, 32); // ...and writes.
}

TEST(TiledLoopSim, SpatialMulticastCollapsesAbsentIterators) {
  // 2x2 spatial grid on a 4x4x4 matmul, everything else untiled: A is
  // absent in j, so the p_j = 2 PEs sharing a row receive A's 2x4 tile by
  // multicast; A's SRAM reads must not scale with p_j. Eq. 2 closed form:
  // DVol_A = NiNjNk / (Rj * Pj) = 64 / 4 = 16.
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j");
  M.factor(Ii, TileLevel::Register) = 2;
  M.factor(Ii, TileLevel::Spatial) = 2;
  M.factor(Ij, TileLevel::Register) = 2;
  M.factor(Ij, TileLevel::Spatial) = 2;
  ASSERT_TRUE(M.validate(P).empty());
  ASSERT_EQ(M.numPEsUsed(), 4);
  SimResult R = simulateTiledNest(P, M);

  // A: 2x4 register tile, p_i = 2 distinct copies, p_j multicast.
  EXPECT_EQ(R.PerTensor[1].SramToReg, 2 * (2 * 4));
  // B symmetric (multicast across p_i).
  EXPECT_EQ(R.PerTensor[2].SramToReg, 2 * (2 * 4));
  // C: present in both spatial dims: 4 PEs x 2x2 tile.
  EXPECT_EQ(R.PerTensor[0].SramToReg, 4 * 4);
  EXPECT_EQ(R.PerTensor[0].RegToSram, 4 * 4);
}

TEST(TiledLoopSim, HoistingSkipsInnermostAbsentLoop) {
  // DRAM order <i, k, j> with j innermost: A (absent in j) must not be
  // re-loaded across the j loop.
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = matmulMapping(P, 1, 1, 1, 4); // SRAM tiles of 1x1x1.
  SimResult R = simulateTiledNest(P, M);
  // A: loaded once per (i, k): 16 words total; union streaming along k.
  EXPECT_EQ(R.PerTensor[1].DramToSram, 16);
  // B: re-loaded for every (i, k, j): 64.
  EXPECT_EQ(R.PerTensor[2].DramToSram, 64);
}

TEST(TiledLoopSim, ConvHaloIsLoadedOnceWhenStreaming) {
  // 1D-ish conv: C=K=1, H=8, R=3 (halo 2). Stream h at the DRAM level
  // with tiles of 2: the halo rows shared by consecutive tiles must be
  // loaded once, so In traffic is the union 8 + 3 - 1 = 10, not 4*4.
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 8;
  L.Win = 1;
  L.R = 3;
  L.S = 1;
  Problem P = makeConvProblem(L);
  Mapping M = Mapping::untiled(P);
  unsigned H = P.iteratorIndex("h");
  M.factor(H, TileLevel::Register) = 2;
  M.factor(H, TileLevel::DramTemporal) = 4;
  ASSERT_TRUE(M.validate(P).empty());
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[1].DramToSram, 10); // In: 4 + 3*(2*1) halo union.
  EXPECT_EQ(R.PerTensor[0].DramToSram, 8);  // Out: each tile once.
  EXPECT_EQ(R.PerTensor[2].DramToSram, 3);  // Ker: hoisted, loaded once.
}

TEST(TiledLoopSim, StridedConvLeavesHolesBetweenTiles) {
  // 1x1 kernel, stride 2: consecutive h-tiles touch disjoint input rows
  // with holes in between; the union is the sum of the tile boxes.
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 16;
  L.Win = 1;
  L.R = 1;
  L.S = 1;
  L.StrideX = 2;
  Problem P = makeConvProblem(L);
  ASSERT_EQ(P.iterators()[P.iteratorIndex("h")].Extent, 8);
  Mapping M = Mapping::untiled(P);
  unsigned H = P.iteratorIndex("h");
  M.factor(H, TileLevel::Register) = 2;
  M.factor(H, TileLevel::DramTemporal) = 4;
  SimResult R = simulateTiledNest(P, M);
  // Each 2-point tile covers a dense box of 2*(2-1)+1 = 3 input rows;
  // 4 disjoint tiles -> 12 words (the dense hull 2*8-1 = 15 would be an
  // overcount).
  EXPECT_EQ(R.PerTensor[1].DramToSram, 12);
}

TEST(TiledLoopSim, DilatedConvCountsDenseBoxesHolesIncluded) {
  // The pinned dense-box convention on a dilated projection (TileWalk.h):
  // a 2-tap kernel at dilation 3, stride 4, so each 1-output-row tile
  // spans a dense box of 3*(2-1)+1 = 4 input rows of which only 2 are
  // real taps. The 2 holes per tile are counted as resident: 4 disjoint
  // tiles move 4*4 = 16 words, where an exact point count would be 8.
  // Both analytical backends count the same 16 — that equality is what
  // the convention buys (DilatedSimMatchesAnalyticalNestModel below).
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 16;
  L.Win = 1;
  L.R = 2;
  L.S = 1;
  L.StrideX = 4;
  L.DilationX = 3;
  Problem P = makeConvProblem(L);
  ASSERT_EQ(P.iterators()[P.iteratorIndex("h")].Extent, 4);
  Mapping M = Mapping::untiled(P);
  unsigned H = P.iteratorIndex("h");
  M.factor(H, TileLevel::Register) = 1;
  M.factor(H, TileLevel::DramTemporal) = 4;
  ASSERT_TRUE(M.validate(P).empty());
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[1].DramToSram, 16);
  EXPECT_EQ(R.PerTensor[0].DramToSram, 4); // Out: one row per tile.
}

TEST(TiledLoopSim, DilatedSimMatchesAnalyticalNestModel) {
  // Satellite regression: the analytical nest walk reproduces the
  // simulator to the integer on the dilated layer above (and a 2D one),
  // holes and all.
  for (int TwoD = 0; TwoD < 2; ++TwoD) {
    ConvLayer L;
    L.K = TwoD ? 4 : 1;
    L.C = TwoD ? 2 : 1;
    L.Hin = 16;
    L.Win = TwoD ? 10 : 1;
    L.R = 2;
    L.S = TwoD ? 3 : 1;
    L.StrideX = 4;
    L.DilationX = 3;
    L.DilationY = TwoD ? 2 : 1;
    Problem P = makeConvProblem(L);
    Mapping M = Mapping::untiled(P);
    unsigned H = P.iteratorIndex("h");
    M.factor(H, TileLevel::Register) = 1;
    M.factor(H, TileLevel::DramTemporal) = 4;
    ASSERT_TRUE(M.validate(P).empty());
    Hierarchy Shape = Hierarchy::classic3Shape();
    MultiProfile Sim = simulatedProfile(P, M);
    MultiProfile Nest = analyzeMultiNest(P, Shape,
                                         MultiMapping::fromMapping(P, M));
    ProfileDivergence Div = compareProfiles(P, Shape, Nest, Sim);
    EXPECT_FALSE(Div.diverged())
        << (Div.Samples.empty() ? "no sample" : Div.Samples[0].Counter);
  }
}

TEST(TiledLoopSim, TransposedConvScatterIsLoadStoreSymmetric) {
  // Transposed conv: Out carries the strided 2-term projection and is
  // read-write. Overlapping scatter tiles (box 5, shift 4) must load and
  // store symmetrically, totalling the full 2*(6-1)+2+1 = 13-row output.
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 6;
  L.Win = 1;
  L.R = 3;
  L.S = 1;
  L.StrideX = 2;
  L.Transposed = true;
  Problem P = makeConvProblem(L);
  Mapping M = Mapping::untiled(P);
  unsigned H = P.iteratorIndex("h");
  M.factor(H, TileLevel::Register) = 2;
  M.factor(H, TileLevel::DramTemporal) = 3;
  ASSERT_TRUE(M.validate(P).empty());
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[0].DramToSram, 13); // Out: 5 + 4 + 4.
  EXPECT_EQ(R.PerTensor[0].SramToDram, 13); // Symmetric write-back.
  EXPECT_EQ(R.PerTensor[1].DramToSram, 6);  // In: each row once.
}

TEST(TiledLoopSim, ReadWriteSymmetry) {
  // For read-write tensors, total loads equal total stores (telescoping
  // eviction + final flush).
  Problem P = makeMatmulProblem(8, 4, 2);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Register) = 2;
  M.factor(0, TileLevel::DramTemporal) = 4;
  M.factor(1, TileLevel::PeTemporal) = 2;
  M.factor(1, TileLevel::Register) = 2;
  ASSERT_TRUE(M.validate(P).empty());
  SimResult R = simulateTiledNest(P, M);
  EXPECT_EQ(R.PerTensor[0].DramToSram, R.PerTensor[0].SramToDram);
  EXPECT_EQ(R.PerTensor[0].SramToReg, R.PerTensor[0].RegToSram);
  // Read-only tensors never write back.
  EXPECT_EQ(R.PerTensor[1].SramToDram, 0);
  EXPECT_EQ(R.PerTensor[1].RegToSram, 0);
}

TEST(TiledLoopSim, TotalsAggregate) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = matmulMapping(P, 2, 1, 1, 2);
  SimResult R = simulateTiledNest(P, M);
  std::int64_t Dram = 0, SramReg = 0;
  for (const SimTensorTraffic &T : R.PerTensor) {
    Dram += T.DramToSram + T.SramToDram;
    SramReg += T.SramToReg + T.RegToSram;
  }
  EXPECT_EQ(R.totalDramTraffic(), Dram);
  EXPECT_EQ(R.totalSramRegTraffic(), SramReg);
}
