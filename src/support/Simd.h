//===- support/Simd.h - Fixed-width portable SIMD pack ----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width register abstraction in the spirit of RAJA's register
/// pattern: `Pack4` is always four doubles, whatever the instruction set.
/// The backend — AVX2 (one 256-bit register), SSE2 / NEON (two 128-bit
/// halves), or plain scalar emulation — is selected at configure time via
/// the `THISTLE_SIMD` CMake option and never changes the *meaning* of an
/// operation: every lane performs the same IEEE-754 double operation, and
/// the horizontal sum always reduces with the fixed tree
/// `(l0 + l1) + (l2 + l3)`.
///
/// This is the determinism invariant of the kernel layer (linalg/Kernels.h):
/// because the logical width and the association order are fixed properties
/// of the *kernel*, not of the selected backend, every `THISTLE_SIMD`
/// setting produces bit-identical results. The kernels translation unit is
/// compiled with `-ffp-contract=off` so the scalar backend cannot be
/// contracted into FMA behind our back (the intrinsic backends use explicit
/// mul/add and never fuse).
///
/// Only linalg/Kernels.cpp should include this header: it is the single
/// translation unit built with native vector flags, which keeps the code
/// generation of the rest of the project independent of `THISTLE_SIMD`.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_SIMD_H
#define THISTLE_SUPPORT_SIMD_H

#include <cmath>
#include <cstddef>

// Backend selection: THISTLE_SIMD=off/scalar define
// THISTLE_SIMD_FORCE_SCALAR; otherwise the best instruction set the
// compiler advertises is used. The scalar backend is always available.
#if !defined(THISTLE_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define THISTLE_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(THISTLE_SIMD_FORCE_SCALAR) && defined(__SSE2__)
#define THISTLE_SIMD_BACKEND_SSE2 1
#include <emmintrin.h>
#elif !defined(THISTLE_SIMD_FORCE_SCALAR) && defined(__ARM_NEON) &&          \
    defined(__aarch64__)
#define THISTLE_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define THISTLE_SIMD_BACKEND_SCALAR 1
#endif

namespace thistle {
namespace simd {

/// The fixed logical register width of the kernel layer, in doubles.
/// Kernels block every loop by this width regardless of the backend.
constexpr std::size_t PackWidth = 4;

#if defined(THISTLE_SIMD_BACKEND_AVX2)

struct Pack4 {
  __m256d V;
};

inline const char *backendName() { return "avx2"; }

inline Pack4 zero() { return {_mm256_setzero_pd()}; }
inline Pack4 set1(double X) { return {_mm256_set1_pd(X)}; }
inline Pack4 setLanes(double L0, double L1, double L2, double L3) {
  // _mm256_set_pd takes arguments high-to-low.
  return {_mm256_set_pd(L3, L2, L1, L0)};
}
inline Pack4 load(const double *P) { return {_mm256_loadu_pd(P)}; }
inline void store(double *P, Pack4 A) { _mm256_storeu_pd(P, A.V); }
inline Pack4 add(Pack4 A, Pack4 B) { return {_mm256_add_pd(A.V, B.V)}; }
inline Pack4 sub(Pack4 A, Pack4 B) { return {_mm256_sub_pd(A.V, B.V)}; }
inline Pack4 mul(Pack4 A, Pack4 B) { return {_mm256_mul_pd(A.V, B.V)}; }
inline Pack4 div(Pack4 A, Pack4 B) { return {_mm256_div_pd(A.V, B.V)}; }
inline Pack4 sqrt(Pack4 A) { return {_mm256_sqrt_pd(A.V)}; }

/// The fixed horizontal-sum tree (l0 + l1) + (l2 + l3).
inline double hsum(Pack4 A) {
  __m128d Lo = _mm256_castpd256_pd128(A.V);    // l0 l1
  __m128d Hi = _mm256_extractf128_pd(A.V, 1);  // l2 l3
  double S01 =
      _mm_cvtsd_f64(_mm_add_sd(Lo, _mm_unpackhi_pd(Lo, Lo)));
  double S23 =
      _mm_cvtsd_f64(_mm_add_sd(Hi, _mm_unpackhi_pd(Hi, Hi)));
  return S01 + S23;
}

#elif defined(THISTLE_SIMD_BACKEND_SSE2)

struct Pack4 {
  __m128d Lo, Hi; // lanes 0-1, lanes 2-3
};

inline const char *backendName() { return "sse2"; }

inline Pack4 zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
inline Pack4 set1(double X) { return {_mm_set1_pd(X), _mm_set1_pd(X)}; }
inline Pack4 setLanes(double L0, double L1, double L2, double L3) {
  return {_mm_set_pd(L1, L0), _mm_set_pd(L3, L2)};
}
inline Pack4 load(const double *P) {
  return {_mm_loadu_pd(P), _mm_loadu_pd(P + 2)};
}
inline void store(double *P, Pack4 A) {
  _mm_storeu_pd(P, A.Lo);
  _mm_storeu_pd(P + 2, A.Hi);
}
inline Pack4 add(Pack4 A, Pack4 B) {
  return {_mm_add_pd(A.Lo, B.Lo), _mm_add_pd(A.Hi, B.Hi)};
}
inline Pack4 sub(Pack4 A, Pack4 B) {
  return {_mm_sub_pd(A.Lo, B.Lo), _mm_sub_pd(A.Hi, B.Hi)};
}
inline Pack4 mul(Pack4 A, Pack4 B) {
  return {_mm_mul_pd(A.Lo, B.Lo), _mm_mul_pd(A.Hi, B.Hi)};
}
inline Pack4 div(Pack4 A, Pack4 B) {
  return {_mm_div_pd(A.Lo, B.Lo), _mm_div_pd(A.Hi, B.Hi)};
}
inline Pack4 sqrt(Pack4 A) { return {_mm_sqrt_pd(A.Lo), _mm_sqrt_pd(A.Hi)}; }

inline double hsum(Pack4 A) {
  double S01 =
      _mm_cvtsd_f64(_mm_add_sd(A.Lo, _mm_unpackhi_pd(A.Lo, A.Lo)));
  double S23 =
      _mm_cvtsd_f64(_mm_add_sd(A.Hi, _mm_unpackhi_pd(A.Hi, A.Hi)));
  return S01 + S23;
}

#elif defined(THISTLE_SIMD_BACKEND_NEON)

struct Pack4 {
  float64x2_t Lo, Hi; // lanes 0-1, lanes 2-3
};

inline const char *backendName() { return "neon"; }

inline Pack4 zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
inline Pack4 set1(double X) { return {vdupq_n_f64(X), vdupq_n_f64(X)}; }
inline Pack4 setLanes(double L0, double L1, double L2, double L3) {
  double Tmp[4] = {L0, L1, L2, L3};
  return {vld1q_f64(Tmp), vld1q_f64(Tmp + 2)};
}
inline Pack4 load(const double *P) {
  return {vld1q_f64(P), vld1q_f64(P + 2)};
}
inline void store(double *P, Pack4 A) {
  vst1q_f64(P, A.Lo);
  vst1q_f64(P + 2, A.Hi);
}
inline Pack4 add(Pack4 A, Pack4 B) {
  return {vaddq_f64(A.Lo, B.Lo), vaddq_f64(A.Hi, B.Hi)};
}
inline Pack4 sub(Pack4 A, Pack4 B) {
  return {vsubq_f64(A.Lo, B.Lo), vsubq_f64(A.Hi, B.Hi)};
}
inline Pack4 mul(Pack4 A, Pack4 B) {
  return {vmulq_f64(A.Lo, B.Lo), vmulq_f64(A.Hi, B.Hi)};
}
inline Pack4 div(Pack4 A, Pack4 B) {
  return {vdivq_f64(A.Lo, B.Lo), vdivq_f64(A.Hi, B.Hi)};
}
inline Pack4 sqrt(Pack4 A) {
  return {vsqrtq_f64(A.Lo), vsqrtq_f64(A.Hi)};
}

inline double hsum(Pack4 A) {
  double S01 = vgetq_lane_f64(A.Lo, 0) + vgetq_lane_f64(A.Lo, 1);
  double S23 = vgetq_lane_f64(A.Hi, 0) + vgetq_lane_f64(A.Hi, 1);
  return S01 + S23;
}

#else // scalar emulation

struct Pack4 {
  double L[4];
};

inline const char *backendName() { return "scalar"; }

inline Pack4 zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
inline Pack4 set1(double X) { return {{X, X, X, X}}; }
inline Pack4 setLanes(double L0, double L1, double L2, double L3) {
  return {{L0, L1, L2, L3}};
}
inline Pack4 load(const double *P) { return {{P[0], P[1], P[2], P[3]}}; }
inline void store(double *P, Pack4 A) {
  P[0] = A.L[0];
  P[1] = A.L[1];
  P[2] = A.L[2];
  P[3] = A.L[3];
}
inline Pack4 add(Pack4 A, Pack4 B) {
  return {{A.L[0] + B.L[0], A.L[1] + B.L[1], A.L[2] + B.L[2],
           A.L[3] + B.L[3]}};
}
inline Pack4 sub(Pack4 A, Pack4 B) {
  return {{A.L[0] - B.L[0], A.L[1] - B.L[1], A.L[2] - B.L[2],
           A.L[3] - B.L[3]}};
}
inline Pack4 mul(Pack4 A, Pack4 B) {
  return {{A.L[0] * B.L[0], A.L[1] * B.L[1], A.L[2] * B.L[2],
           A.L[3] * B.L[3]}};
}
inline Pack4 div(Pack4 A, Pack4 B) {
  return {{A.L[0] / B.L[0], A.L[1] / B.L[1], A.L[2] / B.L[2],
           A.L[3] / B.L[3]}};
}
inline Pack4 sqrt(Pack4 A) {
  return {{std::sqrt(A.L[0]), std::sqrt(A.L[1]), std::sqrt(A.L[2]),
           std::sqrt(A.L[3])}};
}

inline double hsum(Pack4 A) {
  return (A.L[0] + A.L[1]) + (A.L[2] + A.L[3]);
}

#endif

/// Extracts lane \p I (0..3). Not fast; used only on cold paths such as
/// per-lane success checks in the batched Cholesky.
inline double lane(Pack4 A, std::size_t I) {
  double Tmp[PackWidth];
  store(Tmp, A);
  return Tmp[I];
}

} // namespace simd
} // namespace thistle

#endif // THISTLE_SUPPORT_SIMD_H
