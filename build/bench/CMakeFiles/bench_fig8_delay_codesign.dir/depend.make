# Empty dependencies file for bench_fig8_delay_codesign.
# This may be replaced when dependencies are built.
