//===- examples/resnet_pipeline.cpp - Whole-pipeline co-design ------------===//
//
// The paper's single-architecture workflow (Section V-A, Fig. 6) on
// ResNet-18: co-design a per-layer optimal architecture for every conv
// stage, pick the architecture of the energy-dominant stage, re-optimize
// every layer's dataflow for that one fixed architecture, and report the
// per-layer and pipeline-total energies of all three configurations.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "support/TablePrinter.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <iostream>
#include <vector>

using namespace thistle;

int main() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  std::vector<ConvLayer> Layers = resnet18Layers();

  ThistleOptions Dataflow; // Fixed-arch dataflow optimization.
  ThistleOptions CoDesign;
  CoDesign.Mode = DesignMode::CoDesign;

  // Pass 1: Eyeriss dataflow + layer-wise co-design; find the
  // energy-dominant co-designed stage.
  std::vector<ThistleResult> Fixed, Co;
  std::size_t DominantLayer = 0;
  double DominantEnergy = -1.0;
  for (const ConvLayer &L : Layers) {
    Problem P = makeConvProblem(L);
    Fixed.push_back(optimizeLayer(P, Eyeriss, Tech, Dataflow));
    Co.push_back(optimizeLayer(P, Eyeriss, Tech, CoDesign, Budget));
    if (Co.back().Found && Co.back().Eval.EnergyPj > DominantEnergy) {
      DominantEnergy = Co.back().Eval.EnergyPj;
      DominantLayer = Co.size() - 1;
    }
  }

  ArchConfig Single = Co[DominantLayer].Arch;
  std::printf("energy-dominant stage: %s -> single architecture "
              "P=%lld R=%lld S=%lld\n\n",
              Layers[DominantLayer].Name.c_str(),
              static_cast<long long>(Single.NumPEs),
              static_cast<long long>(Single.RegWordsPerPE),
              static_cast<long long>(Single.SramWords));

  // Pass 2: dataflow optimization for the single fixed architecture.
  TablePrinter Table({"layer", "eyeriss pJ/MAC", "layer-wise pJ/MAC",
                      "single-arch pJ/MAC"});
  double TotalEyeriss = 0, TotalCo = 0, TotalSingle = 0;
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    Problem P = makeConvProblem(Layers[I]);
    ThistleResult SingleRes = optimizeLayer(P, Single, Tech, Dataflow);
    Table.addRow(
        {Layers[I].Name,
         TablePrinter::formatDouble(Fixed[I].Eval.EnergyPerMacPj, 2),
         TablePrinter::formatDouble(Co[I].Eval.EnergyPerMacPj, 2),
         SingleRes.Found
             ? TablePrinter::formatDouble(SingleRes.Eval.EnergyPerMacPj, 2)
             : std::string("-")});
    TotalEyeriss += Fixed[I].Eval.EnergyPj;
    TotalCo += Co[I].Eval.EnergyPj;
    if (SingleRes.Found)
      TotalSingle += SingleRes.Eval.EnergyPj;
  }
  Table.print(std::cout);
  std::printf("\npipeline totals: eyeriss %.1f uJ, layer-wise %.1f uJ, "
              "single arch %.1f uJ\n",
              TotalEyeriss * 1e-6, TotalCo * 1e-6, TotalSingle * 1e-6);
  return 0;
}
