//===- multilevel/MultiSim.cpp - L-level brute-force oracle ---------------===//

#include "multilevel/MultiSim.h"

#include "sim/TileWalk.h"

#include <cassert>
#include <utility>

using namespace thistle;
using namespace thistle::simdetail;

namespace {

/// One loop of the flattened enclosing nest: which iterator it advances
/// and by how many data points per step.
struct OuterLoop {
  unsigned Iter;
  std::int64_t Trip;
  std::int64_t Step;
};

} // namespace

MultiSimResult thistle::simulateMultiNest(const Problem &Prob,
                                          const Hierarchy &H,
                                          const MultiMapping &Map) {
  assert(H.validate().empty() && "hierarchy must validate");
  assert(Map.validate(Prob, H).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;
  const std::vector<std::int64_t> Slice = Map.sliceExtents(H);

  MultiSimResult Result;
  Result.Words.assign(H.numBoundaries(),
                      std::vector<std::int64_t>(Prob.tensors().size(), 0));
  Result.Loads = Result.Words;
  Result.Stores = Result.Words;

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    for (unsigned B = 0; B < H.numBoundaries(); ++B) {
      const unsigned WalkLevel = B + 1;
      const std::vector<std::int64_t> StartExt = Map.tileExtents(H, B);

      // Flatten the enclosing temporal levels, outermost level first.
      std::vector<OuterLoop> Outer;
      for (unsigned Lv = L; Lv > WalkLevel + 1;) {
        --Lv;
        std::vector<std::int64_t> StepExt = Map.tileExtents(H, Lv - 1);
        for (unsigned It : Map.Perms[Lv])
          Outer.push_back({It, Map.TempFactors[Lv][It], StepExt[It]});
      }
      std::vector<std::int64_t> OuterTrips;
      for (const OuterLoop &O : Outer)
        OuterTrips.push_back(O.Trip);

      // Spatial handling (see MultiNestAnalysis header): private
      // boundaries replicate per PE; the fan-out boundary enumerates
      // distinct (present-iterator) slices; shared boundaries carry
      // grid-wide tiles.
      std::vector<unsigned> SpatialIters;
      std::vector<std::int64_t> SpatialTrips;
      std::int64_t Replication = 1;
      if (WalkLevel == F) {
        for (unsigned I = 0; I < NumIters; ++I)
          if (T.usesIter(I)) {
            SpatialIters.push_back(I);
            SpatialTrips.push_back(Map.SpatialFactors[I]);
          }
      } else if (WalkLevel < F) {
        // Each PE performs identical (translated) traffic.
        Replication = Map.numPEsUsed();
      }

      // Trips of the walked level, in its permutation order.
      std::vector<std::int64_t> WalkTrips;
      for (unsigned It : Map.Perms[WalkLevel])
        WalkTrips.push_back(Map.TempFactors[WalkLevel][It]);

      std::int64_t TotalLoads = 0, TotalStores = 0;
      forEachStep(OuterTrips, [&](const std::vector<std::int64_t> &OIdx,
                                  std::size_t) {
        std::vector<std::int64_t> BaseOrigins(NumIters, 0);
        for (std::size_t Pos = 0; Pos < Outer.size(); ++Pos)
          BaseOrigins[Outer[Pos].Iter] += OIdx[Pos] * Outer[Pos].Step;

        forEachStep(SpatialTrips, [&](const std::vector<std::int64_t> &SIdx,
                                      std::size_t) {
          std::vector<std::int64_t> Origins = BaseOrigins;
          for (std::size_t K = 0; K < SpatialIters.size(); ++K)
            Origins[SpatialIters[K]] += SIdx[K] * Slice[SpatialIters[K]];

          BufferTracker Buf(T.ReadWrite);
          forEachStep(WalkTrips, [&](const std::vector<std::int64_t> &WIdx,
                                     std::size_t AdvancedPos) {
            std::vector<std::int64_t> TileOrigins = Origins;
            for (std::size_t Pos = 0; Pos < Map.Perms[WalkLevel].size();
                 ++Pos) {
              unsigned It = Map.Perms[WalkLevel][Pos];
              TileOrigins[It] += WIdx[Pos] * StartExt[It];
            }
            bool Continuous =
                AdvancedPos >= WalkTrips.size() ||
                isContinuousAdvance(T, Map.Perms[WalkLevel], WalkTrips,
                                    AdvancedPos);
            Buf.step(tileBox(T, TileOrigins, StartExt), Continuous);
          });
          Buf.finish();
          TotalLoads += Buf.loads();
          TotalStores += Buf.stores();
        });
      });
      Result.Loads[B][TI] = TotalLoads * Replication;
      Result.Stores[B][TI] = TotalStores * Replication;
      Result.Words[B][TI] = Result.Loads[B][TI] + Result.Stores[B][TI];
    }
  }
  return Result;
}

MultiProfile thistle::simulateMultiNestProfile(const Problem &Prob,
                                               const Hierarchy &H,
                                               const MultiMapping &Map) {
  MultiSimResult Sim = simulateMultiNest(Prob, H, Map);
  MultiProfile Profile;
  Profile.Words = std::move(Sim.Words);
  Profile.Occupancy.assign(H.numLevels(), 0);
  for (unsigned Lv = 0; Lv < H.numLevels(); ++Lv) {
    std::vector<std::int64_t> Extents = Map.tileExtents(H, Lv);
    for (const Tensor &T : Prob.tensors())
      Profile.Occupancy[Lv] += T.footprintWords(Extents);
  }
  Profile.PEsUsed = Map.numPEsUsed();
  return Profile;
}
