file(REMOVE_RECURSE
  "CMakeFiles/test_gpbuilder.dir/GpBuilderTest.cpp.o"
  "CMakeFiles/test_gpbuilder.dir/GpBuilderTest.cpp.o.d"
  "test_gpbuilder"
  "test_gpbuilder.pdb"
  "test_gpbuilder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpbuilder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
