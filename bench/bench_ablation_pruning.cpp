//===- bench/bench_ablation_pruning.cpp - Permutation pruning ablation ----===//
//
// Quantifies the paper's section III pruning: raw permutations per
// temporal level, hoist-equivalence classes, and the class *pairs*
// actually solved after symmetry pruning, per layer. Also shows the
// effect of the stencil rule (r/s never tiled) on the raw space:
// without it each level would have 7! = 5040 permutations.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"
#include "thistle/PermutationSpace.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printPruningTable() {
  TablePrinter Table({"layer", "tiled iters", "raw perms/level",
                      "classes/level", "pairs total", "pairs planned",
                      "skipped by symmetry", "reduction"});
  ThistleOptions O =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    ThistleResult R =
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
    const ThistleStats &S = R.Stats;
    double RawPairs =
        static_cast<double>(S.RawPermsPerLevel) * S.RawPermsPerLevel;
    // Planned pairs (not solved): the pruning ablation measures how much
    // work the symmetry/class reductions leave on the table, independent
    // of solver outcomes.
    double Reduction = RawPairs / std::max(1u, S.PairsPlanned);
    unsigned TiledCount = 0;
    for (const Iterator &It : P.iterators())
      if (It.Extent > 1 && It.Name != "r" && It.Name != "s")
        ++TiledCount;
    Table.addRow({L.Name, std::to_string(TiledCount),
                  std::to_string(S.RawPermsPerLevel),
                  std::to_string(S.PermClassesPerLevel),
                  std::to_string(S.PairsTotal),
                  std::to_string(S.PairsPlanned),
                  std::to_string(S.PairsSkippedBySymmetry),
                  TablePrinter::formatDouble(Reduction, 1) + "x"});
  }
  Table.print(std::cout);
  std::printf("\n(without the stencil rule each level would have 7! = 5040 "
              "raw permutations, i.e. 25.4M pairs)\n\n");
}

void timeClassEnumeration(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  std::vector<unsigned> Tiled = {P.iteratorIndex("k"), P.iteratorIndex("c"),
                                 P.iteratorIndex("h"), P.iteratorIndex("w")};
  for (auto _ : State)
    benchmark::DoNotOptimize(enumeratePermClasses(P, Tiled));
}
BENCHMARK(timeClassEnumeration);

void timeSymmetryDetection(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  for (auto _ : State)
    benchmark::DoNotOptimize(findProblemSymmetries(P));
}
BENCHMARK(timeSymmetryDetection);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Ablation: permutation pruning",
              "Design-space reduction from the stencil rule, "
              "hoist-equivalence classes and problem symmetries "
              "(paper section III)");
  printPruningTable();
  return runTimings(Argc, Argv);
}
