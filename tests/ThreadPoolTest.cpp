//===- tests/ThreadPoolTest.cpp - support/ThreadPool tests ----------------===//
//
// Pool lifecycle, parallelFor range coverage and exception propagation,
// and the determinism contract of parallelReduce: associative joins must
// produce identical results at every worker count, because the co-design
// engine's bit-reproducibility under --threads rests on exactly that.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

using namespace thistle;

TEST(ThreadPool, LifecycleAtVariousSizes) {
  for (unsigned N : {1u, 2u, 8u}) {
    ThreadPool Pool(N);
    EXPECT_EQ(Pool.numWorkers(), N);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), ThreadPool::defaultWorkerCount());
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, DrainsSubmittedTasksBeforeJoin) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 100; ++I)
      Pool.submit([&Ran] { ++Ran; });
  }
  EXPECT_EQ(Ran.load(), 100);
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  parallelFor(Pool, 0, [&](std::size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool Pool(4);
  std::vector<int> Hits(1, 0);
  parallelFor(Pool, 1, [&](std::size_t I, unsigned Shard) {
    EXPECT_EQ(Shard, 0u);
    ++Hits[I];
  });
  EXPECT_EQ(Hits[0], 1);
}

TEST(ParallelFor, CoversOddSizedRangeExactlyOnce) {
  for (unsigned Workers : {1u, 3u, 8u}) {
    ThreadPool Pool(Workers);
    const std::size_t N = 1001; // Odd, not a multiple of any worker count.
    std::vector<int> Hits(N, 0); // Disjoint per-index writes: race-free.
    parallelFor(Pool, N,
                [&](std::size_t I, unsigned) { ++Hits[I]; });
    for (std::size_t I = 0; I < N; ++I)
      ASSERT_EQ(Hits[I], 1) << "index " << I << ", " << Workers
                            << " workers";
  }
}

TEST(ParallelFor, ShardsArePartitionOfRange) {
  // Shard ids must be stable per index given (N, workers); indices in the
  // same shard may share unsynchronized state.
  ThreadPool Pool(4);
  const std::size_t N = 37;
  std::vector<unsigned> ShardOf(N, 0);
  parallelFor(Pool, N,
              [&](std::size_t I, unsigned Shard) { ShardOf[I] = Shard; });
  // Contiguous, ascending shard assignment.
  for (std::size_t I = 1; I < N; ++I) {
    EXPECT_GE(ShardOf[I], ShardOf[I - 1]);
    EXPECT_LE(ShardOf[I] - ShardOf[I - 1], 1u);
  }
  EXPECT_EQ(ShardOf.back(), 3u);
}

TEST(ParallelFor, PropagatesExceptionAndPoolSurvives) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      parallelFor(Pool, 100,
                  [](std::size_t I, unsigned) {
                    if (I == 37)
                      throw std::runtime_error("slot 37 failed");
                  }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> Calls{0};
  parallelFor(Pool, 10, [&](std::size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 10);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool Pool(4);
  long Out = parallelReduce(
      Pool, 0, 42L, [](long &, std::size_t) { FAIL(); },
      [](long &, long &&) { FAIL(); });
  EXPECT_EQ(Out, 42L);
}

TEST(ParallelReduce, SumMatchesClosedFormAtAnyWorkerCount) {
  const std::size_t N = 12345;
  for (unsigned Workers : {1u, 2u, 8u}) {
    ThreadPool Pool(Workers);
    std::uint64_t Sum = parallelReduce(
        Pool, N, std::uint64_t{0},
        [](std::uint64_t &Acc, std::size_t I) { Acc += I; },
        [](std::uint64_t &Acc, std::uint64_t &&Local) { Acc += Local; });
    EXPECT_EQ(Sum, static_cast<std::uint64_t>(N) * (N - 1) / 2);
  }
}

TEST(ParallelReduce, TieBrokenArgminIsWorkerCountInvariant) {
  // The optimizer's winner reduction: min by (value, index). Values are
  // chosen with many ties so a wrong tie-break would show up.
  const std::size_t N = 997;
  auto Value = [](std::size_t I) { return static_cast<double>(I % 7); };
  struct Best {
    bool Found = false;
    double Val = 0.0;
    std::size_t Idx = 0;
  };
  auto Fold = [&](Best &B, std::size_t I) {
    double V = Value(I);
    if (!B.Found || std::tie(V, I) < std::tie(B.Val, B.Idx)) {
      B.Found = true;
      B.Val = V;
      B.Idx = I;
    }
  };
  auto Join = [](Best &A, Best &&B) {
    if (B.Found &&
        (!A.Found || std::tie(B.Val, B.Idx) < std::tie(A.Val, A.Idx)))
      A = B;
  };
  Best Reference;
  for (std::size_t I = 0; I < N; ++I)
    Fold(Reference, I);
  for (unsigned Workers : {1u, 2u, 8u}) {
    ThreadPool Pool(Workers);
    Best Out = parallelReduce(Pool, N, Best{}, Fold, Join);
    ASSERT_TRUE(Out.Found);
    EXPECT_EQ(Out.Idx, Reference.Idx) << Workers << " workers";
    EXPECT_EQ(Out.Val, Reference.Val) << Workers << " workers";
  }
}
