file(REMOVE_RECURSE
  "CMakeFiles/thistle-opt.dir/thistle-opt.cpp.o"
  "CMakeFiles/thistle-opt.dir/thistle-opt.cpp.o.d"
  "thistle-opt"
  "thistle-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
