//===- support/LineSocket.cpp - Newline-delimited TCP I/O -----------------===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/LineSocket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace thistle {
namespace net {
namespace {

Status errnoStatus(const char *What) {
  return Status::error(StatusCode::DataLoss,
                       std::string(What) + ": " + std::strerror(errno));
}

/// send() flags that suppress SIGPIPE where the platform supports it.
int sendFlags() {
#ifdef MSG_NOSIGNAL
  return MSG_NOSIGNAL;
#else
  return 0;
#endif
}

void configurePeerSocket(int Fd) {
  int One = 1;
  // Request/response lines are small; never batch them behind Nagle.
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
#ifdef SO_NOSIGPIPE
  ::setsockopt(Fd, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof(One));
#endif
}

} // namespace

void LineConnection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

void LineConnection::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

Expected<std::string> LineConnection::readLine() {
  if (Fd < 0)
    return Status::error(StatusCode::DataLoss, "read on closed connection");
  while (true) {
    std::size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return Line;
    }
    if (Buffer.size() > MaxLineBytes)
      return Status::error(StatusCode::DataLoss, "line exceeds " +
                                                     std::to_string(MaxLineBytes) +
                                                     " bytes");
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buffer.append(Chunk, static_cast<std::size_t>(N));
      continue;
    }
    if (N == 0) {
      if (!Buffer.empty())
        return Status::error(StatusCode::DataLoss,
                             "connection closed mid-line");
      return Status::error(StatusCode::NotFound, "end of stream");
    }
    if (errno == EINTR)
      continue;
    return errnoStatus("recv");
  }
}

Status LineConnection::writeLine(const std::string &Line) {
  if (Fd < 0)
    return Status::error(StatusCode::DataLoss, "write on closed connection");
  std::string Frame = Line;
  Frame += '\n';
  std::size_t Sent = 0;
  while (Sent < Frame.size()) {
    ssize_t N =
        ::send(Fd, Frame.data() + Sent, Frame.size() - Sent, sendFlags());
    if (N > 0) {
      Sent += static_cast<std::size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return errnoStatus("send");
  }
  return Status::ok();
}

void LineListener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  BoundPort = 0;
}

Status LineListener::listen(std::uint16_t Port, int Backlog) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoStatus("socket");
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status S = errnoStatus("bind");
    close();
    return S;
  }
  if (::listen(Fd, Backlog) != 0) {
    Status S = errnoStatus("listen");
    close();
    return S;
  }
  sockaddr_in Bound{};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0) {
    Status S = errnoStatus("getsockname");
    close();
    return S;
  }
  BoundPort = ntohs(Bound.sin_port);
  return Status::ok();
}

Expected<LineConnection> LineListener::acceptConnection(int TimeoutMs) {
  if (Fd < 0)
    return Status::error(StatusCode::DataLoss, "accept on closed listener");
  pollfd Pfd{};
  Pfd.fd = Fd;
  Pfd.events = POLLIN;
  int R = ::poll(&Pfd, 1, TimeoutMs);
  if (R == 0)
    return Status::error(StatusCode::NotFound, "accept timeout");
  if (R < 0) {
    if (errno == EINTR)
      return Status::error(StatusCode::NotFound, "accept interrupted");
    return errnoStatus("poll");
  }
  int Client = ::accept(Fd, nullptr, nullptr);
  if (Client < 0) {
    if (errno == EINTR || errno == ECONNABORTED)
      return Status::error(StatusCode::NotFound, "accept interrupted");
    return errnoStatus("accept");
  }
  configurePeerSocket(Client);
  return LineConnection(Client);
}

Expected<LineConnection> connectLoopback(std::uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoStatus("socket");
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  while (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
         0) {
    if (errno == EINTR)
      continue;
    Status S = errnoStatus("connect");
    ::close(Fd);
    return S;
  }
  configurePeerSocket(Fd);
  return LineConnection(Fd);
}

} // namespace net
} // namespace thistle
