//===- ir/Builders.cpp - CNN and matmul problem builders ------------------===//

#include "ir/Builders.h"

#include "support/MathUtil.h"

using namespace thistle;

std::int64_t ConvLayer::outH() const { return ceilDiv(Hin, StrideX); }

std::int64_t ConvLayer::outW() const { return ceilDiv(Win, StrideY); }

std::int64_t ConvLayer::numMacs() const {
  return N * K * C * R * S * outH() * outW();
}

Problem thistle::makeConvProblem(const ConvLayer &Layer) {
  std::vector<Iterator> Iters = {
      {"n", Layer.N}, {"k", Layer.K},      {"c", Layer.C},    {"r", Layer.R},
      {"s", Layer.S}, {"h", Layer.outH()}, {"w", Layer.outW()}};
  enum : unsigned { ItN, ItK, ItC, ItR, ItS, ItH, ItW };

  Tensor Out;
  Out.Name = "Out";
  Out.ReadWrite = true;
  Out.Dims = {{{{ItN, 1}}}, {{{ItK, 1}}}, {{{ItH, 1}}}, {{{ItW, 1}}}};

  Tensor In;
  In.Name = "In";
  In.Dims = {{{{ItN, 1}}},
             {{{ItC, 1}}},
             {{{ItH, Layer.StrideX}, {ItR, Layer.DilationX}}},
             {{{ItW, Layer.StrideY}, {ItS, Layer.DilationY}}}};

  Tensor Ker;
  Ker.Name = "Ker";
  Ker.Dims = {{{{ItK, 1}}}, {{{ItC, 1}}}, {{{ItR, 1}}}, {{{ItS, 1}}}};

  return Problem(Layer.Name, std::move(Iters),
                 {std::move(Out), std::move(In), std::move(Ker)});
}

Problem thistle::makeMatmulProblem(std::int64_t Ni, std::int64_t Nj,
                                   std::int64_t Nk) {
  std::vector<Iterator> Iters = {{"i", Ni}, {"j", Nj}, {"k", Nk}};
  enum : unsigned { ItI, ItJ, ItK };

  Tensor CMat;
  CMat.Name = "C";
  CMat.ReadWrite = true;
  CMat.Dims = {{{{ItI, 1}}}, {{{ItJ, 1}}}};

  Tensor AMat;
  AMat.Name = "A";
  AMat.Dims = {{{{ItI, 1}}}, {{{ItK, 1}}}};

  Tensor BMat;
  BMat.Name = "B";
  BMat.Dims = {{{{ItK, 1}}}, {{{ItJ, 1}}}};

  return Problem("matmul", std::move(Iters),
                 {std::move(CMat), std::move(AMat), std::move(BMat)});
}
