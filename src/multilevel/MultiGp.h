//===- multilevel/MultiGp.h - L-level GP generation & optimizer -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates and solves the constrained geometric programs of the paper
/// for hierarchies of arbitrary depth — the "arbitrary number of tiling
/// levels" generality that section III claims for Algorithm 1, carried
/// through symbolic generation, capacity constraints per level, energy /
/// delay objectives, divisor-chain rounding and evaluation. Architecture
/// parameters are fixed here (the hierarchy is given); the co-design of
/// a fixed 3-level machine is the thistle/ optimizer's job.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_MULTIGP_H
#define THISTLE_MULTILEVEL_MULTIGP_H

#include "multilevel/MultiNestAnalysis.h"
#include "nestmodel/CostEvaluator.h"
#include "nestmodel/Objective.h"
#include "solver/GpSolver.h"
#include "support/Status.h"
#include "support/SweepReport.h"

#include <chrono>
#include <string>
#include <vector>

namespace thistle {

/// Multilevel optimizer configuration.
struct MultiOptions {
  SearchObjective Objective = SearchObjective::Energy;
  /// When true, the per-level capacities and the PE count become GP
  /// variables under AreaBudgetUm2 (the Eq. 5 co-design generalized to
  /// arbitrary depth): level 0 is priced as a register file
  /// (eps = sigma_R * C, Area_R per word, per PE), intermediate levels
  /// as SRAMs (eps = sigma_S * sqrt(C); per-PE levels pay area once per
  /// PE), the outermost level as DRAM. The input hierarchy supplies the
  /// structure (depth, fan-out, bandwidths); its capacities serve as
  /// upper bounds for the rounded candidates.
  bool CoDesignCapacities = false;
  double AreaBudgetUm2 = 0.0;
  TechParams Tech = TechParams::cgo45nm();
  /// Iterator names never tiled temporally (whole at level 0; may still
  /// be unrolled spatially).
  std::vector<std::string> UntiledIterNames = {"r", "s"};
  /// Cap on permutation-class combinations across the L-1 permuted
  /// levels (the combination space grows as classes^(L-1)).
  unsigned MaxPermCombos = 48;
  /// Divisor candidates per rounding step (the paper's n).
  unsigned NumCandidates = 2;
  /// Cap on integer candidates evaluated per rounded solution.
  std::size_t MaxMappingCandidates = 4000;
  /// Worker threads for the combo sweep (0 = one per hardware thread).
  /// The result is bit-identical at every thread count: combos fold into
  /// per-shard winners merged in combo order with a strict minimum.
  unsigned Threads = 0;
  GpSolverOptions Solver;
  /// Wall-clock budget for the combo sweep (0 = unlimited); combos
  /// starting after the deadline are skipped and the sweep returns the
  /// best of the completed ones (see ThistleOptions::Deadline).
  std::chrono::milliseconds Deadline{0};
  /// Absolute deadline (steady clock); overrides Deadline when set.
  std::chrono::steady_clock::time_point DeadlineAt{};
  /// Cost-model backend scoring the rounded integer candidates; null
  /// selects the nest model (bit-identical to the pre-interface
  /// behavior). Must be thread-safe: combos evaluate concurrently.
  const CostEvaluator *Evaluator = nullptr;
};

/// Best multilevel design found.
struct MultiResult {
  bool Found = false;
  /// Non-Ok when the hierarchy or options failed validation up front;
  /// no combo was attempted in that case.
  Status InputStatus;
  /// Per-combo solved/retried/failed/skipped accounting (incident
  /// coordinates: A = combo index in the full combination space).
  SweepReport Report;
  MultiMapping Map;
  MultiEvalResult Eval;
  /// The hierarchy the winner runs on: the input hierarchy, or the
  /// co-designed one when CoDesignCapacities is set.
  Hierarchy Arch;
  double ModelObjective = 0.0;
  unsigned CombosSolved = 0;
  unsigned GpInfeasible = 0;
};

/// Optimizes the tiling of \p Prob onto the fixed hierarchy \p H.
MultiResult optimizeHierarchy(const Problem &Prob, const Hierarchy &H,
                              const MultiOptions &Options = MultiOptions());

} // namespace thistle

#endif // THISTLE_MULTILEVEL_MULTIGP_H
