//===- thistle/PairSweep.cpp - Shared perm-class pair sweep core ----------===//

#include "thistle/PairSweep.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <exception>
#include <tuple>
#include <utility>

using namespace thistle;

std::vector<unsigned> thistle::tiledIterators(const Problem &Prob,
                                              const ThistleOptions &Options) {
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    const Iterator &It = Prob.iterators()[I];
    if (It.Extent <= 1)
      continue;
    bool Untiled =
        std::find(Options.UntiledIterNames.begin(),
                  Options.UntiledIterNames.end(),
                  It.Name) != Options.UntiledIterNames.end();
    if (!Untiled)
      Out.push_back(I);
  }
  return Out;
}

namespace {

/// Replays a cached pair outcome into the accumulator: the same report
/// record, stat deltas, telemetry counts and winner update the miss
/// path would have produced, without building or solving the GP.
void replayCacheEntry(const GpCacheEntry &Entry, const PairTask &Task,
                      std::size_t TaskIdx, SweepAccumulator &Acc) {
  Acc.NewtonIterations += Entry.NewtonIterations;
  if (Entry.GpInfeasible)
    ++Acc.GpInfeasible;
  Acc.Report.record(Entry.Outcome, TaskIdx, Task.QI, Task.SI,
                    Entry.Attempts, Entry.Detail);
  if (Entry.Outcome != TaskOutcome::Solved &&
      Entry.Outcome != TaskOutcome::Degraded)
    return;
  telemetry::count("thistle.pairs.solved");
  Acc.CandidatesEvaluated += Entry.Design.CandidatesTried;
  if (telemetry::metricsEnabled())
    telemetry::count("thistle.rounding.candidates",
                     Entry.Design.CandidatesTried);
  if (!Entry.Design.Found)
    return;
  if (telemetry::metricsEnabled() && Entry.ModelObjective > 0.0)
    telemetry::observe("thistle.rounding.rel_delta",
                       (Entry.Obj - Entry.ModelObjective) /
                           Entry.ModelObjective);
  if (pairWinsOver(Entry.Obj, Task.QI, Task.SI, Acc)) {
    Acc.Found = true;
    Acc.Obj = Entry.Obj;
    Acc.QI = Task.QI;
    Acc.SI = Task.SI;
    Acc.Design = Entry.Design;
    Acc.ModelObjective = Entry.ModelObjective;
  }
}

} // namespace

LayerSweepPlan thistle::planLayerSweep(const Problem &Prob,
                                       const ThistleOptions &Options) {
  LayerSweepPlan Plan;
  Plan.TiledIters = tiledIterators(Prob, Options);

  // The class enumeration is a function of the problem and the tiled
  // iterator set only, so the two temporal levels share it.
  Plan.Classes = enumeratePermClasses(Prob, Plan.TiledIters);
  for (const PermClass &C : Plan.Classes)
    Plan.RawPermsPerLevel += C.MemberCount;

  std::vector<ProblemSymmetry> Symmetries;
  if (Options.UseSymmetryPruning)
    Symmetries = findProblemSymmetries(Prob);

  // Symmetry pruning and the pair cap depend on the enumeration order,
  // so the task list is fixed here, before any fan-out. Capped pairs
  // are recorded as policy skips with indices following the planned
  // tasks (every capped pair enumerates after the cap fills), keeping
  // the merged incident list in ascending task order.
  const unsigned Cap = Options.MaxPermClassPairs;
  unsigned Capped = 0;
  for (std::size_t QI = 0; QI < Plan.Classes.size(); ++QI) {
    for (std::size_t SI = 0; SI < Plan.Classes.size(); ++SI) {
      ++Plan.PairsTotal;

      // Symmetry pruning: skip a pair if a problem symmetry maps it to a
      // lexicographically smaller pair (its mirror image was/will be
      // solved instead).
      bool Skip = false;
      for (const ProblemSymmetry &Sym : Symmetries) {
        PermSignature MappedQ =
            Plan.Classes[QI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        PermSignature MappedS =
            Plan.Classes[SI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        if (std::tie(MappedQ, MappedS) <
            std::tie(Plan.Classes[QI].Signature,
                     Plan.Classes[SI].Signature)) {
          Skip = true;
          break;
        }
      }
      if (Skip) {
        ++Plan.PairsSkippedBySymmetry;
        continue;
      }
      if (Cap && Plan.Pairs.size() >= Cap) {
        Plan.CappedReport.recordPolicySkip(
            Cap + Capped, QI, SI,
            "dropped by the MaxPermClassPairs pair cap");
        ++Capped;
        continue;
      }
      Plan.Pairs.push_back({QI, SI});
    }
  }
  return Plan;
}

bool thistle::pairWinsOver(double Obj, std::size_t QI, std::size_t SI,
                           const SweepAccumulator &Acc) {
  // The deterministic winner order reproduces the sequential sweep
  // exactly, where a later pair only displaced the incumbent on a
  // strictly smaller objective.
  return !Acc.Found ||
         std::tie(Obj, QI, SI) < std::tie(Acc.Obj, Acc.QI, Acc.SI);
}

bool thistle::resolveSweepDeadline(
    std::chrono::milliseconds Relative,
    std::chrono::steady_clock::time_point Absolute,
    std::chrono::steady_clock::time_point &Out) {
  if (Absolute != std::chrono::steady_clock::time_point{}) {
    Out = Absolute;
    return true;
  }
  if (Relative.count() > 0) {
    Out = std::chrono::steady_clock::now() + Relative;
    return true;
  }
  return false;
}

void thistle::runPairTask(const PairSweepContext &Ctx, std::size_t TaskIdx,
                          SweepAccumulator &Acc) {
  const LayerSweepPlan &Plan = Ctx.Plan;
  const ThistleOptions &Options = Ctx.Options;
  const PairTask &Task = Plan.Pairs[TaskIdx];
  telemetry::TraceScope PairSpan("thistle.pair",
                                 Ctx.SpanIndexBase + TaskIdx);

  if (Ctx.HasDeadline &&
      std::chrono::steady_clock::now() >= Ctx.DeadlineAt) {
    Acc.Report.DeadlineExpired = true;
    Acc.Report.record(TaskOutcome::Skipped, TaskIdx, Task.QI, Task.SI, 0,
                      "deadline expired before the pair was attempted");
    return;
  }
  if (fault::shouldFail("thistle.pair",
                        static_cast<std::int64_t>(TaskIdx))) {
    Acc.Report.record(TaskOutcome::Failed, TaskIdx, Task.QI, Task.SI, 0,
                      "injected fault at site thistle.pair");
    return;
  }

  // Exact cache hit: replay the recorded outcome and skip the solve.
  // Deadline- and fault-killed tasks never reach the insert below, so
  // what is replayed is always a genuinely computed outcome.
  std::string ExactKey, WarmKey;
  if (Ctx.Cache) {
    GpCacheKeys Keys = gpCacheKeys(
        Ctx.Prob, Options, Ctx.Arch, Ctx.Tech, Ctx.AreaBudgetUm2,
        Plan.TiledIters, Plan.Classes[Task.QI].Representative,
        Plan.Classes[Task.SI].Representative);
    ExactKey = std::move(Keys.Exact);
    WarmKey = std::move(Keys.Warm);
    GpCacheEntry Hit;
    if (Ctx.Cache->lookupExact(ExactKey, Hit)) {
      ++Acc.CacheHits;
      telemetry::count("thistle.cache.hit");
      if (telemetry::traceEnabled())
        PairSpan.setDetail(std::string("cache-hit ") +
                           taskOutcomeName(Hit.Outcome));
      // Replays must grow the warm tier exactly as the original solve
      // did, or a run resumed from loaded entries would freeze
      // different warm seeds than the uninterrupted run (the insert on
      // the miss path is what fed the pending slot the first time).
      Ctx.Cache->feedWarmPending(ExactKey, WarmKey, Hit.Optimum);
      replayCacheEntry(Hit, Task, TaskIdx, Acc);
      return;
    }
    ++Acc.CacheMisses;
    telemetry::count("thistle.cache.miss");
  }

  try {
    GpBuildSpec Spec;
    Spec.Mode = Options.Mode;
    Spec.Objective = Options.Objective;
    Spec.PePerm = Plan.Classes[Task.QI].Representative;
    Spec.DramPerm = Plan.Classes[Task.SI].Representative;
    Spec.TiledIters = Plan.TiledIters;
    Spec.SpatialUntiled = Options.SpatialUntiled;
    Spec.Arch = Ctx.Arch;
    Spec.Tech = Ctx.Tech;
    Spec.AreaBudgetUm2 = Ctx.AreaBudgetUm2;

    GpCacheEntry Entry;
    unsigned TaskNewton = 0;

    GpSolveReport Solve;
    GpBuild Build = buildGp(Ctx.Prob, Spec);
    GpSolution Solution =
        solveGpWithRetry(Build.Gp, Options.Solver, &Solve);
    TaskNewton += Solution.NewtonIterations;
    unsigned Attempts = Solve.attempts();
    if (!Solution.Feasible) {
      // The drop-negative halo bound can reject tiny register files
      // that are actually feasible; retry with the product bound,
      // which is exact in the small-tile regime.
      Spec.Halo = HaloBound::ProductOfTerms;
      Build = buildGp(Ctx.Prob, Spec);
      GpSolveReport Fallback;
      Solution = solveGpWithRetry(Build.Gp, Options.Solver, &Fallback);
      TaskNewton += Solution.NewtonIterations;
      Attempts += Fallback.attempts();
    }
    if ((!Solution.Feasible ||
         Solution.Outcome == SolveOutcome::NonFinite) &&
        Ctx.Cache) {
      // Last-resort warm-start rung: restart from the cached optimum of
      // a structurally identical GP (a frozen-generation entry, so the
      // outcome does not depend on sibling-task timing). Running only
      // where the cold chain found nothing keeps clean sweeps
      // bit-identical with the cache on or off.
      std::vector<double> Seed;
      if (Ctx.Cache->lookupWarm(WarmKey, Seed)) {
        ++Acc.CacheWarmStarts;
        Ctx.Cache->noteWarmStart();
        telemetry::count("thistle.cache.warmstart");
        GpSolverOptions WarmOpts = Options.Solver;
        WarmOpts.InitialPoint = std::move(Seed);
        Spec.Halo = HaloBound::DropNegative;
        Build = buildGp(Ctx.Prob, Spec);
        GpSolution WarmSol = solveGp(Build.Gp, WarmOpts);
        TaskNewton += WarmSol.NewtonIterations;
        ++Attempts;
        if (!WarmSol.Feasible) {
          Spec.Halo = HaloBound::ProductOfTerms;
          Build = buildGp(Ctx.Prob, Spec);
          WarmSol = solveGp(Build.Gp, WarmOpts);
          TaskNewton += WarmSol.NewtonIterations;
          ++Attempts;
        }
        if (WarmSol.Feasible &&
            WarmSol.Outcome != SolveOutcome::NonFinite)
          Solution = std::move(WarmSol);
      }
    }
    Acc.NewtonIterations += TaskNewton;
    Entry.NewtonIterations = TaskNewton;
    Entry.Attempts = Attempts;

    if (!Solution.Feasible ||
        Solution.Outcome == SolveOutcome::NonFinite) {
      // Keep the historical stat for ANY pair that yields no feasible
      // iterate, whatever the cause, so Stats stay comparable.
      ++Acc.GpInfeasible;
      Entry.GpInfeasible = true;
      TaskOutcome Outcome =
          Solution.Outcome == SolveOutcome::Infeasible
              ? TaskOutcome::Infeasible
              : TaskOutcome::Failed;
      Entry.Outcome = Outcome;
      Entry.Detail = Solution.Failure.empty()
                         ? std::string(solveOutcomeName(Solution.Outcome))
                         : Solution.Failure;
      Acc.Report.record(Outcome, TaskIdx, Task.QI, Task.SI, Attempts,
                        Entry.Detail);
      if (telemetry::traceEnabled())
        PairSpan.setDetail(taskOutcomeName(Outcome));
      if (Ctx.Cache)
        Ctx.Cache->insert(ExactKey, WarmKey, std::move(Entry));
      return;
    }
    // Feasible but not converged: accept the best iterate (as the
    // sweep always has), flagged Degraded in the report.
    Entry.Outcome = Solution.Converged ? TaskOutcome::Solved
                                       : TaskOutcome::Degraded;
    Entry.Detail = Solution.Converged ? std::string() : Solution.Failure;
    Acc.Report.record(Entry.Outcome, TaskIdx, Task.QI, Task.SI, Attempts,
                      Entry.Detail);

    if (telemetry::traceEnabled())
      PairSpan.setDetail(
          std::string(Solution.Converged ? "solved" : "degraded") +
          " attempts=" + std::to_string(Attempts));
    telemetry::count("thistle.pairs.solved");

    RealSolution Real = extractSolution(Ctx.Prob, Build, Spec, Solution);
    RoundedDesign Design =
        roundSolution(Ctx.Prob, Spec, Real, Options.Rounding);
    Acc.CandidatesEvaluated += Design.CandidatesTried;
    if (telemetry::metricsEnabled())
      telemetry::count("thistle.rounding.candidates",
                       Design.CandidatesTried);
    Entry.Optimum.assign(Solution.Values.begin(), Solution.Values.end());
    Entry.ModelObjective = Real.Objective;
    if (!Design.Found) {
      Entry.Design = Design;
      if (Ctx.Cache)
        Ctx.Cache->insert(ExactKey, WarmKey, std::move(Entry));
      return;
    }

    double Obj = objectiveValue(Design.Eval, Options.Objective);
    // The rounding gap: how much the integer design lost (or, rarely,
    // gained) relative to the relaxed GP optimum for this pair.
    if (telemetry::metricsEnabled() && Real.Objective > 0.0)
      telemetry::observe("thistle.rounding.rel_delta",
                         (Obj - Real.Objective) / Real.Objective);
    Entry.Obj = Obj;
    Entry.Design = Design;
    if (Ctx.Cache)
      Ctx.Cache->insert(ExactKey, WarmKey, std::move(Entry));
    if (pairWinsOver(Obj, Task.QI, Task.SI, Acc)) {
      Acc.Found = true;
      Acc.Obj = Obj;
      Acc.QI = Task.QI;
      Acc.SI = Task.SI;
      Acc.Design = std::move(Design);
      Acc.ModelObjective = Real.Objective;
    }
  } catch (const std::exception &E) {
    Acc.Report.record(TaskOutcome::Failed, TaskIdx, Task.QI, Task.SI, 0,
                      std::string("exception: ") + E.what());
  }
}

void thistle::mergePairAccumulators(SweepAccumulator &A,
                                    SweepAccumulator &&B) {
  A.NewtonIterations += B.NewtonIterations;
  A.GpInfeasible += B.GpInfeasible;
  A.CandidatesEvaluated += B.CandidatesEvaluated;
  A.CacheHits += B.CacheHits;
  A.CacheMisses += B.CacheMisses;
  A.CacheWarmStarts += B.CacheWarmStarts;
  A.Report.merge(std::move(B.Report));
  if (B.Found && pairWinsOver(B.Obj, B.QI, B.SI, A)) {
    A.Found = true;
    A.Obj = B.Obj;
    A.QI = B.QI;
    A.SI = B.SI;
    A.Design = std::move(B.Design);
    A.ModelObjective = B.ModelObjective;
  }
}

void thistle::finishLayerResult(const LayerSweepPlan &Plan,
                                SweepAccumulator &&Total,
                                ThistleResult &Result) {
  Result.Stats.PermClassesPerLevel =
      static_cast<unsigned>(Plan.Classes.size());
  Result.Stats.RawPermsPerLevel = Plan.RawPermsPerLevel;
  Result.Stats.PairsTotal = Plan.PairsTotal;
  Result.Stats.PairsSkippedBySymmetry = Plan.PairsSkippedBySymmetry;
  Result.Stats.PairsPlanned = static_cast<unsigned>(Plan.Pairs.size());
  Result.Stats.NewtonIterations = Total.NewtonIterations;
  Result.Stats.GpInfeasible = Total.GpInfeasible;
  Result.Stats.CandidatesEvaluated = Total.CandidatesEvaluated;
  Result.Stats.CacheHits = Total.CacheHits;
  Result.Stats.CacheMisses = Total.CacheMisses;
  Result.Stats.CacheWarmStarts = Total.CacheWarmStarts;
  Result.Report = std::move(Total.Report);
  // Capped pairs enumerate after the planned ones, so appending their
  // pre-recorded skips keeps the incident list in ascending task order.
  Result.Report.merge(SweepReport(Plan.CappedReport));
  // The fixed accounting: PairsSolved counts what actually produced an
  // iterate (clean or degraded), not what was planned.
  Result.Stats.PairsSolved = Result.Report.Solved + Result.Report.Degraded;
  if (Total.Found) {
    Result.Found = true;
    Result.Arch = Total.Design.Arch;
    Result.Map = std::move(Total.Design.Map);
    Result.Eval = Total.Design.Eval;
    Result.ModelObjective = Total.ModelObjective;
    Result.BestPePerm = Plan.Classes[Total.QI].Representative;
    Result.BestDramPerm = Plan.Classes[Total.SI].Representative;
  }
}
