# Empty dependencies file for thistle_core.
# This may be replaced when dependencies are built.
