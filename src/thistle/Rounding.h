//===- thistle/Rounding.h - Real-to-integer design conversion --*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts the solver's real solution into integer designs, following the
/// paper's section IV procedure: memory capacities are rounded to the N
/// closest powers of two; tile sizes are chosen hierarchically as
/// divisors — SRAM-level tile sizes from the divisors of each problem
/// extent, then PE-level tiles from the divisors of the chosen SRAM tile,
/// then register tiles from the divisors of the PE tile. The cross
/// product of candidates is filtered (divisibility by construction,
/// capacity/area, optional minimum utilization) and every survivor is
/// evaluated with the nestmodel (the paper's Timeloop-model role); the
/// best candidate wins.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_ROUNDING_H
#define THISTLE_THISTLE_ROUNDING_H

#include "nestmodel/CostEvaluator.h"
#include "nestmodel/Evaluator.h"
#include "thistle/GpBuilder.h"

#include <cstddef>

namespace thistle {

/// Rounding configuration (the paper's n is NumCandidates, "typically 2
/// or 3 to avoid explosion of valid candidate solutions").
struct RoundingOptions {
  unsigned NumCandidates = 2;
  /// Minimum PEsUsed / P ratio; candidates below are filtered out
  /// (paper: "do not meet a minimum threshold on resource utilization").
  double UtilizationThreshold = 0.0;
  /// Cap on the number of (architecture, mapping) candidates evaluated
  /// per rounded solution. The depth-first cross product visits
  /// candidates nearest the real solution first, so a modest cap loses
  /// almost nothing.
  std::size_t MaxMappingCandidates = 4000;
  /// Cost-model backend scoring the integer candidates (and hence the
  /// pair-sweep and network winners built on them); null selects the
  /// nest model, bit-identically to the pre-interface behavior.
  const CostEvaluator *Evaluator = nullptr;
};

/// Best integer design found around one real solution.
struct RoundedDesign {
  bool Found = false;
  ArchConfig Arch;  ///< Fixed arch (dataflow mode) or rounded (co-design).
  Mapping Map;
  EvalResult Eval;
  std::size_t CandidatesTried = 0;
};

/// Rounds \p Real (obtained from the GP built with \p Spec) and returns
/// the best evaluated integer design.
RoundedDesign roundSolution(const Problem &Prob, const GpBuildSpec &Spec,
                            const RealSolution &Real,
                            const RoundingOptions &Options);

} // namespace thistle

#endif // THISTLE_THISTLE_ROUNDING_H
