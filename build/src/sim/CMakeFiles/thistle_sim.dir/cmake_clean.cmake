file(REMOVE_RECURSE
  "CMakeFiles/thistle_sim.dir/TiledLoopSim.cpp.o"
  "CMakeFiles/thistle_sim.dir/TiledLoopSim.cpp.o.d"
  "libthistle_sim.a"
  "libthistle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
