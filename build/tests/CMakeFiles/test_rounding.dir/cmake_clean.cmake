file(REMOVE_RECURSE
  "CMakeFiles/test_rounding.dir/RoundingTest.cpp.o"
  "CMakeFiles/test_rounding.dir/RoundingTest.cpp.o.d"
  "test_rounding"
  "test_rounding.pdb"
  "test_rounding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
