//===- ir/Builders.h - CNN and matmul problem builders ----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the two tensor programs used throughout the paper: the 7D
/// CNN loop nest of Listing 1 and the 3D matrix multiplication of Fig. 1.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_IR_BUILDERS_H
#define THISTLE_IR_BUILDERS_H

#include "ir/Problem.h"

#include <string>

namespace thistle {

/// Shape of one conv2D stage, in the paper's Table II convention.
struct ConvLayer {
  std::string Name;
  std::int64_t N = 1;   ///< Batch size (1 throughout the evaluation).
  std::int64_t K = 1;   ///< Output channels.
  std::int64_t C = 1;   ///< Input channels.
  std::int64_t Hin = 1; ///< Input image height (Table II's H).
  std::int64_t Win = 1; ///< Input image width (Table II's W).
  std::int64_t R = 1;   ///< Kernel height.
  std::int64_t S = 1;   ///< Kernel width.
  std::int64_t StrideX = 1; ///< Vertical kernel stride (paper's x).
  std::int64_t StrideY = 1; ///< Horizontal kernel stride (paper's y).
  /// Convolution dilation (extension; the paper notes dilation "can be
  /// handled similarly" to strides — it becomes the stride of the r/s
  /// terms in In's projections).
  std::int64_t DilationX = 1;
  std::int64_t DilationY = 1;

  /// Output spatial height: Table II gives input sizes; ResNet/Yolo convs
  /// use 'same' padding, so Hout = ceil(Hin / stride) (DESIGN.md).
  std::int64_t outH() const;
  /// Output spatial width, same convention.
  std::int64_t outW() const;

  /// Total MACs = N*K*C*R*S*outH()*outW().
  std::int64_t numMacs() const;
};

/// Builds the 7D CNN problem of Listing 1 for \p Layer. Iterators appear
/// in the order n, k, c, r, s, h, w; tensors in the order Out, In, Ker
/// (Out is read-write). The h/w iterators range over the *output* spatial
/// extents; In's spatial dimensions are the strided projections
/// x*h + r and y*w + s.
Problem makeConvProblem(const ConvLayer &Layer);

/// Builds the 3D matrix-multiplication problem of Fig. 1:
/// C[i][j] += A[i][k] * B[k][j], iterators i, j, k; tensors C (read-write),
/// A, B.
Problem makeMatmulProblem(std::int64_t Ni, std::int64_t Nj, std::int64_t Nk);

} // namespace thistle

#endif // THISTLE_IR_BUILDERS_H
