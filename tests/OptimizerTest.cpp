//===- tests/OptimizerTest.cpp - Thistle end-to-end integration tests -----===//

#include "ir/Builders.h"
#include "nestmodel/Evaluator.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

ConvLayer smallConv() {
  ConvLayer L;
  L.Name = "test-conv";
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  return L;
}

ThistleOptions fastOptions() {
  ThistleOptions O;
  O.Solver.Tolerance = 1e-5;
  O.MaxPermClassPairs = 12; // Keep the integration tests quick.
  return O;
}

} // namespace

TEST(Optimizer, MatmulDataflowOnEyeriss) {
  Problem P = makeMatmulProblem(64, 64, 64);
  ThistleOptions O = fastOptions();
  O.UntiledIterNames = {};
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  EXPECT_TRUE(R.Map.validate(P).empty());

  // The optimized dataflow must beat the untiled mapping.
  EnergyModel E(TechParams::cgo45nm());
  EvalResult Untiled =
      evaluateMapping(P, Mapping::untiled(P), eyerissArch(), E);
  if (Untiled.Legal) {
    EXPECT_LT(R.Eval.EnergyPj, Untiled.EnergyPj);
  }
}

TEST(Optimizer, ConvDataflowEnergyInFig4Range) {
  Problem P = makeConvProblem(smallConv());
  ThistleResult R = optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                                  fastOptions());
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  // Fig. 4: Eyeriss-architecture dataflow optimization lands in the
  // 20-30 pJ/MAC band; allow generous slack for a small test layer.
  EXPECT_GT(R.Eval.EnergyPerMacPj, 15.0);
  EXPECT_LT(R.Eval.EnergyPerMacPj, 40.0);
  // The register-MAC floor (4 eps_R + eps_op) is a hard lower bound.
  EnergyModel E(TechParams::cgo45nm());
  double Floor = 4.0 * E.regAccessPj(512) + E.macPj();
  EXPECT_GE(R.Eval.EnergyPerMacPj, Floor - 1e-6);
}

TEST(Optimizer, StatsReflectPruning) {
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.MaxPermClassPairs = 4;
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  EXPECT_GT(R.Stats.PermClassesPerLevel, 0u);
  EXPECT_EQ(R.Stats.RawPermsPerLevel, 24u); // 4 tiled iterators.
  EXPECT_LT(R.Stats.PermClassesPerLevel, R.Stats.RawPermsPerLevel);
  // The square layer has the h/w symmetry: some pairs must be skipped.
  EXPECT_GT(R.Stats.PairsSkippedBySymmetry, 0u);
  EXPECT_GT(R.Stats.NewtonIterations, 0u);
  EXPECT_LE(R.Stats.PairsSolved, 4u);
}

TEST(Optimizer, CoDesignBeatsFixedArchOnEnergy) {
  Problem P = makeConvProblem(smallConv());
  TechParams Tech = TechParams::cgo45nm();

  ThistleOptions DataflowOpts = fastOptions();
  ThistleResult Fixed = optimizeLayer(P, eyerissArch(), Tech, DataflowOpts);
  ASSERT_TRUE(Fixed.Found);

  ThistleOptions CoOpts = fastOptions();
  CoOpts.Mode = DesignMode::CoDesign;
  ThistleResult Co = optimizeLayer(P, eyerissArch(), Tech, CoOpts,
                                   eyerissAreaUm2(Tech));
  ASSERT_TRUE(Co.Found);
  EXPECT_TRUE(Co.Eval.Legal);
  // The co-designed architecture must stay within the Eyeriss area.
  EXPECT_LE(Co.Arch.areaUm2(Tech), eyerissAreaUm2(Tech) * 1.0000001);
  // And improve (or match) the fixed-architecture energy (Fig. 5 trend).
  EXPECT_LE(Co.Eval.EnergyPj, Fixed.Eval.EnergyPj * 1.05);
}

TEST(Optimizer, CoDesignDelayFindsParallelism) {
  Problem P = makeConvProblem(smallConv());
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O = fastOptions();
  O.Mode = DesignMode::CoDesign;
  O.Objective = SearchObjective::Delay;
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), Tech, O, eyerissAreaUm2(Tech));
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  // Orders-of-magnitude IPC requires many PEs (Fig. 8 trend): the delay
  // co-design should use substantially more than one PE.
  EXPECT_GT(R.Eval.MacIpc, 8.0);
  EXPECT_LE(R.Eval.MacIpc, static_cast<double>(R.Arch.NumPEs));
}

TEST(Optimizer, DelayDataflowOnEyerissReachesGoodIpc) {
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.Objective = SearchObjective::Delay;
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(R.Found);
  // IPC is bounded by the PE count (168) and should use parallelism.
  EXPECT_GT(R.Eval.MacIpc, 4.0);
  EXPECT_LE(R.Eval.MacIpc, 168.0);
}

TEST(Optimizer, ResultIsThreadCountInvariant) {
  // The parallel pair sweep must be bit-identical at any worker count:
  // the sweep plan is fixed before fan-out and the winner reduction is a
  // total order on (objective, pair index).
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.Threads = 1;
  ThistleResult Ref =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(Ref.Found);
  for (unsigned Threads : {2u, 8u}) {
    O.Threads = Threads;
    ThistleResult R =
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
    SCOPED_TRACE(std::to_string(Threads) + " threads");
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.Eval.EnergyPj, Ref.Eval.EnergyPj);
    EXPECT_EQ(R.Eval.Cycles, Ref.Eval.Cycles);
    EXPECT_EQ(R.ModelObjective, Ref.ModelObjective);
    EXPECT_EQ(R.Map.Factors, Ref.Map.Factors);
    EXPECT_EQ(R.Map.DramPerm, Ref.Map.DramPerm);
    EXPECT_EQ(R.Map.PePerm, Ref.Map.PePerm);
    EXPECT_EQ(R.BestPePerm, Ref.BestPePerm);
    EXPECT_EQ(R.BestDramPerm, Ref.BestDramPerm);
    EXPECT_EQ(R.Arch.NumPEs, Ref.Arch.NumPEs);
    EXPECT_EQ(R.Arch.RegWordsPerPE, Ref.Arch.RegWordsPerPE);
    EXPECT_EQ(R.Arch.SramWords, Ref.Arch.SramWords);
    // Merged stats, not just the winner, must match.
    EXPECT_EQ(R.Stats.PairsTotal, Ref.Stats.PairsTotal);
    EXPECT_EQ(R.Stats.PairsSolved, Ref.Stats.PairsSolved);
    EXPECT_EQ(R.Stats.PairsSkippedBySymmetry,
              Ref.Stats.PairsSkippedBySymmetry);
    EXPECT_EQ(R.Stats.NewtonIterations, Ref.Stats.NewtonIterations);
    EXPECT_EQ(R.Stats.GpInfeasible, Ref.Stats.GpInfeasible);
    EXPECT_EQ(R.Stats.CandidatesEvaluated, Ref.Stats.CandidatesEvaluated);
  }
}

TEST(Optimizer, ReportsWinningPermutations) {
  Problem P = makeConvProblem(smallConv());
  ThistleResult R = optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                                  fastOptions());
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.BestPePerm.size(), 4u);   // k, c, h, w.
  EXPECT_EQ(R.BestDramPerm.size(), 4u);
  EXPECT_GT(R.ModelObjective, 0.0);
  // The model estimate should be in the ballpark of the evaluated energy
  // (same counting rules, modulo rounding and halo bounds).
  EXPECT_GT(R.Eval.EnergyPj, 0.2 * R.ModelObjective);
  EXPECT_LT(R.Eval.EnergyPj, 5.0 * R.ModelObjective);
}

// ---- Robustness: validation, deadlines, graceful degradation --------------

#include "support/FaultInjection.h"

#include <chrono>

TEST(Optimizer, RejectsInvalidArchitecture) {
  Problem P = makeConvProblem(smallConv());
  ArchConfig Bad = eyerissArch();
  Bad.NumPEs = 0;
  ThistleResult R =
      optimizeLayer(P, Bad, TechParams::cgo45nm(), fastOptions());
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  // Nothing ran: the report is empty rather than full of failures.
  EXPECT_EQ(R.Report.total(), 0u);
}

TEST(Optimizer, RejectsNonPositiveAreaBudget) {
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.Mode = DesignMode::CoDesign;
  ThistleResult R = optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                                  O, /*AreaBudgetUm2=*/0.0);
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
}

TEST(Optimizer, ExpiredDeadlineSkipsAllPairs) {
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.DeadlineAt = std::chrono::steady_clock::now() - std::chrono::hours(1);
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.InputStatus.isOk()); // Inputs were fine; time was not.
  EXPECT_TRUE(R.Report.DeadlineExpired);
  EXPECT_EQ(R.Report.Skipped, R.Report.total());
  EXPECT_GT(R.Report.Skipped, 0u);
}

TEST(Optimizer, FarFutureDeadlineMatchesUnboundedRun) {
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  ThistleResult Ref =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(Ref.Found);
  O.DeadlineAt = std::chrono::steady_clock::now() + std::chrono::hours(24);
  ThistleResult R =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Eval.EnergyPj, Ref.Eval.EnergyPj);
  EXPECT_EQ(R.ModelObjective, Ref.ModelObjective);
  EXPECT_EQ(R.Map.Factors, Ref.Map.Factors);
  EXPECT_FALSE(R.Report.DeadlineExpired);
  // fastOptions caps the pair list, so the only skips are the cap's own
  // policy skips — identical to the unbounded-deadline reference.
  EXPECT_EQ(R.Report.Skipped, R.Report.SkippedByPolicy);
  EXPECT_EQ(R.Report.Skipped, Ref.Report.Skipped);
}

#if THISTLE_FAULT_INJECTION_ENABLED

namespace {

struct OptFaultGuard {
  ~OptFaultGuard() { fault::disarmAll(); }
};

} // namespace

TEST(Optimizer, PoisonedPairDegradesGracefully) {
  OptFaultGuard G;
  Problem P = makeConvProblem(smallConv());
  ThistleOptions O = fastOptions();
  O.Threads = 1;

  // Kill exactly pair task 0; the sweep must return the optimum over
  // the remaining pairs and name the loss in the report.
  fault::arm("thistle.pair", /*Key=*/0, /*MaxHits=*/1);
  ThistleResult Ref =
      optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
  ASSERT_TRUE(Ref.Found);
  EXPECT_FALSE(Ref.Report.clean());
  EXPECT_EQ(Ref.Report.Failed, 1u);
  ASSERT_GE(Ref.Report.Incidents.size(), 1u);
  const SweepIncident *Poisoned = nullptr;
  for (const SweepIncident &I : Ref.Report.Incidents)
    if (I.Outcome == TaskOutcome::Failed)
      Poisoned = &I;
  ASSERT_NE(Poisoned, nullptr);
  EXPECT_EQ(Poisoned->Index, 0u);
  EXPECT_NE(Poisoned->Detail.find("injected"), std::string::npos);

  // The degraded result is bit-identical at every thread count: the
  // injection is keyed on the global task index, which does not depend
  // on the shard layout.
  for (unsigned Threads : {2u, 8u}) {
    SCOPED_TRACE(std::to_string(Threads) + " threads");
    fault::arm("thistle.pair", /*Key=*/0, /*MaxHits=*/1);
    O.Threads = Threads;
    ThistleResult R =
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
    ASSERT_TRUE(R.Found);
    EXPECT_EQ(R.Eval.EnergyPj, Ref.Eval.EnergyPj);
    EXPECT_EQ(R.ModelObjective, Ref.ModelObjective);
    EXPECT_EQ(R.Map.Factors, Ref.Map.Factors);
    EXPECT_EQ(R.Report.Failed, Ref.Report.Failed);
    EXPECT_EQ(R.Report.Solved, Ref.Report.Solved);
    ASSERT_EQ(R.Report.Incidents.size(), Ref.Report.Incidents.size());
    for (std::size_t I = 0; I < R.Report.Incidents.size(); ++I)
      EXPECT_EQ(R.Report.Incidents[I].Index, Ref.Report.Incidents[I].Index);
  }
}

TEST(Optimizer, CleanRunReportIsClean) {
  Problem P = makeConvProblem(smallConv());
  ThistleResult R = optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(),
                                  fastOptions());
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Report.clean());
  EXPECT_EQ(R.Report.Failed, 0u);
  // The pair cap's policy skips are recorded (so counts cover the whole
  // pruned pair universe) without making the sweep unclean.
  EXPECT_EQ(R.Report.Skipped, R.Report.SkippedByPolicy);
  EXPECT_EQ(R.Report.total(),
            R.Stats.PairsTotal - R.Stats.PairsSkippedBySymmetry);
  EXPECT_EQ(R.Stats.PairsSolved, R.Report.Solved + R.Report.Degraded);
}

// The accounting invariant the PairsSolved fix pins down: whatever a
// sweep loses — injected faults, an expired deadline, the pair cap —
// the stats must agree with the report, and the report must cover the
// full post-pruning pair universe. Historically PairsSolved was
// assigned the planned count before the sweep ran, so any lost pair
// broke the first equality.
TEST(Optimizer, StatsAgreeWithReportUnderFaults) {
  OptFaultGuard G;
  Problem P = makeConvProblem(smallConv());

  struct Case {
    const char *Label;
    bool Fault;
    bool ExpiredDeadline;
    unsigned Cap;
  } Cases[] = {
      {"injected fault", true, false, 12},
      {"expired deadline", false, true, 12},
      {"live pair cap", false, false, 3},
      {"fault under cap", true, false, 5},
  };
  for (const Case &C : Cases) {
    for (unsigned Threads : {1u, 8u}) {
      SCOPED_TRACE(std::string(C.Label) + ", " +
                   std::to_string(Threads) + " threads");
      ThistleOptions O = fastOptions();
      O.MaxPermClassPairs = C.Cap;
      O.Threads = Threads;
      if (C.ExpiredDeadline)
        O.DeadlineAt =
            std::chrono::steady_clock::now() - std::chrono::hours(1);
      if (C.Fault)
        fault::arm("thistle.pair", /*Key=*/1, /*MaxHits=*/1);
      ThistleResult R =
          optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O);
      fault::disarmAll();
      EXPECT_EQ(R.Stats.PairsSolved, R.Report.Solved + R.Report.Degraded);
      EXPECT_EQ(R.Report.total(),
                R.Stats.PairsTotal - R.Stats.PairsSkippedBySymmetry);
      EXPECT_LE(R.Stats.PairsSolved, R.Stats.PairsPlanned);
      EXPECT_EQ(R.Stats.PairsPlanned + R.Report.SkippedByPolicy,
                R.Stats.PairsTotal - R.Stats.PairsSkippedBySymmetry);
      if (C.Fault) {
        EXPECT_EQ(R.Report.Failed, 1u);
        EXPECT_LT(R.Stats.PairsSolved, R.Stats.PairsPlanned);
      }
      if (C.ExpiredDeadline) {
        EXPECT_TRUE(R.Report.DeadlineExpired);
        EXPECT_EQ(R.Stats.PairsSolved, 0u);
      }
      if (C.Cap < 12)
        EXPECT_GT(R.Report.SkippedByPolicy, 0u);
    }
  }
}

#endif // THISTLE_FAULT_INJECTION_ENABLED
