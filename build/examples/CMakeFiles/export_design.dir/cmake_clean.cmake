file(REMOVE_RECURSE
  "CMakeFiles/export_design.dir/export_design.cpp.o"
  "CMakeFiles/export_design.dir/export_design.cpp.o.d"
  "export_design"
  "export_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
