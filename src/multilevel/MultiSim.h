//===- multilevel/MultiSim.h - L-level brute-force oracle -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbitrary-depth generalization of sim/TiledLoopSim: walks the full
/// L-level tiled loop nest and counts words moved across every
/// adjacent-level boundary, with the same executable counting semantics
/// (dense tile boxes, contiguous-advance streaming reuse, per-level
/// resets, multicast collapse at the fan-out boundary, private traffic
/// below it). Used by tests to validate multilevel/MultiNestAnalysis.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_MULTISIM_H
#define THISTLE_MULTILEVEL_MULTISIM_H

#include "multilevel/MultiMapping.h"
#include "multilevel/MultiNestAnalysis.h"

#include <cstdint>
#include <vector>

namespace thistle {

/// Oracle counts per boundary b and tensor t, split by direction so the
/// fixed-depth sim/ wrapper can report DRAM->SRAM vs SRAM->DRAM etc.:
/// Loads[b][t] = words moved outer-to-inner (reads of level b+1),
/// Stores[b][t] = words written back inner-to-outer (read-write tensors
/// only), Words[b][t] = their sum.
struct MultiSimResult {
  std::vector<std::vector<std::int64_t>> Words;
  std::vector<std::vector<std::int64_t>> Loads;
  std::vector<std::vector<std::int64_t>> Stores;
};

/// Simulates \p Map on \p H; cost proportional to the total tile steps.
MultiSimResult simulateMultiNest(const Problem &Prob, const Hierarchy &H,
                                 const MultiMapping &Map);

/// Ground truth in the analytical MultiProfile shape: per-boundary words
/// from the executable walk, occupancy and PEs from the mapping geometry.
/// CostEvaluator backends are diffed against this field by field (the
/// exact-count fields must match every backend exactly; see
/// docs/EVALUATOR.md). Same cost caveat as simulateMultiNest.
MultiProfile simulateMultiNestProfile(const Problem &Prob, const Hierarchy &H,
                                      const MultiMapping &Map);

} // namespace thistle

#endif // THISTLE_MULTILEVEL_MULTISIM_H
