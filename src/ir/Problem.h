//===- ir/Problem.h - Tensor-program intermediate representation -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The problem IR mirrors a Timeloop problem specification (paper Fig. 3b):
/// a dense iteration space given by named iterators with extents, and a set
/// of data spaces (tensors) whose dimensions are affine projections
/// (sums of stride * iterator terms) of the iterators. Listing 1's CNN and
/// Fig. 1's matrix multiplication are both instances.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_IR_PROBLEM_H
#define THISTLE_IR_PROBLEM_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// A loop iterator of the dense iteration space.
struct Iterator {
  std::string Name;
  std::int64_t Extent;
};

/// One data dimension of a tensor: an affine projection
///   sum_t Stride_t * Iter_t
/// of the iteration space (e.g. In's third dimension is x*h + r).
struct DimRef {
  struct Term {
    unsigned Iter;       ///< Index into Problem::iterators().
    std::int64_t Stride; ///< Positive compile-time stride.
  };
  std::vector<Term> Terms;

  /// The data extent covered when iterator t spans TileExtents[Iter_t]
  /// points: sum_t Stride_t * (TileExtents_t - 1) + 1.
  std::int64_t extentFor(const std::vector<std::int64_t> &TileExtents) const;

  /// True if the dimension's projection uses \p Iter.
  bool uses(unsigned Iter) const;
};

/// A data space: name, dimension projections, and read/write behaviour.
struct Tensor {
  std::string Name;
  std::vector<DimRef> Dims;
  /// True for tensors that are both read and written (the output of the
  /// CNN / the C matrix); their traffic counts twice (paper section III-A).
  bool ReadWrite = false;

  /// True if any dimension's projection uses \p Iter.
  bool usesIter(unsigned Iter) const;

  /// Words touched when each iterator t spans TileExtents[t] points.
  std::int64_t footprintWords(
      const std::vector<std::int64_t> &TileExtents) const;
};

/// A dense-iteration-space tensor program (one CNN layer / one matmul).
class Problem {
public:
  Problem(std::string Name, std::vector<Iterator> Iters,
          std::vector<Tensor> Tensors);

  const std::string &name() const { return ProblemName; }
  const std::vector<Iterator> &iterators() const { return Iters; }
  const std::vector<Tensor> &tensors() const { return Tensors; }
  unsigned numIterators() const { return Iters.size(); }

  /// Index of the iterator named \p Name; asserts existence.
  unsigned iteratorIndex(const std::string &Name) const;

  /// Total multiply-accumulate count = product of all extents.
  std::int64_t numOps() const;

  /// Full per-iterator extents as a vector (for footprint computations).
  std::vector<std::int64_t> fullExtents() const;

private:
  std::string ProblemName;
  std::vector<Iterator> Iters;
  std::vector<Tensor> Tensors;
};

} // namespace thistle

#endif // THISTLE_IR_PROBLEM_H
