//===- bench/bench_fig4_energy_eyeriss.cpp - Paper Fig. 4 -----------------===//
//
// Reproduces Fig. 4: energy efficiency (pJ/MAC) of dataflow optimization
// on the *fixed* Eyeriss architecture, for every conv stage of ResNet-18
// and Yolo-9000, comparing the search-based Mapper baseline against
// Thistle, with the paper's EnergyUp = MapperEnergy / ThistleEnergy
// series. Expected shape: both in the 20-30 pJ/MAC band, Thistle slightly
// better (EnergyUp >= ~1). Then times one per-layer optimization.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printFig4() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  EnergyModel Energy(Tech);
  ThistleOptions TOpts =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);

  TablePrinter Table({"layer", "mapper pJ/MAC", "thistle pJ/MAC",
                      "EnergyUp", "thistle GP solves"});
  double GeoMean = 0.0;
  unsigned Count = 0;
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    MapperResult M = searchMappings(
        P, Arch, Energy, mapperOptions(SearchObjective::Energy));
    ThistleResult T = optimizeLayer(P, Arch, Tech, TOpts);
    std::string MapperCell = M.Found
        ? TablePrinter::formatDouble(M.BestEval.EnergyPerMacPj, 2)
        : std::string("-");
    std::string ThistleCell =
        T.Found ? TablePrinter::formatDouble(T.Eval.EnergyPerMacPj, 2)
                : std::string("-");
    std::string UpCell = "-";
    if (M.Found && T.Found) {
      double Up = M.BestEval.EnergyPj / T.Eval.EnergyPj;
      UpCell = TablePrinter::formatDouble(Up, 3);
      GeoMean += std::log(Up);
      ++Count;
    }
    Table.addRow({L.Name, MapperCell, ThistleCell, UpCell,
                  std::to_string(T.Stats.PairsSolved)});
  }
  Table.print(std::cout);
  if (Count)
    std::printf("\ngeomean EnergyUp: %.3f (paper: Thistle slightly better, "
                "both 20-30 pJ/MAC)\n\n",
                std::exp(GeoMean / Count));
}

void timeThistleEnergyLayer(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  ThistleOptions O =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O));
}
BENCHMARK(timeThistleEnergyLayer)->Unit(benchmark::kMillisecond);

void timeMapperEnergyLayer(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  EnergyModel Energy(TechParams::cgo45nm());
  for (auto _ : State)
    benchmark::DoNotOptimize(searchMappings(
        P, eyerissArch(), Energy, mapperOptions(SearchObjective::Energy)));
}
BENCHMARK(timeMapperEnergyLayer)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Fig. 4",
              "Energy on the fixed Eyeriss architecture: Mapper baseline "
              "vs Thistle (lower pJ/MAC is better)");
  printFig4();
  return runTimings(Argc, Argv);
}
