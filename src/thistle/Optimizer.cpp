//===- thistle/Optimizer.cpp - Thistle design-space optimizer -------------===//

#include "thistle/Optimizer.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/PermutationSpace.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <tuple>
#include <utility>

using namespace thistle;

namespace {

/// Tiled iterators: extent > 1 and not named in the untiled list.
std::vector<unsigned> tiledIterators(const Problem &Prob,
                                     const ThistleOptions &Options) {
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    const Iterator &It = Prob.iterators()[I];
    if (It.Extent <= 1)
      continue;
    bool Untiled =
        std::find(Options.UntiledIterNames.begin(),
                  Options.UntiledIterNames.end(),
                  It.Name) != Options.UntiledIterNames.end();
    if (!Untiled)
      Out.push_back(I);
  }
  return Out;
}

/// One (PE-perm, DRAM-perm) class pair scheduled for a GP solve.
struct PairTask {
  std::size_t QI, SI;
};

/// Per-shard sweep state: the best design seen by one worker plus its stat
/// deltas. Shards never share state on the hot path; the accumulators are
/// merged in shard order once the sweep drains.
struct SweepAccumulator {
  bool Found = false;
  double Obj = 0.0;
  std::size_t QI = 0, SI = 0;
  RoundedDesign Design;
  double ModelObjective = 0.0;
  unsigned NewtonIterations = 0;
  unsigned GpInfeasible = 0;
  std::size_t CandidatesEvaluated = 0;
  SweepReport Report;
};

/// Resolves the two deadline options into one absolute instant.
/// Returns false when no deadline is configured.
bool resolveDeadline(std::chrono::milliseconds Relative,
                     std::chrono::steady_clock::time_point Absolute,
                     std::chrono::steady_clock::time_point &Out) {
  if (Absolute != std::chrono::steady_clock::time_point{}) {
    Out = Absolute;
    return true;
  }
  if (Relative.count() > 0) {
    Out = std::chrono::steady_clock::now() + Relative;
    return true;
  }
  return false;
}

/// The deterministic winner order: lexicographic on (objective, QI, SI).
/// This reproduces the sequential sweep exactly, where a later pair only
/// displaced the incumbent on a strictly smaller objective.
bool winsOver(double Obj, std::size_t QI, std::size_t SI,
              const SweepAccumulator &Acc) {
  return !Acc.Found ||
         std::tie(Obj, QI, SI) < std::tie(Acc.Obj, Acc.QI, Acc.SI);
}

} // namespace

ThistleResult thistle::optimizeLayer(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const TechParams &Tech,
                                     const ThistleOptions &Options,
                                     double AreaBudgetUm2) {
  ThistleResult Result;
  std::vector<unsigned> Tiled = tiledIterators(Prob, Options);

  // Validate the user-reachable inputs once, before any GP is built.
  // The per-pair permutations come from our own enumeration, so an
  // empty-permutation spec covers everything the caller controls.
  {
    GpBuildSpec Probe;
    Probe.Mode = Options.Mode;
    Probe.Objective = Options.Objective;
    Probe.TiledIters = Tiled;
    Probe.Arch = Arch;
    Probe.Tech = Tech;
    Probe.AreaBudgetUm2 = AreaBudgetUm2;
    Result.InputStatus = validateGpBuildSpec(Prob, Probe)
                             .withContext("validating optimizer inputs");
    if (!Result.InputStatus.isOk())
      return Result;
  }

  // The class enumeration is a function of the problem and the tiled
  // iterator set only, so the two temporal levels share it.
  std::vector<PermClass> Classes = enumeratePermClasses(Prob, Tiled);
  Result.Stats.PermClassesPerLevel = Classes.size();
  for (const PermClass &C : Classes)
    Result.Stats.RawPermsPerLevel += C.MemberCount;

  std::vector<ProblemSymmetry> Symmetries;
  if (Options.UseSymmetryPruning)
    Symmetries = findProblemSymmetries(Prob);

  // Plan the sweep serially: symmetry pruning and the pair cap depend on
  // the enumeration order, so the task list must be fixed before fan-out
  // for the parallel sweep to solve exactly the sequential pair set.
  std::vector<PairTask> Pairs;
  for (std::size_t QI = 0; QI < Classes.size(); ++QI) {
    for (std::size_t SI = 0; SI < Classes.size(); ++SI) {
      ++Result.Stats.PairsTotal;

      // Symmetry pruning: skip a pair if a problem symmetry maps it to a
      // lexicographically smaller pair (its mirror image was/will be
      // solved instead).
      bool Skip = false;
      for (const ProblemSymmetry &Sym : Symmetries) {
        PermSignature MappedQ =
            Classes[QI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        PermSignature MappedS =
            Classes[SI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        if (std::tie(MappedQ, MappedS) <
            std::tie(Classes[QI].Signature, Classes[SI].Signature)) {
          Skip = true;
          break;
        }
      }
      if (Skip) {
        ++Result.Stats.PairsSkippedBySymmetry;
        continue;
      }
      if (Options.MaxPermClassPairs &&
          Pairs.size() >= Options.MaxPermClassPairs)
        continue;
      Pairs.push_back({QI, SI});
    }
  }
  Result.Stats.PairsSolved = static_cast<unsigned>(Pairs.size());

  std::chrono::steady_clock::time_point DeadlineAt;
  const bool HasDeadline =
      resolveDeadline(Options.Deadline, Options.DeadlineAt, DeadlineAt);

  // Each task runs the full build -> solve -> halo-retry -> extract ->
  // round chain independently; everything it reads is const-shared. A
  // task that fails (numerics, injected fault, exception) or is skipped
  // (deadline) records an incident and drops out; the sweep still
  // returns the optimum over the pairs that completed.
  auto solvePair = [&](SweepAccumulator &Acc, std::size_t TaskIdx) {
    const PairTask &Task = Pairs[TaskIdx];
    telemetry::TraceScope PairSpan("thistle.pair", TaskIdx);

    if (HasDeadline && std::chrono::steady_clock::now() >= DeadlineAt) {
      Acc.Report.DeadlineExpired = true;
      Acc.Report.record(TaskOutcome::Skipped, TaskIdx, Task.QI, Task.SI, 0,
                        "deadline expired before the pair was attempted");
      return;
    }
    if (fault::shouldFail("thistle.pair",
                          static_cast<std::int64_t>(TaskIdx))) {
      Acc.Report.record(TaskOutcome::Failed, TaskIdx, Task.QI, Task.SI, 0,
                        "injected fault at site thistle.pair");
      return;
    }

    try {
      GpBuildSpec Spec;
      Spec.Mode = Options.Mode;
      Spec.Objective = Options.Objective;
      Spec.PePerm = Classes[Task.QI].Representative;
      Spec.DramPerm = Classes[Task.SI].Representative;
      Spec.TiledIters = Tiled;
      Spec.SpatialUntiled = Options.SpatialUntiled;
      Spec.Arch = Arch;
      Spec.Tech = Tech;
      Spec.AreaBudgetUm2 = AreaBudgetUm2;

      GpSolveReport Solve;
      GpBuild Build = buildGp(Prob, Spec);
      GpSolution Solution =
          solveGpWithRetry(Build.Gp, Options.Solver, &Solve);
      Acc.NewtonIterations += Solution.NewtonIterations;
      unsigned Attempts = Solve.attempts();
      if (!Solution.Feasible) {
        // The drop-negative halo bound can reject tiny register files
        // that are actually feasible; retry with the product bound,
        // which is exact in the small-tile regime.
        Spec.Halo = HaloBound::ProductOfTerms;
        Build = buildGp(Prob, Spec);
        GpSolveReport Fallback;
        Solution = solveGpWithRetry(Build.Gp, Options.Solver, &Fallback);
        Acc.NewtonIterations += Solution.NewtonIterations;
        Attempts += Fallback.attempts();
      }
      if (!Solution.Feasible ||
          Solution.Outcome == SolveOutcome::NonFinite) {
        // Keep the historical stat for ANY pair that yields no feasible
        // iterate, whatever the cause, so Stats stay comparable.
        ++Acc.GpInfeasible;
        TaskOutcome Outcome =
            Solution.Outcome == SolveOutcome::Infeasible
                ? TaskOutcome::Infeasible
                : TaskOutcome::Failed;
        Acc.Report.record(Outcome, TaskIdx, Task.QI, Task.SI, Attempts,
                          Solution.Failure.empty()
                              ? std::string(solveOutcomeName(Solution.Outcome))
                              : Solution.Failure);
        if (telemetry::traceEnabled())
          PairSpan.setDetail(taskOutcomeName(Outcome));
        return;
      }
      // Feasible but not converged: accept the best iterate (as the
      // sweep always has), flagged Degraded in the report.
      Acc.Report.record(Solution.Converged ? TaskOutcome::Solved
                                           : TaskOutcome::Degraded,
                        TaskIdx, Task.QI, Task.SI, Attempts,
                        Solution.Converged ? std::string() : Solution.Failure);

      if (telemetry::traceEnabled())
        PairSpan.setDetail(
            std::string(Solution.Converged ? "solved" : "degraded") +
            " attempts=" + std::to_string(Attempts));
      telemetry::count("thistle.pairs.solved");

      RealSolution Real = extractSolution(Prob, Build, Spec, Solution);
      RoundedDesign Design =
          roundSolution(Prob, Spec, Real, Options.Rounding);
      Acc.CandidatesEvaluated += Design.CandidatesTried;
      if (telemetry::metricsEnabled())
        telemetry::count("thistle.rounding.candidates",
                         Design.CandidatesTried);
      if (!Design.Found)
        return;

      double Obj = objectiveValue(Design.Eval, Options.Objective);
      // The rounding gap: how much the integer design lost (or, rarely,
      // gained) relative to the relaxed GP optimum for this pair.
      if (telemetry::metricsEnabled() && Real.Objective > 0.0)
        telemetry::observe("thistle.rounding.rel_delta",
                           (Obj - Real.Objective) / Real.Objective);
      if (winsOver(Obj, Task.QI, Task.SI, Acc)) {
        Acc.Found = true;
        Acc.Obj = Obj;
        Acc.QI = Task.QI;
        Acc.SI = Task.SI;
        Acc.Design = std::move(Design);
        Acc.ModelObjective = Real.Objective;
      }
    } catch (const std::exception &E) {
      Acc.Report.record(TaskOutcome::Failed, TaskIdx, Task.QI, Task.SI, 0,
                        std::string("exception: ") + E.what());
    }
  };

  auto mergeShards = [](SweepAccumulator &A, SweepAccumulator &&B) {
    A.NewtonIterations += B.NewtonIterations;
    A.GpInfeasible += B.GpInfeasible;
    A.CandidatesEvaluated += B.CandidatesEvaluated;
    A.Report.merge(std::move(B.Report));
    if (B.Found && winsOver(B.Obj, B.QI, B.SI, A)) {
      A.Found = true;
      A.Obj = B.Obj;
      A.QI = B.QI;
      A.SI = B.SI;
      A.Design = std::move(B.Design);
      A.ModelObjective = B.ModelObjective;
    }
  };

  telemetry::beginEpoch();
  telemetry::TraceScope SweepSpan("thistle.optimize_layer");
  telemetry::count("thistle.sweeps");
  ThreadPool Pool(Options.Threads);
  SweepAccumulator Total = parallelReduce(
      Pool, Pairs.size(), SweepAccumulator{}, solvePair, mergeShards);
  if (telemetry::traceEnabled())
    SweepSpan.setDetail("pairs=" + std::to_string(Pairs.size()) +
                        " solved=" + std::to_string(Total.Report.Solved) +
                        " degraded=" +
                        std::to_string(Total.Report.Degraded));

  Result.Stats.NewtonIterations = Total.NewtonIterations;
  Result.Stats.GpInfeasible = Total.GpInfeasible;
  Result.Stats.CandidatesEvaluated = Total.CandidatesEvaluated;
  Result.Report = std::move(Total.Report);
  if (Total.Found) {
    Result.Found = true;
    Result.Arch = Total.Design.Arch;
    Result.Map = std::move(Total.Design.Map);
    Result.Eval = Total.Design.Eval;
    Result.ModelObjective = Total.ModelObjective;
    Result.BestPePerm = Classes[Total.QI].Representative;
    Result.BestDramPerm = Classes[Total.SI].Representative;
  }
  return Result;
}
