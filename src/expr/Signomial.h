//===- expr/Signomial.h - Sums of monomials ---------------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A signomial is a finite sum of monomials whose coefficients may be
/// negative. CNN halo footprints produce signomials (e.g. the extent
/// q_h*r_h + q_r*r_r - 1 of the input's third dimension, paper section
/// III-A); a posynomial is the special case with all-positive coefficients
/// and is what Disciplined Geometric Programming requires. The
/// posynomialUpperBound() operation drops the negative terms, which is a
/// valid upper bound because all variables are positive; this is how
/// signomial footprints enter the DGP-compatible optimization problems.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_EXPR_SIGNOMIAL_H
#define THISTLE_EXPR_SIGNOMIAL_H

#include "expr/Monomial.h"

#include <string>
#include <vector>

namespace thistle {

/// Sum of monomials, kept in canonical (combined, variable-sorted) form.
class Signomial {
public:
  /// The zero signomial.
  Signomial() = default;

  /// A single-monomial signomial.
  /*implicit*/ Signomial(Monomial M);

  /// The constant signomial \p Value.
  static Signomial constant(double Value);

  /// The signomial consisting of the single variable \p Var.
  static Signomial variable(VarId Var);

  const std::vector<Monomial> &monomials() const { return Monomials; }
  bool isZero() const { return Monomials.empty(); }

  /// True if every coefficient is positive (the DGP-admissible case).
  bool isPosynomial() const;

  /// True if this is a single monomial with positive coefficient.
  bool isMonomial() const { return Monomials.size() == 1 && isPosynomial(); }

  /// Returns the unique monomial; asserts isMonomial-like shape.
  const Monomial &asMonomial() const;

  Signomial operator+(const Signomial &Other) const;
  Signomial operator-(const Signomial &Other) const;
  Signomial operator*(const Signomial &Other) const;
  Signomial operator*(const Monomial &M) const;
  Signomial scaled(double Scale) const;

  Signomial &operator+=(const Signomial &Other);

  /// Substitutes \p Var := \p Repl in every monomial (the Algorithm 1
  /// replace() step lifted to sums).
  Signomial substituted(VarId Var, const Monomial &Repl) const;

  /// Drops all negative-coefficient monomials. Since variables are
  /// positive, the result over-approximates the signomial pointwise.
  Signomial posynomialUpperBound() const;

  /// Exact numeric evaluation under \p Values.
  double evaluate(const Assignment &Values) const;

  /// True if any monomial mentions \p Var.
  bool mentions(VarId Var) const;

  /// Renders e.g. "q_h*r_h + q_r*r_r - 1".
  std::string toString(const VarTable &Table) const;

  bool operator==(const Signomial &Other) const;

private:
  std::vector<Monomial> Monomials;

  /// Re-sorts and merges monomials with identical variable parts; drops
  /// zero-coefficient terms.
  void canonicalize();
};

/// Alias used where the math requires all-positive coefficients; checked
/// dynamically by the solver.
using Posynomial = Signomial;

} // namespace thistle

#endif // THISTLE_EXPR_SIGNOMIAL_H
