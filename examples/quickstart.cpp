//===- examples/quickstart.cpp - Thistle in 60 lines ----------------------===//
//
// Quickstart for the Thistle library: optimize the dataflow of one
// ResNet-18 conv layer for the fixed Eyeriss architecture, then co-design
// a fresh architecture with the same silicon area, and compare.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

int main() {
  // 1. Pick a workload: ResNet-18 conv stage 2 (64x64x56x56, 3x3).
  ConvLayer Layer = resnet18Layers()[1];
  Problem Prob = makeConvProblem(Layer);
  std::printf("Layer %s: K=%lld C=%lld HxW=%lldx%lld RxS=%lldx%lld "
              "(%lld MACs)\n\n",
              Layer.Name.c_str(), static_cast<long long>(Layer.K),
              static_cast<long long>(Layer.C),
              static_cast<long long>(Layer.outH()),
              static_cast<long long>(Layer.outW()),
              static_cast<long long>(Layer.R),
              static_cast<long long>(Layer.S),
              static_cast<long long>(Prob.numOps()));

  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();

  // 2. Dataflow optimization for the fixed Eyeriss architecture (Eq. 3).
  ThistleOptions Opts;
  ThistleResult Fixed = optimizeLayer(Prob, Eyeriss, Tech, Opts);
  if (!Fixed.Found) {
    std::printf("no legal dataflow found\n");
    return 1;
  }
  std::printf("--- Dataflow optimization on Eyeriss (168 PEs, 512 regs, "
              "128 KB SRAM) ---\n");
  std::printf("energy: %.2f pJ/MAC, IPC: %.1f, PEs used: %lld\n",
              Fixed.Eval.EnergyPerMacPj, Fixed.Eval.MacIpc,
              static_cast<long long>(Fixed.Eval.Profile.PEsUsed));
  std::printf("%s\n", Fixed.Map.toString(Prob).c_str());

  // 3. Architecture-dataflow co-design at equal area (Eq. 5).
  ThistleOptions CoOpts;
  CoOpts.Mode = DesignMode::CoDesign;
  ThistleResult Co =
      optimizeLayer(Prob, Eyeriss, Tech, CoOpts, eyerissAreaUm2(Tech));
  if (!Co.Found) {
    std::printf("co-design found no legal point\n");
    return 1;
  }
  std::printf("--- Co-design at equal area (%.2f mm^2) ---\n",
              eyerissAreaUm2(Tech) * 1e-6);
  std::printf("architecture: P=%lld PEs, R=%lld regs/PE, S=%lld SRAM "
              "words (area %.2f mm^2)\n",
              static_cast<long long>(Co.Arch.NumPEs),
              static_cast<long long>(Co.Arch.RegWordsPerPE),
              static_cast<long long>(Co.Arch.SramWords),
              Co.Arch.areaUm2(Tech) * 1e-6);
  std::printf("energy: %.2f pJ/MAC (%.1fx better than Eyeriss dataflow)\n",
              Co.Eval.EnergyPerMacPj,
              Fixed.Eval.EnergyPerMacPj / Co.Eval.EnergyPerMacPj);
  std::printf("%s", Co.Map.toString(Prob).c_str());
  return 0;
}
