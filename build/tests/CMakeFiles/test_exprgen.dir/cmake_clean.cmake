file(REMOVE_RECURSE
  "CMakeFiles/test_exprgen.dir/ExprGenTest.cpp.o"
  "CMakeFiles/test_exprgen.dir/ExprGenTest.cpp.o.d"
  "test_exprgen"
  "test_exprgen.pdb"
  "test_exprgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exprgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
