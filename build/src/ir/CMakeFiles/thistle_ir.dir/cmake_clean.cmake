file(REMOVE_RECURSE
  "CMakeFiles/thistle_ir.dir/Builders.cpp.o"
  "CMakeFiles/thistle_ir.dir/Builders.cpp.o.d"
  "CMakeFiles/thistle_ir.dir/Mapping.cpp.o"
  "CMakeFiles/thistle_ir.dir/Mapping.cpp.o.d"
  "CMakeFiles/thistle_ir.dir/Problem.cpp.o"
  "CMakeFiles/thistle_ir.dir/Problem.cpp.o.d"
  "libthistle_ir.a"
  "libthistle_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
