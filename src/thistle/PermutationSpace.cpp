//===- thistle/PermutationSpace.cpp - Pruned permutation enumeration ------===//

#include "thistle/PermutationSpace.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <sstream>

using namespace thistle;

PermSignature
PermSignature::mapped(const std::vector<unsigned> &IterMap,
                      const std::vector<unsigned> &TensorMap) const {
  PermSignature Out;
  Out.Tensors.resize(Tensors.size());
  for (std::size_t T = 0; T < Tensors.size(); ++T) {
    TensorSig Sig;
    Sig.InnermostPresent =
        Tensors[T].InnermostPresent < 0
            ? Tensors[T].InnermostPresent // Sentinels map to themselves.
            : static_cast<int>(IterMap[Tensors[T].InnermostPresent]);
    for (unsigned H : Tensors[T].Hoisted)
      Sig.Hoisted.push_back(IterMap[H]);
    std::sort(Sig.Hoisted.begin(), Sig.Hoisted.end());
    Out.Tensors[TensorMap[T]] = std::move(Sig);
  }
  return Out;
}

std::string PermSignature::toString(const Problem &Prob) const {
  std::ostringstream OS;
  for (std::size_t T = 0; T < Tensors.size(); ++T) {
    if (T)
      OS << " ";
    OS << Prob.tensors()[T].Name << "(stream=";
    OS << (Tensors[T].InnermostPresent < 0
               ? std::string("-")
               : Prob.iterators()[Tensors[T].InnermostPresent].Name);
    OS << ",hoist={";
    for (std::size_t H = 0; H < Tensors[T].Hoisted.size(); ++H)
      OS << (H ? "," : "") << Prob.iterators()[Tensors[T].Hoisted[H]].Name;
    OS << "})";
  }
  return OS.str();
}

namespace {

/// True if \p It appears in a multi-term (halo) dimension of \p T, where
/// streaming (replace) differs from reloading (multiply).
bool streamsWithHalo(const Tensor &T, unsigned It) {
  for (const DimRef &D : T.Dims)
    if (D.Terms.size() > 1 && D.uses(It))
      return true;
  return false;
}

} // namespace

PermSignature thistle::permSignature(const Problem &Prob,
                                     const std::vector<unsigned> &Perm) {
  PermSignature Sig;
  Sig.Tensors.resize(Prob.tensors().size());
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    PermSignature::TensorSig &S = Sig.Tensors[TI];
    for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
      unsigned It = Perm[Pos - 1];
      if (T.usesIter(It)) {
        S.InnermostPresent = streamsWithHalo(T, It)
                                 ? static_cast<int>(It)
                                 : PermSignature::TensorSig::NoHaloStream;
        break;
      }
      S.Hoisted.push_back(It);
    }
    std::sort(S.Hoisted.begin(), S.Hoisted.end());
  }
  return Sig;
}

std::vector<PermClass>
thistle::enumeratePermClasses(const Problem &Prob,
                              const std::vector<unsigned> &TiledIters) {
  std::vector<unsigned> Perm = TiledIters;
  std::sort(Perm.begin(), Perm.end());
  std::map<PermSignature, PermClass> Classes;
  do {
    PermSignature Sig = permSignature(Prob, Perm);
    auto [It, Inserted] = Classes.try_emplace(Sig);
    if (Inserted) {
      It->second.Representative = Perm;
      It->second.Signature = Sig;
    }
    ++It->second.MemberCount;
  } while (std::next_permutation(Perm.begin(), Perm.end()));

  std::vector<PermClass> Out;
  Out.reserve(Classes.size());
  for (auto &[Sig, Class] : Classes)
    Out.push_back(std::move(Class));
  return Out;
}

namespace {

/// Order-insensitive shape of a tensor used for symmetry matching: the
/// read/write flag plus the multiset of dimension projections, each a
/// sorted list of (iterator, stride) pairs.
using TensorShape =
    std::pair<bool,
              std::vector<std::vector<std::pair<unsigned, std::int64_t>>>>;

TensorShape shapeOf(const Tensor &T, const std::vector<unsigned> &IterMap) {
  TensorShape Shape;
  Shape.first = T.ReadWrite;
  for (const DimRef &D : T.Dims) {
    std::vector<std::pair<unsigned, std::int64_t>> Terms;
    for (const DimRef::Term &Term : D.Terms)
      Terms.push_back({IterMap[Term.Iter], Term.Stride});
    std::sort(Terms.begin(), Terms.end());
    Shape.second.push_back(std::move(Terms));
  }
  std::sort(Shape.second.begin(), Shape.second.end());
  return Shape;
}

/// Checks whether relabeling iterators by \p IterMap leaves the problem
/// invariant; fills \p TensorMap with the induced tensor reordering.
bool isSymmetry(const Problem &Prob, const std::vector<unsigned> &IterMap,
                std::vector<unsigned> &TensorMap) {
  // Extents must be preserved.
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    if (Prob.iterators()[I].Extent != Prob.iterators()[IterMap[I]].Extent)
      return false;

  std::vector<unsigned> Identity(Prob.numIterators());
  std::iota(Identity.begin(), Identity.end(), 0u);

  std::vector<TensorShape> Originals;
  for (const Tensor &T : Prob.tensors())
    Originals.push_back(shapeOf(T, Identity));

  TensorMap.assign(Prob.tensors().size(), ~0u);
  std::vector<bool> Used(Prob.tensors().size(), false);
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    TensorShape Mapped = shapeOf(Prob.tensors()[TI], IterMap);
    bool Matched = false;
    for (std::size_t TJ = 0; TJ < Originals.size(); ++TJ) {
      if (Used[TJ] || !(Originals[TJ] == Mapped))
        continue;
      TensorMap[TI] = static_cast<unsigned>(TJ);
      Used[TJ] = true;
      Matched = true;
      break;
    }
    if (!Matched)
      return false;
  }
  return true;
}

} // namespace

std::vector<ProblemSymmetry>
thistle::findProblemSymmetries(const Problem &Prob) {
  const unsigned N = Prob.numIterators();
  std::vector<ProblemSymmetry> Out;

  std::vector<unsigned> Identity(N);
  std::iota(Identity.begin(), Identity.end(), 0u);

  auto tryMap = [&](std::vector<unsigned> IterMap) {
    std::vector<unsigned> TensorMap;
    if (isSymmetry(Prob, IterMap, TensorMap))
      Out.push_back({std::move(IterMap), std::move(TensorMap)});
  };

  // Single transpositions.
  for (unsigned A = 0; A < N; ++A)
    for (unsigned B = A + 1; B < N; ++B) {
      std::vector<unsigned> Map = Identity;
      std::swap(Map[A], Map[B]);
      tryMap(std::move(Map));
    }

  // Products of two disjoint transpositions (e.g. {h<->w, r<->s}).
  for (unsigned A = 0; A < N; ++A)
    for (unsigned B = A + 1; B < N; ++B)
      for (unsigned C = A + 1; C < N; ++C)
        for (unsigned D = C + 1; D < N; ++D) {
          if (C == B || D == B)
            continue;
          std::vector<unsigned> Map = Identity;
          std::swap(Map[A], Map[B]);
          std::swap(Map[C], Map[D]);
          tryMap(std::move(Map));
        }
  return Out;
}
