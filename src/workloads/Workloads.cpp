//===- workloads/Workloads.cpp - Paper evaluation workloads ---------------===//

#include "workloads/Workloads.h"

using namespace thistle;

namespace {

/// Builds one square conv layer in Table II's format.
ConvLayer layer(std::string Name, std::int64_t K, std::int64_t C,
                std::int64_t HW, std::int64_t RS, std::int64_t Stride) {
  ConvLayer L;
  L.Name = std::move(Name);
  L.N = 1;
  L.K = K;
  L.C = C;
  L.Hin = HW;
  L.Win = HW;
  L.R = RS;
  L.S = RS;
  L.StrideX = Stride;
  L.StrideY = Stride;
  return L;
}

} // namespace

std::vector<ConvLayer> thistle::resnet18Layers() {
  return {
      layer("resnet-1", 64, 3, 224, 7, 2),
      layer("resnet-2", 64, 64, 56, 3, 1),
      layer("resnet-3", 64, 64, 56, 1, 1),
      layer("resnet-4", 128, 64, 56, 3, 2),
      layer("resnet-5", 128, 64, 56, 1, 2),
      layer("resnet-6", 128, 128, 28, 3, 1),
      layer("resnet-7", 256, 128, 28, 3, 2),
      layer("resnet-8", 256, 128, 28, 1, 1),
      layer("resnet-9", 256, 256, 14, 3, 1),
      layer("resnet-10", 512, 256, 14, 3, 2),
      layer("resnet-11", 512, 256, 14, 1, 2),
      layer("resnet-12", 512, 512, 7, 3, 1),
  };
}

std::vector<ConvLayer> thistle::yolo9000Layers() {
  return {
      layer("yolo-1", 32, 3, 544, 3, 1),
      layer("yolo-2", 64, 32, 272, 3, 1),
      layer("yolo-3", 128, 64, 136, 3, 1),
      layer("yolo-4", 64, 128, 136, 1, 1),
      layer("yolo-5", 256, 128, 68, 3, 1),
      layer("yolo-6", 128, 256, 68, 1, 1),
      layer("yolo-7", 512, 256, 34, 3, 1),
      layer("yolo-8", 256, 512, 34, 1, 1),
      layer("yolo-9", 1024, 512, 17, 3, 1),
      layer("yolo-10", 512, 1024, 17, 1, 1),
      layer("yolo-11", 28269, 1024, 17, 1, 1),
  };
}

std::vector<ConvLayer> thistle::allPaperLayers() {
  std::vector<ConvLayer> All = resnet18Layers();
  std::vector<ConvLayer> Yolo = yolo9000Layers();
  All.insert(All.end(), Yolo.begin(), Yolo.end());
  return All;
}

namespace {

/// Expands per-stage repeat counts into a flat instance list; repeated
/// instances get a ".k" suffix so the per-layer tables stay readable,
/// while the shape (all numeric fields) is untouched.
std::vector<ConvLayer> repeatLayers(const std::vector<ConvLayer> &Stages,
                                    const std::vector<unsigned> &Counts) {
  std::vector<ConvLayer> Out;
  for (std::size_t I = 0; I < Stages.size(); ++I) {
    const unsigned Reps = I < Counts.size() ? Counts[I] : 1;
    for (unsigned Rep = 0; Rep < Reps; ++Rep) {
      Out.push_back(Stages[I]);
      if (Reps > 1)
        Out.back().Name += "." + std::to_string(Rep + 1);
    }
  }
  return Out;
}

} // namespace

std::vector<ConvLayer> thistle::resnet18NetworkLayers() {
  // conv1, then per stage: the 3x3 body convs of both basic blocks plus
  // the stride-2 block's downsample path (Table II lists each shape
  // once; the counts restore the network's 21 conv instances).
  return repeatLayers(resnet18Layers(),
                      {1, 4, 1, 1, 1, 3, 1, 1, 3, 1, 1, 3});
}

std::vector<ConvLayer> thistle::yolo9000NetworkLayers() {
  // darknet-19's stacked 3x3/1x1 stages: the deeper 3x3 shapes and
  // their 1x1 bottlenecks recur, giving 19 conv instances.
  return repeatLayers(yolo9000Layers(),
                      {1, 1, 2, 1, 2, 1, 3, 2, 3, 2, 1});
}

std::vector<ConvLayer> thistle::allNetworkLayers() {
  std::vector<ConvLayer> All = resnet18NetworkLayers();
  std::vector<ConvLayer> Yolo = yolo9000NetworkLayers();
  All.insert(All.end(), Yolo.begin(), Yolo.end());
  return All;
}

namespace {

/// A depthwise 3x3 stage: one filter per input channel (Groups == C).
ConvLayer dwLayer(std::string Name, std::int64_t C, std::int64_t HW,
                  std::int64_t Stride) {
  ConvLayer L = layer(std::move(Name), C, C, HW, 3, Stride);
  L.Groups = C;
  return L;
}

/// A transposed (fractionally-strided) square stage.
ConvLayer tLayer(std::string Name, std::int64_t K, std::int64_t C,
                 std::int64_t HW, std::int64_t RS, std::int64_t Stride) {
  ConvLayer L = layer(std::move(Name), K, C, HW, RS, Stride);
  L.Transposed = true;
  return L;
}

/// A dilated square stage (stride 1).
ConvLayer dilLayer(std::string Name, std::int64_t K, std::int64_t C,
                   std::int64_t HW, std::int64_t RS, std::int64_t Dilation) {
  ConvLayer L = layer(std::move(Name), K, C, HW, RS, 1);
  L.DilationX = Dilation;
  L.DilationY = Dilation;
  return L;
}

} // namespace

std::vector<ConvLayer> thistle::mobilenetV2Layers() {
  // Width 1.0, 224x224 input. One entry per distinct shape, stem to
  // head; .dw marks the depthwise 3x3 of an inverted-residual block,
  // .ex/.pj its pointwise expand/project convs.
  return {
      layer("mbv2-1", 32, 3, 224, 3, 2),
      dwLayer("mbv2-2.dw", 32, 112, 1),
      layer("mbv2-3.pj", 16, 32, 112, 1, 1),
      layer("mbv2-4.ex", 96, 16, 112, 1, 1),
      dwLayer("mbv2-5.dw", 96, 112, 2),
      layer("mbv2-6.pj", 24, 96, 56, 1, 1),
      layer("mbv2-7.ex", 144, 24, 56, 1, 1),
      dwLayer("mbv2-8.dw", 144, 56, 1),
      layer("mbv2-9.pj", 24, 144, 56, 1, 1),
      dwLayer("mbv2-10.dw", 144, 56, 2),
      layer("mbv2-11.pj", 32, 144, 28, 1, 1),
      layer("mbv2-12.ex", 192, 32, 28, 1, 1),
      dwLayer("mbv2-13.dw", 192, 28, 1),
      layer("mbv2-14.pj", 32, 192, 28, 1, 1),
      dwLayer("mbv2-15.dw", 192, 28, 2),
      layer("mbv2-16.pj", 64, 192, 14, 1, 1),
      layer("mbv2-17.ex", 384, 64, 14, 1, 1),
      dwLayer("mbv2-18.dw", 384, 14, 1),
      layer("mbv2-19.pj", 64, 384, 14, 1, 1),
      layer("mbv2-20.pj", 96, 384, 14, 1, 1),
      layer("mbv2-21.ex", 576, 96, 14, 1, 1),
      dwLayer("mbv2-22.dw", 576, 14, 1),
      layer("mbv2-23.pj", 96, 576, 14, 1, 1),
      dwLayer("mbv2-24.dw", 576, 14, 2),
      layer("mbv2-25.pj", 160, 576, 7, 1, 1),
      layer("mbv2-26.ex", 960, 160, 7, 1, 1),
      dwLayer("mbv2-27.dw", 960, 7, 1),
      layer("mbv2-28.pj", 160, 960, 7, 1, 1),
      layer("mbv2-29.pj", 320, 960, 7, 1, 1),
      layer("mbv2-30", 1280, 320, 7, 1, 1),
  };
}

std::vector<ConvLayer> thistle::mobilenetV2NetworkLayers() {
  // The repeat counts restore MobileNetV2's 52 conv instances: expand
  // shapes recur across the tail blocks of one stage and the head block
  // of the next (e.g. 32->192 appears three times), depthwise and
  // project shapes across the residual blocks that keep their stage's
  // resolution.
  return repeatLayers(mobilenetV2Layers(),
                      {1, 1, 1, 1, 1, 1, 2, 1, 1, 1, 1, 3, 2, 2, 1,
                       1, 4, 4, 3, 1, 3, 2, 2, 1, 1, 3, 3, 2, 1, 1});
}

std::vector<ConvLayer> thistle::dcganLayers() {
  // Generator (64x64 DCGAN): four fractionally-strided convs from the
  // 4x4x1024 projection up to the image; outputs follow the full
  // stride*(Hin-1)+R convention (no cropping — docs/WORKLOADS.md).
  // Training also needs the backward pass of the discriminator's
  // stride-2 convs, which EcoFlow maps onto dilation-2 convolutions
  // over the upstream activations.
  return {
      tLayer("dcgan-g1", 512, 1024, 4, 4, 2),
      tLayer("dcgan-g2", 256, 512, 8, 4, 2),
      tLayer("dcgan-g3", 128, 256, 16, 4, 2),
      tLayer("dcgan-g4", 3, 128, 32, 4, 2),
      dilLayer("dcgan-d1", 128, 64, 32, 3, 2),
      dilLayer("dcgan-d2", 256, 128, 16, 3, 2),
  };
}

std::vector<ConvLayer> thistle::dcganNetworkLayers() { return dcganLayers(); }

ArchConfig thistle::eyerissArch() {
  ArchConfig Arch;
  Arch.NumPEs = 168;
  Arch.RegWordsPerPE = 512;
  // 128 KB of shared scratchpad SRAM holding 16-bit words.
  Arch.SramWords = 128 * 1024 / 2;
  return Arch;
}

double thistle::eyerissAreaUm2(const TechParams &Tech) {
  return eyerissArch().areaUm2(Tech);
}
