# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nestmodel[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_exprgen[1]_include.cmake")
include("/root/repo/build/tests/test_permspace[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_gpbuilder[1]_include.cmake")
include("/root/repo/build/tests/test_rounding[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
