# End-to-end check of the --evaluator backend selection:
#  1. --evaluator nest is byte-identical to the default run (the
#     interface refactor cannot perturb the shipped results).
#  2. --evaluator maestro prints the same bytes: the data-centric model
#     computes exactly the nest counts, so the winner and every printed
#     double agree.
#  3. --evaluator both scores like nest (same result lines), reports the
#     cross-check summary with zero divergence on stdout, and writes a
#     schema-valid run report whose evaluator section records the clean
#     cross-check.
#  4. An unknown backend name exits 2 naming the known backends.
# Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECKER=<script>
#         [-DPYTHON=<python3>] -P CheckEvaluator.cmake

set(LAYER --layer 16,8,14,14,3,3 --threads 2)

execute_process(
  COMMAND ${TOOL} ${LAYER}
  OUTPUT_VARIABLE DEFAULT_OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "default run: expected exit 0, got '${CODE}'\n${ERR}")
endif()

# 1./2. nest and maestro byte-identical to the default.
foreach(BACKEND nest maestro)
  execute_process(
    COMMAND ${TOOL} ${LAYER} --evaluator ${BACKEND}
    OUTPUT_VARIABLE BACKEND_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "--evaluator ${BACKEND}: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  if(NOT BACKEND_OUT STREQUAL "${DEFAULT_OUT}")
    message(FATAL_ERROR
      "--evaluator ${BACKEND}: output differs from the default run\n"
      "---- default ----\n${DEFAULT_OUT}\n"
      "---- ${BACKEND} ----\n${BACKEND_OUT}")
  endif()
endforeach()

# 3. Cross-check mode: default result lines as a prefix, a zero-divergence
#    summary, and a clean evaluator section in the run report.
set(REPORT ${WORK_DIR}/evaluator-report.json)
execute_process(
  COMMAND ${TOOL} ${LAYER} --evaluator both --trace-json ${REPORT}
  OUTPUT_VARIABLE BOTH_OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR
    "--evaluator both: expected exit 0, got '${CODE}'\n${ERR}")
endif()
string(LENGTH "${DEFAULT_OUT}" DEFAULT_LEN)
string(SUBSTRING "${BOTH_OUT}" 0 ${DEFAULT_LEN} BOTH_PREFIX)
if(NOT BOTH_PREFIX STREQUAL "${DEFAULT_OUT}")
  message(FATAL_ERROR
    "--evaluator both: result lines differ from the default run\n"
    "---- default ----\n${DEFAULT_OUT}\n---- both ----\n${BOTH_OUT}")
endif()
if(NOT BOTH_OUT MATCHES "evaluator cross-check \\(nest vs maestro\\)")
  message(FATAL_ERROR
    "--evaluator both: missing cross-check summary\n${BOTH_OUT}")
endif()
if(NOT BOTH_OUT MATCHES ", 0 divergent;")
  message(FATAL_ERROR
    "--evaluator both: the models diverged\n${BOTH_OUT}")
endif()
if(NOT BOTH_OUT MATCHES ", 0 mismatches")
  message(FATAL_ERROR
    "--evaluator both: counter mismatches reported\n${BOTH_OUT}")
endif()

if(NOT EXISTS ${REPORT})
  message(FATAL_ERROR "--evaluator both: ${REPORT} was not written")
endif()
if(PYTHON)
  execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${REPORT}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "schema check failed:\n${OUT}\n${ERR}")
  endif()
endif()
file(READ ${REPORT} JSON)
foreach(FIELD
    "\"backend\": \"both\"" "\"cross_check\": true"
    "\"divergent_evals\": 0" "\"counter_mismatches\": 0"
    "\"samples\": \\[")
  if(NOT JSON MATCHES "${FIELD}")
    message(FATAL_ERROR "report missing ${FIELD}\n${JSON}")
  endif()
endforeach()

# 4. Unknown backend: exit 2, diagnostic names the known backends.
execute_process(
  COMMAND ${TOOL} ${LAYER} --evaluator timeloop
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 2)
  message(FATAL_ERROR
    "unknown evaluator: expected exit code 2, got '${CODE}'")
endif()
if(NOT ERR MATCHES "unknown evaluator 'timeloop'")
  message(FATAL_ERROR "unknown evaluator: missing diagnostic\n${ERR}")
endif()
if(NOT ERR MATCHES "maestro")
  message(FATAL_ERROR
    "unknown evaluator: diagnostic does not list backends\n${ERR}")
endif()
