//===- tools/thistle-serve.cpp - Long-lived co-design daemon --------------===//
//
// The serving front end of the library (docs/SERVING.md): a loopback TCP
// daemon answering newline-delimited thistle-serve/1 JSON queries —
// the same layer and network co-design requests thistle-opt answers
// once per process — from many concurrent clients, over one shared
// durable GP solution cache. Identical concurrent queries are
// deduplicated onto a single solve, and the same query returns a
// byte-identical report whether the cache is cold, hot, reloaded from
// disk, or raced with identical concurrent requests.
//
// Examples:
//   thistle-serve --port 7433
//   thistle-serve --cache-dir /var/tmp/thistle --snapshot-every 64
//   thistle-serve --port-file port.txt --trace-json report.json
//
//===----------------------------------------------------------------------===//

#include "support/LineSocket.h"
#include "support/RunReport.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "thistle/ServeEngine.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace thistle;

namespace {

/// One row of the generated usage table; every flag the parser accepts
/// has exactly one row here. tools/check_docs.py scrapes the flag
/// comparisons out of this source file and fails if any of them is
/// missing from docs/SERVING.md, so a new flag cannot land
/// undocumented.
struct FlagSpec {
  const char *Flag; ///< "--port".
  const char *Arg;  ///< Value metavar, "" for boolean flags.
  const char *Help; ///< Description; '\n' separates continuation lines.
};

struct FlagGroup {
  const char *Title;
  const FlagSpec *Flags;
  std::size_t Count;
};

const FlagSpec ServerFlags[] = {
    {"--port", "N",
     "TCP port to listen on (loopback only;\n"
     "default 0 = kernel-assigned ephemeral\n"
     "port, printed on startup)"},
    {"--port-file", "FILE",
     "write the bound port number to FILE\n"
     "once listening (how scripts find an\n"
     "ephemeral port)"},
    {"--max-clients", "N",
     "concurrent connection cap; further\n"
     "connects get an error response and\n"
     "are closed (default: 64)"},
    {"--threads", "N",
     "worker threads shared by the solves\n"
     "(default: all hardware threads;\n"
     "responses are identical at any N)"},
};

const FlagSpec PersistenceFlags[] = {
    {"--cache-dir", "DIR",
     "durable GP solution cache: load any\n"
     "snapshot/journal found in DIR, append\n"
     "every new solution at task granularity\n"
     "(survives SIGKILL), compact to a\n"
     "snapshot on shutdown. Shared with\n"
     "thistle-opt --cache-dir: a sweep's\n"
     "solutions serve the daemon and vice\n"
     "versa (docs/PERSISTENCE.md)"},
    {"--cache-capacity", "N",
     "bound the in-memory cache to N entries\n"
     "(LRU eviction; default 0 = unbounded)"},
    {"--snapshot-every", "N",
     "also compact the journal into a fresh\n"
     "snapshot every N solves (default 0 =\n"
     "only at shutdown)"},
};

const FlagSpec OutputFlags[] = {
    {"--trace-json", "FILE",
     "write the daemon's shutdown run report\n"
     "(thistle-run-report/1 with the serve\n"
     "section) to FILE"},
    {"--help", "", "print this usage table (also -h)"},
};

const FlagGroup UsageGroups[] = {
    {"server:", ServerFlags, std::size(ServerFlags)},
    {"persistence (see docs/PERSISTENCE.md):", PersistenceFlags,
     std::size(PersistenceFlags)},
    {"output:", OutputFlags, std::size(OutputFlags)},
};

void printUsage(const char *Prog) {
  std::printf("usage: %s [options]\n", Prog);
  constexpr std::size_t HelpColumn = 32;
  for (const FlagGroup &Group : UsageGroups) {
    std::printf("\n%s\n", Group.Title);
    for (std::size_t F = 0; F < Group.Count; ++F) {
      const FlagSpec &Spec = Group.Flags[F];
      std::string Head = std::string("  ") + Spec.Flag;
      if (Spec.Arg[0])
        Head += std::string(" ") + Spec.Arg;
      bool HeadAlone = Head.size() + 2 > HelpColumn;
      if (HeadAlone)
        std::printf("%s\n", Head.c_str());
      const char *Line = Spec.Help;
      bool First = !HeadAlone;
      while (*Line) {
        const char *End = std::strchr(Line, '\n');
        std::size_t Len = End ? static_cast<std::size_t>(End - Line)
                              : std::strlen(Line);
        if (First)
          std::printf("%-*s%.*s\n", static_cast<int>(HelpColumn),
                      Head.c_str(), static_cast<int>(Len), Line);
        else
          std::printf("%-*s%.*s\n", static_cast<int>(HelpColumn), "",
                      static_cast<int>(Len), Line);
        First = false;
        Line += Len + (End ? 1 : 0);
      }
    }
  }
  std::printf(
      "\nrequests are newline-delimited thistle-serve/1 JSON documents\n"
      "(docs/SERVING.md); the daemon exits on SIGINT/SIGTERM or a\n"
      "{\"cmd\":\"shutdown\"} request, compacting the cache journal on the\n"
      "way out.\n"
      "\nexit codes:\n"
      "  0  clean shutdown (signal or shutdown request)\n"
      "  2  invalid arguments or the listener/cache-dir could not be\n"
      "     set up\n");
}

std::atomic<bool> SignalSeen{false};

void onSignal(int) { SignalSeen.store(true); }

/// Live connections, so shutdown can unstick threads blocked in
/// readLine(). Entries are shared with their connection thread; the
/// thread drops its reference when it exits.
struct ConnectionRegistry {
  std::mutex M;
  std::vector<std::shared_ptr<net::LineConnection>> Conns;

  void add(const std::shared_ptr<net::LineConnection> &C) {
    std::lock_guard<std::mutex> L(M);
    Conns.push_back(C);
  }
  void remove(const net::LineConnection *C) {
    std::lock_guard<std::mutex> L(M);
    for (auto It = Conns.begin(); It != Conns.end(); ++It)
      if (It->get() == C) {
        Conns.erase(It);
        return;
      }
  }
  void shutdownAll() {
    std::lock_guard<std::mutex> L(M);
    for (auto &C : Conns)
      C->shutdownBoth();
  }
};

/// One client connection: requests in, responses out, until the peer
/// hangs up (or shutdown half-closes the socket under us).
void serveConnection(ServeEngine &Engine, ConnectionRegistry &Registry,
                     std::shared_ptr<net::LineConnection> Conn,
                     std::atomic<unsigned> &Active) {
  while (true) {
    Expected<std::string> Line = Conn->readLine();
    if (!Line)
      break; // EOF, error, or shutdown-induced half-close.
    if (Conn->writeLine(Engine.handleLine(Line.value())).isOk() == false)
      break;
  }
  Registry.remove(Conn.get());
  --Active;
}

} // namespace

int main(int Argc, char **Argv) {
  std::uint16_t Port = 0;
  std::string PortFile;
  std::string TraceJsonPath;
  unsigned MaxClients = 64;
  ServeOptions SO;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    } else if (Arg == "--port") {
      long N = std::atol(needValue());
      if (N < 0 || N > 65535) {
        std::fprintf(stderr, "error: --port wants 0-65535\n");
        return 2;
      }
      Port = static_cast<std::uint16_t>(N);
    } else if (Arg == "--port-file") {
      PortFile = needValue();
    } else if (Arg == "--max-clients") {
      long N = std::atol(needValue());
      if (N < 1) {
        std::fprintf(stderr,
                     "error: --max-clients wants a positive count\n");
        return 2;
      }
      MaxClients = static_cast<unsigned>(N);
    } else if (Arg == "--threads") {
      SO.Threads = static_cast<unsigned>(std::atoi(needValue()));
    } else if (Arg == "--cache-dir") {
      SO.CacheDir = needValue();
      if (SO.CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir wants a directory\n");
        return 2;
      }
    } else if (Arg == "--cache-capacity") {
      long long N = std::atoll(needValue());
      if (N < 0) {
        std::fprintf(stderr, "error: --cache-capacity wants a "
                             "non-negative entry count (0 = unbounded)\n");
        return 2;
      }
      SO.CacheCapacity = static_cast<std::uint64_t>(N);
    } else if (Arg == "--snapshot-every") {
      long N = std::atol(needValue());
      if (N < 0) {
        std::fprintf(stderr, "error: --snapshot-every wants a "
                             "non-negative solve count (0 = only at "
                             "shutdown)\n");
        return 2;
      }
      SO.SnapshotEvery = static_cast<unsigned>(N);
    } else if (Arg == "--trace-json") {
      TraceJsonPath = needValue();
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(Argv[0]);
      return 2;
    }
  }

  // The run report carries the full telemetry snapshot, exactly as
  // thistle-opt --trace-json does.
  if (!TraceJsonPath.empty())
    telemetry::setLevel(telemetry::Level::Trace);

  const auto StartTime = std::chrono::steady_clock::now();
  ServeEngine Engine(SO);
  if (Status St = Engine.start(); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return 2;
  }

  net::LineListener Listener;
  if (Status St = Listener.listen(Port); !St.isOk()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return 2;
  }
  std::printf("serving on 127.0.0.1:%u\n",
              static_cast<unsigned>(Listener.boundPort()));
  std::fflush(stdout);
  if (!PortFile.empty()) {
    std::ofstream Out(PortFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n",
                   PortFile.c_str());
      return 2;
    }
    Out << Listener.boundPort() << "\n";
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  ConnectionRegistry Registry;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Active{0};
  while (!SignalSeen.load() && !Engine.shutdownRequested()) {
    // Short poll so signals and {"cmd":"shutdown"} are observed promptly.
    Expected<net::LineConnection> Conn = Listener.acceptConnection(200);
    if (!Conn) {
      if (Conn.status().code() == StatusCode::NotFound)
        continue; // Timeout or EINTR: re-check the shutdown flags.
      std::fprintf(stderr, "error: %s\n", Conn.status().toString().c_str());
      break;
    }
    auto Shared =
        std::make_shared<net::LineConnection>(std::move(Conn.value()));
    if (Active.load() >= MaxClients) {
      // Overload is an explicit, parseable refusal, not a silent drop.
      Shared->writeLine("{\"schema\":\"thistle-serve/1\",\"id\":null,"
                        "\"status\":\"invalid\",\"exit_code\":2,"
                        "\"error\":\"server at --max-clients "
                        "connection limit\",\"report\":null}");
      continue;
    }
    ++Active;
    Registry.add(Shared);
    Threads.emplace_back(serveConnection, std::ref(Engine),
                         std::ref(Registry), Shared, std::ref(Active));
  }

  // Shutdown: stop accepting, unstick blocked readers, drain the
  // connection threads, then stop the engine (which compacts the
  // journal) and write the run report.
  Listener.close();
  Registry.shutdownAll();
  for (std::thread &T : Threads)
    T.join();
  Engine.shutdown();

  ServeStats S = Engine.stats();
  std::printf("served %llu requests (%llu queries, %llu deduplicated, "
              "%llu solves, %llu errors)\n",
              static_cast<unsigned long long>(S.Requests),
              static_cast<unsigned long long>(S.Queries),
              static_cast<unsigned long long>(S.Deduplicated),
              static_cast<unsigned long long>(S.Solves),
              static_cast<unsigned long long>(S.Errors));
  std::printf("cache: %llu hits, %llu misses, %llu warm starts, "
              "%llu evictions, %llu compactions\n",
              static_cast<unsigned long long>(S.CacheHits),
              static_cast<unsigned long long>(S.CacheMisses),
              static_cast<unsigned long long>(S.CacheWarmStarts),
              static_cast<unsigned long long>(S.CacheEvictions),
              static_cast<unsigned long long>(S.Compactions));

  if (!TraceJsonPath.empty()) {
    RunReport RR;
    RR.Tool = "thistle-serve";
    RR.Workload = "serve";
    RR.Mode = "serve";
    RR.Objective = "serve";
    RR.Hierarchy = "classic3";
    RR.Threads =
        SO.Threads ? SO.Threads : ThreadPool::defaultWorkerCount();
    RR.ExitCode = 0;
    RR.WallSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - StartTime)
                         .count();
    Engine.fillReport(RR);
    RR.Telemetry = telemetry::snapshot();
    std::ofstream Out(TraceJsonPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write run report '%s'\n",
                   TraceJsonPath.c_str());
      return 2;
    }
    Out << RR.toJson();
    std::printf("run report written to %s\n", TraceJsonPath.c_str());
  }
  return 0;
}
