file(REMOVE_RECURSE
  "CMakeFiles/thistle_support.dir/MathUtil.cpp.o"
  "CMakeFiles/thistle_support.dir/MathUtil.cpp.o.d"
  "CMakeFiles/thistle_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/thistle_support.dir/TablePrinter.cpp.o.d"
  "libthistle_support.a"
  "libthistle_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
