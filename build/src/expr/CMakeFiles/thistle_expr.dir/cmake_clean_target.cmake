file(REMOVE_RECURSE
  "libthistle_expr.a"
)
