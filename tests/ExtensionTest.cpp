//===- tests/ExtensionTest.cpp - Extension feature tests ------------------===//
//
// Tests for the paper's mentioned-but-unevaluated features implemented by
// this library: the energy-delay-product objective, convolution dilation,
// spatial unrolling of the stencil dimensions, the halo-bound fallback,
// and the Mapper's search strategies.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Mapper.h"
#include "sim/TiledLoopSim.h"
#include "support/Rng.h"
#include "support/MathUtil.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

ConvLayer smallConv() {
  ConvLayer L;
  L.Name = "ext-conv";
  L.K = 16;
  L.C = 16;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  return L;
}

ThistleOptions fastOptions(DesignMode Mode, SearchObjective Obj) {
  ThistleOptions O;
  O.Mode = Mode;
  O.Objective = Obj;
  O.Solver.Tolerance = 1e-5;
  O.MaxPermClassPairs = 10;
  return O;
}

} // namespace

TEST(EdpObjective, EvaluatorReportsProduct) {
  Problem P = makeMatmulProblem(8, 8, 8);
  EnergyModel E(TechParams::cgo45nm());
  EvalResult R = evaluateMapping(P, Mapping::untiled(P), eyerissArch(), E);
  EXPECT_DOUBLE_EQ(R.EdpPjCycles, R.EnergyPj * R.Cycles);
  EXPECT_DOUBLE_EQ(objectiveValue(R, SearchObjective::EnergyDelayProduct),
                   R.EdpPjCycles);
  EXPECT_DOUBLE_EQ(objectiveValue(R, SearchObjective::Energy), R.EnergyPj);
  EXPECT_DOUBLE_EQ(objectiveValue(R, SearchObjective::Delay), R.Cycles);
}

TEST(EdpObjective, CoDesignBeatsSingleObjectiveDesignsOnEdp) {
  Problem P = makeConvProblem(smallConv());
  TechParams Tech = TechParams::cgo45nm();
  double Budget = eyerissAreaUm2(Tech);

  ThistleResult Energy = optimizeLayer(
      P, eyerissArch(), Tech,
      fastOptions(DesignMode::CoDesign, SearchObjective::Energy), Budget);
  ThistleResult Delay = optimizeLayer(
      P, eyerissArch(), Tech,
      fastOptions(DesignMode::CoDesign, SearchObjective::Delay), Budget);
  ThistleResult Edp = optimizeLayer(
      P, eyerissArch(), Tech,
      fastOptions(DesignMode::CoDesign, SearchObjective::EnergyDelayProduct),
      Budget);
  ASSERT_TRUE(Energy.Found);
  ASSERT_TRUE(Delay.Found);
  ASSERT_TRUE(Edp.Found);
  // The EDP design need not beat the others on their own objectives, but
  // it must be at least competitive on EDP (small slack for rounding).
  EXPECT_LE(Edp.Eval.EdpPjCycles, Energy.Eval.EdpPjCycles * 1.05);
  EXPECT_LE(Edp.Eval.EdpPjCycles, Delay.Eval.EdpPjCycles * 1.05);
}

TEST(EdpObjective, MapperSupportsEdp) {
  Problem P = makeConvProblem(smallConv());
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions O;
  O.Objective = SearchObjective::EnergyDelayProduct;
  O.MaxTrials = 2000;
  O.VictoryCondition = 500;
  MapperResult R = searchMappings(P, eyerissArch(), E, O);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.BestEval.EdpPjCycles, 0.0);
}

TEST(Dilation, FootprintUsesDilatedKernel) {
  ConvLayer L;
  L.K = 1;
  L.C = 1;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  L.DilationX = 2;
  L.DilationY = 2;
  Problem P = makeConvProblem(L);
  const Tensor &In = P.tensors()[1];
  // A single output point at dilation 2 touches rows 0, 2, 4: the dense
  // box extent is 1*(1-1) + 2*(3-1) + 1 = 5 per spatial dim.
  std::vector<std::int64_t> Tile(7, 1);
  Tile[P.iteratorIndex("r")] = 3;
  Tile[P.iteratorIndex("s")] = 3;
  EXPECT_EQ(In.footprintWords(Tile), 5 * 5);
}

TEST(Dilation, ModelMatchesOracleOnDilatedConv) {
  ConvLayer L;
  L.K = 2;
  L.C = 2;
  L.Hin = 10;
  L.Win = 10;
  L.R = 3;
  L.S = 3;
  L.DilationX = 2;
  L.DilationY = 2;
  Problem P = makeConvProblem(L);
  Rng R(31);
  for (int Trial = 0; Trial < 30; ++Trial) {
    // Random valid mapping by divisor sampling.
    Mapping M;
    M.Factors.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I) {
      std::int64_t Extent = P.iterators()[I].Extent;
      std::int64_t RegF = R.pick(divisorsOf(Extent));
      std::int64_t Rest = Extent / RegF;
      std::int64_t SpatF = R.pick(divisorsOf(Rest));
      Rest /= SpatF;
      std::int64_t PeF = R.pick(divisorsOf(Rest));
      M.factor(I, TileLevel::Register) = RegF;
      M.factor(I, TileLevel::Spatial) = SpatF;
      M.factor(I, TileLevel::PeTemporal) = PeF;
      M.factor(I, TileLevel::DramTemporal) = Rest / PeF;
    }
    M.DramPerm.resize(P.numIterators());
    for (unsigned I = 0; I < P.numIterators(); ++I)
      M.DramPerm[I] = I;
    M.PePerm = M.DramPerm;
    R.shuffle(M.DramPerm);
    R.shuffle(M.PePerm);
    ASSERT_TRUE(M.validate(P).empty());

    NestProfile Model = analyzeNest(P, M);
    SimResult Oracle = simulateTiledNest(P, M);
    for (std::size_t T = 0; T < P.tensors().size(); ++T) {
      SCOPED_TRACE("dilated trial " + std::to_string(Trial) + " tensor " +
                   P.tensors()[T].Name);
      EXPECT_EQ(Model.PerTensor[T].DramToSram,
                Oracle.PerTensor[T].DramToSram);
      EXPECT_EQ(Model.PerTensor[T].SramToReg, Oracle.PerTensor[T].SramToReg);
    }
  }
}

TEST(Dilation, OptimizerHandlesDilatedLayer) {
  ConvLayer L = smallConv();
  L.DilationX = L.DilationY = 2;
  Problem P = makeConvProblem(L);
  ThistleResult R = optimizeLayer(
      P, eyerissArch(), TechParams::cgo45nm(),
      fastOptions(DesignMode::DataflowOnly, SearchObjective::Energy));
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
}

TEST(SpatialStencil, DelayBenefitsFromStencilUnrolling) {
  // On a layer whose tiled dims cannot use all PEs, unrolling r/s
  // spatially increases the reachable parallelism.
  ConvLayer L;
  L.K = 17; // Prime extents everywhere but r/s.
  L.C = 13;
  L.Hin = 11;
  L.Win = 11;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  TechParams Tech = TechParams::cgo45nm();

  ThistleOptions With = fastOptions(DesignMode::DataflowOnly,
                                    SearchObjective::Delay);
  ThistleOptions Without = With;
  Without.SpatialUntiled = false;
  ThistleResult RWith = optimizeLayer(P, eyerissArch(), Tech, With);
  ThistleResult RWithout = optimizeLayer(P, eyerissArch(), Tech, Without);
  ASSERT_TRUE(RWith.Found);
  ASSERT_TRUE(RWithout.Found);
  EXPECT_GE(RWith.Eval.MacIpc, RWithout.Eval.MacIpc);
  // 3x3 unrolling should appear: some spatial factor on r or s.
  std::int64_t StencilSpatial =
      RWith.Map.factor(P.iteratorIndex("r"), TileLevel::Spatial) *
      RWith.Map.factor(P.iteratorIndex("s"), TileLevel::Spatial);
  EXPECT_GT(StencilSpatial, 1);
}

TEST(HaloBoundFallback, TinyRegisterFileStaysFeasible) {
  // A 4-word register file per PE: the drop-negative bound alone rejects
  // it, the product-bound fallback must recover a legal design.
  ConvLayer L = smallConv();
  Problem P = makeConvProblem(L);
  ArchConfig Arch = eyerissArch();
  Arch.NumPEs = 1024;
  Arch.RegWordsPerPE = 4;
  Arch.SramWords = 32768;
  ThistleResult R = optimizeLayer(
      P, Arch, TechParams::cgo45nm(),
      fastOptions(DesignMode::DataflowOnly, SearchObjective::Energy));
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Eval.Legal);
  EXPECT_LE(R.Eval.Profile.RegTileWords, 4);
}

TEST(MapperStrategies, AllFindLegalMappings) {
  Problem P = makeConvProblem(smallConv());
  EnergyModel E(TechParams::cgo45nm());
  for (MapperStrategy S :
       {MapperStrategy::RandomSampling, MapperStrategy::HillClimb,
        MapperStrategy::Anneal}) {
    MapperOptions O;
    O.Strategy = S;
    O.MaxTrials = 2000;
    O.VictoryCondition = 2000;
    MapperResult R = searchMappings(P, eyerissArch(), E, O);
    ASSERT_TRUE(R.Found) << "strategy " << static_cast<int>(S);
    EXPECT_TRUE(R.BestEval.Legal);
    EXPECT_TRUE(R.Best.validate(P).empty());
  }
}

TEST(MapperStrategies, GuidedSearchBeatsPureRandom) {
  Problem P = makeConvProblem(smallConv());
  EnergyModel E(TechParams::cgo45nm());
  auto run = [&](MapperStrategy S) {
    MapperOptions O;
    O.Strategy = S;
    O.MaxTrials = 3000;
    O.VictoryCondition = 3000;
    O.Seed = 5;
    return searchMappings(P, eyerissArch(), E, O);
  };
  MapperResult Random = run(MapperStrategy::RandomSampling);
  MapperResult Hill = run(MapperStrategy::HillClimb);
  MapperResult Anneal = run(MapperStrategy::Anneal);
  ASSERT_TRUE(Random.Found);
  ASSERT_TRUE(Hill.Found);
  ASSERT_TRUE(Anneal.Found);
  // The guided strategies should not lose to pure random sampling by
  // more than noise.
  EXPECT_LE(Hill.BestEval.EnergyPj, Random.BestEval.EnergyPj * 1.02);
  EXPECT_LE(Anneal.BestEval.EnergyPj, Random.BestEval.EnergyPj * 1.10);
}

TEST(MapperStrategies, AnnealIsDeterministic) {
  Problem P = makeMatmulProblem(16, 16, 16);
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions O;
  O.Strategy = MapperStrategy::Anneal;
  O.MaxTrials = 1000;
  O.Seed = 9;
  MapperResult A = searchMappings(P, eyerissArch(), E, O);
  MapperResult B = searchMappings(P, eyerissArch(), E, O);
  ASSERT_TRUE(A.Found);
  EXPECT_DOUBLE_EQ(A.BestEval.EnergyPj, B.BestEval.EnergyPj);
}
