//===- support/RunReport.h - Schema-versioned JSON run report ---*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable record of one optimization run: what was asked
/// (workload, mode, objective, hierarchy, threads), what came out
/// (design metrics, exit code), the per-task SweepReport, and the
/// telemetry snapshot (counters, statistics, trace spans). Serialized
/// as schema-versioned JSON by `thistle-opt --trace-json <file>`;
/// `tools/check_run_report.py` validates an emitted report against the
/// schema pinned in docs/OBSERVABILITY.md.
///
/// The emitter is always compiled (it is cold path); only the
/// collection hooks behind it compile out under THISTLE_TELEMETRY=OFF,
/// in which case the metrics/trace sections are empty.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_RUNREPORT_H
#define THISTLE_SUPPORT_RUNREPORT_H

#include "support/SweepReport.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace thistle {

/// Current schema identifier, bumped on any incompatible layout change.
inline constexpr const char *RunReportSchema = "thistle-run-report/1";

/// One per-layer row of the network section.
struct RunReportNetworkLayer {
  std::string Name;
  std::uint64_t ShapeIndex = 0;
  std::uint64_t Multiplicity = 1;
  bool Deduplicated = false;
  bool Found = false;
  double EnergyPj = 0.0;
  double Cycles = 0.0;
};

/// The `--network` run section: dedup/cache accounting, network totals
/// and one row per input layer. Plain data so the support layer stays
/// independent of the optimizer; thistle-opt copies the NetworkResult
/// fields in.
struct RunReportNetwork {
  bool Present = false; ///< Serialized as `"network": false` when unset.
  std::uint64_t LayersTotal = 0;
  std::uint64_t LayersFound = 0;
  std::uint64_t UniqueShapes = 0;
  bool CacheEnabled = false;
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
  unsigned ArchCandidates = 0;
  double SummedObjective = 0.0;
  double TotalEnergyPj = 0.0;
  double TotalCycles = 0.0;
  double TotalEdpPjCycles = 0.0;
  double EnergyPerMacPj = 0.0;
  std::uint64_t Macs = 0;
  std::vector<RunReportNetworkLayer> Layers;
};

/// The `--evaluator` section: which cost-model backend scored the run
/// and, for cross-checked runs, the accumulated divergence statistics.
/// Plain data so the support layer stays independent of nestmodel;
/// thistle-opt copies CrossCheckStats in.
struct RunReportEvaluatorSample {
  std::string Counter; ///< E.g. "words[b1][Out]".
  std::int64_t Primary = 0;
  std::int64_t Reference = 0;
};

struct RunReportEvaluator {
  std::string Backend = "nest"; ///< "nest" | "maestro" | "both" | custom.
  bool CrossCheck = false;      ///< True for --evaluator both.
  /// Cross-check aggregates; all zero when !CrossCheck.
  std::uint64_t Evals = 0;
  std::uint64_t DivergentEvals = 0;
  std::uint64_t CountersCompared = 0;
  std::uint64_t CounterMismatches = 0;
  double MaxAbsDelta = 0.0;
  double MaxRelDelta = 0.0;
  std::vector<RunReportEvaluatorSample> Samples;
};

/// The `persistence` section: what durable state the run loaded, what
/// it wrote, and every damage diagnostic (docs/PERSISTENCE.md). Present
/// only when a cache directory was configured.
struct RunReportPersistence {
  bool Present = false; ///< Serialized as `"persistence": false` unset.
  std::string Directory;
  std::uint64_t Capacity = 0; ///< In-memory LRU bound; 0 = unbounded.
  std::uint64_t LoadedFiles = 0;
  std::uint64_t LoadedEntries = 0;
  std::uint64_t AppendFailures = 0; ///< Journal appends that failed.
  std::uint64_t Evictions = 0;
  /// Artifacts detected torn/truncated/corrupt on load. The run then
  /// degraded to a cold start for the damaged portion; Problems lists
  /// one diagnostic per artifact.
  std::uint64_t DataLossDetected = 0;
  std::vector<std::string> Problems;
  bool SnapshotWritten = false; ///< Clean-exit compaction succeeded.
};

/// The `shards` section: this run's slice of a distributed sweep.
/// Present only under --shard or --merge-shards.
struct RunReportShards {
  bool Present = false; ///< Serialized as `"shards": false` when unset.
  std::uint64_t Index = 1; ///< 1-based, as on the command line.
  std::uint64_t Count = 1;
  bool Merge = false; ///< True for the --merge-shards recombination run.
};

/// The `serve` section: lifetime totals of one thistle-serve process
/// (docs/SERVING.md). Present only in reports written by the daemon at
/// shutdown. The cache counters are process-level deltas; the
/// stats-vs-report consistency test checks they equal the sum of the
/// per-request `server.cache` counters across all responses.
struct RunReportServe {
  bool Present = false; ///< Serialized as `"serve": false` when unset.
  std::uint64_t Requests = 0;     ///< Lines received (incl. admin cmds).
  std::uint64_t Queries = 0;      ///< Solve queries admitted.
  std::uint64_t Errors = 0;       ///< Error responses (bad JSON/request).
  std::uint64_t Deduplicated = 0; ///< Queries joined onto an in-flight solve.
  std::uint64_t Solves = 0;       ///< Solver-thread jobs actually run.
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
  std::uint64_t CacheEvictions = 0;
  std::uint64_t Compactions = 0; ///< Journal→snapshot compactions.
};

/// One run of the optimizer, ready for JSON serialization.
struct RunReport {
  std::string Tool = "thistle-opt";
  std::string Workload;   ///< Layer or pipeline name.
  std::string Mode;       ///< "dataflow" | "codesign".
  std::string Objective;  ///< "energy" | "delay" | "edp".
  std::string Hierarchy;  ///< "classic3" | "spad4" | file path.
  unsigned Threads = 0;   ///< 0 = one per hardware thread.
  double WallSeconds = 0.0;
  int ExitCode = 0;

  /// Result block; meaningful when Found.
  bool Found = false;
  double EnergyPj = 0.0;
  double EnergyPerMacPj = 0.0;
  double Cycles = 0.0;
  double MacIpc = 0.0;
  double EdpPjCycles = 0.0;

  /// Per-task sweep accounting (pair or combo sweep); HasSweep is false
  /// for runs that never sweep (e.g. usage errors).
  bool HasSweep = false;
  SweepReport Sweep;
  std::string SweepTaskNoun = "task";

  /// Which cost-model backend scored the run (and its cross-check
  /// statistics under --evaluator both).
  RunReportEvaluator Evaluator;

  /// The `--network` section; Present is false for single-layer runs.
  RunReportNetwork Network;

  /// Durable-state accounting; Present only with a cache directory.
  RunReportPersistence Persistence;

  /// Distributed-sweep slice; Present only when sharding or merging.
  RunReportShards Shards;

  /// Daemon lifetime totals; Present only for thistle-serve reports.
  RunReportServe Serve;

  /// Counters, statistics and spans collected during the run.
  telemetry::Snapshot Telemetry;

  /// Serializes the report as schema-versioned JSON (UTF-8, trailing
  /// newline). Field order is fixed, so equal runs produce equal bytes
  /// up to the timing fields.
  std::string toJson() const;

  /// The deterministic projection carried inside thistle-serve/1
  /// responses: compact (single line, no whitespace, no trailing
  /// newline) and restricted to the fields that are a pure function of
  /// the query — schema/tool/workload/mode/objective/hierarchy/threads/
  /// exit_code, result, evaluator, sweep, and network minus its cache
  /// traffic counters. Timing (wall_seconds), metrics, trace,
  /// persistence, shards and serve are excluded, so equal queries
  /// produce equal bytes whether the cache was cold, hot or reloaded.
  std::string toCanonicalJson() const;
};

/// Prints the `--profile` summary: spans aggregated by name (count,
/// total/mean/max milliseconds) followed by counters and statistics.
/// Prints an explicit note when the snapshot is empty.
void printProfile(std::ostream &OS, const telemetry::Snapshot &Snap);

} // namespace thistle

#endif // THISTLE_SUPPORT_RUNREPORT_H
