# Empty dependencies file for thistle_solver.
# This may be replaced when dependencies are built.
