//===- tests/CodegenTest.cpp - Tiled-nest code generation tests -----------===//
//
// The strongest end-to-end validation in the repository: generated tiled
// nests (Fig. 1d artifacts) are *executed* on real data and must compute
// exactly the reference contraction, with every access inside its
// buffer — this proves the tiling, the copy hoisting and the footprint
// math are all semantically correct, for randomized mappings.
//
//===----------------------------------------------------------------------===//

#include "codegen/TiledNest.h"
#include "ir/Builders.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

Mapping randomMapping(const Problem &P, Rng &R) {
  Mapping M;
  M.Factors.resize(P.numIterators());
  for (unsigned I = 0; I < P.numIterators(); ++I) {
    std::int64_t Extent = P.iterators()[I].Extent;
    std::int64_t RegF = R.pick(divisorsOf(Extent));
    std::int64_t Rest = Extent / RegF;
    std::int64_t SpatF = R.pick(divisorsOf(Rest));
    Rest /= SpatF;
    std::int64_t PeF = R.pick(divisorsOf(Rest));
    M.factor(I, TileLevel::Register) = RegF;
    M.factor(I, TileLevel::Spatial) = SpatF;
    M.factor(I, TileLevel::PeTemporal) = PeF;
    M.factor(I, TileLevel::DramTemporal) = Rest / PeF;
  }
  M.DramPerm.resize(P.numIterators());
  for (unsigned I = 0; I < P.numIterators(); ++I)
    M.DramPerm[I] = I;
  M.PePerm = M.DramPerm;
  R.shuffle(M.DramPerm);
  R.shuffle(M.PePerm);
  return M;
}

void expectComputesReference(const Problem &P, const Mapping &M) {
  ASSERT_TRUE(M.validate(P).empty());
  TiledNest Nest = buildTiledNest(P, M);
  InterpResult R = interpretTiledNest(P, M, Nest);
  ASSERT_TRUE(R.Ok) << R.Error;
  std::vector<double> Ref = referenceContraction(P);
  ASSERT_EQ(R.Output.size(), Ref.size());
  for (std::size_t I = 0; I < Ref.size(); ++I)
    ASSERT_DOUBLE_EQ(R.Output[I], Ref[I]) << "output word " << I;
}

} // namespace

TEST(TiledNest, UntiledMatmulComputesReference) {
  Problem P = makeMatmulProblem(4, 5, 6);
  expectComputesReference(P, Mapping::untiled(P));
}

TEST(TiledNest, RandomMatmulMappingsComputeReference) {
  Problem P = makeMatmulProblem(8, 6, 4);
  Rng R(42);
  for (int Trial = 0; Trial < 25; ++Trial) {
    SCOPED_TRACE("trial " + std::to_string(Trial));
    expectComputesReference(P, randomMapping(P, R));
  }
}

TEST(TiledNest, RandomConvMappingsComputeReference) {
  ConvLayer L;
  L.K = 4;
  L.C = 3;
  L.Hin = 6;
  L.Win = 6;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  Rng R(7);
  for (int Trial = 0; Trial < 15; ++Trial) {
    SCOPED_TRACE("trial " + std::to_string(Trial));
    expectComputesReference(P, randomMapping(P, R));
  }
}

TEST(TiledNest, StridedAndDilatedConvComputesReference) {
  ConvLayer L;
  L.K = 2;
  L.C = 2;
  L.Hin = 12;
  L.Win = 12;
  L.R = 3;
  L.S = 3;
  L.StrideX = L.StrideY = 2;
  L.DilationX = L.DilationY = 2;
  Problem P = makeConvProblem(L);
  Rng R(13);
  for (int Trial = 0; Trial < 10; ++Trial) {
    SCOPED_TRACE("trial " + std::to_string(Trial));
    expectComputesReference(P, randomMapping(P, R));
  }
}

TEST(TiledNest, OptimizedMappingComputesReference) {
  // End to end: Thistle's own optimized design must be semantically
  // correct when lowered to code.
  ConvLayer L;
  L.K = 8;
  L.C = 8;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  ArchConfig Arch = eyerissArch();
  ThistleOptions O;
  O.MaxPermClassPairs = 6;
  ThistleResult R = optimizeLayer(P, Arch, TechParams::cgo45nm(), O);
  ASSERT_TRUE(R.Found);
  expectComputesReference(P, R.Map);
}

TEST(TiledNest, CopyCountsMatchCopySemantics) {
  // The generated code reloads full tiles at each copy (no halo
  // streaming); its counts must equal footprint x copy executions, where
  // the copy runs once per iteration of the loops above its hoist point.
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  for (unsigned I : {Ii, Ij, Ik}) {
    M.factor(I, TileLevel::Register) = 2;
    M.factor(I, TileLevel::DramTemporal) = 4;
  }
  M.DramPerm = {Ii, Ik, Ij}; // Innermost j: A's SRAM copy hoists over it.
  M.PePerm = {Ii, Ij, Ik};
  ASSERT_TRUE(M.validate(P).empty());

  TiledNest Nest = buildTiledNest(P, M);
  InterpResult R = interpretTiledNest(P, M, Nest);
  ASSERT_TRUE(R.Ok) << R.Error;
  // A (2x2 SRAM tiles): copy inside <i,k>: 16 copies x 4 words.
  EXPECT_EQ(R.PerTensor[1].DramToSram, 16 * 4);
  // B: copy inside <i,k,j>: 64 copies x 4 words.
  EXPECT_EQ(R.PerTensor[2].DramToSram, 64 * 4);
  // C read-write: both directions, inside <i,k,j>.
  EXPECT_EQ(R.PerTensor[0].DramToSram, 64 * 4);
  EXPECT_EQ(R.PerTensor[0].SramToDram, 64 * 4);
  // Register copies: PE loops all trip-1 here, so one register copy per
  // (SRAM copy-equivalent) position: C streams inside <i,j> at the PE
  // level... with no PE loops the register copy runs once per DRAM step.
  EXPECT_EQ(R.PerTensor[1].SramToReg, 64 * 4);
}

TEST(TiledNest, PrinterShowsStructure) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Register) = 2;
  M.factor(0, TileLevel::DramTemporal) = 4;
  ASSERT_TRUE(M.validate(P).empty());
  TiledNest Nest = buildTiledNest(P, M);
  std::string Code = printTiledNest(P, M, Nest);
  EXPECT_NE(Code.find("for (i_s = 0; i_s < 4; ++i_s)"), std::string::npos);
  EXPECT_NE(Code.find("C_buf[...] = C[tile];"), std::string::npos);
  EXPECT_NE(Code.find("C[tile] = C_buf[...];"), std::string::npos);
  EXPECT_NE(Code.find("C_reg[..] += A_reg[..] * B_reg[..];"),
            std::string::npos);
}

TEST(TiledNest, SpatialLoopsPrintAsForall) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  M.factor(1, TileLevel::Register) = 4;
  M.factor(1, TileLevel::Spatial) = 2;
  ASSERT_TRUE(M.validate(P).empty());
  std::string Code = printTiledNest(P, M, buildTiledNest(P, M));
  EXPECT_NE(Code.find("forall (j_p = 0; j_p < 2; ++j_p)"),
            std::string::npos);
}

TEST(TiledNest, ReductionAcrossSpatialPEsIsCorrect) {
  // Spatially mapping the contraction dimension k (absent in C) makes
  // multiple PEs accumulate into the same output tile; the generated
  // code must still produce the exact reference result.
  Problem P = makeMatmulProblem(4, 4, 8);
  Mapping M = Mapping::untiled(P);
  unsigned Ik = P.iteratorIndex("k");
  M.factor(Ik, TileLevel::Register) = 2;
  M.factor(Ik, TileLevel::Spatial) = 4;
  ASSERT_TRUE(M.validate(P).empty());
  expectComputesReference(P, M);
}
