file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_algorithm_trace.dir/bench_table1_algorithm_trace.cpp.o"
  "CMakeFiles/bench_table1_algorithm_trace.dir/bench_table1_algorithm_trace.cpp.o.d"
  "bench_table1_algorithm_trace"
  "bench_table1_algorithm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_algorithm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
