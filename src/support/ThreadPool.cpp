//===- support/ThreadPool.cpp - Reusable worker-thread pool ---------------===//

#include "support/ThreadPool.h"

using namespace thistle;

ThreadPool::ThreadPool(unsigned NumThreads) {
  const unsigned N = NumThreads ? NumThreads : defaultWorkerCount();
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  Ready.notify_one();
}

unsigned ThreadPool::defaultWorkerCount() {
  const unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      // Drain the queue even when stopping so no submitted task is lost.
      if (Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}
