//===- support/Json.cpp - Minimal JSON parser -----------------------------===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>

namespace thistle {
namespace json {
namespace {

/// Recursive-descent parser over a single in-memory document. Depth is
/// bounded so a pathological request ("[[[[…") cannot exhaust the
/// server's stack.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  Expected<JsonValue> run() {
    Expected<JsonValue> V = parseValue(0);
    if (!V)
      return V;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  Status failStatus(const std::string &What) const {
    return Status::parseError(What + " at byte " + std::to_string(Pos));
  }
  Expected<JsonValue> fail(const std::string &What) const {
    return failStatus(What);
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *W) {
    std::size_t Len = std::string(W).size();
    if (Text.compare(Pos, Len, W) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  Expected<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"': {
      std::string S;
      if (Status St = parseString(S); !St.isOk())
        return St;
      return JsonValue::makeString(std::move(S));
    }
    case 't':
      if (consumeWord("true"))
        return JsonValue::makeBool(true);
      return fail("invalid literal");
    case 'f':
      if (consumeWord("false"))
        return JsonValue::makeBool(false);
      return fail("invalid literal");
    case 'n':
      if (consumeWord("null"))
        return JsonValue::makeNull();
      return fail("invalid literal");
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber();
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  Expected<JsonValue> parseObject(int Depth) {
    ++Pos; // '{'
    JsonValue Obj = JsonValue::makeObject();
    skipSpace();
    if (consume('}'))
      return Obj;
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (Status St = parseString(Key); !St.isOk())
        return St;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Expected<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      Obj.set(std::move(Key), V.takeValue());
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parseArray(int Depth) {
    ++Pos; // '['
    JsonValue Arr = JsonValue::makeArray();
    skipSpace();
    if (consume(']'))
      return Arr;
    while (true) {
      Expected<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      Arr.push(V.takeValue());
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      return fail("expected ',' or ']' in array");
    }
  }

  Status parseString(std::string &Out) {
    ++Pos; // opening '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return Status::ok();
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return failStatus("unescaped control character in string");
      if (C == '\\') {
        if (Pos + 1 >= Text.size())
          return failStatus("truncated escape");
        char E = Text[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return failStatus("truncated \\u escape");
          for (int I = 0; I < 4; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return failStatus("bad \\u escape digit");
          // Preserved verbatim: serve requests never need non-ASCII keys
          // and verbatim round-trips keep byte comparisons simple.
          Out += "\\u";
          Out.append(Text, Pos, 4);
          Pos += 4;
          break;
        }
        default:
          return failStatus("unknown escape");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return failStatus("unterminated string");
  }

  Expected<JsonValue> parseNumber() {
    std::size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("malformed number");
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("malformed number fraction");
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("malformed number exponent");
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return fail("malformed number");
    return JsonValue::makeNumber(V);
  }

  const std::string &Text;
  std::size_t Pos = 0;
};

} // namespace

Expected<JsonValue> parseJson(const std::string &Text) {
  return Parser(Text).run();
}

} // namespace json
} // namespace thistle
