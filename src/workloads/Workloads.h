//===- workloads/Workloads.h - Paper evaluation workloads -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation inputs of the paper: the conv2D configurations of the
/// Yolo-9000 and ResNet-18 pipelines (Table II; batch size 1, square
/// images and kernels, stride 2 on the layers Table II marks with *) and
/// the Eyeriss baseline architecture (168 PEs, 512 registers per PE,
/// 128 KB shared SRAM in 16-bit words, section V).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_WORKLOADS_WORKLOADS_H
#define THISTLE_WORKLOADS_WORKLOADS_H

#include "ir/Builders.h"
#include "model/TechModel.h"

#include <vector>

namespace thistle {

/// The 12 conv stages of ResNet-18 (Table II, right).
std::vector<ConvLayer> resnet18Layers();

/// The 11 conv stages of Yolo-9000 (Table II, left).
std::vector<ConvLayer> yolo9000Layers();

/// Both pipelines concatenated (ResNet-18 first), as the paper's
/// single-architecture experiments consider all stages of both.
std::vector<ConvLayer> allPaperLayers();

/// The full 21-conv ResNet-18 pipeline for the network driver: Table
/// II's 12 distinct shapes expanded with their block-repeat
/// multiplicities (the 3x3 body convs recur across the two basic blocks
/// of each stage). Repeated instances are suffixed ".k" but share the
/// shape, so optimizeNetwork solves each distinct shape once.
std::vector<ConvLayer> resnet18NetworkLayers();

/// The full 19-conv Yolo-9000 backbone (darknet-19) for the network
/// driver: Table II's 11 distinct shapes with the stacked 3x3/1x1
/// stages repeated as in the network.
std::vector<ConvLayer> yolo9000NetworkLayers();

/// Both expanded pipelines concatenated (ResNet-18 first).
std::vector<ConvLayer> allNetworkLayers();

/// The 30 distinct conv shapes of MobileNetV2 (width 1.0, 224x224 input;
/// docs/WORKLOADS.md): the dense stem, the depthwise 3x3 stages
/// (Groups == C) and the pointwise 1x1 expand/project stages of the
/// inverted-residual bottlenecks, plus the final 1x1 conv.
std::vector<ConvLayer> mobilenetV2Layers();

/// The full 52-conv MobileNetV2 pipeline for the network driver: the 30
/// distinct shapes expanded with their bottleneck-repeat multiplicities.
std::vector<ConvLayer> mobilenetV2NetworkLayers();

/// DCGAN-style training layers (docs/WORKLOADS.md): the four transposed
/// convs of the 64x64 generator (full-output convention) and two
/// dilation-2 stages modeling the strided discriminator convs' backward
/// pass, which EcoFlow shows maps onto dilated convolutions.
std::vector<ConvLayer> dcganLayers();

/// The DCGAN table as a network pipeline (each stage once).
std::vector<ConvLayer> dcganNetworkLayers();

/// The Eyeriss architectural parameters used as the paper's baseline.
ArchConfig eyerissArch();

/// Eyeriss silicon area under the Eq. 5 model with \p Tech — the area
/// budget of every co-design experiment.
double eyerissAreaUm2(const TechParams &Tech);

} // namespace thistle

#endif // THISTLE_WORKLOADS_WORKLOADS_H
