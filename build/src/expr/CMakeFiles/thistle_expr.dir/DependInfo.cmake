
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/FactoredExpr.cpp" "src/expr/CMakeFiles/thistle_expr.dir/FactoredExpr.cpp.o" "gcc" "src/expr/CMakeFiles/thistle_expr.dir/FactoredExpr.cpp.o.d"
  "/root/repo/src/expr/Monomial.cpp" "src/expr/CMakeFiles/thistle_expr.dir/Monomial.cpp.o" "gcc" "src/expr/CMakeFiles/thistle_expr.dir/Monomial.cpp.o.d"
  "/root/repo/src/expr/Signomial.cpp" "src/expr/CMakeFiles/thistle_expr.dir/Signomial.cpp.o" "gcc" "src/expr/CMakeFiles/thistle_expr.dir/Signomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
