//===- multilevel/MultiMapping.cpp - L-level tiled mappings ---------------===//

#include "multilevel/MultiMapping.h"

#include <cassert>
#include <numeric>
#include <sstream>

using namespace thistle;

std::vector<std::int64_t> MultiMapping::tileExtents(const Hierarchy &H,
                                                    unsigned Level) const {
  const std::size_t NumIters = SpatialFactors.size();
  std::vector<std::int64_t> Ext(NumIters, 1);
  for (unsigned L = 0; L <= Level; ++L)
    for (std::size_t I = 0; I < NumIters; ++I)
      Ext[I] *= TempFactors[L][I];
  if (Level >= H.FanoutLevel)
    for (std::size_t I = 0; I < NumIters; ++I)
      Ext[I] *= SpatialFactors[I];
  return Ext;
}

std::vector<std::int64_t>
MultiMapping::sliceExtents(const Hierarchy &H) const {
  const std::size_t NumIters = SpatialFactors.size();
  std::vector<std::int64_t> Ext(NumIters, 1);
  for (unsigned L = 0; L < H.FanoutLevel; ++L)
    for (std::size_t I = 0; I < NumIters; ++I)
      Ext[I] *= TempFactors[L][I];
  // Plus the level-F temporal loops below the... no: the slice is what a
  // single PE covers of the first shared tile *per level-F step*; the
  // spatial partition subdivides the level-F tile, so a PE's slice spans
  // prod_{k <= F} t_k per iterator.
  for (std::size_t I = 0; I < NumIters; ++I)
    Ext[I] *= TempFactors[H.FanoutLevel][I];
  return Ext;
}

std::int64_t MultiMapping::numPEsUsed() const {
  std::int64_t P = 1;
  for (std::int64_t F : SpatialFactors)
    P *= F;
  return P;
}

std::string MultiMapping::validate(const Problem &Prob,
                                   const Hierarchy &H) const {
  std::ostringstream Err;
  const unsigned NumIters = Prob.numIterators();
  if (TempFactors.size() != H.numLevels())
    return "temporal factor levels do not match the hierarchy depth";
  if (SpatialFactors.size() != NumIters)
    return "spatial factor arity mismatch";
  if (Perms.size() != H.numLevels())
    return "permutation count does not match the hierarchy depth";
  for (const std::vector<std::int64_t> &LevelF : TempFactors)
    if (LevelF.size() != NumIters)
      return "temporal factor arity mismatch";

  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Product = SpatialFactors[I];
    if (Product < 1)
      return "spatial factor < 1";
    for (unsigned L = 0; L < H.numLevels(); ++L) {
      if (TempFactors[L][I] < 1)
        return "temporal factor < 1";
      Product *= TempFactors[L][I];
    }
    if (Product != Prob.iterators()[I].Extent) {
      Err << "iterator " << Prob.iterators()[I].Name
          << " factors multiply to " << Product << ", expected "
          << Prob.iterators()[I].Extent;
      return Err.str();
    }
  }
  for (const std::vector<unsigned> &Perm : Perms) {
    if (Perm.size() != NumIters)
      return "permutation arity mismatch";
    std::vector<bool> Seen(NumIters, false);
    for (unsigned P : Perm) {
      if (P >= NumIters || Seen[P])
        return "not a permutation";
      Seen[P] = true;
    }
  }
  return std::string();
}

MultiMapping MultiMapping::untiled(const Problem &Prob, unsigned NumLevels) {
  const unsigned NumIters = Prob.numIterators();
  MultiMapping M;
  M.TempFactors.assign(NumLevels,
                       std::vector<std::int64_t>(NumIters, 1));
  for (unsigned I = 0; I < NumIters; ++I)
    M.TempFactors[0][I] = Prob.iterators()[I].Extent;
  M.SpatialFactors.assign(NumIters, 1);
  std::vector<unsigned> Identity(NumIters);
  std::iota(Identity.begin(), Identity.end(), 0u);
  M.Perms.assign(NumLevels, Identity);
  return M;
}

MultiMapping MultiMapping::fromMapping(const Problem &Prob,
                                       const Mapping &Map) {
  const unsigned NumIters = Prob.numIterators();
  MultiMapping M;
  M.TempFactors.assign(3, std::vector<std::int64_t>(NumIters, 1));
  M.SpatialFactors.assign(NumIters, 1);
  for (unsigned I = 0; I < NumIters; ++I) {
    M.TempFactors[0][I] = Map.factor(I, TileLevel::Register);
    M.TempFactors[1][I] = Map.factor(I, TileLevel::PeTemporal);
    M.TempFactors[2][I] = Map.factor(I, TileLevel::DramTemporal);
    M.SpatialFactors[I] = Map.factor(I, TileLevel::Spatial);
  }
  std::vector<unsigned> Identity(NumIters);
  std::iota(Identity.begin(), Identity.end(), 0u);
  M.Perms = {Identity, Map.PePerm, Map.DramPerm};
  return M;
}

Mapping MultiMapping::toMapping() const {
  assert(numLevels() == 3 && "only 3-level mappings are fixed-depth");
  const std::size_t NumIters = SpatialFactors.size();
  Mapping Map;
  Map.Factors.resize(NumIters);
  for (std::size_t I = 0; I < NumIters; ++I) {
    unsigned It = static_cast<unsigned>(I);
    Map.factor(It, TileLevel::Register) = TempFactors[0][I];
    Map.factor(It, TileLevel::PeTemporal) = TempFactors[1][I];
    Map.factor(It, TileLevel::DramTemporal) = TempFactors[2][I];
    Map.factor(It, TileLevel::Spatial) = SpatialFactors[I];
  }
  Map.PePerm = Perms[1];
  Map.DramPerm = Perms[2];
  return Map;
}
