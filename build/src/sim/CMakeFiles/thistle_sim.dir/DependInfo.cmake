
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/TiledLoopSim.cpp" "src/sim/CMakeFiles/thistle_sim.dir/TiledLoopSim.cpp.o" "gcc" "src/sim/CMakeFiles/thistle_sim.dir/TiledLoopSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/thistle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/thistle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
