//===- thistle/GpBuilder.cpp - Assemble Eq. 3 / Eq. 5 programs ------------===//

#include "thistle/GpBuilder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace thistle;

namespace {

bool isTiled(const GpBuildSpec &Spec, unsigned Iter) {
  return std::find(Spec.TiledIters.begin(), Spec.TiledIters.end(), Iter) !=
         Spec.TiledIters.end();
}

Status checkPerm(const Problem &Prob, const std::vector<unsigned> &Perm,
                 const char *What) {
  for (unsigned I : Perm)
    if (I >= Prob.numIterators())
      return Status::invalidArgument(std::string(What) + " references "
                                     "iterator index " + std::to_string(I) +
                                     " but the problem has only " +
                                     std::to_string(Prob.numIterators()) +
                                     " iterators");
  return Status::ok();
}

Status checkPositive(double Value, const char *What) {
  if (!(Value > 0.0) || !std::isfinite(Value))
    return Status::invalidArgument(std::string(What) +
                                   " must be positive and finite, got " +
                                   std::to_string(Value));
  return Status::ok();
}

} // namespace

Status thistle::validateGpBuildSpec(const Problem &Prob,
                                    const GpBuildSpec &Spec) {
  if (Status S = checkPerm(Prob, Spec.PePerm, "PE permutation"); !S.isOk())
    return S;
  if (Status S = checkPerm(Prob, Spec.DramPerm, "DRAM permutation"); !S.isOk())
    return S;
  if (Status S = checkPerm(Prob, Spec.TiledIters, "tiled-iterator list");
      !S.isOk())
    return S;

  if (Status S = checkPositive(Spec.Tech.SigmaRegPj, "tech SigmaRegPj");
      !S.isOk())
    return S;
  if (Status S = checkPositive(Spec.Tech.SigmaSramPj, "tech SigmaSramPj");
      !S.isOk())
    return S;

  if (Spec.Mode == DesignMode::CoDesign) {
    if (Status S =
            checkPositive(Spec.AreaBudgetUm2, "co-design area budget (um^2)");
        !S.isOk())
      return S;
    if (Status S =
            checkPositive(Spec.Tech.AreaRegWordUm2, "tech AreaRegWordUm2");
        !S.isOk())
      return S;
    if (Status S =
            checkPositive(Spec.Tech.AreaSramWordUm2, "tech AreaSramWordUm2");
        !S.isOk())
      return S;
    if (Status S = checkPositive(Spec.Tech.AreaMacUm2, "tech AreaMacUm2");
        !S.isOk())
      return S;
  } else {
    if (Spec.Arch.RegWordsPerPE <= 0 || Spec.Arch.SramWords <= 0 ||
        Spec.Arch.NumPEs <= 0)
      return Status::invalidArgument(
          "fixed architecture needs positive capacities (RegWordsPerPE=" +
          std::to_string(Spec.Arch.RegWordsPerPE) +
          ", SramWords=" + std::to_string(Spec.Arch.SramWords) +
          ", NumPEs=" + std::to_string(Spec.Arch.NumPEs) + ")");
  }
  return Status::ok();
}

GpBuild thistle::buildGp(const Problem &Prob, const GpBuildSpec &Spec) {
  GpBuild Build;
  GpProblem &Gp = Build.Gp;
  ExprGen EG(Prob, Gp.variables());
  for (unsigned L = 0; L < NumTileLevels; ++L) {
    Build.TripVars[L].resize(Prob.numIterators());
    for (unsigned I = 0; I < Prob.numIterators(); ++I)
      Build.TripVars[L][I] = EG.tripVar(static_cast<TileLevel>(L), I);
  }

  // ---- Variable structure per iterator.
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    const double Extent =
        static_cast<double>(Prob.iterators()[I].Extent);
    const std::string &Name = Prob.iterators()[I].Name;
    VarId R = EG.tripVar(TileLevel::Register, I);
    VarId Q = EG.tripVar(TileLevel::PeTemporal, I);
    VarId P = EG.tripVar(TileLevel::Spatial, I);
    VarId S = EG.tripVar(TileLevel::DramTemporal, I);
    if (isTiled(Spec, I)) {
      for (VarId V : {R, Q, P, S})
        Gp.addVariableBounds(V, Extent);
      Monomial Product = Monomial::variable(R) * Monomial::variable(Q) *
                         Monomial::variable(P) * Monomial::variable(S);
      Gp.addEquality(Product, Extent, "extent " + Name);
    } else if (Spec.SpatialUntiled && Extent > 1) {
      // Untiled temporally, but the extent may split between the
      // register level and the spatial level (r * p = N).
      Gp.addVariableBounds(R, Extent);
      Gp.addVariableBounds(P, Extent);
      Gp.addEquality(Monomial::variable(R) * Monomial::variable(P), Extent,
                     "untiled " + Name);
      Gp.addEquality(Monomial::variable(Q), 1.0, "untiled " + Name);
      Gp.addEquality(Monomial::variable(S), 1.0, "untiled " + Name);
    } else {
      // Untiled: the whole extent sits at the register level.
      Gp.addEquality(Monomial::variable(R), Extent, "untiled " + Name);
      Gp.addEquality(Monomial::variable(Q), 1.0, "untiled " + Name);
      Gp.addEquality(Monomial::variable(P), 1.0, "untiled " + Name);
      Gp.addEquality(Monomial::variable(S), 1.0, "untiled " + Name);
    }
  }

  // ---- Architecture parameters: constants or variables.
  Monomial EpsR(0.0), EpsS(0.0); // Per-access energies as monomials.
  Monomial RegCap(0.0), SramCap(0.0), PeCap(0.0);
  EnergyModel Energy(Spec.Tech);
  if (Spec.Mode == DesignMode::CoDesign) {
    Build.HasArchVars = true;
    Build.RegCapVar = Gp.addVariable("R");
    Build.SramCapVar = Gp.addVariable("S");
    Build.NumPEVar = Gp.addVariable("P");
    // A non-positive budget is caught by validateGpBuildSpec; here it
    // would silently produce infinite variable bounds.
    Gp.addVariableBounds(Build.RegCapVar,
                         Spec.AreaBudgetUm2 / Spec.Tech.AreaRegWordUm2);
    Gp.addVariableBounds(Build.SramCapVar,
                         Spec.AreaBudgetUm2 / Spec.Tech.AreaSramWordUm2);
    Gp.addVariableBounds(Build.NumPEVar,
                         Spec.AreaBudgetUm2 / Spec.Tech.AreaMacUm2);
    // Area model, Eq. 5: AreaR*R*P + AreaMAC*P + AreaS*S <= budget.
    Posynomial Area;
    Area += Signomial(Monomial::variable(Build.RegCapVar) *
                      Monomial::variable(Build.NumPEVar)
                          .scaled(Spec.Tech.AreaRegWordUm2));
    Area += Signomial(
        Monomial::variable(Build.NumPEVar).scaled(Spec.Tech.AreaMacUm2));
    Area += Signomial(
        Monomial::variable(Build.SramCapVar).scaled(Spec.Tech.AreaSramWordUm2));
    Gp.addUpperBound(Area, Spec.AreaBudgetUm2, "area");

    EpsR = Monomial::variable(Build.RegCapVar, 1.0, Spec.Tech.SigmaRegPj);
    EpsS = Monomial::variable(Build.SramCapVar, 0.5, Spec.Tech.SigmaSramPj);
    RegCap = Monomial::variable(Build.RegCapVar);
    SramCap = Monomial::variable(Build.SramCapVar);
    PeCap = Monomial::variable(Build.NumPEVar);
  } else {
    EpsR = Monomial(
        Energy.regAccessPj(static_cast<double>(Spec.Arch.RegWordsPerPE)));
    EpsS = Monomial(
        Energy.sramAccessPj(static_cast<double>(Spec.Arch.SramWords)));
    RegCap = Monomial(static_cast<double>(Spec.Arch.RegWordsPerPE));
    SramCap = Monomial(static_cast<double>(Spec.Arch.SramWords));
    PeCap = Monomial(static_cast<double>(Spec.Arch.NumPEs));
  }

  // ---- Tensor models and capacity constraints. The register capacity
  // constraint lives in the small-tile regime where the halo-bound choice
  // matters; volumes and SRAM footprints involve large tiles where
  // DropNegative is the tight bound.
  Posynomial RegFootprint, SramFootprint, DvSramReg, DvDram;
  for (unsigned TI = 0; TI < Prob.tensors().size(); ++TI) {
    TensorSymbolicModel Model =
        EG.buildTensorModel(TI, Spec.PePerm, Spec.DramPerm);
    RegFootprint +=
        Spec.Halo == HaloBound::DropNegative
            ? Model.RegFootprint.posynomialUpperBound().expanded()
            : Model.RegFootprint.monomialProductUpperBound().expanded();
    SramFootprint += Model.SramFootprint.posynomialUpperBound().expanded();
    DvSramReg += Model.DvSramReg.posynomialUpperBound().expanded();
    DvDram += Model.DvDram.posynomialUpperBound().expanded();
  }
  Gp.addUpperBound(RegFootprint, RegCap, "register capacity");
  Gp.addUpperBound(SramFootprint, SramCap, "SRAM capacity");

  // Every spatial trip count participates in the PE budget (untiled
  // iterators' p variables are either pinned to 1 or spatially split).
  Monomial SpatialProduct(1.0);
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    SpatialProduct =
        SpatialProduct * Monomial::variable(EG.tripVar(TileLevel::Spatial, I));
  Gp.addUpperBound(Posynomial(SpatialProduct), PeCap, "PE count");

  // ---- Objective.
  const double Nops = static_cast<double>(Prob.numOps());
  // Eq. 3 energy: (4 eps_R + eps_op) Nops + eps_R DV(S<->R)
  //               + eps_S (DV(S<->R) + DV(S<->D)) + eps_D DV(S<->D).
  Posynomial EnergyObj;
  EnergyObj += Posynomial(EpsR.scaled(4.0 * Nops));
  EnergyObj += Posynomial(Monomial(Energy.macPj() * Nops));
  EnergyObj += DvSramReg * EpsR;
  EnergyObj += (DvSramReg + DvDram) * EpsS;
  EnergyObj += DvDram.scaled(Energy.dramAccessPj());

  if (Spec.Objective == SearchObjective::Energy) {
    Gp.setObjective(std::move(EnergyObj));
    return Build;
  }

  // Delay epigraph: T bounds every component's cycles (section V-B: "the
  // cost expression contains the maximum among the delays").
  Build.HasEpigraph = true;
  Build.EpigraphVar = Gp.addVariable("T");
  Gp.addVariableBounds(Build.EpigraphVar, /*UpperBound=*/Nops * 1e6);
  Monomial T = Monomial::variable(Build.EpigraphVar);
  // Compute: Nops / (prod p) <= T.
  Gp.addUpperBound(Posynomial(SpatialProduct.pow(-1.0).scaled(Nops)), T,
                   "compute cycles");
  // DRAM: DV(D<->S) / BW_D <= T.
  Gp.addUpperBound(DvDram.scaled(1.0 / Spec.Arch.DramBandwidth), T,
                   "DRAM cycles");
  // SRAM: (DV(S<->R) + DV(D<->S)) / BW_S <= T.
  Gp.addUpperBound((DvSramReg + DvDram).scaled(1.0 / Spec.Arch.SramBandwidth),
                   T, "SRAM cycles");
  if (Spec.Objective == SearchObjective::Delay) {
    Gp.setObjective(Posynomial(T));
  } else {
    // Energy-delay product: posynomial * monomial is a posynomial, so
    // EDP fits DGP directly (the extension the paper mentions).
    Gp.setObjective(EnergyObj * T);
  }
  return Build;
}

RealSolution thistle::extractSolution(const Problem &Prob,
                                      const GpBuild &Build,
                                      const GpBuildSpec &Spec,
                                      const GpSolution &Solution) {
  assert(Solution.Feasible && "extraction requires a feasible solution");
  RealSolution Real;
  Real.Trips.resize(Prob.numIterators());
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    for (unsigned L = 0; L < NumTileLevels; ++L)
      Real.Trips[I][L] = Solution.Values[Build.TripVars[L][I]];
  if (Build.HasArchVars) {
    Real.RegWords = Solution.Values[Build.RegCapVar];
    Real.SramWords = Solution.Values[Build.SramCapVar];
    Real.NumPEs = Solution.Values[Build.NumPEVar];
  } else {
    Real.RegWords = static_cast<double>(Spec.Arch.RegWordsPerPE);
    Real.SramWords = static_cast<double>(Spec.Arch.SramWords);
    Real.NumPEs = static_cast<double>(Spec.Arch.NumPEs);
  }
  Real.Objective = Solution.Objective;
  return Real;
}
