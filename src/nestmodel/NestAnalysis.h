//===- nestmodel/NestAnalysis.h - Analytical access counting ----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytical core of the mini-Timeloop substrate: given a concrete
/// integer Mapping for a Problem, compute per-tensor per-level data-access
/// volumes and buffer occupancies without executing the loop nest. The
/// counting rules are the concrete-number specialization of the paper's
/// Algorithm 1:
///
///  - walk a level's temporal loops inner-to-outer; loops whose iterator
///    is absent from the tensor and that lie below the tensor's innermost
///    present iterator are hoisted over (no traffic contribution);
///  - the innermost present iterator extends the tile footprint along its
///    dimension ("replace": the dense union of its consecutive tiles);
///  - every loop above multiplies the volume by its trip count;
///  - spatial trip counts multiply only for iterators present in the
///    tensor's reference (multicast/reduction collapse, paper Eq. 2);
///  - trip-1 loops are no-ops (a Timeloop-style model sees through them).
///
/// The rules are implemented once, for hierarchies of any depth, in
/// multilevel/MultiNestAnalysis; this header is the classic 3-level view
/// of that engine. Validated against the brute-force oracle in sim/ by
/// the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_NESTANALYSIS_H
#define THISTLE_NESTMODEL_NESTANALYSIS_H

#include "ir/Mapping.h"
#include "ir/Problem.h"

#include <cstdint>
#include <vector>

namespace thistle {

/// Per-tensor access volumes of one mapping (words).
struct TensorVolumes {
  std::int64_t DramToSram = 0; ///< DRAM reads feeding SRAM.
  std::int64_t SramToDram = 0; ///< DRAM writes (read-write tensors only).
  std::int64_t SramToReg = 0;  ///< SRAM reads feeding registers (multicast-
                               ///< reduced).
  std::int64_t RegToSram = 0;  ///< SRAM writes from registers.
};

/// Complete analytical profile of a mapping.
struct NestProfile {
  std::vector<TensorVolumes> PerTensor; ///< In Problem::tensors() order.

  std::int64_t RegTileWords = 0;  ///< Sum of register-tile footprints.
  std::int64_t SramTileWords = 0; ///< Sum of SRAM-tile footprints.
  std::int64_t PEsUsed = 1;       ///< Product of spatial trip counts.

  /// Sum over tensors of DRAM-side traffic (reads + writes).
  std::int64_t dramTraffic() const;
  /// Sum over tensors of SRAM<->register traffic (reads + writes).
  std::int64_t sramRegTraffic() const;
};

/// Analyzes \p Map (which must validate against \p Prob). Thin wrapper:
/// runs the generic L-level analysis (multilevel/MultiNestAnalysis) at
/// the classic 3-level structure and splits the volumes back out.
NestProfile analyzeNest(const Problem &Prob, const Mapping &Map);

struct MultiProfile;

/// Repackages a 3-level generic profile (boundary 0 = SRAM<->registers,
/// boundary 1 = DRAM<->SRAM) into the fixed-depth directional profile.
NestProfile profileFromMulti(const Problem &Prob, const MultiProfile &MP);

} // namespace thistle

#endif // THISTLE_NESTMODEL_NESTANALYSIS_H
