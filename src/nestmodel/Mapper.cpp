//===- nestmodel/Mapper.cpp - Search-based mapping baseline ---------------===//

#include "nestmodel/Mapper.h"

#include "support/MathUtil.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace thistle;

namespace {

/// Samples a random but budget-aware mapping: per iterator, hierarchically
/// draws register / spatial / per-PE factors from divisors, capping the
/// spatial product at the PE count so that most samples are placeable.
Mapping sampleMapping(const Problem &Prob, const ArchConfig &Arch, Rng &R) {
  Mapping Map;
  const unsigned NumIters = Prob.numIterators();
  Map.Factors.resize(NumIters);

  std::int64_t SpatialBudget = Arch.NumPEs;
  // Visit iterators in random order so no dimension hogs the PE budget.
  std::vector<unsigned> Order(NumIters);
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  for (unsigned I : Order) {
    std::int64_t Extent = Prob.iterators()[I].Extent;
    // Register tile r | N.
    std::int64_t RegF = R.pick(divisorsOf(Extent));
    std::int64_t Rest = Extent / RegF;
    // Spatial p | rest, capped by the remaining PE budget.
    std::vector<std::int64_t> SpatialChoices;
    for (std::int64_t D : divisorsOf(Rest))
      if (D <= SpatialBudget)
        SpatialChoices.push_back(D);
    std::int64_t SpatF = R.pick(SpatialChoices);
    SpatialBudget /= SpatF;
    Rest /= SpatF;
    // Per-PE temporal q | rest; the DRAM level takes what remains.
    std::int64_t PeF = R.pick(divisorsOf(Rest));
    std::int64_t DramF = Rest / PeF;

    Map.factor(I, TileLevel::Register) = RegF;
    Map.factor(I, TileLevel::Spatial) = SpatF;
    Map.factor(I, TileLevel::PeTemporal) = PeF;
    Map.factor(I, TileLevel::DramTemporal) = DramF;
  }

  Map.DramPerm.resize(NumIters);
  std::iota(Map.DramPerm.begin(), Map.DramPerm.end(), 0u);
  R.shuffle(Map.DramPerm);
  Map.PePerm = Map.DramPerm;
  R.shuffle(Map.PePerm);
  return Map;
}

/// Smallest prime factor of \p N (N >= 2).
std::int64_t smallestPrimeFactor(std::int64_t N) {
  assert(N >= 2 && "no prime factor of 1");
  for (std::int64_t P = 2; P * P <= N; ++P)
    if (N % P == 0)
      return P;
  return N;
}

/// Mutates \p Map in place: either moves one prime factor of one iterator
/// between two tiling levels, or swaps two entries of one permutation.
void mutateMapping(Mapping &Map, Rng &R) {
  const unsigned NumIters = Map.Factors.size();
  if (R.nextDouble() < 0.5) {
    // Move a prime factor between two levels of a random iterator.
    unsigned I = R.nextIndex(NumIters);
    unsigned From = R.nextIndex(NumTileLevels);
    unsigned To = R.nextIndex(NumTileLevels);
    if (From == To || Map.Factors[I][From] <= 1)
      return;
    std::int64_t P = smallestPrimeFactor(Map.Factors[I][From]);
    Map.Factors[I][From] /= P;
    Map.Factors[I][To] *= P;
    return;
  }
  // Swap two entries of one permutation.
  std::vector<unsigned> &Perm = R.nextDouble() < 0.5 ? Map.DramPerm
                                                     : Map.PePerm;
  if (Perm.size() < 2)
    return;
  std::size_t A = R.nextIndex(Perm.size());
  std::size_t B = R.nextIndex(Perm.size());
  std::swap(Perm[A], Perm[B]);
}

} // namespace

MapperResult thistle::searchMappings(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const EnergyModel &Energy,
                                     const MapperOptions &Options) {
  Rng R(Options.Seed);
  MapperResult Result;
  double BestObj = 0.0;
  unsigned SinceImprovement = 0;

  // Annealing walks from a current point that may be worse than the
  // incumbent best.
  Mapping Current;
  double CurrentObj = 0.0;
  bool HaveCurrent = false;
  double Temperature = 0.0;

  for (unsigned Trial = 0; Trial < Options.MaxTrials; ++Trial) {
    Mapping Candidate;
    bool Mutated = false;
    switch (Options.Strategy) {
    case MapperStrategy::RandomSampling:
      Candidate = sampleMapping(Prob, Arch, R);
      break;
    case MapperStrategy::HillClimb:
      // Exploit the incumbent half of the time once one exists.
      if (Result.Found && R.nextDouble() < 0.5) {
        Candidate = Result.Best;
        mutateMapping(Candidate, R);
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, R);
      }
      break;
    case MapperStrategy::Anneal:
      if (HaveCurrent) {
        Candidate = Current;
        mutateMapping(Candidate, R);
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, R);
      }
      break;
    }
    if (Mutated && !Candidate.validate(Prob).empty())
      continue;

    ++Result.Trials;
    EvalResult Eval = evaluateMapping(Prob, Candidate, Arch, Energy);
    if (Options.Strategy == MapperStrategy::Anneal)
      Temperature *= Options.AnnealCooling;
    if (!Eval.Legal) {
      ++SinceImprovement;
      if (SinceImprovement >= Options.VictoryCondition && Result.Found)
        break;
      continue;
    }
    ++Result.LegalTrials;
    double Obj = objectiveValue(Eval, Options.Objective);

    // Annealing acceptance for the walk state.
    if (Options.Strategy == MapperStrategy::Anneal) {
      if (!HaveCurrent) {
        Current = Candidate;
        CurrentObj = Obj;
        HaveCurrent = true;
        Temperature = Options.AnnealInitialTemp * Obj;
      } else if (Obj <= CurrentObj ||
                 (Temperature > 0.0 &&
                  R.nextDouble() <
                      std::exp((CurrentObj - Obj) / Temperature))) {
        Current = Candidate;
        CurrentObj = Obj;
      }
    }

    if (!Result.Found || Obj < BestObj) {
      Result.Found = true;
      Result.Best = std::move(Candidate);
      Result.BestEval = std::move(Eval);
      BestObj = Obj;
      SinceImprovement = 0;
    } else if (++SinceImprovement >= Options.VictoryCondition) {
      break;
    }
  }
  return Result;
}
