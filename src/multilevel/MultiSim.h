//===- multilevel/MultiSim.h - L-level brute-force oracle -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbitrary-depth generalization of sim/TiledLoopSim: walks the full
/// L-level tiled loop nest and counts words moved across every
/// adjacent-level boundary, with the same executable counting semantics
/// (dense tile boxes, contiguous-advance streaming reuse, per-level
/// resets, multicast collapse at the fan-out boundary, private traffic
/// below it). Used by tests to validate multilevel/MultiNestAnalysis.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_MULTISIM_H
#define THISTLE_MULTILEVEL_MULTISIM_H

#include "multilevel/MultiMapping.h"

#include <cstdint>
#include <vector>

namespace thistle {

/// Oracle counts: Words[b][t] = words moved across boundary b for tensor
/// t (reads + writes).
struct MultiSimResult {
  std::vector<std::vector<std::int64_t>> Words;
};

/// Simulates \p Map on \p H; cost proportional to the total tile steps.
MultiSimResult simulateMultiNest(const Problem &Prob, const Hierarchy &H,
                                 const MultiMapping &Map);

} // namespace thistle

#endif // THISTLE_MULTILEVEL_MULTISIM_H
