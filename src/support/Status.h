//===- support/Status.h - Structured, recoverable errors --------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured error reporting for the user-reachable paths of the solve
/// pipeline. A Status carries a machine-checkable code, a human-readable
/// message and an outer-to-inner context chain ("loading hierarchy" ->
/// "line 3: 'pes' wants an integer"), so a bad input degrades into a
/// diagnostic instead of aborting via assert. Expected<T> is the
/// value-or-Status return type used by parsers and validators.
///
/// Internal invariants (solver postconditions, index arithmetic) keep
/// using assert; Status is for conditions a user of the library or the
/// command-line tool can trigger.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_STATUS_H
#define THISTLE_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace thistle {

/// Error taxonomy of the solve pipeline (docs/ROBUSTNESS.md).
enum class StatusCode {
  Ok = 0,
  /// A caller-supplied option or specification is malformed (bad flag
  /// value, negative budget, inconsistent permutation set).
  InvalidArgument,
  /// Textual input failed to parse (hierarchy files, layer strings).
  ParseError,
  /// The solver failed numerically after every retry (breakdown,
  /// non-finite iterates, non-convergence).
  SolverFailure,
  /// The problem was solved and is genuinely infeasible.
  Infeasible,
  /// A sweep deadline or trial budget expired before completion.
  DeadlineExceeded,
  /// An internal component violated its contract (caught exception).
  Internal,
  /// A requested durable artifact (snapshot, journal) does not exist.
  NotFound,
  /// Durable state could not be written, or was detected damaged on
  /// load (bad magic, truncated payload, CRC mismatch). Loads degrade
  /// to a cold start; the damage is reported, never silently repaired.
  DataLoss,
};

/// Renders a code as a stable lower-case token (used in diagnostics).
inline const char *statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid-argument";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::SolverFailure:
    return "solver-failure";
  case StatusCode::Infeasible:
    return "infeasible";
  case StatusCode::DeadlineExceeded:
    return "deadline-exceeded";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::NotFound:
    return "not-found";
  case StatusCode::DataLoss:
    return "data-loss";
  }
  return "unknown";
}

/// A recoverable diagnostic: code + message + context chain.
class Status {
public:
  /// Success; carries no message.
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(StatusCode Code, std::string Message) {
    assert(Code != StatusCode::Ok && "errors need a non-Ok code");
    Status S;
    S.Code = Code;
    S.Message = std::move(Message);
    return S;
  }
  static Status invalidArgument(std::string Message) {
    return error(StatusCode::InvalidArgument, std::move(Message));
  }
  static Status parseError(std::string Message) {
    return error(StatusCode::ParseError, std::move(Message));
  }

  bool isOk() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return isOk(); }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Message; }
  const std::vector<std::string> &context() const { return Context; }

  /// Prepends an outer context frame ("parsing --hierarchy file") and
  /// returns *this for chaining at return sites. No-op on Ok.
  Status &withContext(std::string Frame) {
    if (!isOk())
      Context.insert(Context.begin(), std::move(Frame));
    return *this;
  }

  /// "code: outer: inner: message" — one line, outermost context first.
  std::string toString() const {
    if (isOk())
      return "ok";
    std::string Out = statusCodeName(Code);
    Out += ": ";
    for (const std::string &Frame : Context) {
      Out += Frame;
      Out += ": ";
    }
    Out += Message;
    return Out;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Message;
  std::vector<std::string> Context;
};

/// A value of type T or the Status explaining its absence.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Status Error) : Error(std::move(Error)) {
    assert(!this->Error.isOk() && "Expected wants a real error, not Ok");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  const T &value() const {
    assert(hasValue() && "value() on an errored Expected");
    return *Value;
  }
  T &value() {
    assert(hasValue() && "value() on an errored Expected");
    return *Value;
  }
  T &&takeValue() {
    assert(hasValue() && "takeValue() on an errored Expected");
    return std::move(*Value);
  }

  /// The error; Status::ok() when a value is present.
  const Status &status() const { return Error; }

  /// Adds an outer context frame to the error (no-op on success).
  Expected &withContext(std::string Frame) {
    Error.withContext(std::move(Frame));
    return *this;
  }

private:
  std::optional<T> Value;
  Status Error;
};

} // namespace thistle

#endif // THISTLE_SUPPORT_STATUS_H
