//===- sim/TiledLoopSim.cpp - Brute-force data-movement oracle ------------===//
//
// Since the hierarchy-generic unification the walk itself lives in
// multilevel/MultiSim; this file runs the generic L-level oracle at the
// classic 3-level structure and splits the per-boundary load/store counts
// back into the directional fixed-depth fields (boundary 0 =
// SRAM<->registers, boundary 1 = DRAM<->SRAM).
//
//===----------------------------------------------------------------------===//

#include "sim/TiledLoopSim.h"

#include "multilevel/MultiSim.h"

#include <cassert>

using namespace thistle;

std::int64_t SimResult::totalDramTraffic() const {
  std::int64_t Sum = 0;
  for (const SimTensorTraffic &T : PerTensor)
    Sum += T.DramToSram + T.SramToDram;
  return Sum;
}

std::int64_t SimResult::totalSramRegTraffic() const {
  std::int64_t Sum = 0;
  for (const SimTensorTraffic &T : PerTensor)
    Sum += T.SramToReg + T.RegToSram;
  return Sum;
}

SimResult thistle::simulateTiledNest(const Problem &Prob, const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  MultiSimResult MR = simulateMultiNest(Prob, Hierarchy::classic3Shape(),
                                        MultiMapping::fromMapping(Prob, Map));
  SimResult Result;
  Result.PerTensor.resize(Prob.tensors().size());
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    SimTensorTraffic &T = Result.PerTensor[TI];
    T.DramToSram = MR.Loads[1][TI];
    T.SramToDram = MR.Stores[1][TI];
    T.SramToReg = MR.Loads[0][TI];
    T.RegToSram = MR.Stores[0][TI];
  }
  return Result;
}

MultiProfile thistle::simulatedProfile(const Problem &Prob,
                                       const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  return simulateMultiNestProfile(Prob, Hierarchy::classic3Shape(),
                                  MultiMapping::fromMapping(Prob, Map));
}
