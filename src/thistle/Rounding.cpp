//===- thistle/Rounding.cpp - Real-to-integer design conversion -----------===//

#include "thistle/Rounding.h"

#include "support/MathUtil.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace thistle;

namespace {

/// One per-iterator integer tiling choice: the (SRAM, PE, register) tile
/// size chain with SramTile | extent, PeTile | SramTile, RegTile | PeTile.
struct IterChoice {
  std::int64_t SramTile, PeTile, RegTile;
};

/// Enumerates the hierarchical divisor candidates for one iterator around
/// its real solution (paper section IV).
std::vector<IterChoice> iterChoices(std::int64_t Extent,
                                    const std::array<double, NumTileLevels> &T,
                                    unsigned N) {
  const double RealReg = T[static_cast<unsigned>(TileLevel::Register)];
  const double RealPe =
      RealReg * T[static_cast<unsigned>(TileLevel::PeTemporal)];
  const double RealSram = RealPe * T[static_cast<unsigned>(TileLevel::Spatial)];

  std::vector<IterChoice> Out;
  for (std::int64_t Sram : closestDivisors(Extent, RealSram, N))
    for (std::int64_t Pe : closestDivisors(Sram, RealPe, N))
      for (std::int64_t Reg : closestDivisors(Pe, RealReg, N))
        Out.push_back({Sram, Pe, Reg});
  // The nested divisor chains can repeat choices; deduplicate.
  std::sort(Out.begin(), Out.end(), [](const IterChoice &A,
                                       const IterChoice &B) {
    return std::tie(A.SramTile, A.PeTile, A.RegTile) <
           std::tie(B.SramTile, B.PeTile, B.RegTile);
  });
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](const IterChoice &A, const IterChoice &B) {
                          return A.SramTile == B.SramTile &&
                                 A.PeTile == B.PeTile && A.RegTile == B.RegTile;
                        }),
            Out.end());
  // Visit candidates nearest the real solution first, so that the
  // depth-first cross product under the evaluation cap concentrates on
  // the neighbourhood of the GP optimum.
  auto logDist = [](std::int64_t V, double Real) {
    return std::abs(std::log(static_cast<double>(V)) -
                    std::log(std::max(Real, 1.0)));
  };
  std::stable_sort(Out.begin(), Out.end(),
                   [&](const IterChoice &A, const IterChoice &B) {
                     double DA = logDist(A.SramTile, RealSram) +
                                 logDist(A.PeTile, RealPe) +
                                 logDist(A.RegTile, RealReg);
                     double DB = logDist(B.SramTile, RealSram) +
                                 logDist(B.PeTile, RealPe) +
                                 logDist(B.RegTile, RealReg);
                     return DA < DB;
                   });
  return Out;
}

/// Materializes a full outer-to-inner permutation: the tiled-iterator
/// representative order followed by all remaining iterators (whose trip
/// counts at this level are 1, making their position irrelevant).
std::vector<unsigned> fullPermutation(const Problem &Prob,
                                      const std::vector<unsigned> &TiledPerm) {
  std::vector<unsigned> Perm = TiledPerm;
  std::vector<bool> Used(Prob.numIterators(), false);
  for (unsigned I : TiledPerm)
    Used[I] = true;
  for (unsigned I = 0; I < Prob.numIterators(); ++I)
    if (!Used[I])
      Perm.push_back(I);
  return Perm;
}

/// Architecture candidates around the real solution.
std::vector<ArchConfig> archCandidates(const GpBuildSpec &Spec,
                                       const RealSolution &Real, unsigned N) {
  if (Spec.Mode == DesignMode::DataflowOnly)
    return {Spec.Arch};

  std::vector<std::int64_t> RegChoices =
      closestPowersOfTwo(Real.RegWords, N, /*MinValue=*/4);
  std::vector<std::int64_t> SramChoices =
      closestPowersOfTwo(Real.SramWords, N, /*MinValue=*/16);
  std::vector<std::int64_t> PeChoices;
  std::int64_t Floor = static_cast<std::int64_t>(std::floor(Real.NumPEs));
  std::int64_t Ceil = static_cast<std::int64_t>(std::ceil(Real.NumPEs));
  PeChoices.push_back(std::max<std::int64_t>(1, Floor));
  if (Ceil != Floor)
    PeChoices.push_back(std::max<std::int64_t>(1, Ceil));

  std::vector<ArchConfig> Out;
  for (std::int64_t R : RegChoices)
    for (std::int64_t S : SramChoices)
      for (std::int64_t P : PeChoices) {
        ArchConfig Arch = Spec.Arch; // Keeps the bandwidth parameters.
        Arch.RegWordsPerPE = R;
        Arch.SramWords = S;
        Arch.NumPEs = P;
        if (Arch.areaUm2(Spec.Tech) <= Spec.AreaBudgetUm2)
          Out.push_back(Arch);
      }
  return Out;
}

} // namespace

RoundedDesign thistle::roundSolution(const Problem &Prob,
                                     const GpBuildSpec &Spec,
                                     const RealSolution &Real,
                                     const RoundingOptions &Options) {
  RoundedDesign Best;
  EnergyModel Energy(Spec.Tech);
  const CostEvaluator &Evaluator = resolveCostEvaluator(Options.Evaluator);

  // Per-iterator candidate chains (single fixed choice for untiled ones).
  const unsigned NumIters = Prob.numIterators();
  std::vector<std::vector<IterChoice>> Choices(NumIters);
  for (unsigned I = 0; I < NumIters; ++I) {
    std::int64_t Extent = Prob.iterators()[I].Extent;
    bool Tiled = std::find(Spec.TiledIters.begin(), Spec.TiledIters.end(),
                           I) != Spec.TiledIters.end();
    if (Tiled) {
      Choices[I] = iterChoices(Extent, Real.Trips[I], Options.NumCandidates);
    } else {
      // Untiled: no temporal trips (SramTile == Extent, PeTile ==
      // RegTile), but the extent may split between the register and
      // spatial levels when the GP chose p > 1 (Eyeriss-style stencil
      // unrolling). Divisor candidates follow the real register tile.
      double RealReg = Real.Trips[I][static_cast<unsigned>(
          TileLevel::Register)];
      for (std::int64_t Reg :
           closestDivisors(Extent, RealReg, Options.NumCandidates))
        Choices[I].push_back({Extent, Reg, Reg});
    }
  }

  std::vector<ArchConfig> Archs = archCandidates(Spec, Real,
                                                 Options.NumCandidates);
  if (Archs.empty())
    return Best;
  // The largest capacities/PE count among candidates, used for pruning
  // partial assignments (a partial footprint already above every
  // candidate's capacity can never become legal).
  std::int64_t MaxReg = 0, MaxSram = 0, MaxPEs = 0;
  for (const ArchConfig &A : Archs) {
    MaxReg = std::max(MaxReg, A.RegWordsPerPE);
    MaxSram = std::max(MaxSram, A.SramWords);
    MaxPEs = std::max(MaxPEs, A.NumPEs);
  }

  Mapping Map;
  Map.Factors.resize(NumIters);
  Map.DramPerm = fullPermutation(Prob, Spec.DramPerm);
  Map.PePerm = fullPermutation(Prob, Spec.PePerm);

  double BestObj = 0.0;
  std::size_t Tried = 0;

  // Depth-first cross product with monotone pruning: register/SRAM
  // footprints and the spatial product only grow as iterators are
  // assigned, so a partial assignment exceeding every architecture
  // candidate can be cut immediately.
  std::vector<std::int64_t> RegExt(NumIters, 1), SramExt(NumIters, 1);
  std::int64_t SpatialProduct = 1;

  auto footprintsFit = [&]() {
    std::int64_t RegWords = 0, SramWords = 0;
    for (const Tensor &T : Prob.tensors()) {
      RegWords += T.footprintWords(RegExt);
      SramWords += T.footprintWords(SramExt);
    }
    return RegWords <= MaxReg && SramWords <= MaxSram;
  };

  auto evaluateComplete = [&]() {
    for (const ArchConfig &Arch : Archs) {
      if (Map.numPEsUsed() > Arch.NumPEs)
        continue;
      if (Options.UtilizationThreshold > 0.0 &&
          static_cast<double>(Map.numPEsUsed()) <
              Options.UtilizationThreshold *
                  static_cast<double>(Arch.NumPEs))
        continue;
      ++Tried;
      EvalResult Eval = evaluateMapping(Prob, Map, Arch, Energy, Evaluator);
      if (!Eval.Legal)
        continue;
      double Obj = objectiveValue(Eval, Spec.Objective);
      if (!Best.Found || Obj < BestObj) {
        Best.Found = true;
        Best.Arch = Arch;
        Best.Map = Map;
        Best.Eval = Eval;
        BestObj = Obj;
      }
    }
  };

  auto assignIterator = [&](unsigned I, const IterChoice &C) {
    std::int64_t Extent = Prob.iterators()[I].Extent;
    Map.factor(I, TileLevel::Register) = C.RegTile;
    Map.factor(I, TileLevel::PeTemporal) = C.PeTile / C.RegTile;
    Map.factor(I, TileLevel::Spatial) = C.SramTile / C.PeTile;
    Map.factor(I, TileLevel::DramTemporal) = Extent / C.SramTile;
  };

  // Recursive lambda via explicit stack-free recursion.
  auto recurse = [&](auto &&Self, unsigned I) -> void {
    if (Tried >= Options.MaxMappingCandidates)
      return;
    if (I == NumIters) {
      evaluateComplete();
      return;
    }
    for (const IterChoice &C : Choices[I]) {
      assignIterator(I, C);
      RegExt[I] = C.RegTile;
      SramExt[I] = C.SramTile;
      std::int64_t SavedSpatial = SpatialProduct;
      SpatialProduct *= C.SramTile / C.PeTile;
      if (SpatialProduct <= MaxPEs && footprintsFit())
        Self(Self, I + 1);
      SpatialProduct = SavedSpatial;
      RegExt[I] = 1;
      SramExt[I] = 1;
    }
  };
  recurse(recurse, 0);

  Best.CandidatesTried = Tried;
  return Best;
}
