//===- nestmodel/MaestroModel.cpp - Data-centric cost backend -------------===//
//
// Counting by division instead of by traversal: the nest backend walks
// each level's loops and multiplies the trips that survive hoisting;
// this backend starts from the level's total iteration count and divides
// out each reuse class (stationary, streaming overlap, multicast). All
// divisions are exact by construction — the reuse factors are products
// of complementary trip subsets — so the backends agree integer for
// integer when both are correct, which is what makes the cross-check a
// real bug detector rather than a tolerance test.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/MaestroModel.h"

#include <cassert>
#include <optional>

using namespace thistle;

namespace {

/// The streaming iterator of tensor \p T at one level: the
/// innermost-positioned iterator in \p Perm (outer-to-inner order) that
/// the tensor uses and that actually iterates (trip > 1). Data-centric
/// reading: everything inner to it is tensor-irrelevant, so the tile is
/// stationary across those loops; along it the tile slides and only halo
/// words are new.
struct StreamInfo {
  std::optional<unsigned> Iter;
  std::int64_t Trip = 1;
  /// Product of the trips of the loops inner to the streaming one — the
  /// tensor's stationary (temporal) reuse at this level. When no
  /// streaming iterator exists this is the whole level's trip product.
  std::int64_t StationaryReuse = 1;
};

StreamInfo findStream(const Tensor &T, const std::vector<unsigned> &Perm,
                      const std::vector<std::int64_t> &Trips) {
  StreamInfo Info;
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    if (Trips[It] <= 1)
      continue;
    if (T.usesIter(It)) {
      Info.Iter = It;
      Info.Trip = Trips[It];
      return Info;
    }
    Info.StationaryReuse *= Trips[It];
  }
  return Info;
}

/// Words delivered by one full streaming sequence of tensor \p T: the
/// first tile box plus, per subsequent step, the words not covered by
/// the previous tile (overlap subtraction, per dimension). With no
/// streaming iterator this is just the tile box.
std::int64_t streamedSequenceWords(const Tensor &T,
                                   const std::vector<std::int64_t> &Extents,
                                   const StreamInfo &Stream) {
  std::int64_t Words = 1;
  for (const DimRef &D : T.Dims) {
    std::int64_t Box = D.extentFor(Extents);
    std::int64_t Delivered = Box;
    if (Stream.Iter && D.uses(*Stream.Iter)) {
      std::int64_t Stride = 0;
      for (const DimRef::Term &Term : D.Terms)
        if (Term.Iter == *Stream.Iter)
          Stride = Term.Stride;
      // Consecutive tiles are shifted by Stride * tile points; the
      // overlap is whatever the shift leaves of the box.
      std::int64_t Shift = Stride * Extents[*Stream.Iter];
      std::int64_t Overlap = std::max<std::int64_t>(0, Box - Shift);
      Delivered = Stream.Trip * Box - (Stream.Trip - 1) * Overlap;
    }
    Words *= Delivered;
  }
  return Words;
}

} // namespace

MultiProfile MaestroCostEvaluator::profile(const Problem &Prob,
                                           const Hierarchy &H,
                                           const MultiMapping &Map) const {
  assert(H.validate().empty() && "hierarchy must validate");
  assert(Map.validate(Prob, H).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;

  MultiProfile Profile;
  Profile.Words.assign(H.numBoundaries(),
                       std::vector<std::int64_t>(Prob.tensors().size(), 0));
  Profile.Occupancy.assign(L, 0);
  Profile.PEsUsed = Map.numPEsUsed();

  std::vector<std::vector<std::int64_t>> Extents(L);
  for (unsigned Lv = 0; Lv < L; ++Lv)
    Extents[Lv] = Map.tileExtents(H, Lv);

  // Total temporal trips per level and the product over the levels above
  // each one (the enclosing-iteration count of a level's sequence).
  std::vector<std::int64_t> LevelTrips(L, 1);
  for (unsigned Lv = 0; Lv < L; ++Lv)
    for (unsigned I = 0; I < NumIters; ++I)
      LevelTrips[Lv] *= Map.TempFactors[Lv][I];
  std::vector<std::int64_t> EnclosingTrips(L, 1);
  for (unsigned Lv = L - 1; Lv > 0; --Lv)
    EnclosingTrips[Lv - 1] = EnclosingTrips[Lv] * LevelTrips[Lv];

  const std::int64_t AllSpatialTrips = [&] {
    std::int64_t P = 1;
    for (unsigned I = 0; I < NumIters; ++I)
      P *= Map.SpatialFactors[I];
    return P;
  }();

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    for (unsigned B = 0; B < H.numBoundaries(); ++B) {
      const unsigned WalkLevel = B + 1;
      StreamInfo Stream = findStream(T, Map.Perms[WalkLevel],
                                     Map.TempFactors[WalkLevel]);

      // Sequences delivered at this level: the level's full iteration
      // count divided by the stationary reuse and by the steps already
      // inside one streamed sequence. Exact: StationaryReuse and
      // Stream.Trip are trip products of disjoint loop subsets.
      assert(LevelTrips[WalkLevel] %
                 (Stream.StationaryReuse * Stream.Trip) == 0 &&
             "reuse factors must divide the level trip product");
      std::int64_t Sequences =
          LevelTrips[WalkLevel] / (Stream.StationaryReuse * Stream.Trip);

      // Spatial reuse: below the fan-out every PE sees private traffic;
      // at the fan-out the grid-wide demand is divided by the multicast
      // reuse (spatial trips of iterators the tensor does not use,
      // Eq. 2); above it the tiles already span the grid.
      std::int64_t SpatialMult = 1;
      if (WalkLevel < F) {
        SpatialMult = AllSpatialTrips;
      } else if (WalkLevel == F) {
        std::int64_t MulticastReuse = 1;
        for (unsigned I = 0; I < NumIters; ++I)
          if (!T.usesIter(I))
            MulticastReuse *= Map.SpatialFactors[I];
        assert(AllSpatialTrips % MulticastReuse == 0 &&
               "multicast reuse must divide the spatial trip product");
        SpatialMult = AllSpatialTrips / MulticastReuse;
      }

      std::int64_t Volume = Sequences * EnclosingTrips[WalkLevel] *
                            SpatialMult *
                            streamedSequenceWords(T, Extents[B], Stream);
      if (T.ReadWrite)
        Volume *= 2;
      Profile.Words[B][TI] = Volume;
    }
    for (unsigned Lv = 0; Lv < L; ++Lv)
      Profile.Occupancy[Lv] += T.footprintWords(Extents[Lv]);
  }
  return Profile;
}

const CostEvaluator &thistle::maestroCostEvaluator() {
  static const MaestroCostEvaluator Maestro;
  return Maestro;
}
