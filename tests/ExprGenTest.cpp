//===- tests/ExprGenTest.cpp - Algorithm 1 tests --------------------------===//
//
// Validates the symbolic DF/DV generator against the paper's worked
// examples: the Table I step-by-step trace, the matmul closed forms of
// Eq. 1 / Eq. 2, and numerically against the analytical nest model.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/NestAnalysis.h"
#include "support/Rng.h"
#include "thistle/ExprGen.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

/// Random positive assignment for every interned variable.
Assignment randomAssignment(const VarTable &Vars, Rng &R) {
  Assignment A(Vars.size());
  for (double &V : A)
    V = 1.0 + 3.0 * R.nextDouble();
  return A;
}

} // namespace

TEST(ExprGen, VarNamesFollowPaperNotation) {
  EXPECT_EQ(ExprGen::tripVarName(TileLevel::Register, "h"), "r_h");
  EXPECT_EQ(ExprGen::tripVarName(TileLevel::PeTemporal, "h"), "q_h");
  EXPECT_EQ(ExprGen::tripVarName(TileLevel::Spatial, "h"), "p_h");
  EXPECT_EQ(ExprGen::tripVarName(TileLevel::DramTemporal, "h"), "s_h");
}

TEST(ExprGen, RegisterFootprintsSectionIIIA) {
  // In[n][c][h+r][2w+s]: DF0 = r_n r_c (r_h + r_r - 1)(2 r_w + r_s - 2).
  ConvLayer L;
  L.K = 4;
  L.C = 4;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  L.StrideX = 1;
  L.StrideY = 2;
  Problem P = makeConvProblem(L);
  VarTable Vars;
  ExprGen EG(P, Vars);

  FactoredExpr DfIn = EG.registerFootprint(1);
  // Two halo factors (the n and c extents are single monomials folded
  // into the prefix).
  EXPECT_EQ(DfIn.factors().size(), 2u);

  // Numeric check against the closed form.
  Rng R(1);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Assignment A = randomAssignment(Vars, R);
    auto V = [&](const char *Name) { return A[Vars.lookup(Name)]; };
    double Expected = V("r_n") * V("r_c") * (V("r_h") + V("r_r") - 1.0) *
                      (2.0 * V("r_w") + V("r_s") - 2.0);
    EXPECT_NEAR(DfIn.evaluate(A), Expected, 1e-9 * Expected);
  }

  // Ker[k][c][r][s]: DF0 = r_k r_c r_r r_s.
  FactoredExpr DfKer = EG.registerFootprint(2);
  EXPECT_TRUE(DfKer.factors().empty());
  Assignment A = randomAssignment(Vars, R);
  auto V = [&](const char *Name) { return A[Vars.lookup(Name)]; };
  EXPECT_NEAR(DfKer.evaluate(A), V("r_k") * V("r_c") * V("r_r") * V("r_s"),
              1e-9);
  // Out[n][k][h][w].
  EXPECT_NEAR(EG.registerFootprint(0).evaluate(A),
              V("r_n") * V("r_k") * V("r_h") * V("r_w"), 1e-9);
}

TEST(ExprGen, TableITraceForInAndOut) {
  // Paper Table I: level-1 permutation <w, n, k, h, c, s, r>, strides
  // (1, 2). Checks the final DV^1 and two intermediate steps.
  ConvLayer L;
  L.K = 4;
  L.C = 4;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  L.StrideX = 1;
  L.StrideY = 2;
  Problem P = makeConvProblem(L);
  VarTable Vars;
  ExprGen EG(P, Vars);

  std::vector<unsigned> Perm = {
      P.iteratorIndex("w"), P.iteratorIndex("n"), P.iteratorIndex("k"),
      P.iteratorIndex("h"), P.iteratorIndex("c"), P.iteratorIndex("s"),
      P.iteratorIndex("r")};

  std::vector<std::string> InTrace, OutTrace;
  LevelExprs In = EG.constructExpr(
      1, Perm, TileLevel::PeTemporal, EG.registerFootprint(1),
      [&](unsigned, const LevelExprs &State) {
        InTrace.push_back(State.DV.toString(Vars));
      });
  LevelExprs Out = EG.constructExpr(
      0, Perm, TileLevel::PeTemporal, EG.registerFootprint(0),
      [&](unsigned, const LevelExprs &State) {
        OutTrace.push_back(State.DV.toString(Vars));
      });
  ASSERT_EQ(InTrace.size(), 7u);
  ASSERT_EQ(OutTrace.size(), 7u);

  Rng R(2);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Assignment A = randomAssignment(Vars, R);
    auto V = [&](const char *Name) { return A[Vars.lookup(Name)]; };
    double Halo =
        V("r_n") * V("r_c") * (V("r_h") + V("q_r") * V("r_r") - 1.0) *
        (2.0 * V("r_w") + V("r_s") - 2.0);
    // Table I row 7 (final): DV_In = q_w q_n q_k q_h q_c q_s * halo.
    double ExpectedIn = V("q_w") * V("q_n") * V("q_k") * V("q_h") *
                        V("q_c") * V("q_s") * Halo;
    EXPECT_NEAR(In.DV.evaluate(A), ExpectedIn, 1e-9 * ExpectedIn);
    // Table I row 7: DV_Out = 2 q_w q_n q_k (r_n r_k q_h r_h r_w).
    double ExpectedOut = 2.0 * V("q_w") * V("q_n") * V("q_k") * V("r_n") *
                         V("r_k") * V("q_h") * V("r_h") * V("r_w");
    EXPECT_NEAR(Out.DV.evaluate(A), ExpectedOut, 1e-9 * ExpectedOut);

    // Step 1 (innermost r processed): In replaced r_r -> q_r r_r; Out is
    // hoisted and unchanged except the read+write factor 2.
    // (Traces are strings; re-check numerically on the final exprs only.)
  }

  // Structural checks on the trace: Out's DV gains its first q factor at
  // step 4 (the h loop), as in Table I.
  EXPECT_EQ(OutTrace[0], OutTrace[1]);
  EXPECT_EQ(OutTrace[1], OutTrace[2]);
  EXPECT_NE(OutTrace[2], OutTrace[3]);
  // The factor 2 for read-write is present from the start.
  EXPECT_EQ(OutTrace[0].substr(0, 1), "2");
}

TEST(ExprGen, MatmulEq1DramVolumes) {
  // Fig. 1 tiling, DRAM-level permutation <i, k, j>:
  //   DVol_A = Ni*Nk, DVol_B = Ni*Nj*Nk/Si, DVol_C = 2*Ni*Nj*Nk/Sk
  // (the factor 2 for C covers both directions).
  Problem P = makeMatmulProblem(64, 64, 64);
  VarTable Vars;
  ExprGen EG(P, Vars);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  std::vector<unsigned> DramPerm = {Ii, Ik, Ij};
  std::vector<unsigned> PePerm = {Ii, Ij, Ik};

  Rng R(3);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Assignment A = randomAssignment(Vars, R);
    auto V = [&](const char *Name) { return A[Vars.lookup(Name)]; };
    auto N = [&](const char *D) {
      std::string Dim(D);
      return A[Vars.lookup("s_" + Dim)] * A[Vars.lookup("p_" + Dim)] *
             A[Vars.lookup("q_" + Dim)] * A[Vars.lookup("r_" + Dim)];
    };
    auto SramTile = [&](const char *D) {
      std::string Dim(D);
      return A[Vars.lookup("p_" + Dim)] * A[Vars.lookup("q_" + Dim)] *
             A[Vars.lookup("r_" + Dim)];
    };
    (void)V;

    TensorSymbolicModel C = EG.buildTensorModel(0, PePerm, DramPerm);
    TensorSymbolicModel MA = EG.buildTensorModel(1, PePerm, DramPerm);
    TensorSymbolicModel MB = EG.buildTensorModel(2, PePerm, DramPerm);

    double Ni = N("i"), Nj = N("j"), Nk = N("k");
    EXPECT_NEAR(MA.DvDram.evaluate(A), Ni * Nk, 1e-9 * Ni * Nk);
    EXPECT_NEAR(MB.DvDram.evaluate(A), Ni * Nj * Nk / SramTile("i"),
                1e-6 * MB.DvDram.evaluate(A));
    EXPECT_NEAR(C.DvDram.evaluate(A), 2.0 * Ni * Nj * Nk / SramTile("k"),
                1e-6 * C.DvDram.evaluate(A));

    // SRAM footprints: A is Si*Sk etc.
    EXPECT_NEAR(MA.SramFootprint.evaluate(A), SramTile("i") * SramTile("k"),
                1e-9 * MA.SramFootprint.evaluate(A));
  }
}

TEST(ExprGen, MatmulEq2RegisterVolumes) {
  // PE-level permutation <i, j, k> (paper's register-level ijk):
  //   DVol_A(S->R) = NiNjNk / (Rj*Pj), DVol_B = NiNjNk / (Ri*Pi),
  //   DVol_C = 2*NiNjNk / Sk.
  Problem P = makeMatmulProblem(64, 64, 64);
  VarTable Vars;
  ExprGen EG(P, Vars);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  std::vector<unsigned> DramPerm = {Ii, Ik, Ij};
  std::vector<unsigned> PePerm = {Ii, Ij, Ik};

  Rng R(4);
  for (int Trial = 0; Trial < 20; ++Trial) {
    Assignment A = randomAssignment(Vars, R);
    auto Get = [&](const std::string &Name) { return A[Vars.lookup(Name)]; };
    auto N = [&](const char *D) {
      std::string Dim(D);
      return Get("s_" + Dim) * Get("p_" + Dim) * Get("q_" + Dim) *
             Get("r_" + Dim);
    };
    double Ni = N("i"), Nj = N("j"), Nk = N("k");
    double Vol = Ni * Nj * Nk;

    TensorSymbolicModel C = EG.buildTensorModel(0, PePerm, DramPerm);
    TensorSymbolicModel MA = EG.buildTensorModel(1, PePerm, DramPerm);
    TensorSymbolicModel MB = EG.buildTensorModel(2, PePerm, DramPerm);

    EXPECT_NEAR(MA.DvSramReg.evaluate(A), Vol / (Get("r_j") * Get("p_j")),
                1e-6 * MA.DvSramReg.evaluate(A));
    EXPECT_NEAR(MB.DvSramReg.evaluate(A), Vol / (Get("r_i") * Get("p_i")),
                1e-6 * MB.DvSramReg.evaluate(A));
    double Sk = Get("p_k") * Get("q_k") * Get("r_k");
    EXPECT_NEAR(C.DvSramReg.evaluate(A), 2.0 * Vol / Sk,
                1e-6 * C.DvSramReg.evaluate(A));
  }
}

TEST(ExprGen, SymbolicMatchesNestModelOnConcreteMapping) {
  // End-to-end: Algorithm 1 evaluated at an integer mapping's trip counts
  // must equal the analytical nest model (when no trip-1 present loops
  // hide below absent ones and strides leave no holes).
  ConvLayer L;
  L.K = 4;
  L.C = 4;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  VarTable Vars;
  ExprGen EG(P, Vars);

  unsigned K = P.iteratorIndex("k"), C = P.iteratorIndex("c"),
           H = P.iteratorIndex("h"), W = P.iteratorIndex("w"),
           Rr = P.iteratorIndex("r"), Ss = P.iteratorIndex("s");

  Mapping M = Mapping::untiled(P);
  // Every tiled level uses trip counts >= 2 so that the symbolic model
  // (which is permutation-driven) and the concrete model (which sees
  // through trip-1 loops) pick the same hoist points.
  auto Set = [&](unsigned I, std::int64_t R, std::int64_t Q, std::int64_t Sp,
                 std::int64_t S) {
    M.factor(I, TileLevel::Register) = R;
    M.factor(I, TileLevel::PeTemporal) = Q;
    M.factor(I, TileLevel::Spatial) = Sp;
    M.factor(I, TileLevel::DramTemporal) = S;
  };
  Set(K, 1, 2, 1, 2);
  Set(C, 1, 2, 1, 2);
  Set(H, 2, 2, 1, 2);
  Set(W, 2, 2, 1, 2);
  ASSERT_TRUE(M.validate(P).empty());

  std::vector<unsigned> Tiled = {K, C, H, W};
  M.DramPerm = {K, C, H, W, P.iteratorIndex("n"), Rr, Ss};
  M.PePerm = {C, K, W, H, P.iteratorIndex("n"), Rr, Ss};

  // Assignment mirroring the mapping's trip counts (untiled iterators'
  // whole extents at the register level).
  Assignment A(Vars.size(), 1.0);
  for (unsigned I = 0; I < P.numIterators(); ++I)
    for (unsigned Lv = 0; Lv < NumTileLevels; ++Lv)
      A[EG.tripVar(static_cast<TileLevel>(Lv), I)] =
          static_cast<double>(M.Factors[I][Lv]);

  NestProfile Prof = analyzeNest(P, M);
  std::vector<unsigned> PeTiled = {C, K, W, H};
  std::vector<unsigned> DramTiled = {K, C, H, W};
  for (unsigned TI = 0; TI < 3; ++TI) {
    TensorSymbolicModel Model = EG.buildTensorModel(TI, PeTiled, DramTiled);
    SCOPED_TRACE(P.tensors()[TI].Name);
    double ExpectedDram = static_cast<double>(
        Prof.PerTensor[TI].DramToSram + Prof.PerTensor[TI].SramToDram);
    double ExpectedSR = static_cast<double>(
        Prof.PerTensor[TI].SramToReg + Prof.PerTensor[TI].RegToSram);
    EXPECT_NEAR(Model.DvDram.evaluate(A), ExpectedDram,
                1e-9 * ExpectedDram);
    EXPECT_NEAR(Model.DvSramReg.evaluate(A), ExpectedSR, 1e-9 * ExpectedSR);
  }
}

TEST(ExprGen, UpperBoundDominatesExactFootprint) {
  ConvLayer L;
  L.K = 8;
  L.C = 8;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  VarTable Vars;
  ExprGen EG(P, Vars);
  Rng R(5);
  for (int Trial = 0; Trial < 30; ++Trial) {
    Assignment A = randomAssignment(Vars, R);
    FactoredExpr DF = EG.registerFootprint(1);
    EXPECT_GE(DF.posynomialUpperBound().evaluate(A), DF.evaluate(A));
  }
}
