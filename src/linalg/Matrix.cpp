//===- linalg/Matrix.cpp - Dense linear algebra kernel --------------------===//
//
// The Matrix entry points run on the SIMD kernel layer (Kernels.h).
// Reductions (apply, choleskySolve) use the kernels' fixed blocked
// association order; element-wise sweeps (applyTransposed, multiply, the
// Gauss-Jordan row updates) are bit-identical to the naive scalar loops
// by construction.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"

#include "linalg/Kernels.h"

#include <cmath>

using namespace thistle;

Matrix Matrix::identity(std::size_t N) {
  Matrix I(N, N);
  for (std::size_t K = 0; K < N; ++K)
    I.at(K, K) = 1.0;
  return I;
}

Vector Matrix::apply(const Vector &V) const {
  assert(V.size() == NumCols && "dimension mismatch in apply");
  Vector Out(NumRows, 0.0);
  for (std::size_t R = 0; R < NumRows; ++R)
    Out[R] = kernels::dot(row(R), V.data(), NumCols);
  return Out;
}

Vector Matrix::applyTransposed(const Vector &V) const {
  assert(V.size() == NumRows && "dimension mismatch in applyTransposed");
  Vector Out(NumCols, 0.0);
  for (std::size_t R = 0; R < NumRows; ++R)
    kernels::axpy(Out.data(), V[R], row(R), NumCols);
  return Out;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.rows() && "dimension mismatch in multiply");
  Matrix Out(NumRows, Other.cols());
  for (std::size_t R = 0; R < NumRows; ++R)
    for (std::size_t K = 0; K < NumCols; ++K) {
      double V = at(R, K);
      if (V == 0.0)
        continue;
      kernels::axpy(Out.row(R), V, Other.row(K), Other.cols());
    }
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix Out(NumCols, NumRows);
  for (std::size_t R = 0; R < NumRows; ++R)
    for (std::size_t C = 0; C < NumCols; ++C)
      Out.at(C, R) = at(R, C);
  return Out;
}

bool thistle::choleskySolve(Matrix A, const Vector &B, Vector &X) {
  assert(A.rows() == A.cols() && "Cholesky needs a square matrix");
  assert(B.size() == A.rows() && "right-hand side dimension mismatch");
  const std::size_t N = A.rows();
  if (!kernels::choleskyFactor(A.data(), N))
    return false;
  X.assign(N, 0.0);
  Vector Scratch(N * N);
  kernels::choleskySubstitute(A.data(), N, B.data(), X.data(),
                              Scratch.data());
  return true;
}

namespace {

/// Runs Gauss-Jordan elimination on [A | B]; returns the pivot column of
/// each eliminated row in \p PivotCols (row R has pivot PivotCols[R]).
/// On return \p A is in reduced row-echelon form.
void gaussJordan(Matrix &A, Vector *B, std::vector<std::size_t> &PivotCols,
                 double Tol) {
  const std::size_t Rows = A.rows(), Cols = A.cols();
  PivotCols.clear();
  std::size_t Row = 0;
  for (std::size_t Col = 0; Col < Cols && Row < Rows; ++Col) {
    // Partial pivoting within this column.
    std::size_t Best = Row;
    for (std::size_t R = Row + 1; R < Rows; ++R)
      if (std::abs(A.at(R, Col)) > std::abs(A.at(Best, Col)))
        Best = R;
    if (std::abs(A.at(Best, Col)) <= Tol)
      continue;
    if (Best != Row) {
      for (std::size_t C = 0; C < Cols; ++C)
        std::swap(A.at(Best, C), A.at(Row, C));
      if (B)
        std::swap((*B)[Best], (*B)[Row]);
    }
    // Normalize the pivot row.
    double Pivot = A.at(Row, Col);
    for (std::size_t C = 0; C < Cols; ++C)
      A.at(Row, C) /= Pivot;
    if (B)
      (*B)[Row] /= Pivot;
    // Eliminate the column from every other row (element-wise axpy: the
    // kernel result is bit-identical to the scalar update).
    for (std::size_t R = 0; R < Rows; ++R) {
      if (R == Row)
        continue;
      double Factor = A.at(R, Col);
      if (Factor == 0.0)
        continue;
      kernels::axpy(A.row(R), -Factor, A.row(Row), Cols);
      if (B)
        (*B)[R] -= Factor * (*B)[Row];
    }
    PivotCols.push_back(Col);
    ++Row;
  }
}

} // namespace

Matrix thistle::nullSpaceOf(const Matrix &A, double Tol) {
  Matrix R = A;
  std::vector<std::size_t> PivotCols;
  gaussJordan(R, /*B=*/nullptr, PivotCols, Tol);

  const std::size_t Cols = A.cols();
  std::vector<bool> IsPivot(Cols, false);
  for (std::size_t P : PivotCols)
    IsPivot[P] = true;

  std::vector<std::size_t> FreeCols;
  for (std::size_t C = 0; C < Cols; ++C)
    if (!IsPivot[C])
      FreeCols.push_back(C);

  Matrix Z(Cols, FreeCols.size());
  for (std::size_t K = 0; K < FreeCols.size(); ++K) {
    std::size_t F = FreeCols[K];
    Z.at(F, K) = 1.0;
    // Pivot row I constrains variable PivotCols[I]:
    //   x_pivot + sum_{free C} R(I, C) x_C = 0.
    for (std::size_t I = 0; I < PivotCols.size(); ++I)
      Z.at(PivotCols[I], K) = -R.at(I, F);
  }
  return Z;
}

bool thistle::solveParticular(const Matrix &A, const Vector &B, Vector &X,
                              double Tol) {
  assert(B.size() == A.rows() && "right-hand side dimension mismatch");
  Matrix R = A;
  Vector Rhs = B;
  std::vector<std::size_t> PivotCols;
  gaussJordan(R, &Rhs, PivotCols, Tol);

  // Inconsistency check: a zero row with a nonzero right-hand side.
  for (std::size_t Row = PivotCols.size(); Row < A.rows(); ++Row)
    if (std::abs(Rhs[Row]) > Tol * 100)
      return false;

  X.assign(A.cols(), 0.0);
  for (std::size_t I = 0; I < PivotCols.size(); ++I)
    X[PivotCols[I]] = Rhs[I];
  return true;
}

double thistle::dot(const Vector &A, const Vector &B) {
  assert(A.size() == B.size() && "dot dimension mismatch");
  return kernels::dot(A.data(), B.data(), A.size());
}

double thistle::norm2(const Vector &V) { return std::sqrt(dot(V, V)); }

Vector thistle::axpy(const Vector &A, double Scale, const Vector &B) {
  assert(A.size() == B.size() && "axpy dimension mismatch");
  Vector Out(A.size());
  kernels::axpby(Out.data(), A.data(), Scale, B.data(), A.size());
  return Out;
}
