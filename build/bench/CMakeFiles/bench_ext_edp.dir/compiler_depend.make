# Empty compiler generated dependencies file for bench_ext_edp.
# This may be replaced when dependencies are built.
