//===- support/SweepReport.cpp - Per-sweep fault accounting ---------------===//

#include "support/SweepReport.h"

#include <sstream>

using namespace thistle;

const char *thistle::taskOutcomeName(TaskOutcome Outcome) {
  switch (Outcome) {
  case TaskOutcome::Solved:
    return "solved";
  case TaskOutcome::Degraded:
    return "degraded";
  case TaskOutcome::Infeasible:
    return "infeasible";
  case TaskOutcome::Failed:
    return "failed";
  case TaskOutcome::Skipped:
    return "skipped";
  }
  return "unknown";
}

void SweepReport::record(TaskOutcome Outcome, std::size_t Index,
                         std::size_t A, std::size_t B, unsigned Attempts,
                         std::string Detail) {
  switch (Outcome) {
  case TaskOutcome::Solved:
    ++Solved;
    break;
  case TaskOutcome::Degraded:
    ++Degraded;
    break;
  case TaskOutcome::Infeasible:
    ++Infeasible;
    break;
  case TaskOutcome::Failed:
    ++Failed;
    break;
  case TaskOutcome::Skipped:
    ++Skipped;
    break;
  }
  if (Attempts > 1)
    ++Retried;
  if (Outcome != TaskOutcome::Solved)
    Incidents.push_back(
        {Index, A, B, Outcome, Attempts, std::move(Detail)});
}

void SweepReport::recordPolicySkip(std::size_t Index, std::size_t A,
                                   std::size_t B, std::string Detail) {
  ++SkippedByPolicy;
  record(TaskOutcome::Skipped, Index, A, B, 0, std::move(Detail));
}

void SweepReport::merge(SweepReport &&Next) {
  Solved += Next.Solved;
  Retried += Next.Retried;
  Degraded += Next.Degraded;
  Infeasible += Next.Infeasible;
  Failed += Next.Failed;
  Skipped += Next.Skipped;
  SkippedByPolicy += Next.SkippedByPolicy;
  DeadlineExpired = DeadlineExpired || Next.DeadlineExpired;
  Incidents.insert(Incidents.end(),
                   std::make_move_iterator(Next.Incidents.begin()),
                   std::make_move_iterator(Next.Incidents.end()));
}

std::string SweepReport::toString(const char *TaskNoun) const {
  std::ostringstream OS;
  if (total() == 0) {
    // An empty sweep (e.g. a hierarchy that yields zero tasks) must say
    // so explicitly rather than print a blank summary.
    OS << "0 " << TaskNoun << "s: nothing attempted";
    if (DeadlineExpired)
      OS << " [deadline expired]";
    return OS.str();
  }
  OS << total() << " " << TaskNoun << "s: " << Solved << " solved";
  if (Retried)
    OS << " (" << Retried << " after retries)";
  if (Degraded)
    OS << ", " << Degraded << " degraded";
  if (Infeasible)
    OS << ", " << Infeasible << " infeasible";
  if (Failed)
    OS << ", " << Failed << " failed";
  if (Skipped) {
    OS << ", " << Skipped << " skipped";
    if (SkippedByPolicy)
      OS << " (" << SkippedByPolicy << " by policy)";
  }
  if (DeadlineExpired)
    OS << " [deadline expired]";
  for (const SweepIncident &I : Incidents) {
    // Genuine infeasibility is an expected model property of many pairs;
    // keep the incident list focused on faults and losses.
    if (I.Outcome == TaskOutcome::Infeasible)
      continue;
    OS << "\n  " << TaskNoun << " " << I.Index << " (" << I.A << ","
       << I.B << "): " << taskOutcomeName(I.Outcome);
    if (I.Attempts > 1)
      OS << " after " << I.Attempts << " attempts";
    if (!I.Detail.empty())
      OS << ": " << I.Detail;
  }
  return OS.str();
}
