//===- thistle/GpCache.h - GP solution cache for network sweeps -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe cache of perm-class pair-task outcomes, shared across
/// the layer sweeps of a network-level run (repeated ResNet-style blocks
/// make many solves redundant). Two tiers:
///
///  - *Exact* entries are keyed on the full canonicalized task identity
///    (layer shape, architecture, technology, perm-pair, mode/objective/
///    options). A hit replays the recorded outcome — report record,
///    stats deltas, rounded design — without building or solving the GP,
///    so a cached sweep is bit-identical to a cold one.
///  - *Warm* entries are keyed on the structural identity only (iterator
///    names, tensor skeleton, perms, mode/objective) and store the
///    x-space optimum of a previously solved, structurally identical GP.
///    They are consulted exclusively as a last-resort recovery rung when
///    the cold solve chain yields no feasible iterate, seeding the
///    barrier method via GpSolverOptions::InitialPoint. Because the warm
///    rung only runs where the cold path already failed, a sweep with no
///    failures stays bit-identical with the cache on or off.
///
/// Determinism under parallel fill: warm lookups only see entries frozen
/// at a generation boundary (beginGeneration(), called by the network
/// driver between phases), never entries raced in by sibling tasks of
/// the current phase; where several exact entries share a warm key, the
/// one with the lexicographically smallest exact key wins, independent
/// of insertion order.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_GPCACHE_H
#define THISTLE_THISTLE_GPCACHE_H

#include "support/SweepReport.h"
#include "thistle/Rounding.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace thistle {

struct ThistleOptions;

/// The replayable outcome of one pair task. Everything the task wrote
/// into its shard accumulator is recorded, so a hit reproduces the
/// miss path bit-for-bit without touching the solver.
struct GpCacheEntry {
  TaskOutcome Outcome = TaskOutcome::Failed;
  unsigned Attempts = 0;
  std::string Detail;          ///< Incident detail (empty when Solved).
  unsigned NewtonIterations = 0;
  bool GpInfeasible = false;   ///< The task bumped Stats.GpInfeasible.
  /// Rounded design (Design.Found=false when rounding found nothing or
  /// the solve yielded no feasible iterate).
  RoundedDesign Design;
  double Obj = 0.0;            ///< objectiveValue(Design.Eval, ...).
  double ModelObjective = 0.0; ///< Relaxed GP objective (pre-rounding).
  /// x-space GP optimum (empty when no feasible iterate); the seed
  /// served to warm lookups.
  std::vector<double> Optimum;
};

/// The canonical cache keys of one pair task.
struct GpCacheKeys {
  std::string Exact; ///< Full task identity.
  std::string Warm;  ///< Structural identity (extents/arch/tech erased).
};

/// Builds the canonical keys for one (problem, options, arch, pair)
/// task. Layer names are deliberately excluded so identically shaped
/// layers of different networks share entries.
GpCacheKeys gpCacheKeys(const Problem &Prob, const ThistleOptions &Options,
                        const ArchConfig &Arch, const TechParams &Tech,
                        double AreaBudgetUm2,
                        const std::vector<unsigned> &TiledIters,
                        const std::vector<unsigned> &PePerm,
                        const std::vector<unsigned> &DramPerm);

/// Thread-safe two-tier GP solution cache. One instance may be shared
/// across sequential optimizeNetwork calls to carry results between
/// runs; concurrent sweeps sharing one instance are serialized on an
/// internal mutex.
class GpSolutionCache {
public:
  /// Exact lookup; counts a hit or a miss. On a hit copies the entry.
  bool lookupExact(const std::string &Key, GpCacheEntry &Out);

  /// Inserts the finished task under both keys. The warm tier only
  /// keeps entries with a non-empty Optimum; within the current
  /// generation the candidate with the smallest exact key wins.
  void insert(const std::string &Key, const std::string &WarmKey,
              GpCacheEntry Entry);

  /// Warm lookup: the frozen (pre-generation) optimum for \p WarmKey.
  /// Does not count into hits()/misses().
  bool lookupWarm(const std::string &WarmKey,
                  std::vector<double> &Out) const;

  /// Counts one warm-start attempt (called by the task that uses one).
  void noteWarmStart();

  /// Freezes the warm entries inserted since the last call: they become
  /// visible to lookupWarm. Called at phase boundaries so warm lookups
  /// never observe a racing sibling task of the same phase.
  void beginGeneration();

  std::uint64_t hits() const { return Hits.load(); }
  std::uint64_t misses() const { return Misses.load(); }
  std::uint64_t warmStarts() const { return WarmStarts.load(); }
  std::size_t size() const;
  void clear();

private:
  struct WarmSlot {
    bool HasFrozen = false;
    std::vector<double> Frozen;
    bool HasPending = false;
    std::string PendingSource; ///< Exact key of the pending candidate.
    std::vector<double> Pending;
  };

  mutable std::mutex Mutex;
  std::unordered_map<std::string, GpCacheEntry> Exact;
  std::unordered_map<std::string, WarmSlot> Warm;
  std::atomic<std::uint64_t> Hits{0}, Misses{0}, WarmStarts{0};
};

} // namespace thistle

#endif // THISTLE_THISTLE_GPCACHE_H
