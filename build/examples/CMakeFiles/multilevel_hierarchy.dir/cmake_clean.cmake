file(REMOVE_RECURSE
  "CMakeFiles/multilevel_hierarchy.dir/multilevel_hierarchy.cpp.o"
  "CMakeFiles/multilevel_hierarchy.dir/multilevel_hierarchy.cpp.o.d"
  "multilevel_hierarchy"
  "multilevel_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
