# Empty dependencies file for bench_fig6_fixed_arch_energy.
# This may be replaced when dependencies are built.
