file(REMOVE_RECURSE
  "libthistle_model.a"
)
