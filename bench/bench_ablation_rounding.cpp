//===- bench/bench_ablation_rounding.cpp - Rounding width ablation --------===//
//
// Ablates the paper's integerization parameter n ("typically 2 or 3"):
// the number of divisor / power-of-two candidates taken around the real
// GP solution, for dataflow optimization and co-design on representative
// layers. Larger n explores more integer candidates at higher cost.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printRoundingAblation() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  std::vector<ConvLayer> Layers = {resnet18Layers()[1], resnet18Layers()[8],
                                   yolo9000Layers()[6]};

  for (DesignMode Mode : {DesignMode::DataflowOnly, DesignMode::CoDesign}) {
    std::printf("%s:\n", Mode == DesignMode::DataflowOnly
                             ? "dataflow optimization (Eyeriss)"
                             : "co-design (equal area)");
    TablePrinter Table({"layer", "n", "pJ/MAC", "candidates evaluated"});
    for (const ConvLayer &L : Layers) {
      Problem P = makeConvProblem(L);
      for (unsigned N : {1u, 2u, 3u}) {
        ThistleOptions O = thistleOptions(Mode, SearchObjective::Energy);
        O.Rounding.NumCandidates = N;
        ThistleResult R = optimizeLayer(P, Eyeriss, Tech, O,
                                        Mode == DesignMode::CoDesign
                                            ? Budget
                                            : 0.0);
        Table.addRow(
            {L.Name, std::to_string(N),
             R.Found ? TablePrinter::formatDouble(R.Eval.EnergyPerMacPj, 2)
                     : std::string("-"),
             std::to_string(R.Stats.CandidatesEvaluated)});
      }
    }
    Table.print(std::cout);
    std::printf("\n");
  }
}

void timeRoundingN(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  ThistleOptions O =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  O.Rounding.NumCandidates = static_cast<unsigned>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O));
}
BENCHMARK(timeRoundingN)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Ablation: rounding candidates",
              "Integerization width n (paper section IV: N closest powers "
              "of two, n closest divisors)");
  printRoundingAblation();
  return runTimings(Argc, Argv);
}
