# Empty dependencies file for matmul_codesign.
# This may be replaced when dependencies are built.
