//===- tests/SimdKernelsTest.cpp - Kernel-layer bit-identity tests --------===//
//
// The determinism contract of the kernel layer (linalg/Kernels.h,
// docs/PERF.md): every kernel follows a fixed blocking/association order
// independent of the THISTLE_SIMD backend. The tests pin that order by
// comparing each kernel bit-for-bit against an independently written
// reference that spells the canonical order out in plain scalar code.
// If the compiled backend (scalar, SSE2, AVX2, NEON) deviates from the
// canonical order in any lane, these tests fail — so green tests under
// one THISTLE_SIMD setting transitively prove agreement with every
// other setting.
//
// The lane-batched Cholesky is additionally checked lane-by-lane against
// the single-system kernel: batching four systems must be bit-invisible.
//
//===----------------------------------------------------------------------===//

#include "linalg/Kernels.h"
#include "linalg/Matrix.h"
#include "solver/GpProblem.h"
#include "solver/GpSolver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

using namespace thistle;

namespace {

/// Deterministic values in roughly (-1, 1), bit-reproducible everywhere.
double pseudo(std::uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return static_cast<double>(static_cast<std::int64_t>(S % 2000003) -
                             1000001) /
         1000003.0;
}

std::vector<double> randomVec(std::size_t N, std::uint64_t Seed) {
  std::uint64_t S = Seed * 2654435761u + 17;
  std::vector<double> V(N);
  for (double &X : V)
    X = pseudo(S);
  return V;
}

// ---- Canonical-order references (plain scalar code). -------------------

/// The fixed reduction order: four partial sums over blocks of four,
/// combined (l0 + l1) + (l2 + l3), sequential tail.
double refDot(const double *A, const double *B, std::size_t N) {
  double L[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    for (int K = 0; K < 4; ++K)
      L[K] += A[I + K] * B[I + K];
  double S = (L[0] + L[1]) + (L[2] + L[3]);
  for (; I < N; ++I)
    S += A[I] * B[I];
  return S;
}

double refSum(const double *A, std::size_t N) {
  double L[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    for (int K = 0; K < 4; ++K)
      L[K] += A[I + K];
  double S = (L[0] + L[1]) + (L[2] + L[3]);
  for (; I < N; ++I)
    S += A[I];
  return S;
}

double refExpAccum(double *E, std::size_t N, double Max) {
  double L[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t I = 0;
  for (; I + 4 <= N; I += 4)
    for (int K = 0; K < 4; ++K) {
      E[I + K] = std::exp(E[I + K] - Max);
      L[K] += E[I + K];
    }
  double S = (L[0] + L[1]) + (L[2] + L[3]);
  for (; I < N; ++I) {
    E[I] = std::exp(E[I] - Max);
    S += E[I];
  }
  return S;
}

bool refCholeskySolve(std::vector<double> A, std::size_t N,
                      const std::vector<double> &B, std::vector<double> &X) {
  for (std::size_t J = 0; J < N; ++J) {
    double Diag = A[J * N + J] - refDot(&A[J * N], &A[J * N], J);
    if (!(Diag > 0.0) || !std::isfinite(Diag))
      return false;
    double L = std::sqrt(Diag);
    A[J * N + J] = L;
    for (std::size_t I = J + 1; I < N; ++I)
      A[I * N + J] = (A[I * N + J] - refDot(&A[I * N], &A[J * N], J)) / L;
  }
  X.assign(N, 0.0);
  for (std::size_t I = 0; I < N; ++I)
    X[I] = (B[I] - refDot(&A[I * N], X.data(), I)) / A[I * N + I];
  std::vector<double> T(N * N, 0.0);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = I; J < N; ++J)
      T[I * N + J] = A[J * N + I];
  for (std::size_t II = N; II > 0; --II) {
    std::size_t I = II - 1;
    X[I] = (X[I] - refDot(&T[I * N + I + 1], &X[I + 1], N - I - 1)) /
           T[I * N + I];
  }
  return true;
}

/// An SPD matrix G^T G + N * I with deterministic G.
std::vector<double> spdMatrix(std::size_t N, std::uint64_t Seed) {
  std::vector<double> G = randomVec(N * N, Seed);
  std::vector<double> A(N * N, 0.0);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J) {
      double S = 0.0;
      for (std::size_t K = 0; K < N; ++K)
        S += G[K * N + I] * G[K * N + J];
      A[I * N + J] = S + (I == J ? static_cast<double>(N) : 0.0);
    }
  return A;
}

TEST(SimdKernels, PackWidthIsFour) {
  // The logical width is a fixed property of the layer, not the backend.
  EXPECT_EQ(kernels::packWidth(), 4u);
  EXPECT_NE(kernels::backendName(), nullptr);
}

TEST(SimdKernels, DotMatchesCanonicalOrderBitwise) {
  for (std::size_t N = 0; N <= 67; ++N) {
    std::vector<double> A = randomVec(N, N * 2 + 1), B = randomVec(N, N * 2 + 2);
    double K = kernels::dot(A.data(), B.data(), N);
    double R = refDot(A.data(), B.data(), N);
    EXPECT_EQ(K, R) << "size " << N; // Bitwise: no tolerance.
  }
}

TEST(SimdKernels, SumMatchesCanonicalOrderBitwise) {
  for (std::size_t N = 0; N <= 67; ++N) {
    std::vector<double> A = randomVec(N, N + 100);
    EXPECT_EQ(kernels::sum(A.data(), N), refSum(A.data(), N)) << "size " << N;
  }
}

TEST(SimdKernels, AxpyMatchesScalarLoopBitwise) {
  for (std::size_t N = 0; N <= 67; ++N) {
    std::vector<double> Y = randomVec(N, N + 200), X = randomVec(N, N + 300);
    std::vector<double> YRef = Y;
    kernels::axpy(Y.data(), 0.37, X.data(), N);
    for (std::size_t I = 0; I < N; ++I)
      YRef[I] += 0.37 * X[I];
    EXPECT_EQ(Y, YRef) << "size " << N;
  }
}

TEST(SimdKernels, AxpbyMatchesScalarLoopBitwise) {
  for (std::size_t N = 0; N <= 67; ++N) {
    std::vector<double> A = randomVec(N, N + 400), B = randomVec(N, N + 500);
    std::vector<double> Out(N, 0.0), OutRef(N, 0.0);
    kernels::axpby(Out.data(), A.data(), -1.91, B.data(), N);
    for (std::size_t I = 0; I < N; ++I)
      OutRef[I] = A[I] + -1.91 * B[I];
    EXPECT_EQ(Out, OutRef) << "size " << N;
  }
}

TEST(SimdKernels, ExpAccumMatchesCanonicalOrderBitwise) {
  for (std::size_t N = 0; N <= 67; ++N) {
    std::vector<double> E = randomVec(N, N + 600), ERef = E;
    double K = kernels::expAccum(E.data(), N, 0.5);
    double R = refExpAccum(ERef.data(), N, 0.5);
    EXPECT_EQ(K, R) << "size " << N;
    EXPECT_EQ(E, ERef) << "size " << N; // Per-element exp values too.
  }
}

TEST(SimdKernels, GramAccumMatchesScalarLoopBitwise) {
  for (std::size_t N : {0u, 1u, 3u, 4u, 7u, 16u, 33u}) {
    std::vector<double> H = randomVec(N * N, N + 700), HRef = H;
    std::vector<double> Row = randomVec(N, N + 800);
    kernels::gramAccum(H.data(), Row.data(), 0.73, N);
    for (std::size_t I = 0; I < N; ++I)
      for (std::size_t J = 0; J < N; ++J)
        HRef[I * N + J] += (0.73 * Row[I]) * Row[J];
    EXPECT_EQ(H, HRef) << "size " << N;
  }
}

TEST(SimdKernels, Rank1SubMatchesScalarLoopBitwise) {
  for (std::size_t N : {0u, 1u, 3u, 4u, 7u, 16u, 33u}) {
    std::vector<double> H = randomVec(N * N, N + 900), HRef = H;
    std::vector<double> G = randomVec(N, N + 1000);
    kernels::rank1Sub(H.data(), G.data(), N);
    for (std::size_t I = 0; I < N; ++I)
      for (std::size_t J = 0; J < N; ++J)
        HRef[I * N + J] -= G[I] * G[J];
    EXPECT_EQ(H, HRef) << "size " << N;
  }
}

TEST(SimdKernels, CholeskyMatchesCanonicalOrderBitwise) {
  for (std::size_t N : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 24u}) {
    std::vector<double> A = spdMatrix(N, N + 1100);
    std::vector<double> B = randomVec(N, N + 1200);
    std::vector<double> AK = A, X(N, 0.0), Scratch(N * N, 0.0), XRef;
    ASSERT_TRUE(kernels::choleskySolveInPlace(AK.data(), N, B.data(),
                                              X.data(), Scratch.data()));
    ASSERT_TRUE(refCholeskySolve(A, N, B, XRef));
    EXPECT_EQ(X, XRef) << "size " << N;
  }
}

TEST(SimdKernels, CholeskyRejectsNonSpd) {
  std::vector<double> A = {1.0, 2.0, 2.0, 1.0}; // Indefinite.
  EXPECT_FALSE(kernels::choleskyFactor(A.data(), 2));
}

TEST(SimdKernels, BatchedCholeskyLanesMatchSingleSolveBitwise) {
  // Four different SPD systems, one per lane; every lane must be
  // bit-identical to solving that system alone.
  const std::size_t N = 11;
  std::vector<std::vector<double>> As, Bs, Xs;
  for (int S = 0; S < 4; ++S) {
    As.push_back(spdMatrix(N, 1300 + S));
    Bs.push_back(randomVec(N, 1400 + S));
    std::vector<double> A = As.back(), X(N, 0.0), Scratch(N * N, 0.0);
    ASSERT_TRUE(kernels::choleskySolveInPlace(A.data(), N, Bs.back().data(),
                                              X.data(), Scratch.data()));
    Xs.push_back(std::move(X));
  }
  std::vector<double> A4(N * N * 4), B4(N * 4), X4(N * 4),
      Scratch4(N * N * 4);
  for (std::size_t I = 0; I < N * N; ++I)
    for (int S = 0; S < 4; ++S)
      A4[I * 4 + S] = As[S][I];
  for (std::size_t I = 0; I < N; ++I)
    for (int S = 0; S < 4; ++S)
      B4[I * 4 + S] = Bs[S][I];
  kernels::CholeskyBatch4Ok Ok = kernels::choleskySolveBatch4(
      A4.data(), B4.data(), X4.data(), N, Scratch4.data());
  for (int S = 0; S < 4; ++S) {
    ASSERT_TRUE(Ok.Ok[S]) << "lane " << S;
    for (std::size_t I = 0; I < N; ++I)
      EXPECT_EQ(X4[I * 4 + S], Xs[S][I]) << "lane " << S << " row " << I;
  }
}

TEST(SimdKernels, BatchedCholeskyConfinesFailedLane) {
  // Lane 2 gets an indefinite matrix; the other lanes must still solve
  // bit-identically to their standalone runs.
  const std::size_t N = 6;
  std::vector<std::vector<double>> As, Bs;
  for (int S = 0; S < 4; ++S) {
    As.push_back(spdMatrix(N, 1500 + S));
    Bs.push_back(randomVec(N, 1600 + S));
  }
  As[2][0] = -5.0; // Non-positive leading pivot: factorization fails.
  std::vector<double> A4(N * N * 4), B4(N * 4), X4(N * 4),
      Scratch4(N * N * 4);
  for (std::size_t I = 0; I < N * N; ++I)
    for (int S = 0; S < 4; ++S)
      A4[I * 4 + S] = As[S][I];
  for (std::size_t I = 0; I < N; ++I)
    for (int S = 0; S < 4; ++S)
      B4[I * 4 + S] = Bs[S][I];
  kernels::CholeskyBatch4Ok Ok = kernels::choleskySolveBatch4(
      A4.data(), B4.data(), X4.data(), N, Scratch4.data());
  EXPECT_FALSE(Ok.Ok[2]);
  for (int S = 0; S < 4; ++S) {
    if (S == 2)
      continue;
    ASSERT_TRUE(Ok.Ok[S]) << "lane " << S;
    std::vector<double> A = As[S], X(N, 0.0), Scratch(N * N, 0.0);
    ASSERT_TRUE(kernels::choleskySolveInPlace(A.data(), N, Bs[S].data(),
                                              X.data(), Scratch.data()));
    for (std::size_t I = 0; I < N; ++I)
      EXPECT_EQ(X4[I * 4 + S], X[I]) << "lane " << S << " row " << I;
  }
}

TEST(SimdKernels, MatrixCholeskySolveAgreesWithKernel) {
  // The Matrix-level entry point is a thin wrapper over the kernels;
  // pin that so refactors cannot fork the two code paths numerically.
  const std::size_t N = 9;
  std::vector<double> Flat = spdMatrix(N, 1700);
  Matrix A(N, N);
  for (std::size_t I = 0; I < N; ++I)
    for (std::size_t J = 0; J < N; ++J)
      A.at(I, J) = Flat[I * N + J];
  Vector B = randomVec(N, 1800), X;
  ASSERT_TRUE(choleskySolve(A, B, X));
  std::vector<double> AK = Flat, XK(N, 0.0), Scratch(N * N, 0.0);
  ASSERT_TRUE(kernels::choleskySolveInPlace(AK.data(), N, B.data(),
                                            XK.data(), Scratch.data()));
  for (std::size_t I = 0; I < N; ++I)
    EXPECT_EQ(X[I], XK[I]);
}

TEST(SimdKernels, GpSolveTrajectoryIsReproducible) {
  // Same problem, repeated solves: trajectories must agree bit-for-bit
  // (Newton counts included). Combined with the canonical-order kernel
  // pins above, this makes the solver trajectory a function of the
  // problem alone — not of THISTLE_SIMD, which the CI matrix checks by
  // diffing whole runs across native and off builds.
  GpProblem P;
  VarId X = P.addVariable("x");
  VarId Y = P.addVariable("y");
  Posynomial Obj;
  Obj += Signomial(Monomial::variable(X, 1.0, 2.0)); // 2x
  Obj += Signomial(Monomial::variable(Y, 1.0, 3.0)); // + 3y
  P.setObjective(Obj);
  // x^-1 y^-1 <= 1, i.e. xy >= 1.
  P.addUpperBound(Posynomial(Monomial::variable(X, -1.0) *
                             Monomial::variable(Y, -1.0)),
                  1.0, "xy >= 1");
  GpSolverOptions Opts;
  GpSolution A = solveGp(P, Opts);
  GpSolution B = solveGp(P, Opts);
  ASSERT_TRUE(A.Converged);
  EXPECT_EQ(A.NewtonIterations, B.NewtonIterations);
  ASSERT_EQ(A.Values.size(), B.Values.size());
  for (std::size_t I = 0; I < A.Values.size(); ++I)
    EXPECT_EQ(A.Values[I], B.Values[I]);
  EXPECT_EQ(A.Objective, B.Objective);
}

} // namespace
