//===- solver/GpSolver.h - Interior-point GP solver -------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves geometric programs by the standard convex transformation: with
/// x = exp(y), a posynomial constraint f(x) <= 1 becomes the convex
/// log-sum-exp constraint log f(exp y) <= 0 and a monomial equality
/// becomes an affine equality in y. The affine equalities are eliminated
/// by parameterizing y = y0 + Z z over the null space Z, and the reduced
/// problem is solved with a primal barrier (interior-point) method:
/// phase I finds a strictly feasible point by minimizing the maximum
/// constraint value; phase II follows the central path with damped Newton
/// steps. This module replaces the paper's CVXPY dependency.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SOLVER_GPSOLVER_H
#define THISTLE_SOLVER_GPSOLVER_H

#include "solver/GpProblem.h"

#include <limits>
#include <string>

namespace thistle {

/// Interior-point configuration.
struct GpSolverOptions {
  /// Barrier gap tolerance: iterate until NumConstraints / t < Tolerance
  /// (absolute tolerance on the log-space objective).
  double Tolerance = 1e-7;
  double TInitial = 1.0;    ///< Initial barrier weight.
  double TMultiplier = 20.0; ///< Barrier weight growth per outer step.
  unsigned MaxNewtonIters = 250; ///< Per centering step.
  unsigned MaxOuterIters = 50;
};

/// Solver outcome.
struct GpSolution {
  bool Feasible = false;  ///< A strictly feasible point was found.
  bool Converged = false; ///< The barrier method reached its tolerance.
  Assignment Values;      ///< x per VarId (valid when Feasible).
  double Objective = std::numeric_limits<double>::infinity();
  unsigned NewtonIterations = 0; ///< Total Newton steps, both phases.
  std::string Failure;    ///< Human-readable reason when !Feasible.
};

/// Solves \p Problem. The objective must be a non-empty posynomial.
GpSolution solveGp(const GpProblem &Problem,
                   const GpSolverOptions &Options = GpSolverOptions());

} // namespace thistle

#endif // THISTLE_SOLVER_GPSOLVER_H
