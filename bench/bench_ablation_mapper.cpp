//===- bench/bench_ablation_mapper.cpp - Mapper strategy ablation ---------===//
//
// Ablates the search baseline that plays Timeloop Mapper's role: random
// sampling vs hill climbing vs simulated annealing, across trial budgets,
// against Thistle's single-shot result on a representative layer. Shows
// why the baseline needs large budgets (the paper gave Timeloop 100000
// trials and 3 hours per layer) while Thistle solves a handful of GPs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

const char *strategyName(MapperStrategy S) {
  switch (S) {
  case MapperStrategy::RandomSampling:
    return "random";
  case MapperStrategy::HillClimb:
    return "hill-climb";
  case MapperStrategy::Anneal:
    return "anneal";
  }
  return "?";
}

void printStrategyTable() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  EnergyModel Energy(Tech);
  ConvLayer L = yolo9000Layers()[6];
  Problem P = makeConvProblem(L);

  ThistleOptions TOpts =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  ThistleResult T = optimizeLayer(P, Arch, Tech, TOpts);

  TablePrinter Table({"strategy", "budget", "pJ/MAC", "trials used",
                      "legal"});
  for (MapperStrategy S :
       {MapperStrategy::RandomSampling, MapperStrategy::HillClimb,
        MapperStrategy::Anneal}) {
    for (unsigned Budget : {500u, 5000u, 20000u}) {
      MapperOptions MOpts = mapperOptions(SearchObjective::Energy);
      MOpts.Strategy = S;
      MOpts.MaxTrials = Budget;
      MOpts.VictoryCondition = Budget; // Let the budget dominate.
      MapperResult M = searchMappings(P, Arch, Energy, MOpts);
      Table.addRow({strategyName(S), std::to_string(Budget),
                    M.Found ? TablePrinter::formatDouble(
                                  M.BestEval.EnergyPerMacPj, 2)
                            : std::string("-"),
                    std::to_string(M.Trials),
                    std::to_string(M.LegalTrials)});
    }
  }
  Table.print(std::cout);
  if (T.Found)
    std::printf("\nThistle (no search): %.2f pJ/MAC from %u GP solves\n\n",
                T.Eval.EnergyPerMacPj, T.Stats.PairsSolved);
}

void timeMapperStrategy(benchmark::State &State) {
  Problem P = makeConvProblem(yolo9000Layers()[6]);
  EnergyModel Energy(TechParams::cgo45nm());
  MapperOptions O = mapperOptions(SearchObjective::Energy);
  O.Strategy = static_cast<MapperStrategy>(State.range(0));
  O.MaxTrials = 2000;
  O.VictoryCondition = 2000;
  for (auto _ : State)
    benchmark::DoNotOptimize(searchMappings(P, eyerissArch(), Energy, O));
}
BENCHMARK(timeMapperStrategy)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Ablation: Mapper search strategies",
              "Random / hill-climb / anneal baselines vs budget "
              "(yolo-7 on Eyeriss, energy objective)");
  printStrategyTable();
  return runTimings(Argc, Argv);
}
