file(REMOVE_RECURSE
  "libthistle_core.a"
)
