file(REMOVE_RECURSE
  "CMakeFiles/test_multilevel.dir/MultilevelTest.cpp.o"
  "CMakeFiles/test_multilevel.dir/MultilevelTest.cpp.o.d"
  "test_multilevel"
  "test_multilevel.pdb"
  "test_multilevel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
