//===- thistle/GpCache.h - GP solution cache for network sweeps -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe cache of perm-class pair-task outcomes, shared across
/// the layer sweeps of a network-level run (repeated ResNet-style blocks
/// make many solves redundant). Two tiers:
///
///  - *Exact* entries are keyed on the full canonicalized task identity
///    (layer shape, architecture, technology, perm-pair, mode/objective/
///    options). A hit replays the recorded outcome — report record,
///    stats deltas, rounded design — without building or solving the GP,
///    so a cached sweep is bit-identical to a cold one.
///  - *Warm* entries are keyed on the structural identity only (iterator
///    names, tensor skeleton, perms, mode/objective) and store the
///    x-space optimum of a previously solved, structurally identical GP.
///    They are consulted exclusively as a last-resort recovery rung when
///    the cold solve chain yields no feasible iterate, seeding the
///    barrier method via GpSolverOptions::InitialPoint. Because the warm
///    rung only runs where the cold path already failed, a sweep with no
///    failures stays bit-identical with the cache on or off.
///
/// Determinism under parallel fill: warm lookups only see entries frozen
/// at a generation boundary (beginGeneration(), called by the network
/// driver between phases), never entries raced in by sibling tasks of
/// the current phase; where several exact entries share a warm key, the
/// one with the lexicographically smallest exact key wins, independent
/// of insertion order.
///
/// The exact tier is LRU-bounded (setCapacity; unbounded by default) and
/// durable (docs/PERSISTENCE.md): saveSnapshotFile writes the whole tier
/// atomically, attachJournal appends every *new* insert at record
/// granularity so entries survive SIGKILL, and loadFile replays either
/// artifact back into the exact tier. Loaded entries never feed the warm
/// tier directly — a replayed exact hit feeds it through feedWarmPending,
/// exactly as the original solve did, so a resumed run's warm state
/// evolves bit-identically to the uninterrupted run's.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_GPCACHE_H
#define THISTLE_THISTLE_GPCACHE_H

#include "support/Persist.h"
#include "support/SweepReport.h"
#include "thistle/Rounding.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace thistle {

struct ThistleOptions;

/// The replayable outcome of one pair task. Everything the task wrote
/// into its shard accumulator is recorded, so a hit reproduces the
/// miss path bit-for-bit without touching the solver.
struct GpCacheEntry {
  TaskOutcome Outcome = TaskOutcome::Failed;
  unsigned Attempts = 0;
  std::string Detail;          ///< Incident detail (empty when Solved).
  unsigned NewtonIterations = 0;
  bool GpInfeasible = false;   ///< The task bumped Stats.GpInfeasible.
  /// Rounded design (Design.Found=false when rounding found nothing or
  /// the solve yielded no feasible iterate).
  RoundedDesign Design;
  double Obj = 0.0;            ///< objectiveValue(Design.Eval, ...).
  double ModelObjective = 0.0; ///< Relaxed GP objective (pre-rounding).
  /// x-space GP optimum (empty when no feasible iterate); the seed
  /// served to warm lookups.
  std::vector<double> Optimum;
};

/// The canonical cache keys of one pair task.
struct GpCacheKeys {
  std::string Exact; ///< Full task identity.
  std::string Warm;  ///< Structural identity (extents/arch/tech erased).
};

/// Builds the canonical keys for one (problem, options, arch, pair)
/// task. Layer names are deliberately excluded so identically shaped
/// layers of different networks share entries.
GpCacheKeys gpCacheKeys(const Problem &Prob, const ThistleOptions &Options,
                        const ArchConfig &Arch, const TechParams &Tech,
                        double AreaBudgetUm2,
                        const std::vector<unsigned> &TiledIters,
                        const std::vector<unsigned> &PePerm,
                        const std::vector<unsigned> &DramPerm);

/// What loading durable cache state recovered (and what it could not).
struct GpCachePersistStats {
  unsigned FilesLoaded = 0;        ///< Artifacts that contributed entries.
  std::uint64_t EntriesLoaded = 0; ///< Entries restored to the exact tier.
  std::uint64_t RecordsRead = 0;   ///< Journal records decoded.
  /// Artifacts detected damaged (bad magic, truncation, CRC mismatch,
  /// undecodable payload). Each adds a line to Problems; the load
  /// degrades to whatever intact state remained — never a crash.
  unsigned DataLoss = 0;
  std::vector<std::string> Problems;
};

/// Thread-safe two-tier GP solution cache. One instance may be shared
/// across sequential optimizeNetwork calls to carry results between
/// runs; concurrent sweeps sharing one instance are serialized on an
/// internal mutex.
class GpSolutionCache {
public:
  /// Exact lookup; counts a hit or a miss. On a hit copies the entry.
  bool lookupExact(const std::string &Key, GpCacheEntry &Out);

  /// Inserts the finished task under both keys. The warm tier only
  /// keeps entries with a non-empty Optimum; within the current
  /// generation the candidate with the smallest exact key wins. New
  /// entries are appended to the attached journal; when the exact tier
  /// is at capacity, the least-recently-used entry is evicted first.
  void insert(const std::string &Key, const std::string &WarmKey,
              GpCacheEntry Entry);

  /// Feeds a replayed exact hit to the warm tier, with insert's
  /// smallest-exact-key-wins rule. Called on the cache-hit path so a
  /// run replaying loaded entries builds the same frozen warm state the
  /// original (solving) run built.
  void feedWarmPending(const std::string &Key, const std::string &WarmKey,
                       const std::vector<double> &Optimum);

  /// Warm lookup: the frozen (pre-generation) optimum for \p WarmKey.
  /// Does not count into hits()/misses().
  bool lookupWarm(const std::string &WarmKey,
                  std::vector<double> &Out) const;

  /// Counts one warm-start attempt (called by the task that uses one).
  void noteWarmStart();

  /// Freezes the warm entries inserted since the last call: they become
  /// visible to lookupWarm. Called at phase boundaries so warm lookups
  /// never observe a racing sibling task of the same phase.
  void beginGeneration();

  /// Bounds the exact tier to \p MaxEntries (0 = unbounded, the
  /// default), evicting from the LRU end immediately if over. Eviction
  /// never changes results — an evicted task re-solves, and solve and
  /// replay are bit-identical by the exact-tier invariant.
  void setCapacity(std::size_t MaxEntries);
  std::size_t capacity() const;

  /// Writes the whole exact tier as one atomic snapshot (LRU-first, so
  /// a sequential reload reconstructs the recency order).
  Status saveSnapshotFile(const std::string &Path) const;

  /// Restores entries from a snapshot (*.snap) or journal (any other
  /// suffix) into the exact tier. Existing keys win over loaded ones;
  /// loaded entries are not re-journaled and never feed the warm tier.
  /// Damage is accumulated into \p Stats, never thrown: a missing file
  /// is skipped silently, a damaged one contributes its intact prefix.
  void loadFile(const std::string &Path, GpCachePersistStats &Stats);

  /// Attaches an append-only journal: every subsequent *new* insert is
  /// flushed to \p Path at record granularity (crash durability between
  /// snapshots). Append failures are counted, reported through
  /// journalAppendFailures(), and never fail the insert.
  Status attachJournal(const std::string &Path);
  void detachJournal();
  std::uint64_t journalAppendFailures() const {
    return JournalFailures.load();
  }

  std::uint64_t hits() const { return Hits.load(); }
  std::uint64_t misses() const { return Misses.load(); }
  std::uint64_t warmStarts() const { return WarmStarts.load(); }
  std::uint64_t evictions() const { return Evictions.load(); }
  std::size_t size() const;
  void clear();

private:
  struct WarmSlot {
    bool HasFrozen = false;
    std::vector<double> Frozen;
    bool HasPending = false;
    std::string PendingSource; ///< Exact key of the pending candidate.
    std::vector<double> Pending;
  };
  struct ExactSlot {
    GpCacheEntry Entry;
    std::string WarmKey; ///< Kept so snapshots can re-encode the entry.
    /// Position in Recency (front = most recently used).
    std::list<std::string>::iterator Where;
  };

  /// Warm-pending update; Mutex must be held.
  void feedWarmPendingLocked(const std::string &Key,
                             const std::string &WarmKey,
                             const std::vector<double> &Optimum);
  /// Exact-tier insert with LRU bookkeeping; Mutex must be held.
  /// Returns true when \p Key was new (existing keys win).
  bool insertExactLocked(const std::string &Key,
                         const std::string &WarmKey, GpCacheEntry Entry);

  mutable std::mutex Mutex;
  std::unordered_map<std::string, ExactSlot> Exact;
  std::list<std::string> Recency; ///< Exact keys, most recent first.
  std::size_t MaxEntries = 0;     ///< 0 = unbounded.
  std::unordered_map<std::string, WarmSlot> Warm;
  persist::JournalWriter Journal;
  std::atomic<std::uint64_t> Hits{0}, Misses{0}, WarmStarts{0};
  std::atomic<std::uint64_t> Evictions{0}, JournalFailures{0};
};

} // namespace thistle

#endif // THISTLE_THISTLE_GPCACHE_H
