# Empty dependencies file for bench_table3_tech_params.
# This may be replaced when dependencies are built.
