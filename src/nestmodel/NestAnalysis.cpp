//===- nestmodel/NestAnalysis.cpp - Analytical access counting ------------===//
//
// Since the hierarchy-generic unification this file holds no counting
// logic of its own: the fixed register/SRAM/DRAM analysis is the generic
// L-level engine (multilevel/MultiNestAnalysis) instantiated at the
// classic 3-level structure, with the combined per-boundary volumes split
// back into the directional fixed-depth profile. The mapping between the
// two representations: boundary 0 = SRAM<->registers, boundary 1 =
// DRAM<->SRAM, occupancy levels 0/1 = register/SRAM tiles.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/NestAnalysis.h"

#include "multilevel/MultiNestAnalysis.h"

#include <cassert>

using namespace thistle;

std::int64_t NestProfile::dramTraffic() const {
  std::int64_t Sum = 0;
  for (const TensorVolumes &V : PerTensor)
    Sum += V.DramToSram + V.SramToDram;
  return Sum;
}

std::int64_t NestProfile::sramRegTraffic() const {
  std::int64_t Sum = 0;
  for (const TensorVolumes &V : PerTensor)
    Sum += V.SramToReg + V.RegToSram;
  return Sum;
}

NestProfile thistle::profileFromMulti(const Problem &Prob,
                                      const MultiProfile &MP) {
  NestProfile Profile;
  Profile.PerTensor.resize(Prob.tensors().size());
  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const bool RW = Prob.tensors()[TI].ReadWrite;
    TensorVolumes &V = Profile.PerTensor[TI];
    // The generic profile doubles read-write volumes into one number;
    // the split back out is exact.
    std::int64_t Dram = RW ? MP.Words[1][TI] / 2 : MP.Words[1][TI];
    std::int64_t SramReg = RW ? MP.Words[0][TI] / 2 : MP.Words[0][TI];
    V.DramToSram = Dram;
    V.SramToDram = RW ? Dram : 0;
    V.SramToReg = SramReg;
    V.RegToSram = RW ? SramReg : 0;
  }
  Profile.RegTileWords = MP.Occupancy[0];
  Profile.SramTileWords = MP.Occupancy[1];
  Profile.PEsUsed = MP.PEsUsed;
  return Profile;
}

NestProfile thistle::analyzeNest(const Problem &Prob, const Mapping &Map) {
  assert(Map.validate(Prob).empty() && "mapping must validate");
  MultiProfile MP = analyzeMultiNest(Prob, Hierarchy::classic3Shape(),
                                     MultiMapping::fromMapping(Prob, Map));
  return profileFromMulti(Prob, MP);
}
