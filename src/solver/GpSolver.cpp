//===- solver/GpSolver.cpp - Interior-point GP solver ---------------------===//

#include "solver/GpSolver.h"

#include "linalg/Matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace thistle;

namespace {

/// A log-sum-exp function over the reduced variables z:
///   F(z) = log sum_k exp(A_k . z + B_k).
/// Precompiled from a posynomial after the y = y0 + Z z substitution.
struct LseFunction {
  std::vector<Vector> Rows; ///< A_k, each of reduced dimension.
  Vector Offsets;           ///< B_k.

  std::size_t numTerms() const { return Rows.size(); }

  /// Value only.
  double value(const Vector &Z) const {
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t K = 0; K < Rows.size(); ++K)
      Max = std::max(Max, dot(Rows[K], Z) + Offsets[K]);
    double Sum = 0.0;
    for (std::size_t K = 0; K < Rows.size(); ++K)
      Sum += std::exp(dot(Rows[K], Z) + Offsets[K] - Max);
    return Max + std::log(Sum);
  }

  /// Value, gradient, and (optionally) Hessian. The Hessian of a
  /// log-sum-exp is sum_k w_k a_k a_k^T - g g^T with softmax weights w.
  double valueGradHess(const Vector &Z, Vector &Grad, Matrix *Hess) const {
    const std::size_t N = Z.size();
    std::vector<double> Exponents(Rows.size());
    double Max = -std::numeric_limits<double>::infinity();
    for (std::size_t K = 0; K < Rows.size(); ++K) {
      Exponents[K] = dot(Rows[K], Z) + Offsets[K];
      Max = std::max(Max, Exponents[K]);
    }
    double Sum = 0.0;
    for (double &E : Exponents) {
      E = std::exp(E - Max);
      Sum += E;
    }
    Grad.assign(N, 0.0);
    for (std::size_t K = 0; K < Rows.size(); ++K) {
      double W = Exponents[K] / Sum;
      for (std::size_t I = 0; I < N; ++I)
        Grad[I] += W * Rows[K][I];
    }
    if (Hess) {
      *Hess = Matrix(N, N);
      for (std::size_t K = 0; K < Rows.size(); ++K) {
        double W = Exponents[K] / Sum;
        for (std::size_t I = 0; I < N; ++I)
          for (std::size_t J = 0; J < N; ++J)
            Hess->at(I, J) += W * Rows[K][I] * Rows[K][J];
      }
      for (std::size_t I = 0; I < N; ++I)
        for (std::size_t J = 0; J < N; ++J)
          Hess->at(I, J) -= Grad[I] * Grad[J];
    }
    return Max + std::log(Sum);
  }
};

/// Compiles \p Posy over the affine substitution y = Y0 + Z z.
LseFunction compileLse(const Posynomial &Posy, const VarTable &Vars,
                       const Vector &Y0, const Matrix &Z) {
  assert(Posy.isPosynomial() && "log transform requires a posynomial");
  const std::size_t Reduced = Z.cols();
  LseFunction Lse;
  for (const Monomial &M : Posy.monomials()) {
    // Full-space exponent vector a over y.
    Vector A(Vars.size(), 0.0);
    for (const Monomial::Term &T : M.terms())
      A[T.Var] = T.Exp;
    // Reduced row a' = Z^T a and offset b' = ln c + a . y0.
    Vector Row(Reduced, 0.0);
    for (std::size_t I = 0; I < Vars.size(); ++I)
      if (A[I] != 0.0)
        for (std::size_t J = 0; J < Reduced; ++J)
          Row[J] += A[I] * Z.at(I, J);
    Lse.Rows.push_back(std::move(Row));
    Lse.Offsets.push_back(std::log(M.coefficient()) + dot(A, Y0));
  }
  return Lse;
}

/// Barrier-method state shared by the two phases.
struct BarrierContext {
  LseFunction Objective;
  std::vector<LseFunction> Constraints;
  unsigned NewtonIterations = 0;
};

/// One centering step: minimizes T * f(W) + Phi(W) where f is the phase
/// objective and Phi the log barrier of the phase constraints, starting
/// from the strictly feasible \p W. \p PhaseOne switches the objective to
/// the slack variable (last coordinate of W) and offsets every constraint
/// by -s. Returns false on numerical failure.
///
/// In phase one, W = (z, s) and constraints are G_i(z) - s <= 0.
/// In phase two, W = z and constraints are G_i(z) <= 0.
class CenteringProblem {
public:
  CenteringProblem(const BarrierContext &Ctx, bool PhaseOne)
      : Ctx(Ctx), PhaseOne(PhaseOne) {}

  std::size_t dim(std::size_t ReducedDim) const {
    return PhaseOne ? ReducedDim + 1 : ReducedDim;
  }

  /// Constraint value G_i(W) (including the -s offset in phase one).
  double constraintValue(std::size_t I, const Vector &W) const {
    if (!PhaseOne)
      return Ctx.Constraints[I].value(W);
    Vector Z(W.begin(), W.end() - 1);
    return Ctx.Constraints[I].value(Z) - W.back();
  }

  /// True if every constraint is strictly negative at W.
  bool strictlyFeasible(const Vector &W) const {
    for (std::size_t I = 0; I < Ctx.Constraints.size(); ++I)
      if (constraintValue(I, W) >= 0.0)
        return false;
    return true;
  }

  /// Phase objective value (no barrier).
  double objectiveValue(const Vector &W) const {
    if (PhaseOne)
      return W.back();
    return Ctx.Objective.value(W);
  }

  /// Full barrier objective T*f + Phi; +inf outside the domain.
  double barrierValue(double T, const Vector &W) const {
    double Phi = 0.0;
    for (std::size_t I = 0; I < Ctx.Constraints.size(); ++I) {
      double G = constraintValue(I, W);
      if (G >= 0.0)
        return std::numeric_limits<double>::infinity();
      Phi -= std::log(-G);
    }
    return T * objectiveValue(W) + Phi;
  }

  /// Gradient and Hessian of the barrier objective at strictly feasible W.
  void barrierDerivatives(double T, const Vector &W, Vector &Grad,
                          Matrix &Hess) const {
    const std::size_t N = W.size();
    Grad.assign(N, 0.0);
    Hess = Matrix(N, N);

    // Objective part.
    if (PhaseOne) {
      Grad[N - 1] += T;
    } else {
      Vector G0;
      Matrix H0;
      Ctx.Objective.valueGradHess(W, G0, &H0);
      for (std::size_t I = 0; I < N; ++I) {
        Grad[I] += T * G0[I];
        for (std::size_t J = 0; J < N; ++J)
          Hess.at(I, J) += T * H0.at(I, J);
      }
    }

    // Barrier part: -sum log(-G_i).
    Vector Z = PhaseOne ? Vector(W.begin(), W.end() - 1) : W;
    for (const LseFunction &C : Ctx.Constraints) {
      Vector Gz;
      Matrix Hz;
      double Gv = C.valueGradHess(Z, Gz, &Hz);
      // Extend gradient/Hessian with the slack coordinate in phase one.
      Vector Gw(N, 0.0);
      for (std::size_t I = 0; I < Gz.size(); ++I)
        Gw[I] = Gz[I];
      if (PhaseOne) {
        Gv -= W.back();
        Gw[N - 1] = -1.0;
      }
      assert(Gv < 0.0 && "barrier derivative requested outside the domain");
      double Inv = -1.0 / Gv;        // 1 / (-G) > 0.
      double InvSq = Inv * Inv;
      for (std::size_t I = 0; I < N; ++I) {
        Grad[I] += Inv * Gw[I];
        for (std::size_t J = 0; J < N; ++J)
          Hess.at(I, J) += InvSq * Gw[I] * Gw[J];
      }
      // Constraint curvature: (1/-G) * Hess(G); slack has no curvature.
      for (std::size_t I = 0; I < Hz.rows(); ++I)
        for (std::size_t J = 0; J < Hz.cols(); ++J)
          Hess.at(I, J) += Inv * Hz.at(I, J);
    }
  }

private:
  const BarrierContext &Ctx;
  bool PhaseOne;
};

/// Damped-Newton minimization of the barrier objective at fixed T.
/// Returns false on numerical breakdown. \p EarlyExit, when non-null,
/// stops as soon as it returns true (used by phase one once s < 0).
bool centerNewton(const CenteringProblem &Prob, double T, Vector &W,
                  unsigned MaxIters, unsigned &IterCounter,
                  bool (*EarlyExit)(const Vector &)) {
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    if (EarlyExit && EarlyExit(W))
      return true;
    Vector Grad;
    Matrix Hess;
    Prob.barrierDerivatives(T, W, Grad, Hess);
    ++IterCounter;

    // Regularized Newton direction.
    Vector Step;
    double Lambda = 1e-10;
    bool Solved = false;
    for (int Attempt = 0; Attempt < 12 && !Solved; ++Attempt) {
      Matrix Reg = Hess;
      for (std::size_t I = 0; I < Reg.rows(); ++I)
        Reg.at(I, I) += Lambda;
      Vector NegGrad(Grad.size());
      for (std::size_t I = 0; I < Grad.size(); ++I)
        NegGrad[I] = -Grad[I];
      Solved = choleskySolve(Reg, NegGrad, Step);
      Lambda *= 100.0;
    }
    if (!Solved)
      return false;

    // Newton decrement as a stopping test.
    double Decrement = -dot(Grad, Step);
    if (Decrement < 0.0)
      Decrement = 0.0;
    if (Decrement * 0.5 < 1e-10)
      return true;

    // Backtracking line search with domain (feasibility) check.
    double Base = Prob.barrierValue(T, W);
    double Alpha = 1.0;
    bool Accepted = false;
    for (int LsIter = 0; LsIter < 60; ++LsIter) {
      Vector Trial = axpy(W, Alpha, Step);
      double Val = Prob.barrierValue(T, Trial);
      if (Val <= Base - 1e-4 * Alpha * Decrement) {
        W = std::move(Trial);
        Accepted = true;
        break;
      }
      Alpha *= 0.5;
    }
    if (!Accepted)
      return true; // No further progress at this T.
  }
  return true;
}

} // namespace

GpSolution thistle::solveGp(const GpProblem &Problem,
                            const GpSolverOptions &Options) {
  GpSolution Solution;
  const VarTable &Vars = Problem.variables();
  const std::size_t N = Vars.size();
  assert(!Problem.objective().isZero() && "GP objective must be set");

  // ---- Eliminate monomial equalities: rows a . y = -ln c.
  const auto &Equalities = Problem.equalities();
  Matrix A(Equalities.size(), N);
  Vector B(Equalities.size(), 0.0);
  for (std::size_t E = 0; E < Equalities.size(); ++E) {
    const Monomial &G = Equalities[E].Lhs;
    for (const Monomial::Term &T : G.terms())
      A.at(E, T.Var) = T.Exp;
    B[E] = -std::log(G.coefficient());
  }
  Vector Y0;
  if (!solveParticular(A, B, Y0)) {
    Solution.Failure = "inconsistent monomial equality constraints";
    return Solution;
  }
  Matrix Z = Equalities.empty() ? Matrix::identity(N) : nullSpaceOf(A);

  // ---- Compile objective and constraints into reduced log-sum-exp form.
  BarrierContext Ctx;
  Ctx.Objective = compileLse(Problem.objective(), Vars, Y0, Z);
  for (const GpProblem::Constraint &C : Problem.constraints())
    Ctx.Constraints.push_back(compileLse(C.Lhs, Vars, Y0, Z));

  const std::size_t Reduced = Z.cols();
  Vector ZVec(Reduced, 0.0);

  auto recoverX = [&](const Vector &ZV) {
    Assignment X(N);
    Vector Y = axpy(Y0, 1.0, Z.apply(ZV));
    for (std::size_t I = 0; I < N; ++I)
      X[I] = std::exp(Y[I]);
    return X;
  };

  // ---- Phase I: find a strictly feasible point if needed.
  CenteringProblem PhaseTwo(Ctx, /*PhaseOne=*/false);
  if (!Ctx.Constraints.empty() && !PhaseTwo.strictlyFeasible(ZVec)) {
    CenteringProblem PhaseOne(Ctx, /*PhaseOne=*/true);
    double MaxG = -std::numeric_limits<double>::infinity();
    for (const LseFunction &C : Ctx.Constraints)
      MaxG = std::max(MaxG, C.value(ZVec));
    Vector W = ZVec;
    W.push_back(MaxG + 1.0); // Strictly feasible for G_i - s < 0.

    auto FoundInterior = [](const Vector &W) { return W.back() < -1e-7; };
    double T = Options.TInitial;
    for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
      if (!centerNewton(PhaseOne, T, W, Options.MaxNewtonIters,
                        Solution.NewtonIterations, +FoundInterior)) {
        Solution.Failure = "numerical breakdown in phase I";
        return Solution;
      }
      if (FoundInterior(W))
        break;
      T *= Options.TMultiplier;
    }
    if (!FoundInterior(W)) {
      Solution.Failure = "no strictly feasible point found (phase I)";
      return Solution;
    }
    ZVec.assign(W.begin(), W.end() - 1);
    // The phase-I point satisfies G_i < s < 0, hence strictly feasible.
    assert(PhaseTwo.strictlyFeasible(ZVec) && "phase I postcondition");
  }
  Solution.Feasible = true;

  // ---- Phase II: follow the central path.
  double T = Options.TInitial;
  const double NumConstraints =
      std::max<std::size_t>(Ctx.Constraints.size(), 1);
  for (unsigned Outer = 0; Outer < Options.MaxOuterIters; ++Outer) {
    if (!centerNewton(PhaseTwo, T, ZVec, Options.MaxNewtonIters,
                      Solution.NewtonIterations, nullptr)) {
      Solution.Failure = "numerical breakdown in phase II";
      Solution.Values = recoverX(ZVec);
      Solution.Objective = Problem.objective().evaluate(Solution.Values);
      return Solution;
    }
    if (NumConstraints / T < Options.Tolerance) {
      Solution.Converged = true;
      break;
    }
    T *= Options.TMultiplier;
  }

  Solution.Values = recoverX(ZVec);
  Solution.Objective = Problem.objective().evaluate(Solution.Values);
  return Solution;
}
