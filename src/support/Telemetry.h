//===- support/Telemetry.h - Tracing, counters, run metrics -----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, thread-safe observability layer for the solve
/// pipeline: hierarchical trace spans (`TraceScope`) with monotonic
/// timing, and a registry of named counters and value statistics
/// (`count` / `observe`). Production code plants hooks at per-task
/// granularity (one GP solve, one pair/combo, one mapper round — never
/// inside a Newton iteration); the command-line tool and the benchmarks
/// turn collection on with `setLevel` and read it back with `snapshot`.
///
/// Determinism contract (docs/OBSERVABILITY.md pins the details):
///  - Collection NEVER perturbs results. Hooks draw no random numbers,
///    change no control flow and reorder no floating-point reduction, so
///    a run with telemetry enabled is bit-identical to one without.
///  - Spans are recorded into per-thread buffers (no hot-path sharing)
///    and merged deterministically at snapshot time: spans are keyed by
///    the sweep-task / round index they belong to (nested spans inherit
///    the key of their enclosing span), and the merge stable-sorts by
///    that key. Since every key is produced by exactly one thread, in
///    deterministic per-thread order, the merged sequence of
///    (name, index, depth, detail) tuples is identical at every worker
///    count; only the timing fields vary run to run.
///  - Counter and statistic aggregation is commutative (sums, min/max),
///    hence thread-count-invariant as well.
///
/// Overhead: when collection is off (the default) every hook costs one
/// relaxed atomic load and a predictable branch. When compiled out via
/// the THISTLE_TELEMETRY CMake option (OFF), every hook is an empty
/// inline and the build is bit-identical to an uninstrumented tree.
/// `bench_telemetry_overhead` keeps the enabled-path cost under 2%.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_TELEMETRY_H
#define THISTLE_SUPPORT_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace thistle {
namespace telemetry {

/// "This span belongs to no sweep task": sorts after every real index.
inline constexpr std::size_t NoIndex =
    std::numeric_limits<std::size_t>::max();

/// Collection level. Metrics enables counters/statistics only; Trace
/// additionally records spans. Off (the default) collects nothing.
enum class Level { Off, Metrics, Trace };

/// One completed trace span, as returned by snapshot().
struct Span {
  std::string Name;      ///< Site name, e.g. "thistle.pair".
  std::string Detail;    ///< Outcome/diagnostic set via setDetail().
  std::uint64_t Epoch = 0;     ///< Sweep ordinal (primary merge key).
  std::size_t Index = NoIndex; ///< Sweep-task / round key (merge order).
  unsigned Depth = 0;    ///< Same-key nesting depth.
  std::uint64_t StartNs = 0;    ///< Monotonic-clock start.
  std::uint64_t DurationNs = 0; ///< End - start.
};

/// One named counter value.
struct CounterValue {
  std::string Name;
  std::uint64_t Value = 0;
};

/// Summary statistics of one observed value stream.
struct StatValue {
  std::string Name;
  std::uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
};

/// Everything collected since the last reset(), in deterministic order:
/// counters and stats sorted by name, spans merged as documented above.
struct Snapshot {
  Level CollectedAt = Level::Off;
  std::vector<CounterValue> Counters;
  std::vector<StatValue> Stats;
  std::vector<Span> Spans;
  /// Spans discarded because a thread buffer hit its cap.
  std::uint64_t DroppedSpans = 0;
};

#if THISTLE_TELEMETRY_ENABLED

/// True when the layer is compiled in.
constexpr bool compiledIn() { return true; }

/// Sets the collection level. Not meant to be toggled while a sweep is
/// in flight; the tool and the tests set it once up front.
void setLevel(Level L);
Level level();

/// Fast runtime gates (one relaxed atomic load each).
bool metricsEnabled();
bool traceEnabled();

/// Adds \p Delta to the named counter. No-op unless metricsEnabled().
void count(const char *Name, std::uint64_t Delta = 1);

/// Folds \p Value into the named statistic (count/sum/min/max). No-op
/// unless metricsEnabled().
void observe(const char *Name, double Value);

/// Starts a new sweep epoch. Each parallel sweep (pair sweep, combo
/// sweep, mapper search) calls this once, on the calling thread, before
/// fanning out; task indices are only unique within one sweep, so the
/// epoch disambiguates equal indices of successive sweeps in the merge.
void beginEpoch();

/// Copies out everything collected since the last reset().
Snapshot snapshot();

/// Clears all collected counters, statistics and spans (the level is
/// unchanged). Must not run concurrently with collection.
void reset();

/// RAII trace span. Opening and closing cost nothing when tracing is
/// off. A span opened with NoIndex inherits the index of the innermost
/// open span on the same thread, so solver attempts nest under the pair
/// or combo task that issued them.
class TraceScope {
public:
  explicit TraceScope(const char *Name, std::size_t Index = NoIndex);
  ~TraceScope();

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Attaches an outcome/diagnostic string to the span.
  void setDetail(std::string Detail);

private:
  std::size_t Slot; ///< Index into the thread buffer; NoIndex if inert.
};

#else

constexpr bool compiledIn() { return false; }
inline void setLevel(Level) {}
inline Level level() { return Level::Off; }
constexpr bool metricsEnabled() { return false; }
constexpr bool traceEnabled() { return false; }
inline void count(const char *, std::uint64_t = 1) {}
inline void observe(const char *, double) {}
inline void beginEpoch() {}
inline Snapshot snapshot() { return Snapshot(); }
inline void reset() {}

class TraceScope {
public:
  explicit TraceScope(const char *, std::size_t = NoIndex) {}
  void setDetail(std::string) {}
};

#endif // THISTLE_TELEMETRY_ENABLED

} // namespace telemetry
} // namespace thistle

#endif // THISTLE_SUPPORT_TELEMETRY_H
