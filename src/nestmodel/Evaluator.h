//===- nestmodel/Evaluator.h - Energy/delay evaluation ----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a NestProfile into the paper's metrics: total energy with the
/// Eq. 3 decomposition (MAC + register + SRAM + DRAM components), delay in
/// cycles as the maximum over the compute / DRAM-bandwidth /
/// SRAM-bandwidth components (section V-B), pJ/MAC and MAC IPC. Also
/// checks mapping legality against an ArchConfig (register/SRAM capacity,
/// PE count). This plays the role Timeloop's model plays in the paper:
/// "the final reported energy/performance metrics are based on
/// [the model's] simulation ... and not on Thistle's estimation".
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_NESTMODEL_EVALUATOR_H
#define THISTLE_NESTMODEL_EVALUATOR_H

#include "ir/Mapping.h"
#include "ir/Problem.h"
#include "model/TechModel.h"
#include "nestmodel/NestAnalysis.h"
#include "nestmodel/Objective.h"

#include <string>

namespace thistle {

/// Evaluated metrics of one mapping on one architecture.
struct EvalResult {
  bool Legal = false;        ///< False if any capacity is exceeded.
  std::string IllegalReason; ///< Diagnostic when !Legal.

  double EnergyPj = 0.0;     ///< Total energy (Eq. 3 structure).
  double EnergyPerMacPj = 0.0;
  double MacEnergyPj = 0.0;  ///< (4*eps_R + eps_op) * Nops component.
  double RegEnergyPj = 0.0;  ///< eps_R * DV(S<->R) component.
  double SramEnergyPj = 0.0; ///< eps_S * (DV(S<->R)+DV(S<->D)) component.
  double DramEnergyPj = 0.0; ///< eps_D * DV(S<->D) component.

  double EdpPjCycles = 0.0;  ///< Energy-delay product (pJ * cycles).

  double Cycles = 0.0;       ///< max(compute, DRAM, SRAM) cycles.
  double ComputeCycles = 0.0;
  double DramCycles = 0.0;
  double SramCycles = 0.0;
  double MacIpc = 0.0;       ///< Nops / Cycles (theoretical max = P).

  NestProfile Profile;       ///< The underlying access counts.
};

/// Evaluates \p Map for \p Prob on \p Arch with technology \p Tech.
///
/// Illegal mappings still carry metrics (useful for diagnostics) but are
/// flagged. Register capacity is per PE; SRAM capacity is shared.
///
/// Thin wrapper: lifts \p Arch to Hierarchy::classic3Level, runs the
/// generic L-level evaluation and maps the per-level decomposition back
/// onto the Eq. 3 / section V-B component names — bit-identically to the
/// pre-unification fixed-depth code.
EvalResult evaluateMapping(const Problem &Prob, const Mapping &Map,
                           const ArchConfig &Arch, const EnergyModel &Energy);

class CostEvaluator;

/// As above, but counting accesses with the given evaluator backend
/// (nestmodel/CostEvaluator.h). With the nest backend this is
/// bit-identical to the four-argument overload; other backends replace
/// the Algorithm-1 walk while sharing the pricing.
EvalResult evaluateMapping(const Problem &Prob, const Mapping &Map,
                           const ArchConfig &Arch, const EnergyModel &Energy,
                           const CostEvaluator &Evaluator);

struct MultiEvalResult;

/// Repackages a classic-3-level generic evaluation into the fixed-depth
/// result: Eq. 3 components from the per-level energy vector, SRAM/DRAM
/// cycles from the per-level delay vector, and the fixed-depth legality
/// wording regenerated against \p Arch.
EvalResult evalResultFromMulti(const Problem &Prob, const ArchConfig &Arch,
                               const MultiEvalResult &ME);

} // namespace thistle

#endif // THISTLE_NESTMODEL_EVALUATOR_H
