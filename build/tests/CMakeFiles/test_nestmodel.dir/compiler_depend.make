# Empty compiler generated dependencies file for test_nestmodel.
# This may be replaced when dependencies are built.
