//===- support/Telemetry.cpp - Tracing, counters, run metrics ------------===//

#include "support/Telemetry.h"

#if THISTLE_TELEMETRY_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <tuple>

using namespace thistle;
using namespace thistle::telemetry;

namespace {

/// Cap on spans buffered per thread; overflow is counted, not stored.
constexpr std::size_t MaxSpansPerThread = 1u << 18;

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Global collection state. The level is read on every hook (relaxed:
/// the hooks only gate collection, they order nothing), the registries
/// are guarded by a mutex — hooks fire at per-solve / per-task
/// granularity, so contention is negligible next to the Newton work
/// between two calls.
struct CounterCell {
  std::uint64_t Value = 0;
};
struct StatCell {
  std::uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Per-thread span buffer. Registered globally on first use so that
/// snapshot() can reach buffers of pool workers; buffers outlive their
/// threads (they are only freed at process exit) because pool workers
/// are joined long after the sweeps that filled the buffers return.
struct ThreadBuffer {
  std::vector<Span> Spans;
  /// Indices (into Spans) of the currently open spans, innermost last.
  std::vector<std::size_t> OpenStack;
  std::uint64_t Dropped = 0;
};

struct GlobalState {
  std::atomic<int> LevelValue{static_cast<int>(Level::Off)};
  /// Sweep ordinal: bumped by beginEpoch() on the calling thread before
  /// fan-out; the parallelFor barrier orders the bump against every
  /// worker span of the sweep, so a relaxed load is enough.
  std::atomic<std::uint64_t> Epoch{0};
  std::mutex Mutex;
  std::map<std::string, CounterCell> Counters;
  std::map<std::string, StatCell> Stats;
  std::vector<ThreadBuffer *> Buffers;
};

GlobalState &state() {
  static GlobalState S;
  return S;
}

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer *TB = [] {
    auto *B = new ThreadBuffer();
    GlobalState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Buffers.push_back(B);
    return B;
  }();
  return *TB;
}

} // namespace

void telemetry::setLevel(Level L) {
  state().LevelValue.store(static_cast<int>(L), std::memory_order_relaxed);
}

Level telemetry::level() {
  return static_cast<Level>(
      state().LevelValue.load(std::memory_order_relaxed));
}

bool telemetry::metricsEnabled() { return level() != Level::Off; }

bool telemetry::traceEnabled() { return level() == Level::Trace; }

void telemetry::count(const char *Name, std::uint64_t Delta) {
  if (!metricsEnabled())
    return;
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Counters[Name].Value += Delta;
}

void telemetry::observe(const char *Name, double Value) {
  if (!metricsEnabled())
    return;
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  StatCell &Cell = S.Stats[Name];
  if (Cell.Count == 0) {
    Cell.Min = Cell.Max = Value;
  } else {
    Cell.Min = std::min(Cell.Min, Value);
    Cell.Max = std::max(Cell.Max, Value);
  }
  ++Cell.Count;
  Cell.Sum += Value;
}

void telemetry::beginEpoch() {
  if (traceEnabled())
    state().Epoch.fetch_add(1, std::memory_order_relaxed);
}

TraceScope::TraceScope(const char *Name, std::size_t Index)
    : Slot(NoIndex) {
  if (!traceEnabled())
    return;
  ThreadBuffer &TB = threadBuffer();
  if (TB.Spans.size() >= MaxSpansPerThread) {
    ++TB.Dropped;
    return;
  }
  Span Rec;
  Rec.Name = Name;
  Rec.Epoch = state().Epoch.load(std::memory_order_relaxed);
  // Nested spans inherit the sweep-task key of their enclosing span so
  // the snapshot merge keeps a task's spans contiguous and ordered.
  if (Index == NoIndex && !TB.OpenStack.empty())
    Index = TB.Spans[TB.OpenStack.back()].Index;
  Rec.Index = Index;
  // Depth counts only same-key ancestors. A task-keyed span under a
  // tool-level wrapper must report the same depth whether the shard ran
  // inline on the calling thread (1 worker) or on a pool thread, so
  // spans of other keys are transparent to it.
  unsigned Depth = 0;
  for (std::size_t Open : TB.OpenStack)
    if (TB.Spans[Open].Index == Index)
      ++Depth;
  Rec.Depth = Depth;
  Rec.StartNs = nowNs();
  Slot = TB.Spans.size();
  TB.Spans.push_back(std::move(Rec));
  TB.OpenStack.push_back(Slot);
}

TraceScope::~TraceScope() {
  if (Slot == NoIndex)
    return;
  ThreadBuffer &TB = threadBuffer();
  TB.Spans[Slot].DurationNs = nowNs() - TB.Spans[Slot].StartNs;
  // Scopes unwind strictly LIFO per thread.
  if (!TB.OpenStack.empty() && TB.OpenStack.back() == Slot)
    TB.OpenStack.pop_back();
}

void TraceScope::setDetail(std::string Detail) {
  if (Slot == NoIndex)
    return;
  threadBuffer().Spans[Slot].Detail = std::move(Detail);
}

Snapshot telemetry::snapshot() {
  GlobalState &S = state();
  Snapshot Out;
  Out.CollectedAt = level();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (const auto &[Name, Cell] : S.Counters)
    Out.Counters.push_back({Name, Cell.Value});
  for (const auto &[Name, Cell] : S.Stats)
    Out.Stats.push_back({Name, Cell.Count, Cell.Sum, Cell.Min, Cell.Max});
  for (const ThreadBuffer *TB : S.Buffers) {
    Out.DroppedSpans += TB->Dropped;
    Out.Spans.insert(Out.Spans.end(), TB->Spans.begin(), TB->Spans.end());
  }
  // Deterministic merge: stable-sort by (epoch, task key). Within one
  // epoch every key is produced by exactly one thread (tasks are sharded
  // contiguously), so equal-key spans come from one buffer and keep
  // their deterministic in-thread order; NoIndex spans (tool-level
  // wrappers, opened on the calling thread) sort last within their
  // epoch, in their own record order.
  std::stable_sort(Out.Spans.begin(), Out.Spans.end(),
                   [](const Span &A, const Span &B) {
                     return std::tie(A.Epoch, A.Index) <
                            std::tie(B.Epoch, B.Index);
                   });
  return Out;
}

void telemetry::reset() {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Epoch.store(0, std::memory_order_relaxed);
  S.Counters.clear();
  S.Stats.clear();
  for (ThreadBuffer *TB : S.Buffers) {
    TB->Spans.clear();
    TB->OpenStack.clear();
    TB->Dropped = 0;
  }
}

#endif // THISTLE_TELEMETRY_ENABLED
