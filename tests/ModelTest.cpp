//===- tests/ModelTest.cpp - model/ unit tests ----------------------------===//

#include "model/TechModel.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace thistle;

TEST(TechParams, TableIIIConstants) {
  TechParams T = TechParams::cgo45nm();
  EXPECT_DOUBLE_EQ(T.AreaMacUm2, 1239.5);
  EXPECT_DOUBLE_EQ(T.AreaRegWordUm2, 19.874);
  EXPECT_DOUBLE_EQ(T.AreaSramWordUm2, 6.806);
  EXPECT_DOUBLE_EQ(T.EnergyMacPj, 2.2);
  EXPECT_DOUBLE_EQ(T.SigmaRegPj, 9.06719e-3);
  EXPECT_DOUBLE_EQ(T.SigmaSramPj, 17.88e-3);
  EXPECT_DOUBLE_EQ(T.EnergyDramPj, 128.0);
}

TEST(EnergyModel, Eq4AnalyticalLaws) {
  EnergyModel E(TechParams::cgo45nm());
  // eps_R linear in capacity.
  EXPECT_NEAR(E.regAccessPj(512), 9.06719e-3 * 512, 1e-12);
  EXPECT_NEAR(E.regAccessPj(1024) / E.regAccessPj(512), 2.0, 1e-12);
  // eps_S square-root in capacity.
  EXPECT_NEAR(E.sramAccessPj(65536), 17.88e-3 * 256, 1e-9);
  EXPECT_NEAR(E.sramAccessPj(4 * 65536) / E.sramAccessPj(65536), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(E.dramAccessPj(), 128.0);
  EXPECT_DOUBLE_EQ(E.macPj(), 2.2);
}

TEST(EnergyModel, EyerissPerAccessScale) {
  // Sanity for the Table III unit interpretation (DESIGN.md): with the
  // Eyeriss capacities, a register access costs ~4.6 pJ, an SRAM access
  // ~4.6 pJ, so a MAC with 4 register accesses lands at 20-30 pJ/MAC as
  // in Fig. 4.
  EnergyModel E(TechParams::cgo45nm());
  ArchConfig Arch = eyerissArch();
  double EpsR = E.regAccessPj(static_cast<double>(Arch.RegWordsPerPE));
  double EpsS = E.sramAccessPj(static_cast<double>(Arch.SramWords));
  EXPECT_GT(EpsR, 3.0);
  EXPECT_LT(EpsR, 6.0);
  EXPECT_GT(EpsS, 3.0);
  EXPECT_LT(EpsS, 6.0);
  double MacFloor = 4.0 * EpsR + E.macPj();
  EXPECT_GT(MacFloor, 15.0);
  EXPECT_LT(MacFloor, 30.0);
}

TEST(ArchConfig, AreaModelEq5) {
  TechParams T = TechParams::cgo45nm();
  ArchConfig A;
  A.NumPEs = 2;
  A.RegWordsPerPE = 10;
  A.SramWords = 100;
  double Expected = (19.874 * 10 + 1239.5) * 2 + 6.806 * 100;
  EXPECT_NEAR(A.areaUm2(T), Expected, 1e-9);
}

TEST(ArchConfig, EyerissArea) {
  // 168 PEs x (512 regs + MAC) + 64K SRAM words: about 2.36 mm^2.
  double Area = eyerissAreaUm2(TechParams::cgo45nm());
  double Expected = (19.874 * 512 + 1239.5) * 168 + 6.806 * 65536;
  EXPECT_NEAR(Area, Expected, 1e-6);
  EXPECT_GT(Area, 2.3e6);
  EXPECT_LT(Area, 2.5e6);
}

TEST(ArchConfig, EyerissParameters) {
  ArchConfig A = eyerissArch();
  EXPECT_EQ(A.NumPEs, 168);
  EXPECT_EQ(A.RegWordsPerPE, 512);
  EXPECT_EQ(A.SramWords, 65536);
  EXPECT_GT(A.DramBandwidth, 0.0);
  EXPECT_GT(A.SramBandwidth, A.DramBandwidth);
}
