# Empty dependencies file for bench_fig1_matmul_volumes.
# This may be replaced when dependencies are built.
