//===- support/SweepReport.h - Per-sweep fault accounting -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured accounting of one design-space sweep (the perm-class pair
/// sweep, the multilevel combo sweep): how many tasks solved cleanly,
/// solved only after solver retries, were accepted degraded (feasible
/// but not converged), were genuinely infeasible, failed outright, or
/// were skipped by an expired deadline — plus one incident record per
/// non-clean task naming it. A sweep that loses tasks degrades to the
/// best of the completed ones and reports what it lost here, instead of
/// aborting the run.
///
/// Determinism: shard-local reports are merged in shard order over
/// contiguous ascending task ranges, so counts and the incident list are
/// in global task order and bit-identical at every worker count (when no
/// wall-clock deadline fires).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_SWEEPREPORT_H
#define THISTLE_SUPPORT_SWEEPREPORT_H

#include <cstddef>
#include <string>
#include <vector>

namespace thistle {

/// Outcome of one sweep task (one GP pair / combo).
enum class TaskOutcome {
  Solved,     ///< Converged, rounded, evaluated.
  Degraded,   ///< Feasible but not converged; best iterate accepted.
  Infeasible, ///< The GP has no feasible point (a model property).
  Failed,     ///< Numerical breakdown / fault / exception; no result.
  Skipped,    ///< Not attempted: deadline or budget expired.
};

const char *taskOutcomeName(TaskOutcome Outcome);

/// One non-clean task, in sweep order.
struct SweepIncident {
  std::size_t Index = 0;  ///< Task index in the fixed sweep plan.
  std::size_t A = 0;      ///< First coordinate (PE perm class / combo).
  std::size_t B = 0;      ///< Second coordinate (DRAM perm class).
  TaskOutcome Outcome = TaskOutcome::Failed;
  unsigned Attempts = 0;  ///< Solver attempts spent on the task.
  std::string Detail;     ///< Failure reason / diagnostic.
};

/// Solved/retried/failed/skipped accounting for one sweep.
struct SweepReport {
  unsigned Solved = 0;     ///< Clean first-attempt or retried successes.
  unsigned Retried = 0;    ///< Tasks that needed more than one attempt.
  unsigned Degraded = 0;
  unsigned Infeasible = 0;
  unsigned Failed = 0;
  unsigned Skipped = 0;
  /// The subset of Skipped dropped by an explicit caller policy (e.g.
  /// the MaxPermClassPairs pair cap) rather than an expired deadline.
  /// A policy skip is a requested truncation, so it does not make the
  /// sweep unclean; it is still recorded (count + incident) so outcome
  /// counts sum to the full task universe.
  unsigned SkippedByPolicy = 0;
  bool DeadlineExpired = false;
  /// Every non-Solved task (Degraded/Infeasible/Failed/Skipped), in
  /// ascending task order after the shard merge.
  std::vector<SweepIncident> Incidents;

  /// Tasks accounted for (every outcome).
  unsigned total() const {
    return Solved + Degraded + Infeasible + Failed + Skipped;
  }
  /// True when every task solved cleanly and no deadline fired. Policy
  /// skips are the caller's own truncation request, so they do not make
  /// a sweep unclean; only unplanned losses (degradations, failures,
  /// deadline skips) do.
  bool clean() const {
    return Degraded == 0 && Failed == 0 && Skipped == SkippedByPolicy &&
           !DeadlineExpired;
  }

  /// Records one task outcome (and its incident when non-clean).
  void record(TaskOutcome Outcome, std::size_t Index, std::size_t A,
              std::size_t B, unsigned Attempts, std::string Detail);

  /// Records a task dropped by a caller policy (pair cap): a Skipped
  /// outcome that also counts into SkippedByPolicy.
  void recordPolicySkip(std::size_t Index, std::size_t A, std::size_t B,
                        std::string Detail);

  /// Appends \p Next (the report of the next shard in ascending task
  /// order) to this one.
  void merge(SweepReport &&Next);

  /// Multi-line human-readable summary: one count line, then one line
  /// per incident ("  pair 7 (2,1): failed after 3 attempts: ...").
  std::string toString(const char *TaskNoun = "task") const;
};

} // namespace thistle

#endif // THISTLE_SUPPORT_SWEEPREPORT_H
