file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fixed_arch_energy.dir/bench_fig6_fixed_arch_energy.cpp.o"
  "CMakeFiles/bench_fig6_fixed_arch_energy.dir/bench_fig6_fixed_arch_energy.cpp.o.d"
  "bench_fig6_fixed_arch_energy"
  "bench_fig6_fixed_arch_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fixed_arch_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
