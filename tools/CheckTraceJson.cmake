# End-to-end check of the observability flags:
#  1. The default run prints no telemetry output (collection stays off).
#  2. --metrics/--profile append the profile tables WITHOUT changing the
#     optimization result lines.
#  3. --trace-json writes a run report that validates against the
#     thistle-run-report/1 schema (via check_run_report.py when a Python
#     interpreter is available, structural greps otherwise).
# Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECKER=<script>
#         [-DPYTHON=<python3>] -P CheckTraceJson.cmake

set(LAYER --layer 16,8,14,14,3,3 --threads 2)

# 1. Default run: no profile, no run report note.
execute_process(
  COMMAND ${TOOL} ${LAYER}
  OUTPUT_VARIABLE PLAIN_OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "plain run: expected exit 0, got '${CODE}'\n${ERR}")
endif()
foreach(MARKER "==== profile ====" "run report written")
  if(PLAIN_OUT MATCHES "${MARKER}")
    message(FATAL_ERROR
      "plain run: telemetry output without flags: '${MARKER}'\n${PLAIN_OUT}")
  endif()
endforeach()

# 2. Instrumented run: same result lines plus the profile tables and the
#    JSON report.
set(REPORT ${WORK_DIR}/trace-report.json)
execute_process(
  COMMAND ${TOOL} ${LAYER} --profile --trace-json ${REPORT}
  OUTPUT_VARIABLE TRACED_OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)
if(NOT CODE EQUAL 0)
  message(FATAL_ERROR "traced run: expected exit 0, got '${CODE}'\n${ERR}")
endif()
if(NOT TRACED_OUT MATCHES "==== profile ====")
  message(FATAL_ERROR "traced run: missing profile tables\n${TRACED_OUT}")
endif()
if(NOT TRACED_OUT MATCHES "thistle.pair")
  message(FATAL_ERROR "traced run: no pair spans in profile\n${TRACED_OUT}")
endif()

# The result lines (everything the plain run printed) must be untouched:
# telemetry only appends. Compare the prefix byte for byte.
string(LENGTH "${PLAIN_OUT}" PLAIN_LEN)
string(SUBSTRING "${TRACED_OUT}" 0 ${PLAIN_LEN} TRACED_PREFIX)
if(NOT TRACED_PREFIX STREQUAL "${PLAIN_OUT}")
  message(FATAL_ERROR
    "traced run: result lines differ from the plain run\n"
    "---- plain ----\n${PLAIN_OUT}\n---- traced ----\n${TRACED_OUT}")
endif()

# 3. Validate the report.
if(NOT EXISTS ${REPORT})
  message(FATAL_ERROR "traced run: ${REPORT} was not written")
endif()
if(PYTHON)
  execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${REPORT}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "schema check failed:\n${OUT}\n${ERR}")
  endif()
else()
  file(READ ${REPORT} JSON)
  foreach(FIELD
      "\"schema\": \"thistle-run-report/1\"" "\"exit_code\": 0"
      "\"result\"" "\"sweep\"" "\"metrics\"" "\"trace\""
      "\"name\": \"thistle.pair\"")
    if(NOT JSON MATCHES "${FIELD}")
      message(FATAL_ERROR "report missing ${FIELD}\n${JSON}")
    endif()
  endforeach()
endif()
