//===- thistle/Optimizer.h - Thistle design-space optimizer -----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outer loop of Thistle (paper Fig. 2): enumerate pruned tile-loop
/// permutation classes for the per-PE and DRAM temporal levels, generate
/// one constrained geometric program per class pair, solve it, round the
/// real solution to integer candidates, evaluate every candidate with the
/// nestmodel, and return the best design found. Supports the paper's two
/// modes — dataflow optimization for a fixed architecture (Eq. 3, used in
/// Figs. 4 and 7) and architecture-dataflow co-design under an area
/// budget (Eq. 5, used in Figs. 5, 6 and 8) — for either the energy or
/// the delay objective.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_OPTIMIZER_H
#define THISTLE_THISTLE_OPTIMIZER_H

#include "support/Status.h"
#include "support/SweepReport.h"
#include "thistle/GpBuilder.h"
#include "thistle/Rounding.h"

#include <chrono>
#include <string>
#include <vector>

namespace thistle {

/// Optimizer configuration.
struct ThistleOptions {
  SearchObjective Objective = SearchObjective::Energy;
  DesignMode Mode = DesignMode::DataflowOnly;
  RoundingOptions Rounding;
  GpSolverOptions Solver;
  /// Iterator names never tiled (the paper's stencil dims r and s).
  std::vector<std::string> UntiledIterNames = {"r", "s"};
  /// Allow untiled iterators to be spatially unrolled across the PE grid
  /// (see GpBuildSpec::SpatialUntiled).
  bool SpatialUntiled = true;
  /// Cap on permutation-class pairs to solve (0 = all).
  unsigned MaxPermClassPairs = 0;
  /// Skip pairs that are mirror images under problem symmetries
  /// (the paper's H/W pruning).
  bool UseSymmetryPruning = true;
  /// Worker threads for the pair sweep (0 = one per hardware thread).
  /// The result is bit-identical at every thread count — the sweep plan
  /// is fixed before fan-out and the winner is reduced with a total
  /// (objective, pair-index) order — so this only affects wall clock.
  unsigned Threads = 0;
  /// Wall-clock budget for the pair sweep (0 = unlimited). Checked
  /// before each pair solve: pairs starting after the deadline are
  /// skipped and counted in the SweepReport, and the sweep returns the
  /// best of the completed pairs (graceful degradation). Which pairs
  /// complete under a live deadline is wall-clock dependent; a sweep
  /// that never hits the deadline is bit-identical to an unbounded one.
  std::chrono::milliseconds Deadline{0};
  /// Absolute form of the deadline (steady clock); takes precedence
  /// over Deadline when set. Lets tests pin an already-expired or
  /// far-future instant deterministically.
  std::chrono::steady_clock::time_point DeadlineAt{};
};

class GpSolutionCache;
class ThreadPool;

/// Search statistics (exposed for the ablation benchmarks).
struct ThistleStats {
  unsigned PermClassesPerLevel = 0;
  unsigned RawPermsPerLevel = 0;
  unsigned PairsTotal = 0;
  unsigned PairsSkippedBySymmetry = 0;
  /// Tasks in the fixed sweep plan (after symmetry pruning and the pair
  /// cap): what the sweep *attempts*. This is the quantity the ablation
  /// benchmarks normalize by.
  unsigned PairsPlanned = 0;
  /// Pairs that actually produced an iterate: Report.Solved +
  /// Report.Degraded. Historically this was assigned the planned count
  /// before the sweep ran, over-reporting whenever pairs failed, were
  /// infeasible or were skipped by a deadline.
  unsigned PairsSolved = 0;
  unsigned GpInfeasible = 0;
  unsigned NewtonIterations = 0;
  std::size_t CandidatesEvaluated = 0;
  /// This sweep's GP-cache traffic (all zero without a shared cache).
  /// Per-run deltas, like NetworkStats' counters — the cache's own
  /// counters aggregate across runs instead.
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
};

/// The best design found for one layer.
struct ThistleResult {
  bool Found = false;
  /// Non-Ok when the inputs failed validation before the sweep ran
  /// (bad architecture, non-positive area budget, malformed options);
  /// Found is false and the report is empty in that case.
  Status InputStatus;
  /// Per-pair solved/retried/degraded/failed/skipped accounting. When
  /// pairs fail or are skipped, the sweep still returns the optimum
  /// over the remaining pairs and names the losses here.
  SweepReport Report;
  ArchConfig Arch; ///< Input arch (dataflow mode) or co-designed.
  Mapping Map;
  EvalResult Eval;
  /// The GP's own objective estimate at the best pair (pre-rounding).
  double ModelObjective = 0.0;
  /// Permutations of the winning class pair (outer-to-inner, tiled only).
  std::vector<unsigned> BestPePerm, BestDramPerm;
  ThistleStats Stats;
};

/// Shared long-lived resources a layer run may borrow instead of
/// creating its own (the serving path, docs/SERVING.md). Both are
/// optional and null by default, which reproduces the self-contained
/// behavior exactly: no cache, a private pool sized by
/// ThistleOptions::Threads.
struct LayerRunContext {
  /// Shared GP solution cache; exact hits replay bit-identically and
  /// structural near-misses warm-start failed solves (thistle/GpCache.h).
  /// The caller must serialize runs sharing one cache — the warm tier's
  /// generation freeze is per-cache state.
  GpSolutionCache *Cache = nullptr;
  /// External worker pool for the pair sweep; when set,
  /// ThistleOptions::Threads is ignored. Results are bit-identical at
  /// any pool size either way.
  ThreadPool *Pool = nullptr;
};

/// Runs Thistle on one layer.
///
/// In DataflowOnly mode, \p Arch is the fixed architecture. In CoDesign
/// mode, \p Arch supplies the bandwidth parameters and \p AreaBudgetUm2
/// bounds the Eq. 5 area (pass e.g. the Eyeriss area for the paper's
/// equal-area comparison).
ThistleResult optimizeLayer(const Problem &Prob, const ArchConfig &Arch,
                            const TechParams &Tech,
                            const ThistleOptions &Options,
                            double AreaBudgetUm2 = 0.0);

/// As above, borrowing the caller's cache and/or thread pool.
ThistleResult optimizeLayer(const Problem &Prob, const ArchConfig &Arch,
                            const TechParams &Tech,
                            const ThistleOptions &Options,
                            const LayerRunContext &Run,
                            double AreaBudgetUm2 = 0.0);

} // namespace thistle

#endif // THISTLE_THISTLE_OPTIMIZER_H
