//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for exercising the solve
/// pipeline's degradation paths. Production code plants named *sites*
/// (`fault::shouldFail("thistle.pair", TaskIdx)`); tests and the
/// command-line tool *arm* a site, optionally restricted to one key and
/// a bounded number of hits, to force solver non-convergence, NaN
/// gradients, parse errors or whole-pair failures on demand.
///
/// Determinism: a site fires based on its armed (key, budget) state and
/// the caller-supplied key — never on wall clock or thread schedule — so
/// keyed injections (e.g. "fail pair 3") reproduce bit-identically at
/// any --threads. Unkeyed injections with a finite hit budget consume it
/// in first-come order and are only deterministic single-threaded.
///
/// The harness compiles in under the THISTLE_FAULT_INJECTION CMake
/// option (default ON). When compiled out, every hook collapses to a
/// constant-false inline with zero overhead, and arming is a no-op.
///
/// Known sites (docs/ROBUSTNESS.md):
///   solver.nonconverge  phase II never reaches its tolerance
///   solver.nan-grad     poisons a Newton gradient with NaN
///   solver.infeasible   phase I reports no strictly feasible point
///   thistle.pair        keyed by pair task index: the pair solve fails
///   multigp.combo       keyed by combo index: the combo solve fails
///   parse.hierarchy     parseHierarchy rejects the input
///   persist.write-fail  keyed by artifact (0 snapshot, 1 journal):
///                       the durable write fails outright
///   persist.torn-write  same keys: the payload is truncated mid-write
///   persist.corrupt-crc same keys: one payload byte is bit-flipped
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_FAULTINJECTION_H
#define THISTLE_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <string>

namespace thistle {
namespace fault {

/// Key wildcard: an armed site with AnyKey fires for every key; a
/// shouldFail call with AnyKey fires whenever its site is armed.
inline constexpr std::int64_t AnyKey = -1;

/// Unlimited hit budget.
inline constexpr unsigned Unlimited = ~0u;

#if THISTLE_FAULT_INJECTION_ENABLED

/// True when the harness is compiled in.
constexpr bool enabled() { return true; }

/// Arms \p Site: subsequent shouldFail(Site, K) returns true when
/// \p Key is AnyKey or equals K, for at most \p MaxHits firings.
/// Re-arming a site replaces its previous state.
void arm(const std::string &Site, std::int64_t Key = AnyKey,
         unsigned MaxHits = Unlimited);

/// Disarms one site / every site.
void disarm(const std::string &Site);
void disarmAll();

/// The production-side hook. Returns true (and consumes one hit) when
/// \p Site is armed for \p Key. Thread-safe; constant-false when no
/// site at all is armed (the fast path costs one relaxed atomic load).
bool shouldFail(const char *Site, std::int64_t Key = AnyKey);

/// Number of times \p Site fired since it was last armed.
unsigned hitCount(const std::string &Site);

/// Arms sites from a spec string: "site[:key[:maxhits]][,site...]",
/// e.g. "thistle.pair:3" or "solver.nan-grad::1". Returns a ParseError
/// diagnostic string on malformed input, empty on success.
std::string armFromSpec(const std::string &Spec);

/// Arms from the THISTLE_FAULT environment variable if set. Returns the
/// armFromSpec diagnostic (empty when unset or well-formed).
std::string armFromEnv();

#else

constexpr bool enabled() { return false; }
inline void arm(const std::string &, std::int64_t = AnyKey,
                unsigned = Unlimited) {}
inline void disarm(const std::string &) {}
inline void disarmAll() {}
constexpr bool shouldFail(const char *, std::int64_t = AnyKey) {
  return false;
}
inline unsigned hitCount(const std::string &) { return 0; }
inline std::string armFromSpec(const std::string &) {
  return "fault injection compiled out (THISTLE_FAULT_INJECTION=OFF)";
}
inline std::string armFromEnv() { return std::string(); }

#endif // THISTLE_FAULT_INJECTION_ENABLED

} // namespace fault
} // namespace thistle

#endif // THISTLE_SUPPORT_FAULTINJECTION_H
