//===- tests/ReproductionTest.cpp - Headline reproduction guards ----------===//
//
// Executable versions of the paper's headline claims on real Table II
// layers, so a regression in any stage of the pipeline (symbolic model,
// solver, rounding, evaluation) trips a test rather than silently
// degrading the figures. Bands are the measured values of EXPERIMENTS.md
// with margin; they are intentionally loose enough to survive benign
// tuning and tight enough to catch real regressions.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Mapper.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

const TechParams Tech = TechParams::cgo45nm();

ThistleResult runDataflow(const ConvLayer &L, SearchObjective Obj) {
  ThistleOptions O;
  O.Objective = Obj;
  Problem P = makeConvProblem(L);
  return optimizeLayer(P, eyerissArch(), Tech, O);
}

ThistleResult runCoDesign(const ConvLayer &L, SearchObjective Obj) {
  ThistleOptions O;
  O.Mode = DesignMode::CoDesign;
  O.Objective = Obj;
  Problem P = makeConvProblem(L);
  return optimizeLayer(P, eyerissArch(), Tech, O, eyerissAreaUm2(Tech));
}

} // namespace

TEST(Reproduction, Fig4EyerissEnergyBand) {
  // Paper: 20-30 pJ/MAC for dataflow optimization on Eyeriss.
  for (const ConvLayer &L :
       {resnet18Layers()[1], resnet18Layers()[8], yolo9000Layers()[6]}) {
    ThistleResult R = runDataflow(L, SearchObjective::Energy);
    ASSERT_TRUE(R.Found) << L.Name;
    EXPECT_GT(R.Eval.EnergyPerMacPj, 20.0) << L.Name;
    EXPECT_LT(R.Eval.EnergyPerMacPj, 24.0) << L.Name;
  }
}

TEST(Reproduction, Fig4ThistleMatchesMapperOnEnergy) {
  // Paper: Thistle and the Mapper achieve similar energy, Thistle
  // slightly better.
  ConvLayer L = yolo9000Layers()[6];
  Problem P = makeConvProblem(L);
  EnergyModel Energy(Tech);
  MapperOptions MO;
  MO.MaxTrials = 10000;
  MO.VictoryCondition = 3000;
  MapperResult M = searchMappings(P, eyerissArch(), Energy, MO);
  ThistleResult T = runDataflow(L, SearchObjective::Energy);
  ASSERT_TRUE(M.Found);
  ASSERT_TRUE(T.Found);
  EXPECT_LE(T.Eval.EnergyPj, M.BestEval.EnergyPj * 1.01);
}

TEST(Reproduction, Fig5CoDesignEnergyBand) {
  // Paper: ~5 pJ/MAC for most layers at Eyeriss-equal area, with the
  // co-designed machines using small register files and many PEs.
  for (const ConvLayer &L : {resnet18Layers()[1], yolo9000Layers()[6]}) {
    ThistleResult R = runCoDesign(L, SearchObjective::Energy);
    ASSERT_TRUE(R.Found) << L.Name;
    EXPECT_LT(R.Eval.EnergyPerMacPj, 6.0) << L.Name;
    EXPECT_GT(R.Eval.EnergyPerMacPj, 2.5) << L.Name;
    EXPECT_LE(R.Arch.RegWordsPerPE, 32) << L.Name;
    EXPECT_GT(R.Arch.NumPEs, 400) << L.Name;
    EXPECT_LE(R.Arch.areaUm2(Tech), eyerissAreaUm2(Tech) * 1.0000001);
  }
}

TEST(Reproduction, Fig7EyerissIpcBand) {
  // Paper: delay-optimized dataflows approach the 168-PE ceiling.
  ThistleResult R = runDataflow(resnet18Layers()[1], SearchObjective::Delay);
  ASSERT_TRUE(R.Found);
  EXPECT_GE(R.Eval.MacIpc, 120.0);
  EXPECT_LE(R.Eval.MacIpc, 168.0);
}

TEST(Reproduction, Fig8CoDesignIpcGain) {
  // Paper: delay co-design at equal area gains large factors over the
  // fixed Eyeriss architecture.
  ConvLayer L = resnet18Layers()[1];
  ThistleResult Fixed = runDataflow(L, SearchObjective::Delay);
  ThistleResult Co = runCoDesign(L, SearchObjective::Delay);
  ASSERT_TRUE(Fixed.Found);
  ASSERT_TRUE(Co.Found);
  EXPECT_GT(Co.Eval.MacIpc, Fixed.Eval.MacIpc * 4.0);
}

TEST(Reproduction, EnergyDominatedByRegisterMacFloor) {
  // Paper's mechanism behind Figs. 5/6: on the co-designed machines the
  // (4 eps_R + eps_op) * Nops term dominates total energy.
  ThistleResult R = runCoDesign(resnet18Layers()[8],
                                SearchObjective::Energy);
  ASSERT_TRUE(R.Found);
  EXPECT_GT(R.Eval.MacEnergyPj, 0.5 * R.Eval.EnergyPj);
}
