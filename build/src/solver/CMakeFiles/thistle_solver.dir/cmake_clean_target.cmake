file(REMOVE_RECURSE
  "libthistle_solver.a"
)
