//===- thistle/Network.h - Network-level co-design driver -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network-level driver behind the paper's headline results (Figs.
/// 5/6/8, section V): optimize every conv layer of a pipeline at once,
/// and in CoDesign mode pick the single architecture minimizing the
/// summed Eq. 5 objective across layers (the equal-area network
/// comparison). Identical layer shapes — ResNet-style repeated blocks —
/// are deduplicated up front and solved once; the (layer, perm-pair)
/// task grid fans out on one ThreadPool with the same deterministic
/// (objective, layer, QI, SI) reduction as the single-layer sweep, so
/// results are bit-identical at every thread count. An optional
/// GpSolutionCache (thistle/GpCache.h) carries solutions across runs:
/// exact hits replay without solving, near misses warm-start the
/// barrier method when a cold solve fails.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_NETWORK_H
#define THISTLE_THISTLE_NETWORK_H

#include "ir/Builders.h"
#include "thistle/GpCache.h"
#include "thistle/Optimizer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// Network-driver configuration.
struct NetworkOptions {
  /// Per-layer sweep configuration (mode, objective, solver, rounding,
  /// threads, deadline). The deadline is resolved once and applies to
  /// the whole network run, not per layer.
  ThistleOptions Layer;
  /// Optional shared solution cache; nullptr solves everything cold.
  /// The same instance may be passed to consecutive runs to reuse
  /// solutions (the repeated-block / repeated-network case).
  GpSolutionCache *Cache = nullptr;
  /// Optional external worker pool (the serving path shares one pool
  /// across requests); when set, Layer.Threads is ignored. Results are
  /// bit-identical at any pool size either way.
  ThreadPool *Pool = nullptr;
  /// In CoDesign mode, run the second phase that selects one
  /// architecture for the whole network (the paper's comparison). When
  /// false each layer keeps its own co-designed architecture.
  bool SelectNetworkArch = true;
  /// Deterministic 1-of-N partition of the pair-task grid for
  /// distributed sweeps (docs/PERSISTENCE.md): this process solves only
  /// tasks whose global index is congruent to ShardIndex mod ShardCount
  /// and skips the rest before any cache lookup. The partition depends
  /// only on the task grid, never on timing, so shard results recombine
  /// (via a shared cache directory) bit-identically to a 1-process run.
  std::size_t ShardIndex = 0; ///< 0-based; must be < ShardCount.
  std::size_t ShardCount = 1; ///< 1 = no sharding.
};

/// One input layer's slice of the network result.
struct NetworkLayerResult {
  std::string Name;
  /// Index into the deduplicated shape list; layers with equal shapes
  /// share it (and their Result).
  std::size_t ShapeIndex = 0;
  /// Input layers sharing this shape (identical on all copies).
  std::size_t Multiplicity = 1;
  /// True when this layer reuses an earlier identical shape's sweep; its
  /// Result then carries the shared winner but an empty Report (the
  /// shape's sweep is accounted once, on the first occurrence).
  bool Deduplicated = false;
  ThistleResult Result;
};

/// Network-level aggregates over the found layers (each unique shape's
/// winner counted once per input layer using it).
struct NetworkTotals {
  double EnergyPj = 0.0;
  double Cycles = 0.0;
  /// Network EDP: total energy times total cycles (the layers run
  /// back-to-back on one accelerator).
  double EdpPjCycles = 0.0;
  double EnergyPerMacPj = 0.0;
  std::int64_t Macs = 0;
  /// Sum over layers of the per-layer objective value — the quantity
  /// the CoDesign architecture selection minimizes.
  double SummedObjective = 0.0;
};

/// Counters of one network run.
struct NetworkStats {
  std::size_t LayersTotal = 0;
  std::size_t UniqueShapes = 0;
  /// Planned pair tasks across all phases: unique shapes in phase 1
  /// plus, in CoDesign mode, candidates x unique shapes in phase 2.
  unsigned PairsPlanned = 0;
  /// Pairs that produced an iterate, all phases (= Report.Solved +
  /// Report.Degraded).
  unsigned PairsSolved = 0;
  /// Candidate architectures scored in the CoDesign selection phase.
  unsigned ArchCandidates = 0;
  /// This run's cache traffic (0 when no cache was supplied). The
  /// cache's own counters aggregate across runs instead.
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
};

/// One scored architecture candidate of the CoDesign selection phase.
struct NetworkArchCandidate {
  ArchConfig Arch;
  /// Summed per-layer objective under this architecture; meaningful
  /// when AllLayersFound.
  double SummedObjective = 0.0;
  bool AllLayersFound = false;
  std::size_t LayersFound = 0;
};

/// What optimizeNetwork returns.
struct NetworkResult {
  /// True when every input layer found a design (Totals are complete).
  bool Found = false;
  std::size_t LayersFound = 0;
  /// Non-Ok when the inputs failed validation before any sweep ran
  /// (empty layer list, bad architecture, bad options); the report is
  /// then empty ("0 tasks: nothing attempted").
  Status InputStatus;
  /// Merged per-pair accounting across every layer sweep (and, in
  /// CoDesign mode, every candidate re-sweep), in deterministic
  /// (phase, shape, task) order.
  SweepReport Report;
  std::vector<NetworkLayerResult> Layers;
  /// The network architecture: the input arch in DataflowOnly mode, the
  /// selected winner in CoDesign mode (input arch if nothing was found).
  ArchConfig Arch;
  NetworkTotals Totals;
  /// CoDesign selection phase candidates, in deterministic order (first
  /// appearance over shapes); empty in DataflowOnly mode.
  std::vector<NetworkArchCandidate> Candidates;
  NetworkStats Stats;
};

/// Optimizes every layer of \p Layers on one architecture.
///
/// DataflowOnly: \p Arch is fixed; each unique layer shape gets its own
/// best dataflow and the totals sum the per-layer winners.
///
/// CoDesign: phase 1 co-designs each unique shape under
/// \p AreaBudgetUm2; the distinct winning architectures become
/// candidates; phase 2 re-optimizes every unique shape's dataflow under
/// each candidate, and the candidate with the smallest summed objective
/// across all input layers is selected (ties break on candidate order).
NetworkResult optimizeNetwork(const std::vector<ConvLayer> &Layers,
                              const ArchConfig &Arch,
                              const TechParams &Tech,
                              const NetworkOptions &Options,
                              double AreaBudgetUm2 = 0.0);

} // namespace thistle

#endif // THISTLE_THISTLE_NETWORK_H
