//===- expr/VarTable.h - Variable interning ---------------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns symbolic variable names (trip counts such as "q_h", architecture
/// parameters such as "R") into dense integer ids, so that monomials can
/// store sparse (id, exponent) pairs and assignments can be plain vectors.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_EXPR_VARTABLE_H
#define THISTLE_EXPR_VARTABLE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace thistle {

/// Dense id of an interned variable.
using VarId = std::uint32_t;

/// Bidirectional name <-> id mapping for symbolic variables.
///
/// A VarTable is shared by all expressions of one optimization problem.
/// Ids are assigned in insertion order starting at 0.
class VarTable {
public:
  /// Returns the id of \p Name, interning it if new.
  VarId intern(const std::string &Name) {
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    VarId Id = static_cast<VarId>(Names.size());
    Names.push_back(Name);
    Ids.emplace(Name, Id);
    return Id;
  }

  /// Returns the id of \p Name; the name must already be interned.
  VarId lookup(const std::string &Name) const {
    auto It = Ids.find(Name);
    assert(It != Ids.end() && "variable was never interned");
    return It->second;
  }

  /// Returns true if \p Name has been interned.
  bool contains(const std::string &Name) const { return Ids.count(Name) > 0; }

  /// Returns the name of \p Id.
  const std::string &nameOf(VarId Id) const {
    assert(Id < Names.size() && "variable id out of range");
    return Names[Id];
  }

  /// Number of interned variables.
  std::size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, VarId> Ids;
};

/// A full assignment of positive values to variables, indexed by VarId.
using Assignment = std::vector<double>;

} // namespace thistle

#endif // THISTLE_EXPR_VARTABLE_H
