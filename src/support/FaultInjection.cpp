//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//

#include "support/FaultInjection.h"

#if THISTLE_FAULT_INJECTION_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace thistle;

namespace {

struct SiteState {
  std::int64_t Key = fault::AnyKey;
  unsigned HitsLeft = fault::Unlimited;
  unsigned Hits = 0;
};

struct Registry {
  std::mutex Mutex;
  std::map<std::string, SiteState> Sites;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Fast-path gate: number of armed sites. shouldFail is planted on hot
/// solver paths, so the disarmed case must not take a lock.
std::atomic<unsigned> ArmedSites{0};

} // namespace

void fault::arm(const std::string &Site, std::int64_t Key,
                unsigned MaxHits) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  SiteState &S = R.Sites[Site];
  S.Key = Key;
  S.HitsLeft = MaxHits;
  S.Hits = 0;
  ArmedSites.store(static_cast<unsigned>(R.Sites.size()),
                   std::memory_order_release);
}

void fault::disarm(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites.erase(Site);
  ArmedSites.store(static_cast<unsigned>(R.Sites.size()),
                   std::memory_order_release);
}

void fault::disarmAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Sites.clear();
  ArmedSites.store(0, std::memory_order_release);
}

bool fault::shouldFail(const char *Site, std::int64_t Key) {
  if (ArmedSites.load(std::memory_order_acquire) == 0)
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Sites.find(Site);
  if (It == R.Sites.end())
    return false;
  SiteState &S = It->second;
  if (S.Key != AnyKey && Key != AnyKey && S.Key != Key)
    return false;
  if (S.HitsLeft == 0)
    return false;
  if (S.HitsLeft != Unlimited)
    --S.HitsLeft;
  ++S.Hits;
  return true;
}

unsigned fault::hitCount(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Sites.find(Site);
  return It == R.Sites.end() ? 0 : It->second.Hits;
}

std::string fault::armFromSpec(const std::string &Spec) {
  std::size_t Pos = 0;
  while (Pos < Spec.size()) {
    std::size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;

    std::string Site = Entry;
    std::int64_t Key = AnyKey;
    unsigned MaxHits = Unlimited;
    std::size_t C1 = Entry.find(':');
    if (C1 != std::string::npos) {
      Site = Entry.substr(0, C1);
      std::size_t C2 = Entry.find(':', C1 + 1);
      std::string KeyText =
          Entry.substr(C1 + 1, C2 == std::string::npos ? std::string::npos
                                                       : C2 - C1 - 1);
      char *End = nullptr;
      if (!KeyText.empty()) {
        Key = std::strtoll(KeyText.c_str(), &End, 10);
        if (*End != '\0')
          return "fault spec '" + Entry + "': key '" + KeyText +
                 "' is not an integer";
      }
      if (C2 != std::string::npos) {
        std::string HitsText = Entry.substr(C2 + 1);
        unsigned long Hits = std::strtoul(HitsText.c_str(), &End, 10);
        if (HitsText.empty() || *End != '\0')
          return "fault spec '" + Entry + "': max-hits '" + HitsText +
                 "' is not an unsigned integer";
        MaxHits = static_cast<unsigned>(Hits);
      }
    }
    if (Site.empty())
      return "fault spec '" + Entry + "': empty site name";
    arm(Site, Key, MaxHits);
  }
  return std::string();
}

std::string fault::armFromEnv() {
  const char *Spec = std::getenv("THISTLE_FAULT");
  if (!Spec || !*Spec)
    return std::string();
  return armFromSpec(Spec);
}

#endif // THISTLE_FAULT_INJECTION_ENABLED
