//===- bench/bench_fig1_matmul_volumes.cpp - Paper Fig. 1 / Eq. 1-2 -------===//
//
// Verifies the Section II derivation: Algorithm 1's symbolic data volumes
// for the Fig. 1 matmul tiling match the paper's closed forms (Eq. 1 and
// Eq. 2) across a sweep of tile-size choices, and the brute-force oracle
// agrees on concrete integer instances. Then times the GP solve for the
// matmul dataflow problem.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "sim/TiledLoopSim.h"
#include "support/TablePrinter.h"
#include "thistle/ExprGen.h"
#include "thistle/GpBuilder.h"

#include <cmath>
#include <iostream>

using namespace thistle;

namespace {

void printVolumeSweep() {
  TablePrinter Table({"N", "Si=Sj=Sk", "DV_A D<->S", "Eq.1 NiNk",
                      "DV_B D<->S", "Eq.1 NiNjNk/Si", "oracle A",
                      "oracle B"});
  for (std::int64_t N : {16, 32, 64}) {
    for (std::int64_t Tile : {2, 4, 8}) {
      Problem P = makeMatmulProblem(N, N, N);
      VarTable Vars;
      ExprGen EG(P, Vars);
      unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
               Ik = P.iteratorIndex("k");
      std::vector<unsigned> DramPerm = {Ii, Ik, Ij};
      std::vector<unsigned> PePerm = {Ii, Ij, Ik};

      // Mapping: register tiles = Tile, one SRAM tile of Tile per dim.
      Mapping M = Mapping::untiled(P);
      for (unsigned I : {Ii, Ij, Ik}) {
        M.factor(I, TileLevel::Register) = Tile;
        M.factor(I, TileLevel::DramTemporal) = N / Tile;
      }
      M.DramPerm = {Ii, Ik, Ij};
      M.PePerm = {Ii, Ij, Ik};

      Assignment A(Vars.size(), 1.0);
      for (unsigned I : {Ii, Ij, Ik}) {
        A[EG.tripVar(TileLevel::Register, I)] = static_cast<double>(Tile);
        A[EG.tripVar(TileLevel::DramTemporal, I)] =
            static_cast<double>(N / Tile);
      }

      TensorSymbolicModel MA = EG.buildTensorModel(1, PePerm, DramPerm);
      TensorSymbolicModel MB = EG.buildTensorModel(2, PePerm, DramPerm);
      SimResult Oracle = simulateTiledNest(P, M);

      double DvA = MA.DvDram.evaluate(A);
      double DvB = MB.DvDram.evaluate(A);
      Table.addRow(
          {TablePrinter::formatInt(N), TablePrinter::formatInt(Tile),
           TablePrinter::formatDouble(DvA, 0),
           TablePrinter::formatInt(N * N),
           TablePrinter::formatDouble(DvB, 0),
           TablePrinter::formatInt(N * N * N / Tile),
           TablePrinter::formatInt(Oracle.PerTensor[1].DramToSram),
           TablePrinter::formatInt(Oracle.PerTensor[2].DramToSram)});
    }
  }
  Table.print(std::cout);
  std::printf("\n(DV_A must equal Ni*Nk and the oracle columns must match "
              "the symbolic ones.)\n\n");
}

void timeMatmulGpSolve(benchmark::State &State) {
  Problem P = makeMatmulProblem(1024, 1024, 1024);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  GpBuildSpec Spec;
  Spec.PePerm = {Ii, Ij, Ik};
  Spec.DramPerm = {Ii, Ik, Ij};
  Spec.TiledIters = {Ii, Ij, Ik};
  Spec.Arch = eyerissArch();
  for (auto _ : State) {
    GpBuild Build = buildGp(P, Spec);
    benchmark::DoNotOptimize(solveGp(Build.Gp));
  }
}
BENCHMARK(timeMatmulGpSolve);

} // namespace

int main(int Argc, char **Argv) {
  thistle::bench::printHeader(
      "Fig. 1 / Eq. 1-2",
      "Matmul data-volume closed forms: symbolic vs. paper vs. oracle "
      "(DRAM loops <i,k,j>, register loops <i,j,k>)");
  printVolumeSweep();
  return thistle::bench::runTimings(Argc, Argv);
}
