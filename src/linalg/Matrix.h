//===- linalg/Matrix.h - Dense linear algebra kernel ------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal dense linear algebra used by the geometric-programming solver:
/// a row-major Matrix, Cholesky factorization for Newton systems, and a
/// null-space computation (via Gauss-Jordan elimination) used to eliminate
/// the monomial equality constraints of a GP in log space.
///
/// The problems solved here are small (tens of variables) but sit on the
/// hot path of every co-design query, so the implementations run on the
/// portable SIMD kernel layer (linalg/Kernels.h) with its fixed
/// blocking/association order: results are bit-identical across every
/// `THISTLE_SIMD` setting (see docs/PERF.md).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_LINALG_MATRIX_H
#define THISTLE_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace thistle {

/// A dense vector of doubles.
using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
public:
  Matrix() : NumRows(0), NumCols(0) {}
  Matrix(std::size_t Rows, std::size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, 0.0) {}

  std::size_t rows() const { return NumRows; }
  std::size_t cols() const { return NumCols; }

  double &at(std::size_t R, std::size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(std::size_t R, std::size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Raw row-major storage (for the kernel layer, linalg/Kernels.h).
  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  /// Pointer to the start of row \p R.
  double *row(std::size_t R) {
    assert(R < NumRows && "matrix row out of range");
    return Data.data() + R * NumCols;
  }
  const double *row(std::size_t R) const {
    assert(R < NumRows && "matrix row out of range");
    return Data.data() + R * NumCols;
  }

  /// Re-shapes to \p Rows x \p Cols and zero-fills, reusing the existing
  /// allocation when large enough (hot-loop scratch reuse).
  void reset(std::size_t Rows, std::size_t Cols) {
    NumRows = Rows;
    NumCols = Cols;
    Data.assign(Rows * Cols, 0.0);
  }

  /// Returns an identity matrix of size \p N.
  static Matrix identity(std::size_t N);

  /// Returns this * \p V.
  Vector apply(const Vector &V) const;

  /// Returns this^T * \p V.
  Vector applyTransposed(const Vector &V) const;

  /// Returns this * \p Other.
  Matrix multiply(const Matrix &Other) const;

  /// Returns the transpose.
  Matrix transposed() const;

private:
  std::size_t NumRows, NumCols;
  std::vector<double> Data;
};

/// In-place Cholesky solve of the symmetric positive-definite system
/// A * X = B. Returns false if \p A is not (numerically) positive definite.
///
/// \p A is consumed (overwritten with its Cholesky factor).
bool choleskySolve(Matrix A, const Vector &B, Vector &X);

/// Computes an orthonormal-ish basis of the null space of \p A (rows are
/// constraints) via Gauss-Jordan elimination with partial pivoting.
///
/// Returns a matrix Z with A * Z = 0 whose columns span null(A); each
/// column has a unit entry in one free variable. Entries below \p Tol in
/// magnitude during elimination are treated as zero.
Matrix nullSpaceOf(const Matrix &A, double Tol = 1e-10);

/// Solves the (possibly under-determined, assumed consistent) system
/// A * X = B via Gauss-Jordan elimination, returning one particular
/// solution (free variables set to zero). Returns false if the system is
/// inconsistent within \p Tol.
bool solveParticular(const Matrix &A, const Vector &B, Vector &X,
                     double Tol = 1e-10);

/// Euclidean inner product.
double dot(const Vector &A, const Vector &B);

/// Euclidean norm.
double norm2(const Vector &V);

/// Returns A + Scale * B.
Vector axpy(const Vector &A, double Scale, const Vector &B);

} // namespace thistle

#endif // THISTLE_LINALG_MATRIX_H
