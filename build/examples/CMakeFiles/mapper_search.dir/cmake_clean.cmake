file(REMOVE_RECURSE
  "CMakeFiles/mapper_search.dir/mapper_search.cpp.o"
  "CMakeFiles/mapper_search.dir/mapper_search.cpp.o.d"
  "mapper_search"
  "mapper_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
