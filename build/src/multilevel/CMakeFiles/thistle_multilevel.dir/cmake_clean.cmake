file(REMOVE_RECURSE
  "CMakeFiles/thistle_multilevel.dir/Hierarchy.cpp.o"
  "CMakeFiles/thistle_multilevel.dir/Hierarchy.cpp.o.d"
  "CMakeFiles/thistle_multilevel.dir/MultiGp.cpp.o"
  "CMakeFiles/thistle_multilevel.dir/MultiGp.cpp.o.d"
  "CMakeFiles/thistle_multilevel.dir/MultiMapping.cpp.o"
  "CMakeFiles/thistle_multilevel.dir/MultiMapping.cpp.o.d"
  "CMakeFiles/thistle_multilevel.dir/MultiNestAnalysis.cpp.o"
  "CMakeFiles/thistle_multilevel.dir/MultiNestAnalysis.cpp.o.d"
  "CMakeFiles/thistle_multilevel.dir/MultiSim.cpp.o"
  "CMakeFiles/thistle_multilevel.dir/MultiSim.cpp.o.d"
  "libthistle_multilevel.a"
  "libthistle_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
