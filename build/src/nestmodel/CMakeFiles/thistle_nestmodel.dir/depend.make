# Empty dependencies file for thistle_nestmodel.
# This may be replaced when dependencies are built.
