//===- nestmodel/Mapper.cpp - Search-based mapping baseline ---------------===//
//
// The search runs in rounds of Options.TrialsPerRound trials. Every trial
// slot owns an RNG stream seeded from (search seed, round, slot) — never
// from the worker thread that happens to execute it — and candidate
// generation plus evaluation (the hot path) fan out across a ThreadPool.
// All search bookkeeping (incumbent best, victory-condition counter,
// annealing walk state) is applied on one thread, in slot order, at the
// round boundary, so the outcome is bit-identical at every thread count.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/Mapper.h"

#include "support/MathUtil.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

using namespace thistle;

namespace {

/// SplitMix64 finalizer, used to decorrelate the per-slot seeds.
std::uint64_t mix64(std::uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Seed of the RNG stream for trial slot \p Slot of round \p Round.
std::uint64_t slotSeed(std::uint64_t Seed, unsigned Round, unsigned Slot) {
  return Seed ^ mix64((static_cast<std::uint64_t>(Round) << 32) |
                      (static_cast<std::uint64_t>(Slot) + 1));
}

/// Samples a random but budget-aware mapping: per iterator, hierarchically
/// draws register / spatial / per-PE factors from divisors, capping the
/// spatial product at the PE count so that most samples are placeable.
Mapping sampleMapping(const Problem &Prob, const ArchConfig &Arch,
                      const DivisorTable &Divs, Rng &R) {
  Mapping Map;
  const unsigned NumIters = Prob.numIterators();
  Map.Factors.resize(NumIters);

  std::int64_t SpatialBudget = Arch.NumPEs;
  // Visit iterators in random order so no dimension hogs the PE budget.
  std::vector<unsigned> Order(NumIters);
  std::iota(Order.begin(), Order.end(), 0u);
  R.shuffle(Order);

  for (unsigned I : Order) {
    std::int64_t Extent = Prob.iterators()[I].Extent;
    // Register tile r | N.
    std::int64_t RegF = R.pick(Divs.of(Extent));
    std::int64_t Rest = Extent / RegF;
    // Spatial p | rest, capped by the remaining PE budget.
    std::vector<std::int64_t> SpatialChoices;
    for (std::int64_t D : Divs.of(Rest))
      if (D <= SpatialBudget)
        SpatialChoices.push_back(D);
    std::int64_t SpatF = R.pick(SpatialChoices);
    SpatialBudget /= SpatF;
    Rest /= SpatF;
    // Per-PE temporal q | rest; the DRAM level takes what remains.
    std::int64_t PeF = R.pick(Divs.of(Rest));
    std::int64_t DramF = Rest / PeF;

    Map.factor(I, TileLevel::Register) = RegF;
    Map.factor(I, TileLevel::Spatial) = SpatF;
    Map.factor(I, TileLevel::PeTemporal) = PeF;
    Map.factor(I, TileLevel::DramTemporal) = DramF;
  }

  Map.DramPerm.resize(NumIters);
  std::iota(Map.DramPerm.begin(), Map.DramPerm.end(), 0u);
  R.shuffle(Map.DramPerm);
  Map.PePerm = Map.DramPerm;
  R.shuffle(Map.PePerm);
  return Map;
}

/// Smallest prime factor of \p N (N >= 2).
std::int64_t smallestPrimeFactor(std::int64_t N) {
  assert(N >= 2 && "no prime factor of 1");
  for (std::int64_t P = 2; P * P <= N; ++P)
    if (N % P == 0)
      return P;
  return N;
}

/// One mutation draw: either moves one prime factor of one iterator
/// between two tiling levels, or swaps two entries of one permutation.
/// Returns false when the draw was a no-op (same level twice, factor
/// already 1, or a self-swap) and left \p Map unchanged.
bool tryMutateOnce(Mapping &Map, Rng &R) {
  const unsigned NumIters = Map.Factors.size();
  if (R.nextDouble() < 0.5) {
    unsigned I = R.nextIndex(NumIters);
    unsigned From = R.nextIndex(NumTileLevels);
    unsigned To = R.nextIndex(NumTileLevels);
    if (From == To || Map.Factors[I][From] <= 1)
      return false;
    std::int64_t P = smallestPrimeFactor(Map.Factors[I][From]);
    Map.Factors[I][From] /= P;
    Map.Factors[I][To] *= P;
    return true;
  }
  std::vector<unsigned> &Perm = R.nextDouble() < 0.5 ? Map.DramPerm
                                                     : Map.PePerm;
  if (Perm.size() < 2)
    return false;
  std::size_t A = R.nextIndex(Perm.size());
  std::size_t B = R.nextIndex(Perm.size());
  if (A == B)
    return false;
  std::swap(Perm[A], Perm[B]);
  return true;
}

/// Mutates \p Map, retrying no-op draws a bounded number of times.
/// Returns false if every draw was a no-op; the caller then skips the
/// trial — re-evaluating an unchanged candidate would waste the
/// evaluation and spuriously advance the victory-condition counter.
bool mutateMapping(Mapping &Map, Rng &R) {
  for (int Attempt = 0; Attempt < 8; ++Attempt)
    if (tryMutateOnce(Map, R))
      return true;
  return false;
}

/// What one trial slot produced. Filled in parallel, consumed in slot
/// order by the round-boundary reduction.
struct SlotOutcome {
  /// False when the slot was skipped (mutation no-op or invalid mutant).
  bool HasEval = false;
  Mapping Candidate;
  EvalResult Eval;
  double Obj = 0.0;
  /// Pre-drawn uniform used by the annealing acceptance test so the
  /// stream stays attached to the slot, not to the reduction.
  double AcceptDraw = 0.0;
};

} // namespace

MapperResult thistle::searchMappings(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const EnergyModel &Energy,
                                     const MapperOptions &Options) {
  MapperResult Result;
  double BestObj = 0.0;
  unsigned SinceImprovement = 0;

  // Annealing walks from a current point that may be worse than the
  // incumbent best.
  Mapping Current;
  double CurrentObj = 0.0;
  bool HaveCurrent = false;
  double Temperature = 0.0;

  // sampleMapping draws divisors of (divisors of) every extent up to
  // three times per iterator per trial; enumerate them once up front.
  DivisorTable Divs;
  for (const Iterator &It : Prob.iterators())
    Divs.populate(It.Extent);

  // Generates and evaluates one trial slot against the round-start search
  // state. Runs concurrently with other slots; reads of Result/Current are
  // safe because bookkeeping only mutates them between rounds.
  auto runSlot = [&](SlotOutcome &Out, unsigned Round, unsigned Slot) {
    Rng R(slotSeed(Options.Seed, Round, Slot));
    Mapping Candidate;
    bool Mutated = false;
    switch (Options.Strategy) {
    case MapperStrategy::RandomSampling:
      Candidate = sampleMapping(Prob, Arch, Divs, R);
      break;
    case MapperStrategy::HillClimb:
      // Exploit the incumbent half of the time once one exists.
      if (Result.Found && R.nextDouble() < 0.5) {
        Candidate = Result.Best;
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, Divs, R);
      }
      break;
    case MapperStrategy::Anneal:
      if (HaveCurrent) {
        Candidate = Current;
        Mutated = true;
      } else {
        Candidate = sampleMapping(Prob, Arch, Divs, R);
      }
      break;
    }
    if (Mutated && !mutateMapping(Candidate, R))
      return;
    if (Mutated && !Candidate.validate(Prob).empty())
      return;

    Out.Eval = evaluateMapping(Prob, Candidate, Arch, Energy);
    Out.Obj = Out.Eval.Legal ? objectiveValue(Out.Eval, Options.Objective)
                             : 0.0;
    Out.AcceptDraw = R.nextDouble();
    Out.Candidate = std::move(Candidate);
    Out.HasEval = true;
  };

  ThreadPool Pool(Options.Threads);
  const unsigned RoundSize = std::max(1u, Options.TrialsPerRound);
  std::vector<SlotOutcome> Slots;

  unsigned SlotsIssued = 0;
  bool Stop = false;
  for (unsigned Round = 0; !Stop && SlotsIssued < Options.MaxTrials;
       ++Round) {
    const unsigned Batch =
        std::min(RoundSize, Options.MaxTrials - SlotsIssued);
    Slots.assign(Batch, SlotOutcome());
    parallelFor(Pool, Batch, [&](std::size_t Slot, unsigned) {
      runSlot(Slots[Slot], Round, static_cast<unsigned>(Slot));
    });
    SlotsIssued += Batch;

    // Round-boundary reduction: all victory-condition and annealing
    // bookkeeping happens here, in slot order, on this thread. Slots past
    // a victory stop are discarded unseen, so Trials stays deterministic.
    for (unsigned Slot = 0; Slot < Batch && !Stop; ++Slot) {
      SlotOutcome &Out = Slots[Slot];
      if (!Out.HasEval)
        continue;
      ++Result.Trials;
      if (Options.Strategy == MapperStrategy::Anneal)
        Temperature *= Options.AnnealCooling;
      if (!Out.Eval.Legal) {
        ++SinceImprovement;
        if (SinceImprovement >= Options.VictoryCondition && Result.Found)
          Stop = true;
        continue;
      }
      ++Result.LegalTrials;

      // Annealing acceptance for the walk state.
      if (Options.Strategy == MapperStrategy::Anneal) {
        if (!HaveCurrent) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
          HaveCurrent = true;
          Temperature = Options.AnnealInitialTemp * Out.Obj;
        } else if (Out.Obj <= CurrentObj ||
                   (Temperature > 0.0 &&
                    Out.AcceptDraw <
                        std::exp((CurrentObj - Out.Obj) / Temperature))) {
          Current = Out.Candidate;
          CurrentObj = Out.Obj;
        }
      }

      if (!Result.Found || Out.Obj < BestObj) {
        Result.Found = true;
        Result.Best = std::move(Out.Candidate);
        Result.BestEval = std::move(Out.Eval);
        BestObj = Out.Obj;
        SinceImprovement = 0;
      } else if (++SinceImprovement >= Options.VictoryCondition) {
        Stop = true;
      }
    }
  }
  return Result;
}
