# End-to-end checks of the --network driver. Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECK=smoke|cache
#         [-DCHECKER=<check_run_report.py> -DPYTHON=<python3>]
#         -P CheckNetwork.cmake
#
#  smoke: a dataflow-mode resnet18 run resolves every layer, dedupes
#         repeated shapes, and writes a run report whose network section
#         validates against the thistle-run-report/1 schema.
#  cache: the GP solution cache is an accelerator, never a correctness
#         knob — THISTLE_CACHE=off must reproduce the cached run's
#         output byte for byte (modulo the cache-stats line itself).

set(NETWORK --network resnet18 --threads 2)

if(CHECK STREQUAL "smoke")
  set(REPORT ${WORK_DIR}/network-report.json)
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --trace-json ${REPORT}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "network run: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
  endif()
  # ResNet-18 has 21 conv instances collapsing to 12 unique shapes; the
  # dedup counts are part of the user-facing contract.
  if(NOT OUT MATCHES "network: 21 layers, 12 unique shapes")
    message(FATAL_ERROR "network run: wrong dedup summary\n${OUT}")
  endif()
  if(NOT OUT MATCHES "network totals:")
    message(FATAL_ERROR "network run: missing totals line\n${OUT}")
  endif()
  if(NOT OUT MATCHES "cache:")
    message(FATAL_ERROR "network run: missing cache-stats line\n${OUT}")
  endif()
  if(NOT EXISTS ${REPORT})
    message(FATAL_ERROR "network run: ${REPORT} was not written")
  endif()
  if(PYTHON)
    execute_process(
      COMMAND ${PYTHON} ${CHECKER} ${REPORT}
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR "schema check failed:\n${OUT}\n${ERR}")
    endif()
  else()
    file(READ ${REPORT} JSON)
    foreach(FIELD
        "\"schema\": \"thistle-run-report/1\"" "\"exit_code\": 0"
        "\"network\"" "\"layers_total\": 21" "\"unique_shapes\": 12"
        "\"cache_enabled\": true")
      if(NOT JSON MATCHES "${FIELD}")
        message(FATAL_ERROR "report missing ${FIELD}\n${JSON}")
      endif()
    endforeach()
  endif()

elseif(CHECK STREQUAL "cache")
  execute_process(
    COMMAND ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE CACHED_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "cached run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env THISTLE_CACHE=off ${TOOL} ${NETWORK}
    OUTPUT_VARIABLE PLAIN_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR
      "cache-off run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  # The cache-stats line only prints when the cache is on; everything
  # else must match byte for byte.
  string(REGEX REPLACE "cache:[^\n]*\n" "" CACHED_OUT "${CACHED_OUT}")
  string(REGEX REPLACE "cache:[^\n]*\n" "" PLAIN_OUT "${PLAIN_OUT}")
  if(NOT CACHED_OUT STREQUAL PLAIN_OUT)
    message(FATAL_ERROR
      "cache changed the results\n"
      "---- cached ----\n${CACHED_OUT}\n---- off ----\n${PLAIN_OUT}")
  endif()

else()
  message(FATAL_ERROR "unknown CHECK '${CHECK}'")
endif()
