//===- thistle/ServeEngine.h - Long-lived co-design service -----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request engine behind the `thistle-serve` daemon (docs/SERVING.md):
/// many concurrent connection threads feed newline-delimited
/// thistle-serve/1 JSON requests into handleLine(), which parses and
/// validates them, deduplicates identical in-flight queries onto one
/// solve, and blocks until the answer is ready. One dedicated solver
/// thread drains the FIFO admission queue over a shared durable
/// GpSolutionCache and a shared ThreadPool — serializing solves is what
/// keeps the cache's warm-tier generation discipline (and therefore the
/// bit-identity guarantee) intact while still using every core *within*
/// a solve.
///
/// The headline invariant: the same query returns a byte-identical
/// `report` whether the cache is cold, hot, reloaded from disk, or the
/// query raced with identical concurrent requests. It follows from the
/// exact-tier replay invariant of GpSolutionCache plus the single
/// solver thread; the one caveat (warm-start recovery can only improve
/// queries whose cold solve failed) is inherited from the cache and
/// documented in docs/SERVING.md.
///
/// Durable state follows thistle-opt's lifecycle: start() loads
/// `gpcache.snap` + `gpcache.journal` from the cache directory and
/// attaches the journal; every SnapshotEvery solves (and at shutdown)
/// the journal is compacted into a fresh atomic snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_THISTLE_SERVEENGINE_H
#define THISTLE_THISTLE_SERVEENGINE_H

#include "support/RunReport.h"
#include "support/Status.h"
#include "support/ThreadPool.h"
#include "thistle/GpCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace thistle {

/// Daemon-level configuration of the engine.
struct ServeOptions {
  /// Durable cache directory (empty = in-memory cache only). Uses the
  /// same `gpcache.{snap,journal}` artifacts as `thistle-opt
  /// --cache-dir`, so a sweep's results serve a later daemon and vice
  /// versa.
  std::string CacheDir;
  /// In-memory LRU bound on the exact tier (0 = unbounded).
  std::uint64_t CacheCapacity = 0;
  /// Shared worker-pool size for the solves (0 = one per hardware
  /// thread). Results are bit-identical at any size.
  unsigned Threads = 0;
  /// Compact the checkpoint journal into a snapshot every N solves
  /// (0 = only at shutdown). Compaction never loses entries; it folds
  /// the journal into one atomic snapshot, exactly as thistle-opt's
  /// clean-exit path does.
  unsigned SnapshotEvery = 0;
};

/// Lifetime totals of one engine (the `serve` run-report section).
struct ServeStats {
  std::uint64_t Requests = 0;
  std::uint64_t Queries = 0;
  std::uint64_t Errors = 0;
  std::uint64_t Deduplicated = 0;
  std::uint64_t Solves = 0;
  std::uint64_t CacheHits = 0, CacheMisses = 0, CacheWarmStarts = 0;
  std::uint64_t CacheEvictions = 0;
  std::uint64_t Compactions = 0;
};

/// The request engine. Thread-safe: handleLine may be called from any
/// number of connection threads concurrently.
class ServeEngine {
public:
  /// Opaque admitted-query record; defined in ServeEngine.cpp (public
  /// so the file-local request parser there can populate one).
  struct SolveJob;

  explicit ServeEngine(ServeOptions Options);
  ~ServeEngine();
  ServeEngine(const ServeEngine &) = delete;
  ServeEngine &operator=(const ServeEngine &) = delete;

  /// Loads durable state and starts the solver thread. A cache
  /// directory that cannot be created is the only hard error; damaged
  /// artifacts degrade to a cold start and are reported in the
  /// persistence section.
  Status start();

  /// Drains queued jobs, stops the solver thread and runs the final
  /// journal compaction. Idempotent; also called by the destructor.
  void shutdown();

  /// Handles one request line end to end and returns the single-line
  /// thistle-serve/1 response (no trailing newline). Malformed input
  /// yields an error response, never a crash or disconnect. Blocks
  /// until the query's solve (or the in-flight solve it joined)
  /// completes.
  std::string handleLine(const std::string &Line);

  /// True once a {"cmd":"shutdown"} request was accepted; the daemon's
  /// accept loop polls this.
  bool shutdownRequested() const { return ShutdownFlag.load(); }

  ServeStats stats() const;

  /// Fills the serve and persistence sections of the daemon's shutdown
  /// run report. Call after shutdown() so the final compaction is
  /// reflected.
  void fillReport(RunReport &RR) const;

  /// Test hook: while held, the solver thread does not pick up jobs, so
  /// a test can pile concurrent identical requests onto one in-flight
  /// job deterministically before releasing.
  void setHoldForTest(bool Hold);
  /// Test hook: jobs admitted but not yet picked up by the solver.
  std::size_t queuedForTest() const;

private:
  void solverLoop();
  void runJob(SolveJob &Job);

  ServeOptions Opts;
  GpSolutionCache Cache;
  ThreadPool Pool;
  TechParams Tech;

  bool Persist = false;
  std::string SnapPath, JournalPath;
  GpCachePersistStats LoadStats;
  bool SnapshotWritten = false;

  mutable std::mutex JobsMutex;
  std::unordered_map<std::string, std::shared_ptr<SolveJob>> InFlight;
  std::deque<std::shared_ptr<SolveJob>> Queue;
  std::condition_variable QueueCv;
  bool Stop = false;
  bool Hold = false;
  bool Started = false;
  bool Finished = false;
  std::thread Solver;

  std::atomic<bool> ShutdownFlag{false};
  std::atomic<std::uint64_t> Requests{0}, Queries{0}, Errors{0};
  std::atomic<std::uint64_t> Deduplicated{0}, Solves{0}, Compactions{0};
};

} // namespace thistle

#endif // THISTLE_THISTLE_SERVEENGINE_H
