//===- multilevel/Hierarchy.h - Arbitrary-depth memory hierarchies -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's representation and Algorithm 1 "allow an arbitrary number
/// of tiling levels and arbitrary permutations at each level" (section
/// III-A); the evaluation only exercises the classic 3-memory
/// register/SRAM/DRAM machine. This module generalizes the whole
/// pipeline — analytical counting, brute-force oracle, GP generation and
/// rounding — to hierarchies of any depth, e.g. adding a per-PE
/// scratchpad between the register file and the shared SRAM.
///
/// A Hierarchy is a stack of temporal memory levels, inner to outer
/// (level 0 = per-PE registers, last level = backing DRAM), with one
/// spatial PE fan-out between two adjacent levels: levels below
/// FanoutLevel are private to a PE, levels at or above it are shared.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_HIERARCHY_H
#define THISTLE_MULTILEVEL_HIERARCHY_H

#include "model/TechModel.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// One memory level of a hierarchy.
struct HierarchyLevel {
  std::string Name;
  /// Capacity in words (per PE for private levels, total for shared
  /// ones). Ignored for the outermost level (backing store).
  std::int64_t CapacityWords = 0;
  /// Per-access energy in pJ.
  double AccessEnergyPj = 0.0;
  /// Bandwidth in words/cycle per instance (per PE for private levels).
  double Bandwidth = 1.0;
};

/// An L-level memory hierarchy with a PE fan-out.
struct Hierarchy {
  /// Levels inner to outer; size() >= 2.
  std::vector<HierarchyLevel> Levels;
  /// Index of the first *shared* level; levels below are per-PE.
  /// Must satisfy 1 <= FanoutLevel <= Levels.size() - 1.
  unsigned FanoutLevel = 1;
  std::int64_t NumPEs = 1;
  /// Energy per MAC operation (pJ), excluding register accesses.
  double MacEnergyPj = 0.0;

  unsigned numLevels() const { return Levels.size(); }
  /// Number of adjacent-level traffic boundaries (= numLevels() - 1).
  unsigned numBoundaries() const { return Levels.size() - 1; }

  /// Returns an empty string if the hierarchy is well-formed.
  std::string validate() const;

  /// Silicon area under the Eq. 5 linear model generalized to depth:
  /// level 0 is priced per register word, intermediate levels per SRAM
  /// word (per-PE levels pay once per PE), the outermost level is free.
  double areaUm2(const TechParams &Tech) const;

  /// The classic paper machine as a 3-level hierarchy: per-PE register
  /// file, shared SRAM, DRAM, with Eq. 4 access energies. Equivalent to
  /// an ArchConfig — this is the default instantiation the fixed-depth
  /// nestmodel/ and sim/ layers wrap the generic engine with.
  static Hierarchy classic3Level(const ArchConfig &Arch,
                                 const TechParams &Tech);

  /// The classic 3-level *structure* only (placeholder capacities,
  /// energies and bandwidths): enough for pure traffic analysis, where
  /// just the depth and the fan-out position matter.
  static Hierarchy classic3Shape();

  /// A 4-level variant of \p Arch: the same register file and DRAM, with
  /// the shared SRAM split into a per-PE scratchpad of \p SpadWords plus
  /// a shared SRAM of \p SramWords, each priced by Eq. 4.
  static Hierarchy withScratchpad(const ArchConfig &Arch,
                                  const TechParams &Tech,
                                  std::int64_t SpadWords,
                                  std::int64_t SramWords);
};

/// Parses a textual machine description into a Hierarchy. Line-oriented,
/// '#' comments, levels inner to outer:
///
///   pes 256
///   mac-pj 2.2
///   fanout 1
///   level RegisterFile 64 0.58 1e9     # name capacity access-pj bandwidth
///   level SRAM 16384 8.3 160
///   level DRAM - 128.0 16              # '-' = unbounded (outermost)
///
/// Returns the parsed hierarchy, or a ParseError Status with a
/// line-numbered message on malformed input: unknown keys, missing or
/// trailing fields, malformed or non-positive integers, duplicate level
/// names, an unbounded capacity ('-') anywhere but the outermost level,
/// or a hierarchy that fails validate().
Expected<Hierarchy> parseHierarchy(const std::string &Text);

/// Bool-and-string wrapper around the Expected overload, kept for
/// existing call sites. Returns false and sets \p Error on failure.
bool parseHierarchy(const std::string &Text, Hierarchy &Out,
                    std::string &Error);

} // namespace thistle

#endif // THISTLE_MULTILEVEL_HIERARCHY_H
