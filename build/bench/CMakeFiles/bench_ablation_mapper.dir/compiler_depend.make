# Empty compiler generated dependencies file for bench_ablation_mapper.
# This may be replaced when dependencies are built.
