# Empty compiler generated dependencies file for bench_fig5_codesign_energy.
# This may be replaced when dependencies are built.
