//===- support/Persist.h - Crash-safe durable-state layer -------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable-state layer under the GP solution cache and the shardable
/// network sweeps (docs/PERSISTENCE.md). Two file formats share one
/// versioned magic (`thistle-snapshot/1`) and one integrity discipline:
/// every payload is CRC32-checksummed and length-framed, so a torn,
/// truncated or bit-flipped file is *detected and reported* — never a
/// crash, never a silently wrong answer.
///
///  - *Snapshot* files hold one whole-state payload and are written
///    atomically: the bytes go to a temporary sibling which is renamed
///    over the target, so a reader never observes a half-written
///    snapshot (POSIX rename atomicity).
///  - *Journal* files are append-only sequences of framed records, one
///    fflush per append, so state persists at record granularity across
///    SIGKILL. A torn or corrupt tail is dropped and the intact prefix
///    kept (readJournalFile reports what was lost).
///
/// Load errors use the Expected<T>/Status taxonomy: NotFound for a
/// missing file, ParseError for an unrecognized header, DataLoss for a
/// truncated payload or CRC mismatch. Callers degrade to a cold start
/// and surface the diagnostic (run report + stderr), per the robustness
/// contract in docs/ROBUSTNESS.md.
///
/// Fault-injection sites (THISTLE_FAULT, docs/ROBUSTNESS.md), keyed by
/// artifact so tests can target one path:
///   persist.write-fail   key 0: snapshot write fails; key 1: journal
///                        append fails (simulated full disk)
///   persist.torn-write   the payload is truncated mid-write (simulated
///                        crash without the atomic rename protecting it)
///   persist.corrupt-crc  one payload byte is flipped after the CRC was
///                        computed (simulated media corruption)
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_PERSIST_H
#define THISTLE_SUPPORT_PERSIST_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace thistle {
namespace persist {

/// Version magic shared by both file formats; bumped on any
/// incompatible layout change (a reader rejects unknown versions as
/// ParseError rather than guessing).
inline constexpr const char *SnapshotMagic = "thistle-snapshot/1";

/// CRC-32 (IEEE 802.3, reflected). crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(const void *Data, std::size_t Size,
                    std::uint32_t Seed = 0);

/// Append-only binary payload builder. Integers are little-endian
/// fixed-width; doubles are serialized as their IEEE-754 bit pattern so
/// a round trip is bit-exact (including negative zero, infinities and
/// NaN payloads); strings are u64-length-prefixed.
class Encoder {
public:
  void putU32(std::uint32_t V);
  void putU64(std::uint64_t V);
  void putI64(std::int64_t V);
  void putBool(bool V) { putU32(V ? 1 : 0); }
  void putDouble(double V);
  void putString(std::string_view S);

  const std::string &bytes() const { return Buf; }
  std::string takeBytes() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over an Encoder payload. Any underrun or
/// malformed field latches failed(); subsequent gets return false
/// without touching their output, so decode loops can bail once at the
/// end instead of checking every field.
class Decoder {
public:
  explicit Decoder(std::string_view Bytes) : Data(Bytes) {}

  bool getU32(std::uint32_t &Out);
  bool getU64(std::uint64_t &Out);
  bool getI64(std::int64_t &Out);
  bool getBool(bool &Out);
  bool getDouble(double &Out);
  bool getString(std::string &Out);

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos == Data.size(); }
  std::size_t remaining() const { return Data.size() - Pos; }

private:
  bool take(std::size_t N, const char *&Out);

  std::string_view Data;
  std::size_t Pos = 0;
  bool Failed = false;
};

/// Writes `<magic> snap <kind> <size> <crc>\n<payload>` to \p Path via
/// a write-temp-then-rename so the target is replaced atomically.
/// DataLoss on I/O failure (the temporary is cleaned up; the previous
/// snapshot, if any, is left untouched).
Status writeSnapshotFile(const std::string &Path, const std::string &Kind,
                         const std::string &Payload);

/// Reads and verifies a snapshot written by writeSnapshotFile. NotFound
/// when the file does not exist; ParseError on an unrecognized header
/// or mismatched \p Kind; DataLoss on a truncated payload or CRC
/// mismatch. On success the payload bytes are returned verbatim.
Expected<std::string> readSnapshotFile(const std::string &Path,
                                       const std::string &Kind);

/// Append-only record journal: `<magic> journal <kind>\n` followed by
/// `rec <size> <crc>\n<payload>\n` frames. Each append is flushed to
/// the kernel before returning, so a record survives SIGKILL of the
/// writer (full power-loss durability would need fsync; the crash
/// model here is process death).
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens \p Path for appending, writing the header first when the
  /// file is new or empty. DataLoss when the file cannot be opened.
  Status open(const std::string &Path, const std::string &Kind);

  /// Appends one framed record and flushes. DataLoss on a short or
  /// failed write (the journal stays open; a torn frame is detected
  /// and dropped by the reader).
  Status append(const std::string &Payload);

  void close();
  bool isOpen() const { return File != nullptr; }

private:
  std::FILE *File = nullptr;
};

/// What readJournalFile recovered.
struct JournalContents {
  std::vector<std::string> Records; ///< Intact records, append order.
  /// True when a torn or corrupt tail was dropped; Problem then
  /// describes the damage and where the intact prefix ends.
  bool Truncated = false;
  std::string Problem;
};

/// Reads every intact record of a journal. A torn/corrupt tail is not
/// an error — the prefix is returned with Truncated set — because a
/// journal interrupted by SIGKILL is the format working as designed.
/// NotFound / ParseError follow readSnapshotFile's conventions.
Expected<JournalContents> readJournalFile(const std::string &Path,
                                          const std::string &Kind);

/// Small filesystem helpers shared by the persistence callers.
bool fileExists(const std::string &Path);
Status createDirectories(const std::string &Path);
Status removeFile(const std::string &Path);
/// Regular files in \p Dir whose name starts with \p Prefix and ends
/// with \p Suffix, sorted by name; empty on a missing directory.
std::vector<std::string> listFiles(const std::string &Dir,
                                   const std::string &Prefix,
                                   const std::string &Suffix);

} // namespace persist
} // namespace thistle

#endif // THISTLE_SUPPORT_PERSIST_H
