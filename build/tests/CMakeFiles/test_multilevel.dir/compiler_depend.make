# Empty compiler generated dependencies file for test_multilevel.
# This may be replaced when dependencies are built.
