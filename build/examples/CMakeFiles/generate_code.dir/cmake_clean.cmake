file(REMOVE_RECURSE
  "CMakeFiles/generate_code.dir/generate_code.cpp.o"
  "CMakeFiles/generate_code.dir/generate_code.cpp.o.d"
  "generate_code"
  "generate_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
