//===- examples/mapper_search.cpp - Search baseline vs Thistle ------------===//
//
// Uses the library's search-based Mapper (the Timeloop-Mapper stand-in of
// Figs. 4 and 7) directly on one Yolo-9000 layer and compares it against
// Thistle's single-shot optimization, for both objectives.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Mapper.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

int main() {
  ConvLayer Layer = yolo9000Layers()[6]; // 512x256x34x34, 3x3.
  Problem Prob = makeConvProblem(Layer);
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  EnergyModel Energy(Tech);

  std::printf("layer %s on Eyeriss\n\n", Layer.Name.c_str());

  for (SearchObjective Obj :
       {SearchObjective::Energy, SearchObjective::Delay}) {
    const char *Name = Obj == SearchObjective::Energy ? "energy" : "delay";

    MapperOptions MOpts;
    MOpts.Objective = Obj;
    MOpts.MaxTrials = 20000;
    MOpts.VictoryCondition = 4000;
    MapperResult M = searchMappings(Prob, Arch, Energy, MOpts);

    ThistleOptions TOpts;
    TOpts.Objective = Obj;
    ThistleResult T = optimizeLayer(Prob, Arch, Tech, TOpts);

    std::printf("--- objective: %s ---\n", Name);
    if (M.Found)
      std::printf("mapper:  %8.2f pJ/MAC, IPC %7.1f  (%u trials, %u "
                  "legal)\n",
                  M.BestEval.EnergyPerMacPj, M.BestEval.MacIpc, M.Trials,
                  M.LegalTrials);
    else
      std::printf("mapper: no legal mapping found\n");
    if (T.Found)
      std::printf("thistle: %8.2f pJ/MAC, IPC %7.1f  (%u GP solves, %u "
                  "Newton iters)\n",
                  T.Eval.EnergyPerMacPj, T.Eval.MacIpc,
                  T.Stats.PairsSolved, T.Stats.NewtonIterations);
    else
      std::printf("thistle: no legal design found\n");
    if (M.Found && T.Found) {
      if (Obj == SearchObjective::Energy)
        std::printf("EnergyUp (mapper/thistle): %.3f\n",
                    M.BestEval.EnergyPj / T.Eval.EnergyPj);
      else
        std::printf("SpeedUp (thistle IPC / mapper IPC): %.3f\n",
                    T.Eval.MacIpc / M.BestEval.MacIpc);
    }
    std::printf("\n");
  }
  return 0;
}
