# CMake generated Testfile for 
# Source directory: /root/repo/src/thistle
# Build directory: /root/repo/build/src/thistle
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
