//===- examples/matmul_codesign.cpp - The Section II walkthrough ----------===//
//
// Reproduces the paper's illustrative matrix-multiplication example
// (Section II): generates the symbolic data-volume expressions of
// Eq. 1 / Eq. 2 with Algorithm 1, prints them in the paper's notation,
// then solves the architecture-dataflow co-design problem of Eq. 5 for a
// 1024^3 matmul under the Eyeriss area budget.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "thistle/ExprGen.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

int main() {
  const std::int64_t N = 1024;
  Problem Prob = makeMatmulProblem(N, N, N);

  // ---- Symbolic modeling (Section II / Section III-A).
  VarTable Vars;
  ExprGen EG(Prob, Vars);
  unsigned Ii = Prob.iteratorIndex("i"), Ij = Prob.iteratorIndex("j"),
           Ik = Prob.iteratorIndex("k");
  // The paper's Fig. 1 permutations: SRAM-level <i, k, j> (iki in the
  // paper's outer-to-inner shorthand), register-level <i, j, k>.
  std::vector<unsigned> DramPerm = {Ii, Ik, Ij};
  std::vector<unsigned> PePerm = {Ii, Ij, Ik};

  std::printf("Symbolic data volumes for C[i][j] += A[i][k]*B[k][j]\n");
  std::printf("(DRAM-level loops <i,k,j>, register-level loops <i,j,k>;\n");
  std::printf(" trip-count variables: s_* DRAM, p_* spatial, q_* per-PE,\n");
  std::printf(" r_* register; read-write tensors carry the factor 2)\n\n");
  for (unsigned TI = 0; TI < Prob.tensors().size(); ++TI) {
    TensorSymbolicModel M = EG.buildTensorModel(TI, PePerm, DramPerm);
    const char *Name = Prob.tensors()[TI].Name.c_str();
    std::printf("%s:\n", Name);
    std::printf("  DF^0 (register tile)  = %s\n",
                M.RegFootprint.toString(Vars).c_str());
    std::printf("  DF^2 (SRAM tile)      = %s\n",
                M.SramFootprint.toString(Vars).c_str());
    std::printf("  DV (SRAM <-> regs)    = %s\n",
                M.DvSramReg.toString(Vars).c_str());
    std::printf("  DV (DRAM <-> SRAM)    = %s\n\n",
                M.DvDram.toString(Vars).c_str());
  }

  // ---- Co-design optimization (Eq. 5) at the Eyeriss area budget.
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions Opts;
  Opts.Mode = DesignMode::CoDesign;
  Opts.UntiledIterNames = {}; // Matmul has no stencil dimensions.
  ThistleResult R =
      optimizeLayer(Prob, eyerissArch(), Tech, Opts, eyerissAreaUm2(Tech));
  if (!R.Found) {
    std::printf("co-design found no legal point\n");
    return 1;
  }
  std::printf("Co-design for %lld^3 matmul at %.2f mm^2:\n",
              static_cast<long long>(N), eyerissAreaUm2(Tech) * 1e-6);
  std::printf("  P=%lld PEs, R=%lld regs/PE, S=%lld SRAM words\n",
              static_cast<long long>(R.Arch.NumPEs),
              static_cast<long long>(R.Arch.RegWordsPerPE),
              static_cast<long long>(R.Arch.SramWords));
  std::printf("  energy %.3f pJ/MAC, IPC %.1f\n", R.Eval.EnergyPerMacPj,
              R.Eval.MacIpc);
  std::printf("  permutation classes per level: %u (of %u raw perms)\n",
              R.Stats.PermClassesPerLevel, R.Stats.RawPermsPerLevel);
  std::printf("%s", R.Map.toString(Prob).c_str());
  return 0;
}
