file(REMOVE_RECURSE
  "libthistle_ir.a"
)
