//===- nestmodel/CostEvaluator.cpp - Pluggable evaluator backends ---------===//
//
// Interface plumbing only: the nest backend delegates to the existing
// analyzeMultiNest walk and the shared priceMultiProfile pricing, so the
// default path computes exactly what evaluateMultiMapping always did.
// The registry is a function-local static map (no static-initialization
// order hazards in the static-library build) seeded with the two in-tree
// backends on first use.
//
//===----------------------------------------------------------------------===//

#include "nestmodel/CostEvaluator.h"

#include "nestmodel/MaestroModel.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

using namespace thistle;

CostEvaluator::~CostEvaluator() = default;

MultiEvalResult CostEvaluator::evaluate(const Problem &Prob,
                                        const Hierarchy &H,
                                        const MultiMapping &Map) const {
  if (telemetry::metricsEnabled())
    telemetry::count("thistle.evaluator.evals");
  return priceMultiProfile(Prob, H, profile(Prob, H, Map));
}

MultiProfile NestCostEvaluator::profile(const Problem &Prob,
                                        const Hierarchy &H,
                                        const MultiMapping &Map) const {
  return analyzeMultiNest(Prob, H, Map);
}

const CostEvaluator &thistle::nestCostEvaluator() {
  static const NestCostEvaluator Nest;
  return Nest;
}

namespace {

struct Registry {
  std::mutex Mutex;
  std::map<std::string, const CostEvaluator *> Backends;
};

Registry &registry() {
  // Registry holds a mutex and cannot be moved out of a factory lambda;
  // seed it in place under the thread-safe static initialization of a
  // companion flag.
  static Registry R;
  static const bool Seeded = [] {
    R.Backends["nest"] = &nestCostEvaluator();
    R.Backends["maestro"] = &maestroCostEvaluator();
    return true;
  }();
  (void)Seeded;
  return R;
}

} // namespace

const CostEvaluator *thistle::costEvaluator(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Backends.find(Name);
  return It == R.Backends.end() ? nullptr : It->second;
}

void thistle::registerCostEvaluator(const std::string &Name,
                                    const CostEvaluator *Backend) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Backends[Name] = Backend;
}

std::vector<std::string> thistle::costEvaluatorNames() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Names;
  for (const auto &[Name, Backend] : R.Backends)
    Names.push_back(Name);
  return Names; // std::map iterates sorted.
}

namespace {

/// Folds one counter pair into \p Div.
void foldCounter(ProfileDivergence &Div, std::string Counter,
                 std::int64_t Primary, std::int64_t Reference) {
  ++Div.CountersCompared;
  if (Primary == Reference)
    return;
  ++Div.CounterMismatches;
  double Abs = std::abs(static_cast<double>(Primary) -
                        static_cast<double>(Reference));
  double Rel = Abs / std::max(1.0, std::abs(static_cast<double>(Reference)));
  Div.MaxAbsDelta = std::max(Div.MaxAbsDelta, Abs);
  Div.MaxRelDelta = std::max(Div.MaxRelDelta, Rel);
  if (Div.Samples.size() < ProfileDivergence::MaxSamples)
    Div.Samples.push_back({std::move(Counter), Primary, Reference});
}

} // namespace

ProfileDivergence thistle::compareProfiles(const Problem &Prob,
                                           const Hierarchy &H,
                                           const MultiProfile &Primary,
                                           const MultiProfile &Reference) {
  ProfileDivergence Div;
  for (unsigned B = 0; B < H.numBoundaries(); ++B)
    for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI)
      foldCounter(Div,
                  "words[b" + std::to_string(B) + "][" +
                      Prob.tensors()[TI].Name + "]",
                  Primary.Words[B][TI], Reference.Words[B][TI]);
  for (unsigned Lv = 0; Lv < H.numLevels(); ++Lv)
    foldCounter(Div, "occupancy[" + H.Levels[Lv].Name + "]",
                Primary.Occupancy[Lv], Reference.Occupancy[Lv]);
  foldCounter(Div, "pes_used", Primary.PEsUsed, Reference.PEsUsed);
  return Div;
}

MultiProfile CrossCheckEvaluator::profile(const Problem &Prob,
                                          const Hierarchy &H,
                                          const MultiMapping &Map) const {
  MultiProfile Out = Primary.profile(Prob, H, Map);
  ProfileDivergence Div =
      compareProfiles(Prob, H, Out, Reference.profile(Prob, H, Map));
  if (Div.diverged() && telemetry::metricsEnabled())
    telemetry::count("thistle.evaluator.divergences");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Evals;
    if (Div.diverged())
      ++Stats.DivergentEvals;
    Stats.CountersCompared += Div.CountersCompared;
    Stats.CounterMismatches += Div.CounterMismatches;
    Stats.MaxAbsDelta = std::max(Stats.MaxAbsDelta, Div.MaxAbsDelta);
    Stats.MaxRelDelta = std::max(Stats.MaxRelDelta, Div.MaxRelDelta);
    for (DivergenceSample &S : Div.Samples) {
      if (Stats.Samples.size() >= ProfileDivergence::MaxSamples)
        break;
      Stats.Samples.push_back(std::move(S));
    }
  }
  return Out;
}

CrossCheckStats CrossCheckEvaluator::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}
