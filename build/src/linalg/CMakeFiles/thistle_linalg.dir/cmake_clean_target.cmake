file(REMOVE_RECURSE
  "libthistle_linalg.a"
)
