# Empty compiler generated dependencies file for thistle_support.
# This may be replaced when dependencies are built.
