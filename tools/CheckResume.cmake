# End-to-end checks of crash-safe persistence: kill-and-resume and
# shard-and-merge sweeps must reproduce the uninterrupted single-process
# run byte for byte. Invoked by ctest as:
#   cmake -DTOOL=<thistle-opt> -DWORK_DIR=<dir> -DCHECK=resume|shards
#         [-DCHECKER=<check_run_report.py> -DPYTHON=<python3>]
#         -P CheckResume.cmake
#
#  resume: run a sweep with --cache-dir, SIGKILL it mid-flight, resume
#          with --resume, and require the resumed run's output and run
#          report to match an uninterrupted run (persistence accounting
#          lines aside).
#  shards: split the same sweep across 4 --shard runs, recombine with
#          --merge-shards, and require the merged run to match a plain
#          single-process run with every task replayed from checkpoints.

set(NETWORK --network resnet18 --threads 2)

# Strips the accounting that legitimately differs between a cold, warm
# and resumed run: cache statistics, persistence progress lines, and the
# run-report path notice (the reports live in different files). The
# patterns are anchored to line starts via a sentinel newline — a cache
# *directory* named ".../foo-cache" must not trip the "cache:" match.
function(strip_accounting VAR TEXT)
  string(REGEX REPLACE "\n(cache: |persist: |run report written to )[^\n]*"
    "" TEXT "\n${TEXT}")
  string(REGEX REPLACE "^\n" "" TEXT "${TEXT}")
  set(${VAR} "${TEXT}" PARENT_SCOPE)
endfunction()

# Canonicalizes a run report (drops timing/telemetry/persistence
# sections) and returns it; fails the test on schema violations.
function(canonical_report VAR REPORT)
  execute_process(
    COMMAND ${PYTHON} ${CHECKER} --canonical ${REPORT}
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "schema check failed on ${REPORT}:\n${OUT}\n${ERR}")
  endif()
  set(${VAR} "${OUT}" PARENT_SCOPE)
endfunction()

if(CHECK STREQUAL "resume")
  set(DIR ${WORK_DIR}/resume-cache)
  file(REMOVE_RECURSE ${DIR})

  # 1. The uninterrupted baseline (no durable cache).
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --trace-json ${WORK_DIR}/resume-base.json
    OUTPUT_VARIABLE BASE_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "baseline run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()

  # 2. Start the same sweep with a checkpoint directory and SIGKILL it
  #    mid-flight. If the machine is fast enough to finish before the
  #    kill lands the resume below simply replays everything — still a
  #    valid (if weaker) check, so no assertion on the kill itself.
  execute_process(
    COMMAND sh -c "'${TOOL}' --network resnet18 --threads 2 \
--cache-dir '${DIR}' >/dev/null 2>&1 & PID=$!; sleep 0.8; \
kill -9 $PID 2>/dev/null; wait $PID; exit 0"
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "kill harness failed with '${CODE}'")
  endif()

  # 3. Resume. The checkpointed tasks replay as exact cache hits; the
  #    rest solve cold. The result must match the baseline byte for
  #    byte.
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --resume ${DIR}
            --trace-json ${WORK_DIR}/resume-resumed.json
    OUTPUT_VARIABLE RESUMED_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "resumed run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  if(NOT RESUMED_OUT MATCHES "persist: ")
    message(FATAL_ERROR "resumed run: no persistence accounting\n${RESUMED_OUT}")
  endif()
  strip_accounting(BASE_OUT "${BASE_OUT}")
  strip_accounting(RESUMED_OUT "${RESUMED_OUT}")
  if(NOT BASE_OUT STREQUAL RESUMED_OUT)
    message(FATAL_ERROR
      "resume changed the results\n"
      "---- uninterrupted ----\n${BASE_OUT}\n---- resumed ----\n${RESUMED_OUT}")
  endif()

  # 4. Clean exit compacted the journal into a snapshot.
  if(NOT EXISTS ${DIR}/gpcache.snap)
    message(FATAL_ERROR "resumed run: no compacted snapshot in ${DIR}")
  endif()
  if(EXISTS ${DIR}/gpcache.journal)
    message(FATAL_ERROR "resumed run: journal survived compaction in ${DIR}")
  endif()

  # 5. The run reports agree on everything but timing and the
  #    persistence accounting itself.
  if(PYTHON)
    canonical_report(BASE_JSON ${WORK_DIR}/resume-base.json)
    canonical_report(RESUMED_JSON ${WORK_DIR}/resume-resumed.json)
    if(NOT BASE_JSON STREQUAL RESUMED_JSON)
      message(FATAL_ERROR
        "resume changed the run report\n"
        "---- uninterrupted ----\n${BASE_JSON}\n"
        "---- resumed ----\n${RESUMED_JSON}")
    endif()
  endif()

elseif(CHECK STREQUAL "shards")
  set(DIR ${WORK_DIR}/shard-cache)
  file(REMOVE_RECURSE ${DIR})

  # 1. The single-process baseline.
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --trace-json ${WORK_DIR}/shard-base.json
    OUTPUT_VARIABLE BASE_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "baseline run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()

  # 2. Four shards, each solving a quarter of the task grid into its own
  #    checkpoint segment.
  foreach(I RANGE 1 4)
    execute_process(
      COMMAND ${TOOL} ${NETWORK} --cache-dir ${DIR} --shard ${I}/4
      OUTPUT_VARIABLE OUT
      ERROR_VARIABLE ERR
      RESULT_VARIABLE CODE)
    if(NOT CODE EQUAL 0)
      message(FATAL_ERROR
        "shard ${I}/4: expected exit 0, got '${CODE}'\n${OUT}\n${ERR}")
    endif()
    if(NOT EXISTS ${DIR}/shard-${I}-of-4.snap)
      message(FATAL_ERROR "shard ${I}/4 left no checkpoint segment")
    endif()
  endforeach()

  # 3. Merge. Every task must replay from a shard segment — zero misses
  #    — and reproduce the single-process run byte for byte.
  execute_process(
    COMMAND ${TOOL} ${NETWORK} --cache-dir ${DIR} --merge-shards
            --trace-json ${WORK_DIR}/shard-merge.json
    OUTPUT_VARIABLE MERGE_OUT
    ERROR_VARIABLE ERR
    RESULT_VARIABLE CODE)
  if(NOT CODE EQUAL 0)
    message(FATAL_ERROR "merge run: expected exit 0, got '${CODE}'\n${ERR}")
  endif()
  if(NOT MERGE_OUT MATCHES ", 0 misses")
    message(FATAL_ERROR
      "merge run re-solved tasks the shards already checkpointed\n${MERGE_OUT}")
  endif()
  strip_accounting(BASE_OUT "${BASE_OUT}")
  strip_accounting(MERGE_OUT "${MERGE_OUT}")
  if(NOT BASE_OUT STREQUAL MERGE_OUT)
    message(FATAL_ERROR
      "merge changed the results\n"
      "---- single-process ----\n${BASE_OUT}\n---- merged ----\n${MERGE_OUT}")
  endif()

  # 4. The merge compacted everything into one snapshot and retired the
  #    per-shard segments.
  if(NOT EXISTS ${DIR}/gpcache.snap)
    message(FATAL_ERROR "merge run: no compacted snapshot in ${DIR}")
  endif()
  file(GLOB LEFTOVER ${DIR}/shard-*.snap ${DIR}/shard-*.journal)
  if(LEFTOVER)
    message(FATAL_ERROR "merge run left shard segments behind: ${LEFTOVER}")
  endif()

  if(PYTHON)
    canonical_report(BASE_JSON ${WORK_DIR}/shard-base.json)
    canonical_report(MERGE_JSON ${WORK_DIR}/shard-merge.json)
    if(NOT BASE_JSON STREQUAL MERGE_JSON)
      message(FATAL_ERROR
        "merge changed the run report\n"
        "---- single-process ----\n${BASE_JSON}\n---- merged ----\n${MERGE_JSON}")
    endif()
  endif()

else()
  message(FATAL_ERROR "unknown CHECK '${CHECK}'")
endif()
