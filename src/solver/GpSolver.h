//===- solver/GpSolver.h - Interior-point GP solver -------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves geometric programs by the standard convex transformation: with
/// x = exp(y), a posynomial constraint f(x) <= 1 becomes the convex
/// log-sum-exp constraint log f(exp y) <= 0 and a monomial equality
/// becomes an affine equality in y. The affine equalities are eliminated
/// by parameterizing y = y0 + Z z over the null space Z, and the reduced
/// problem is solved with a primal barrier (interior-point) method:
/// phase I finds a strictly feasible point by minimizing the maximum
/// constraint value; phase II follows the central path with damped Newton
/// steps. This module replaces the paper's CVXPY dependency.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SOLVER_GPSOLVER_H
#define THISTLE_SOLVER_GPSOLVER_H

#include "solver/GpProblem.h"

#include <limits>
#include <string>
#include <vector>

namespace thistle {

/// Interior-point configuration.
struct GpSolverOptions {
  /// Barrier gap tolerance: iterate until NumConstraints / t < Tolerance
  /// (absolute tolerance on the log-space objective).
  double Tolerance = 1e-7;
  double TInitial = 1.0;    ///< Initial barrier weight.
  double TMultiplier = 20.0; ///< Barrier weight growth per outer step.
  unsigned MaxNewtonIters = 250; ///< Per centering step.
  unsigned MaxOuterIters = 50;
  /// Deterministic perturbation of the reduced-space start point
  /// (z_i += StartPerturbation * sin(i+1)); the retry ladder uses it to
  /// escape a bad phase-I trajectory. 0 keeps the classic zero start.
  double StartPerturbation = 0.0;
  /// Internal rescaling of the objective before the log transform
  /// (minimizes f/ObjectiveScale; same argmin, better-conditioned
  /// offsets for huge coefficient spreads). The reported Objective is
  /// always evaluated on the original posynomial.
  double ObjectiveScale = 1.0;
  /// Retry-ladder length (including the first attempt) used by
  /// solveGpWithRetry on retriable failures.
  unsigned MaxSolveAttempts = 3;
  /// Optional warm-start point in x-space (one value per GP variable,
  /// all strictly positive and finite). When its size matches the
  /// problem's variable count, the solver seeds the barrier method from
  /// the least-squares projection of log(x) onto the equality-eliminated
  /// subspace instead of the origin; an already strictly feasible seed
  /// skips phase I entirely. Used by the GP solution cache to restart a
  /// failed solve from a structurally similar cached optimum. Empty
  /// (default), mismatched or non-positive points fall back to the
  /// classic start; StartPerturbation is applied on top either way, so
  /// the retry ladder keeps its escape mechanism.
  std::vector<double> InitialPoint;
};

/// How one solve ended, for retry and sweep-report classification.
enum class SolveOutcome {
  Converged,          ///< Feasible and within tolerance.
  NotConverged,       ///< Feasible but the outer loop hit its cap.
  Infeasible,         ///< No strictly feasible point (model property).
  NumericalBreakdown, ///< Newton/Cholesky failure in either phase.
  NonFinite,          ///< NaN/inf leaked into the iterate or objective.
};

const char *solveOutcomeName(SolveOutcome Outcome);

/// Solver outcome.
struct GpSolution {
  bool Feasible = false;  ///< A strictly feasible point was found.
  bool Converged = false; ///< The barrier method reached its tolerance.
  SolveOutcome Outcome = SolveOutcome::Infeasible;
  Assignment Values;      ///< x per VarId (valid when Feasible).
  double Objective = std::numeric_limits<double>::infinity();
  unsigned NewtonIterations = 0; ///< Total Newton steps, both phases.
  std::string Failure;    ///< Human-readable reason when !Feasible.
};

/// One rung of the retry ladder, for diagnostics.
struct GpSolveAttempt {
  SolveOutcome Outcome = SolveOutcome::Infeasible;
  double StartPerturbation = 0.0;
  double TInitial = 0.0;
  double TMultiplier = 0.0;
  double ObjectiveScale = 1.0;
  unsigned NewtonIterations = 0;
  std::string Failure;
};

/// What the retry ladder did for one problem.
struct GpSolveReport {
  std::vector<GpSolveAttempt> Attempts;
  /// True when a retry (attempt > 0) produced the returned solution.
  bool Recovered = false;
  unsigned attempts() const {
    return static_cast<unsigned>(Attempts.size());
  }
};

/// Solves \p Problem. The objective must be a non-empty posynomial.
GpSolution solveGp(const GpProblem &Problem,
                   const GpSolverOptions &Options = GpSolverOptions());

/// Solves \p Problem with the retry ladder: on a *retriable* failure
/// (numerical breakdown, non-finite iterates, non-convergence — never
/// genuine infeasibility) it re-solves with a deterministically
/// perturbed phase-I start, a gentler barrier schedule and objective
/// rescaling, classifying every attempt in \p Report. Returns the best
/// attempt under Converged > NotConverged > breakdown-with-iterate >
/// Infeasible > NonFinite, preferring the earliest attempt on ties, so
/// a run where the first attempt succeeds is bit-identical to solveGp.
/// The returned NewtonIterations is the total across attempts.
GpSolution solveGpWithRetry(const GpProblem &Problem,
                            const GpSolverOptions &Options,
                            GpSolveReport *Report = nullptr);

} // namespace thistle

#endif // THISTLE_SOLVER_GPSOLVER_H
