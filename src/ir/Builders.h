//===- ir/Builders.h - CNN and matmul problem builders ----------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the tensor programs used throughout the paper: the 7D CNN
/// loop nest of Listing 1 (generalized to dilated, transposed and
/// grouped/depthwise convolutions — docs/WORKLOADS.md) and the 3D matrix
/// multiplication of Fig. 1.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_IR_BUILDERS_H
#define THISTLE_IR_BUILDERS_H

#include "ir/Problem.h"
#include "support/Status.h"

#include <string>

namespace thistle {

/// Output-shape convention of a conv layer (docs/WORKLOADS.md). Table II
/// gives input sizes only; the paper's ResNet/Yolo stages use 'same'
/// padding, which stays the default.
enum class ConvPadding {
  /// Hout = ceil(Hin / stride): the frame is padded so that every input
  /// position starts a window (DESIGN.md). Independent of R and dilation.
  Same,
  /// No padding: Hout = (Hin - dilation*(R-1) - 1) / stride + 1. Requires
  /// the dilated kernel to fit inside the image.
  Valid,
};

/// Stable lower-case token for a padding convention ("same" / "valid").
const char *paddingName(ConvPadding Padding);

/// Parses a padding token as printed by paddingName().
Expected<ConvPadding> parsePadding(const std::string &Token);

/// Shape of one conv2D stage, in the paper's Table II convention, extended
/// with the dilation / transposed / grouped semantics of the general 7D
/// nest (EcoFlow; the 7-D loop-nest formalization in PAPERS.md).
struct ConvLayer {
  std::string Name;
  std::int64_t N = 1;   ///< Batch size (1 throughout the evaluation).
  std::int64_t K = 1;   ///< Output channels.
  std::int64_t C = 1;   ///< Input channels.
  std::int64_t Hin = 1; ///< Input image height (Table II's H).
  std::int64_t Win = 1; ///< Input image width (Table II's W).
  std::int64_t R = 1;   ///< Kernel height.
  std::int64_t S = 1;   ///< Kernel width.
  std::int64_t StrideX = 1; ///< Vertical kernel stride (paper's x).
  std::int64_t StrideY = 1; ///< Horizontal kernel stride (paper's y).
  /// Convolution dilation (the paper notes dilation "can be handled
  /// similarly" to strides — it becomes the stride of the r/s terms in
  /// the strided spatial projections).
  std::int64_t DilationX = 1;
  std::int64_t DilationY = 1;
  /// Channel groups: In's C channels and Out's K channels are split into
  /// Groups independent slices (K and C must divide). Groups == C is a
  /// depthwise layer.
  std::int64_t Groups = 1;
  /// Transposed (fractionally-strided) convolution: every input pixel
  /// scatter-accumulates a full kernel window into the output, so the
  /// strided projection x*h + r moves from In to Out and h/w range over
  /// the *input* image. Padding is ignored: the output is the full
  /// stride*(Hin-1) + dilation*(R-1) + 1 scatter extent.
  bool Transposed = false;
  /// Output-shape rule for direct (non-transposed) convolutions.
  ConvPadding Padding = ConvPadding::Same;

  /// Checks every field a user can supply: all dims/strides/dilations/
  /// groups positive, K and C divisible by Groups, and Valid padding only
  /// when the dilated kernel fits. InvalidArgument names the bad field.
  Status validate() const;

  /// Output spatial height under the layer's convention: Same ->
  /// ceil(Hin/stride), Valid -> (Hin - dilation*(R-1) - 1)/stride + 1,
  /// transposed -> stride*(Hin-1) + dilation*(R-1) + 1.
  std::int64_t outH() const;
  /// Output spatial width, same convention.
  std::int64_t outW() const;

  /// Total MACs = N*K*(C/Groups)*R*S * (spatial positions): outH()*outW()
  /// for direct convs, Hin*Win for transposed (every input pixel meets
  /// the full kernel). Equals makeConvProblem(*this).numOps().
  std::int64_t numMacs() const;

  /// Workload-class token for reports and telemetry: "transposed",
  /// "depthwise" (Groups == C > 1), "grouped", "dilated" or "dense".
  const char *layerClass() const;
};

/// Builds the CNN problem of Listing 1 for \p Layer, generalized over the
/// layer classes above (asserts Layer.validate()). Iterators appear in the
/// order n, [g,] k, c, r, s, h, w — the group iterator g (extent Groups)
/// exists only when Groups > 1, so dense layers build the exact 7D nest
/// the paper uses. Tensors appear in the order Out, In, Ker (Out is
/// read-write). For direct convs h/w range over the *output* spatial
/// extents and In carries the strided projections x*h + dil*r; for
/// transposed convs h/w range over the *input* extents and Out carries
/// them. Grouped channel dims are the 2-term projections (K/G)*g + k and
/// (C/G)*c_per_group projections described in docs/WORKLOADS.md.
Problem makeConvProblem(const ConvLayer &Layer);

/// Builds the 3D matrix-multiplication problem of Fig. 1:
/// C[i][j] += A[i][k] * B[k][j], iterators i, j, k; tensors C (read-write),
/// A, B.
Problem makeMatmulProblem(std::int64_t Ni, std::int64_t Nj, std::int64_t Nk);

} // namespace thistle

#endif // THISTLE_IR_BUILDERS_H
