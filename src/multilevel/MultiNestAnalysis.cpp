//===- multilevel/MultiNestAnalysis.cpp - L-level analytical model --------===//

#include "multilevel/MultiNestAnalysis.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <sstream>

using namespace thistle;

namespace {

/// Result of the Algorithm-1 walk of one level for one tensor (shared
/// with nestmodel's fixed-depth version in spirit; reimplemented here
/// over the generic level structure).
struct LevelWalk {
  std::int64_t Multiplier = 1;
  std::optional<unsigned> StreamIter;
  std::int64_t StreamTrip = 1;
};

LevelWalk walkLevel(const Tensor &T, const std::vector<unsigned> &Perm,
                    const std::vector<std::int64_t> &Trips) {
  LevelWalk Walk;
  bool CanHoist = true;
  for (std::size_t Pos = Perm.size(); Pos > 0; --Pos) {
    unsigned It = Perm[Pos - 1];
    std::int64_t Trip = Trips[It];
    if (Trip == 1)
      continue;
    if (CanHoist) {
      if (T.usesIter(It)) {
        CanHoist = false;
        Walk.StreamIter = It;
        Walk.StreamTrip = Trip;
      }
    } else {
      Walk.Multiplier *= Trip;
    }
  }
  return Walk;
}

/// Exact union of StreamTrip consecutive tiles (min(E, shift) per dim).
std::int64_t unionWords(const Tensor &T,
                        const std::vector<std::int64_t> &Extents,
                        const LevelWalk &Walk) {
  std::int64_t Words = 1;
  for (const DimRef &D : T.Dims) {
    std::int64_t DimExtent = D.extentFor(Extents);
    if (Walk.StreamIter && D.uses(*Walk.StreamIter)) {
      std::int64_t Stride = 0;
      for (const DimRef::Term &Term : D.Terms)
        if (Term.Iter == *Walk.StreamIter)
          Stride = Term.Stride;
      std::int64_t Shift = Stride * Extents[*Walk.StreamIter];
      DimExtent += (Walk.StreamTrip - 1) * std::min(DimExtent, Shift);
    }
    Words *= DimExtent;
  }
  return Words;
}

} // namespace

std::int64_t MultiProfile::boundaryWords(unsigned B) const {
  std::int64_t Sum = 0;
  for (std::int64_t W : Words[B])
    Sum += W;
  return Sum;
}

MultiProfile thistle::analyzeMultiNest(const Problem &Prob,
                                       const Hierarchy &H,
                                       const MultiMapping &Map) {
  assert(H.validate().empty() && "hierarchy must validate");
  assert(Map.validate(Prob, H).empty() && "mapping must validate");
  const unsigned NumIters = Prob.numIterators();
  const unsigned L = H.numLevels();
  const unsigned F = H.FanoutLevel;

  MultiProfile Profile;
  Profile.Words.assign(H.numBoundaries(),
                       std::vector<std::int64_t>(Prob.tensors().size(), 0));
  Profile.Occupancy.assign(L, 0);
  Profile.PEsUsed = Map.numPEsUsed();

  for (std::size_t TI = 0; TI < Prob.tensors().size(); ++TI) {
    const Tensor &T = Prob.tensors()[TI];
    for (unsigned B = 0; B < H.numBoundaries(); ++B) {
      const unsigned WalkLevel = B + 1;
      std::vector<std::int64_t> StartExtents = Map.tileExtents(H, B);
      LevelWalk Walk =
          walkLevel(T, Map.Perms[WalkLevel], Map.TempFactors[WalkLevel]);

      std::int64_t M = Walk.Multiplier;
      // Every trip count of the levels above the walked one.
      for (unsigned Lv = WalkLevel + 1; Lv < L; ++Lv)
        for (unsigned I = 0; I < NumIters; ++I)
          M *= Map.TempFactors[Lv][I];
      // Spatial contribution (see file header).
      if (WalkLevel < F) {
        for (unsigned I = 0; I < NumIters; ++I)
          M *= Map.SpatialFactors[I];
      } else if (WalkLevel == F) {
        for (unsigned I = 0; I < NumIters; ++I)
          if (T.usesIter(I))
            M *= Map.SpatialFactors[I];
      }

      std::int64_t Volume = M * unionWords(T, StartExtents, Walk);
      if (T.ReadWrite)
        Volume *= 2;
      Profile.Words[B][TI] = Volume;
    }
    for (unsigned Lv = 0; Lv < L; ++Lv)
      Profile.Occupancy[Lv] += T.footprintWords(Map.tileExtents(H, Lv));
  }
  return Profile;
}

MultiEvalResult thistle::evaluateMultiMapping(const Problem &Prob,
                                              const Hierarchy &H,
                                              const MultiMapping &Map) {
  MultiEvalResult Result;
  Result.Profile = analyzeMultiNest(Prob, H, Map);
  const MultiProfile &P = Result.Profile;

  Result.Legal = true;
  std::ostringstream Why;
  for (unsigned Lv = 0; Lv + 1 < H.numLevels(); ++Lv)
    if (P.Occupancy[Lv] > H.Levels[Lv].CapacityWords) {
      Result.Legal = false;
      Why << H.Levels[Lv].Name << " tile " << P.Occupancy[Lv]
          << " words > capacity " << H.Levels[Lv].CapacityWords << "; ";
    }
  if (P.PEsUsed > H.NumPEs) {
    Result.Legal = false;
    Why << "uses " << P.PEsUsed << " PEs > available " << H.NumPEs << "; ";
  }
  Result.IllegalReason = Why.str();

  const double Nops = static_cast<double>(Prob.numOps());
  // Energy: MAC + registers per operation, plus each boundary's words
  // priced at both adjacent levels' access energies.
  double Energy = (4.0 * H.Levels[0].AccessEnergyPj + H.MacEnergyPj) * Nops;
  for (unsigned B = 0; B < H.numBoundaries(); ++B)
    Energy += static_cast<double>(P.boundaryWords(B)) *
              (H.Levels[B].AccessEnergyPj + H.Levels[B + 1].AccessEnergyPj);
  Result.EnergyPj = Energy;
  Result.EnergyPerMacPj = Energy / Nops;

  // Delay: compute bound plus each level's bandwidth over its adjacent
  // boundaries; private levels have one instance per used PE.
  double Cycles = Nops / static_cast<double>(P.PEsUsed);
  for (unsigned Lv = 1; Lv < H.numLevels(); ++Lv) {
    double W = static_cast<double>(P.boundaryWords(Lv - 1));
    if (Lv < H.numBoundaries())
      W += static_cast<double>(P.boundaryWords(Lv));
    double Instances =
        Lv < H.FanoutLevel ? static_cast<double>(P.PEsUsed) : 1.0;
    Cycles = std::max(Cycles, W / (H.Levels[Lv].Bandwidth * Instances));
  }
  Result.Cycles = std::max(Cycles, 1.0);
  Result.MacIpc = Nops / Result.Cycles;
  Result.EdpPjCycles = Result.EnergyPj * Result.Cycles;
  return Result;
}
