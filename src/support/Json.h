//===- support/Json.h - Minimal JSON value + parser -------------*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON reader for the thistle-serve wire protocol:
/// one newline-delimited request per line, parsed into an
/// order-preserving JsonValue tree. The parser returns
/// Expected<JsonValue> with byte-offset diagnostics so a malformed
/// request becomes an error *response* (exit-code-2 semantics), never a
/// dropped connection. It accepts exactly RFC-8259 JSON minus two
/// liberties we don't need: no \uXXXX surrogate-pair decoding (escapes
/// are preserved verbatim into the string) and numbers are parsed as
/// doubles with an exact-integer fast path.
///
/// Writing JSON is JsonWriter.h's job; this header is read-only on
/// purpose so the emit path keeps its deterministic field ordering.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_JSON_H
#define THISTLE_SUPPORT_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace thistle {
namespace json {

/// One parsed JSON value. Objects keep their members in source order
/// (duplicate keys keep the last occurrence on lookup, mirroring most
/// consumers) so diagnostics and round-trip comparisons stay stable.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V) {
    JsonValue J;
    J.K = Kind::Bool;
    J.BoolV = V;
    return J;
  }
  static JsonValue makeNumber(double V) {
    JsonValue J;
    J.K = Kind::Number;
    J.NumberV = V;
    return J;
  }
  static JsonValue makeString(std::string V) {
    JsonValue J;
    J.K = Kind::String;
    J.StringV = std::move(V);
    return J;
  }
  static JsonValue makeArray() {
    JsonValue J;
    J.K = Kind::Array;
    return J;
  }
  static JsonValue makeObject() {
    JsonValue J;
    J.K = Kind::Object;
    return J;
  }

  bool boolean() const { return BoolV; }
  double number() const { return NumberV; }
  const std::string &string() const { return StringV; }

  /// Number as a non-negative integer if it is exactly one (serve
  /// requests carry ids, extents and millisecond budgets this way).
  bool asUint(std::uint64_t &Out) const {
    if (K != Kind::Number || NumberV < 0)
      return false;
    std::uint64_t V = static_cast<std::uint64_t>(NumberV);
    if (static_cast<double>(V) != NumberV)
      return false;
    Out = V;
    return true;
  }

  const std::vector<JsonValue> &array() const { return ArrayV; }
  std::vector<JsonValue> &array() { return ArrayV; }

  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return ObjectV;
  }

  /// Last member with this key, or null if absent.
  const JsonValue *find(const std::string &Key) const {
    for (auto It = ObjectV.rbegin(); It != ObjectV.rend(); ++It)
      if (It->first == Key)
        return &It->second;
    return nullptr;
  }

  void push(JsonValue V) { ArrayV.push_back(std::move(V)); }
  void set(std::string Key, JsonValue V) {
    ObjectV.emplace_back(std::move(Key), std::move(V));
  }

private:
  Kind K = Kind::Null;
  bool BoolV = false;
  double NumberV = 0.0;
  std::string StringV;
  std::vector<JsonValue> ArrayV;
  std::vector<std::pair<std::string, JsonValue>> ObjectV;
};

/// Parses one complete JSON document from Text. Trailing garbage after
/// the document is an error (wire lines carry exactly one value).
/// Errors carry StatusCode::ParseError and a byte offset.
Expected<JsonValue> parseJson(const std::string &Text);

} // namespace json
} // namespace thistle

#endif // THISTLE_SUPPORT_JSON_H
