//===- support/RunReport.cpp - Schema-versioned JSON run report -----------===//

#include "support/RunReport.h"

#include "support/JsonWriter.h"
#include "support/TablePrinter.h"

#include <map>
#include <ostream>
#include <sstream>

using namespace thistle;
using json::Writer;

namespace {

/// schema..exit_code header. The canonical projection omits
/// wall_seconds — it is the one header field that varies run to run.
void emitHeader(Writer &W, const RunReport &R, bool Canonical) {
  W.key("schema");
  W.value(RunReportSchema);
  W.key("tool");
  W.value(R.Tool);
  W.key("workload");
  W.value(R.Workload);
  W.key("mode");
  W.value(R.Mode);
  W.key("objective");
  W.value(R.Objective);
  W.key("hierarchy");
  W.value(R.Hierarchy);
  W.key("threads");
  W.value(R.Threads);
  if (!Canonical) {
    W.key("wall_seconds");
    W.value(R.WallSeconds);
  }
  W.key("exit_code");
  W.value(R.ExitCode);
}

void emitResult(Writer &W, const RunReport &R) {
  W.key("result");
  W.beginObject();
  W.key("found");
  W.value(R.Found);
  W.key("energy_pj");
  W.value(R.EnergyPj);
  W.key("energy_per_mac_pj");
  W.value(R.EnergyPerMacPj);
  W.key("cycles");
  W.value(R.Cycles);
  W.key("mac_ipc");
  W.value(R.MacIpc);
  W.key("edp_pj_cycles");
  W.value(R.EdpPjCycles);
  W.endObject();
}

void emitEvaluator(Writer &W, const RunReportEvaluator &E) {
  W.key("evaluator");
  W.beginObject();
  W.key("backend");
  W.value(E.Backend);
  W.key("cross_check");
  W.value(E.CrossCheck);
  W.key("evals");
  W.value(E.Evals);
  W.key("divergent_evals");
  W.value(E.DivergentEvals);
  W.key("counters_compared");
  W.value(E.CountersCompared);
  W.key("counter_mismatches");
  W.value(E.CounterMismatches);
  W.key("max_abs_delta");
  W.value(E.MaxAbsDelta);
  W.key("max_rel_delta");
  W.value(E.MaxRelDelta);
  W.key("samples");
  W.beginArray();
  for (const RunReportEvaluatorSample &S : E.Samples) {
    W.beginObject();
    W.key("counter");
    W.value(S.Counter);
    W.key("primary");
    W.value(S.Primary);
    W.key("reference");
    W.value(S.Reference);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void emitSweep(Writer &W, const RunReport &R) {
  W.key("sweep");
  if (!R.HasSweep) {
    W.value(false); // No sweep ran (usage error / validation failure).
    return;
  }
  W.beginObject();
  W.key("task_noun");
  W.value(R.SweepTaskNoun);
  W.key("tasks");
  W.value(R.Sweep.total());
  W.key("solved");
  W.value(R.Sweep.Solved);
  W.key("retried");
  W.value(R.Sweep.Retried);
  W.key("degraded");
  W.value(R.Sweep.Degraded);
  W.key("infeasible");
  W.value(R.Sweep.Infeasible);
  W.key("failed");
  W.value(R.Sweep.Failed);
  W.key("skipped");
  W.value(R.Sweep.Skipped);
  W.key("skipped_by_policy");
  W.value(R.Sweep.SkippedByPolicy);
  W.key("deadline_expired");
  W.value(R.Sweep.DeadlineExpired);
  W.key("clean");
  W.value(R.Sweep.clean());
  W.key("incidents");
  W.beginArray();
  for (const SweepIncident &I : R.Sweep.Incidents) {
    W.beginObject();
    W.key("index");
    W.value(static_cast<std::uint64_t>(I.Index));
    W.key("a");
    W.value(static_cast<std::uint64_t>(I.A));
    W.key("b");
    W.value(static_cast<std::uint64_t>(I.B));
    W.key("outcome");
    W.value(taskOutcomeName(I.Outcome));
    W.key("attempts");
    W.value(I.Attempts);
    W.key("detail");
    W.value(I.Detail);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

/// Canonical projections drop the three cache traffic counters: hot
/// replay answers the same query with hits where the cold run counted
/// misses, and the whole point of the projection is that those runs
/// compare byte-equal.
void emitNetwork(Writer &W, const RunReportNetwork &N, bool Canonical) {
  W.key("network");
  if (!N.Present) {
    W.value(false); // Not a --network run.
    return;
  }
  W.beginObject();
  W.key("layers_total");
  W.value(N.LayersTotal);
  W.key("layers_found");
  W.value(N.LayersFound);
  W.key("unique_shapes");
  W.value(N.UniqueShapes);
  W.key("cache_enabled");
  W.value(N.CacheEnabled);
  if (!Canonical) {
    W.key("cache_hits");
    W.value(N.CacheHits);
    W.key("cache_misses");
    W.value(N.CacheMisses);
    W.key("cache_warm_starts");
    W.value(N.CacheWarmStarts);
  }
  W.key("arch_candidates");
  W.value(N.ArchCandidates);
  W.key("summed_objective");
  W.value(N.SummedObjective);
  W.key("totals");
  W.beginObject();
  W.key("energy_pj");
  W.value(N.TotalEnergyPj);
  W.key("cycles");
  W.value(N.TotalCycles);
  W.key("edp_pj_cycles");
  W.value(N.TotalEdpPjCycles);
  W.key("energy_per_mac_pj");
  W.value(N.EnergyPerMacPj);
  W.key("macs");
  W.value(N.Macs);
  W.endObject();
  W.key("layers");
  W.beginArray();
  for (const RunReportNetworkLayer &L : N.Layers) {
    W.beginObject();
    W.key("name");
    W.value(L.Name);
    W.key("shape_index");
    W.value(L.ShapeIndex);
    W.key("multiplicity");
    W.value(L.Multiplicity);
    W.key("deduplicated");
    W.value(L.Deduplicated);
    W.key("found");
    W.value(L.Found);
    W.key("energy_pj");
    W.value(L.EnergyPj);
    W.key("cycles");
    W.value(L.Cycles);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void emitPersistence(Writer &W, const RunReportPersistence &P) {
  W.key("persistence");
  if (!P.Present) {
    W.value(false); // No cache directory was configured.
    return;
  }
  W.beginObject();
  W.key("directory");
  W.value(P.Directory);
  W.key("capacity");
  W.value(P.Capacity);
  W.key("loaded_files");
  W.value(P.LoadedFiles);
  W.key("loaded_entries");
  W.value(P.LoadedEntries);
  W.key("append_failures");
  W.value(P.AppendFailures);
  W.key("evictions");
  W.value(P.Evictions);
  W.key("data_loss_detected");
  W.value(P.DataLossDetected);
  W.key("problems");
  W.beginArray();
  for (const std::string &Problem : P.Problems)
    W.value(Problem);
  W.endArray();
  W.key("snapshot_written");
  W.value(P.SnapshotWritten);
  W.endObject();
}

void emitShards(Writer &W, const RunReportShards &S) {
  W.key("shards");
  if (!S.Present) {
    W.value(false); // Not a sharded or merging run.
    return;
  }
  W.beginObject();
  W.key("index");
  W.value(S.Index);
  W.key("count");
  W.value(S.Count);
  W.key("merge");
  W.value(S.Merge);
  W.endObject();
}

void emitServe(Writer &W, const RunReportServe &S) {
  W.key("serve");
  if (!S.Present) {
    W.value(false); // Not a thistle-serve report.
    return;
  }
  W.beginObject();
  W.key("requests");
  W.value(S.Requests);
  W.key("queries");
  W.value(S.Queries);
  W.key("errors");
  W.value(S.Errors);
  W.key("deduplicated");
  W.value(S.Deduplicated);
  W.key("solves");
  W.value(S.Solves);
  W.key("cache_hits");
  W.value(S.CacheHits);
  W.key("cache_misses");
  W.value(S.CacheMisses);
  W.key("cache_warm_starts");
  W.value(S.CacheWarmStarts);
  W.key("cache_evictions");
  W.value(S.CacheEvictions);
  W.key("compactions");
  W.value(S.Compactions);
  W.endObject();
}

void emitMetricsAndTrace(Writer &W, const telemetry::Snapshot &T) {
  W.key("metrics");
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const telemetry::CounterValue &C : T.Counters) {
    W.key(C.Name.c_str());
    W.value(C.Value);
  }
  W.endObject();
  W.key("stats");
  W.beginObject();
  for (const telemetry::StatValue &S : T.Stats) {
    W.key(S.Name.c_str());
    W.beginObject();
    W.key("count");
    W.value(S.Count);
    W.key("sum");
    W.value(S.Sum);
    W.key("min");
    W.value(S.Min);
    W.key("max");
    W.value(S.Max);
    W.key("mean");
    W.value(S.mean());
    W.endObject();
  }
  W.endObject();
  W.endObject();

  W.key("trace");
  W.beginObject();
  W.key("dropped_spans");
  W.value(T.DroppedSpans);
  W.key("spans");
  W.beginArray();
  for (const telemetry::Span &S : T.Spans) {
    W.beginObject();
    W.key("name");
    W.value(S.Name);
    W.key("epoch");
    W.value(S.Epoch);
    W.key("index");
    // NoIndex marks a span outside any sweep task.
    if (S.Index == telemetry::NoIndex)
      W.value(-1);
    else
      W.value(static_cast<std::uint64_t>(S.Index));
    W.key("depth");
    W.value(S.Depth);
    W.key("start_ns");
    W.value(S.StartNs);
    W.key("duration_ns");
    W.value(S.DurationNs);
    W.key("detail");
    W.value(S.Detail);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string RunReport::toJson() const {
  std::ostringstream OS;
  Writer W(OS);
  W.beginObject();
  emitHeader(W, *this, /*Canonical=*/false);
  emitResult(W, *this);
  emitEvaluator(W, Evaluator);
  emitSweep(W, *this);
  emitNetwork(W, Network, /*Canonical=*/false);
  emitPersistence(W, Persistence);
  emitShards(W, Shards);
  emitServe(W, Serve);
  emitMetricsAndTrace(W, Telemetry);
  W.endObject();
  OS << "\n";
  return OS.str();
}

std::string RunReport::toCanonicalJson() const {
  std::ostringstream OS;
  Writer W(OS, /*Compact=*/true);
  W.beginObject();
  emitHeader(W, *this, /*Canonical=*/true);
  emitResult(W, *this);
  emitEvaluator(W, Evaluator);
  emitSweep(W, *this);
  emitNetwork(W, Network, /*Canonical=*/true);
  W.endObject();
  return OS.str();
}

void thistle::printProfile(std::ostream &OS,
                           const telemetry::Snapshot &Snap) {
  OS << "\n==== profile ====\n";
  if (Snap.Counters.empty() && Snap.Stats.empty() && Snap.Spans.empty()) {
    OS << "(no telemetry collected"
       << (telemetry::compiledIn() ? "" : "; compiled out") << ")\n";
    return;
  }

  if (!Snap.Spans.empty()) {
    // Aggregate spans by name, in first-appearance order of the
    // deterministic merged span list.
    struct Agg {
      std::uint64_t Count = 0;
      std::uint64_t TotalNs = 0;
      std::uint64_t MaxNs = 0;
    };
    std::vector<std::pair<std::string, Agg>> Order;
    std::map<std::string, std::size_t> Pos;
    for (const telemetry::Span &S : Snap.Spans) {
      auto [It, Inserted] = Pos.try_emplace(S.Name, Order.size());
      if (Inserted)
        Order.push_back({S.Name, Agg()});
      Agg &A = Order[It->second].second;
      ++A.Count;
      A.TotalNs += S.DurationNs;
      A.MaxNs = std::max(A.MaxNs, S.DurationNs);
    }
    TablePrinter Table({"span", "count", "total ms", "mean ms", "max ms"});
    for (const auto &[Name, A] : Order)
      Table.addRow({Name,
                    TablePrinter::formatInt(
                        static_cast<std::int64_t>(A.Count)),
                    TablePrinter::formatDouble(A.TotalNs * 1e-6, 3),
                    TablePrinter::formatDouble(
                        A.TotalNs * 1e-6 / static_cast<double>(A.Count), 3),
                    TablePrinter::formatDouble(A.MaxNs * 1e-6, 3)});
    Table.print(OS);
    if (Snap.DroppedSpans)
      OS << "(" << Snap.DroppedSpans << " spans dropped at buffer cap)\n";
  }

  if (!Snap.Counters.empty()) {
    TablePrinter Table({"counter", "value"});
    for (const telemetry::CounterValue &C : Snap.Counters)
      Table.addRow({C.Name, TablePrinter::formatInt(
                                static_cast<std::int64_t>(C.Value))});
    Table.print(OS);
  }
  if (!Snap.Stats.empty()) {
    TablePrinter Table({"stat", "count", "mean", "min", "max"});
    for (const telemetry::StatValue &S : Snap.Stats)
      Table.addRow({S.Name,
                    TablePrinter::formatInt(
                        static_cast<std::int64_t>(S.Count)),
                    TablePrinter::formatDouble(S.mean(), 4),
                    TablePrinter::formatDouble(S.Min, 4),
                    TablePrinter::formatDouble(S.Max, 4)});
    Table.print(OS);
  }
}
