# Empty compiler generated dependencies file for thistle_linalg.
# This may be replaced when dependencies are built.
