//===- model/TechModel.h - Technology, energy and area models ---*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 45nm technology parameters of Table III, the analytical per-access
/// energy laws of Eq. 4 (eps_R = sigma_R * R, eps_S = sigma_S * sqrt(S))
/// and the linear area model of Eq. 5. In the paper these come from
/// Accelergy/Cacti/Aladdin; the paper reduces them to exactly these
/// analytical forms for the single-shot co-design formulation, so the
/// constants below are the complete substitute.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MODEL_TECHMODEL_H
#define THISTLE_MODEL_TECHMODEL_H

#include <cstdint>

namespace thistle {

/// Technology constants (Table III; 45nm, 16-bit words).
struct TechParams {
  double AreaMacUm2 = 1239.5;      ///< Area per MAC unit [um^2].
  double AreaRegWordUm2 = 19.874;  ///< Area per register word [um^2].
  double AreaSramWordUm2 = 6.806;  ///< Area per SRAM word [um^2].
  double EnergyMacPj = 2.2;        ///< Energy per int16 MAC [pJ].
  double SigmaRegPj = 9.06719e-3;  ///< Register energy-constant [pJ/word].
  /// SRAM energy-constant [pJ / sqrt(word)]. Table III prints "17.88"
  /// with an empty unit cell; the 1e-3 scale is required to reproduce the
  /// paper's 20-30 pJ/MAC Eyeriss baseline (see DESIGN.md, Units).
  double SigmaSramPj = 17.88e-3;
  double EnergyDramPj = 128.0;     ///< Energy per DRAM access [pJ].

  /// The parameter set used throughout the paper's evaluation.
  static TechParams cgo45nm() { return TechParams(); }
};

/// Concrete architectural configuration: the three co-design parameters
/// plus bandwidths used by the delay model.
struct ArchConfig {
  std::int64_t NumPEs = 1;        ///< P: number of processing elements.
  std::int64_t RegWordsPerPE = 1; ///< R: register-file capacity per PE.
  std::int64_t SramWords = 1;     ///< S: shared SRAM capacity in words.

  /// DRAM bandwidth in words/cycle (Fig. 3a example: read 8 + write 8).
  double DramBandwidth = 16.0;
  /// SRAM bandwidth in words/cycle (Fig. 3a example: read 80 + write 80).
  double SramBandwidth = 160.0;

  /// Silicon area under the Eq. 5 linear model:
  ///   (Area_R * R + Area_MAC) * P + Area_S * S.
  double areaUm2(const TechParams &Tech) const;
};

/// Analytical per-access energies of Eq. 4.
class EnergyModel {
public:
  explicit EnergyModel(TechParams Tech) : Tech(Tech) {}

  const TechParams &tech() const { return Tech; }

  /// eps_R: per-access register-file energy for capacity \p RegWords.
  double regAccessPj(double RegWords) const {
    return Tech.SigmaRegPj * RegWords;
  }

  /// eps_S: per-access SRAM energy for capacity \p SramWords.
  double sramAccessPj(double SramWords) const;

  /// eps_D: per-access DRAM energy (capacity independent).
  double dramAccessPj() const { return Tech.EnergyDramPj; }

  /// eps_op: energy of one MAC operation (excluding register reads).
  double macPj() const { return Tech.EnergyMacPj; }

private:
  TechParams Tech;
};

} // namespace thistle

#endif // THISTLE_MODEL_TECHMODEL_H
