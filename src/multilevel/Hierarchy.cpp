//===- multilevel/Hierarchy.cpp - Arbitrary-depth memory hierarchies ------===//

#include "multilevel/Hierarchy.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

using namespace thistle;

std::string Hierarchy::validate() const {
  std::ostringstream Err;
  if (Levels.size() < 2)
    return "hierarchy needs at least two levels";
  if (FanoutLevel < 1 || FanoutLevel >= Levels.size()) {
    Err << "fan-out level " << FanoutLevel << " out of range [1, "
        << Levels.size() - 1 << "]";
    return Err.str();
  }
  if (NumPEs < 1)
    return "hierarchy needs at least one PE";
  for (std::size_t L = 0; L + 1 < Levels.size(); ++L)
    if (Levels[L].CapacityWords < 1) {
      Err << "level " << Levels[L].Name << " has no capacity";
      return Err.str();
    }
  for (const HierarchyLevel &L : Levels) {
    if (L.AccessEnergyPj < 0.0)
      return "negative access energy at level " + L.Name;
    if (L.Bandwidth <= 0.0)
      return "non-positive bandwidth at level " + L.Name;
  }
  return std::string();
}

double Hierarchy::areaUm2(const TechParams &Tech) const {
  double PerPE = Tech.AreaMacUm2 +
                 Tech.AreaRegWordUm2 * static_cast<double>(
                                           Levels[0].CapacityWords);
  for (unsigned L = 1; L < FanoutLevel; ++L)
    PerPE += Tech.AreaSramWordUm2 *
             static_cast<double>(Levels[L].CapacityWords);
  double Shared = 0.0;
  for (unsigned L = FanoutLevel; L + 1 < Levels.size(); ++L)
    Shared += Tech.AreaSramWordUm2 *
              static_cast<double>(Levels[L].CapacityWords);
  return PerPE * static_cast<double>(NumPEs) + Shared;
}

Hierarchy Hierarchy::classic3Level(const ArchConfig &Arch,
                                   const TechParams &Tech) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 1;
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9}, // Register accesses are part of the MAC pipe.
      {"SRAM", Arch.SramWords,
       Energy.sramAccessPj(static_cast<double>(Arch.SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}

Hierarchy Hierarchy::classic3Shape() {
  Hierarchy H;
  H.FanoutLevel = 1;
  H.NumPEs = 1;
  H.Levels = {
      {"RegisterFile", 1, 0.0, 1.0},
      {"SRAM", 1, 0.0, 1.0},
      {"DRAM", 0, 0.0, 1.0},
  };
  return H;
}

Hierarchy Hierarchy::withScratchpad(const ArchConfig &Arch,
                                    const TechParams &Tech,
                                    std::int64_t SpadWords,
                                    std::int64_t SramWords) {
  EnergyModel Energy(Tech);
  Hierarchy H;
  H.FanoutLevel = 2; // Registers and scratchpad are per PE.
  H.NumPEs = Arch.NumPEs;
  H.MacEnergyPj = Energy.macPj();
  H.Levels = {
      {"RegisterFile", Arch.RegWordsPerPE,
       Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE)),
       /*Bandwidth=*/1e9},
      // The per-PE scratchpad is priced like a small SRAM (Eq. 4).
      {"Scratchpad", SpadWords,
       Energy.sramAccessPj(static_cast<double>(SpadWords)),
       /*Bandwidth=*/4.0},
      {"SRAM", SramWords,
       Energy.sramAccessPj(static_cast<double>(SramWords)),
       Arch.SramBandwidth},
      {"DRAM", 0, Energy.dramAccessPj(), Arch.DramBandwidth},
  };
  return H;
}

namespace {

/// Strict integer parse: the whole token must be a decimal integer.
bool parseInt64(const std::string &Token, std::int64_t &Out) {
  if (Token.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Token.c_str(), &End, 10);
  if (errno == ERANGE || End != Token.c_str() + Token.size())
    return false;
  Out = V;
  return true;
}

} // namespace

Expected<Hierarchy> thistle::parseHierarchy(const std::string &Text) {
  Hierarchy H;
  H.Levels.clear();
  bool SawFanout = false;

  if (fault::shouldFail("parse.hierarchy"))
    return Status::parseError("injected fault at site parse.hierarchy");

  std::istringstream Lines(Text);
  std::string Line;
  unsigned LineNo = 0;
  // The level whose capacity was '-' (unbounded); only the outermost
  // level may leave its capacity open.
  int UnboundedAtLine = 0;
  std::size_t UnboundedLevel = 0;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    std::string Key;
    if (!(Fields >> Key))
      continue; // Blank or comment-only line.

    auto fail = [&](const std::string &What) {
      std::ostringstream Err;
      Err << "line " << LineNo << ": " << What;
      return Status::parseError(Err.str());
    };

    if (Key == "pes") {
      std::string Token;
      if (!(Fields >> Token) || !parseInt64(Token, H.NumPEs))
        return fail("'pes' wants an integer");
      if (H.NumPEs < 1)
        return fail("'pes' wants a positive count, got " + Token);
    } else if (Key == "mac-pj") {
      if (!(Fields >> H.MacEnergyPj) || !std::isfinite(H.MacEnergyPj))
        return fail("'mac-pj' wants a finite number");
      if (H.MacEnergyPj < 0.0)
        return fail("'mac-pj' wants a non-negative energy");
    } else if (Key == "fanout") {
      std::int64_t Level = 0;
      std::string Token;
      if (!(Fields >> Token) || !parseInt64(Token, Level))
        return fail("'fanout' wants a level index");
      if (Level < 1)
        return fail("'fanout' wants a level index >= 1, got " + Token);
      H.FanoutLevel = static_cast<unsigned>(Level);
      SawFanout = true;
    } else if (Key == "level") {
      HierarchyLevel L;
      std::string Capacity;
      if (!(Fields >> L.Name >> Capacity >> L.AccessEnergyPj >> L.Bandwidth))
        return fail("'level' wants: name capacity access-pj bandwidth");
      for (const HierarchyLevel &Seen : H.Levels)
        if (Seen.Name == L.Name)
          return fail("duplicate level name '" + L.Name + "'");
      if (Capacity == "-") {
        L.CapacityWords = 0;
        UnboundedAtLine = static_cast<int>(LineNo);
        UnboundedLevel = H.Levels.size();
      } else if (!parseInt64(Capacity, L.CapacityWords) ||
                 L.CapacityWords < 1) {
        return fail("level '" + L.Name +
                    "' wants a positive integer capacity or '-', got '" +
                    Capacity + "'");
      }
      if (!std::isfinite(L.AccessEnergyPj) || L.AccessEnergyPj < 0.0)
        return fail("level '" + L.Name +
                    "' wants a non-negative access energy");
      if (!std::isfinite(L.Bandwidth) || L.Bandwidth <= 0.0)
        return fail("level '" + L.Name + "' wants a positive bandwidth");
      H.Levels.push_back(L);
    } else {
      return fail("unknown key '" + Key + "'");
    }
    std::string Extra;
    if (Fields >> Extra)
      return fail("trailing field '" + Extra + "'");
  }

  if (UnboundedAtLine && UnboundedLevel + 1 != H.Levels.size()) {
    std::ostringstream Err;
    Err << "line " << UnboundedAtLine << ": level '"
        << H.Levels[UnboundedLevel].Name
        << "' has unbounded capacity '-' but is not the outermost level";
    return Status::parseError(Err.str());
  }
  if (!SawFanout)
    H.FanoutLevel = 1;
  std::string Why = H.validate();
  if (!Why.empty())
    return Status::parseError(std::move(Why));
  return H;
}

bool thistle::parseHierarchy(const std::string &Text, Hierarchy &Out,
                             std::string &Error) {
  Expected<Hierarchy> Parsed = parseHierarchy(Text);
  if (!Parsed) {
    Error = Parsed.status().message();
    return false;
  }
  Out = Parsed.takeValue();
  return true;
}
