//===- tests/SolverTest.cpp - solver/ unit tests --------------------------===//
//
// Validates the interior-point GP solver against problems with known
// closed-form optima.
//
//===----------------------------------------------------------------------===//

#include "solver/GpProblem.h"
#include "solver/GpSolver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace thistle;

TEST(GpProblem, CanonicalForms) {
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  Gp.addUpperBound(Posynomial(Monomial::variable(X)), 10.0, "x <= 10");
  Gp.addEquality(Monomial::variable(X, 2.0), 4.0, "x^2 == 4");
  ASSERT_EQ(Gp.constraints().size(), 1u);
  ASSERT_EQ(Gp.equalities().size(), 1u);
  // x <= 10 stored as x/10 <= 1.
  EXPECT_DOUBLE_EQ(
      Gp.constraints()[0].Lhs.monomials()[0].coefficient(), 0.1);
  // x^2 == 4 stored as x^2/4 == 1.
  EXPECT_DOUBLE_EQ(Gp.equalities()[0].Lhs.coefficient(), 0.25);
  EXPECT_NE(Gp.toString().find("minimize"), std::string::npos);
}

TEST(GpSolver, UnconstrainedMonomialWithLowerBounds) {
  // minimize x*y subject to x >= 1, y >= 1: optimum 1 at (1, 1).
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addVariableBounds(X, 100.0);
  Gp.addVariableBounds(Y, 100.0);
  Gp.setObjective(
      Posynomial(Monomial::variable(X) * Monomial::variable(Y)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_TRUE(S.Converged);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-3);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-3);
  EXPECT_NEAR(S.Objective, 1.0, 1e-2);
}

TEST(GpSolver, ClassicVolumeProblem) {
  // minimize 1/(xyz) (maximize box volume) s.t. 2(xy + yz + xz) <= 6.
  // Optimum: cube with x = y = z = 1, objective 1.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  VarId Z = Gp.addVariable("z");
  Posynomial Surface;
  Surface += Signomial(
      (Monomial::variable(X) * Monomial::variable(Y)).scaled(2.0));
  Surface += Signomial(
      (Monomial::variable(Y) * Monomial::variable(Z)).scaled(2.0));
  Surface += Signomial(
      (Monomial::variable(X) * Monomial::variable(Z)).scaled(2.0));
  Gp.addUpperBound(Surface, 6.0, "surface");
  Gp.setObjective(Posynomial(Monomial::variable(X, -1.0) *
                             Monomial::variable(Y, -1.0) *
                             Monomial::variable(Z, -1.0)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-3);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-3);
  EXPECT_NEAR(S.Values[Z], 1.0, 1e-3);
  EXPECT_NEAR(S.Objective, 1.0, 1e-2);
}

TEST(GpSolver, AmGmEquality) {
  // minimize x + y subject to x*y == 16: optimum x = y = 4, objective 8
  // (AM-GM). Exercises the monomial-equality elimination.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addEquality(Monomial::variable(X) * Monomial::variable(Y), 16.0);
  Gp.setObjective(Posynomial(Monomial::variable(X)) +
                  Posynomial(Monomial::variable(Y)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Values[X], 4.0, 1e-2);
  EXPECT_NEAR(S.Values[Y], 4.0, 1e-2);
  EXPECT_NEAR(S.Objective, 8.0, 1e-2);
  // The equality must hold exactly (it is eliminated, not penalized).
  EXPECT_NEAR(S.Values[X] * S.Values[Y], 16.0, 1e-6);
}

TEST(GpSolver, FractionalExponents) {
  // minimize x + 4/sqrt(x): optimum at d/dx = 1 - 2 x^-1.5 = 0,
  // x = 2^(2/3) ~ 1.5874, objective ~ 4.7622.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.setObjective(Posynomial(Monomial::variable(X)) +
                  Posynomial(Monomial::variable(X, -0.5, 4.0)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  double XStar = std::pow(2.0, 2.0 / 3.0);
  EXPECT_NEAR(S.Values[X], XStar, 1e-2);
  EXPECT_NEAR(S.Objective, XStar + 4.0 / std::sqrt(XStar), 1e-2);
}

TEST(GpSolver, PhaseOneFindsInterior) {
  // The zero log-point x = 1 violates x >= 2; phase I must recover.
  // minimize x s.t. 2 <= x <= 5: optimum 2.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addUpperBound(Posynomial(Monomial::variable(X, -1.0, 2.0)), 1.0,
                   "x >= 2");
  Gp.addUpperBound(Posynomial(Monomial::variable(X)), 5.0, "x <= 5");
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-2);
}

TEST(GpSolver, DetectsInfeasibility) {
  // x <= 1 and x >= 3 cannot both hold.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addUpperBound(Posynomial(Monomial::variable(X)), 1.0, "x <= 1");
  Gp.addUpperBound(Posynomial(Monomial::variable(X, -1.0, 3.0)), 1.0,
                   "x >= 3");
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolution S = solveGp(Gp);
  EXPECT_FALSE(S.Feasible);
  EXPECT_FALSE(S.Failure.empty());
}

TEST(GpSolver, DetectsInconsistentEqualities) {
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addEquality(Monomial::variable(X), 2.0);
  Gp.addEquality(Monomial::variable(X), 3.0);
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolution S = solveGp(Gp);
  EXPECT_FALSE(S.Feasible);
}

TEST(GpSolver, FullyPinnedByEqualities) {
  // All variables fixed: solver must just evaluate.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addEquality(Monomial::variable(X), 3.0);
  Gp.addEquality(Monomial::variable(Y), 5.0);
  Gp.setObjective(Posynomial(Monomial::variable(X) * Monomial::variable(Y)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Objective, 15.0, 1e-6);
}

TEST(GpSolver, TiledVolumeTradeoff) {
  // A miniature dataflow-like GP: minimize N^2/x + N^2/y (data volumes)
  // subject to x*y <= 64 (capacity), 1 <= x, y <= N, N = 32.
  // By symmetry the optimum is x = y = 8, objective 2*1024/8 = 256.
  const double N = 32.0;
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addVariableBounds(X, N);
  Gp.addVariableBounds(Y, N);
  Gp.addUpperBound(Posynomial(Monomial::variable(X) * Monomial::variable(Y)),
                   64.0, "capacity");
  Gp.setObjective(Posynomial(Monomial::variable(X, -1.0, N * N)) +
                  Posynomial(Monomial::variable(Y, -1.0, N * N)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Values[X], 8.0, 0.05);
  EXPECT_NEAR(S.Values[Y], 8.0, 0.05);
  EXPECT_NEAR(S.Objective, 256.0, 0.5);
}

TEST(GpSolver, ReportsNewtonWork) {
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addVariableBounds(X, 10.0);
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolution S = solveGp(Gp);
  ASSERT_TRUE(S.Feasible);
  EXPECT_GT(S.NewtonIterations, 0u);
}

// ---- Outcome classification and the retry ladder --------------------------

#include "support/FaultInjection.h"

namespace {

/// minimize x*y s.t. x >= 1, y >= 1 with coefficient spread \p Scale:
/// objective Scale * x * y. Optimum Scale at (1, 1).
GpProblem scaledCornerGp(VarId &X, VarId &Y, double Scale) {
  GpProblem Gp;
  X = Gp.addVariable("x");
  Y = Gp.addVariable("y");
  Gp.addVariableBounds(X, 100.0);
  Gp.addVariableBounds(Y, 100.0);
  Gp.setObjective(Posynomial(
      (Monomial::variable(X) * Monomial::variable(Y)).scaled(Scale)));
  return Gp;
}

} // namespace

TEST(GpSolver, OutcomeIsConvergedOnSuccess) {
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  GpSolution S = solveGp(Gp);
  EXPECT_EQ(S.Outcome, SolveOutcome::Converged);
  EXPECT_STREQ(solveOutcomeName(S.Outcome), "converged");
}

TEST(GpSolver, OutcomeIsInfeasibleOnEmptyInterior) {
  // x <= 0.5 and x >= 1 cannot both hold.
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addVariableBounds(X, 100.0);
  Gp.addUpperBound(Posynomial(Monomial::variable(X)), 0.5, "x small");
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolution S = solveGp(Gp);
  EXPECT_FALSE(S.Feasible);
  EXPECT_EQ(S.Outcome, SolveOutcome::Infeasible);
}

TEST(GpSolver, TinyAndHugeCoefficientSpreads) {
  // The raw solver must survive pathological objective scalings; the
  // retry ladder's rescaling rung normalizes the rest.
  for (double Scale : {1e-18, 1e-9, 1.0, 1e9, 1e18}) {
    VarId X, Y;
    GpProblem Gp = scaledCornerGp(X, Y, Scale);
    GpSolveReport Report;
    GpSolution S = solveGpWithRetry(Gp, GpSolverOptions(), &Report);
    ASSERT_TRUE(S.Feasible) << "scale " << Scale << ": " << S.Failure;
    EXPECT_NEAR(S.Values[X], 1.0, 1e-2) << "scale " << Scale;
    EXPECT_NEAR(S.Values[Y], 1.0, 1e-2) << "scale " << Scale;
    // The reported objective is on the original posynomial.
    EXPECT_NEAR(S.Objective / Scale, 1.0, 1e-2) << "scale " << Scale;
  }
}

TEST(GpSolver, ObjectiveScaleIsArgminPreserving) {
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1e12);
  GpSolverOptions Options;
  Options.ObjectiveScale = 1e12;
  GpSolution S = solveGp(Gp, Options);
  ASSERT_TRUE(S.Feasible);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-3);
  EXPECT_NEAR(S.Objective, 1e12, 1e10);
}

TEST(GpSolver, StartPerturbationStaysCorrect) {
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  GpSolverOptions Options;
  Options.StartPerturbation = 1e-2;
  GpSolution S = solveGp(Gp, Options);
  ASSERT_TRUE(S.Feasible);
  EXPECT_TRUE(S.Converged);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-3);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-3);
}

TEST(GpSolver, WarmStartFromOptimumStaysCorrect) {
  // Re-solving from a previous optimum must land on the same answer;
  // the warm start is an accelerator, never a correctness knob, so the
  // only contract is that the optimum is unchanged.
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  GpSolution Cold = solveGp(Gp);
  ASSERT_TRUE(Cold.Feasible);
  GpSolverOptions Options;
  Options.InitialPoint = Cold.Values;
  GpSolution Warm = solveGp(Gp, Options);
  ASSERT_TRUE(Warm.Feasible);
  EXPECT_TRUE(Warm.Converged);
  EXPECT_NEAR(Warm.Values[X], Cold.Values[X], 1e-3);
  EXPECT_NEAR(Warm.Values[Y], Cold.Values[Y], 1e-3);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-2);
}

TEST(GpSolver, WarmStartProjectsOntoEqualitySubspace) {
  // x*y == 16 eliminates a dimension; the warm start must be projected
  // onto the equality subspace, not taken verbatim. Seed from a point
  // violating the equality and still expect the AM-GM optimum (4, 4).
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  VarId Y = Gp.addVariable("y");
  Gp.addVariableBounds(X, 1000.0);
  Gp.addVariableBounds(Y, 1000.0);
  Posynomial Obj;
  Obj += Signomial(Monomial::variable(X));
  Obj += Signomial(Monomial::variable(Y));
  Gp.setObjective(Obj);
  Gp.addEquality(Monomial::variable(X) * Monomial::variable(Y), 16.0,
                 "x*y == 16");
  GpSolverOptions Options;
  Options.InitialPoint = {2.0, 100.0};
  GpSolution S = solveGp(Gp, Options);
  ASSERT_TRUE(S.Feasible);
  EXPECT_TRUE(S.Converged);
  EXPECT_NEAR(S.Values[X], 4.0, 1e-3);
  EXPECT_NEAR(S.Values[Y], 4.0, 1e-3);
  EXPECT_NEAR(S.Objective, 8.0, 1e-2);
}

TEST(GpSolver, DegenerateWarmStartFallsBackBitIdentically) {
  // Wrong-size, non-positive, or non-finite warm starts are ignored:
  // the solve must be bit-identical to a cold start, which is what lets
  // the GP cache's warm tier degrade gracefully.
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 2.0);
  GpSolution Cold = solveGp(Gp);
  ASSERT_TRUE(Cold.Feasible);
  const std::vector<std::vector<double>> Degenerate = {
      {1.0},                // wrong size
      {1.0, 2.0, 3.0},      // wrong size
      {0.0, 1.0},           // non-positive entry
      {-1.0, 1.0},          // negative entry
      {1.0, std::nan("")},  // non-finite entry
  };
  for (const std::vector<double> &Seed : Degenerate) {
    GpSolverOptions Options;
    Options.InitialPoint = Seed;
    GpSolution S = solveGp(Gp, Options);
    ASSERT_TRUE(S.Feasible);
    EXPECT_EQ(S.Values[X], Cold.Values[X]);
    EXPECT_EQ(S.Values[Y], Cold.Values[Y]);
    EXPECT_EQ(S.Objective, Cold.Objective);
    EXPECT_EQ(S.NewtonIterations, Cold.NewtonIterations);
  }
}

TEST(GpSolver, RetryMatchesPlainSolveWhenFirstAttemptSucceeds) {
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 3.0);
  GpSolution Plain = solveGp(Gp);
  GpSolveReport Report;
  GpSolution Retry = solveGpWithRetry(Gp, GpSolverOptions(), &Report);
  ASSERT_TRUE(Plain.Feasible);
  // Bit-identical: the ladder's first rung is exactly the caller's
  // options, and a converged first attempt short-circuits.
  EXPECT_EQ(Report.attempts(), 1u);
  EXPECT_FALSE(Report.Recovered);
  EXPECT_EQ(Retry.Objective, Plain.Objective);
  EXPECT_EQ(Retry.Values[X], Plain.Values[X]);
  EXPECT_EQ(Retry.Values[Y], Plain.Values[Y]);
  EXPECT_EQ(Retry.NewtonIterations, Plain.NewtonIterations);
}

TEST(GpSolver, RetryStopsOnGenuineInfeasibility) {
  GpProblem Gp;
  VarId X = Gp.addVariable("x");
  Gp.addVariableBounds(X, 100.0);
  Gp.addUpperBound(Posynomial(Monomial::variable(X)), 0.5, "x small");
  Gp.setObjective(Posynomial(Monomial::variable(X)));
  GpSolveReport Report;
  GpSolution S = solveGpWithRetry(Gp, GpSolverOptions(), &Report);
  EXPECT_FALSE(S.Feasible);
  EXPECT_EQ(S.Outcome, SolveOutcome::Infeasible);
  // Infeasibility is a model property, not numerics: no retries burned.
  EXPECT_EQ(Report.attempts(), 1u);
}

#if THISTLE_FAULT_INJECTION_ENABLED

namespace {

struct SolverFaultGuard {
  ~SolverFaultGuard() { fault::disarmAll(); }
};

} // namespace

TEST(GpSolver, InjectedNonConvergenceIsClassified) {
  SolverFaultGuard G;
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  fault::arm("solver.nonconverge", fault::AnyKey, /*MaxHits=*/1);
  GpSolution S = solveGp(Gp);
  EXPECT_TRUE(S.Feasible);
  EXPECT_FALSE(S.Converged);
  EXPECT_EQ(S.Outcome, SolveOutcome::NotConverged);
}

TEST(GpSolver, RetryLadderRecoversFromNonConvergence) {
  SolverFaultGuard G;
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  // Poison exactly the first attempt; the second must converge.
  fault::arm("solver.nonconverge", fault::AnyKey, /*MaxHits=*/1);
  GpSolveReport Report;
  GpSolution S = solveGpWithRetry(Gp, GpSolverOptions(), &Report);
  ASSERT_TRUE(S.Feasible) << S.Failure;
  EXPECT_TRUE(S.Converged);
  EXPECT_TRUE(Report.Recovered);
  EXPECT_EQ(Report.attempts(), 2u);
  EXPECT_EQ(Report.Attempts[0].Outcome, SolveOutcome::NotConverged);
  EXPECT_EQ(Report.Attempts[1].Outcome, SolveOutcome::Converged);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-2);
  // Total Newton work across both attempts is accounted.
  EXPECT_EQ(S.NewtonIterations, Report.Attempts[0].NewtonIterations +
                                    Report.Attempts[1].NewtonIterations);
}

TEST(GpSolver, RetryLadderRecoversFromNanGradient) {
  SolverFaultGuard G;
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  fault::arm("solver.nan-grad", fault::AnyKey, /*MaxHits=*/1);
  GpSolveReport Report;
  GpSolution S = solveGpWithRetry(Gp, GpSolverOptions(), &Report);
  ASSERT_TRUE(S.Feasible) << S.Failure;
  EXPECT_TRUE(S.Converged);
  EXPECT_TRUE(Report.Recovered);
  EXPECT_GE(Report.attempts(), 2u);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-2);
}

TEST(GpSolver, LadderExhaustsOnPersistentFault) {
  SolverFaultGuard G;
  VarId X, Y;
  GpProblem Gp = scaledCornerGp(X, Y, 1.0);
  fault::arm("solver.nonconverge"); // Unlimited: every attempt fails.
  GpSolverOptions Options;
  GpSolveReport Report;
  GpSolution S = solveGpWithRetry(Gp, Options, &Report);
  EXPECT_EQ(Report.attempts(), Options.MaxSolveAttempts);
  EXPECT_FALSE(Report.Recovered);
  // Best effort: the iterate is still feasible, just not converged.
  EXPECT_TRUE(S.Feasible);
  EXPECT_EQ(S.Outcome, SolveOutcome::NotConverged);
}

#endif // THISTLE_FAULT_INJECTION_ENABLED
