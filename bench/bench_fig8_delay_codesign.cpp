//===- bench/bench_fig8_delay_codesign.cpp - Paper Fig. 8 -----------------===//
//
// Reproduces Fig. 8: throughput for (1) the Eyeriss architecture with a
// delay-optimized dataflow, (2) the layer-wise co-designed architecture
// at equal area, and (3) a single fixed architecture chosen from the
// delay-dominant stage. Expected shape: co-design wins by orders of
// magnitude over Eyeriss (it trades SRAM/registers for many more PEs),
// and the single-architecture drop is larger than in the energy case.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printFig8() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  ThistleOptions Dataflow =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Delay);
  ThistleOptions CoDesign =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Delay);

  std::vector<ConvLayer> Layers = allPaperLayers();
  std::vector<ThistleResult> FixedRes, CoRes;
  // The delay-dominant stage: largest co-designed cycle count.
  std::size_t Dominant = 0;
  double DominantCycles = -1.0;
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    Problem P = makeConvProblem(Layers[I]);
    FixedRes.push_back(optimizeLayer(P, Eyeriss, Tech, Dataflow));
    CoRes.push_back(optimizeLayer(P, Eyeriss, Tech, CoDesign, Budget));
    if (CoRes.back().Found && CoRes.back().Eval.Cycles > DominantCycles) {
      DominantCycles = CoRes.back().Eval.Cycles;
      Dominant = I;
    }
  }
  ArchConfig Single = CoRes[Dominant].Arch;
  std::printf("delay-dominant stage: %s; single architecture: P=%lld "
              "R=%lld S=%lld\n\n",
              Layers[Dominant].Name.c_str(),
              static_cast<long long>(Single.NumPEs),
              static_cast<long long>(Single.RegWordsPerPE),
              static_cast<long long>(Single.SramWords));

  TablePrinter Table({"layer", "eyeriss IPC", "layer-wise IPC",
                      "single-arch IPC", "co-design P"});
  double GeoGain = 0.0;
  unsigned Count = 0;
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    Problem P = makeConvProblem(Layers[I]);
    ThistleResult SingleRes = optimizeLayer(P, Single, Tech, Dataflow);
    auto Cell = [](const ThistleResult &R) {
      return R.Found ? TablePrinter::formatDouble(R.Eval.MacIpc, 1)
                     : std::string("-");
    };
    Table.addRow({Layers[I].Name, Cell(FixedRes[I]), Cell(CoRes[I]),
                  Cell(SingleRes),
                  CoRes[I].Found
                      ? TablePrinter::formatInt(CoRes[I].Arch.NumPEs)
                      : std::string("-")});
    if (FixedRes[I].Found && CoRes[I].Found) {
      GeoGain += std::log(CoRes[I].Eval.MacIpc / FixedRes[I].Eval.MacIpc);
      ++Count;
    }
  }
  Table.print(std::cout);
  if (Count)
    std::printf("\ngeomean co-design IPC gain over Eyeriss: %.1fx (paper: "
                "often orders of magnitude)\n\n",
                std::exp(GeoGain / Count));
}

void timeDelayCoDesignLayer(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Delay);
  for (auto _ : State)
    benchmark::DoNotOptimize(optimizeLayer(P, eyerissArch(), Tech, O,
                                           eyerissAreaUm2(Tech)));
}
BENCHMARK(timeDelayCoDesignLayer)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Fig. 8",
              "Delay: Eyeriss vs layer-wise optimal architecture vs fixed "
              "architecture from the delay-dominant layer (higher IPC is "
              "better)");
  printFig8();
  return runTimings(Argc, Argv);
}
