//===- codegen/TiledNest.h - Tiled loop-nest code generation ----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the multi-level tiled loop nest a Mapping describes — the
/// paper's Fig. 1(d) / Fig. 3(e) artifact: explicit buffers at each
/// memory level with copy-in/copy-out statements hoisted out of the
/// loops whose iterators are absent from each tensor's reference ("the
/// copy-in/copy-out operation can be hoisted out through loop iterators
/// that are absent in an array's index expressions", section II).
///
/// Two consumers:
///  - a printer that renders the nest as readable pseudo-C, and
///  - an interpreter that *executes* the nest on real data with
///    bounded buffers, verifying that the mapping computes exactly the
///    reference contraction, that every access stays inside its buffer
///    (i.e. the footprint math is right), and counting the words each
///    copy moves.
///
/// The generated code uses plain copy semantics: each copy loads its
/// full tile (no cross-tile halo streaming), so its transfer counts are
/// an upper bound on the Algorithm-1 streaming model; the interpreter's
/// counts are validated against the matching copy-semantics closed form
/// in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_CODEGEN_TILEDNEST_H
#define THISTLE_CODEGEN_TILEDNEST_H

#include "ir/Mapping.h"
#include "ir/Problem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// One statement of the generated nest.
struct NestNode {
  enum class Kind {
    Loop,     ///< Sequential tile loop.
    Parallel, ///< Spatial (forall) loop across PEs.
    CopyIn,   ///< Load a tensor tile into this level's buffer.
    CopyOut,  ///< Write a read-write tensor tile back.
    Compute,  ///< The innermost multiply-accumulate.
  };
  Kind K = Kind::Compute;

  // Loop / Parallel.
  unsigned Iter = 0;        ///< Iterator index.
  TileLevel Level = TileLevel::Register; ///< Tiling level of the loop.
  std::int64_t Trip = 1;    ///< Trip count.

  // CopyIn / CopyOut.
  unsigned TensorIdx = 0;   ///< Which tensor.
  TileLevel BufferLevel = TileLevel::Register; ///< SRAM or register copy.

  std::vector<NestNode> Body; ///< Children (loops only).
};

/// The generated program: a statement sequence at the top level.
struct TiledNest {
  std::vector<NestNode> Stmts;
};

/// Builds the tiled nest for \p Map (which must validate). Trip-1 loops
/// are elided; copies are hoisted maximally per tensor and level.
TiledNest buildTiledNest(const Problem &Prob, const Mapping &Map);

/// Renders Fig. 1(d)-style pseudo-C.
std::string printTiledNest(const Problem &Prob, const Mapping &Map,
                           const TiledNest &Nest);

/// Interpreter outcome.
struct InterpResult {
  bool Ok = false;          ///< Ran to completion without violations.
  std::string Error;        ///< Diagnostic when !Ok.
  /// Words moved per tensor: [tensor] -> {to SRAM, from SRAM (RW),
  /// to registers, from registers (RW)}.
  struct Traffic {
    std::int64_t DramToSram = 0;
    std::int64_t SramToDram = 0;
    std::int64_t SramToReg = 0;
    std::int64_t RegToSram = 0;
  };
  std::vector<Traffic> PerTensor;
  /// Final contents of the read-write tensor (flattened over its dense
  /// data-space hull).
  std::vector<double> Output;
};

/// Executes \p Nest on deterministic pseudo-random inputs. The read-write
/// tensor starts at zero. Buffer capacities are exactly the tile
/// footprints the mapping implies; any out-of-buffer access fails the
/// run.
InterpResult interpretTiledNest(const Problem &Prob, const Mapping &Map,
                                const TiledNest &Nest,
                                std::uint64_t InputSeed = 1);

/// The reference result: the dense contraction
/// Out[..] += prod_inputs In_i[..] over the full iteration space, on the
/// same pseudo-random inputs.
std::vector<double> referenceContraction(const Problem &Prob,
                                         std::uint64_t InputSeed = 1);

} // namespace thistle

#endif // THISTLE_CODEGEN_TILEDNEST_H
