# Empty compiler generated dependencies file for multilevel_hierarchy.
# This may be replaced when dependencies are built.
