//===- examples/multilevel_hierarchy.cpp - Deeper memory hierarchies ------===//
//
// Demonstrates the hierarchy-generic engine: optimize one conv layer on
// the classic 3-level machine, on a 4-level machine with a per-PE
// scratchpad, and on a 5-level machine described in the text format —
// then cross-check the GP design with the generic mapper search. The
// classic machine runs on exactly the same engine the fixed nestmodel
// pipeline wraps.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "multilevel/MultiGp.h"
#include "nestmodel/Mapper.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <string>

using namespace thistle;

namespace {

void report(const char *Title, const Problem &Prob, const Hierarchy &H,
            const MultiResult &R) {
  std::printf("--- %s ---\n", Title);
  if (!R.Found) {
    std::printf("no legal design found\n\n");
    return;
  }
  std::printf("energy %.2f pJ/MAC, IPC %.1f, PEs used %lld\n",
              R.Eval.EnergyPerMacPj, R.Eval.MacIpc,
              static_cast<long long>(R.Eval.Profile.PEsUsed));
  for (unsigned B = 0; B < H.numBoundaries(); ++B)
    std::printf("  %-12s <-> %-12s : %lld words\n",
                H.Levels[B].Name.c_str(), H.Levels[B + 1].Name.c_str(),
                static_cast<long long>(R.Eval.Profile.boundaryWords(B)));
  for (unsigned L = 0; L + 1 < H.numLevels(); ++L)
    std::printf("  %-12s occupancy: %lld / %lld words\n",
                H.Levels[L].Name.c_str(),
                static_cast<long long>(R.Eval.Profile.Occupancy[L]),
                static_cast<long long>(H.Levels[L].CapacityWords));
  std::printf("\n");
  (void)Prob;
}

} // namespace

int main() {
  ConvLayer Layer = resnet18Layers()[8]; // 256x256x14x14, 3x3.
  Problem Prob = makeConvProblem(Layer);
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();

  std::printf("layer %s on %lld PEs\n\n", Layer.Name.c_str(),
              static_cast<long long>(Arch.NumPEs));

  MultiOptions Opts;
  Opts.MaxPermCombos = 24;

  Hierarchy Classic = Hierarchy::classic3Level(Arch, Tech);
  report("3-level: registers / shared SRAM / DRAM", Prob, Classic,
         optimizeHierarchy(Prob, Classic, Opts));

  Hierarchy Spad =
      Hierarchy::withScratchpad(Arch, Tech, /*SpadWords=*/1024,
                                /*SramWords=*/Arch.SramWords);
  report("4-level: registers / per-PE scratchpad / shared SRAM / DRAM",
         Prob, Spad, optimizeHierarchy(Prob, Spad, Opts));

  // Any machine loads from the text format (inner to outer; capacity in
  // words with "-" = unbounded, access pJ/word, bandwidth words/cycle).
  const std::string FiveLevelSpec = "pes 168\n"
                                    "mac-pj 2.2\n"
                                    "fanout 2\n"
                                    "level RegisterFile 64    0.58  1e9\n"
                                    "level Scratchpad   1024  0.57  8\n"
                                    "level SRAM-L1      16384 2.29  16\n"
                                    "level SRAM-L2      65536 4.57  16\n"
                                    "level DRAM         -     128.0 4\n";
  Hierarchy Deep;
  std::string Error;
  if (!parseHierarchy(FiveLevelSpec, Deep, Error)) {
    std::printf("parse error: %s\n", Error.c_str());
    return 1;
  }
  MultiResult DeepR = optimizeHierarchy(Prob, Deep, Opts);
  report("5-level: parsed from the text format", Prob, Deep, DeepR);

  // The generic mapper searches the same machine directly — the paper's
  // Fig. 4 Mapper-vs-GP comparison at arbitrary depth.
  if (DeepR.Found) {
    MapperOptions MapOpts;
    MapOpts.MaxTrials = 4000;
    MapOpts.VictoryCondition = 1000;
    MultiMapperResult MR = searchMultiMappings(Prob, Deep, MapOpts);
    if (MR.Found)
      std::printf("mapper cross-check on the 5-level machine: "
                  "%.2f pJ/MAC over %u trials (GP %.2f) -> ratio %.3f\n",
                  MR.BestEval.EnergyPerMacPj, MR.Trials,
                  DeepR.Eval.EnergyPerMacPj,
                  DeepR.Eval.EnergyPerMacPj / MR.BestEval.EnergyPerMacPj);
  }
  return 0;
}
