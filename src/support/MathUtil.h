//===- support/MathUtil.h - Integer math helpers ----------------*- C++ -*-===//
//
// Part of the Thistle reproduction of "Comprehensive Accelerator-Dataflow
// Co-design Optimization for Convolutional Neural Networks" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small integer-math helpers shared across the project: divisor
/// enumeration, divisor/power-of-two candidate selection for the rounding
/// stage (paper section IV), and ceiling division.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SUPPORT_MATHUTIL_H
#define THISTLE_SUPPORT_MATHUTIL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace thistle {

/// Returns ceil(Num / Den) for positive integers.
inline std::int64_t ceilDiv(std::int64_t Num, std::int64_t Den) {
  return (Num + Den - 1) / Den;
}

/// Returns true if \p X is a power of two (X > 0).
bool isPowerOfTwo(std::int64_t X);

/// Returns the smallest power of two >= \p X (X >= 1).
std::int64_t nextPowerOfTwo(std::int64_t X);

/// Returns all positive divisors of \p N in increasing order.
///
/// \p N must be >= 1. Runs in O(sqrt(N)).
std::vector<std::int64_t> divisorsOf(std::int64_t N);

/// Returns the (up to) \p Count divisors of \p N closest to \p Target.
///
/// Ties are broken toward the smaller divisor. The result is sorted
/// increasingly. Used to pick integer tile-size candidates around the real
/// solution returned by the GP solver (paper section IV).
std::vector<std::int64_t> closestDivisors(std::int64_t N, double Target,
                                          unsigned Count);

/// Returns the (up to) \p Count powers of two closest to \p Target in log
/// space, all >= \p MinValue. Sorted increasingly.
///
/// Used to pick register/SRAM capacity candidates ("we choose N closest
/// powers of two near the real solution", paper section IV).
std::vector<std::int64_t> closestPowersOfTwo(double Target, unsigned Count,
                                             std::int64_t MinValue = 1);

/// Returns the product of all elements (empty product = 1).
std::int64_t productOf(const std::vector<std::int64_t> &Values);

/// Precomputed divisor lists, closed under divisibility: populating N also
/// keys every divisor of N, so any chain of "divisors of a divisor"
/// lookups hits the table. Built once per problem, then shared read-only
/// (and hence race-free) across search worker threads; repeated
/// trial-division in the sampling hot loop would otherwise dominate.
class DivisorTable {
public:
  /// Ensures \p N and every divisor of \p N are keyed.
  void populate(std::int64_t N);

  /// Returns the divisors of \p N, which must be covered by a prior
  /// populate() call.
  const std::vector<std::int64_t> &of(std::int64_t N) const;

private:
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> Table;
};

} // namespace thistle

#endif // THISTLE_SUPPORT_MATHUTIL_H
