# Empty compiler generated dependencies file for test_gpbuilder.
# This may be replaced when dependencies are built.
