//===- bench/bench_fig7_ipc_eyeriss.cpp - Paper Fig. 7 --------------------===//
//
// Reproduces Fig. 7: throughput (MAC IPC) of delay-optimized dataflows on
// the fixed Eyeriss architecture, Mapper baseline vs Thistle, with the
// SpeedUp = ThistleIPC / MapperIPC series. The theoretical maximum is the
// PE count (168). Expected shape: Thistle at least on par, with more
// pronounced differences than in the energy experiment.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printFig7() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  EnergyModel Energy(Tech);
  ThistleOptions TOpts =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Delay);

  TablePrinter Table({"layer", "mapper IPC", "thistle IPC", "SpeedUp",
                      "thistle PEs used"});
  double GeoMean = 0.0;
  unsigned Count = 0;
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    MapperResult M = searchMappings(P, Arch, Energy,
                                    mapperOptions(SearchObjective::Delay));
    ThistleResult T = optimizeLayer(P, Arch, Tech, TOpts);
    std::string MCell =
        M.Found ? TablePrinter::formatDouble(M.BestEval.MacIpc, 1)
                : std::string("-");
    std::string TCell = T.Found
        ? TablePrinter::formatDouble(T.Eval.MacIpc, 1)
        : std::string("-");
    std::string Up = "-";
    if (M.Found && T.Found) {
      double S = T.Eval.MacIpc / M.BestEval.MacIpc;
      Up = TablePrinter::formatDouble(S, 3);
      GeoMean += std::log(S);
      ++Count;
    }
    Table.addRow({L.Name, MCell, TCell, Up,
                  T.Found ? std::to_string(T.Eval.Profile.PEsUsed)
                          : std::string("-")});
  }
  Table.print(std::cout);
  if (Count)
    std::printf("\ngeomean SpeedUp: %.3f (theoretical max IPC = 168)\n\n",
                std::exp(GeoMean / Count));
}

void timeThistleDelayLayer(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  ThistleOptions O =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Delay);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        optimizeLayer(P, eyerissArch(), TechParams::cgo45nm(), O));
}
BENCHMARK(timeThistleDelayLayer)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Fig. 7",
              "Throughput on the fixed Eyeriss architecture: Mapper vs "
              "Thistle (higher IPC is better; max = 168)");
  printFig7();
  return runTimings(Argc, Argv);
}
