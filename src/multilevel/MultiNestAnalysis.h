//===- multilevel/MultiNestAnalysis.h - L-level analytical model -*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbitrary-depth generalization of nestmodel/NestAnalysis: for each
/// tensor and each adjacent-level boundary b (between level b and b+1),
/// the words moved across it under the Algorithm-1 counting rules:
///
///  - walk level (b+1)'s loops inner-to-outer with hoisting and the
///    streaming union on the innermost present iterator;
///  - multiply by every trip count of the levels above b+1 (per-level
///    model, no reuse across outer tiles);
///  - spatial factors: boundaries strictly below the fan-out are per-PE
///    private traffic (multiply by all spatial trips); the boundary
///    crossing the fan-out multicast-collapses absent iterators
///    (multiply by present spatial trips only, Eq. 2); boundaries above
///    the fan-out carry tiles that already span the grid (no spatial
///    multiplier).
///
/// Plus occupancy per level and the energy/delay evaluation:
/// energy = (4 eps_0 + eps_op) Nops + sum_b W_b (eps_b + eps_{b+1});
/// cycles = max(Nops / PEs, max_l (W_{l-1} + W_l) / (BW_l * instances)).
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_MULTILEVEL_MULTINESTANALYSIS_H
#define THISTLE_MULTILEVEL_MULTINESTANALYSIS_H

#include "multilevel/MultiMapping.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thistle {

/// Access volumes of one mapping on one hierarchy.
struct MultiProfile {
  /// Words[b][t]: words moved across boundary b (levels b <-> b+1) for
  /// tensor t, reads + writes (read-write tensors count twice).
  std::vector<std::vector<std::int64_t>> Words;
  /// Occupancy[l]: sum of tensor tile footprints resident at level l.
  std::vector<std::int64_t> Occupancy;
  std::int64_t PEsUsed = 1;

  /// Total words across boundary \p B over all tensors.
  std::int64_t boundaryWords(unsigned B) const;
};

/// Analyzes \p Map on \p H (both must validate).
MultiProfile analyzeMultiNest(const Problem &Prob, const Hierarchy &H,
                              const MultiMapping &Map);

/// Evaluated metrics of one multilevel design, with the paper's Eq. 3
/// energy decomposition and Eq. 5/section V-B delay decomposition carried
/// as per-level vectors. On a classic 3-level machine the components map
/// onto the fixed-depth EvalResult exactly (bit-for-bit):
/// EnergyPerLevelPj = {Reg, Sram, Dram} and CyclesPerLevel =
/// {0, SramCycles, DramCycles}.
struct MultiEvalResult {
  bool Legal = false;
  std::string IllegalReason;

  double EnergyPj = 0.0;
  double EnergyPerMacPj = 0.0;
  /// (4 eps_0 + eps_op) * Nops: the compute term including the register
  /// accesses of every MAC.
  double MacEnergyPj = 0.0;
  /// EnergyPerLevelPj[l] = eps_l * (W_{l-1} + W_l): each level's access
  /// energy over the traffic of its two adjacent boundaries (W_{-1} =
  /// W_{L-1} = 0). EnergyPj = MacEnergyPj + sum_l EnergyPerLevelPj[l].
  std::vector<double> EnergyPerLevelPj;

  double EdpPjCycles = 0.0;

  double Cycles = 0.0;
  double ComputeCycles = 0.0; ///< Nops / PEsUsed.
  /// CyclesPerLevel[l] = (W_{l-1} + W_l) / (BW_l * instances), l >= 1;
  /// instances = PEsUsed for per-PE levels, 1 for shared ones.
  /// CyclesPerLevel[0] = 0 (register accesses ride the MAC pipe).
  std::vector<double> CyclesPerLevel;
  double MacIpc = 0.0;

  MultiProfile Profile;
};

/// Evaluates \p Map on \p H.
MultiEvalResult evaluateMultiMapping(const Problem &Prob, const Hierarchy &H,
                                     const MultiMapping &Map);

/// Prices an access-count profile: legality against the level capacities
/// and PE count, the Eq. 3 energy decomposition and the Eq. 5/section V-B
/// delay decomposition. This is the backend-neutral half of
/// evaluateMultiMapping — every CostEvaluator backend produces a
/// MultiProfile its own way and shares this pricing, so two backends that
/// agree on counts agree on energy/delay bit for bit.
MultiEvalResult priceMultiProfile(const Problem &Prob, const Hierarchy &H,
                                  MultiProfile Profile);

} // namespace thistle

#endif // THISTLE_MULTILEVEL_MULTINESTANALYSIS_H
