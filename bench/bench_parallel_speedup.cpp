//===- bench/bench_parallel_speedup.cpp - Threaded engine throughput ------===//
//
// Measures the wall-clock throughput of the two parallelized hot loops —
// the perm-class pair sweep (pairs/s) and the mapper search (trials/s) —
// at 1 thread vs. N threads on a Table-2 workload, and writes the numbers
// to BENCH_parallel.json so the perf trajectory is tracked across PRs.
// Both engines are bit-deterministic under the thread count, so the
// speedup is pure wall clock: the measured runs are checked to agree.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace thistle;
using namespace thistle::bench;

namespace {

struct Measurement {
  double Seconds1 = 0.0;
  double SecondsN = 0.0;
  double Units = 0.0; ///< Pairs solved / trials run (same at both counts).
};

/// Min-of-N repetitions per timing (see bench::minSecondsOfN).
constexpr unsigned Reps = 3;

Measurement measureSweep(const Problem &P, unsigned Threads) {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  ThistleOptions Opts =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);

  Measurement M;
  ThistleResult Seq, Par;
  Opts.Threads = 1;
  M.Seconds1 =
      minSecondsOfN(Reps, [&] { Seq = optimizeLayer(P, Arch, Tech, Opts); });

  Opts.Threads = Threads;
  M.SecondsN =
      minSecondsOfN(Reps, [&] { Par = optimizeLayer(P, Arch, Tech, Opts); });

  // Planned pairs, not solved: throughput counts GP attempts fanned out,
  // regardless of per-pair outcome.
  M.Units = Seq.Stats.PairsPlanned;
  if (Seq.Eval.EnergyPj != Par.Eval.EnergyPj)
    std::printf("WARNING: sweep result differs across thread counts!\n");
  return M;
}

Measurement measureMapper(const Problem &P, unsigned Threads) {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Arch = eyerissArch();
  EnergyModel Energy(Tech);
  MapperOptions Opts = mapperOptions(SearchObjective::Energy);
  Opts.MaxTrials = 8000;
  Opts.VictoryCondition = 8000; // Let the budget dominate the timing.

  Measurement M;
  MapperResult Seq, Par;
  Opts.Threads = 1;
  M.Seconds1 =
      minSecondsOfN(Reps, [&] { Seq = searchMappings(P, Arch, Energy, Opts); });

  Opts.Threads = Threads;
  M.SecondsN =
      minSecondsOfN(Reps, [&] { Par = searchMappings(P, Arch, Energy, Opts); });

  M.Units = Seq.Trials;
  if (Seq.Trials != Par.Trials ||
      Seq.BestEval.EnergyPj != Par.BestEval.EnergyPj)
    std::printf("WARNING: mapper result differs across thread counts!\n");
  return M;
}

void printRow(const char *Name, const Measurement &M, unsigned Threads) {
  std::printf("%-10s %10.0f units  %8.2fs @1t (%8.1f/s)  %8.2fs @%ut "
              "(%8.1f/s)  speedup %.2fx\n",
              Name, M.Units, M.Seconds1, M.Units / M.Seconds1, M.SecondsN,
              Threads, M.Units / M.SecondsN, M.Seconds1 / M.SecondsN);
}

void writeJson(const char *Path, const std::string &Workload,
               unsigned ThreadsRequested, unsigned Threads,
               const Measurement &Sweep, const Measurement &Mapper) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path);
    return;
  }
  std::fprintf(
      F,
      "{\n"
      "  \"bench\": \"parallel_speedup\",\n"
      "  \"workload\": \"%s\",\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"threads_requested\": %u,\n"
      "  \"threads\": %u,\n"
      "  \"oversubscribed\": %s,\n"
      "  \"timing\": \"min_of_%u\",\n"
      "  \"sweep\": {\n"
      "    \"pairs\": %.0f,\n"
      "    \"seconds_1t\": %.4f,\n"
      "    \"seconds_nt\": %.4f,\n"
      "    \"pairs_per_s_1t\": %.2f,\n"
      "    \"pairs_per_s_nt\": %.2f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"mapper\": {\n"
      "    \"trials\": %.0f,\n"
      "    \"seconds_1t\": %.4f,\n"
      "    \"seconds_nt\": %.4f,\n"
      "    \"trials_per_s_1t\": %.2f,\n"
      "    \"trials_per_s_nt\": %.2f,\n"
      "    \"speedup\": %.3f\n"
      "  }\n"
      "}\n",
      Workload.c_str(), ThreadPool::defaultWorkerCount(), ThreadsRequested,
      Threads, oversubscribed(ThreadsRequested) ? "true" : "false", Reps,
      Sweep.Units, Sweep.Seconds1, Sweep.SecondsN,
      Sweep.Units / Sweep.Seconds1, Sweep.Units / Sweep.SecondsN,
      Sweep.Seconds1 / Sweep.SecondsN, Mapper.Units, Mapper.Seconds1,
      Mapper.SecondsN, Mapper.Units / Mapper.Seconds1,
      Mapper.Units / Mapper.SecondsN, Mapper.Seconds1 / Mapper.SecondsN);
  std::fclose(F);
}

} // namespace

int main() {
  printHeader("parallel engine throughput",
              "Wall-clock speedup of the perm-class pair sweep and the "
              "mapper search\nat 1 vs N worker threads on a Table-2 "
              "workload. Results are identical at\nany thread count; on "
              "single-core hosts the speedup degenerates to ~1x.");

  // A mid-network ResNet-18 stage: large enough that each GP solve does
  // real work, small enough that the 1-thread baseline stays in seconds.
  ConvLayer L = resnet18Layers()[4];
  Problem P = makeConvProblem(L);
  // Scaling is measured at min(request, hardware) workers: timing more
  // software threads than hardware threads measures the scheduler, not
  // the engines. The request and the clamp land in the JSON.
  const unsigned ThreadsRequested =
      std::max(4u, ThreadPool::defaultWorkerCount());
  const unsigned Threads = clampThreads(ThreadsRequested);
  if (oversubscribed(ThreadsRequested))
    std::printf("note: %u threads requested but only %u hardware threads; "
                "timing the clamped count\n\n",
                ThreadsRequested, ThreadPool::defaultWorkerCount());

  Measurement Sweep = measureSweep(P, Threads);
  Measurement Mapper = measureMapper(P, Threads);
  printRow("sweep", Sweep, Threads);
  printRow("mapper", Mapper, Threads);

  writeJson("BENCH_parallel.json", L.Name, ThreadsRequested, Threads, Sweep,
            Mapper);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
