
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_fixed_arch_energy.cpp" "bench/CMakeFiles/bench_fig6_fixed_arch_energy.dir/bench_fig6_fixed_arch_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_fixed_arch_energy.dir/bench_fig6_fixed_arch_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thistle/CMakeFiles/thistle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/thistle_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/thistle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/multilevel/CMakeFiles/thistle_multilevel.dir/DependInfo.cmake"
  "/root/repo/build/src/nestmodel/CMakeFiles/thistle_nestmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/thistle_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/thistle_model.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/thistle_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/thistle_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/thistle_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/thistle_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
