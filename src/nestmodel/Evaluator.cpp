//===- nestmodel/Evaluator.cpp - Energy/delay evaluation ------------------===//

#include "nestmodel/Evaluator.h"

#include "nestmodel/Mapper.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace thistle;

EvalResult thistle::evaluateMapping(const Problem &Prob, const Mapping &Map,
                                    const ArchConfig &Arch,
                                    const EnergyModel &Energy) {
  EvalResult Result;
  Result.Profile = analyzeNest(Prob, Map);
  const NestProfile &P = Result.Profile;

  // Legality.
  Result.Legal = true;
  std::ostringstream Why;
  if (P.RegTileWords > Arch.RegWordsPerPE) {
    Result.Legal = false;
    Why << "register tile " << P.RegTileWords << " words > capacity "
        << Arch.RegWordsPerPE << "; ";
  }
  if (P.SramTileWords > Arch.SramWords) {
    Result.Legal = false;
    Why << "SRAM tile " << P.SramTileWords << " words > capacity "
        << Arch.SramWords << "; ";
  }
  if (P.PEsUsed > Arch.NumPEs) {
    Result.Legal = false;
    Why << "uses " << P.PEsUsed << " PEs > available " << Arch.NumPEs << "; ";
  }
  Result.IllegalReason = Why.str();

  const double Nops = static_cast<double>(Prob.numOps());
  const double DvDram = static_cast<double>(P.dramTraffic());
  const double DvSramReg = static_cast<double>(P.sramRegTraffic());

  // Energy, Eq. 3: per-access energies from the actual capacities.
  const double EpsR =
      Energy.regAccessPj(static_cast<double>(Arch.RegWordsPerPE));
  const double EpsS = Energy.sramAccessPj(static_cast<double>(Arch.SramWords));
  const double EpsD = Energy.dramAccessPj();
  Result.MacEnergyPj = (4.0 * EpsR + Energy.macPj()) * Nops;
  Result.RegEnergyPj = EpsR * DvSramReg;
  Result.SramEnergyPj = EpsS * (DvSramReg + DvDram);
  Result.DramEnergyPj = EpsD * DvDram;
  Result.EnergyPj = Result.MacEnergyPj + Result.RegEnergyPj +
                    Result.SramEnergyPj + Result.DramEnergyPj;
  Result.EnergyPerMacPj = Result.EnergyPj / Nops;

  // Delay: each component processes its events at its throughput; the
  // slowest one bounds execution (section V-B).
  Result.ComputeCycles = Nops / static_cast<double>(P.PEsUsed);
  Result.DramCycles = DvDram / Arch.DramBandwidth;
  Result.SramCycles = (DvSramReg + DvDram) / Arch.SramBandwidth;
  Result.Cycles = std::max(
      {Result.ComputeCycles, Result.DramCycles, Result.SramCycles, 1.0});
  Result.MacIpc = Nops / Result.Cycles;
  Result.EdpPjCycles = Result.EnergyPj * Result.Cycles;
  return Result;
}

double thistle::objectiveValue(const EvalResult &Eval,
                               SearchObjective Objective) {
  switch (Objective) {
  case SearchObjective::Energy:
    return Eval.EnergyPj;
  case SearchObjective::Delay:
    return Eval.Cycles;
  case SearchObjective::EnergyDelayProduct:
    return Eval.EdpPjCycles;
  }
  assert(false && "unknown search objective");
  return 0.0;
}
