//===- bench/bench_fig5_codesign_energy.cpp - Paper Fig. 5 ----------------===//
//
// Reproduces Fig. 5: energy of the best Eyeriss-architecture dataflow
// versus the layer-wise architecture-dataflow co-design at the same
// silicon area, for every conv stage of both pipelines. Expected shape:
// Eyeriss 20-30 pJ/MAC; co-design ~5 pJ/MAC for most layers and < 10 for
// all. Then times one co-design run.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printFig5() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  ThistleOptions Dataflow =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  ThistleOptions CoDesign =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Energy);

  TablePrinter Table({"layer", "eyeriss pJ/MAC", "co-design pJ/MAC",
                      "improvement", "P", "R", "S words",
                      "area mm^2"});
  double WorstCo = 0.0;
  for (const ConvLayer &L : allPaperLayers()) {
    Problem P = makeConvProblem(L);
    ThistleResult Fixed = optimizeLayer(P, Eyeriss, Tech, Dataflow);
    ThistleResult Co = optimizeLayer(P, Eyeriss, Tech, CoDesign, Budget);
    if (!Fixed.Found || !Co.Found) {
      Table.addRow({L.Name, "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    WorstCo = std::max(WorstCo, Co.Eval.EnergyPerMacPj);
    Table.addRow(
        {L.Name, TablePrinter::formatDouble(Fixed.Eval.EnergyPerMacPj, 2),
         TablePrinter::formatDouble(Co.Eval.EnergyPerMacPj, 2),
         TablePrinter::formatDouble(
             Fixed.Eval.EnergyPerMacPj / Co.Eval.EnergyPerMacPj, 2) + "x",
         TablePrinter::formatInt(Co.Arch.NumPEs),
         TablePrinter::formatInt(Co.Arch.RegWordsPerPE),
         TablePrinter::formatInt(Co.Arch.SramWords),
         TablePrinter::formatDouble(Co.Arch.areaUm2(Tech) * 1e-6, 3)});
  }
  Table.print(std::cout);
  std::printf("\nworst co-designed layer: %.2f pJ/MAC (paper: < 10 pJ/MAC "
              "for all layers, ~5 for most)\n\n",
              WorstCo);
}

void timeCoDesignLayer(benchmark::State &State) {
  Problem P = makeConvProblem(resnet18Layers()[1]);
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Energy);
  for (auto _ : State)
    benchmark::DoNotOptimize(optimizeLayer(P, eyerissArch(), Tech, O,
                                           eyerissAreaUm2(Tech)));
}
BENCHMARK(timeCoDesignLayer)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Fig. 5",
              "Energy: Eyeriss-architecture best dataflow vs layer-wise "
              "co-designed architecture at equal area (lower is better)");
  printFig5();
  return runTimings(Argc, Argv);
}
