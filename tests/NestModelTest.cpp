//===- tests/NestModelTest.cpp - nestmodel/ tests -------------------------===//
//
// The central property test of the repository: the analytical nest model
// (our Timeloop substitute) must agree *exactly* with the brute-force
// tiled-loop oracle on every tensor at every level, across randomized
// mappings of matmul and conv problems. Plus unit tests for the
// energy/delay evaluator and the search baseline.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Evaluator.h"
#include "nestmodel/Mapper.h"
#include "nestmodel/NestAnalysis.h"
#include "sim/TiledLoopSim.h"
#include "support/MathUtil.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

/// Draws a random valid mapping by hierarchical divisor sampling.
Mapping randomMapping(const Problem &P, Rng &R) {
  Mapping M;
  M.Factors.resize(P.numIterators());
  for (unsigned I = 0; I < P.numIterators(); ++I) {
    std::int64_t Extent = P.iterators()[I].Extent;
    std::int64_t RegF = R.pick(divisorsOf(Extent));
    std::int64_t Rest = Extent / RegF;
    std::int64_t SpatF = R.pick(divisorsOf(Rest));
    Rest /= SpatF;
    std::int64_t PeF = R.pick(divisorsOf(Rest));
    M.factor(I, TileLevel::Register) = RegF;
    M.factor(I, TileLevel::Spatial) = SpatF;
    M.factor(I, TileLevel::PeTemporal) = PeF;
    M.factor(I, TileLevel::DramTemporal) = Rest / PeF;
  }
  M.DramPerm.resize(P.numIterators());
  for (unsigned I = 0; I < P.numIterators(); ++I)
    M.DramPerm[I] = I;
  M.PePerm = M.DramPerm;
  R.shuffle(M.DramPerm);
  R.shuffle(M.PePerm);
  return M;
}

void expectModelMatchesOracle(const Problem &P, const Mapping &M) {
  ASSERT_TRUE(M.validate(P).empty());
  NestProfile Model = analyzeNest(P, M);
  SimResult Oracle = simulateTiledNest(P, M);
  for (std::size_t T = 0; T < P.tensors().size(); ++T) {
    const char *Name = P.tensors()[T].Name.c_str();
    EXPECT_EQ(Model.PerTensor[T].DramToSram, Oracle.PerTensor[T].DramToSram)
        << Name << " DRAM->SRAM";
    EXPECT_EQ(Model.PerTensor[T].SramToDram, Oracle.PerTensor[T].SramToDram)
        << Name << " SRAM->DRAM";
    EXPECT_EQ(Model.PerTensor[T].SramToReg, Oracle.PerTensor[T].SramToReg)
        << Name << " SRAM->reg";
    EXPECT_EQ(Model.PerTensor[T].RegToSram, Oracle.PerTensor[T].RegToSram)
        << Name << " reg->SRAM";
  }
}

} // namespace

TEST(NestAnalysis, MatchesOracleOnRandomMatmulMappings) {
  Problem P = makeMatmulProblem(8, 12, 6);
  Rng R(2024);
  for (int Trial = 0; Trial < 60; ++Trial) {
    Mapping M = randomMapping(P, R);
    SCOPED_TRACE("matmul trial " + std::to_string(Trial));
    expectModelMatchesOracle(P, M);
  }
}

TEST(NestAnalysis, MatchesOracleOnRandomConvMappings) {
  ConvLayer L;
  L.K = 4;
  L.C = 3;
  L.Hin = 6;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  Rng R(7);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Mapping M = randomMapping(P, R);
    SCOPED_TRACE("conv trial " + std::to_string(Trial));
    expectModelMatchesOracle(P, M);
  }
}

TEST(NestAnalysis, MatchesOracleOnStridedConv) {
  ConvLayer L;
  L.K = 2;
  L.C = 2;
  L.Hin = 12;
  L.Win = 12;
  L.R = 3;
  L.S = 3;
  L.StrideX = 2;
  L.StrideY = 2;
  Problem P = makeConvProblem(L);
  Rng R(99);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Mapping M = randomMapping(P, R);
    SCOPED_TRACE("strided conv trial " + std::to_string(Trial));
    expectModelMatchesOracle(P, M);
  }
}

TEST(NestAnalysis, MatchesOracleOnHolePunchingStride) {
  // 1x1 kernel at stride 2: strided tiles leave holes; the min(E, shift)
  // union rule must match the oracle exactly.
  ConvLayer L;
  L.K = 2;
  L.C = 2;
  L.Hin = 16;
  L.Win = 16;
  L.R = 1;
  L.S = 1;
  L.StrideX = 2;
  L.StrideY = 2;
  Problem P = makeConvProblem(L);
  Rng R(5);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Mapping M = randomMapping(P, R);
    SCOPED_TRACE("hole trial " + std::to_string(Trial));
    expectModelMatchesOracle(P, M);
  }
}

TEST(NestAnalysis, OccupanciesAndPEs) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Register) = 2;
  M.factor(0, TileLevel::Spatial) = 4;
  M.factor(1, TileLevel::Register) = 4;
  M.factor(1, TileLevel::PeTemporal) = 2;
  ASSERT_TRUE(M.validate(P).empty());
  NestProfile Prof = analyzeNest(P, M);
  EXPECT_EQ(Prof.PEsUsed, 4);
  // Register tiles: C 2x4, A 2x8, B 8x4 -> 8 + 16 + 32.
  EXPECT_EQ(Prof.RegTileWords, 8 + 16 + 32);
  // SRAM tiles: C 8x8, A 8x8, B 8x8.
  EXPECT_EQ(Prof.SramTileWords, 3 * 64);
}

TEST(Evaluator, EnergyDecompositionEq3) {
  Problem P = makeMatmulProblem(4, 4, 4);
  Mapping M = Mapping::untiled(P);
  ArchConfig Arch;
  Arch.NumPEs = 4;
  Arch.RegWordsPerPE = 64;
  Arch.SramWords = 256;
  EnergyModel E(TechParams::cgo45nm());
  EvalResult Res = evaluateMapping(P, M, Arch, E);
  ASSERT_TRUE(Res.Legal);

  double Nops = 64.0;
  double EpsR = E.regAccessPj(64);
  double EpsS = E.sramAccessPj(256);
  NestProfile Prof = analyzeNest(P, M);
  double DvD = static_cast<double>(Prof.dramTraffic());
  double DvSR = static_cast<double>(Prof.sramRegTraffic());
  EXPECT_NEAR(Res.MacEnergyPj, (4 * EpsR + 2.2) * Nops, 1e-9);
  EXPECT_NEAR(Res.RegEnergyPj, EpsR * DvSR, 1e-9);
  EXPECT_NEAR(Res.SramEnergyPj, EpsS * (DvSR + DvD), 1e-9);
  EXPECT_NEAR(Res.DramEnergyPj, 128.0 * DvD, 1e-9);
  EXPECT_NEAR(Res.EnergyPj,
              Res.MacEnergyPj + Res.RegEnergyPj + Res.SramEnergyPj +
                  Res.DramEnergyPj,
              1e-9);
  EXPECT_NEAR(Res.EnergyPerMacPj, Res.EnergyPj / Nops, 1e-12);
}

TEST(Evaluator, DelayIsMaxOfComponents) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  ArchConfig Arch;
  Arch.NumPEs = 4;
  Arch.RegWordsPerPE = 4096;
  Arch.SramWords = 65536;
  Arch.DramBandwidth = 2.0;
  Arch.SramBandwidth = 64.0;
  EnergyModel E(TechParams::cgo45nm());
  EvalResult Res = evaluateMapping(P, M, Arch, E);
  EXPECT_DOUBLE_EQ(
      Res.Cycles,
      std::max({Res.ComputeCycles, Res.DramCycles, Res.SramCycles, 1.0}));
  EXPECT_DOUBLE_EQ(Res.MacIpc, 512.0 / Res.Cycles);
  // IPC can never exceed the PEs in use.
  EXPECT_LE(Res.MacIpc, static_cast<double>(Res.Profile.PEsUsed) + 1e-9);
}

TEST(Evaluator, FlagsCapacityViolations) {
  Problem P = makeMatmulProblem(16, 16, 16);
  Mapping M = Mapping::untiled(P); // 3 x 256-word tiles.
  ArchConfig Tiny;
  Tiny.NumPEs = 1;
  Tiny.RegWordsPerPE = 8;
  Tiny.SramWords = 16;
  EnergyModel E(TechParams::cgo45nm());
  EvalResult Res = evaluateMapping(P, M, Tiny, E);
  EXPECT_FALSE(Res.Legal);
  EXPECT_NE(Res.IllegalReason.find("register"), std::string::npos);
  EXPECT_NE(Res.IllegalReason.find("SRAM"), std::string::npos);
}

TEST(Evaluator, FlagsPEOversubscription) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Mapping M = Mapping::untiled(P);
  M.factor(0, TileLevel::Spatial) = 8;
  M.factor(0, TileLevel::Register) = 1;
  ArchConfig Arch;
  Arch.NumPEs = 4;
  Arch.RegWordsPerPE = 4096;
  Arch.SramWords = 65536;
  EnergyModel E(TechParams::cgo45nm());
  EvalResult Res = evaluateMapping(P, M, Arch, E);
  EXPECT_FALSE(Res.Legal);
  EXPECT_NE(Res.IllegalReason.find("PEs"), std::string::npos);
}

TEST(Mapper, FindsLegalMappingOnSmallConv) {
  ConvLayer L;
  L.K = 16;
  L.C = 8;
  L.Hin = 14;
  L.Win = 14;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 2000;
  Opts.VictoryCondition = 500;
  MapperResult R = searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.BestEval.Legal);
  EXPECT_TRUE(R.Best.validate(P).empty());
  EXPECT_GT(R.LegalTrials, 0u);
  // Searching should beat the trivial untiled mapping...
  EvalResult Untiled = evaluateMapping(P, Mapping::untiled(P), Arch, E);
  if (Untiled.Legal) {
    EXPECT_LE(R.BestEval.EnergyPj, Untiled.EnergyPj);
  }
}

TEST(Mapper, DeterministicForFixedSeed) {
  Problem P = makeMatmulProblem(16, 16, 16);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 500;
  Opts.Seed = 77;
  MapperResult A = searchMappings(P, Arch, E, Opts);
  MapperResult B = searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(A.Found);
  ASSERT_TRUE(B.Found);
  EXPECT_DOUBLE_EQ(A.BestEval.EnergyPj, B.BestEval.EnergyPj);
  EXPECT_EQ(A.Trials, B.Trials);
}

TEST(Mapper, ResultIsThreadCountInvariant) {
  // The batched search seeds each trial slot from (seed, round, slot) and
  // applies all bookkeeping in slot order at round boundaries, so every
  // strategy must return bit-identical results at any worker count.
  Problem P = makeMatmulProblem(16, 16, 16);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  for (MapperStrategy Strategy :
       {MapperStrategy::RandomSampling, MapperStrategy::HillClimb,
        MapperStrategy::Anneal}) {
    MapperOptions Opts;
    Opts.MaxTrials = 400;
    Opts.VictoryCondition = 150;
    Opts.Seed = 7;
    Opts.Strategy = Strategy;
    Opts.Threads = 1;
    MapperResult Ref = searchMappings(P, Arch, E, Opts);
    ASSERT_TRUE(Ref.Found);
    for (unsigned Threads : {2u, 8u}) {
      Opts.Threads = Threads;
      MapperResult R = searchMappings(P, Arch, E, Opts);
      SCOPED_TRACE("strategy " +
                   std::to_string(static_cast<int>(Strategy)) + ", " +
                   std::to_string(Threads) + " threads");
      ASSERT_TRUE(R.Found);
      EXPECT_EQ(R.Trials, Ref.Trials);
      EXPECT_EQ(R.LegalTrials, Ref.LegalTrials);
      EXPECT_EQ(R.BestEval.EnergyPj, Ref.BestEval.EnergyPj);
      EXPECT_EQ(R.BestEval.Cycles, Ref.BestEval.Cycles);
      EXPECT_EQ(R.Best.Factors, Ref.Best.Factors);
      EXPECT_EQ(R.Best.DramPerm, Ref.Best.DramPerm);
      EXPECT_EQ(R.Best.PePerm, Ref.Best.PePerm);
    }
  }
}

TEST(Mapper, DelayObjectiveImprovesIpc) {
  Problem P = makeMatmulProblem(32, 32, 32);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 3000;
  Opts.VictoryCondition = 1000;
  Opts.Objective = SearchObjective::Delay;
  MapperResult R = searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(R.Found);
  // The delay search must find some parallelism: IPC > 1 (the untiled
  // single-PE mapping would have IPC <= 1).
  EXPECT_GT(R.BestEval.MacIpc, 1.0);
}

TEST(Mapper, RespectsVictoryCondition) {
  Problem P = makeMatmulProblem(8, 8, 8);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 100000;
  Opts.VictoryCondition = 50;
  MapperResult R = searchMappings(P, Arch, E, Opts);
  EXPECT_LT(R.Trials, Opts.MaxTrials);
}

TEST(Mapper, ExpiredDeadlineStopsBeforeAnyRound) {
  Problem P = makeMatmulProblem(16, 16, 16);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 500;
  Opts.DeadlineAt = std::chrono::steady_clock::now() - std::chrono::hours(1);
  MapperResult R = searchMappings(P, Arch, E, Opts);
  EXPECT_TRUE(R.DeadlineExpired);
  EXPECT_FALSE(R.Found);
  EXPECT_EQ(R.Trials, 0u);
  EXPECT_TRUE(R.InputStatus.isOk());
}

TEST(Mapper, FarFutureDeadlineMatchesUnboundedSearch) {
  // A deadline that never fires must not perturb the RNG streams: the
  // check happens at round boundaries, outside the sampling loop.
  Problem P = makeMatmulProblem(16, 16, 16);
  ArchConfig Arch = eyerissArch();
  EnergyModel E(TechParams::cgo45nm());
  MapperOptions Opts;
  Opts.MaxTrials = 500;
  MapperResult Ref = searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(Ref.Found);
  Opts.DeadlineAt = std::chrono::steady_clock::now() + std::chrono::hours(24);
  MapperResult R = searchMappings(P, Arch, E, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_FALSE(R.DeadlineExpired);
  EXPECT_EQ(R.Trials, Ref.Trials);
  EXPECT_EQ(R.BestEval.EnergyPj, Ref.BestEval.EnergyPj);
  EXPECT_EQ(R.Best.Factors, Ref.Best.Factors);
}

TEST(Mapper, RejectsInvalidHierarchy) {
  Problem P = makeMatmulProblem(8, 8, 8);
  Hierarchy Bad; // Zero levels: validate() cannot pass.
  MultiMapperResult R = searchMultiMappings(P, Bad, MapperOptions());
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  EXPECT_EQ(R.Trials, 0u);
}
