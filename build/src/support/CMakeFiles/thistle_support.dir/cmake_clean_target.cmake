file(REMOVE_RECURSE
  "libthistle_support.a"
)
