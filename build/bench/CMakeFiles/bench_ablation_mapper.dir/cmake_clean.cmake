file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mapper.dir/bench_ablation_mapper.cpp.o"
  "CMakeFiles/bench_ablation_mapper.dir/bench_ablation_mapper.cpp.o.d"
  "bench_ablation_mapper"
  "bench_ablation_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
