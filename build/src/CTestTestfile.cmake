# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("expr")
subdirs("ir")
subdirs("model")
subdirs("sim")
subdirs("nestmodel")
subdirs("solver")
subdirs("thistle")
subdirs("workloads")
subdirs("export")
subdirs("multilevel")
subdirs("codegen")
