//===- tests/NetworkTest.cpp - Network driver and GP cache tests ----------===//
//
// The contracts of thistle::optimizeNetwork and GpSolutionCache: shape
// deduplication, bit-identical results with the cache on or off and at
// any thread count, cross-run cache hits, the CoDesign network-arch
// selection, the zero-layer guard, and the stats/report consistency
// invariant.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"
#include "nestmodel/Evaluator.h"
#include "thistle/Network.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace thistle;

namespace {

ConvLayer conv(std::string Name, std::int64_t K, std::int64_t C,
               std::int64_t HW, std::int64_t RS, std::int64_t Stride = 1) {
  ConvLayer L;
  L.Name = std::move(Name);
  L.K = K;
  L.C = C;
  L.Hin = HW;
  L.Win = HW;
  L.R = RS;
  L.S = RS;
  L.StrideX = L.StrideY = Stride;
  return L;
}

/// A 4-instance, 2-shape toy network: "a"/"a2" share a shape, as do
/// "b"/"b2" (the names differ on purpose — dedup keys on shape only).
std::vector<ConvLayer> toyNetwork() {
  return {conv("a", 16, 16, 14, 3), conv("b", 32, 16, 14, 1),
          conv("a2", 16, 16, 14, 3), conv("b2", 32, 16, 14, 1)};
}

NetworkOptions fastNetworkOptions() {
  NetworkOptions NO;
  NO.Layer.Solver.Tolerance = 1e-5;
  NO.Layer.MaxPermClassPairs = 8; // Keep the integration tests quick.
  return NO;
}

/// Everything a deterministic run must reproduce bit-for-bit (the
/// timing-free slice of a NetworkResult).
void expectIdentical(const NetworkResult &A, const NetworkResult &B) {
  ASSERT_EQ(A.Layers.size(), B.Layers.size());
  EXPECT_EQ(A.Found, B.Found);
  EXPECT_EQ(A.LayersFound, B.LayersFound);
  EXPECT_EQ(A.Totals.EnergyPj, B.Totals.EnergyPj);
  EXPECT_EQ(A.Totals.Cycles, B.Totals.Cycles);
  EXPECT_EQ(A.Totals.EdpPjCycles, B.Totals.EdpPjCycles);
  EXPECT_EQ(A.Totals.SummedObjective, B.Totals.SummedObjective);
  EXPECT_EQ(A.Arch.NumPEs, B.Arch.NumPEs);
  EXPECT_EQ(A.Arch.RegWordsPerPE, B.Arch.RegWordsPerPE);
  EXPECT_EQ(A.Arch.SramWords, B.Arch.SramWords);
  EXPECT_EQ(A.Report.Solved, B.Report.Solved);
  EXPECT_EQ(A.Report.Degraded, B.Report.Degraded);
  EXPECT_EQ(A.Report.Infeasible, B.Report.Infeasible);
  EXPECT_EQ(A.Report.Failed, B.Report.Failed);
  EXPECT_EQ(A.Report.Skipped, B.Report.Skipped);
  EXPECT_EQ(A.Stats.PairsSolved, B.Stats.PairsSolved);
  for (std::size_t I = 0; I < A.Layers.size(); ++I) {
    SCOPED_TRACE("layer " + A.Layers[I].Name);
    EXPECT_EQ(A.Layers[I].Result.Found, B.Layers[I].Result.Found);
    EXPECT_EQ(A.Layers[I].Result.Eval.EnergyPj,
              B.Layers[I].Result.Eval.EnergyPj);
    EXPECT_EQ(A.Layers[I].Result.Eval.Cycles,
              B.Layers[I].Result.Eval.Cycles);
    EXPECT_EQ(A.Layers[I].Result.ModelObjective,
              B.Layers[I].Result.ModelObjective);
    EXPECT_EQ(A.Layers[I].Result.Map.Factors,
              B.Layers[I].Result.Map.Factors);
    EXPECT_EQ(A.Layers[I].Result.BestPePerm, B.Layers[I].Result.BestPePerm);
    EXPECT_EQ(A.Layers[I].Result.BestDramPerm,
              B.Layers[I].Result.BestDramPerm);
  }
}

} // namespace

TEST(Network, DeduplicatesRepeatedShapes) {
  NetworkResult R = optimizeNetwork(toyNetwork(), eyerissArch(),
                                    TechParams::cgo45nm(),
                                    fastNetworkOptions());
  ASSERT_TRUE(R.InputStatus.isOk());
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Stats.LayersTotal, 4u);
  EXPECT_EQ(R.Stats.UniqueShapes, 2u);
  ASSERT_EQ(R.Layers.size(), 4u);
  EXPECT_FALSE(R.Layers[0].Deduplicated);
  EXPECT_FALSE(R.Layers[1].Deduplicated);
  EXPECT_TRUE(R.Layers[2].Deduplicated);
  EXPECT_TRUE(R.Layers[3].Deduplicated);
  EXPECT_EQ(R.Layers[2].ShapeIndex, R.Layers[0].ShapeIndex);
  EXPECT_EQ(R.Layers[0].Multiplicity, 2u);

  // The dedup copy shares the winner bit-for-bit but reports nothing
  // (the shape's sweep is accounted once).
  EXPECT_EQ(R.Layers[2].Result.Eval.EnergyPj,
            R.Layers[0].Result.Eval.EnergyPj);
  EXPECT_EQ(R.Layers[2].Result.Map.Factors, R.Layers[0].Result.Map.Factors);
  EXPECT_EQ(R.Layers[2].Result.Report.total(), 0u);
  EXPECT_EQ(R.Layers[2].Result.Stats.PairsPlanned, 0u);
  EXPECT_GT(R.Layers[0].Result.Report.total(), 0u);

  // Totals count every input layer, so the duplicated shapes weigh
  // double.
  double Expected = 0.0;
  for (const NetworkLayerResult &L : R.Layers)
    Expected += L.Result.Eval.EnergyPj;
  EXPECT_DOUBLE_EQ(R.Totals.EnergyPj, Expected);
  EXPECT_EQ(R.Totals.EdpPjCycles, R.Totals.EnergyPj * R.Totals.Cycles);

  // The accounting invariant, network-wide.
  EXPECT_EQ(R.Stats.PairsSolved, R.Report.Solved + R.Report.Degraded);
}

TEST(Network, CacheOnOffAndAcrossRunsBitIdentical) {
  NetworkOptions Cold = fastNetworkOptions();
  NetworkResult NoCache = optimizeNetwork(
      toyNetwork(), eyerissArch(), TechParams::cgo45nm(), Cold);
  ASSERT_TRUE(NoCache.Found);

  GpSolutionCache Cache;
  NetworkOptions Cached = fastNetworkOptions();
  Cached.Cache = &Cache;
  NetworkResult First = optimizeNetwork(
      toyNetwork(), eyerissArch(), TechParams::cgo45nm(), Cached);
  ASSERT_TRUE(First.Found);
  expectIdentical(NoCache, First);
  // One optimizeNetwork call dedups its own repeats, so the first run
  // only fills the cache.
  EXPECT_EQ(First.Stats.CacheHits, 0u);
  EXPECT_GT(First.Stats.CacheMisses, 0u);

  // A second run over the same network replays every pair from the
  // cache — same results, no solves.
  NetworkResult Second = optimizeNetwork(
      toyNetwork(), eyerissArch(), TechParams::cgo45nm(), Cached);
  ASSERT_TRUE(Second.Found);
  expectIdentical(NoCache, Second);
  EXPECT_GT(Second.Stats.CacheHits, 0u);
  EXPECT_EQ(Second.Stats.CacheMisses, 0u);
  EXPECT_EQ(Cache.hits(), Second.Stats.CacheHits);

  // Stats replay identically too: Newton iterations and candidate
  // counts come from the recorded entries.
  EXPECT_EQ(Second.Report.Retried, First.Report.Retried);
  for (std::size_t I = 0; I < First.Layers.size(); ++I) {
    EXPECT_EQ(Second.Layers[I].Result.Stats.NewtonIterations,
              First.Layers[I].Result.Stats.NewtonIterations);
    EXPECT_EQ(Second.Layers[I].Result.Stats.CandidatesEvaluated,
              First.Layers[I].Result.Stats.CandidatesEvaluated);
  }
}

TEST(Network, ThreadCountDoesNotChangeResults) {
  NetworkOptions One = fastNetworkOptions();
  One.Layer.Threads = 1;
  NetworkResult R1 = optimizeNetwork(toyNetwork(), eyerissArch(),
                                     TechParams::cgo45nm(), One);
  ASSERT_TRUE(R1.Found);
  NetworkOptions Eight = fastNetworkOptions();
  Eight.Layer.Threads = 8;
  NetworkResult R8 = optimizeNetwork(toyNetwork(), eyerissArch(),
                                     TechParams::cgo45nm(), Eight);
  ASSERT_TRUE(R8.Found);
  expectIdentical(R1, R8);

  // And with a shared cache at 8 threads: the frozen-generation warm
  // tier keeps parallel fills deterministic.
  GpSolutionCache Cache;
  Eight.Cache = &Cache;
  NetworkResult RC = optimizeNetwork(toyNetwork(), eyerissArch(),
                                     TechParams::cgo45nm(), Eight);
  ASSERT_TRUE(RC.Found);
  expectIdentical(R1, RC);
}

TEST(Network, EmptyNetworkSaysNothingAttempted) {
  NetworkResult R =
      optimizeNetwork({}, eyerissArch(), TechParams::cgo45nm(),
                      fastNetworkOptions());
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  EXPECT_NE(R.InputStatus.toString().find("0 tasks: nothing attempted"),
            std::string::npos);
  // The empty report's own summary names the zero-work case explicitly.
  EXPECT_EQ(R.Report.total(), 0u);
  EXPECT_NE(R.Report.toString("pair").find("0 pairs: nothing attempted"),
            std::string::npos);
}

TEST(Network, BadInputsFailValidationWithLayerContext) {
  ArchConfig Bad = eyerissArch();
  Bad.NumPEs = 0;
  NetworkResult R = optimizeNetwork(toyNetwork(), Bad,
                                    TechParams::cgo45nm(),
                                    fastNetworkOptions());
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  // Validation runs per unique shape and names the offending layer.
  EXPECT_NE(R.InputStatus.toString().find("network layer 'a'"),
            std::string::npos);
  // Nothing ran: the report is empty rather than full of failures.
  EXPECT_EQ(R.Report.total(), 0u);
}

TEST(Network, CoDesignSelectsOneNetworkArch) {
  NetworkOptions NO = fastNetworkOptions();
  NO.Layer.Mode = DesignMode::CoDesign;
  TechParams Tech = TechParams::cgo45nm();
  NetworkResult R = optimizeNetwork(toyNetwork(), eyerissArch(), Tech, NO,
                                    eyerissAreaUm2(Tech));
  ASSERT_TRUE(R.InputStatus.isOk());
  ASSERT_TRUE(R.Found);
  ASSERT_GE(R.Stats.ArchCandidates, 1u);
  ASSERT_EQ(R.Candidates.size(), R.Stats.ArchCandidates);

  // Every layer's winner runs on the one selected architecture.
  for (const NetworkLayerResult &L : R.Layers) {
    EXPECT_EQ(L.Result.Arch.NumPEs, R.Arch.NumPEs);
    EXPECT_EQ(L.Result.Arch.RegWordsPerPE, R.Arch.RegWordsPerPE);
    EXPECT_EQ(L.Result.Arch.SramWords, R.Arch.SramWords);
  }
  // The selected candidate is complete and minimal among complete ones.
  double BestObjective = 0.0;
  bool SawSelected = false;
  for (const NetworkArchCandidate &C : R.Candidates) {
    if (C.Arch.NumPEs == R.Arch.NumPEs &&
        C.Arch.RegWordsPerPE == R.Arch.RegWordsPerPE &&
        C.Arch.SramWords == R.Arch.SramWords) {
      SawSelected = true;
      BestObjective = C.SummedObjective;
      EXPECT_TRUE(C.AllLayersFound);
    }
  }
  ASSERT_TRUE(SawSelected);
  for (const NetworkArchCandidate &C : R.Candidates) {
    if (C.AllLayersFound) {
      EXPECT_LE(BestObjective, C.SummedObjective);
    }
  }
  // The area budget binds the selected architecture too.
  EXPECT_LE(R.Arch.areaUm2(Tech), eyerissAreaUm2(Tech) * 1.0001);
}

//===----------------------------------------------------------------------===//
// GpSolutionCache persistence: LRU bound, snapshot/journal round trips,
// and graceful degradation on damaged artifacts (docs/PERSISTENCE.md).
//===----------------------------------------------------------------------===//

#include "support/Persist.h"

#include <fstream>

namespace {

NetworkResult runToy(GpSolutionCache *Cache) {
  NetworkOptions NO = fastNetworkOptions();
  NO.Cache = Cache;
  return optimizeNetwork(toyNetwork(), eyerissArch(), TechParams::cgo45nm(),
                         NO);
}

} // namespace

TEST(NetworkPersist, LruBoundNeverChangesResults) {
  NetworkResult Unbounded = runToy(nullptr);
  ASSERT_TRUE(Unbounded.Found);

  GpSolutionCache Tiny;
  Tiny.setCapacity(2);
  EXPECT_EQ(Tiny.capacity(), 2u);
  NetworkResult First = runToy(&Tiny);
  ASSERT_TRUE(First.Found);
  expectIdentical(Unbounded, First);
  // The toy network fills more than two exact entries, so the bound
  // must have evicted — and the telemetry must say so.
  EXPECT_GT(First.Stats.CacheMisses, 2u);
  EXPECT_GT(Tiny.evictions(), 0u);
  EXPECT_LE(Tiny.size(), 2u);

  // A rerun mostly re-solves (the evicted entries are gone) but the
  // results stay bit-identical: eviction is a capacity decision, never
  // a correctness one.
  NetworkResult Second = runToy(&Tiny);
  ASSERT_TRUE(Second.Found);
  expectIdentical(Unbounded, Second);

  // Shrinking an over-full cache evicts immediately.
  GpSolutionCache Shrunk;
  NetworkResult Fill = runToy(&Shrunk);
  ASSERT_TRUE(Fill.Found);
  ASSERT_GT(Shrunk.size(), 1u);
  Shrunk.setCapacity(1);
  EXPECT_EQ(Shrunk.size(), 1u);
  EXPECT_GT(Shrunk.evictions(), 0u);
}

TEST(NetworkPersist, SnapshotReloadReplaysBitIdentically) {
  std::string Path = ::testing::TempDir() + "/netpersist-roundtrip.snap";
  persist::removeFile(Path);

  GpSolutionCache Warm;
  NetworkResult First = runToy(&Warm);
  ASSERT_TRUE(First.Found);
  ASSERT_GT(Warm.size(), 0u);
  ASSERT_TRUE(Warm.saveSnapshotFile(Path).isOk());

  GpSolutionCache Reloaded;
  GpCachePersistStats Stats;
  Reloaded.loadFile(Path, Stats);
  EXPECT_EQ(Stats.FilesLoaded, 1u);
  EXPECT_EQ(Stats.EntriesLoaded, Warm.size());
  EXPECT_EQ(Stats.DataLoss, 0u);
  EXPECT_EQ(Reloaded.size(), Warm.size());

  // The reloaded run replays every task from disk — zero misses — and
  // reproduces the original bit for bit.
  NetworkResult Replayed = runToy(&Reloaded);
  ASSERT_TRUE(Replayed.Found);
  expectIdentical(First, Replayed);
  EXPECT_EQ(Replayed.Stats.CacheMisses, 0u);
  EXPECT_EQ(Replayed.Stats.CacheHits, First.Stats.CacheMisses);
  persist::removeFile(Path);
}

TEST(NetworkPersist, JournalCheckpointsReplayLikeSnapshots) {
  std::string Path = ::testing::TempDir() + "/netpersist-journal.log";
  persist::removeFile(Path);

  GpSolutionCache Writer;
  ASSERT_TRUE(Writer.attachJournal(Path).isOk());
  NetworkResult First = runToy(&Writer);
  ASSERT_TRUE(First.Found);
  EXPECT_EQ(Writer.journalAppendFailures(), 0u);
  Writer.detachJournal();

  GpSolutionCache Reloaded;
  GpCachePersistStats Stats;
  Reloaded.loadFile(Path, Stats);
  EXPECT_EQ(Stats.EntriesLoaded, Writer.size());
  EXPECT_EQ(Stats.RecordsRead, Writer.size());
  EXPECT_EQ(Stats.DataLoss, 0u);

  NetworkResult Replayed = runToy(&Reloaded);
  ASSERT_TRUE(Replayed.Found);
  expectIdentical(First, Replayed);
  EXPECT_EQ(Replayed.Stats.CacheMisses, 0u);
  persist::removeFile(Path);
}

TEST(NetworkPersist, DamagedArtifactsDegradeToColdStart) {
  std::string Dir = ::testing::TempDir();

  // A snapshot from an unknown format: reported, then ignored.
  std::string Bad = Dir + "/netpersist-bad.snap";
  {
    std::ofstream Out(Bad, std::ios::binary | std::ios::trunc);
    Out << "bogus-format/9 snap gpcache 4 deadbeef\nXXXX";
  }
  GpSolutionCache Cold;
  GpCachePersistStats Stats;
  Cold.loadFile(Bad, Stats);
  EXPECT_EQ(Stats.EntriesLoaded, 0u);
  EXPECT_EQ(Stats.DataLoss, 1u);
  ASSERT_EQ(Stats.Problems.size(), 1u);
  EXPECT_NE(Stats.Problems[0].find(Bad), std::string::npos);

  // A missing file is not damage — silence, then a cold start.
  GpCachePersistStats Quiet;
  Cold.loadFile(Dir + "/netpersist-nonexistent.snap", Quiet);
  EXPECT_EQ(Quiet.DataLoss, 0u);
  EXPECT_EQ(Quiet.FilesLoaded, 0u);

  // The cold cache still runs the network to the same answer.
  NetworkResult Baseline = runToy(nullptr);
  NetworkResult Degraded = runToy(&Cold);
  ASSERT_TRUE(Degraded.Found);
  expectIdentical(Baseline, Degraded);
  EXPECT_EQ(Degraded.Stats.CacheHits, 0u);

  // A bit-flip inside a real snapshot's payload: CRC catches it.
  std::string Flip = Dir + "/netpersist-flip.snap";
  ASSERT_TRUE(Cold.saveSnapshotFile(Flip).isOk());
  {
    std::ifstream In(Flip, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Bytes[Bytes.size() / 2] ^= 0x01;
    std::ofstream Out(Flip, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  GpSolutionCache Rejects;
  GpCachePersistStats FlipStats;
  Rejects.loadFile(Flip, FlipStats);
  EXPECT_EQ(FlipStats.EntriesLoaded, 0u);
  EXPECT_EQ(FlipStats.DataLoss, 1u);
  EXPECT_EQ(Rejects.size(), 0u);
  persist::removeFile(Bad);
  persist::removeFile(Flip);
}

namespace {

/// A toy network covering each new layer class once: depthwise,
/// grouped, dilated, transposed — small enough for a full sweep.
std::vector<ConvLayer> generalToyNetwork() {
  ConvLayer Dw = conv("dw", 8, 8, 10, 3);
  Dw.Groups = 8;
  ConvLayer Gr = conv("gr", 8, 8, 8, 3, 2);
  Gr.Groups = 2;
  ConvLayer Dil = conv("dil", 8, 4, 10, 3);
  Dil.DilationX = Dil.DilationY = 2;
  ConvLayer Tr = conv("tr", 4, 8, 5, 3, 2);
  Tr.Transposed = true;
  return {Dw, Gr, Dil, Tr};
}

} // namespace

TEST(Network, GeneralConvClassesAreCacheAndThreadInvariant) {
  NetworkOptions One = fastNetworkOptions();
  One.Layer.Threads = 1;
  NetworkResult R1 = optimizeNetwork(generalToyNetwork(), eyerissArch(),
                                     TechParams::cgo45nm(), One);
  ASSERT_TRUE(R1.InputStatus.isOk());
  ASSERT_TRUE(R1.Found);
  EXPECT_EQ(R1.Stats.UniqueShapes, 4u); // No false dedup across classes.

  NetworkOptions Eight = fastNetworkOptions();
  Eight.Layer.Threads = 8;
  GpSolutionCache Cache;
  Eight.Cache = &Cache;
  NetworkResult Cold = optimizeNetwork(generalToyNetwork(), eyerissArch(),
                                       TechParams::cgo45nm(), Eight);
  ASSERT_TRUE(Cold.Found);
  expectIdentical(R1, Cold);
  NetworkResult Warm = optimizeNetwork(generalToyNetwork(), eyerissArch(),
                                       TechParams::cgo45nm(), Eight);
  ASSERT_TRUE(Warm.Found);
  expectIdentical(R1, Warm);
  EXPECT_EQ(Warm.Stats.CacheMisses, 0u);
}

TEST(Network, ShapeKeySeparatesGroupedFromDenseTwins) {
  // Two layers with identical dims where only Groups (or Transposed)
  // differs must NOT deduplicate onto one shape.
  ConvLayer Dense = conv("dense", 8, 8, 8, 3);
  ConvLayer Grouped = conv("grouped", 8, 8, 8, 3);
  Grouped.Groups = 2;
  ConvLayer Flipped = conv("flipped", 8, 8, 8, 3);
  Flipped.Transposed = true;
  ConvLayer Valid = conv("valid", 8, 8, 8, 3);
  Valid.Padding = ConvPadding::Valid;
  NetworkResult R =
      optimizeNetwork({Dense, Grouped, Flipped, Valid}, eyerissArch(),
                      TechParams::cgo45nm(), fastNetworkOptions());
  ASSERT_TRUE(R.InputStatus.isOk());
  EXPECT_EQ(R.Stats.LayersTotal, 4u);
  EXPECT_EQ(R.Stats.UniqueShapes, 4u);
  for (const NetworkLayerResult &L : R.Layers)
    EXPECT_FALSE(L.Deduplicated) << L.Name;
}

TEST(Network, InvalidLayerIsRejectedBeforeAnySolve) {
  std::vector<ConvLayer> Net = generalToyNetwork();
  Net[1].Groups = 3; // 8 channels not divisible by 3.
  NetworkResult R = optimizeNetwork(Net, eyerissArch(),
                                    TechParams::cgo45nm(),
                                    fastNetworkOptions());
  EXPECT_FALSE(R.Found);
  ASSERT_FALSE(R.InputStatus.isOk());
  EXPECT_EQ(R.InputStatus.code(), StatusCode::InvalidArgument);
  EXPECT_NE(R.InputStatus.toString().find("divisible"), std::string::npos)
      << R.InputStatus.toString();
  EXPECT_EQ(R.Stats.PairsSolved, 0u);
}
