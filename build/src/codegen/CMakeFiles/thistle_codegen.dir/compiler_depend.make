# Empty compiler generated dependencies file for thistle_codegen.
# This may be replaced when dependencies are built.
