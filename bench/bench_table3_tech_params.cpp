//===- bench/bench_table3_tech_params.cpp - Paper Table III ---------------===//
//
// Reproduces Table III: the 45nm architecture/technology parameters, plus
// the derived Eyeriss per-access energies and the Eq. 5 area budget used
// by every co-design experiment. Then times the energy/area models.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace thistle;

namespace {

void printTableIII() {
  TechParams T = TechParams::cgo45nm();
  TablePrinter Table({"Parameter", "Value", "Unit"});
  Table.addRow({"Area per MAC", TablePrinter::formatDouble(T.AreaMacUm2, 1),
                "um^2"});
  Table.addRow({"Area per register",
                TablePrinter::formatDouble(T.AreaRegWordUm2, 3), "um^2"});
  Table.addRow({"Area per SRAM word",
                TablePrinter::formatDouble(T.AreaSramWordUm2, 3), "um^2"});
  Table.addRow({"Energy per int16 MAC",
                TablePrinter::formatDouble(T.EnergyMacPj, 1), "pJ"});
  Table.addRow({"Register energy-constant",
                TablePrinter::formatDouble(T.SigmaRegPj * 1e3, 5),
                "1e-3 pJ/word"});
  Table.addRow({"SRAM energy-constant",
                TablePrinter::formatDouble(T.SigmaSramPj * 1e3, 2),
                "1e-3 pJ/sqrt(word)"});
  Table.addRow({"Energy per dram-access",
                TablePrinter::formatDouble(T.EnergyDramPj, 0), "pJ"});
  Table.print(std::cout);

  EnergyModel E(T);
  ArchConfig Eyeriss = eyerissArch();
  std::printf("\nDerived (Eq. 4 / Eq. 5) for the Eyeriss baseline "
              "(P=168, R=512, S=65536 words):\n");
  std::printf("  eps_R = sigma_R * R       = %.3f pJ/access\n",
              E.regAccessPj(static_cast<double>(Eyeriss.RegWordsPerPE)));
  std::printf("  eps_S = sigma_S * sqrt(S) = %.3f pJ/access\n",
              E.sramAccessPj(static_cast<double>(Eyeriss.SramWords)));
  std::printf("  register+MAC floor (4 eps_R + eps_op) = %.2f pJ/MAC\n",
              4.0 * E.regAccessPj(512) + E.macPj());
  std::printf("  Eyeriss area (co-design budget) = %.3f mm^2\n\n",
              eyerissAreaUm2(T) * 1e-6);
}

void timeEnergyModel(benchmark::State &State) {
  EnergyModel E(TechParams::cgo45nm());
  double Acc = 0.0;
  for (auto _ : State) {
    for (int R = 1; R <= 1024; R *= 2)
      Acc += E.regAccessPj(R) + E.sramAccessPj(64.0 * R);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(timeEnergyModel);

} // namespace

int main(int Argc, char **Argv) {
  thistle::bench::printHeader("Table III",
                              "Architecture parameters (45nm technology)");
  printTableIII();
  return thistle::bench::runTimings(Argc, Argv);
}
