# Empty dependencies file for thistle_multilevel.
# This may be replaced when dependencies are built.
