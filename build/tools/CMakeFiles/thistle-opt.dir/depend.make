# Empty dependencies file for thistle-opt.
# This may be replaced when dependencies are built.
