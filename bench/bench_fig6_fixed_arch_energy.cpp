//===- bench/bench_fig6_fixed_arch_energy.cpp - Paper Fig. 6 --------------===//
//
// Reproduces Fig. 6: per-layer energy for (1) the Eyeriss architecture,
// (2) the layer-wise optimized architecture, and (3) a single fixed
// architecture chosen as the one co-designed for the energy-dominant
// stage across *both* pipelines, with the dataflow then re-optimized for
// it per layer. Expected shape: the single architecture loses little
// versus layer-wise co-design and stays far below Eyeriss.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace thistle;
using namespace thistle::bench;

namespace {

void printFig6() {
  TechParams Tech = TechParams::cgo45nm();
  ArchConfig Eyeriss = eyerissArch();
  double Budget = eyerissAreaUm2(Tech);
  ThistleOptions Dataflow =
      thistleOptions(DesignMode::DataflowOnly, SearchObjective::Energy);
  ThistleOptions CoDesign =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Energy);

  std::vector<ConvLayer> Layers = allPaperLayers();
  std::vector<ThistleResult> FixedRes, CoRes;
  std::size_t Dominant = 0;
  double DominantEnergy = -1.0;
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    Problem P = makeConvProblem(Layers[I]);
    FixedRes.push_back(optimizeLayer(P, Eyeriss, Tech, Dataflow));
    CoRes.push_back(optimizeLayer(P, Eyeriss, Tech, CoDesign, Budget));
    if (CoRes.back().Found && CoRes.back().Eval.EnergyPj > DominantEnergy) {
      DominantEnergy = CoRes.back().Eval.EnergyPj;
      Dominant = I;
    }
  }
  ArchConfig Single = CoRes[Dominant].Arch;
  std::printf("energy-dominant stage: %s; single architecture: P=%lld "
              "R=%lld S=%lld (area %.3f mm^2)\n\n",
              Layers[Dominant].Name.c_str(),
              static_cast<long long>(Single.NumPEs),
              static_cast<long long>(Single.RegWordsPerPE),
              static_cast<long long>(Single.SramWords),
              Single.areaUm2(Tech) * 1e-6);

  TablePrinter Table({"layer", "eyeriss pJ/MAC", "layer-wise pJ/MAC",
                      "single-arch pJ/MAC"});
  for (std::size_t I = 0; I < Layers.size(); ++I) {
    Problem P = makeConvProblem(Layers[I]);
    ThistleResult SingleRes = optimizeLayer(P, Single, Tech, Dataflow);
    auto Cell = [](const ThistleResult &R) {
      return R.Found ? TablePrinter::formatDouble(R.Eval.EnergyPerMacPj, 2)
                     : std::string("-");
    };
    Table.addRow({Layers[I].Name, Cell(FixedRes[I]), Cell(CoRes[I]),
                  Cell(SingleRes)});
  }
  Table.print(std::cout);
  std::printf("\n(paper: the single architecture loses little vs the "
              "layer-wise optimum and stays well below Eyeriss)\n\n");
}

void timeDominantSelectionPass(benchmark::State &State) {
  // Times one co-design (the inner step of the dominant-layer scan).
  Problem P = makeConvProblem(yolo9000Layers()[8]);
  TechParams Tech = TechParams::cgo45nm();
  ThistleOptions O =
      thistleOptions(DesignMode::CoDesign, SearchObjective::Energy);
  for (auto _ : State)
    benchmark::DoNotOptimize(optimizeLayer(P, eyerissArch(), Tech, O,
                                           eyerissAreaUm2(Tech)));
}
BENCHMARK(timeDominantSelectionPass)->Unit(benchmark::kMillisecond);

} // namespace

int main(int Argc, char **Argv) {
  printHeader("Fig. 6",
              "Energy: Eyeriss vs layer-wise optimal architecture vs one "
              "fixed architecture from the energy-dominant layer");
  printFig6();
  return runTimings(Argc, Argv);
}
