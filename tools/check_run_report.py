#!/usr/bin/env python3
"""Validate a thistle-opt --trace-json run report against the schema.

The schema (thistle-run-report/1) is pinned in docs/OBSERVABILITY.md.
Stdlib only; exits 0 when the report validates, 1 with a list of
violations otherwise.

Usage:
  check_run_report.py [--canonical | --for-diff] report.json
  check_run_report.py --serve responses.jsonl
  check_run_report.py --extract-report responses.jsonl
  check_run_report.py --serve-consistency report.json responses.jsonl...

With --canonical the report is validated and then printed to stdout in
a canonical form with the volatile fields (timings, trace, metrics,
cache traffic, persistence/shard accounting) removed — two runs that
computed the same result canonicalize to identical bytes, which is how
the resume/shard drivers compare a resumed or merged run against an
uninterrupted one.

--for-diff goes one step further and also drops the tool name and the
thread count, producing the normal form shared by thistle-opt reports
and the canonical reports embedded in thistle-serve/1 responses: the
same query must produce the same --for-diff bytes from either tool.

--serve validates a file of newline-delimited thistle-serve/1 response
envelopes (docs/SERVING.md): field order, status/exit-code agreement,
the per-request server section, and every embedded report against the
canonical-projection schema. --extract-report prints each non-null
embedded report in --for-diff normal form, one per line, for
byte-comparison against `thistle-opt --trace-json` output.

--serve-consistency cross-checks a daemon's shutdown run report
against every response it sent: the response count and the per-request
server.cache counters must sum exactly to the report's serve section
(the stats-vs-report contract).
"""

import json
import sys

SCHEMA = "thistle-run-report/1"

TOP_FIELDS = {
    "schema": str,
    "tool": str,
    "workload": str,
    "mode": str,
    "objective": str,
    "hierarchy": str,
    "threads": int,
    "wall_seconds": (int, float),
    "exit_code": int,
    "result": dict,
    "evaluator": dict,
    # "sweep", "network", "persistence", "shards" and "serve" are dict
    # or the literal false; checked separately.
    "metrics": dict,
    "trace": dict,
}

# The canonical projection embedded in thistle-serve/1 responses: the
# header minus the volatile fields. Sections are restricted separately.
EMBEDDED_TOP_FIELDS = {
    "schema": str,
    "tool": str,
    "workload": str,
    "mode": str,
    "objective": str,
    "hierarchy": str,
    "threads": int,
    "exit_code": int,
    "result": dict,
    "evaluator": dict,
}

# Volatile by construction; an embedded canonical report carrying any
# of these would break the byte-identity guarantee.
EMBEDDED_FORBIDDEN = (
    "wall_seconds", "metrics", "trace", "persistence", "shards", "serve",
)

RESULT_FIELDS = {
    "found": bool,
    "energy_pj": (int, float, type(None)),
    "energy_per_mac_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
    "mac_ipc": (int, float, type(None)),
    "edp_pj_cycles": (int, float, type(None)),
}

EVALUATOR_FIELDS = {
    "backend": str,
    "cross_check": bool,
    "evals": int,
    "divergent_evals": int,
    "counters_compared": int,
    "counter_mismatches": int,
    "max_abs_delta": (int, float),
    "max_rel_delta": (int, float),
    "samples": list,
}

EVALUATOR_SAMPLE_FIELDS = {
    "counter": str,
    "primary": int,
    "reference": int,
}

# The in-tree backend spellings plus the cross-check mode; a report
# naming anything else either predates a backend rename or was emitted
# by a build carrying unreviewed registry entries.
EVALUATOR_BACKENDS = {"nest", "maestro", "both"}

SWEEP_FIELDS = {
    "task_noun": str,
    "tasks": int,
    "solved": int,
    "retried": int,
    "degraded": int,
    "infeasible": int,
    "failed": int,
    "skipped": int,
    "skipped_by_policy": int,
    "deadline_expired": bool,
    "clean": bool,
    "incidents": list,
}

# Every name `thistle-opt --network` accepts (docs/WORKLOADS.md):
# the Table II pipelines plus the general-conv tables.
NETWORK_NAMES = {"resnet18", "yolo9000", "all", "mobilenetv2", "dcgan"}

NETWORK_FIELDS = {
    "layers_total": int,
    "layers_found": int,
    "unique_shapes": int,
    "cache_enabled": bool,
    "cache_hits": int,
    "cache_misses": int,
    "cache_warm_starts": int,
    "arch_candidates": int,
    "summed_objective": (int, float, type(None)),
    "totals": dict,
    "layers": list,
}

# Dropped from the canonical projection embedded in thistle-serve/1
# responses: the counters depend on whether the cache was cold or hot,
# which must not leak into the served bytes.
NETWORK_VOLATILE_FIELDS = ("cache_hits", "cache_misses",
                           "cache_warm_starts")

NETWORK_TOTALS_FIELDS = {
    "energy_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
    "edp_pj_cycles": (int, float, type(None)),
    "energy_per_mac_pj": (int, float, type(None)),
    "macs": int,
}

NETWORK_LAYER_FIELDS = {
    "name": str,
    "shape_index": int,
    "multiplicity": int,
    "deduplicated": bool,
    "found": bool,
    "energy_pj": (int, float, type(None)),
    "cycles": (int, float, type(None)),
}

PERSISTENCE_FIELDS = {
    "directory": str,
    "capacity": int,
    "loaded_files": int,
    "loaded_entries": int,
    "append_failures": int,
    "evictions": int,
    "data_loss_detected": int,
    "problems": list,
    "snapshot_written": bool,
}

SHARDS_FIELDS = {
    "index": int,
    "count": int,
    "merge": bool,
}

SERVE_FIELDS = {
    "requests": int,
    "queries": int,
    "errors": int,
    "deduplicated": int,
    "solves": int,
    "cache_hits": int,
    "cache_misses": int,
    "cache_warm_starts": int,
    "cache_evictions": int,
    "compactions": int,
}

# The thistle-serve/1 response envelope, in serialized key order
# (docs/SERVING.md). "serve" appears only on stats responses.
ENVELOPE_KEYS = ("schema", "id", "status", "exit_code", "error",
                 "report", "serve", "server")
ENVELOPE_SCHEMA = "thistle-serve/1"
STATUS_BY_EXIT = {0: "ok", 1: "degraded", 2: "invalid", 3: "no-design"}

SERVER_SECTION_FIELDS = {
    "deduplicated": bool,
    "queue_depth": int,
    "latency_ms": (int, float),
    "cache": dict,
}

SERVER_CACHE_FIELDS = {
    "hit": int,
    "miss": int,
    "warmstart": int,
    "evictions": int,
}

INCIDENT_FIELDS = {
    "index": int,
    "a": int,
    "b": int,
    "outcome": str,
    "attempts": int,
    "detail": str,
}

SPAN_FIELDS = {
    "name": str,
    "epoch": int,
    "index": int,
    "depth": int,
    "start_ns": int,
    "duration_ns": int,
    "detail": str,
}

OUTCOMES = {"solved", "degraded", "infeasible", "failed", "skipped"}


def check_fields(obj, spec, where, errors):
    for name, types in spec.items():
        if name not in obj:
            errors.append(f"{where}: missing field '{name}'")
        elif not isinstance(obj[name], types):
            errors.append(
                f"{where}.{name}: expected {types}, got "
                f"{type(obj[name]).__name__}"
            )


def validate(report, embedded=False):
    errors = []
    check_fields(report, EMBEDDED_TOP_FIELDS if embedded else TOP_FIELDS,
                 "$", errors)
    if embedded:
        for name in EMBEDDED_FORBIDDEN:
            if name in report:
                errors.append(
                    f"$.{name}: volatile field in embedded canonical report"
                )
    if report.get("schema") != SCHEMA:
        errors.append(
            f"$.schema: expected '{SCHEMA}', got {report.get('schema')!r}"
        )
    if report.get("exit_code") not in (0, 1, 2, 3):
        errors.append(f"$.exit_code: not a documented code: "
                      f"{report.get('exit_code')!r}")
    workload = report.get("workload")
    if isinstance(workload, str) and workload.startswith("network:"):
        name = workload.split(":", 1)[1]
        if name not in NETWORK_NAMES:
            errors.append(
                f"$.workload: unknown network {name!r} (expected one of "
                f"{sorted(NETWORK_NAMES)})"
            )

    result = report.get("result")
    if isinstance(result, dict):
        check_fields(result, RESULT_FIELDS, "$.result", errors)

    evaluator = report.get("evaluator")
    if isinstance(evaluator, dict):
        check_fields(evaluator, EVALUATOR_FIELDS, "$.evaluator", errors)
        backend = evaluator.get("backend")
        if isinstance(backend, str) and backend not in EVALUATOR_BACKENDS:
            errors.append(
                f"$.evaluator.backend: unknown backend {backend!r}"
            )
        if evaluator.get("cross_check") != (backend == "both"):
            errors.append(
                "$.evaluator.cross_check: inconsistent with backend"
            )
        if isinstance(evaluator.get("divergent_evals"), int) and \
                isinstance(evaluator.get("evals"), int) and \
                evaluator["divergent_evals"] > evaluator["evals"]:
            errors.append("$.evaluator.divergent_evals: exceeds evals")
        if isinstance(evaluator.get("counter_mismatches"), int) and \
                isinstance(evaluator.get("counters_compared"), int) and \
                evaluator["counter_mismatches"] > \
                evaluator["counters_compared"]:
            errors.append(
                "$.evaluator.counter_mismatches: exceeds counters_compared"
            )
        if evaluator.get("counter_mismatches") == 0 and \
                evaluator.get("max_abs_delta") not in (0, 0.0, None):
            errors.append(
                "$.evaluator.max_abs_delta: nonzero without mismatches"
            )
        samples = evaluator.get("samples")
        if isinstance(samples, list):
            for i, sample in enumerate(samples):
                where = f"$.evaluator.samples[{i}]"
                if not isinstance(sample, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(sample, EVALUATOR_SAMPLE_FIELDS, where,
                             errors)

    sweep = report.get("sweep")
    if sweep is False:
        pass  # No sweep ran (validation failure before fan-out).
    elif isinstance(sweep, dict):
        check_fields(sweep, SWEEP_FIELDS, "$.sweep", errors)
        if isinstance(sweep.get("incidents"), list):
            for i, inc in enumerate(sweep["incidents"]):
                where = f"$.sweep.incidents[{i}]"
                if not isinstance(inc, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(inc, INCIDENT_FIELDS, where, errors)
                if inc.get("outcome") not in OUTCOMES:
                    errors.append(
                        f"{where}.outcome: unknown outcome "
                        f"{inc.get('outcome')!r}"
                    )
        counts = [sweep.get(k) for k in
                  ("solved", "degraded", "infeasible", "failed", "skipped")]
        if all(isinstance(c, int) for c in counts) and \
                isinstance(sweep.get("tasks"), int):
            if sum(counts) != sweep["tasks"]:
                errors.append("$.sweep: outcome counts do not sum to tasks")
        if isinstance(sweep.get("skipped_by_policy"), int) and \
                isinstance(sweep.get("skipped"), int):
            if sweep["skipped_by_policy"] > sweep["skipped"]:
                errors.append(
                    "$.sweep.skipped_by_policy: exceeds skipped")
    else:
        errors.append("$.sweep: expected object or false")

    network = report.get("network")
    if network is False:
        pass  # Not a --network run.
    elif isinstance(network, dict):
        network_fields = NETWORK_FIELDS
        if embedded:
            network_fields = {k: v for k, v in NETWORK_FIELDS.items()
                              if k not in NETWORK_VOLATILE_FIELDS}
            for name in NETWORK_VOLATILE_FIELDS:
                if name in network:
                    errors.append(f"$.network.{name}: volatile field in "
                                  f"embedded canonical report")
        check_fields(network, network_fields, "$.network", errors)
        if isinstance(network.get("layers_found"), int) and \
                isinstance(network.get("layers_total"), int) and \
                network["layers_found"] > network["layers_total"]:
            errors.append("$.network.layers_found: exceeds layers_total")
        if isinstance(network.get("unique_shapes"), int) and \
                isinstance(network.get("layers_total"), int) and \
                network["unique_shapes"] > network["layers_total"]:
            errors.append("$.network.unique_shapes: exceeds layers_total")
        totals = network.get("totals")
        if isinstance(totals, dict):
            check_fields(totals, NETWORK_TOTALS_FIELDS,
                         "$.network.totals", errors)
        layers = network.get("layers")
        if isinstance(layers, list):
            if isinstance(network.get("layers_total"), int) and \
                    len(layers) != network["layers_total"]:
                errors.append(
                    "$.network.layers: row count != layers_total")
            for i, layer in enumerate(layers):
                where = f"$.network.layers[{i}]"
                if not isinstance(layer, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(layer, NETWORK_LAYER_FIELDS, where, errors)
    else:
        errors.append("$.network: expected object or false")

    if embedded:
        return errors

    persistence = report.get("persistence")
    if persistence is False:
        pass  # No cache directory configured.
    elif isinstance(persistence, dict):
        check_fields(persistence, PERSISTENCE_FIELDS, "$.persistence",
                     errors)
        problems = persistence.get("problems")
        if isinstance(problems, list):
            for i, problem in enumerate(problems):
                if not isinstance(problem, str):
                    errors.append(
                        f"$.persistence.problems[{i}]: not a string")
            if isinstance(persistence.get("data_loss_detected"), int) and \
                    persistence["data_loss_detected"] != len(problems):
                errors.append(
                    "$.persistence.data_loss_detected: "
                    "!= len(problems)")
    else:
        errors.append("$.persistence: expected object or false")

    shards = report.get("shards")
    if shards is False:
        pass  # Not a sharded or merging run.
    elif isinstance(shards, dict):
        check_fields(shards, SHARDS_FIELDS, "$.shards", errors)
        if isinstance(shards.get("index"), int) and \
                isinstance(shards.get("count"), int) and \
                not 1 <= shards["index"] <= shards["count"]:
            errors.append("$.shards.index: outside 1..count")
        if persistence is False:
            errors.append(
                "$.shards: sharded run without a persistence section")
    else:
        errors.append("$.shards: expected object or false")

    serve = report.get("serve")
    if serve is False or serve is None:
        pass  # Not a thistle-serve shutdown report (absent pre-serve).
    elif isinstance(serve, dict):
        check_fields(serve, SERVE_FIELDS, "$.serve", errors)
        counts = {k: serve.get(k) for k in SERVE_FIELDS}
        if all(isinstance(v, int) for v in counts.values()):
            if counts["queries"] > counts["requests"]:
                errors.append("$.serve.queries: exceeds requests")
            if counts["errors"] > counts["requests"]:
                errors.append("$.serve.errors: exceeds requests")
            if counts["deduplicated"] > counts["queries"]:
                errors.append("$.serve.deduplicated: exceeds queries")
            if counts["solves"] > counts["queries"]:
                errors.append("$.serve.solves: exceeds queries")
    else:
        errors.append("$.serve: expected object or false")

    metrics = report.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            errors.append("$.metrics.counters: expected object")
        else:
            for name, value in counters.items():
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"$.metrics.counters.{name}: not a non-negative int"
                    )
        stats = metrics.get("stats")
        if not isinstance(stats, dict):
            errors.append("$.metrics.stats: expected object")
        else:
            for name, stat in stats.items():
                where = f"$.metrics.stats.{name}"
                if not isinstance(stat, dict):
                    errors.append(f"{where}: expected object")
                    continue
                for field in ("count", "sum", "min", "max", "mean"):
                    if not isinstance(stat.get(field),
                                      (int, float, type(None))):
                        errors.append(f"{where}.{field}: not a number")

    trace = report.get("trace")
    if isinstance(trace, dict):
        if not isinstance(trace.get("dropped_spans"), int):
            errors.append("$.trace.dropped_spans: expected int")
        spans = trace.get("spans")
        if not isinstance(spans, list):
            errors.append("$.trace.spans: expected array")
        else:
            last_key = None
            for i, span in enumerate(spans):
                where = f"$.trace.spans[{i}]"
                if not isinstance(span, dict):
                    errors.append(f"{where}: not an object")
                    continue
                check_fields(span, SPAN_FIELDS, where, errors)
                if isinstance(span.get("index"), int) and \
                        span["index"] < -1:
                    errors.append(f"{where}.index: below -1")
                # Spans are merged in (epoch, index) order; -1 (NoIndex)
                # sorts last within its epoch.
                if isinstance(span.get("epoch"), int) and \
                        isinstance(span.get("index"), int):
                    index = span["index"]
                    key = (span["epoch"],
                           float("inf") if index == -1 else index)
                    if last_key is not None and key < last_key:
                        errors.append(
                            f"{where}: spans out of (epoch, index) order"
                        )
                    last_key = key
    return errors


# Fields that legitimately differ between runs computing the same
# result: timings, the span trace, telemetry counters, cache traffic
# (a resumed run hits where the original missed) and the durable-state
# accounting itself. Everything else — the result, the winner, the
# sweep outcomes, the per-layer rows — must match byte-for-byte.
CANONICAL_DROP_TOP = (
    "wall_seconds", "metrics", "trace", "persistence", "shards", "serve",
)
CANONICAL_DROP_NETWORK = (
    "cache_hits", "cache_misses", "cache_warm_starts",
)

# Additionally dropped by --for-diff: which tool answered and at what
# concurrency are not part of the answer.
DIFF_DROP_TOP = ("tool", "threads")


def canonicalize(report):
    out = {k: v for k, v in report.items() if k not in CANONICAL_DROP_TOP}
    network = out.get("network")
    if isinstance(network, dict):
        out["network"] = {
            k: v for k, v in network.items()
            if k not in CANONICAL_DROP_NETWORK
        }
    return out


def diff_form(report):
    """The normal form shared by thistle-opt and thistle-serve reports."""
    out = canonicalize(report)
    return {k: v for k, v in out.items() if k not in DIFF_DROP_TOP}


def dump_diff_form(report):
    return json.dumps(diff_form(report), sort_keys=True,
                      separators=(",", ":"))


def load_envelopes(path):
    """Parses a responses.jsonl file; returns (envelopes, errors)."""
    envelopes, errors = [], []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [ln for ln in handle.read().splitlines() if ln]
    except OSError as exc:
        return [], [f"{path}: {exc}"]
    for i, line in enumerate(lines):
        where = f"{path}:{i + 1}"
        try:
            env = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not JSON: {exc}")
            continue
        if not isinstance(env, dict):
            errors.append(f"{where}: response is not an object")
            continue
        envelopes.append((where, env))
    return envelopes, errors


def validate_envelope(where, env):
    errors = []
    keys = [k for k in ENVELOPE_KEYS if k in env]
    if list(env.keys()) != keys:
        errors.append(f"{where}: envelope keys out of order or unknown: "
                      f"{list(env.keys())}")
    for required in ("schema", "status", "exit_code", "error", "report",
                     "server"):
        if required not in env:
            errors.append(f"{where}: missing '{required}'")
    if errors:
        return errors
    if env["schema"] != ENVELOPE_SCHEMA:
        errors.append(f"{where}.schema: expected '{ENVELOPE_SCHEMA}', "
                      f"got {env['schema']!r}")
    exit_code = env["exit_code"]
    if STATUS_BY_EXIT.get(exit_code) != env["status"]:
        errors.append(f"{where}: status {env['status']!r} does not match "
                      f"exit_code {exit_code!r}")
    if (exit_code == 2) != isinstance(env["error"], str):
        errors.append(f"{where}.error: must be a string exactly when "
                      "exit_code is 2")
    if exit_code == 2 and env["report"] is not None:
        errors.append(f"{where}.report: must be null on exit_code 2")
    report = env["report"]
    if report is not None:
        if not isinstance(report, dict):
            errors.append(f"{where}.report: expected object or null")
        else:
            for err in validate(report, embedded=True):
                errors.append(f"{where}.report{err[1:]}")
            if report.get("exit_code") != exit_code:
                errors.append(f"{where}.report.exit_code: disagrees with "
                              "envelope")
    if "serve" in env:
        if not isinstance(env["serve"], dict):
            errors.append(f"{where}.serve: expected object")
        else:
            check_fields(env["serve"], SERVE_FIELDS, f"{where}.serve",
                         errors)
    server = env["server"]
    if not isinstance(server, dict):
        errors.append(f"{where}.server: expected object")
        return errors
    check_fields(server, SERVER_SECTION_FIELDS, f"{where}.server", errors)
    cache = server.get("cache")
    if isinstance(cache, dict):
        check_fields(cache, SERVER_CACHE_FIELDS, f"{where}.server.cache",
                     errors)
    return errors


def check_serve_consistency(report, envelopes):
    """The stats-vs-report contract: per-response server.cache counters
    (zero on dedup joins) sum exactly to the daemon's lifetime serve
    section, and every request produced exactly one response."""
    errors = []
    serve = report.get("serve")
    if not isinstance(serve, dict):
        return ["$.serve: shutdown report has no serve section"]
    sums = {"hit": 0, "miss": 0, "warmstart": 0, "evictions": 0}
    dedup = 0
    for _, env in envelopes:
        server = env.get("server")
        if not isinstance(server, dict):
            continue
        if server.get("deduplicated") is True:
            dedup += 1
        cache = server.get("cache")
        if isinstance(cache, dict):
            for key in sums:
                value = cache.get(key)
                if isinstance(value, int):
                    sums[key] += value
    expected = {
        "hit": serve.get("cache_hits"),
        "miss": serve.get("cache_misses"),
        "warmstart": serve.get("cache_warm_starts"),
        "evictions": serve.get("cache_evictions"),
    }
    for key, total in sums.items():
        if total != expected[key]:
            errors.append(
                f"serve-consistency: sum of server.cache.{key} over "
                f"responses is {total}, report says {expected[key]}"
            )
    if dedup != serve.get("deduplicated"):
        errors.append(
            f"serve-consistency: {dedup} deduplicated responses, report "
            f"says {serve.get('deduplicated')}"
        )
    if len(envelopes) != serve.get("requests"):
        errors.append(
            f"serve-consistency: {len(envelopes)} responses captured, "
            f"report says {serve.get('requests')} requests"
        )
    return errors


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(report, dict):
        print(f"error: {path}: top-level JSON value is not an object",
              file=sys.stderr)
        return None
    return report


def fail(path, errors):
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    print(f"{path}: {len(errors)} violation(s)", file=sys.stderr)
    return 1


def main(argv):
    args = list(argv[1:])
    modes = [m for m in ("--canonical", "--for-diff", "--serve",
                         "--extract-report", "--serve-consistency")
             if m in args]
    if len(modes) > 1:
        print(f"error: {' and '.join(modes)} are exclusive",
              file=sys.stderr)
        return 1
    mode = modes[0] if modes else None
    if mode:
        args.remove(mode)

    if mode == "--serve-consistency":
        if len(args) < 2:
            print(__doc__.strip(), file=sys.stderr)
            return 1
        report = load_report(args[0])
        if report is None:
            return 1
        errors = validate(report)
        envelopes = []
        for path in args[1:]:
            envs, errs = load_envelopes(path)
            errors.extend(errs)
            for where, env in envs:
                errors.extend(validate_envelope(where, env))
            envelopes.extend(envs)
        errors.extend(check_serve_consistency(report, envelopes))
        if errors:
            return fail(args[0], errors)
        print(f"{args[0]}: consistent with {len(envelopes)} response(s)")
        return 0

    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    path = args[0]

    if mode in ("--serve", "--extract-report"):
        envelopes, errors = load_envelopes(path)
        for where, env in envelopes:
            errors.extend(validate_envelope(where, env))
        if errors:
            return fail(path, errors)
        if mode == "--extract-report":
            for _, env in envelopes:
                if isinstance(env.get("report"), dict):
                    print(dump_diff_form(env["report"]))
        else:
            print(f"{path}: {len(envelopes)} valid {ENVELOPE_SCHEMA} "
                  "response(s)")
        return 0

    report = load_report(path)
    if report is None:
        return 1
    errors = validate(report)
    if errors:
        return fail(path, errors)
    if mode == "--canonical":
        print(json.dumps(canonicalize(report), indent=2, sort_keys=True))
    elif mode == "--for-diff":
        print(dump_diff_form(report))
    else:
        print(f"{path}: valid {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
