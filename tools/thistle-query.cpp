//===- tools/thistle-query.cpp - thistle-serve test client ----------------===//
//
// A small line-oriented client for the thistle-serve daemon
// (docs/SERVING.md): send one or more thistle-serve/1 JSON requests and
// print each response line on stdout, in request order. --parallel
// opens one connection per request and fires them all concurrently
// after a start barrier — how the determinism tests race identical
// queries onto the daemon's dedup path. --strip-server drops the
// per-request `server` section (latency, queue depth) so responses to
// equal queries can be compared byte-for-byte.
//
// Examples:
//   thistle-query --port 7433 --request '{"cmd":"ping"}'
//   thistle-query --port-file port.txt --file requests.jsonl --parallel
//
//===----------------------------------------------------------------------===//

#include "support/LineSocket.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace thistle;

namespace {

void printUsage(const char *Prog) {
  std::printf(
      "usage: %s [options]\n"
      "\nconnection (one of):\n"
      "  --port N                      daemon port on 127.0.0.1\n"
      "  --port-file FILE              read the port from FILE (as\n"
      "                                written by thistle-serve\n"
      "                                --port-file)\n"
      "\nrequests (any mix; sent in order):\n"
      "  --request JSON                one request line (repeatable)\n"
      "  --file FILE                   one request per line ('-' =\n"
      "                                stdin; blank lines skipped)\n"
      "\nbehavior:\n"
      "  --parallel                    one connection per request, all\n"
      "                                fired concurrently after a start\n"
      "                                barrier (default: one connection,\n"
      "                                sequential); responses still\n"
      "                                print in request order\n"
      "  --strip-server                print each response without its\n"
      "                                trailing \"server\" section, so\n"
      "                                equal queries compare equal\n"
      "  --help                        print this usage (also -h)\n"
      "\nexit codes:\n"
      "  0  every request got a response\n"
      "  1  a connection or transport failure\n"
      "  2  invalid arguments\n");
}

/// Cuts the response at its `server` section — the only part that is
/// not a pure function of the query — and restores the closing brace.
std::string stripServer(const std::string &Resp) {
  std::size_t Pos = Resp.rfind(",\"server\":");
  if (Pos == std::string::npos)
    return Resp;
  return Resp.substr(0, Pos) + "}";
}

/// Sends one request over its own connection; used by --parallel after
/// the start barrier releases all threads at once.
struct Barrier {
  std::mutex M;
  std::condition_variable Cv;
  std::size_t Waiting = 0;
  std::size_t Count;
  explicit Barrier(std::size_t Count) : Count(Count) {}
  void arrive() {
    std::unique_lock<std::mutex> L(M);
    if (++Waiting >= Count) {
      Cv.notify_all();
      return;
    }
    Cv.wait(L, [&] { return Waiting >= Count; });
  }
};

} // namespace

int main(int Argc, char **Argv) {
  long Port = -1;
  std::string PortFile;
  std::vector<std::string> Requests;
  bool Parallel = false;
  bool StripServer = false;

  auto loadFile = [&](const std::string &Path) -> bool {
    std::ifstream FileIn;
    std::istream *In = &std::cin;
    if (Path != "-") {
      FileIn.open(Path);
      if (!FileIn) {
        std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
        return false;
      }
      In = &FileIn;
    }
    std::string Line;
    while (std::getline(*In, Line))
      if (!Line.empty())
        Requests.push_back(Line);
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    } else if (Arg == "--port") {
      Port = std::atol(needValue());
    } else if (Arg == "--port-file") {
      PortFile = needValue();
    } else if (Arg == "--request") {
      Requests.push_back(needValue());
    } else if (Arg == "--file") {
      if (!loadFile(needValue()))
        return 2;
    } else if (Arg == "--parallel") {
      Parallel = true;
    } else if (Arg == "--strip-server") {
      StripServer = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(Argv[0]);
      return 2;
    }
  }

  if (!PortFile.empty()) {
    std::ifstream In(PortFile);
    if (!(In >> Port)) {
      std::fprintf(stderr, "error: cannot read port from '%s'\n",
                   PortFile.c_str());
      return 2;
    }
  }
  if (Port < 1 || Port > 65535) {
    std::fprintf(stderr, "error: need --port or --port-file\n");
    return 2;
  }
  if (Requests.empty()) {
    std::fprintf(stderr, "error: no requests (--request or --file)\n");
    return 2;
  }

  std::vector<std::string> Responses(Requests.size());
  bool Failed = false;

  if (!Parallel) {
    Expected<net::LineConnection> Conn =
        net::connectLoopback(static_cast<std::uint16_t>(Port));
    if (!Conn) {
      std::fprintf(stderr, "error: %s\n",
                   Conn.status().toString().c_str());
      return 1;
    }
    for (std::size_t I = 0; I < Requests.size(); ++I) {
      if (Conn.value().writeLine(Requests[I]).isOk() == false) {
        Failed = true;
        break;
      }
      Expected<std::string> Resp = Conn.value().readLine();
      if (!Resp) {
        std::fprintf(stderr, "error: %s\n",
                     Resp.status().toString().c_str());
        Failed = true;
        break;
      }
      Responses[I] = Resp.value();
    }
  } else {
    // Connect everything first, then release all sends at once: the
    // requests genuinely race on the daemon side.
    std::vector<net::LineConnection> Conns(Requests.size());
    for (std::size_t I = 0; I < Requests.size(); ++I) {
      Expected<net::LineConnection> Conn =
          net::connectLoopback(static_cast<std::uint16_t>(Port));
      if (!Conn) {
        std::fprintf(stderr, "error: %s\n",
                     Conn.status().toString().c_str());
        return 1;
      }
      Conns[I] = std::move(Conn.value());
    }
    Barrier Start(Requests.size());
    std::vector<std::thread> Threads;
    std::mutex FailM;
    for (std::size_t I = 0; I < Requests.size(); ++I)
      Threads.emplace_back([&, I] {
        Start.arrive();
        bool Ok = Conns[I].writeLine(Requests[I]).isOk();
        if (Ok) {
          Expected<std::string> Resp = Conns[I].readLine();
          if (Resp)
            Responses[I] = Resp.value();
          else
            Ok = false;
        }
        if (!Ok) {
          std::lock_guard<std::mutex> L(FailM);
          Failed = true;
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }

  for (const std::string &Resp : Responses)
    if (!Resp.empty())
      std::printf("%s\n",
                  (StripServer ? stripServer(Resp) : Resp).c_str());
  return Failed ? 1 : 0;
}
