//===- tests/PermSpaceTest.cpp - permutation-space pruning tests ----------===//

#include "ir/Builders.h"
#include "thistle/PermutationSpace.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace thistle;

namespace {

ConvLayer squareLayer() {
  ConvLayer L;
  L.K = 8;
  L.C = 8;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  return L;
}

} // namespace

TEST(PermSignature, CapturesHoistAndStream) {
  Problem P = makeMatmulProblem(8, 8, 8);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  // Perm <i, k, j>: innermost j. C(i,j): streams j; A(i,k): j is absent
  // -> hoisted below the stream; B(k,j): streams j. Matmul has no halo
  // dimensions, so every stream collapses to the NoHaloStream sentinel
  // (replace == multiply numerically).
  PermSignature Sig = permSignature(P, {Ii, Ik, Ij});
  const int NoHalo = PermSignature::TensorSig::NoHaloStream;
  EXPECT_EQ(Sig.Tensors[0].InnermostPresent, NoHalo); // C
  EXPECT_TRUE(Sig.Tensors[0].Hoisted.empty());
  EXPECT_EQ(Sig.Tensors[1].InnermostPresent, NoHalo); // A
  EXPECT_EQ(Sig.Tensors[1].Hoisted, (std::vector<unsigned>{Ij}));
  EXPECT_EQ(Sig.Tensors[2].InnermostPresent, NoHalo); // B
  EXPECT_TRUE(Sig.Tensors[2].Hoisted.empty());
}

TEST(PermSignature, HaloStreamsAreDistinguished) {
  // For the CNN's In tensor, streaming h (a halo dimension) is cheaper
  // than reloading; the signature must record which halo iterator
  // streams, but collapse halo-free streams (e.g. c).
  ConvLayer L;
  L.K = 4;
  L.C = 4;
  L.Hin = 8;
  L.Win = 8;
  L.R = 3;
  L.S = 3;
  Problem P = makeConvProblem(L);
  unsigned K = P.iteratorIndex("k"), C = P.iteratorIndex("c"),
           H = P.iteratorIndex("h"), W = P.iteratorIndex("w");
  PermSignature StreamH = permSignature(P, {K, C, W, H});
  PermSignature StreamW = permSignature(P, {K, C, H, W});
  PermSignature StreamC = permSignature(P, {K, H, W, C});
  // In is tensor index 1.
  EXPECT_EQ(StreamH.Tensors[1].InnermostPresent, static_cast<int>(H));
  EXPECT_EQ(StreamW.Tensors[1].InnermostPresent, static_cast<int>(W));
  EXPECT_EQ(StreamC.Tensors[1].InnermostPresent,
            PermSignature::TensorSig::NoHaloStream);
  EXPECT_NE(StreamH, StreamW);
}

TEST(PermSignature, OuterOrderIrrelevantOnceAllStreamsFixed) {
  // <i, k, j> and <k, i, j> differ only in the order of loops above every
  // tensor's hoist point -> same signature (the paper's pruning rule).
  Problem P = makeMatmulProblem(8, 8, 8);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j"),
           Ik = P.iteratorIndex("k");
  EXPECT_EQ(permSignature(P, {Ii, Ik, Ij}), permSignature(P, {Ik, Ii, Ij}));
  // But moving the innermost loop changes the streams.
  EXPECT_NE(permSignature(P, {Ii, Ij, Ik}), permSignature(P, {Ii, Ik, Ij}));
}

TEST(PermClasses, MatmulCollapsesSixToFewer) {
  Problem P = makeMatmulProblem(8, 8, 8);
  std::vector<unsigned> All = {0, 1, 2};
  std::vector<PermClass> Classes = enumeratePermClasses(P, All);
  unsigned Raw = 0;
  for (const PermClass &C : Classes)
    Raw += C.MemberCount;
  EXPECT_EQ(Raw, 6u); // 3! permutations covered.
  EXPECT_LT(Classes.size(), 6u);
  EXPECT_GE(Classes.size(), 3u);
  // Each representative reproduces its class signature.
  for (const PermClass &C : Classes)
    EXPECT_EQ(permSignature(P, C.Representative), C.Signature);
}

TEST(PermClasses, ConvPruningIsSubstantial) {
  Problem P = makeConvProblem(squareLayer());
  // Tiled iterators: k, c, h, w (n is extent-1, r/s untiled).
  std::vector<unsigned> Tiled = {P.iteratorIndex("k"), P.iteratorIndex("c"),
                                 P.iteratorIndex("h"), P.iteratorIndex("w")};
  std::vector<PermClass> Classes = enumeratePermClasses(P, Tiled);
  unsigned Raw = 0;
  for (const PermClass &C : Classes)
    Raw += C.MemberCount;
  EXPECT_EQ(Raw, 24u);
  // The paper: "a significant number of cases to be pruned out".
  EXPECT_LT(Classes.size(), 24u);
  EXPECT_GT(Classes.size(), 1u);
}

TEST(Symmetry, MatmulSwapIJExchangesAB) {
  Problem P = makeMatmulProblem(8, 8, 8);
  std::vector<ProblemSymmetry> Syms = findProblemSymmetries(P);
  ASSERT_FALSE(Syms.empty());
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j");
  bool FoundIJ = false;
  for (const ProblemSymmetry &S : Syms)
    if (S.IterMap[Ii] == Ij && S.IterMap[Ij] == Ii) {
      FoundIJ = true;
      // A (tensor 1) and B (tensor 2) swap; C maps to itself.
      EXPECT_EQ(S.TensorMap[0], 0u);
      EXPECT_EQ(S.TensorMap[1], 2u);
      EXPECT_EQ(S.TensorMap[2], 1u);
    }
  EXPECT_TRUE(FoundIJ);
}

TEST(Symmetry, UnequalExtentsBreakMatmulSymmetry) {
  Problem P = makeMatmulProblem(8, 16, 8);
  unsigned Ii = P.iteratorIndex("i"), Ij = P.iteratorIndex("j");
  for (const ProblemSymmetry &S : findProblemSymmetries(P))
    EXPECT_FALSE(S.IterMap[Ii] == Ij) << "i<->j with different extents";
}

TEST(Symmetry, ConvHWPairsWithRS) {
  Problem P = makeConvProblem(squareLayer());
  unsigned H = P.iteratorIndex("h"), W = P.iteratorIndex("w");
  unsigned R = P.iteratorIndex("r"), S = P.iteratorIndex("s");
  bool Found = false;
  for (const ProblemSymmetry &Sym : findProblemSymmetries(P))
    if (Sym.IterMap[H] == W && Sym.IterMap[R] == S)
      Found = true;
  EXPECT_TRUE(Found) << "square stride-1 conv must have the {h<->w, r<->s} "
                        "symmetry";
}

TEST(Symmetry, RectangularConvHasNoHW) {
  ConvLayer L = squareLayer();
  L.Win = 32; // W != H.
  Problem P = makeConvProblem(L);
  unsigned H = P.iteratorIndex("h"), W = P.iteratorIndex("w");
  for (const ProblemSymmetry &Sym : findProblemSymmetries(P))
    EXPECT_FALSE(Sym.IterMap[H] == W);
}

TEST(Symmetry, MappedSignatureIsConsistent) {
  // Applying a symmetry to the signature of perm pi must equal the
  // signature of the relabeled permutation.
  Problem P = makeConvProblem(squareLayer());
  unsigned H = P.iteratorIndex("h"), W = P.iteratorIndex("w");
  std::vector<ProblemSymmetry> Syms = findProblemSymmetries(P);
  const ProblemSymmetry *HW = nullptr;
  for (const ProblemSymmetry &Sym : Syms)
    if (Sym.IterMap[H] == W)
      HW = &Sym;
  ASSERT_NE(HW, nullptr);

  std::vector<unsigned> Perm = {P.iteratorIndex("k"), P.iteratorIndex("c"),
                                H, W};
  std::vector<unsigned> Relabeled;
  for (unsigned I : Perm)
    Relabeled.push_back(HW->IterMap[I]);

  PermSignature Mapped =
      permSignature(P, Perm).mapped(HW->IterMap, HW->TensorMap);
  EXPECT_EQ(Mapped, permSignature(P, Relabeled));
}
