//===- bench/bench_table1_algorithm_trace.cpp - Paper Table I -------------===//
//
// Reproduces Table I: the step-by-step construction of the data-volume
// expressions DV^1 for the In and Out tensors of the CNN, with tile-loop
// permutation <w, n, k, h, c, s, r> and strides (1, 2), exactly as the
// paper traces Algorithm 1. Then times Algorithm 1 itself.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/TablePrinter.h"
#include "thistle/ExprGen.h"

#include <iostream>

using namespace thistle;

namespace {

Problem tableIProblem() {
  // In[n][c][h + r][2w + s]: stride 1 vertically, 2 horizontally.
  ConvLayer L;
  L.K = 8;
  L.C = 8;
  L.Hin = 16;
  L.Win = 16;
  L.R = 3;
  L.S = 3;
  L.StrideX = 1;
  L.StrideY = 2;
  return makeConvProblem(L);
}

void printTableI() {
  Problem P = tableIProblem();
  VarTable Vars;
  ExprGen EG(P, Vars);

  std::vector<unsigned> Perm = {
      P.iteratorIndex("w"), P.iteratorIndex("n"), P.iteratorIndex("k"),
      P.iteratorIndex("h"), P.iteratorIndex("c"), P.iteratorIndex("s"),
      P.iteratorIndex("r")};

  TablePrinter Table({"Step", "Iter", "In (DV)", "Out (DV)"});
  std::vector<std::string> InSteps, OutSteps, Iters;
  auto trace = [&](unsigned TensorIdx, std::vector<std::string> &Steps) {
    EG.constructExpr(TensorIdx, Perm, TileLevel::PeTemporal,
                     EG.registerFootprint(TensorIdx),
                     [&](unsigned It, const LevelExprs &State) {
                       if (TensorIdx == 1)
                         Iters.push_back(P.iterators()[It].Name);
                       Steps.push_back(State.DV.toString(Vars));
                     });
  };
  trace(1, InSteps);
  trace(0, OutSteps);

  Table.addRow({"DF^0", "",
                EG.registerFootprint(1).toString(Vars),
                EG.registerFootprint(0).toString(Vars)});
  for (std::size_t I = 0; I < InSteps.size(); ++I)
    Table.addRow({std::to_string(I + 1), Iters[I], InSteps[I], OutSteps[I]});
  Table.print(std::cout);
  std::printf(
      "\nPaper's final row: In = q_w q_n q_k q_h q_c q_s (r_n r_c (r_h + "
      "q_r r_r - 1)(2 r_w + r_s - 2)),\n                   Out = 2 q_w q_n "
      "q_k (r_n r_k q_h r_h r_w)\n\n");
}

void timeAlgorithm1(benchmark::State &State) {
  Problem P = tableIProblem();
  std::vector<unsigned> Perm = {
      P.iteratorIndex("w"), P.iteratorIndex("n"), P.iteratorIndex("k"),
      P.iteratorIndex("h"), P.iteratorIndex("c"), P.iteratorIndex("s"),
      P.iteratorIndex("r")};
  for (auto _ : State) {
    VarTable Vars;
    ExprGen EG(P, Vars);
    for (unsigned T = 0; T < 3; ++T)
      benchmark::DoNotOptimize(EG.constructExpr(
          T, Perm, TileLevel::PeTemporal, EG.registerFootprint(T)));
  }
}
BENCHMARK(timeAlgorithm1);

void timeFullTensorModel(benchmark::State &State) {
  Problem P = tableIProblem();
  std::vector<unsigned> Tiled = {P.iteratorIndex("k"), P.iteratorIndex("c"),
                                 P.iteratorIndex("h"), P.iteratorIndex("w")};
  for (auto _ : State) {
    VarTable Vars;
    ExprGen EG(P, Vars);
    for (unsigned T = 0; T < 3; ++T)
      benchmark::DoNotOptimize(EG.buildTensorModel(T, Tiled, Tiled));
  }
}
BENCHMARK(timeFullTensorModel);

} // namespace

int main(int Argc, char **Argv) {
  thistle::bench::printHeader(
      "Table I", "Algorithm 1 trace: DV^1 for In and Out, permutation "
                 "<w,n,k,h,c,s,r>, strides (1,2)");
  printTableI();
  return thistle::bench::runTimings(Argc, Argv);
}
