//===- thistle/Optimizer.cpp - Thistle design-space optimizer -------------===//

#include "thistle/Optimizer.h"

#include "thistle/PermutationSpace.h"

#include <algorithm>
#include <cassert>

using namespace thistle;

namespace {

/// Tiled iterators: extent > 1 and not named in the untiled list.
std::vector<unsigned> tiledIterators(const Problem &Prob,
                                     const ThistleOptions &Options) {
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < Prob.numIterators(); ++I) {
    const Iterator &It = Prob.iterators()[I];
    if (It.Extent <= 1)
      continue;
    bool Untiled =
        std::find(Options.UntiledIterNames.begin(),
                  Options.UntiledIterNames.end(),
                  It.Name) != Options.UntiledIterNames.end();
    if (!Untiled)
      Out.push_back(I);
  }
  return Out;
}

} // namespace

ThistleResult thistle::optimizeLayer(const Problem &Prob,
                                     const ArchConfig &Arch,
                                     const TechParams &Tech,
                                     const ThistleOptions &Options,
                                     double AreaBudgetUm2) {
  ThistleResult Result;
  std::vector<unsigned> Tiled = tiledIterators(Prob, Options);

  // The class enumeration is a function of the problem and the tiled
  // iterator set only, so the two temporal levels share it.
  std::vector<PermClass> Classes = enumeratePermClasses(Prob, Tiled);
  Result.Stats.PermClassesPerLevel = Classes.size();
  for (const PermClass &C : Classes)
    Result.Stats.RawPermsPerLevel += C.MemberCount;

  std::vector<ProblemSymmetry> Symmetries;
  if (Options.UseSymmetryPruning)
    Symmetries = findProblemSymmetries(Prob);

  double BestEvalObj = 0.0;
  unsigned PairsSolved = 0;

  for (std::size_t QI = 0; QI < Classes.size(); ++QI) {
    for (std::size_t SI = 0; SI < Classes.size(); ++SI) {
      ++Result.Stats.PairsTotal;

      // Symmetry pruning: skip a pair if a problem symmetry maps it to a
      // lexicographically smaller pair (its mirror image was/will be
      // solved instead).
      bool Skip = false;
      for (const ProblemSymmetry &Sym : Symmetries) {
        PermSignature MappedQ =
            Classes[QI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        PermSignature MappedS =
            Classes[SI].Signature.mapped(Sym.IterMap, Sym.TensorMap);
        if (std::tie(MappedQ, MappedS) <
            std::tie(Classes[QI].Signature, Classes[SI].Signature)) {
          Skip = true;
          break;
        }
      }
      if (Skip) {
        ++Result.Stats.PairsSkippedBySymmetry;
        continue;
      }
      if (Options.MaxPermClassPairs &&
          PairsSolved >= Options.MaxPermClassPairs)
        continue;
      ++PairsSolved;

      GpBuildSpec Spec;
      Spec.Mode = Options.Mode;
      Spec.Objective = Options.Objective;
      Spec.PePerm = Classes[QI].Representative;
      Spec.DramPerm = Classes[SI].Representative;
      Spec.TiledIters = Tiled;
      Spec.SpatialUntiled = Options.SpatialUntiled;
      Spec.Arch = Arch;
      Spec.Tech = Tech;
      Spec.AreaBudgetUm2 = AreaBudgetUm2;

      GpBuild Build = buildGp(Prob, Spec);
      GpSolution Solution = solveGp(Build.Gp, Options.Solver);
      Result.Stats.NewtonIterations += Solution.NewtonIterations;
      if (!Solution.Feasible) {
        // The drop-negative halo bound can reject tiny register files
        // that are actually feasible; retry with the product bound,
        // which is exact in the small-tile regime.
        Spec.Halo = HaloBound::ProductOfTerms;
        Build = buildGp(Prob, Spec);
        Solution = solveGp(Build.Gp, Options.Solver);
        Result.Stats.NewtonIterations += Solution.NewtonIterations;
      }
      if (!Solution.Feasible) {
        ++Result.Stats.GpInfeasible;
        continue;
      }

      RealSolution Real = extractSolution(Prob, Build, Spec, Solution);
      RoundedDesign Design =
          roundSolution(Prob, Spec, Real, Options.Rounding);
      Result.Stats.CandidatesEvaluated += Design.CandidatesTried;
      if (!Design.Found)
        continue;

      double Obj = objectiveValue(Design.Eval, Options.Objective);
      if (!Result.Found || Obj < BestEvalObj) {
        Result.Found = true;
        Result.Arch = Design.Arch;
        Result.Map = Design.Map;
        Result.Eval = Design.Eval;
        Result.ModelObjective = Real.Objective;
        Result.BestPePerm = Spec.PePerm;
        Result.BestDramPerm = Spec.DramPerm;
        BestEvalObj = Obj;
      }
    }
  }
  Result.Stats.PairsSolved = PairsSolved;
  return Result;
}
