file(REMOVE_RECURSE
  "libthistle_workloads.a"
)
