file(REMOVE_RECURSE
  "libthistle_codegen.a"
)
