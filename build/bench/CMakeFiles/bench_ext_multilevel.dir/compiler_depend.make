# Empty compiler generated dependencies file for bench_ext_multilevel.
# This may be replaced when dependencies are built.
