//===- sim/TiledLoopSim.h - Brute-force data-movement oracle ----*- C++ -*-===//
//
// Part of the Thistle reproduction (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force simulator of the multi-level tiled loop nest described in
/// the paper (Fig. 1d / Fig. 3e): it walks the DRAM-level temporal loops,
/// the spatial PE grid and the per-PE temporal loops step by step,
/// maintaining per-tensor buffer state, and counts the words actually
/// moved between DRAM<->SRAM and SRAM<->registers.
///
/// Counting semantics (pinned in DESIGN.md, matching the paper's model):
///  - A tensor tile is the dense box spanned by its affine dimension
///    projections (halo holes from strides are not exploited). This
///    extends unchanged to dilated, transposed and grouped layers: a
///    dilated projection x*h + d*r leaves d-1 untouched rows between
///    kernel taps inside the box, and those holes are counted as moved —
///    by this oracle *and* by both analytical backends, so the
///    sim == nest == maestro integer equality holds per layer class
///    (docs/WORKLOADS.md pins the convention; SimTest pins the hole
///    counts on a dilated layer).
///  - Between consecutive steps of the same loop nest, words already in
///    the buffer are not reloaded. This reproduces both copy hoisting
///    (identical consecutive tiles move nothing) and the halo-union
///    ("replace") semantics of Algorithm 1 for the innermost present
///    iterator.
///  - On a tile change, the buffer retains only the new tile (single-tile
///    buffers); read-write tensors write back evicted words.
///  - Spatially, only iterators present in a tensor's reference multiply
///    its SRAM-side traffic: PEs whose coordinates differ only in absent
///    iterators receive the same words via multicast (reads) or combine
///    them in a reduction tree (writes), counted once (paper Eq. 2).
///  - Register-level state is reset at SRAM-tile boundaries: the model is
///    per-level, exactly as Algorithm 1 multiplies all outer trip counts.
///
/// This is an executable specification: O(steps * tensors) time, intended
/// for small problem sizes in tests only. The walk is implemented once,
/// for hierarchies of any depth, in multilevel/MultiSim; this header is
/// its classic 3-level view.
///
//===----------------------------------------------------------------------===//

#ifndef THISTLE_SIM_TILEDLOOPSIM_H
#define THISTLE_SIM_TILEDLOOPSIM_H

#include "ir/Mapping.h"
#include "ir/Problem.h"
#include "multilevel/MultiNestAnalysis.h"

#include <cstdint>
#include <vector>

namespace thistle {

/// Word counts moved per tensor, as observed by the oracle.
struct SimTensorTraffic {
  /// Words copied DRAM -> SRAM (reads of DRAM).
  std::int64_t DramToSram = 0;
  /// Words copied SRAM -> DRAM (writes; zero for read-only tensors).
  std::int64_t SramToDram = 0;
  /// Words read from SRAM into registers, multicast-reduced.
  std::int64_t SramToReg = 0;
  /// Words written from registers back to SRAM (zero for read-only).
  std::int64_t RegToSram = 0;
};

/// Oracle result: per-tensor traffic, in Problem::tensors() order.
struct SimResult {
  std::vector<SimTensorTraffic> PerTensor;

  std::int64_t totalDramTraffic() const;
  std::int64_t totalSramRegTraffic() const;
};

/// Simulates \p Map on \p Prob and counts data movement. The mapping must
/// validate against the problem. Cost is proportional to the total number
/// of tile steps; use small extents.
SimResult simulateTiledNest(const Problem &Prob, const Mapping &Map);

/// Ground-truth counts of \p Map on the classic 3-level machine shape, in
/// the analytical MultiProfile layout (boundary 0 = SRAM<->registers,
/// boundary 1 = DRAM<->SRAM). This is the reference every CostEvaluator
/// backend is cross-checked against on the exact-count fields
/// (docs/EVALUATOR.md); same small-extent cost caveat as
/// simulateTiledNest.
MultiProfile simulatedProfile(const Problem &Prob, const Mapping &Map);

} // namespace thistle

#endif // THISTLE_SIM_TILEDLOOPSIM_H
