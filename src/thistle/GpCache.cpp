//===- thistle/GpCache.cpp - GP solution cache for network sweeps ---------===//

#include "thistle/GpCache.h"

#include "thistle/Optimizer.h"

#include <cstdio>

using namespace thistle;

namespace {

/// Canonical double rendering for key material: round-trippable and
/// locale-independent.
void appendNumber(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  Out += ',';
}

void appendNumber(std::string &Out, std::int64_t V) {
  Out += std::to_string(V);
  Out += ',';
}

void appendIndices(std::string &Out, const std::vector<unsigned> &V) {
  for (unsigned I : V) {
    Out += std::to_string(I);
    Out += '.';
  }
  Out += ',';
}

} // namespace

GpCacheKeys thistle::gpCacheKeys(const Problem &Prob,
                                 const ThistleOptions &Options,
                                 const ArchConfig &Arch,
                                 const TechParams &Tech,
                                 double AreaBudgetUm2,
                                 const std::vector<unsigned> &TiledIters,
                                 const std::vector<unsigned> &PePerm,
                                 const std::vector<unsigned> &DramPerm) {
  // Structural part, shared by both keys: iterator names, tensor
  // skeleton (which iterators project into which dimension), perms and
  // the mode/objective/options that shape the generated program. The
  // problem *name* is excluded on purpose: identically shaped layers of
  // different networks must share entries.
  std::string S;
  S.reserve(256);
  S += "it:";
  for (const Iterator &It : Prob.iterators()) {
    S += It.Name;
    S += ',';
  }
  S += "|tn:";
  for (const Tensor &T : Prob.tensors()) {
    S += T.Name;
    S += T.ReadWrite ? "+rw" : "";
    for (const DimRef &D : T.Dims) {
      S += '[';
      for (const DimRef::Term &Term : D.Terms) {
        S += std::to_string(Term.Iter);
        S += ';';
      }
      S += ']';
    }
    S += ',';
  }
  S += "|opt:";
  S += Options.Mode == DesignMode::CoDesign ? "codesign" : "dataflow";
  S += ',';
  S += Options.Objective == SearchObjective::Energy  ? "energy"
       : Options.Objective == SearchObjective::Delay ? "delay"
                                                     : "edp";
  S += Options.SpatialUntiled ? ",su1," : ",su0,";
  S += "tiled:";
  appendIndices(S, TiledIters);
  S += "q:";
  appendIndices(S, PePerm);
  S += "s:";
  appendIndices(S, DramPerm);

  // Numeric part, exact key only: extents, projection strides, the
  // architecture/technology constants and every option that changes the
  // solve or rounding trajectory.
  std::string N = "|ext:";
  for (const Iterator &It : Prob.iterators())
    appendNumber(N, It.Extent);
  N += "str:";
  for (const Tensor &T : Prob.tensors())
    for (const DimRef &D : T.Dims)
      for (const DimRef::Term &Term : D.Terms)
        appendNumber(N, Term.Stride);
  N += "arch:";
  appendNumber(N, Arch.NumPEs);
  appendNumber(N, Arch.RegWordsPerPE);
  appendNumber(N, Arch.SramWords);
  appendNumber(N, Arch.DramBandwidth);
  appendNumber(N, Arch.SramBandwidth);
  N += "tech:";
  appendNumber(N, Tech.AreaMacUm2);
  appendNumber(N, Tech.AreaRegWordUm2);
  appendNumber(N, Tech.AreaSramWordUm2);
  appendNumber(N, Tech.EnergyMacPj);
  appendNumber(N, Tech.SigmaRegPj);
  appendNumber(N, Tech.SigmaSramPj);
  appendNumber(N, Tech.EnergyDramPj);
  N += "area:";
  appendNumber(N, AreaBudgetUm2);
  N += "round:";
  appendNumber(N, static_cast<std::int64_t>(Options.Rounding.NumCandidates));
  appendNumber(N, Options.Rounding.UtilizationThreshold);
  appendNumber(N, static_cast<std::int64_t>(
                      Options.Rounding.MaxMappingCandidates));
  N += "solver:";
  appendNumber(N, Options.Solver.Tolerance);
  appendNumber(N, Options.Solver.TInitial);
  appendNumber(N, Options.Solver.TMultiplier);
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxNewtonIters));
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxOuterIters));
  appendNumber(N, Options.Solver.StartPerturbation);
  appendNumber(N, Options.Solver.ObjectiveScale);
  appendNumber(N, static_cast<std::int64_t>(Options.Solver.MaxSolveAttempts));

  GpCacheKeys Keys;
  Keys.Warm = S;
  Keys.Exact = std::move(S) + N;
  return Keys;
}

bool GpSolutionCache::lookupExact(const std::string &Key,
                                  GpCacheEntry &Out) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Exact.find(Key);
    if (It != Exact.end()) {
      Out = It->second;
      Hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void GpSolutionCache::insert(const std::string &Key,
                             const std::string &WarmKey,
                             GpCacheEntry Entry) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Entry.Optimum.empty()) {
    WarmSlot &Slot = Warm[WarmKey];
    // Deterministic pending winner: smallest exact key, not first
    // arrival — parallel fill order must not leak into later phases.
    if (!Slot.HasPending || Key < Slot.PendingSource) {
      Slot.HasPending = true;
      Slot.PendingSource = Key;
      Slot.Pending = Entry.Optimum;
    }
  }
  Exact.emplace(Key, std::move(Entry));
}

bool GpSolutionCache::lookupWarm(const std::string &WarmKey,
                                 std::vector<double> &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Warm.find(WarmKey);
  if (It == Warm.end() || !It->second.HasFrozen)
    return false;
  Out = It->second.Frozen;
  return true;
}

void GpSolutionCache::noteWarmStart() {
  WarmStarts.fetch_add(1, std::memory_order_relaxed);
}

void GpSolutionCache::beginGeneration() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Key, Slot] : Warm) {
    if (!Slot.HasPending)
      continue;
    Slot.HasFrozen = true;
    Slot.Frozen = std::move(Slot.Pending);
    Slot.HasPending = false;
    Slot.PendingSource.clear();
    Slot.Pending.clear();
  }
}

std::size_t GpSolutionCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Exact.size();
}

void GpSolutionCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Exact.clear();
  Warm.clear();
}
