//===- examples/export_design.cpp - Timeloop spec generation --------------===//
//
// The tail end of the paper's workflow (Fig. 2): optimize a layer with
// Thistle, then emit Timeloop-style YAML specifications (Fig. 3) for the
// resulting architecture, problem and mapping — the artifacts the paper
// feeds to the Timeloop model for final evaluation.
//
//===----------------------------------------------------------------------===//

#include "export/TimeloopExport.h"
#include "ir/Builders.h"
#include "thistle/Optimizer.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace thistle;

int main() {
  ConvLayer Layer = resnet18Layers()[5]; // 128x128x28x28, 3x3.
  Problem Prob = makeConvProblem(Layer);
  TechParams Tech = TechParams::cgo45nm();

  ThistleOptions Options;
  Options.Mode = DesignMode::CoDesign;
  ThistleResult R = optimizeLayer(Prob, eyerissArch(), Tech, Options,
                                  eyerissAreaUm2(Tech));
  if (!R.Found) {
    std::printf("no legal design found\n");
    return 1;
  }

  std::printf("# Co-designed %s: %.2f pJ/MAC on P=%lld R=%lld S=%lld\n\n",
              Layer.Name.c_str(), R.Eval.EnergyPerMacPj,
              static_cast<long long>(R.Arch.NumPEs),
              static_cast<long long>(R.Arch.RegWordsPerPE),
              static_cast<long long>(R.Arch.SramWords));
  std::printf("%s\n", exportTimeloopArch(R.Arch, Tech).c_str());
  std::printf("%s\n", exportTimeloopProblem(Prob).c_str());
  std::printf("%s", exportTimeloopMapping(Prob, R.Map).c_str());
  return 0;
}
