# Empty compiler generated dependencies file for bench_ablation_pruning.
# This may be replaced when dependencies are built.
