file(REMOVE_RECURSE
  "CMakeFiles/thistle_core.dir/ExprGen.cpp.o"
  "CMakeFiles/thistle_core.dir/ExprGen.cpp.o.d"
  "CMakeFiles/thistle_core.dir/GpBuilder.cpp.o"
  "CMakeFiles/thistle_core.dir/GpBuilder.cpp.o.d"
  "CMakeFiles/thistle_core.dir/Optimizer.cpp.o"
  "CMakeFiles/thistle_core.dir/Optimizer.cpp.o.d"
  "CMakeFiles/thistle_core.dir/PermutationSpace.cpp.o"
  "CMakeFiles/thistle_core.dir/PermutationSpace.cpp.o.d"
  "CMakeFiles/thistle_core.dir/Rounding.cpp.o"
  "CMakeFiles/thistle_core.dir/Rounding.cpp.o.d"
  "libthistle_core.a"
  "libthistle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thistle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
